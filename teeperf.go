// Package teeperf is an architecture- and platform-independent performance
// profiler for trusted execution environments, reproducing "TEE-Perf: A
// Profiler for Trusted Execution Environments" (Bailleu et al., DSN 2019).
//
// The profiler works in four stages:
//
//  1. Compiler — instrument the application (cmd/teeperf-instrument
//     rewrites Go sources; built-in workloads use the probe hooks
//     directly).
//  2. Recorder — a lock-free shared-memory log plus a software counter
//     collect every function entry and exit at run time.
//  3. Analyzer — offline call-stack reconstruction yields per-method
//     inclusive/exclusive times, caller/callee tables and a query
//     interface.
//  4. Visualizer — folded stacks and SVG flame graphs.
//
// This package is the high-level API: a Session ties the stages together
// for in-process profiling, and Load reopens persisted profile bundles.
package teeperf

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/counter"
	"teeperf/internal/flamegraph"
	"teeperf/internal/monitor"
	"teeperf/internal/probe"
	"teeperf/internal/query"
	"teeperf/internal/recorder"
	"teeperf/internal/report"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// Re-exported result types. The analyzer package is internal; these
// aliases are the public names.
type (
	// Profile is the analyzed result of one recording.
	Profile = analyzer.Profile
	// FuncStat aggregates one function's executions.
	FuncStat = analyzer.FuncStat
	// Record is one reconstructed function execution.
	Record = analyzer.Record
	// ThreadStat summarizes one thread.
	ThreadStat = analyzer.ThreadStat
	// Thread is a per-application-thread probe handle.
	Thread = probe.Thread
	// Hooks is the instrumentation contract (probe, perf publisher, nop).
	Hooks = probe.Hooks
	// Frame is the declarative query interface over profile records.
	Frame = query.Frame
	// SymbolTable resolves probe addresses to function names.
	SymbolTable = symtab.Table
)

// CounterMode selects the probe time source.
type CounterMode = recorder.CounterMode

// Counter modes.
const (
	// CounterSoftware is the paper's portable software counter: a
	// dedicated spinning thread (the default).
	CounterSoftware = recorder.CounterSoftware
	// CounterTSC uses the host monotonic clock.
	CounterTSC = recorder.CounterTSC
	// CounterVirtual is a deterministic source for tests.
	CounterVirtual = recorder.CounterVirtual
)

// Session is one profiling measurement: it owns the symbol table, the
// shared-memory log, the counter and the probe runtime.
type Session struct {
	tab     *symtab.Table
	rec     *recorder.Recorder
	recOpts []recorder.Option
	started bool
	only    func(string) bool
}

// Option configures New.
type Option interface {
	apply(*Session)
}

type optionFunc func(*Session)

func (f optionFunc) apply(s *Session) { f(s) }

// WithCapacity sets the log capacity in entries (default 1<<20).
func WithCapacity(entries int) Option {
	return optionFunc(func(s *Session) {
		s.recOpts = append(s.recOpts, recorder.WithCapacity(entries))
	})
}

// WithShards splits the log into n per-thread tail segments (threads hash
// to shards by ID), removing tail contention under many writers
// (default 1).
func WithShards(n int) Option {
	return optionFunc(func(s *Session) {
		s.recOpts = append(s.recOpts, recorder.WithShards(n))
	})
}

// WithCounter selects the time source (default CounterSoftware).
func WithCounter(mode CounterMode) Option {
	return optionFunc(func(s *Session) {
		s.recOpts = append(s.recOpts, recorder.WithCounterMode(mode))
	})
}

// WithCounterSource installs a custom counter source.
func WithCounterSource(src counter.Source) Option {
	return optionFunc(func(s *Session) {
		s.recOpts = append(s.recOpts, recorder.WithCounterSource(src))
	})
}

// WithPID tags the log with the profiled process ID.
func WithPID(pid uint64) Option {
	return optionFunc(func(s *Session) {
		s.recOpts = append(s.recOpts, recorder.WithPID(pid))
	})
}

// WithLoadBias simulates relocated code (the analyzer recovers the offset
// from the profiler anchor recorded in the log header).
func WithLoadBias(delta int64) Option {
	return optionFunc(func(s *Session) {
		s.recOpts = append(s.recOpts, recorder.WithLoadBias(delta))
	})
}

// WithBatch makes each probe thread reserve blocks of k log slots with one
// tail fetch-and-add (default 1), amortizing the contended atomic across k
// events on hot multi-threaded runs.
func WithBatch(k int) Option {
	return optionFunc(func(s *Session) {
		s.recOpts = append(s.recOpts, recorder.WithBatch(k))
	})
}

// WithSample records one call pair in n (0 and 1 both record everything).
// The period is published in the log header, so analyzers scale the
// sampled weights back up and external controllers can move it live.
func WithSample(n uint64) Option {
	return optionFunc(func(s *Session) {
		s.recOpts = append(s.recOpts, recorder.WithSamplePeriod(n))
	})
}

// WithAdaptiveBatch replaces the fixed reservation batch with a
// self-tuning controller bounded by [min, max]: the batch grows when
// reservation latency or shard fill rises and shrinks when drops climb.
func WithAdaptiveBatch(min, max int) Option {
	return optionFunc(func(s *Session) {
		s.recOpts = append(s.recOpts, recorder.WithAdaptiveBatch(min, max))
	})
}

// WithSelective restricts recording to functions whose registered name
// satisfies pred — selective code profiling.
func WithSelective(pred func(name string) bool) Option {
	return optionFunc(func(s *Session) { s.only = pred })
}

// New creates a session. Register the application's functions, hand probe
// Threads to its goroutines, then Start.
func New(opts ...Option) (*Session, error) {
	s := &Session{tab: symtab.New()}
	for _, opt := range opts {
		opt.apply(s)
	}
	return s, nil
}

// Table exposes the session's symbol table (for workload registration
// helpers).
func (s *Session) Table() *symtab.Table { return s.tab }

// RegisterFunc adds one function and returns its probe address.
func (s *Session) RegisterFunc(name, file string, line int) (uint64, error) {
	if s.started {
		return 0, errors.New("teeperf: cannot register after Start")
	}
	return s.tab.Register(name, 64, file, line)
}

// AddrOf resolves a registered function name to its runtime probe address.
// It returns 0 for unknown names.
func (s *Session) AddrOf(name string) uint64 {
	if s.rec != nil {
		return s.rec.AddrOf(name)
	}
	return s.tab.Addr(name)
}

// Start activates recording. All functions must be registered beforehand.
func (s *Session) Start() error {
	if s.started {
		return errors.New("teeperf: already started")
	}
	opts := s.recOpts
	if s.only != nil {
		f, err := probe.NewFilter(s.tab, func(sym symtab.Symbol) bool {
			return s.only(sym.Name)
		})
		if err != nil {
			return fmt.Errorf("teeperf: build filter: %w", err)
		}
		opts = append(opts, recorder.WithFilter(f))
	}
	// A wrapper recorder process (`teeperf run`) hands its shared mapping
	// over via the environment; attach instead of allocating, so the
	// recording lands in the mapping the wrapper persists.
	if shm := os.Getenv(recorder.SharedEnv); shm != "" && shmlog.MmapSupported {
		opts = append(opts, recorder.WithShared(shm))
	}
	rec, err := recorder.New(s.tab, opts...)
	if err != nil {
		return fmt.Errorf("teeperf: create recorder: %w", err)
	}
	if shm := rec.SharedPath(); shm != "" {
		// The table is complete at Start, so publish the symbol side file
		// for the hosting recorder process.
		if err := recorder.WriteSymsFile(recorder.SymsPath(shm), s.tab); err != nil {
			return fmt.Errorf("teeperf: publish symbols: %w", err)
		}
	}
	s.rec = rec
	s.started = true
	return rec.Start()
}

// Thread registers an application thread and returns its probe handle.
// Call after Start.
func (s *Session) Thread() (*Thread, error) {
	if !s.started {
		return nil, errors.New("teeperf: session not started")
	}
	return s.rec.Thread(), nil
}

// Enable resumes recording mid-run.
func (s *Session) Enable() {
	if s.rec != nil {
		s.rec.Enable()
	}
}

// Disable pauses recording mid-run.
func (s *Session) Disable() {
	if s.rec != nil {
		s.rec.Disable()
	}
}

// Stop ends the measurement (idempotent). In cross-process mode the shared
// mapping is flushed to its backing file so the hosting recorder (or an
// offline salvage) sees the final state even if this process exits right
// after.
func (s *Session) Stop() error {
	if !s.started {
		return errors.New("teeperf: session not started")
	}
	if err := s.rec.Stop(); err != nil {
		return err
	}
	if s.rec.SharedPath() != "" {
		return s.rec.Log().Msync()
	}
	return nil
}

// Stats reports recorder statistics.
func (s *Session) Stats() recorder.Stats {
	if s.rec == nil {
		return recorder.Stats{}
	}
	return s.rec.Stats()
}

// Profile analyzes the recorded log (stage 3).
func (s *Session) Profile() (*Profile, error) {
	if s.rec == nil {
		return nil, errors.New("teeperf: session not started")
	}
	return analyzer.Analyze(s.rec.Log(), s.tab)
}

// Persist writes the profile bundle (symbols + log) to path.
func (s *Session) Persist(path string) error {
	if s.rec == nil {
		return errors.New("teeperf: session not started")
	}
	return s.rec.Persist(path)
}

// PersistTo writes the profile bundle to w.
func (s *Session) PersistTo(w io.Writer) error {
	if s.rec == nil {
		return errors.New("teeperf: session not started")
	}
	return s.rec.PersistTo(w)
}

// Load reads a persisted profile bundle and analyzes it.
func Load(path string) (*Profile, error) {
	tab, log, err := recorder.ReadBundleFile(path)
	if err != nil {
		return nil, err
	}
	return analyzer.Analyze(log, tab)
}

// RecoveryReport describes what lenient loading salvaged from a torn or
// corrupted bundle (see LoadLenient and `teeperf recover`).
type RecoveryReport = shmlog.RecoveryReport

// LoadLenient reads a possibly torn or corrupted profile bundle — e.g.
// the .part file left by a recorder killed mid-checkpoint — salvaging
// every committed entry it can. The profile's Recovery field carries the
// salvage report; salvaged-but-unmatched entries appear under the
// synthetic "[truncated]" frame.
func LoadLenient(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tab, log, rep, err := recorder.ReadBundleLenient(f)
	if err != nil {
		return nil, err
	}
	return analyzer.AnalyzeRecovered(log, tab, rep)
}

// LoadFrom reads a profile bundle from r and analyzes it.
func LoadFrom(r io.Reader) (*Profile, error) {
	tab, log, err := recorder.ReadBundle(r)
	if err != nil {
		return nil, err
	}
	return analyzer.Analyze(log, tab)
}

// Query builds the declarative query frame over a profile's records (the
// pandas-equivalent interface).
func Query(p *Profile) *Frame {
	return query.FromProfile(p)
}

// Agg is one aggregation for Frame.GroupBy.
type Agg = query.Agg

// SortOrder selects ascending or descending Frame.Sort order.
type SortOrder = query.SortOrder

// Sort orders.
const (
	Asc  = query.Asc
	Desc = query.Desc
)

// Aggregation constructors for Frame.GroupBy.
var (
	Count    = query.Count
	Sum      = query.Sum
	Mean     = query.Mean
	MinAgg   = query.Min
	MaxAgg   = query.Max
	Quantile = query.Quantile
)

// FlameGraphOptions configures WriteFlameGraphSVG.
type FlameGraphOptions = flamegraph.SVGOptions

// WriteFlameGraphSVG renders the profile as an SVG flame graph (stage 4).
func WriteFlameGraphSVG(w io.Writer, p *Profile, opts FlameGraphOptions) error {
	return flamegraph.RenderSVG(w, p.Folded(), opts)
}

// WriteFolded emits the profile's folded stacks in the standard text
// format, compatible with external flame-graph tooling.
func WriteFolded(w io.Writer, p *Profile) error {
	return flamegraph.WriteFolded(w, p.Folded())
}

// DiffRow compares one function between two profiles.
type DiffRow = analyzer.DiffRow

// DiffProfiles compares two profiles function by function (the
// before/after view of an optimization).
func DiffProfiles(before, after *Profile) []DiffRow {
	return analyzer.Diff(before, after)
}

// WriteDiff renders a profile diff as a table.
func WriteDiff(w io.Writer, rows []DiffRow, top int) error {
	return analyzer.WriteDiff(w, rows, top)
}

// PathStat aggregates executions sharing one full call path.
type PathStat = analyzer.PathStat

// WhatIfResult projects the effect of removing functions from the
// critical path (Amdahl).
type WhatIfResult = analyzer.WhatIfResult

// WriteWhatIf renders a what-if projection.
func WriteWhatIf(w io.Writer, r WhatIfResult) error {
	return analyzer.WriteWhatIf(w, r)
}

// MergeProfiles aggregates profiles from multiple runs.
func MergeProfiles(profiles ...*Profile) (*Profile, error) {
	return analyzer.Merge(profiles...)
}

// HTMLReportOptions configures WriteHTMLReport.
type HTMLReportOptions = report.Options

// WriteHTMLReport renders a self-contained HTML report (summary, hot
// methods, call paths, threads, embedded flame graph).
func WriteHTMLReport(w io.Writer, p *Profile, opts HTMLReportOptions) error {
	return report.Render(w, p, opts)
}

// Rotate swaps in a fresh log segment and returns the filled one as an
// analyzed profile segment; use MergeProfiles to combine segments. It lets
// a measurement outlive the configured log capacity without dropping
// events.
func (s *Session) Rotate() (*Profile, error) {
	if s.rec == nil {
		return nil, errors.New("teeperf: session not started")
	}
	prev, err := s.rec.Rotate()
	if err != nil {
		return nil, err
	}
	return analyzer.Analyze(prev, s.tab)
}

// StartAutoRotate persists filled log segments into dir whenever the
// active segment crosses fillThreshold (e.g. 0.9); Stop halts it. Load the
// segment bundles individually and MergeProfiles them.
func (s *Session) StartAutoRotate(dir string, fillThreshold float64) error {
	if s.rec == nil {
		return errors.New("teeperf: session not started")
	}
	return s.rec.StartAutoRotate(dir, fillThreshold, 0)
}

// StartCheckpoint launches crash-consistent background persistence: every
// interval the session's bundle is snapshotted to path+".part" and
// atomically renamed onto path, so a process killed at any instant leaves
// a loadable bundle (at worst a torn .part that LoadLenient salvages).
// Stop performs one final checkpoint and halts the flusher.
func (s *Session) StartCheckpoint(path string, interval time.Duration) error {
	if s.rec == nil {
		return errors.New("teeperf: session not started")
	}
	return s.rec.StartCheckpoint(path, interval)
}

// Live-monitoring re-exports. The monitor tails the shared-memory log
// while the measurement runs, folding committed entries into a live
// hot-methods table and sampling recorder health (entries/s, drop rate,
// log fill, counter ticks/s).
type (
	// Monitor is the live observer over a running session.
	Monitor = monitor.Monitor
	// MonitorServer is a running live-monitor HTTP endpoint.
	MonitorServer = monitor.Server
	// MonitorSample is one point of the run's recorded trajectory.
	MonitorSample = monitor.Sample
	// MonitorOption configures a Monitor.
	MonitorOption = monitor.Option
	// LiveTable is a point-in-time view of the live profile.
	LiveTable = analyzer.LiveTable
	// LiveFunc is one function's running totals in the live table.
	LiveFunc = analyzer.LiveFunc
)

// Monitor option constructors.
var (
	// WithMonitorInterval sets the sampling interval (default 250ms).
	WithMonitorInterval = monitor.WithInterval
	// WithMonitorHistory bounds the snapshot ring buffer (default 512).
	WithMonitorHistory = monitor.WithHistorySize
)

// Monitor creates (but does not start) a live monitor over the running
// session. Call its Start method to begin background sampling, or Poll /
// Table for on-demand reads.
func (s *Session) Monitor(opts ...MonitorOption) (*Monitor, error) {
	if s.rec == nil {
		return nil, errors.New("teeperf: session not started")
	}
	return monitor.New(s.rec, opts...), nil
}

// ServeMonitor starts a background monitor over the running session and
// serves it on addr (e.g. ":7070"): /metrics (Prometheus text), /vars
// (JSON), /profile.json, /history.json and a live HTML page at /. Close
// the returned server to stop both it and the monitor.
func (s *Session) ServeMonitor(addr string, opts ...MonitorOption) (*MonitorServer, error) {
	if s.rec == nil {
		return nil, errors.New("teeperf: session not started")
	}
	return monitor.ServeRecorder(s.rec, addr, opts...)
}
