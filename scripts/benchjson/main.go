// Command benchjson converts `go test -bench` text output into a small,
// stable JSON perf-trajectory file, and validates such files in CI.
//
// Emit (reads bench output on stdin):
//
//	go test -run='^$' -bench=... ./... | go run ./scripts/benchjson > BENCH_agent.json
//
// Check (parses the file and requires every listed benchmark to appear):
//
//	go run ./scripts/benchjson -check BENCH_agent.json BenchmarkAppendParallel ...
//
// Gate (fails when a metric regresses past the threshold vs a baseline):
//
//	go run ./scripts/benchjson -gate -metric ratio -max-regress 50 -slack 1.0 \
//	    BENCH_overhead.json current.json
//
// Meta (prints the recorded host parallelism of a trajectory file):
//
//	go run ./scripts/benchjson -meta BENCH_overhead.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark output line. Name keeps the full sub-benchmark
// path and the -GOMAXPROCS suffix exactly as `go test` printed it; Metrics
// holds every reported "value unit" pair (ns/op, B/op, allocs/op, and any
// b.ReportMetric extras such as entries/op).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the committed trajectory document. NumCPU and Gomaxprocs pin the
// parallelism the numbers were measured under — a BenchmarkAppendParallel
// figure from a 64-way box is not comparable to one from a 1-CPU runner,
// and without these fields the files silently invited that comparison.
type File struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Gomaxprocs int      `json:"gomaxprocs,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	check := flag.Bool("check", false, "validate: args are <file> <required bench name>...")
	gate := flag.Bool("gate", false, "threshold gate: args are <baseline file> <current file>")
	meta := flag.Bool("meta", false, "print num_cpu/gomaxprocs of <file> and exit")
	metric := flag.String("metric", "ratio", "metric to gate on (with -gate)")
	maxRegress := flag.Float64("max-regress", 50, "max allowed regression in percent (with -gate)")
	slack := flag.Float64("slack", 1.0, "absolute metric slack also required before failing (with -gate)")
	prefix := flag.String("prefix", "", "only gate benchmarks whose name starts with this (with -gate)")
	numCPU := flag.Int("numcpu", runtime.NumCPU(), "CPUs of the measuring host (recorded in the file)")
	maxprocs := flag.Int("gomaxprocs", runtime.GOMAXPROCS(0), "GOMAXPROCS the benchmarks ran under")
	flag.Parse()
	if *check {
		if flag.NArg() < 2 {
			fatalf("usage: benchjson -check <file> <BenchmarkName>...")
		}
		if err := checkFile(flag.Arg(0), flag.Args()[1:]); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("benchjson: %s names all %d required benchmarks\n", flag.Arg(0), flag.NArg()-1)
		return
	}
	if *meta {
		if flag.NArg() != 1 {
			fatalf("usage: benchjson -meta <file>")
		}
		f, err := loadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("num_cpu=%d\ngomaxprocs=%d\n", f.NumCPU, f.Gomaxprocs)
		return
	}
	if *gate {
		if flag.NArg() != 2 {
			fatalf("usage: benchjson -gate [-metric m] [-max-regress pct] [-slack s] [-prefix p] <baseline> <current>")
		}
		if err := gateFiles(os.Stdout, flag.Arg(0), flag.Arg(1), *metric, *maxRegress, *slack, *prefix); err != nil {
			fatalf("%v", err)
		}
		return
	}
	f, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fatalf("%v", err)
	}
	if len(f.Benchmarks) == 0 {
		fatalf("no benchmark result lines on stdin")
	}
	f.NumCPU = *numCPU
	f.Gomaxprocs = *maxprocs
	if f.Goos == "" {
		f.Goos = runtime.GOOS
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

func parseBenchOutput(r *os.File) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: ") && f.Goos == "":
			f.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: ") && f.Goarch == "":
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: ") && f.CPU == "":
			f.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name iterations value unit [value unit ...]";
		// a bare "BenchmarkFoo" announcement before sub-benchmarks is not.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %v", line, err)
			}
			res.Metrics[fields[i+1]] = v
		}
		f.Benchmarks = append(f.Benchmarks, res)
	}
	return f, sc.Err()
}

// loadFile parses one committed trajectory document.
func loadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s does not parse: %v", path, err)
	}
	return &f, nil
}

func checkFile(path string, required []string) error {
	f, err := loadFile(path)
	if err != nil {
		return err
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("%s has no benchmarks", path)
	}
	for _, want := range required {
		found := false
		for _, r := range f.Benchmarks {
			// Match the benchmark base name: exact, a sub-benchmark
			// ("Name/sub"), or with the -GOMAXPROCS suffix ("Name-8").
			rest, ok := strings.CutPrefix(r.Name, want)
			if ok && (rest == "" || rest[0] == '/' || rest[0] == '-') {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s missing results for %s", path, want)
		}
	}
	return nil
}

// gateFiles is the perf-trajectory threshold gate: every benchmark of
// current that carries the metric (and matches prefix) is compared against
// the same-named row of baseline. A row fails only when it exceeds BOTH
// bounds — baseline*(1+maxRegressPct/100) and baseline+slack — so
// near-1.0 ratio rows are protected from absolute noise and large-ratio
// rows from relative noise. Rows present on one side only are skipped
// with a note (machines with different CPU counts legitimately measure
// different shard grids). Improvements always pass. Comparing zero rows
// is itself a failure: a gate that silently matches nothing has been
// unhooked by a rename.
func gateFiles(w io.Writer, basePath, curPath, metric string, maxRegressPct, slack float64, prefix string) error {
	base, err := loadFile(basePath)
	if err != nil {
		return err
	}
	cur, err := loadFile(curPath)
	if err != nil {
		return err
	}
	baseBy := make(map[string]float64, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		if v, ok := r.Metrics[metric]; ok {
			baseBy[r.Name] = v
		}
	}
	var (
		compared, skipped int
		failures          []string
		worstPct          float64
		worstName         string
	)
	for _, r := range cur.Benchmarks {
		if prefix != "" && !strings.HasPrefix(r.Name, prefix) {
			continue
		}
		c, ok := r.Metrics[metric]
		if !ok {
			continue
		}
		b, ok := baseBy[r.Name]
		if !ok {
			skipped++
			fmt.Fprintf(w, "benchjson gate: note: %s not in baseline %s, skipped\n", r.Name, basePath)
			continue
		}
		compared++
		pct := 0.0
		if b != 0 {
			pct = (c - b) / b * 100
		}
		if pct > worstPct {
			worstPct, worstName = pct, r.Name
		}
		if c > b*(1+maxRegressPct/100) && c > b+slack {
			failures = append(failures, fmt.Sprintf(
				"%s %s %.4f -> %.4f (%+.1f%%, limit +%.0f%% and +%.2f absolute)",
				r.Name, metric, b, c, pct, maxRegressPct, slack))
		}
	}
	if compared == 0 {
		return fmt.Errorf("gate compared no %s rows between %s and %s — the sweep and the baseline no longer overlap", metric, basePath, curPath)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchjson gate: FAIL %s\n", f)
		}
		return fmt.Errorf("%d of %d %s rows regressed past the threshold (first: %s)",
			len(failures), compared, metric, failures[0])
	}
	fmt.Fprintf(w, "benchjson gate: %d %s rows within +%.0f%% of %s (worst %+.1f%%",
		compared, metric, maxRegressPct, basePath, worstPct)
	if worstName != "" {
		fmt.Fprintf(w, " at %s", worstName)
	}
	fmt.Fprintf(w, "; %d skipped)\n", skipped)
	return nil
}
