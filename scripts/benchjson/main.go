// Command benchjson converts `go test -bench` text output into a small,
// stable JSON perf-trajectory file, and validates such files in CI.
//
// Emit (reads bench output on stdin):
//
//	go test -run='^$' -bench=... ./... | go run ./scripts/benchjson > BENCH_agent.json
//
// Check (parses the file and requires every listed benchmark to appear):
//
//	go run ./scripts/benchjson -check BENCH_agent.json BenchmarkAppendParallel ...
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark output line. Name keeps the full sub-benchmark
// path and the -GOMAXPROCS suffix exactly as `go test` printed it; Metrics
// holds every reported "value unit" pair (ns/op, B/op, allocs/op, and any
// b.ReportMetric extras such as entries/op).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the committed trajectory document. NumCPU and Gomaxprocs pin the
// parallelism the numbers were measured under — a BenchmarkAppendParallel
// figure from a 64-way box is not comparable to one from a 1-CPU runner,
// and without these fields the files silently invited that comparison.
type File struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Gomaxprocs int      `json:"gomaxprocs,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	check := flag.Bool("check", false, "validate: args are <file> <required bench name>...")
	numCPU := flag.Int("numcpu", runtime.NumCPU(), "CPUs of the measuring host (recorded in the file)")
	maxprocs := flag.Int("gomaxprocs", runtime.GOMAXPROCS(0), "GOMAXPROCS the benchmarks ran under")
	flag.Parse()
	if *check {
		if flag.NArg() < 2 {
			fatalf("usage: benchjson -check <file> <BenchmarkName>...")
		}
		if err := checkFile(flag.Arg(0), flag.Args()[1:]); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("benchjson: %s names all %d required benchmarks\n", flag.Arg(0), flag.NArg()-1)
		return
	}
	f, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fatalf("%v", err)
	}
	if len(f.Benchmarks) == 0 {
		fatalf("no benchmark result lines on stdin")
	}
	f.NumCPU = *numCPU
	f.Gomaxprocs = *maxprocs
	if f.Goos == "" {
		f.Goos = runtime.GOOS
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

func parseBenchOutput(r *os.File) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: ") && f.Goos == "":
			f.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: ") && f.Goarch == "":
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: ") && f.CPU == "":
			f.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name iterations value unit [value unit ...]";
		// a bare "BenchmarkFoo" announcement before sub-benchmarks is not.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %v", line, err)
			}
			res.Metrics[fields[i+1]] = v
		}
		f.Benchmarks = append(f.Benchmarks, res)
	}
	return f, sc.Err()
}

func checkFile(path string, required []string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return fmt.Errorf("%s does not parse: %v", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("%s has no benchmarks", path)
	}
	for _, want := range required {
		found := false
		for _, r := range f.Benchmarks {
			// Match the benchmark base name: exact, a sub-benchmark
			// ("Name/sub"), or with the -GOMAXPROCS suffix ("Name-8").
			rest, ok := strings.CutPrefix(r.Name, want)
			if ok && (rest == "" || rest[0] == '/' || rest[0] == '-') {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s missing results for %s", path, want)
		}
	}
	return nil
}
