package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeTrajectory marshals a File fixture into dir and returns its path.
func writeTrajectory(t *testing.T, dir, name string, f File) string {
	t.Helper()
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func ratioRow(name string, ratio float64) Result {
	return Result{Name: name, Iterations: 1, Metrics: map[string]float64{"ratio": ratio, "ns/op": 1000}}
}

// TestGatePassesWithinThreshold: small drift under both bounds passes, and
// the summary names the worst row so the CI log shows the trajectory.
func TestGatePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeTrajectory(t, dir, "base.json", File{NumCPU: 1, Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 30.0),
		ratioRow("BenchmarkStressOverhead/alloc/p1/s1", 1.05),
	}})
	cur := writeTrajectory(t, dir, "cur.json", File{NumCPU: 1, Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 33.0), // +10%, under +50%
		ratioRow("BenchmarkStressOverhead/alloc/p1/s1", 1.90), // +81% but within +1.0 slack
	}})
	var out bytes.Buffer
	if err := gateFiles(&out, base, cur, "ratio", 50, 1.0, ""); err != nil {
		t.Fatalf("gate failed on in-threshold drift: %v", err)
	}
	if !strings.Contains(out.String(), "2 ratio rows within") {
		t.Errorf("summary missing compared count: %q", out.String())
	}
	if !strings.Contains(out.String(), "alloc/p1/s1") {
		t.Errorf("summary does not name the worst row: %q", out.String())
	}
}

// TestGateFailsOnRegression: a row past BOTH the relative and absolute
// bound must fail the gate and be named in the error.
func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeTrajectory(t, dir, "base.json", File{Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 30.0),
		ratioRow("BenchmarkStressOverhead/fanout/p1/s1", 2.0),
	}})
	cur := writeTrajectory(t, dir, "cur.json", File{Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 50.0), // +67% and +20 absolute
		ratioRow("BenchmarkStressOverhead/fanout/p1/s1", 2.1),
	}})
	err := gateFiles(&bytes.Buffer{}, base, cur, "ratio", 50, 1.0, "")
	if err == nil {
		t.Fatal("gate passed a +67%/+20-absolute regression")
	}
	if !strings.Contains(err.Error(), "storm/p1/s1") {
		t.Errorf("gate error does not name the offending metric: %v", err)
	}
}

// TestGateImprovementAlwaysPasses: getting faster is never a failure, even
// a large swing downward.
func TestGateImprovementAlwaysPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeTrajectory(t, dir, "base.json", File{Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 30.0),
	}})
	cur := writeTrajectory(t, dir, "cur.json", File{Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 3.0),
	}})
	if err := gateFiles(&bytes.Buffer{}, base, cur, "ratio", 50, 1.0, ""); err != nil {
		t.Fatalf("gate failed an improvement: %v", err)
	}
}

// TestGateSkipsRowsMissingFromBaseline: a current row the baseline host
// never measured (e.g. s8 rows recorded on a single-core box) is skipped
// with a note, not failed — but the remaining overlap is still gated.
func TestGateSkipsRowsMissingFromBaseline(t *testing.T) {
	dir := t.TempDir()
	base := writeTrajectory(t, dir, "base.json", File{NumCPU: 1, Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 30.0),
	}})
	cur := writeTrajectory(t, dir, "cur.json", File{NumCPU: 8, Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 31.0),
		ratioRow("BenchmarkStressOverhead/storm/p1/s8", 12.0),
	}})
	var out bytes.Buffer
	if err := gateFiles(&out, base, cur, "ratio", 50, 1.0, ""); err != nil {
		t.Fatalf("gate failed on a baseline-missing row: %v", err)
	}
	if !strings.Contains(out.String(), "storm/p1/s8 not in baseline") {
		t.Errorf("missing-row skip not noted: %q", out.String())
	}
	if !strings.Contains(out.String(), "1 skipped") {
		t.Errorf("summary missing skip count: %q", out.String())
	}
}

// TestGateRefusesEmptyOverlap: if renames (or a wrong -prefix) leave zero
// comparable rows, the gate must fail rather than silently pass.
func TestGateRefusesEmptyOverlap(t *testing.T) {
	dir := t.TempDir()
	base := writeTrajectory(t, dir, "base.json", File{Benchmarks: []Result{
		ratioRow("BenchmarkOld/storm/p1/s1", 30.0),
	}})
	cur := writeTrajectory(t, dir, "cur.json", File{Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 30.0),
	}})
	err := gateFiles(&bytes.Buffer{}, base, cur, "ratio", 50, 1.0, "")
	if err == nil || !strings.Contains(err.Error(), "no longer overlap") {
		t.Fatalf("gate did not refuse an empty overlap: %v", err)
	}
	// Same refusal when a prefix filters everything out.
	err = gateFiles(&bytes.Buffer{}, base, cur, "ratio", 50, 1.0, "BenchmarkNope")
	if err == nil {
		t.Fatal("gate passed with a prefix matching nothing")
	}
}

// TestGatePrefixRestrictsRows: -prefix confines the gate to one family so
// unrelated trajectories in the same file cannot trip it.
func TestGatePrefixRestrictsRows(t *testing.T) {
	dir := t.TempDir()
	base := writeTrajectory(t, dir, "base.json", File{Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 30.0),
		ratioRow("BenchmarkOther/thing", 1.0),
	}})
	cur := writeTrajectory(t, dir, "cur.json", File{Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 31.0),
		ratioRow("BenchmarkOther/thing", 500.0), // would fail if gated
	}})
	if err := gateFiles(&bytes.Buffer{}, base, cur, "ratio", 50, 1.0, "BenchmarkStressOverhead/"); err != nil {
		t.Fatalf("prefix did not confine the gate: %v", err)
	}
}

// TestBenchGateScriptFailsOnRegression execs the real gate script in
// overhead-compare mode against a doctored regression and requires a
// non-zero exit naming the offending metric — the CI contract, end to end.
func TestBenchGateScriptFailsOnRegression(t *testing.T) {
	if _, err := execLook("bash"); err != nil {
		t.Skip("bash not available")
	}
	dir := t.TempDir()
	base := writeTrajectory(t, dir, "base.json", File{Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 10.0),
		ratioRow("BenchmarkStressOverhead/alloc/p1/s1", 1.1),
	}})
	cur := writeTrajectory(t, dir, "cur.json", File{Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 40.0), // 4x: past both bounds
		ratioRow("BenchmarkStressOverhead/alloc/p1/s1", 1.1),
	}})
	out, err := runGateScript(t, base, cur)
	if err == nil {
		t.Fatalf("bench_gate.sh passed a 4x ratio regression:\n%s", out)
	}
	if !strings.Contains(out, "storm/p1/s1") {
		t.Errorf("gate output does not name the offending metric:\n%s", out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("gate output has no FAIL line:\n%s", out)
	}

	// And the same fixtures with no regression must pass with a PASS line.
	okCur := writeTrajectory(t, dir, "ok.json", File{Benchmarks: []Result{
		ratioRow("BenchmarkStressOverhead/storm/p1/s1", 10.5),
		ratioRow("BenchmarkStressOverhead/alloc/p1/s1", 1.0),
	}})
	out, err = runGateScript(t, base, okCur)
	if err != nil {
		t.Fatalf("bench_gate.sh failed an in-threshold run: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Errorf("gate output has no PASS line:\n%s", out)
	}
}

// execLook is a seam over exec.LookPath so the script test can skip on
// hosts without bash.
func execLook(name string) (string, error) { return exec.LookPath(name) }

// runGateScript invokes scripts/bench_gate.sh from the repo root in
// overhead-compare mode and returns its combined output.
func runGateScript(t *testing.T, base, cur string) (string, error) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("bash", "scripts/bench_gate.sh", "overhead-compare", base, cur)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	return string(out), err
}
