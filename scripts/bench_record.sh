#!/usr/bin/env bash
# Record the perf trajectory: run the recorded benchmark suite (defined
# once in bench_suite.sh) and write the results as BENCH_shmlog.json (log
# hot paths), BENCH_agent.json (analyzer + fleet agent), BENCH_store.json
# (profile history store ingest/query) and BENCH_overhead.json (the
# stress-personality overhead gauntlet). Numbers are machine-dependent —
# regenerate on quiet hardware and commit the files; scripts/bench_gate.sh
# checks all but the last only for existence and gates BENCH_overhead.json's
# ratio trajectory.
#
#   BENCHTIME=1s ./scripts/bench_record.sh    # default 300ms per benchmark
#   ONLY=overhead ./scripts/bench_record.sh   # refresh one file (shmlog|agent|store|overhead)
#   FORCE=1 ./scripts/bench_record.sh         # allow fewer CPUs than the committed file
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_suite.sh

benchtime="${BENCHTIME:-300ms}"
only="${ONLY:-}"

# Pin the measuring host's parallelism into the files: numbers from a
# 1-CPU runner and a 64-way box are different experiments.
ncpu="$(nproc)"
maxprocs="${GOMAXPROCS:-$ncpu}"
meta=(-numcpu "$ncpu" -gomaxprocs "$maxprocs")

wants() { [ -z "$only" ] || [ "$only" = "$1" ]; }

# guard_cpus <file>: refuse to overwrite a trajectory recorded on more
# CPUs with one from fewer — that silently shrinks the shard grid and
# replaces contention measurements with a weaker experiment. FORCE=1
# overrides when the downgrade is intentional (e.g. retiring a big box).
guard_cpus() {
    local file="$1" recorded
    [ -f "$file" ] || return 0
    recorded="$(go run ./scripts/benchjson -meta "$file" | awk -F= '$1=="num_cpu"{print $2}')"
    [ -n "$recorded" ] || return 0
    if [ "$ncpu" -lt "$recorded" ] && [ "${FORCE:-0}" != "1" ]; then
        echo "bench record: refusing to overwrite $file (recorded on ${recorded} CPUs) from a ${ncpu}-CPU host" >&2
        echo "bench record: rerun with FORCE=1 to downgrade deliberately" >&2
        exit 1
    fi
}

if wants shmlog; then
    guard_cpus BENCH_shmlog.json
    go test -run='^$' -bench="$(bench_pattern "${SHMLOG_BENCHES[@]}")" \
        -benchtime="$benchtime" -count=1 . |
        tee /dev/stderr |
        go run ./scripts/benchjson "${meta[@]}" >BENCH_shmlog.json
    echo "wrote BENCH_shmlog.json (${ncpu} CPUs)" >&2
fi

if wants agent; then
    guard_cpus BENCH_agent.json
    go test -run='^$' -bench="$(bench_pattern "${AGENT_BENCHES[@]}")" \
        -benchtime="$benchtime" -count=1 . ./internal/agent |
        tee /dev/stderr |
        go run ./scripts/benchjson "${meta[@]}" >BENCH_agent.json
    echo "wrote BENCH_agent.json (${ncpu} CPUs)" >&2
fi

if wants store; then
    guard_cpus BENCH_store.json
    go test -run='^$' -bench="$(bench_pattern "${STORE_BENCHES[@]}")" \
        -benchtime="$benchtime" -count=1 ./internal/profilestore |
        tee /dev/stderr |
        go run ./scripts/benchjson "${meta[@]}" >BENCH_store.json
    echo "wrote BENCH_store.json (${ncpu} CPUs)" >&2
fi

if wants overhead; then
    guard_cpus BENCH_overhead.json
    # The gauntlet is its own runner (not `go test -bench`): teeperf stress
    # emits bench-format lines so the same benchjson pipeline applies. The
    # quick sweep matches what bench_gate.sh measures in CI, keeping the
    # committed baseline and the gated run the same experiment. Sweep to
    # completion before converting — a concurrent `go run` compile on a
    # small host would perturb the first personality's measurements.
    raw="$(mktemp)"
    trap 'rm -f "$raw"' EXIT
    overhead_sweep >"$raw"
    tee /dev/stderr <"$raw" |
        go run ./scripts/benchjson "${meta[@]}" >BENCH_overhead.json
    echo "wrote BENCH_overhead.json (${ncpu} CPUs)" >&2
fi
