#!/usr/bin/env bash
# Record the perf trajectory: run the recorded benchmark suite (defined
# once in bench_suite.sh) and write the results as BENCH_shmlog.json (log
# hot paths) and BENCH_agent.json (analyzer + fleet agent). Numbers are
# machine-dependent — regenerate on quiet hardware and commit the files;
# scripts/bench_gate.sh only checks they parse and name every required
# benchmark, never thresholds.
#
#   BENCHTIME=1s ./scripts/bench_record.sh     # default 300ms per benchmark
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_suite.sh

benchtime="${BENCHTIME:-300ms}"

# Pin the measuring host's parallelism into the files: numbers from a
# 1-CPU runner and a 64-way box are different experiments.
ncpu="$(nproc)"
maxprocs="${GOMAXPROCS:-$ncpu}"
meta=(-numcpu "$ncpu" -gomaxprocs "$maxprocs")

go test -run='^$' -bench="$(bench_pattern "${SHMLOG_BENCHES[@]}")" \
    -benchtime="$benchtime" -count=1 . |
    tee /dev/stderr |
    go run ./scripts/benchjson "${meta[@]}" > BENCH_shmlog.json
echo "wrote BENCH_shmlog.json" >&2

go test -run='^$' -bench="$(bench_pattern "${AGENT_BENCHES[@]}")" \
    -benchtime="$benchtime" -count=1 . ./internal/agent |
    tee /dev/stderr |
    go run ./scripts/benchjson "${meta[@]}" > BENCH_agent.json
echo "wrote BENCH_agent.json" >&2
