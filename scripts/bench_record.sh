#!/usr/bin/env bash
# Record the perf trajectory: run the seed hot-path benchmarks plus the
# fleet-agent scrape benchmark and write the results as BENCH_agent.json.
# Numbers are machine-dependent — regenerate on quiet hardware and commit
# the file; scripts/bench_gate.sh only checks it parses and names every
# required benchmark, never thresholds.
#
#   BENCHTIME=1s ./scripts/bench_record.sh     # default 300ms per benchmark
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-300ms}"
pattern='^(BenchmarkAppendParallel|BenchmarkLogWriteTo|BenchmarkLogRead|BenchmarkAnalyzerParallel|BenchmarkAgentScrape)$'

go test -run='^$' -bench="$pattern" -benchtime="$benchtime" -count=1 \
    . ./internal/agent |
    tee /dev/stderr |
    go run ./scripts/benchjson > BENCH_agent.json
echo "wrote BENCH_agent.json" >&2
