#!/usr/bin/env bash
# Bench-regression smoke gate.
#
# Runs the hot-path benchmarks (log append, bundle write-out, analyzer) for
# a single iteration and fails if any of the seed benchmarks no longer
# compiles, runs, or reports a result. This is an EXISTENCE gate, not a
# threshold gate: single-iteration numbers on shared CI runners are noise,
# but a benchmark that silently stopped running means a refactor unhooked
# the perf suite — exactly the regression this catches. Real numbers live
# in EXPERIMENTS.md, measured on quiet hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

# -run matches nothing so only benchmarks execute; -json gives a stable,
# machine-checkable record of which benchmarks actually ran.
go test -json -run='^$' -bench='Append|Analyzer|WriteTo|LogRead|AgentScrape' -benchtime=1x -count=1 ./... >"$out" || {
    echo "bench gate: benchmark run failed" >&2
    grep -E '"Action":"(fail|build-fail)"' "$out" >&2 || true
    exit 1
}

# Every seed benchmark must have produced an output line. Extending the
# bench suite does not touch this list; removing or renaming a seed
# benchmark must update it deliberately.
required=(
    BenchmarkAgentScrape
    BenchmarkAnalyzer
    BenchmarkAnalyzerParallel
    BenchmarkAppendParallel
    BenchmarkLogRead
    BenchmarkLogWriteTo
)

missing=0
for b in "${required[@]}"; do
    # A benchmark that ran emits its name in an Output event — either a
    # result line ("BenchmarkLogWriteTo-8 ...") or, for benchmarks with
    # sub-benchmarks, the bare announcement ("BenchmarkAppendParallel\n")
    # followed by "BenchmarkAppendParallel/g1/k1-8 ..." lines.
    if ! grep -qE "\"Output\":\"${b}(-|/| |\\\\n)" "$out"; then
        echo "bench gate: seed benchmark ${b} did not run" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    exit 1
fi
echo "bench gate: all ${#required[@]} seed benchmarks ran"

# The committed perf-trajectory file must parse and name every benchmark in
# the recorded suite (regenerate with scripts/bench_record.sh).
go run ./scripts/benchjson -check BENCH_agent.json \
    BenchmarkAppendParallel \
    BenchmarkLogWriteTo \
    BenchmarkLogRead \
    BenchmarkAnalyzerParallel \
    BenchmarkAgentScrape
