#!/usr/bin/env bash
# Bench-regression smoke gate.
#
# Runs the recorded benchmark suite (defined once in bench_suite.sh, shared
# with bench_record.sh) for a single iteration and fails if any benchmark
# no longer compiles, runs, or reports a result. This is an EXISTENCE gate,
# not a threshold gate: single-iteration numbers on shared CI runners are
# noise, but a benchmark that silently stopped running means a refactor
# unhooked the perf suite — exactly the regression this catches. Real
# numbers live in EXPERIMENTS.md and the BENCH_*.json trajectory files,
# measured on quiet hardware.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_suite.sh

required=("${SHMLOG_BENCHES[@]}" "${AGENT_BENCHES[@]}")

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

# -run matches nothing so only benchmarks execute; -json gives a stable,
# machine-checkable record of which benchmarks actually ran.
go test -json -run='^$' -bench="$(bench_pattern "${required[@]}")" \
    -benchtime=1x -count=1 ./... >"$out" || {
    echo "bench gate: benchmark run failed" >&2
    grep -E '"Action":"(fail|build-fail)"' "$out" >&2 || true
    exit 1
}

missing=0
for b in "${required[@]}"; do
    # A benchmark that ran emits its name in an Output event — either a
    # result line ("BenchmarkLogWriteTo-8 ...") or, for benchmarks with
    # sub-benchmarks, the bare announcement ("BenchmarkAppendParallel\n")
    # followed by "BenchmarkAppendParallel/g1/k1/s1-8 ..." lines.
    if ! grep -qE "\"Output\":\"${b}(-|/| |\\\\n)" "$out"; then
        echo "bench gate: suite benchmark ${b} did not run" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    exit 1
fi
echo "bench gate: all ${#required[@]} suite benchmarks ran"

# The committed perf-trajectory files must parse and name every benchmark
# in their half of the suite (regenerate with scripts/bench_record.sh).
go run ./scripts/benchjson -check BENCH_shmlog.json "${SHMLOG_BENCHES[@]}"
go run ./scripts/benchjson -check BENCH_agent.json "${AGENT_BENCHES[@]}"
