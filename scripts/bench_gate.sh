#!/usr/bin/env bash
# Bench-regression gate. Every gated metric prints exactly one
# "bench gate: PASS <metric>" or "bench gate: FAIL <metric>: <reason>"
# line; the first FAIL exits non-zero naming the offending metric.
#
# Modes:
#   bench_gate.sh                # all: suite + overhead
#   bench_gate.sh suite          # existence gate + trajectory-file checks
#                                # + sampling p64/p1 threshold
#   bench_gate.sh overhead       # run the quick stress sweep and gate its
#                                # ratio rows against BENCH_overhead.json
#   bench_gate.sh overhead-compare <baseline.json> <current.json>
#                                # gate two already-recorded trajectories
#                                # (used by the benchjson script test)
#
# The suite gate is an EXISTENCE gate: single-iteration numbers on shared
# CI runners are noise, but a benchmark that silently stopped running
# means a refactor unhooked the perf suite. The two THRESHOLD gates check
# ratios, not absolute times: the sampling p64/p1 speedup and the stress
# instrumented/native overhead ratios are both computed within one run on
# one core, so they survive machine-speed differences. Overhead thresholds
# are env-tunable via OVERHEAD_GATE_PCT / OVERHEAD_GATE_SLACK.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_suite.sh

pass() { echo "bench gate: PASS $*"; }
fail() {
    echo "bench gate: FAIL $*" >&2
    exit 1
}

gate_suite() {
    local required=("${SHMLOG_BENCHES[@]}" "${AGENT_BENCHES[@]}" "${STORE_BENCHES[@]}")
    local out missing=0
    out="$(mktemp)"
    # shellcheck disable=SC2064 # expand $out now
    trap "rm -f '$out'" RETURN

    # -run matches nothing so only benchmarks execute; -json gives a
    # stable, machine-checkable record of which benchmarks actually ran.
    go test -json -run='^$' -bench="$(bench_pattern "${required[@]}")" \
        -benchtime=1x -count=1 ./... >"$out" || {
        grep -E '"Action":"(fail|build-fail)"' "$out" >&2 || true
        fail "suite benchmarks: benchmark run failed"
    }

    local b
    for b in "${required[@]}"; do
        # A benchmark that ran emits its name in an Output event — either a
        # result line ("BenchmarkLogWriteTo-8 ...") or, for benchmarks with
        # sub-benchmarks, the bare announcement ("BenchmarkAppendParallel\n")
        # followed by "BenchmarkAppendParallel/g1/k1/s1-8 ..." lines.
        if ! grep -qE "\"Output\":\"${b}(-|/| |\\\\n)" "$out"; then
            echo "bench gate: suite benchmark ${b} did not run" >&2
            missing=1
        fi
    done
    if [ "$missing" -ne 0 ]; then
        fail "suite benchmarks: some did not run (named above)"
    fi
    pass "suite benchmarks: all ${#required[@]} ran"

    # The committed perf-trajectory files must parse and name every
    # benchmark in their half of the suite (scripts/bench_record.sh).
    go run ./scripts/benchjson -check BENCH_shmlog.json "${SHMLOG_BENCHES[@]}" ||
        fail "BENCH_shmlog.json: stale or unparseable (regenerate with scripts/bench_record.sh)"
    pass "BENCH_shmlog.json names all ${#SHMLOG_BENCHES[@]} suite benchmarks"
    go run ./scripts/benchjson -check BENCH_agent.json "${AGENT_BENCHES[@]}" ||
        fail "BENCH_agent.json: stale or unparseable (regenerate with scripts/bench_record.sh)"
    pass "BENCH_agent.json names all ${#AGENT_BENCHES[@]} suite benchmarks"
    go run ./scripts/benchjson -check BENCH_store.json "${STORE_BENCHES[@]}" ||
        fail "BENCH_store.json: stale or unparseable (regenerate with scripts/bench_record.sh)"
    pass "BENCH_store.json names all ${#STORE_BENCHES[@]} suite benchmarks"

    # Sampling-overhead THRESHOLD gate. Absolute ns/op is machine noise,
    # but the p64/p1 ratio within a single run is not: both halves execute
    # back to back on the same core. A ratio below SAMPLING_GATE_MIN means
    # suppressed events regressed onto the guarded slow path (the whole
    # point of sampling mode is that they don't).
    local ratio_out p1 p64
    ratio_out="$(go test -run='^$' -bench='^BenchmarkAppendSampled$' \
        -benchtime=200000x -count=1 .)"
    # The -GOMAXPROCS name suffix is absent when GOMAXPROCS=1.
    p1="$(awk '$1 ~ /^BenchmarkAppendSampled\/p1(-[0-9]+)?$/  {print $3; exit}' <<<"$ratio_out")"
    p64="$(awk '$1 ~ /^BenchmarkAppendSampled\/p64(-[0-9]+)?$/ {print $3; exit}' <<<"$ratio_out")"
    if [ -z "$p1" ] || [ -z "$p64" ]; then
        echo "$ratio_out" >&2
        fail "sampling speedup: BenchmarkAppendSampled produced no p1/p64 results"
    fi
    if awk -v p1="$p1" -v p64="$p64" -v min="$SAMPLING_GATE_MIN" 'BEGIN {
        ratio = p1 / p64
        printf "bench gate: sampling p64 speedup %.1fx (p1 %.1f ns/op, p64 %.1f ns/op, floor %sx)\n",
            ratio, p1, p64, min
        exit !(ratio >= min)
    }'; then
        pass "sampling speedup: p64/p1 at or above ${SAMPLING_GATE_MIN}x floor"
    else
        fail "sampling speedup: p64/p1 regressed below ${SAMPLING_GATE_MIN}x floor"
    fi
}

# gate_overhead_compare <baseline.json> <current.json>: threshold-gate the
# overhead ratio rows of current against baseline. benchjson prints one
# "benchjson gate: FAIL <row> ..." line per offending metric on stderr.
gate_overhead_compare() {
    local basefile="$1" curfile="$2"
    if go run ./scripts/benchjson -gate -metric ratio \
        -max-regress "$OVERHEAD_GATE_PCT" -slack "$OVERHEAD_GATE_SLACK" \
        -prefix "BenchmarkStressOverhead/" "$basefile" "$curfile"; then
        pass "overhead ratios: within +${OVERHEAD_GATE_PCT}% (+${OVERHEAD_GATE_SLACK} abs) of ${basefile}"
    else
        fail "overhead ratios: regressed vs ${basefile} (offending rows named above)"
    fi
}

gate_overhead() {
    go run ./scripts/benchjson -check BENCH_overhead.json "${OVERHEAD_BENCHES[@]}" ||
        fail "BENCH_overhead.json: stale or unparseable (regenerate with scripts/bench_record.sh)"
    pass "BENCH_overhead.json names all ${#OVERHEAD_BENCHES[@]} gauntlet rows"

    # Record the host parallelism in the log: single-core runners measure
    # only the s1 half of the shard grid, and the gate compares just the
    # row intersection with the committed baseline.
    echo "bench gate: overhead sweep on $(nproc) CPUs, GOMAXPROCS ${GOMAXPROCS:-$(nproc)}"
    local raw cur
    raw="$(mktemp)"
    cur="$(mktemp)"
    # shellcheck disable=SC2064 # expand now
    trap "rm -f '$raw' '$cur'" RETURN
    # Run the sweep to completion before converting: piping straight into
    # `go run ./scripts/benchjson` would compile benchjson concurrently
    # with the first personality's measurements, which on small runners
    # inflates its ratios.
    overhead_sweep >"$raw" ||
        fail "overhead sweep: stress run failed"
    go run ./scripts/benchjson <"$raw" >"$cur" ||
        fail "overhead sweep: benchjson conversion failed"
    gate_overhead_compare BENCH_overhead.json "$cur"
}

mode="${1:-all}"
case "$mode" in
all)
    gate_suite
    gate_overhead
    ;;
suite)
    gate_suite
    ;;
overhead)
    gate_overhead
    ;;
overhead-compare)
    [ "$#" -eq 3 ] || fail "usage: bench_gate.sh overhead-compare <baseline.json> <current.json>"
    gate_overhead_compare "$2" "$3"
    ;;
*)
    fail "unknown mode '$mode' (want: all | suite | overhead | overhead-compare <base> <cur>)"
    ;;
esac
