#!/usr/bin/env bash
# Bench-regression smoke gate.
#
# Runs the recorded benchmark suite (defined once in bench_suite.sh, shared
# with bench_record.sh) for a single iteration and fails if any benchmark
# no longer compiles, runs, or reports a result. This is an EXISTENCE gate,
# not a threshold gate: single-iteration numbers on shared CI runners are
# noise, but a benchmark that silently stopped running means a refactor
# unhooked the perf suite — exactly the regression this catches. Real
# numbers live in EXPERIMENTS.md and the BENCH_*.json trajectory files,
# measured on quiet hardware.
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_suite.sh

required=("${SHMLOG_BENCHES[@]}" "${AGENT_BENCHES[@]}")

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

# -run matches nothing so only benchmarks execute; -json gives a stable,
# machine-checkable record of which benchmarks actually ran.
go test -json -run='^$' -bench="$(bench_pattern "${required[@]}")" \
    -benchtime=1x -count=1 ./... >"$out" || {
    echo "bench gate: benchmark run failed" >&2
    grep -E '"Action":"(fail|build-fail)"' "$out" >&2 || true
    exit 1
}

missing=0
for b in "${required[@]}"; do
    # A benchmark that ran emits its name in an Output event — either a
    # result line ("BenchmarkLogWriteTo-8 ...") or, for benchmarks with
    # sub-benchmarks, the bare announcement ("BenchmarkAppendParallel\n")
    # followed by "BenchmarkAppendParallel/g1/k1/s1-8 ..." lines.
    if ! grep -qE "\"Output\":\"${b}(-|/| |\\\\n)" "$out"; then
        echo "bench gate: suite benchmark ${b} did not run" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    exit 1
fi
echo "bench gate: all ${#required[@]} suite benchmarks ran"

# The committed perf-trajectory files must parse and name every benchmark
# in their half of the suite (regenerate with scripts/bench_record.sh).
go run ./scripts/benchjson -check BENCH_shmlog.json "${SHMLOG_BENCHES[@]}"
go run ./scripts/benchjson -check BENCH_agent.json "${AGENT_BENCHES[@]}"

# Sampling-overhead THRESHOLD gate — the one place a number is checked.
# Absolute ns/op is machine noise, but the p64/p1 ratio within a single
# run is not: both halves execute back to back on the same core. A ratio
# below SAMPLING_GATE_MIN means suppressed events regressed onto the
# guarded slow path (the whole point of sampling mode is that they don't),
# so it fails the gate. Enough iterations to settle the ratio, still <1s.
ratio_out="$(go test -run='^$' -bench='^BenchmarkAppendSampled$' \
    -benchtime=200000x -count=1 .)"
# The -GOMAXPROCS name suffix is absent when GOMAXPROCS=1.
p1="$(awk '$1 ~ /^BenchmarkAppendSampled\/p1(-[0-9]+)?$/  {print $3; exit}' <<<"$ratio_out")"
p64="$(awk '$1 ~ /^BenchmarkAppendSampled\/p64(-[0-9]+)?$/ {print $3; exit}' <<<"$ratio_out")"
if [ -z "$p1" ] || [ -z "$p64" ]; then
    echo "bench gate: BenchmarkAppendSampled produced no p1/p64 results" >&2
    echo "$ratio_out" >&2
    exit 1
fi
awk -v p1="$p1" -v p64="$p64" -v min="$SAMPLING_GATE_MIN" 'BEGIN {
    ratio = p1 / p64
    printf "bench gate: sampling p64 speedup %.1fx (p1 %.1f ns/op, p64 %.1f ns/op, floor %sx)\n",
        ratio, p1, p64, min
    exit !(ratio >= min)
}' || {
    echo "bench gate: sampling-mode overhead regressed past ${SAMPLING_GATE_MIN}x floor" >&2
    exit 1
}
