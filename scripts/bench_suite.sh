# Single source of truth for the recorded benchmark suite. Sourced by
# bench_record.sh (which runs the benchmarks and writes the trajectory
# files) and bench_gate.sh (which requires every listed benchmark to have
# run AND to appear in the committed file), so the two can no longer
# drift: the gate previously kept its own copy of this list and required
# BenchmarkAnalyzer while the recorder never captured it.
#
# SHMLOG_BENCHES cover the shared-memory log hot paths (recorded to
# BENCH_shmlog.json); AGENT_BENCHES cover the analyzer and fleet-agent
# paths (recorded to BENCH_agent.json).

SHMLOG_BENCHES=(
    BenchmarkAppendParallel
    BenchmarkAppendSampled
    BenchmarkProbeAdaptive
    BenchmarkLogWriteTo
    BenchmarkLogRead
)

# The sampling fast path must keep suppressed events cheap: the gate
# requires BenchmarkAppendSampled/p64 to be at least this many times
# faster (ns/op) than .../p1 in the same run. Measured headroom on the
# reference box is ~6.7-8x; a drop below 5x means the suppressed path
# regressed back onto the guarded slow path.
SAMPLING_GATE_MIN="${SAMPLING_GATE_MIN:-5.0}"

AGENT_BENCHES=(
    BenchmarkAnalyzer
    BenchmarkAnalyzerParallel
    BenchmarkAgentScrape
)

# bench_pattern NAME... -> anchored go-test -bench regex for the names.
bench_pattern() {
    local IFS='|'
    printf '^(%s)$' "$*"
}
