# Single source of truth for the recorded benchmark suite. Sourced by
# bench_record.sh (which runs the benchmarks and writes the trajectory
# files) and bench_gate.sh (which requires every listed benchmark to have
# run AND to appear in the committed file), so the two can no longer
# drift: the gate previously kept its own copy of this list and required
# BenchmarkAnalyzer while the recorder never captured it.
#
# SHMLOG_BENCHES cover the shared-memory log hot paths (recorded to
# BENCH_shmlog.json); AGENT_BENCHES cover the analyzer and fleet-agent
# paths (recorded to BENCH_agent.json).

SHMLOG_BENCHES=(
    BenchmarkAppendParallel
    BenchmarkAppendSampled
    BenchmarkProbeAdaptive
    BenchmarkLogWriteTo
    BenchmarkLogRead
)

# The sampling fast path must keep suppressed events cheap: the gate
# requires BenchmarkAppendSampled/p64 to be at least this many times
# faster (ns/op) than .../p1 in the same run. Measured headroom on the
# reference box is ~6.7-8x; a drop below 5x means the suppressed path
# regressed back onto the guarded slow path.
SAMPLING_GATE_MIN="${SAMPLING_GATE_MIN:-5.0}"

AGENT_BENCHES=(
    BenchmarkAnalyzer
    BenchmarkAnalyzerParallel
    BenchmarkAgentScrape
)

# STORE_BENCHES cover the profile history store (recorded to
# BENCH_store.json): segment ingest (sort + block encode + manifest
# commit) and windowed time-travel queries over a leveled store.
STORE_BENCHES=(
    BenchmarkStoreIngest
    BenchmarkStoreQuery
)

# bench_pattern NAME... -> anchored go-test -bench regex for the names.
bench_pattern() {
    local IFS='|'
    printf '^(%s)$' "$*"
}

# Overhead gauntlet (BENCH_overhead.json): the stress-personality sweep
# recorded by `teeperf stress -bench`. The personality and period lists
# mirror the defaults baked into internal/stress; the gate requires every
# personality x period ratio row plus the native baselines, whatever shard
# counts the recording host could measure (single-core hosts skip s>1).
STRESS_PERSONALITIES=(fanout recursion churn storm alloc mixed)
OVERHEAD_PERIODS=(1 8 64)

OVERHEAD_BENCHES=()
for _pers in "${STRESS_PERSONALITIES[@]}"; do
    OVERHEAD_BENCHES+=("BenchmarkStressOverhead/${_pers}/native")
    for _p in "${OVERHEAD_PERIODS[@]}"; do
        OVERHEAD_BENCHES+=("BenchmarkStressOverhead/${_pers}/p${_p}")
    done
done
unset _pers _p

# Ratio-trajectory gate thresholds: a row fails only when it exceeds BOTH
# the relative and the absolute bound over the committed baseline, so
# near-1.0 rows (alloc, mixed) are not failed by absolute noise and
# large-ratio rows (storm) are not failed by relative noise.
OVERHEAD_GATE_PCT="${OVERHEAD_GATE_PCT:-75}"
OVERHEAD_GATE_SLACK="${OVERHEAD_GATE_SLACK:-1.0}"

# overhead_sweep runs the gauntlet in the short CI mode and emits bench
# lines on stdout (skip notes go to stderr). Used by both bench_record.sh
# (to write BENCH_overhead.json) and bench_gate.sh (to measure the current
# ratios), so the baseline and the gated run are always the same experiment.
overhead_sweep() {
    go run ./cmd/teeperf stress -quick -bench -seed 42 -runs 7 -warmups 2
}
