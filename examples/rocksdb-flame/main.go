// RocksDB flame graph (the paper's Fig 5 scenario): profile an LSM
// key-value store's db_bench ReadRandomWriteRandom workload inside a
// simulated SGX enclave, find the TEE-specific bottlenecks and render the
// flame graph.
//
//	go run ./examples/rocksdb-flame
package main

import (
	"fmt"
	"log"
	"os"

	"teeperf/internal/experiments"
	"teeperf/internal/tee"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("profiling db_bench (80% reads) inside a simulated SGX v1 enclave ...")
	res, err := experiments.RunFig5(experiments.Fig5Config{
		Platform: tee.SGXv1(),
		Ops:      10000,
	})
	if err != nil {
		return err
	}
	if err := experiments.WriteFig5(os.Stdout, res); err != nil {
		return err
	}

	// The actionable insight of Fig 5: timestamping on every operation is
	// a syscall, and syscalls are OCALLs inside the enclave.
	now := res.Profile.SelfFraction("rocksdb::Stats::Now()")
	fmt.Printf("\n=> rocksdb::Stats::Now() costs %.0f%% of the run: every call is an enclave\n", 100*now)
	fmt.Println("   exit. The fix the paper applies to SPDK (cache + periodic correction)")
	fmt.Println("   applies here as well — see examples/spdk-optimize.")

	f, err := os.Create("rocksdb-flame.svg")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteFlameGraph(f, res.Profile, "RocksDB db_bench in SGX (TEE-Perf)"); err != nil {
		return err
	}
	fmt.Println("\nwrote rocksdb-flame.svg")
	return nil
}
