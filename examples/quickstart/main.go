// Quickstart: profile a small application with the TEE-Perf Session API,
// print the hot-method table, run a query, and emit a flame graph.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"teeperf"
)

// The demo application: a parser that tokenizes input and a checksum pass,
// with an artificial hot spot in hashToken.
type app struct {
	th     *teeperf.Thread
	fnMain uint64
	fnTok  uint64
	fnHash uint64
	fnSum  uint64
}

func (a *app) run(data []byte) uint64 {
	a.th.Enter(a.fnMain)
	defer a.th.Exit(a.fnMain)

	var total uint64
	for off := 0; off < len(data); off += 64 {
		end := off + 64
		if end > len(data) {
			end = len(data)
		}
		total += a.tokenize(data[off:end])
	}
	return a.checksum(total)
}

func (a *app) tokenize(chunk []byte) uint64 {
	a.th.Enter(a.fnTok)
	defer a.th.Exit(a.fnTok)
	var v uint64
	for _, b := range chunk {
		v += a.hashToken(b)
	}
	return v
}

func (a *app) hashToken(b byte) uint64 {
	a.th.Enter(a.fnHash)
	defer a.th.Exit(a.fnHash)
	h := uint64(b) * 0x9e3779b97f4a7c15
	for i := 0; i < 8; i++ { // the hot spot
		h = (h ^ (h >> 13)) * 1099511628211
	}
	return h
}

func (a *app) checksum(v uint64) uint64 {
	a.th.Enter(a.fnSum)
	defer a.th.Exit(a.fnSum)
	return v ^ (v >> 32)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Stage 1 (compiler): register the application's functions. Real
	// applications use cmd/teeperf-instrument to generate this.
	session, err := teeperf.New(teeperf.WithCounter(teeperf.CounterTSC))
	if err != nil {
		return err
	}
	a := &app{}
	for _, reg := range []struct {
		name string
		dst  *uint64
		line int
	}{
		{"main.run", &a.fnMain, 24},
		{"main.tokenize", &a.fnTok, 38},
		{"main.hashToken", &a.fnHash, 48},
		{"main.checksum", &a.fnSum, 58},
	} {
		addr, err := session.RegisterFunc(reg.name, "examples/quickstart/main.go", reg.line)
		if err != nil {
			return err
		}
		*reg.dst = addr
	}

	// Stage 2 (recorder): record a run.
	if err := session.Start(); err != nil {
		return err
	}
	th, err := session.Thread()
	if err != nil {
		return err
	}
	a.th = th

	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i * 31)
	}
	result := a.run(data)
	if err := session.Stop(); err != nil {
		return err
	}
	fmt.Printf("application result: %#x\n", result)
	fmt.Printf("recorded %d events\n\n", session.Stats().Entries)

	// Stage 3 (analyzer): hot methods.
	profile, err := session.Profile()
	if err != nil {
		return err
	}
	if err := profile.WriteTable(os.Stdout, 10); err != nil {
		return err
	}

	// The declarative query interface: call counts per function.
	fmt.Println("\nquery: calls and mean self ticks per function")
	frame, err := teeperf.Query(profile).GroupBy(
		[]string{"name"},
		teeperf.Count("calls"),
		teeperf.Mean("self", "mean_self"),
	)
	if err != nil {
		return err
	}
	sorted, err := frame.Sort("calls", teeperf.Desc)
	if err != nil {
		return err
	}
	if err := sorted.WriteTable(os.Stdout); err != nil {
		return err
	}

	// Stage 4 (visualizer): flame graph.
	svg, err := os.Create("quickstart-flame.svg")
	if err != nil {
		return err
	}
	defer svg.Close()
	if err := teeperf.WriteFlameGraphSVG(svg, profile, teeperf.FlameGraphOptions{
		Title: "quickstart",
	}); err != nil {
		return err
	}
	fmt.Println("\nwrote quickstart-flame.svg")

	// Persist the bundle for the teeperf CLI.
	if err := session.Persist("quickstart.teeperf"); err != nil {
		return err
	}
	fmt.Println("wrote quickstart.teeperf (inspect with: go run ./cmd/teeperf analyze -i quickstart.teeperf)")
	return nil
}
