// SPDK optimization walk-through (the paper's §IV-C case study): port a
// user-space NVMe driver into a simulated SGX enclave, use TEE-Perf to
// find that getpid and rdtsc OCALLs eat the run, apply the paper's caching
// fixes, and verify near-native throughput.
//
//	go run ./examples/spdk-optimize
package main

import (
	"fmt"
	"log"
	"os"

	"teeperf/internal/experiments"
	"teeperf/internal/tee"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("SPDK perf: 4 KiB random I/O, 80% reads, queue depth 32")
	fmt.Println("step 1: run native, then the naive SGX port, then the optimized port ...")
	res, err := experiments.RunFig6(experiments.Fig6Config{
		Platform: tee.SGXv1(),
		Ops:      15000,
	})
	if err != nil {
		return err
	}
	if err := experiments.WriteFig6(os.Stdout, res); err != nil {
		return err
	}

	fmt.Println("\nstep 2: what TEE-Perf showed on the naive port (top self time):")
	if err := res.Naive.Profile.WriteTable(os.Stdout, 5); err != nil {
		return err
	}
	// What the profile predicts the fixes are worth (Amdahl), before
	// writing a line of optimization code.
	projection := res.Naive.Profile.WhatIf("getpid", "rdtsc")
	fmt.Printf("\nwhat-if: removing getpid+rdtsc from the critical path projects a %.1fx speedup;\n"+
		"the measured optimized/naive speedup below is %.1fx.\n",
		projection.ProjectedSpeedup, res.Speedup)

	fmt.Println("\nstep 3: the fixes (paper §IV-C):")
	fmt.Println("  * getpid  — the process ID cannot change; cache it after the first call")
	fmt.Println("  * rdtsc   — cache the timestamp and correct it after a fixed number of calls")
	fmt.Println("\nstep 4: the optimized port's profile (top self time):")
	if err := res.Optimized.Profile.WriteTable(os.Stdout, 5); err != nil {
		return err
	}

	for _, run := range []experiments.Fig6Run{res.Naive, res.Optimized} {
		path := "spdk-" + run.Label + ".svg"
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = experiments.WriteFlameGraph(f, run.Profile, "SPDK perf "+run.Label)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
