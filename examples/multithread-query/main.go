// Multithread + query: profile a multithreaded pipeline through the
// teeperf/rt global runtime (the same runtime instrumented binaries use)
// and answer the paper's example question — which thread called which
// method how often — with the declarative query interface.
//
//	go run ./examples/multithread-query
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"teeperf"
	"teeperf/rt"
)

var (
	fnProduce = rt.Register("main.produce", "examples/multithread-query/main.go", 20)
	fnConsume = rt.Register("main.consume", "examples/multithread-query/main.go", 30)
	fnProcess = rt.Register("main.process", "examples/multithread-query/main.go", 40)
)

func produce(ch chan<- int, n int) {
	defer rt.Span(fnProduce)()
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
}

func consume(ch <-chan int, out *uint64, wg *sync.WaitGroup) {
	defer wg.Done()
	defer rt.Span(fnConsume)()
	var local uint64
	for v := range ch {
		local += process(v)
	}
	*out = local
}

func process(v int) uint64 {
	defer rt.Span(fnProcess)()
	h := uint64(v) * 0x9e3779b97f4a7c15
	for i := 0; i < 32; i++ {
		h = (h ^ (h >> 13)) * 1099511628211
	}
	return h
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := rt.Configure(rt.Config{Counter: rt.CounterTSC, LogCapacity: 1 << 20}); err != nil {
		return err
	}

	const workers = 3
	ch := make(chan int)
	results := make([]uint64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go consume(ch, &results[i], &wg)
	}
	produce(ch, 30000)
	wg.Wait()

	path := "multithread.teeperf"
	if err := rt.Finish(path); err != nil {
		return err
	}
	profile, err := teeperf.Load(path)
	if err != nil {
		return err
	}
	fmt.Printf("threads observed: %d\n\n", len(profile.Threads()))

	// The paper's example query: which thread called which method how
	// often.
	frame := teeperf.Query(profile)
	byThread, err := frame.GroupBy([]string{"thread", "name"}, teeperf.Count("calls"), teeperf.Sum("self", "self_ticks"))
	if err != nil {
		return err
	}
	if err := byThread.WriteTable(os.Stdout); err != nil {
		return err
	}

	// A filter query: slow process() executions.
	fmt.Println("\nprocess() executions in the slowest 1% (by inclusive ticks):")
	q, err := frame.Filter(`name == "main.process"`)
	if err != nil {
		return err
	}
	p99, err := q.GroupBy([]string{"name"}, teeperf.Quantile("incl", 0.99, "p99_incl"), teeperf.Count("n"))
	if err != nil {
		return err
	}
	if err := p99.WriteTable(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nbundle written to %s\n", path)
	return nil
}
