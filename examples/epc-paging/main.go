// EPC paging walk-through (the paper's introductory motivation: secure
// paging can slow applications by orders of magnitude — "up to 2000x").
// This example sweeps a random-access working set across the protected-
// memory boundary and then uses TEE-Perf to show where a paging-bound
// application spends its time.
//
//	go run ./examples/epc-paging
package main

import (
	"fmt"
	"log"
	"os"

	"teeperf"
	"teeperf/internal/experiments"
	"teeperf/internal/tee"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("part 1: the cliff — random page touches vs working-set size (EPC = 512 pages)")
	rows, err := experiments.RunEPCSweep(experiments.EPCSweepConfig{})
	if err != nil {
		return err
	}
	if err := experiments.WriteEPCSweep(os.Stdout, rows); err != nil {
		return err
	}

	fmt.Println("\npart 2: what the profile of a paging-bound application looks like")
	// An application with two phases: a resident-set scan (cheap) and a
	// thrashing random walk (expensive). TEE-Perf attributes the pain.
	platform := tee.SGXv1()
	platform.EPCSize = 256 * platform.PageSize
	encl, err := tee.NewEnclave(platform, tee.NewHost(os.Getpid()))
	if err != nil {
		return err
	}
	session, err := teeperf.New(teeperf.WithCounter(teeperf.CounterTSC))
	if err != nil {
		return err
	}
	scanAddr, err := session.RegisterFunc("scan_resident", "epc.go", 10)
	if err != nil {
		return err
	}
	walkAddr, err := session.RegisterFunc("random_walk_thrash", "epc.go", 20)
	if err != nil {
		return err
	}
	if err := session.Start(); err != nil {
		return err
	}
	pt, err := session.Thread()
	if err != nil {
		return err
	}
	th := encl.Thread()

	small, err := encl.Alloc(128 * platform.PageSize)
	if err != nil {
		return err
	}
	big, err := encl.Alloc(1024 * platform.PageSize) // 4x the EPC
	if err != nil {
		return err
	}

	pt.Enter(scanAddr)
	for round := 0; round < 40; round++ {
		for pg := 0; pg < 128; pg++ {
			if err := small.Touch(th, pg*platform.PageSize); err != nil {
				return err
			}
		}
	}
	pt.Exit(scanAddr)

	pt.Enter(walkAddr)
	state := uint64(1)
	for i := 0; i < 5000; i++ {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		if err := big.Touch(th, int(z%1024)*platform.PageSize); err != nil {
			return err
		}
	}
	th.Exit()
	pt.Exit(walkAddr)

	if err := session.Stop(); err != nil {
		return err
	}
	profile, err := session.Profile()
	if err != nil {
		return err
	}
	if err := profile.WriteTable(os.Stdout, 5); err != nil {
		return err
	}
	snap := encl.Snapshot()
	fmt.Printf("\nenclave stats: %d page faults, %v total injected penalty\n",
		snap.PageFaults, snap.Charged.Round(1e6))
	fmt.Println("=> the 5000-touch random walk dwarfs the 5120-touch resident scan:")
	fmt.Println("   every miss beyond the EPC is a secure-paging round trip.")
	return nil
}
