package teeperf

import (
	"bytes"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSessionEndToEnd(t *testing.T) {
	s, err := New(WithCounter(CounterVirtual), WithCapacity(1<<12), WithPID(5))
	if err != nil {
		t.Fatal(err)
	}
	fnMain, err := s.RegisterFunc("app.main", "main.go", 1)
	if err != nil {
		t.Fatal(err)
	}
	fnWork, err := s.RegisterFunc("app.work", "main.go", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Thread(); err == nil {
		t.Fatal("Thread before Start should fail")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("double Start should fail")
	}
	if _, err := s.RegisterFunc("late", "l.go", 1); err == nil {
		t.Fatal("RegisterFunc after Start should fail")
	}

	th, err := s.Thread()
	if err != nil {
		t.Fatal(err)
	}
	th.Enter(fnMain)
	for i := 0; i < 3; i++ {
		th.Enter(fnWork)
		th.Exit(fnWork)
	}
	th.Exit(fnMain)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}

	p, err := s.Profile()
	if err != nil {
		t.Fatal(err)
	}
	work, ok := p.Func("app.work")
	if !ok || work.Calls != 3 {
		t.Fatalf("app.work calls = %v, %v", work.Calls, ok)
	}

	// Query interface: the paper's example — which thread called which
	// method how often.
	f := Query(p)
	byFunc, err := f.GroupBy([]string{"thread", "name"}, Count("calls"))
	if err != nil {
		t.Fatal(err)
	}
	if byFunc.Len() != 2 {
		t.Errorf("query groups = %d, want 2", byFunc.Len())
	}
	hot, err := f.Filter(`name == "app.work"`)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Len() != 3 {
		t.Errorf("filter kept %d rows, want 3", hot.Len())
	}

	// Flame graph.
	var svg bytes.Buffer
	if err := WriteFlameGraphSVG(&svg, p, FlameGraphOptions{Title: "t"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "app.work") {
		t.Error("SVG missing app.work frame")
	}
	var folded bytes.Buffer
	if err := WriteFolded(&folded, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(folded.String(), "app.main;app.work") {
		t.Errorf("folded output wrong:\n%s", folded.String())
	}
}

func TestPersistAndLoad(t *testing.T) {
	s, err := New(WithCounter(CounterVirtual), WithPID(123))
	if err != nil {
		t.Fatal(err)
	}
	fn, err := s.RegisterFunc("f", "f.go", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	th, err := s.Thread()
	if err != nil {
		t.Fatal(err)
	}
	th.Enter(fn)
	th.Exit(fn)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "p.teeperf")
	if err := s.Persist(path); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.PID != 123 {
		t.Errorf("loaded PID = %d, want 123", p.PID)
	}
	if _, ok := p.Func("f"); !ok {
		t.Error("loaded profile missing f")
	}

	var buf bytes.Buffer
	if err := s.PersistTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("Load(missing) should fail")
	}
}

func TestSelectiveSession(t *testing.T) {
	s, err := New(WithCounter(CounterVirtual),
		WithSelective(func(name string) bool { return strings.HasPrefix(name, "hot") }))
	if err != nil {
		t.Fatal(err)
	}
	hot, err := s.RegisterFunc("hot.fn", "h.go", 1)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.RegisterFunc("cold.fn", "c.go", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	th, err := s.Thread()
	if err != nil {
		t.Fatal(err)
	}
	th.Enter(hot)
	th.Enter(cold)
	th.Exit(cold)
	th.Exit(hot)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Entries; got != 2 {
		t.Errorf("selective session recorded %d entries, want 2", got)
	}
}

func TestLoadBiasSession(t *testing.T) {
	s, err := New(WithCounter(CounterVirtual), WithLoadBias(0x4000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterFunc("reloc", "r.go", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	addr := s.AddrOf("reloc")
	if addr == s.Table().Addr("reloc") {
		t.Fatal("AddrOf did not apply the load bias")
	}
	th, err := s.Thread()
	if err != nil {
		t.Fatal(err)
	}
	th.Enter(addr)
	th.Exit(addr)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	p, err := s.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Func("reloc"); !ok {
		t.Error("relocated function not resolved")
	}
}

func TestProfileBeforeStart(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Profile(); err == nil {
		t.Error("Profile before Start should fail")
	}
	if err := s.Stop(); err == nil {
		t.Error("Stop before Start should fail")
	}
	if err := s.Persist("/tmp/x"); err == nil {
		t.Error("Persist before Start should fail")
	}
	if s.AddrOf("nope") != 0 {
		t.Error("AddrOf(unknown) should be 0")
	}
	// Enable/Disable are safe no-ops before Start.
	s.Enable()
	s.Disable()
}

func TestSessionRotate(t *testing.T) {
	s, err := New(WithCounter(CounterVirtual), WithCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	fn, err := s.RegisterFunc("spin", "s.go", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Rotate(); err == nil {
		t.Fatal("Rotate before Start should fail")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	th, err := s.Thread()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		th.Enter(fn)
		th.Exit(fn)
	}
	seg1, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		th.Enter(fn)
		th.Exit(fn)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	seg2, err := s.Profile()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeProfiles(seg1, seg2)
	if err != nil {
		t.Fatal(err)
	}
	stat, _ := merged.Func("spin")
	if stat.Calls != 12 {
		t.Errorf("merged calls = %d, want 12", stat.Calls)
	}
}

func TestSessionMonitorFacade(t *testing.T) {
	s, err := New(WithCounter(CounterVirtual), WithCapacity(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	fn, err := s.RegisterFunc("app.live", "main.go", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Monitor(); err == nil {
		t.Fatal("Monitor before Start should fail")
	}
	if _, err := s.ServeMonitor("127.0.0.1:0"); err == nil {
		t.Fatal("ServeMonitor before Start should fail")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	srv, err := s.ServeMonitor("127.0.0.1:0", WithMonitorInterval(time.Millisecond), WithMonitorHistory(16))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	th, err := s.Thread()
	if err != nil {
		t.Fatal(err)
	}
	th.Enter(fn)
	th.Exit(fn)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}

	mon := srv.Monitor()
	table := mon.Table(0)
	if len(table.Funcs) != 1 || table.Funcs[0].Name != "app.live" || table.Funcs[0].Calls != 1 {
		t.Fatalf("live table via facade = %+v", table.Funcs)
	}
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `teeperf_entries_committed_total{session="main"} 2`) {
		t.Errorf("facade /metrics missing entry count:\n%s", body)
	}
}
