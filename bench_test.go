package teeperf

// One benchmark per paper table/figure plus the ablations from DESIGN.md.
// Run with:
//
//	go test -bench=. -benchmem
//
// Figure/table benches execute the same harnesses as the cmd/ tools (at
// reduced repetition counts so a bench iteration stays bounded) and report
// the figure's headline number through b.ReportMetric.

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"teeperf/internal/analyzer"
	"teeperf/internal/counter"
	"teeperf/internal/experiments"
	"teeperf/internal/flamegraph"
	"teeperf/internal/perfbase"
	"teeperf/internal/phoenix"
	"teeperf/internal/probe"
	"teeperf/internal/query"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

// BenchmarkFig4PhoenixOverhead regenerates Fig 4: TEE-Perf runtime over
// perf runtime on the Phoenix suite inside the SGX model. The reported
// metrics are the per-benchmark ratios and their geometric mean
// (paper: mean 1.9x, string_match 5.7x, linear_regression 0.92x).
func BenchmarkFig4PhoenixOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(experiments.Fig4Config{Scale: 2, Runs: 3, Warmups: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Mean, "mean-ratio")
		for _, row := range res.Rows {
			b.ReportMetric(row.Ratio, row.Benchmark+"-ratio")
		}
	}
}

// BenchmarkFig5RocksDB regenerates Fig 5: db_bench ReadRandomWriteRandom
// (80% reads) under TEE-Perf in SGX. Reported metric: the self-time share
// of rocksdb::Stats::Now(), the paper's headline hotspot.
func BenchmarkFig5RocksDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(experiments.Fig5Config{Ops: 8000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Profile.SelfFraction("rocksdb::Stats::Now()")*100, "stats-now-self-%")
		b.ReportMetric(float64(res.Bench.Ops), "ops")
	}
}

// fig6Config keeps the three SPDK benches comparable.
func fig6Config(ops int) experiments.Fig6Config {
	return experiments.Fig6Config{Ops: ops}
}

// BenchmarkFig6SPDKNaive regenerates Fig 6 (top): the naive SGX port's
// profile. Metrics: getpid and rdtsc self-time shares (paper: ~72%/~20%).
func BenchmarkFig6SPDKNaive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(fig6Config(8000))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Naive.Profile.SelfFraction("getpid")*100, "getpid-self-%")
		b.ReportMetric(res.Naive.Profile.SelfFraction("rdtsc")*100, "rdtsc-self-%")
	}
}

// BenchmarkFig6SPDKOptimized regenerates Fig 6 (bottom): after the caching
// fixes both hotspots collapse (paper: ~0%).
func BenchmarkFig6SPDKOptimized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(fig6Config(8000))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Optimized.Profile.SelfFraction("getpid")*100, "getpid-self-%")
		b.ReportMetric(res.Optimized.Profile.SelfFraction("rdtsc")*100, "rdtsc-self-%")
	}
}

// BenchmarkTableSPDKIOPS regenerates the §IV-C throughput table (paper:
// native 223,808 IOPS / naive 15,821 / optimized 232,736 → 14.7x).
func BenchmarkTableSPDKIOPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(fig6Config(10000))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Native.Perf.IOPS, "native-iops")
		b.ReportMetric(res.Naive.Perf.IOPS, "naive-iops")
		b.ReportMetric(res.Optimized.Perf.IOPS, "optimized-iops")
		b.ReportMetric(res.Speedup, "speedup-x")
	}
}

// --- Ablation A1: lock-free vs mutex log reservation ---

func benchLogAppend(b *testing.B, mode shmlog.Sync, threads int) {
	log, err := shmlog.New(b.N*threads+threads, shmlog.WithSync(mode))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.SetParallelism(threads)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			_ = log.Append(shmlog.Entry{Kind: shmlog.KindCall, Counter: i, Addr: i, ThreadID: 1})
			i++
		}
	})
}

// BenchmarkAblationLogLockFree measures the per-event log write under the
// paper's fetch-and-add design versus the portable mutex fallback.
func BenchmarkAblationLogLockFree(b *testing.B) {
	for _, threads := range []int{1, 4} {
		b.Run("atomic/"+itoa(threads), func(b *testing.B) { benchLogAppend(b, shmlog.SyncAtomic, threads) })
		b.Run("mutex/"+itoa(threads), func(b *testing.B) { benchLogAppend(b, shmlog.SyncMutex, threads) })
	}
}

func itoa(n int) string {
	if n == 1 {
		return "1thread"
	}
	return "4threads"
}

// --- Ablation A2: counter sources ---

// BenchmarkAblationCounterSources measures the full probe cost under each
// counter source.
func BenchmarkAblationCounterSources(b *testing.B) {
	sources := []struct {
		name string
		src  func(word counter.Word) counter.Source
	}{
		{name: "software", src: func(w counter.Word) counter.Source {
			s := counter.NewSoftware(w)
			s.Start()
			b.Cleanup(func() { _ = s.Stop() })
			return s
		}},
		{name: "tsc", src: func(counter.Word) counter.Source { return counter.NewTSC() }},
		{name: "virtual", src: func(counter.Word) counter.Source { return counter.NewVirtual(1) }},
	}
	for _, tc := range sources {
		b.Run(tc.name, func(b *testing.B) {
			log, err := shmlog.New(b.N + 2)
			if err != nil {
				b.Fatal(err)
			}
			rt, err := probe.New(log, tc.src(log))
			if err != nil {
				b.Fatal(err)
			}
			th := rt.Thread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Enter(0x400010)
			}
		})
	}
}

// --- Ablation A3: selective code profiling ---

// BenchmarkAblationSelective compares full instrumentation of string_match
// (the call-densest workload) against profiling only its top-level
// function, the paper's knob for shrinking logs and overhead.
func BenchmarkAblationSelective(b *testing.B) {
	for _, selective := range []bool{false, true} {
		name := "full"
		if selective {
			name = "selective"
		}
		b.Run(name, func(b *testing.B) {
			w := phoenix.StringMatch()
			tab := symtab.New()
			if err := w.RegisterSymbols(tab); err != nil {
				b.Fatal(err)
			}
			log, err := shmlog.New(1 << 23)
			if err != nil {
				b.Fatal(err)
			}
			var opts []probe.Option
			if selective {
				f, err := probe.NewFilter(tab, func(s symtab.Symbol) bool {
					return s.Name == "string_match"
				})
				if err != nil {
					b.Fatal(err)
				}
				opts = append(opts, probe.WithFilter(f))
			}
			rt, err := probe.New(log, counter.NewTSC(), opts...)
			if err != nil {
				b.Fatal(err)
			}
			encl, err := tee.NewEnclave(tee.SGXv1(), tee.NewHost(1))
			if err != nil {
				b.Fatal(err)
			}
			runner, err := w.New(phoenix.Config{Enclave: encl, Hooks: rt.Thread(), AddrOf: tab.Addr}, 1)
			if err != nil {
				b.Fatal(err)
			}
			th := encl.Thread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				log.Reset()
				if _, err := runner(th); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(log.Len()), "log-entries")
		})
	}
}

// --- Ablation A4: sampling-frequency bias ---

// BenchmarkAblationSamplingBias quantifies the perf failure mode TEE-Perf
// avoids: a workload phase-aligned with the sampling period is invisible
// to the sampler. Metric: percentage points of self time mis-attributed.
func BenchmarkAblationSamplingBias(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := perfbase.New()
		th := p.Thread(nil)
		const rounds = 5000
		for r := 0; r < rounds; r++ {
			th.Enter(0xA)
			p.SampleNow()
			th.Exit(0xA)
			th.Enter(0xB) // equally long, between samples
			th.Exit(0xB)
		}
		// True split is 50/50; the sampler sees 100/0.
		bias := (p.Fraction(0xA) - 0.5) * 100
		b.ReportMetric(bias, "misattribution-pp")
	}
}

// --- Ablation A5: log size sensitivity ---

// BenchmarkAblationLogSize runs word_count into logs of shrinking capacity
// and reports the drop rate plus the analyzer's ability to keep working on
// the truncated stream.
func BenchmarkAblationLogSize(b *testing.B) {
	for _, capacity := range []int{1 << 20, 1 << 16, 1 << 12} {
		b.Run(sizeName(capacity), func(b *testing.B) {
			w := phoenix.WordCount()
			tab := symtab.New()
			if err := w.RegisterSymbols(tab); err != nil {
				b.Fatal(err)
			}
			encl, err := tee.NewEnclave(tee.SGXv1(), tee.NewHost(1), tee.WithoutSpin())
			if err != nil {
				b.Fatal(err)
			}
			var dropped, entries float64
			for i := 0; i < b.N; i++ {
				log, err := shmlog.New(capacity)
				if err != nil {
					b.Fatal(err)
				}
				rt, err := probe.New(log, counter.NewVirtual(1))
				if err != nil {
					b.Fatal(err)
				}
				runner, err := w.New(phoenix.Config{Enclave: encl, Hooks: rt.Thread(), AddrOf: tab.Addr}, 1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := runner(encl.Thread()); err != nil {
					b.Fatal(err)
				}
				if _, err := analyzer.Analyze(log, tab); err != nil {
					b.Fatal(err)
				}
				dropped += float64(log.Dropped())
				entries += float64(log.Len())
			}
			b.ReportMetric(dropped/float64(b.N), "dropped")
			b.ReportMetric(entries/float64(b.N), "kept")
		})
	}
}

func sizeName(c int) string {
	switch c {
	case 1 << 20:
		return "1Mi"
	case 1 << 16:
		return "64Ki"
	default:
		return "4Ki"
	}
}

// --- Component micro-benchmarks ---

// BenchmarkProbePair is the cost of one instrumented function call: one
// enter plus one exit probe (the paper's injected-code overhead).
func BenchmarkProbePair(b *testing.B) {
	log, err := shmlog.New(2*b.N + 2)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := probe.New(log, counter.NewTSC())
	if err != nil {
		b.Fatal(err)
	}
	th := rt.Thread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Enter(0x400100)
		th.Exit(0x400100)
	}
}

// BenchmarkPerfPublishPair is the perf baseline's per-call cost (leaf
// publication only), for comparison with BenchmarkProbePair.
func BenchmarkPerfPublishPair(b *testing.B) {
	p := perfbase.New()
	th := p.Thread(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Enter(0x400100)
		th.Exit(0x400100)
	}
}

// BenchmarkAnalyzer measures stage-3 throughput on a synthetic log.
func BenchmarkAnalyzer(b *testing.B) {
	const depth, pairs = 8, 1 << 16
	tab := symtab.New()
	addrs := make([]uint64, depth)
	for i := range addrs {
		addrs[i] = tab.MustRegister("fn"+string(rune('a'+i)), 16, "f.go", i)
	}
	log, err := shmlog.New(2 * depth * pairs)
	if err != nil {
		b.Fatal(err)
	}
	now := uint64(0)
	for p := 0; p < pairs; p++ {
		for d := 0; d < depth; d++ {
			now++
			_ = log.Append(shmlog.Entry{Kind: shmlog.KindCall, Counter: now, Addr: addrs[d], ThreadID: 1})
		}
		for d := depth - 1; d >= 0; d-- {
			now++
			_ = log.Append(shmlog.Entry{Kind: shmlog.KindReturn, Counter: now, Addr: addrs[d], ThreadID: 1})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzer.Analyze(log, tab); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(log.Len()), "entries")
}

// BenchmarkFlameGraphSVG measures stage-4 rendering.
func BenchmarkFlameGraphSVG(b *testing.B) {
	folded := make(map[string]uint64, 256)
	stack := "root"
	for i := 0; i < 256; i++ {
		stack += ";fn" + string(rune('a'+i%26))
		if len(stack) > 200 {
			stack = "root"
		}
		folded[stack] = uint64(i + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := flamegraph.RenderSVG(io.Discard, folded, flamegraph.SVGOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryFilter measures the declarative query engine.
func BenchmarkQueryFilter(b *testing.B) {
	f, err := query.NewFrame("thread", "name", "self")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		_ = f.AppendRow(query.Int(int64(i%8)), query.Str("fn"+string(rune('a'+i%26))), query.Int(int64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := f.Filter(`thread == 3 && self > 5000 && name =~ "f"`)
		if err != nil {
			b.Fatal(err)
		}
		if got.Len() == 0 {
			b.Fatal("filter matched nothing")
		}
	}
}

// BenchmarkRecorderSession measures the end-to-end Session fast path.
func BenchmarkRecorderSession(b *testing.B) {
	tab := symtab.New()
	fn := tab.MustRegister("hot", 16, "h.go", 1)
	rec, err := recorder.New(tab, recorder.WithCounterMode(recorder.CounterTSC), recorder.WithCapacity(2*b.N+16))
	if err != nil {
		b.Fatal(err)
	}
	if err := rec.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := rec.Stop(); err != nil {
			b.Fatal(err)
		}
	}()
	th := rec.Thread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Enter(fn)
		th.Exit(fn)
	}
}

// --- Hot-path suite: batched reservation and bulk log I/O ---

// benchAppendParallel records b.N probe events spread over a fixed number
// of goroutines, each with its own thread handle, reserving log slots in
// blocks of k in a log split into s per-thread tail shards. ns/op is
// therefore ns per event; the byte rate is event payload throughput.
func benchAppendParallel(b *testing.B, goroutines, batch, shards int) {
	// Sized so the fullest shard fits every thread that hashes onto it:
	// at most ceil(g/s) threads per shard, each reserving at most its
	// share of b.N plus one partial batch.
	perThread := b.N/goroutines + b.N%goroutines + batch + 1
	threadsPerShard := (goroutines + shards - 1) / shards
	log, err := shmlog.New(shards*threadsPerShard*perThread, shmlog.WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	rt, err := probe.New(log, counter.NewTSC(), probe.WithBatch(batch))
	if err != nil {
		b.Fatal(err)
	}
	threads := make([]*probe.Thread, goroutines)
	for i := range threads {
		threads[i] = rt.Thread()
	}
	counts := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		counts[i] = b.N / goroutines
	}
	counts[0] += b.N % goroutines

	b.SetBytes(shmlog.EntrySize)
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(th *probe.Thread, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				th.Enter(0x400100)
			}
		}(threads[g], counts[g])
	}
	wg.Wait()
	b.StopTimer()
	rt.Flush()
	if dropped := rt.Dropped(); dropped != 0 {
		b.Fatalf("%d events dropped — capacity sizing bug", dropped)
	}
}

// BenchmarkAppendParallel sweeps writer count against reservation batch
// size and shard count: the contended tail fetch-and-add is paid once per
// k events on one of s independent tail words, so batching should win
// where writers collide and sharding where they collide on the same word.
func BenchmarkAppendParallel(b *testing.B) {
	for _, goroutines := range []int{1, 4, 32} {
		for _, batch := range []int{1, 16, 64} {
			for _, shards := range []int{1, 8, 32} {
				b.Run(fmt.Sprintf("g%d/k%d/s%d", goroutines, batch, shards), func(b *testing.B) {
					benchAppendParallel(b, goroutines, batch, shards)
				})
			}
		}
	}
}

// benchAppendSampled is BenchmarkAppendParallel-style load (several
// goroutines, own thread handles) recording full call PAIRS under a sampling
// period: suppressed pairs skip the counter read and the reservation
// entirely, so ns/op (per pair) should fall steeply as the period grows.
func benchAppendSampled(b *testing.B, goroutines int, period uint64) {
	perThread := 2 * (b.N/goroutines + b.N%goroutines + 2)
	log, err := shmlog.New(goroutines*perThread+64, shmlog.WithSamplePeriod(period))
	if err != nil {
		b.Fatal(err)
	}
	rt, err := probe.New(log, counter.NewTSC())
	if err != nil {
		b.Fatal(err)
	}
	threads := make([]*probe.Thread, goroutines)
	for i := range threads {
		threads[i] = rt.Thread()
	}
	counts := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		counts[i] = b.N / goroutines
	}
	counts[0] += b.N % goroutines

	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(th *probe.Thread, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				th.Enter(0x400100)
				th.Exit(0x400100)
			}
		}(threads[g], counts[g])
	}
	wg.Wait()
	b.StopTimer()
	rt.Flush()
	if dropped := rt.Dropped(); dropped != 0 {
		b.Fatalf("%d events dropped — capacity sizing bug", dropped)
	}
	b.ReportMetric(float64(rt.Masked()), "masked")
}

// BenchmarkAppendSampled sweeps the sampling period on a parallel pair
// workload. The bench gate holds the p64/p1 ratio: period-64 sampling must
// keep at least its 5x probe-side win.
func BenchmarkAppendSampled(b *testing.B) {
	for _, period := range []uint64{1, 8, 64} {
		b.Run(fmt.Sprintf("p%d", period), func(b *testing.B) {
			benchAppendSampled(b, 4, period)
		})
	}
}

// BenchmarkProbeAdaptive compares a fixed batch of 1 against the self-tuning
// controller on the same parallel pair workload: the controller pays a
// latency probe around each reservation but may grow the batch to amortize
// the tail fetch-and-add.
func BenchmarkProbeAdaptive(b *testing.B) {
	for _, mode := range []string{"static", "adaptive"} {
		b.Run(mode, func(b *testing.B) {
			const goroutines = 4
			perThread := 2*(b.N/goroutines+b.N%goroutines) + 64 + 2
			log, err := shmlog.New(goroutines * perThread)
			if err != nil {
				b.Fatal(err)
			}
			opts := []probe.Option{probe.WithBatch(1)}
			if mode == "adaptive" {
				opts = []probe.Option{probe.WithAdaptiveBatch(1, 64)}
			}
			rt, err := probe.New(log, counter.NewTSC(), opts...)
			if err != nil {
				b.Fatal(err)
			}
			threads := make([]*probe.Thread, goroutines)
			for i := range threads {
				threads[i] = rt.Thread()
			}
			counts := make([]int, goroutines)
			for i := 0; i < goroutines; i++ {
				counts[i] = b.N / goroutines
			}
			counts[0] += b.N % goroutines

			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(th *probe.Thread, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						th.Enter(0x400100)
						th.Exit(0x400100)
					}
				}(threads[g], counts[g])
			}
			wg.Wait()
			b.StopTimer()
			rt.Flush()
			if mode == "adaptive" {
				grows, shrinks := rt.BatchAdjustments()
				b.ReportMetric(float64(rt.Batch()), "final-batch")
				b.ReportMetric(float64(grows), "grows")
				b.ReportMetric(float64(shrinks), "shrinks")
			}
		})
	}
}

// newFilledLog builds a committed log of exactly entries events.
func newFilledLog(b *testing.B, entries int) *shmlog.Log {
	b.Helper()
	log, err := shmlog.New(entries)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < entries; i++ {
		kind := shmlog.KindCall
		if i%2 == 1 {
			kind = shmlog.KindReturn
		}
		if err := log.Append(shmlog.Entry{Kind: kind, Counter: uint64(i + 1), Addr: 0x400000 + uint64(i%64)*16, ThreadID: uint64(i%4) + 1}); err != nil {
			b.Fatal(err)
		}
	}
	return log
}

// BenchmarkLogWriteTo measures persisting a filled 1Mi-entry segment
// through the bulk encoder (MB/s of on-disk format produced).
func BenchmarkLogWriteTo(b *testing.B) {
	const entries = 1 << 20
	log := newFilledLog(b, entries)
	b.SetBytes(int64(shmlog.HeaderSize + entries*shmlog.EntrySize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := log.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLogRead measures decoding the persisted format back into a log
// (MB/s of on-disk format consumed).
func BenchmarkLogRead(b *testing.B) {
	const entries = 1 << 20
	log := newFilledLog(b, entries)
	var buf bytes.Buffer
	if _, err := log.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shmlog.Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzerParallel measures stage-3 throughput with the
// worker-pool analyzer on a multi-thread log, against the same log
// analyzed serially (the Parallelism=1 subbench).
func BenchmarkAnalyzerParallel(b *testing.B) {
	const depth, pairs, nthreads = 8, 1 << 13, 8
	tab := symtab.New()
	addrs := make([]uint64, depth)
	for i := range addrs {
		addrs[i] = tab.MustRegister("pfn"+string(rune('a'+i)), 16, "f.go", i)
	}
	log, err := shmlog.New(2 * depth * pairs * nthreads)
	if err != nil {
		b.Fatal(err)
	}
	now := uint64(0)
	for p := 0; p < pairs; p++ {
		for tid := uint64(1); tid <= nthreads; tid++ {
			for d := 0; d < depth; d++ {
				now++
				_ = log.Append(shmlog.Entry{Kind: shmlog.KindCall, Counter: now, Addr: addrs[d], ThreadID: tid})
			}
			for d := depth - 1; d >= 0; d-- {
				now++
				_ = log.Append(shmlog.Entry{Kind: shmlog.KindReturn, Counter: now, Addr: addrs[d], ThreadID: tid})
			}
		}
	}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(log.Len() * shmlog.EntrySize))
			for i := 0; i < b.N; i++ {
				if _, err := analyzer.AnalyzeWith(log, tab, analyzer.Options{Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation A6: EPC paging cliff (the intro's motivation) ---

// BenchmarkAblationEPCPaging sweeps a random-access working set across the
// EPC boundary and reports the steady-state slowdown of the thrashing
// configuration (the paper's intro cites up to 2000x for EPC paging).
func BenchmarkAblationEPCPaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunEPCSweep(experiments.EPCSweepConfig{
			EPCPages: 256,
			Touches:  20000,
		})
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Slowdown, "thrash-slowdown-x")
		b.ReportMetric(float64(last.PageFaults), "thrash-faults")
	}
}

// --- Generality: the same pipeline on every TEE platform ---

// BenchmarkGeneralityPlatforms runs one Phoenix workload under TEE-Perf on
// all six platform models with an identical pipeline (§II-A's generality
// goal) and reports each platform's runtime in milliseconds.
func BenchmarkGeneralityPlatforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunPlatformSweep("histogram", 1, 2)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Runtime)/1e6, r.Platform+"-ms")
		}
	}
}

// --- Accuracy: full tracing vs sampling ---

// BenchmarkAccuracyVsSampling reports the attribution error (percentage
// points from ground truth) of TEE-Perf, unbiased sampling, and
// phase-aligned sampling — the paper's accuracy argument quantified.
func BenchmarkAccuracyVsSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAccuracy(0.7, 3000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*abs(res.TEEPerfShare-res.TruthShare), "teeperf-error-pp")
		b.ReportMetric(100*abs(res.PerfShare-res.TruthShare), "perf-error-pp")
		b.ReportMetric(100*abs(res.AlignedPerfShare-res.TruthShare), "perf-aligned-error-pp")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
