// phoenix-bench regenerates Figure 4 of the paper: the overhead of
// TEE-Perf relative to Linux perf on the Phoenix 2.0 suite inside a
// simulated SGX enclave.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"teeperf/internal/experiments"
	"teeperf/internal/tee"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "phoenix-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		platformName = flag.String("platform", "sgx-v1", "TEE platform: "+strings.Join(tee.PlatformNames(), ", "))
		scale        = flag.Int("scale", 2, "workload input scale")
		runs         = flag.Int("runs", 10, "measured runs per configuration (geometric mean)")
		warmups      = flag.Int("warmups", 1, "warmup runs per configuration")
		period       = flag.Duration("sample-period", 250*time.Microsecond, "perf sampling period")
		sampleCost   = flag.Duration("sample-cost", 30*time.Microsecond, "per-sample enclave penalty (AEX + kernel)")
		workloads    = flag.String("workloads", "", "comma-separated subset (default: all)")
		sweep        = flag.Bool("sweep-platforms", false, "instead of Fig 4, run one workload on every TEE platform (generality check)")
	)
	flag.Parse()

	platform, err := tee.ByName(*platformName)
	if err != nil {
		return err
	}
	if *sweep {
		workload := "histogram"
		if *workloads != "" {
			workload = strings.Split(*workloads, ",")[0]
		}
		rows, err := experiments.RunPlatformSweep(workload, *scale, *runs)
		if err != nil {
			return err
		}
		return experiments.WritePlatformSweep(os.Stdout, workload, rows)
	}
	cfg := experiments.Fig4Config{
		Platform:       platform,
		Scale:          *scale,
		Runs:           *runs,
		Warmups:        *warmups,
		SamplePeriod:   *period,
		PerfSampleCost: *sampleCost,
	}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}
	fmt.Printf("Fig 4: TEE-Perf overhead vs perf — Phoenix suite, platform %s, scale %d, %d runs\n\n",
		platform.Name, cfg.Scale, cfg.Runs)
	res, err := experiments.RunFig4(cfg)
	if err != nil {
		return err
	}
	return experiments.WriteFig4(os.Stdout, res)
}
