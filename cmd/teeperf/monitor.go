package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"teeperf/internal/monitor"
	"teeperf/internal/recorder"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

// liveFlags are the workload/run options shared by the monitor and serve
// commands, which both record a workload while observing it live.
type liveFlags struct {
	workload string
	platform string
	scale    int
	ops      int
	repeat   int
	capacity int
	shards   int
	batch    int
	sample   uint64
	interval time.Duration
}

func (lf *liveFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&lf.workload, "workload", "phoenix/word_count", "one of: "+strings.Join(recordableWorkloads(), ", "))
	fs.StringVar(&lf.platform, "platform", "sgx-v1", "TEE platform: "+strings.Join(tee.PlatformNames(), ", "))
	fs.IntVar(&lf.scale, "scale", 1, "workload scale (phoenix only)")
	fs.IntVar(&lf.ops, "ops", 5000, "operations (dbbench/spdk only)")
	fs.IntVar(&lf.repeat, "repeat", 1, "run the workload this many times back to back")
	fs.IntVar(&lf.capacity, "capacity", 1<<22, "log capacity in entries")
	fs.IntVar(&lf.shards, "shards", 1, "log shard count (per-thread tail segments; threads hash to shards by ID)")
	fs.IntVar(&lf.batch, "batch", 1, "probe slot-reservation batch size (events per tail fetch-and-add)")
	fs.Uint64Var(&lf.sample, "sample", 1, "record one call pair in N (1 = every pair); analyzers scale weights back up by N")
	fs.DurationVar(&lf.interval, "interval", 500*time.Millisecond, "sampling/refresh interval")
}

// startLiveRun builds the recorder, starts it, and launches the workload
// in the background. The returned channel yields the workload's error when
// it finishes.
func startLiveRun(lf *liveFlags) (*recorder.Recorder, <-chan error, error) {
	if lf.interval <= 0 {
		return nil, nil, fmt.Errorf("interval must be positive, got %v", lf.interval)
	}
	platform, err := tee.ByName(lf.platform)
	if err != nil {
		return nil, nil, err
	}
	tab := symtab.New()
	run, err := prepareWorkload(lf.workload, tab, platform, lf.scale, lf.ops)
	if err != nil {
		return nil, nil, err
	}
	rec, err := buildRecorder(tab, lf.capacity, lf.shards, lf.batch, "", lf.sample)
	if err != nil {
		return nil, nil, err
	}
	if err := rec.Start(); err != nil {
		return nil, nil, err
	}
	done := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < lf.repeat && err == nil; i++ {
			err = run(rec)
		}
		done <- err
	}()
	return rec, done, nil
}

// cmdMonitor records a workload while refreshing a top-N hot-methods view
// in place in the terminal — the live counterpart of `record` + `analyze`.
func cmdMonitor(args []string) error {
	fs := flag.NewFlagSet("monitor", flag.ContinueOnError)
	var lf liveFlags
	lf.register(fs)
	top := fs.Int("top", 10, "number of functions to show")
	plain := fs.Bool("plain", false, "do not clear the screen between refreshes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rec, done, err := startLiveRun(&lf)
	if err != nil {
		return err
	}
	mon := monitor.New(rec, monitor.WithInterval(lf.interval))
	mon.Start()

	clear := !*plain && stdoutIsTerminal()
	display := func() {
		if clear {
			fmt.Print("\x1b[H\x1b[2J")
		}
		_ = mon.WriteTop(os.Stdout, *top)
	}

	ticker := time.NewTicker(lf.interval)
	defer ticker.Stop()
	var werr error
loop:
	for {
		select {
		case werr = <-done:
			break loop
		case <-ticker.C:
			display()
		}
	}
	_ = rec.Stop()
	mon.Stop() // final drain: the closing table covers every committed entry
	if clear {
		fmt.Print("\x1b[H\x1b[2J")
	}
	fmt.Println("final profile:")
	if err := mon.WriteTop(os.Stdout, *top); err != nil {
		return err
	}
	printStatsSummary(rec.Stats())
	return werr
}

// cmdServe records a workload while exposing the live monitor over HTTP:
// /metrics (Prometheus), /vars (JSON), /profile.json, /history.json and an
// auto-refreshing HTML page at /.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var lf liveFlags
	lf.register(fs)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address (use port 0 for an ephemeral port)")
	linger := fs.Duration("linger", 0, "keep serving this long after the workload finishes")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (for scripts)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rec, done, err := startLiveRun(&lf)
	if err != nil {
		return err
	}
	srv, err := monitor.ServeRecorder(rec, *addr,
		monitor.WithInterval(lf.interval),
		monitor.WithSessionLabel(lf.workload))
	if err != nil {
		_ = rec.Stop()
		return err
	}
	defer srv.Close()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()), 0o644); err != nil {
			_ = rec.Stop()
			return err
		}
	}
	fmt.Printf("serving live monitor on %s\n", srv.URL())

	werr := <-done
	_ = rec.Stop()
	if *linger > 0 {
		fmt.Printf("workload finished; serving for another %v\n", *linger)
		time.Sleep(*linger)
	}
	srv.Monitor().Stop()
	fmt.Println("final profile:")
	if err := srv.Monitor().WriteTop(os.Stdout, 10); err != nil {
		return err
	}
	printStatsSummary(rec.Stats())
	return werr
}

// stdoutIsTerminal reports whether stdout is an interactive terminal (in
// which case the monitor clears the screen between refreshes).
func stdoutIsTerminal() bool {
	info, err := os.Stdout.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}
