package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"time"

	"teeperf/internal/monitor"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
)

// cmdRun is the paper's wrapper workflow: the recorder process creates the
// shared-memory mapping, hosts the software counter, then spawns the
// instrumented application, which opens the mapping (via the TEEPERF_SHM
// environment variable) and appends events from its own address space.
// When the application exits — cleanly or not — the recorder persists the
// bundle from the mapping it still holds:
//
//	teeperf run -o run.teeperf -- ./myapp -its -flags
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	output := fs.String("o", "run.teeperf", "output bundle path")
	shm := fs.String("shm", "", "shared mapping path (default <output>.shm)")
	capacity := fs.Int("capacity", 1<<20, "log capacity in entries")
	shards := fs.Int("shards", 1, "log shard count (per-thread tail segments; threads hash to shards by ID)")
	checkpoint := fs.Duration("checkpoint", 0, "crash-consistent checkpoint interval (0 disables)")
	keepShm := fs.Bool("keep-shm", false, "keep the mapping and symbol side file after persisting")
	addr := fs.String("addr", "", "serve live metrics over HTTP on this address while the command runs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	argv := fs.Args()
	if len(argv) > 0 && argv[0] == "--" {
		argv = argv[1:]
	}
	if len(argv) == 0 {
		return usageErr{errors.New("run needs a command: teeperf run [options] -- <cmd> [args...]")}
	}
	if !shmlog.MmapSupported {
		return fmt.Errorf("cross-process recording needs mmap support, unavailable on this platform: %w", shmlog.ErrMmapUnsupported)
	}
	// record's single-CPU fallback (TSC) cannot apply here: the profiled
	// process reads time from the shared counter word, which only the
	// hosted spin thread advances. Warn instead of silently attributing
	// zero ticks.
	if runtime.NumCPU() < 2 {
		fmt.Fprintln(os.Stderr, "teeperf run: single CPU — the hosted counter thread shares the core with the profiled command; tick attribution will be coarse")
	}
	if *shm == "" {
		*shm = *output + ".shm"
	}

	rec, err := recorder.Create(*shm, recorder.WithCapacity(*capacity), recorder.WithShards(*shards))
	if err != nil {
		return err
	}
	defer rec.Log().Close()
	if err := rec.Start(); err != nil {
		return err
	}
	if *addr != "" {
		srv, err := monitor.ServeRecorder(rec, *addr)
		if err != nil {
			_ = rec.Stop()
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "live monitor on http://%s/\n", srv.Addr())
	}
	if *checkpoint > 0 {
		if err := rec.StartCheckpoint(*output, *checkpoint); err != nil {
			_ = rec.Stop()
			return err
		}
	}

	// The application publishes its symbol table as a side file once its
	// probes are registered; watch for it so mid-run checkpoints (and the
	// live monitor) resolve names instead of raw addresses. stopSyms does
	// a final unconditional read — the application may publish right
	// before exiting.
	stopSyms := rec.WatchSyms(*shm, 100*time.Millisecond)

	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Stdin = os.Stdin
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Env = append(os.Environ(), recorder.SharedEnv+"="+*shm)
	runErr := cmd.Run()
	if err := stopSyms(); err != nil {
		fmt.Fprintf(os.Stderr, "teeperf run: %v\n", err)
	}

	if err := rec.Stop(); err != nil {
		return err
	}
	// Persist even when the child failed or was killed: whatever reached
	// the mapping is exactly what crash salvage is for.
	if err := rec.Persist(*output); err != nil {
		if runErr != nil {
			return fmt.Errorf("command failed (%v) and persist failed: %w", runErr, err)
		}
		return err
	}
	st := rec.Stats()
	fmt.Printf("recorded %d events (%d dropped) in %v; wrote %s\n",
		st.Entries, st.Dropped, st.Duration.Round(1e6), *output)
	printStatsSummary(st)

	if !*keepShm {
		if err := rec.Log().Close(); err != nil {
			return err
		}
		_ = os.Remove(*shm)
		_ = os.Remove(recorder.SymsPath(*shm))
	}
	if runErr != nil {
		return fmt.Errorf("command %q: %w (profile salvaged to %s)", argv[0], runErr, *output)
	}
	return nil
}
