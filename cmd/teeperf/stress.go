package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"teeperf/internal/recorder"
	"teeperf/internal/stress"
)

// cmdStress runs the overhead gauntlet: every stress personality measured
// uninstrumented and then instrumented across the sampling-period × shard
// grid. The default output is a human table; -bench emits go-bench-style
// rows for scripts/benchjson (the BENCH_overhead.json pipeline), and -det
// prints only the timing-free columns the golden test pins.
func cmdStress(args []string) error {
	fs := flag.NewFlagSet("stress", flag.ContinueOnError)
	personalities := fs.String("personalities", "all", "comma-separated personalities (see -list)")
	periods := fs.String("periods", "1,8,64", "comma-separated sampling periods to sweep")
	shards := fs.String("shards", "1,8", "comma-separated log shard counts to sweep")
	runs := fs.Int("runs", 3, "measured runs per configuration (geometric mean)")
	warmups := fs.Int("warmups", 1, "warmup runs per configuration")
	quick := fs.Bool("quick", false, "CI-smoke tunings: tiny iteration budgets")
	seed := fs.Uint64("seed", 42, "deterministic input seed")
	counterName := fs.String("counter", "auto", "time source: auto, software, tsc, virtual")
	capacity := fs.Int("capacity", 0, "per-shard log capacity in entries (0 = default)")
	cpus := fs.Int("cpus", 0, "assume this many CPUs for the contention skip rule (0 = runtime.NumCPU)")
	depth := fs.Int("depth", 0, "override tree/recursion depth (0 = personality default)")
	fanout := fs.Int("fanout", 0, "override call-tree fan-out")
	goroutines := fs.Int("goroutines", 0, "override churn goroutines per wave")
	allocBytes := fs.Int("alloc", 0, "override allocation/slab/IO-chunk bytes")
	iters := fs.Int("iters", 0, "override iteration budget")
	bench := fs.Bool("bench", false, "emit go-bench result lines for scripts/benchjson")
	det := fs.Bool("det", false, "emit only deterministic columns (events, masked, checksum)")
	list := fs.Bool("list", false, "list personalities and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, p := range stress.All() {
			fmt.Printf("%-10s %-6s %s\n", p.Name, p.Profile, p.Summary)
		}
		return nil
	}
	cfg := stress.SweepConfig{
		Periods:     nil,
		Runs:        *runs,
		Warmups:     *warmups,
		Quick:       *quick,
		Seed:        *seed,
		Capacity:    *capacity,
		NumCPU:      *cpus,
		Tune:        stress.Tuning{Depth: *depth, FanOut: *fanout, Goroutines: *goroutines, AllocBytes: *allocBytes, Iterations: *iters},
		Counter:     0,
		ShardCounts: nil,
	}
	if *personalities != "" && *personalities != "all" {
		for _, n := range strings.Split(*personalities, ",") {
			n = strings.TrimSpace(n)
			if _, err := stress.ByName(n); err != nil {
				return usageErr{err}
			}
			cfg.Personalities = append(cfg.Personalities, n)
		}
	}
	var err error
	if cfg.Periods, err = parseUints(*periods, "-periods"); err != nil {
		return err
	}
	shardCounts, err := parseUints(*shards, "-shards")
	if err != nil {
		return err
	}
	for _, s := range shardCounts {
		cfg.ShardCounts = append(cfg.ShardCounts, int(s))
	}
	switch *counterName {
	case "auto":
	case "software":
		cfg.Counter = recorder.CounterSoftware
	case "tsc":
		cfg.Counter = recorder.CounterTSC
	case "virtual":
		cfg.Counter = recorder.CounterVirtual
	default:
		return usageErr{fmt.Errorf("bad -counter %q (auto, software, tsc, virtual)", *counterName)}
	}

	res, err := stress.Sweep(cfg)
	if err != nil {
		return err
	}
	switch {
	case *bench:
		// Skip notes go to stderr so stdout stays pure bench lines for
		// the benchjson pipeline; the gate relies on skips being loud.
		for _, s := range res.Skipped {
			fmt.Fprintf(os.Stderr, "stress: skipped %s\n", s)
		}
		return stress.WriteBench(os.Stdout, res, *runs)
	case *det:
		for _, s := range res.Skipped {
			fmt.Fprintf(os.Stderr, "stress: skipped %s\n", s)
		}
		return stress.WriteDeterministic(os.Stdout, res)
	default:
		fmt.Printf("overhead gauntlet: %d CPUs, GOMAXPROCS %d\n", res.NumCPU, runtime.GOMAXPROCS(0))
		return stress.WriteTable(os.Stdout, res)
	}
}

// parseUints parses a comma-separated list of positive integers.
func parseUints(s, flagName string) ([]uint64, error) {
	var out []uint64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil || v == 0 {
			return nil, usageErr{fmt.Errorf("bad %s entry %q (positive integers)", flagName, f)}
		}
		out = append(out, v)
	}
	return out, nil
}
