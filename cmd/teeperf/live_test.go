package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestUsageMentionsEveryCommand pins the usage text to the command
// registry: a subcommand added without a listing (or vice versa) fails here.
func TestUsageMentionsEveryCommand(t *testing.T) {
	usage := usageError().Error()
	for _, c := range commands {
		if !strings.Contains(usage, c.name) {
			t.Errorf("usage text does not mention %q", c.name)
		}
		if !strings.Contains(usage, c.summary) {
			t.Errorf("usage text does not carry the summary of %q", c.name)
		}
		found := false
		for _, g := range commandGroups {
			if c.group == g {
				found = true
			}
		}
		if !found {
			t.Errorf("command %q has unlisted group %q", c.name, c.group)
		}
	}
	for _, g := range commandGroups {
		if !strings.Contains(usage, g+":") {
			t.Errorf("usage text missing group header %q", g)
		}
	}
	if err := run([]string{"help"}); err == nil || !strings.Contains(err.Error(), "usage: teeperf") {
		t.Error("`teeperf help` should print usage")
	}
}

func TestCLIMonitorPlain(t *testing.T) {
	chdirTemp(t)
	err := run([]string{"monitor",
		"-workload", "phoenix/histogram",
		"-interval", "5ms",
		"-top", "5",
		"-plain",
	})
	if err != nil {
		t.Fatalf("monitor: %v", err)
	}
}

func TestCLIServeEndToEnd(t *testing.T) {
	dir := chdirTemp(t)
	addrFile := filepath.Join(dir, "addr")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve",
			"-workload", "phoenix/histogram",
			"-interval", "5ms",
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-linger", "3s",
		})
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never wrote its address file")
		}
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = string(data)
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	// The gauges the acceptance criteria name explicitly.
	for _, want := range []string{
		"teeperf_entries_committed_total",
		"teeperf_entries_dropped_total",
		"teeperf_log_fill_percent",
		"teeperf_counter_ticks_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestCLILiveErrors(t *testing.T) {
	chdirTemp(t)
	cases := [][]string{
		{"monitor", "-workload", "bogus/one"},
		{"serve", "-workload", "bogus/one"},
		{"serve", "-workload", "phoenix/histogram", "-addr", "256.0.0.1:bad"},
		{"monitor", "-workload", "phoenix/histogram", "-interval", "0s"},
		{"serve", "-workload", "phoenix/histogram", "-interval", "0s"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
