package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"teeperf/internal/analyzer"
	"teeperf/internal/kvstore"
	"teeperf/internal/phoenix"
	"teeperf/internal/probe"
	"teeperf/internal/recorder"
	"teeperf/internal/sgxperf"
	"teeperf/internal/shmlog"
	"teeperf/internal/spdknvme"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

// cmdRecord runs a built-in workload inside a simulated TEE under TEE-Perf
// and persists the profile bundle, so every analysis command has something
// real to chew on without writing code:
//
//	teeperf record -workload phoenix/word_count -platform sgx-v1 -o run.teeperf
func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	workload := fs.String("workload", "phoenix/word_count", "one of: "+strings.Join(recordableWorkloads(), ", "))
	platformName := fs.String("platform", "sgx-v1", "TEE platform: "+strings.Join(tee.PlatformNames(), ", "))
	output := fs.String("o", "run.teeperf", "output bundle path")
	scale := fs.Int("scale", 1, "workload scale (phoenix only)")
	ops := fs.Int("ops", 5000, "operations (dbbench/spdk only)")
	capacity := fs.Int("capacity", 1<<22, "log capacity in entries")
	shards := fs.Int("shards", 1, "log shard count (per-thread tail segments; threads hash to shards by ID)")
	batch := fs.Int("batch", 1, "probe slot-reservation batch size (events per tail fetch-and-add)")
	sample := fs.Uint64("sample", 1, "record one call pair in N (1 = every pair); analyzers scale weights back up by N")
	mask := fs.String("mask", "", "thread deny bitmask (e.g. 0x2): threads whose (id-1)%64 bit is set record nothing")
	selective := fs.String("only", "", "substring filter for selective profiling")
	transitions := fs.Bool("transitions", false, "also print a transition-level (sgx-perf style) report")
	checkpoint := fs.Duration("checkpoint", 0, "crash-consistent checkpoint interval (0 disables); snapshots the bundle to <output> periodically so a killed run stays recoverable")
	if err := fs.Parse(args); err != nil {
		return err
	}
	platform, err := tee.ByName(*platformName)
	if err != nil {
		return err
	}

	var (
		tracer   *sgxperf.Tracer
		enclOpts []tee.EnclaveOption
	)
	if *transitions {
		tracer = sgxperf.New()
		enclOpts = append(enclOpts, tee.WithTransitionListener(tracer.Listener()))
	}
	tab := symtab.New()
	run, err := prepareWorkload(*workload, tab, platform, *scale, *ops, enclOpts...)
	if err != nil {
		return err
	}

	rec, err := buildRecorder(tab, *capacity, *shards, *batch, *selective, *sample)
	if err != nil {
		return err
	}
	if *mask != "" {
		m, err := strconv.ParseUint(*mask, 0, 64)
		if err != nil {
			return fmt.Errorf("bad -mask %q: %w", *mask, err)
		}
		rec.SetThreadMask(m)
	}
	if err := rec.Start(); err != nil {
		return err
	}
	if *checkpoint > 0 {
		// Periodically snapshot the bundle to <output> (written as
		// <output>.part, renamed atomically), so a recorder killed
		// mid-run leaves a loadable bundle — at worst a torn .part that
		// `teeperf recover` salvages.
		if err := rec.StartCheckpoint(*output, *checkpoint); err != nil {
			_ = rec.Stop()
			return err
		}
	}
	if err := run(rec); err != nil {
		_ = rec.Stop()
		return err
	}
	if err := rec.Stop(); err != nil {
		return err
	}
	if err := rec.Persist(*output); err != nil {
		return err
	}
	st := rec.Stats()
	fmt.Printf("recorded %d events (%d dropped) in %v; wrote %s\n",
		st.Entries, st.Dropped, st.Duration.Round(1e6), *output)
	printStatsSummary(st)
	if tracer != nil {
		fmt.Println()
		if err := tracer.WriteReport(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// buildRecorder assembles the recorder used by record, monitor and serve:
// fixed capacity, optional log sharding, optional batched slot reservation,
// optional call-pair sampling, optional selective-profiling filter, and the
// single-CPU fallback from the software counter to the TSC source.
func buildRecorder(tab *symtab.Table, capacity, shards, batch int, selective string, sample uint64) (*recorder.Recorder, error) {
	recOpts := []recorder.Option{
		recorder.WithCapacity(capacity),
		recorder.WithPID(uint64(os.Getpid())),
	}
	if shards > 1 {
		recOpts = append(recOpts, recorder.WithShards(shards))
	}
	if batch > 1 {
		recOpts = append(recOpts, recorder.WithBatch(batch))
	}
	if sample > 1 {
		recOpts = append(recOpts, recorder.WithSamplePeriod(sample))
	}
	// The software counter needs a spare core for its spin thread; on a
	// single-CPU machine fall back to the TSC source (and say so).
	if runtime.NumCPU() < 2 {
		fmt.Fprintln(os.Stderr, "teeperf: single CPU — using the TSC counter instead of the software counter")
		recOpts = append(recOpts, recorder.WithCounterMode(recorder.CounterTSC))
	}
	if selective != "" {
		filter, err := probe.NewFilter(tab, func(s symtab.Symbol) bool {
			return strings.Contains(s.Name, selective)
		})
		if err != nil {
			return nil, err
		}
		recOpts = append(recOpts, recorder.WithFilter(filter))
	}
	return recorder.New(tab, recOpts...)
}

// printStatsSummary reports the run's recorder health on stderr, and warns
// loudly about drops — a silent drop means a silently truncated profile.
func printStatsSummary(st recorder.Stats) {
	fmt.Fprintf(os.Stderr, "stats: %d entries, %d dropped, %.1f%% fill, %v\n",
		st.Entries, st.Dropped, st.FillPercent, st.Duration.Round(1e6))
	if st.Dropped > 0 {
		fmt.Fprintf(os.Stderr,
			"WARNING: %d events were dropped (%.0f/s, log full at %d entries) — the profile is truncated.\n"+
				"         Increase capacity, use selective profiling (-only), or rotate segments.\n",
			st.Dropped, st.DropRate, st.Capacity)
	}
}

// runFn executes the prepared workload against a live recorder.
type runFn func(rec *recorder.Recorder) error

func prepareWorkload(name string, tab *symtab.Table, platform tee.Platform, scale, ops int, enclOpts ...tee.EnclaveOption) (runFn, error) {
	host := tee.NewHost(os.Getpid())
	encl, err := tee.NewEnclave(platform, host, enclOpts...)
	if err != nil {
		return nil, err
	}

	switch {
	case strings.HasPrefix(name, "phoenix/"):
		w, err := phoenix.ByName(strings.TrimPrefix(name, "phoenix/"))
		if err != nil {
			return nil, err
		}
		if err := w.RegisterSymbols(tab); err != nil {
			return nil, err
		}
		return func(rec *recorder.Recorder) error {
			runner, err := w.New(phoenix.Config{
				Enclave: encl,
				Hooks:   rec.Thread(),
				AddrOf:  rec.AddrOf,
			}, scale)
			if err != nil {
				return err
			}
			_, err = runner(encl.Thread())
			return err
		}, nil

	case name == "dbbench":
		if err := kvstore.RegisterBenchSymbols(tab); err != nil {
			return nil, err
		}
		return func(rec *recorder.Recorder) error {
			th := encl.Thread()
			db, err := kvstore.Open(host, th, "record-db", nil)
			if err != nil {
				return err
			}
			_, err = kvstore.RunDBBench(th, &kvstore.BenchConfig{
				DB:     db,
				Hooks:  rec.Thread(),
				AddrOf: rec.AddrOf,
				Ops:    ops,
			})
			return err
		}, nil

	case name == "spdk-naive" || name == "spdk-optimized":
		if err := spdknvme.RegisterPerfSymbols(tab); err != nil {
			return nil, err
		}
		mode := spdknvme.ModeNaive
		if name == "spdk-optimized" {
			mode = spdknvme.ModeOptimized
		}
		return func(rec *recorder.Recorder) error {
			dev, err := spdknvme.NewDevice(host, spdknvme.DeviceConfig{})
			if err != nil {
				return err
			}
			_, err = spdknvme.RunPerf(&spdknvme.PerfConfig{
				Device: dev,
				Thread: encl.Thread(),
				Hooks:  rec.Thread(),
				AddrOf: rec.AddrOf,
				Mode:   mode,
				Ops:    ops,
			})
			return err
		}, nil

	default:
		return nil, fmt.Errorf("unknown workload %q (want one of: %s)",
			name, strings.Join(recordableWorkloads(), ", "))
	}
}

func recordableWorkloads() []string {
	names := []string{"dbbench", "spdk-naive", "spdk-optimized"}
	for _, n := range phoenix.Names() {
		names = append(names, "phoenix/"+n)
	}
	sort.Strings(names)
	return names
}

// cmdDump prints raw log entries, resolved through the symbol table — the
// lowest-level view of a recording.
func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ContinueOnError)
	input := fs.String("i", "", "profile bundle path")
	limit := fs.Int("n", 50, "maximum entries to print (0 = all)")
	thread := fs.Uint64("thread", 0, "only this thread (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		return fmt.Errorf("missing -i <bundle>")
	}
	tab, log, err := recorder.ReadBundleFile(*input)
	if err != nil {
		return err
	}
	if log.ProfilerAddr() != 0 {
		tab.SetLoadBias(log.ProfilerAddr())
	}
	fmt.Printf("%-8s %-8s %-16s %s\n", "THREAD", "KIND", "COUNTER", "FUNCTION")
	printed := 0
	dismissed := 0
	for i := 0; i < log.Len(); i++ {
		e, err := log.Entry(i)
		if err != nil {
			return err
		}
		// Slots a batched writer reserved but never committed (in-flight
		// holes) or released (tombstones) carry no event.
		if e.ThreadID == 0 || e.ThreadID == shmlog.TombstoneTID {
			dismissed++
			continue
		}
		if *thread != 0 && e.ThreadID != *thread {
			continue
		}
		fmt.Printf("%-8d %-8s %-16d %s\n", e.ThreadID, e.Kind, e.Counter, tab.Name(e.Addr))
		printed++
		if *limit > 0 && printed >= *limit {
			fmt.Printf("... (%d more entries)\n", log.Len()-i-1)
			break
		}
	}
	// A summary line the analyzer would produce.
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		return err
	}
	if dismissed > 0 {
		fmt.Printf("(%d uncommitted/released slots dismissed)\n", dismissed)
	}
	fmt.Printf("\n%d entries, %d threads, %d completed calls\n", log.Len(), len(p.Threads()), len(p.Records()))
	return nil
}
