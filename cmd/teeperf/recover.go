package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"teeperf/internal/analyzer"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// cmdRecover salvages a torn or corrupted profile bundle — typically the
// .part file a killed checkpoint pass left behind, or a bundle damaged on
// disk — into a clean one, printing the structured recovery report:
//
//	teeperf recover -i run.teeperf.part -o run.teeperf
func cmdRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ContinueOnError)
	input := fs.String("i", "", "torn/corrupted bundle path")
	output := fs.String("o", "", "write the salvaged clean bundle here (optional)")
	top := fs.Int("top", 10, "hot functions of the salvaged profile to show (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		return fmt.Errorf("missing -i <bundle>")
	}
	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()

	tab, log, rep, err := recorder.ReadBundleLenient(f)
	rawShm := false
	if err != nil && errors.Is(err, recorder.ErrBadBundle) {
		// Not a bundle — maybe a raw shared-mapping file (`teeperf run
		// -keep-shm`, or the .shm a dead recorder process left behind).
		// The mapping is a bare log image; salvage it directly and
		// resolve names through the symbol side file published next to
		// it, if it survived.
		if _, serr := f.Seek(0, io.SeekStart); serr == nil {
			if rlog, rrep, rerr := shmlog.ReadLenient(f); rerr == nil {
				log, rep, rawShm, err = rlog, rrep, true, nil
				tab, _ = recorder.ReadSymsFile(recorder.SymsPath(*input))
				if tab == nil {
					tab = symtab.New() // addresses print raw
					fmt.Fprintf(os.Stderr, "teeperf recover: no symbol side file %s; reporting raw addresses\n",
						recorder.SymsPath(*input))
				}
			}
		}
	}
	if err != nil {
		return fmt.Errorf("recover %s: %w", *input, err)
	}
	fmt.Printf("%s: %s\n", *input, rep)
	if rep.Clean() && !rawShm {
		// An intact bundle needs no salvage; failing here (exit 1) keeps
		// scripted pipelines from silently "recovering" good data. A raw
		// mapping file is different: even a clean one is not loadable by
		// analyze, so recovering it (into a proper bundle with -o) is the
		// point.
		return fmt.Errorf("%s is intact; nothing to recover (use teeperf analyze)", *input)
	}

	p, err := analyzer.AnalyzeRecovered(log, tab, rep)
	if err != nil {
		return err
	}
	fmt.Printf("recovered profile: %d entries, %d threads, %d completed calls, %d truncated, %d unmatched\n",
		log.Len(), len(p.Threads()), len(p.Records()), p.Truncated, p.Unmatched)
	if *top > 0 && len(p.Records()) > 0 {
		fmt.Println()
		if err := p.WriteTable(os.Stdout, *top); err != nil {
			return err
		}
	}

	if *output != "" {
		out, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := recorder.WriteBundle(out, tab, log); err != nil {
			return fmt.Errorf("write %s: %w", *output, err)
		}
		if err := out.Sync(); err != nil {
			return err
		}
		fmt.Printf("wrote clean bundle %s\n", *output)
	}
	return nil
}
