package main

import (
	"flag"
	"fmt"
	"os"

	"teeperf/internal/analyzer"
	"teeperf/internal/recorder"
)

// cmdRecover salvages a torn or corrupted profile bundle — typically the
// .part file a killed checkpoint pass left behind, or a bundle damaged on
// disk — into a clean one, printing the structured recovery report:
//
//	teeperf recover -i run.teeperf.part -o run.teeperf
func cmdRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ContinueOnError)
	input := fs.String("i", "", "torn/corrupted bundle path")
	output := fs.String("o", "", "write the salvaged clean bundle here (optional)")
	top := fs.Int("top", 10, "hot functions of the salvaged profile to show (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		return fmt.Errorf("missing -i <bundle>")
	}
	f, err := os.Open(*input)
	if err != nil {
		return err
	}
	defer f.Close()

	tab, log, rep, err := recorder.ReadBundleLenient(f)
	if err != nil {
		return fmt.Errorf("recover %s: %w", *input, err)
	}
	fmt.Printf("%s: %s\n", *input, rep)

	p, err := analyzer.AnalyzeRecovered(log, tab, rep)
	if err != nil {
		return err
	}
	fmt.Printf("recovered profile: %d entries, %d threads, %d completed calls, %d truncated, %d unmatched\n",
		log.Len(), len(p.Threads()), len(p.Records()), p.Truncated, p.Unmatched)
	if *top > 0 && len(p.Records()) > 0 {
		fmt.Println()
		if err := p.WriteTable(os.Stdout, *top); err != nil {
			return err
		}
	}

	if *output != "" {
		out, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := recorder.WriteBundle(out, tab, log); err != nil {
			return fmt.Errorf("write %s: %w", *output, err)
		}
		if err := out.Sync(); err != nil {
			return err
		}
		fmt.Printf("wrote clean bundle %s\n", *output)
	}
	return nil
}
