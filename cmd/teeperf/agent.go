package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"teeperf/internal/agent"
	"teeperf/internal/profilestore"
	"teeperf/internal/shmlog"
)

// cmdAgent runs the fleet observability daemon: one process observing many
// concurrent recordings. Mappings are discovered by watching a spool
// directory for *.shm files (and/or passed as positional arguments, or
// pushed later via POST /register), each becoming a session with its own
// lifecycle; the whole fleet is exposed through a single HTTP endpoint set.
//
//	teeperf agent -spool /var/run/teeperf -addr :9090
//	teeperf agent -once -spool ./spool            # one cycle, text summary
func cmdAgent(args []string) error {
	fs := flag.NewFlagSet("agent", flag.ContinueOnError)
	spool := fs.String("spool", "", "directory watched for *.shm mappings")
	addr := fs.String("addr", "127.0.0.1:9090", "listen address (use port 0 for an ephemeral port)")
	interval := fs.Duration("interval", 250*time.Millisecond, "scrape interval")
	budget := fs.Int("budget", 1<<16, "per-session entry budget of one scrape; exceeding it twice degrades the session to sampled scraping")
	degradedEvery := fs.Int("degraded-every", 4, "scrape degraded sessions every Nth cycle")
	autoThrottle := fs.Bool("auto-throttle", false, "push a sampling period into flooding sessions' shared headers (live recording-side throttle), restored on recovery")
	throttlePeriod := fs.Uint64("throttle-period", 8, "sampling period pushed by -auto-throttle")
	once := fs.Bool("once", false, "run a single scrape cycle, print the fleet summary, and exit")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (for scripts)")
	history := fs.String("history", "", "history store directory: dead sessions' drained logs are ingested as durable segments at salvage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !shmlog.MmapSupported {
		return fmt.Errorf("the agent observes shared mappings, unavailable on this platform: %w", shmlog.ErrMmapUnsupported)
	}
	if *spool == "" && fs.NArg() == 0 {
		return usageErr{fmt.Errorf("agent needs -spool <dir> and/or mapping paths: teeperf agent [options] [mapping.shm ...]")}
	}

	cfg := agent.Config{
		Spool:          *spool,
		Interval:       *interval,
		ScrapeBudget:   *budget,
		DegradedEvery:  *degradedEvery,
		AutoThrottle:   *autoThrottle,
		ThrottlePeriod: *throttlePeriod,
	}
	if *history != "" {
		st, err := profilestore.Open(*history, profilestore.Options{})
		if err != nil {
			return fmt.Errorf("open history store: %w", err)
		}
		defer st.Close()
		if rep := st.Report(); !rep.Clean() {
			fmt.Fprintf(os.Stderr, "agent: history store repaired on open: %+v\n", rep)
		}
		st.StartCompactor(*interval * 4)
		cfg.HistoryStore = st
	}
	a := agent.New(cfg)
	defer a.Close()
	for _, path := range fs.Args() {
		a.Register(path)
	}

	if *once {
		a.ScrapeOnce()
		a.WriteSummary(os.Stdout)
		return nil
	}

	srv, err := agent.Serve(a, *addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("fleet agent on %s (spool %q, interval %v)\n", srv.URL(), *spool, *interval)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down; final fleet state:")
	srv.Close()
	a.WriteSummary(os.Stdout)
	return nil
}
