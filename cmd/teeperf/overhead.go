package main

import (
	"flag"
	"os"
	"strings"

	"teeperf/internal/experiments"
	"teeperf/internal/tee"
)

// cmdOverhead sweeps the probes' cost: each workload runs uninstrumented
// (the native baseline) and then instrumented at every sampling period, so
// the ratio column is the paper's Fig 4 y-axis generalized over `-sample`.
func cmdOverhead(args []string) error {
	fs := flag.NewFlagSet("overhead", flag.ContinueOnError)
	platformName := fs.String("platform", "sgx-v1", "TEE platform: "+strings.Join(tee.PlatformNames(), ", "))
	periods := fs.String("periods", "1,8,64", "comma-separated sampling periods to sweep")
	runs := fs.Int("runs", 5, "measured runs per configuration (geometric mean)")
	warmups := fs.Int("warmups", 1, "warmup runs per configuration")
	scale := fs.Int("scale", 2, "Phoenix workload scale")
	ops := fs.Int("ops", 10000, "kvstore db_bench operations")
	workloads := fs.String("workloads", "", "comma-separated Phoenix subset (default: word_count,string_match)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	platform, err := tee.ByName(*platformName)
	if err != nil {
		return err
	}
	ps, err := parseUints(*periods, "-periods")
	if err != nil {
		return err
	}
	cfg := experiments.SamplingOverheadConfig{
		Platform: platform,
		Periods:  ps,
		Runs:     *runs,
		Warmups:  *warmups,
		Scale:    *scale,
		Ops:      *ops,
	}
	if *workloads != "" {
		cfg.PhoenixWorkloads = strings.Split(*workloads, ",")
	}
	rows, err := experiments.RunSamplingOverhead(cfg)
	if err != nil {
		return err
	}
	return experiments.WriteSamplingOverhead(os.Stdout, rows)
}
