// teeperf is the command-line front end: it records built-in workloads
// under the profiler (optionally monitoring them live in the terminal or
// over HTTP), analyzes persisted profile bundles (written by instrumented
// applications via teeperf/rt or by the Session API), answers declarative
// queries, and renders flame graphs.
//
// Usage:
//
//	teeperf record   -workload phoenix/word_count -platform sgx-v1 -o run.teeperf [-checkpoint 500ms]
//	teeperf stress   [-quick] [-periods 1,8,64] [-shards 1,8] [-bench|-det]
//	teeperf run      -o run.teeperf [-shm run.teeperf.shm] -- <cmd> [args...]
//	teeperf monitor  -workload dbbench -interval 500ms [-top 10]
//	teeperf serve    -workload dbbench -addr :7070 [-linger 1m]
//	teeperf agent    -spool /var/run/teeperf -addr :9090 [-once]
//	teeperf analyze  -i run.teeperf [-top 20]
//	teeperf recover  -i run.teeperf.part [-o clean.teeperf]
//	teeperf query    -i run.teeperf -q 'name =~ "rocksdb" && self > 1000' [-group name] [-sort col] [-n 20]
//	teeperf flame    -i run.teeperf -o flame.svg [-title T] [-width 1200]
//	teeperf folded   -i run.teeperf [-o stacks.folded]
//	teeperf threads  -i run.teeperf
//	teeperf dump     -i run.teeperf [-n 50] [-thread 2]
//	teeperf callgraph -i run.teeperf [-top 10]
//	teeperf paths    -i run.teeperf [-leaf fn]
//	teeperf diff     -a before.teeperf -b after.teeperf
//	teeperf history  ingest|query|diff|compact -store DIR [options]
//	teeperf whatif   -i run.teeperf -remove getpid,rdtsc
//	teeperf report   -i run.teeperf -o report.html
//
// Exit status: 0 on success, 2 for usage errors (unknown command, missing
// command line), 1 for any other failure (unreadable bundle, failed
// workload, bad output path, ...).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"teeperf"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
)

// command is one registered subcommand; the usage text and the dispatch
// table are both derived from the registry so they cannot drift apart.
type command struct {
	name    string
	group   string
	summary string
	run     func([]string) error
}

// commandGroups orders the usage listing.
var commandGroups = []string{"record", "monitor", "analyze", "visualize"}

var commands = []command{
	{"record", "record", "run a built-in workload under the profiler and persist a bundle", cmdRecord},
	{"run", "record", "profile an external command through a shared-memory mapping (cross-process)", cmdRun},
	{"overhead", "record", "sweep instrumented-vs-native runtime across sampling periods", cmdOverhead},
	{"stress", "record", "run the overhead gauntlet: stress personalities instrumented vs native", cmdStress},
	{"monitor", "monitor", "record a workload with a live hot-methods view in the terminal", cmdMonitor},
	{"serve", "monitor", "record a workload while serving live metrics and profile over HTTP", cmdServe},
	{"agent", "monitor", "observe many concurrent recordings with fleet-wide metrics over HTTP", cmdAgent},
	{"analyze", "analyze", "print the hot-methods table of a bundle", cmdAnalyze},
	{"recover", "analyze", "salvage a torn/corrupted bundle and print the recovery report", cmdRecover},
	{"query", "analyze", "filter/group/sort profile records declaratively", cmdQuery},
	{"threads", "analyze", "per-thread statistics of a bundle", cmdThreads},
	{"dump", "analyze", "print raw log entries resolved through the symbol table", cmdDump},
	{"callgraph", "analyze", "gprof-style caller/callee report", cmdCallGraph},
	{"paths", "analyze", "per-call-path statistics", cmdPaths},
	{"diff", "analyze", "compare two bundles function by function", cmdDiff},
	{"history", "analyze", "ingest, time-travel query, diff and compact the profile history store", cmdHistory},
	{"whatif", "analyze", "project removing functions from the critical path", cmdWhatIf},
	{"flame", "visualize", "render an SVG flame graph", cmdFlame},
	{"folded", "visualize", "emit folded stacks for external flame-graph tooling", cmdFolded},
	{"report", "visualize", "render a self-contained HTML report", cmdReport},
}

func main() {
	os.Exit(cliMain(os.Args[1:]))
}

// cliMain runs the command line and maps the outcome to the documented
// exit codes (0 success, 2 usage, 1 everything else). Split from main so
// the exit-code contract is testable through the same code path the
// binary uses.
func cliMain(args []string) int {
	err := run(args)
	if err == nil {
		return 0
	}
	fmt.Fprintln(os.Stderr, "teeperf:", err)
	var ue usageErr
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

func run(args []string) error {
	if len(args) < 1 {
		return usageError()
	}
	switch args[0] {
	case "help", "-h", "--help":
		return usageError()
	}
	for _, c := range commands {
		if c.name == args[0] {
			return c.run(args[1:])
		}
	}
	return fmt.Errorf("unknown command %q\n%w", args[0], usageError())
}

// usageErr marks command-line mistakes; main exits 2 for them (and 1 for
// every other error), so scripts can tell "you called it wrong" from "the
// operation failed".
type usageErr struct{ error }

func usageError() error {
	var b strings.Builder
	b.WriteString("usage: teeperf <command> [options]\n")
	for _, group := range commandGroups {
		fmt.Fprintf(&b, "\n%s:\n", group)
		for _, c := range commands {
			if c.group == group {
				fmt.Fprintf(&b, "  %-10s %s\n", c.name, c.summary)
			}
		}
	}
	return usageErr{fmt.Errorf("%s", b.String())}
}

func loadProfile(path string) (*teeperf.Profile, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -i <bundle>")
	}
	return teeperf.Load(path)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	input := fs.String("i", "", "profile bundle path")
	top := fs.Int("top", 20, "number of functions to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProfile(*input)
	if err != nil {
		// A torn or truncated bundle is recoverable; point at the tool
		// that does it instead of leaving the user with a decode error.
		if errors.Is(err, shmlog.ErrTruncated) || errors.Is(err, recorder.ErrBadBundle) {
			return fmt.Errorf("%w\nhint: the bundle looks torn or corrupted — try: teeperf recover -i %s -o recovered.teeperf", err, *input)
		}
		return err
	}
	fmt.Printf("pid %d, %d ticks total, %d truncated frames, %d unmatched returns, %d dropped entries\n\n",
		p.PID, p.TotalTicks, p.Truncated, p.Unmatched, p.Dropped)
	return p.WriteTable(os.Stdout, *top)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	input := fs.String("i", "", "profile bundle path")
	expr := fs.String("q", "", "filter expression, e.g. 'thread == 2 && name =~ \"get\"'")
	group := fs.String("group", "", "comma-separated group-by columns (aggregates calls + self ticks)")
	sortCol := fs.String("sort", "", "sort column (descending)")
	limit := fs.Int("n", 30, "row limit")
	csv := fs.Bool("csv", false, "emit CSV instead of a table")
	asJSON := fs.Bool("json", false, "emit JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProfile(*input)
	if err != nil {
		return err
	}
	frame := teeperf.Query(p)
	if *expr != "" {
		frame, err = frame.Filter(*expr)
		if err != nil {
			return err
		}
	}
	if *group != "" {
		keys := strings.Split(*group, ",")
		frame, err = frame.GroupBy(keys,
			teeperf.Count("calls"),
			teeperf.Sum("self", "self_ticks"),
			teeperf.Sum("incl", "incl_ticks"),
		)
		if err != nil {
			return err
		}
	}
	if *sortCol != "" {
		frame, err = frame.Sort(*sortCol, teeperf.Desc)
		if err != nil {
			return err
		}
	}
	frame = frame.Head(*limit)
	switch {
	case *csv:
		return frame.WriteCSV(os.Stdout)
	case *asJSON:
		return frame.WriteJSON(os.Stdout)
	default:
		return frame.WriteTable(os.Stdout)
	}
}

func cmdFlame(args []string) error {
	fs := flag.NewFlagSet("flame", flag.ContinueOnError)
	input := fs.String("i", "", "profile bundle path")
	output := fs.String("o", "flame.svg", "output SVG path")
	title := fs.String("title", "TEE-Perf Flame Graph", "graph title")
	width := fs.Int("width", 1200, "image width in pixels")
	interactive := fs.Bool("interactive", false, "embed click-to-zoom JavaScript")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProfile(*input)
	if err != nil {
		return err
	}
	f, err := os.Create(*output)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := teeperf.WriteFlameGraphSVG(f, p, teeperf.FlameGraphOptions{
		Title:       *title,
		Width:       *width,
		Interactive: *interactive,
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *output)
	return nil
}

func cmdFolded(args []string) error {
	fs := flag.NewFlagSet("folded", flag.ContinueOnError)
	input := fs.String("i", "", "profile bundle path")
	output := fs.String("o", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProfile(*input)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return teeperf.WriteFolded(w, p)
}

func cmdWhatIf(args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	input := fs.String("i", "", "profile bundle path")
	remove := fs.String("remove", "", "comma-separated function names to remove from the critical path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *remove == "" {
		return fmt.Errorf("whatif needs -remove <fn,fn,...>")
	}
	p, err := loadProfile(*input)
	if err != nil {
		return err
	}
	return teeperf.WriteWhatIf(os.Stdout, p.WhatIf(strings.Split(*remove, ",")...))
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	input := fs.String("i", "", "profile bundle path")
	output := fs.String("o", "report.html", "output HTML path")
	title := fs.String("title", "TEE-Perf report", "report title")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProfile(*input)
	if err != nil {
		return err
	}
	f, err := os.Create(*output)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := teeperf.WriteHTMLReport(f, p, teeperf.HTMLReportOptions{Title: *title}); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *output)
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	before := fs.String("a", "", "baseline profile bundle")
	after := fs.String("b", "", "comparison profile bundle")
	top := fs.Int("top", 20, "rows to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *before == "" || *after == "" {
		return fmt.Errorf("diff needs -a <bundle> and -b <bundle>")
	}
	pa, err := teeperf.Load(*before)
	if err != nil {
		return fmt.Errorf("load %s: %w", *before, err)
	}
	pb, err := teeperf.Load(*after)
	if err != nil {
		return fmt.Errorf("load %s: %w", *after, err)
	}
	return teeperf.WriteDiff(os.Stdout, teeperf.DiffProfiles(pa, pb), *top)
}

func cmdCallGraph(args []string) error {
	fs := flag.NewFlagSet("callgraph", flag.ContinueOnError)
	input := fs.String("i", "", "profile bundle path")
	top := fs.Int("top", 10, "number of functions to expand")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProfile(*input)
	if err != nil {
		return err
	}
	return p.WriteCallGraph(os.Stdout, *top)
}

func cmdPaths(args []string) error {
	fs := flag.NewFlagSet("paths", flag.ContinueOnError)
	input := fs.String("i", "", "profile bundle path")
	leaf := fs.String("leaf", "", "only paths ending in this function")
	limit := fs.Int("n", 20, "row limit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProfile(*input)
	if err != nil {
		return err
	}
	paths := p.Paths()
	if *leaf != "" {
		paths = p.PathsOf(*leaf)
	}
	if len(paths) > *limit {
		paths = paths[:*limit]
	}
	fmt.Printf("%-10s %14s %14s  %s\n", "CALLS", "SELF", "INCL", "PATH")
	for _, ps := range paths {
		fmt.Printf("%-10d %14d %14d  %s\n", ps.Calls, ps.Self, ps.Incl, ps.Stack)
	}
	return nil
}

func cmdThreads(args []string) error {
	fs := flag.NewFlagSet("threads", flag.ContinueOnError)
	input := fs.String("i", "", "profile bundle path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProfile(*input)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %10s %10s %14s %9s\n", "THREAD", "EVENTS", "CALLS", "TICKS", "MAXDEPTH")
	for _, t := range p.Threads() {
		fmt.Printf("%-8d %10d %10d %14d %9d\n", t.ID, t.Events, t.Calls, t.Ticks, t.MaxDepth)
	}
	return nil
}
