package main

// CLI conformance tests: TestMain re-execs this test binary as the real
// teeperf binary (TEEPERF_CLI_EXEC=1), so exit codes, stdout and stderr
// are asserted through exactly the code path the shipped binary runs.

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"teeperf"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
)

func TestMain(m *testing.M) {
	if os.Getenv("TEEPERF_CLI_EXEC") == "1" {
		// A grandchild spawned by `teeperf run` inherits TEEPERF_CLI_EXEC
		// but additionally carries the shared-mapping handoff: that is the
		// instrumented-application role, not the CLI role.
		if os.Getenv("TEEPERF_RT_CHILD") == "1" && os.Getenv(recorder.SharedEnv) != "" {
			runRTGrandchild()
		}
		args := os.Args[1:]
		for i, a := range os.Args {
			if a == "--" {
				args = os.Args[i+1:]
				break
			}
		}
		os.Exit(cliMain(args))
	}
	os.Exit(m.Run())
}

// runRTGrandchild is the instrumented application `teeperf run` launches in
// TestCLIRun: a small fixed workload through the public Session API, which
// picks up the shared mapping from the environment.
func runRTGrandchild() {
	s, err := teeperf.New()
	if err != nil {
		os.Stderr.WriteString("rt grandchild: " + err.Error() + "\n")
		os.Exit(4)
	}
	addr, err := s.RegisterFunc("cli_child_fn", "cli.go", 1)
	if err == nil {
		err = s.Start()
	}
	if err != nil {
		os.Stderr.WriteString("rt grandchild: " + err.Error() + "\n")
		os.Exit(4)
	}
	th, err := s.Thread()
	if err != nil {
		os.Stderr.WriteString("rt grandchild: " + err.Error() + "\n")
		os.Exit(4)
	}
	for i := 0; i < 3; i++ {
		th.Enter(addr)
		th.Exit(addr)
	}
	if err := s.Stop(); err != nil {
		os.Stderr.WriteString("rt grandchild: " + err.Error() + "\n")
		os.Exit(4)
	}
	os.Exit(0)
}

// runCLI executes one teeperf command line through the re-exec'd binary
// and returns (stdout, stderr, exit code).
func runCLI(t *testing.T, extraEnv []string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-test.run=^$", "--"}, args...)...)
	cmd.Env = append(os.Environ(), "TEEPERF_CLI_EXEC=1")
	cmd.Env = append(cmd.Env, extraEnv...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("exec CLI: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// TestCLIExitCodes pins the documented exit-code contract: 2 for usage
// mistakes, 1 for failed operations, 0 for success.
func TestCLIExitCodes(t *testing.T) {
	t.Run("no args is usage", func(t *testing.T) {
		_, stderr, code := runCLI(t, nil)
		if code != 2 {
			t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr)
		}
		if !bytes.Contains([]byte(stderr), []byte("usage: teeperf")) {
			t.Fatalf("stderr lacks usage text: %s", stderr)
		}
	})
	t.Run("unknown command is usage", func(t *testing.T) {
		_, stderr, code := runCLI(t, nil, "frobnicate")
		if code != 2 {
			t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr)
		}
		if !bytes.Contains([]byte(stderr), []byte(`unknown command "frobnicate"`)) {
			t.Fatalf("stderr lacks unknown-command message: %s", stderr)
		}
	})
	t.Run("analyze torn bundle fails", func(t *testing.T) {
		ensureFixtures(t)
		_, stderr, code := runCLI(t, nil, "analyze", "-i", "testdata/torn.teeperf.part")
		if code != 1 {
			t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr)
		}
		if !bytes.Contains([]byte(stderr), []byte("teeperf recover")) {
			t.Fatalf("stderr lacks the recover hint: %s", stderr)
		}
	})
	t.Run("recover clean bundle fails", func(t *testing.T) {
		ensureFixtures(t)
		_, stderr, code := runCLI(t, nil, "recover", "-i", "testdata/sample.teeperf")
		if code != 1 {
			t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr)
		}
		if !bytes.Contains([]byte(stderr), []byte("nothing to recover")) {
			t.Fatalf("stderr lacks intact-bundle message: %s", stderr)
		}
	})
	t.Run("record bad output path fails", func(t *testing.T) {
		out := filepath.Join(t.TempDir(), "no", "such", "dir", "x.teeperf")
		_, stderr, code := runCLI(t, nil,
			"record", "-workload", "dbbench", "-ops", "20", "-capacity", "4096", "-o", out)
		if code != 1 {
			t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr)
		}
	})
	t.Run("analyze missing input is an operation failure", func(t *testing.T) {
		_, _, code := runCLI(t, nil, "analyze", "-i", filepath.Join(t.TempDir(), "absent.teeperf"))
		if code != 1 {
			t.Fatalf("exit = %d, want 1", code)
		}
	})
}

// TestCLIRun drives the full cross-process wrapper through the binary:
// `teeperf run` creates the mapping and hosts the counter, the grandchild
// (this same binary in the TEEPERF_RT_CHILD role) appends through the
// Session API, and the persisted bundle must contain its workload.
func TestCLIRun(t *testing.T) {
	if !shmlog.MmapSupported {
		t.Skip("cross-process recording unsupported on this platform")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "out.teeperf")
	stdout, stderr, code := runCLI(t, []string{"TEEPERF_RT_CHILD=1"},
		"run", "-o", out, "-capacity", "4096", "--",
		os.Args[0], "-test.run=^$")
	if code != 0 {
		t.Fatalf("teeperf run exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	p, err := teeperf.Load(out)
	if err != nil {
		t.Fatalf("load %s: %v", out, err)
	}
	if st, ok := p.Func("cli_child_fn"); !ok || st.Calls != 3 {
		t.Fatalf("cli_child_fn = %+v, want 3 calls (stdout: %s)", st, stdout)
	}
	if _, err := os.Stat(out + ".shm"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("mapping file not cleaned up: %v", err)
	}
}
