package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirTemp runs the CLI from a scratch directory so outputs don't litter
// the repository.
func chdirTemp(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Error(err)
		}
	})
	return dir
}

func recordSample(t *testing.T, dir string) string {
	t.Helper()
	bundle := filepath.Join(dir, "sample.teeperf")
	err := run([]string{"record",
		"-workload", "phoenix/histogram",
		"-platform", "sgx-v1",
		"-scale", "1",
		"-o", bundle,
	})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	return bundle
}

func TestCLIRecordAnalyzeRoundTrip(t *testing.T) {
	dir := chdirTemp(t)
	bundle := recordSample(t, dir)

	if err := run([]string{"analyze", "-i", bundle, "-top", "5"}); err != nil {
		t.Errorf("analyze: %v", err)
	}
	if err := run([]string{"threads", "-i", bundle}); err != nil {
		t.Errorf("threads: %v", err)
	}
	if err := run([]string{"dump", "-i", bundle, "-n", "10"}); err != nil {
		t.Errorf("dump: %v", err)
	}
	if err := run([]string{"folded", "-i", bundle, "-o", filepath.Join(dir, "out.folded")}); err != nil {
		t.Errorf("folded: %v", err)
	}
	if err := run([]string{"flame", "-i", bundle, "-o", filepath.Join(dir, "out.svg")}); err != nil {
		t.Errorf("flame: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "out.svg")); err != nil {
		t.Errorf("flame output missing: %v", err)
	}
	if err := run([]string{"query", "-i", bundle, "-q", `name == "histogram"`, "-group", "name", "-sort", "calls"}); err != nil {
		t.Errorf("query: %v", err)
	}
}

func TestCLIRecordWorkloads(t *testing.T) {
	dir := chdirTemp(t)
	for _, workload := range []string{"dbbench", "spdk-optimized"} {
		workload := workload
		t.Run(workload, func(t *testing.T) {
			bundle := filepath.Join(dir, workload+".teeperf")
			err := run([]string{"record", "-workload", workload, "-ops", "300", "-o", bundle})
			if err != nil {
				t.Fatalf("record %s: %v", workload, err)
			}
			if err := run([]string{"analyze", "-i", bundle, "-top", "3"}); err != nil {
				t.Errorf("analyze %s: %v", workload, err)
			}
		})
	}
}

func TestCLIRecordSelective(t *testing.T) {
	dir := chdirTemp(t)
	bundle := filepath.Join(dir, "sel.teeperf")
	err := run([]string{"record",
		"-workload", "phoenix/string_match",
		"-only", "string_match",
		"-o", bundle,
	})
	if err != nil {
		t.Fatalf("selective record: %v", err)
	}
	if err := run([]string{"analyze", "-i", bundle}); err != nil {
		t.Errorf("analyze: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	chdirTemp(t)
	cases := [][]string{
		{},
		{"bogus"},
		{"analyze"},                      // missing -i
		{"analyze", "-i", "nope.bundle"}, // missing file
		{"query", "-i", "nope.bundle", "-q", "x == 1"},
		{"record", "-workload", "bogus/one"},
		{"record", "-platform", "bogus"},
		{"dump"},
		{"flame"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestCLIQueryBadExpression(t *testing.T) {
	dir := chdirTemp(t)
	bundle := recordSample(t, dir)
	if err := run([]string{"query", "-i", bundle, "-q", "((("}); err == nil {
		t.Error("bad query expression should fail")
	}
	if err := run([]string{"query", "-i", bundle, "-group", "bogus_col"}); err == nil {
		t.Error("bad group column should fail")
	}
	if err := run([]string{"query", "-i", bundle, "-sort", "bogus_col"}); err == nil {
		t.Error("bad sort column should fail")
	}
}

func TestCLIDiffCallgraphPaths(t *testing.T) {
	dir := chdirTemp(t)
	a := filepath.Join(dir, "a.teeperf")
	if err := run([]string{"record", "-workload", "spdk-naive", "-ops", "200", "-o", a}); err != nil {
		t.Fatalf("record naive: %v", err)
	}
	b := filepath.Join(dir, "b.teeperf")
	if err := run([]string{"record", "-workload", "spdk-optimized", "-ops", "200", "-o", b}); err != nil {
		t.Fatalf("record optimized: %v", err)
	}
	if err := run([]string{"diff", "-a", a, "-b", b, "-top", "8"}); err != nil {
		t.Errorf("diff: %v", err)
	}
	if err := run([]string{"callgraph", "-i", a, "-top", "5"}); err != nil {
		t.Errorf("callgraph: %v", err)
	}
	if err := run([]string{"paths", "-i", a, "-leaf", "getpid", "-n", "5"}); err != nil {
		t.Errorf("paths: %v", err)
	}
	// Error paths.
	if err := run([]string{"diff", "-a", a}); err == nil {
		t.Error("diff without -b should fail")
	}
	if err := run([]string{"diff", "-a", "missing", "-b", b}); err == nil {
		t.Error("diff with missing bundle should fail")
	}
}

func TestCLIWhatIfAndReport(t *testing.T) {
	dir := chdirTemp(t)
	bundle := recordSample(t, dir)
	if err := run([]string{"whatif", "-i", bundle, "-remove", "hist_chunk,histogram"}); err != nil {
		t.Errorf("whatif: %v", err)
	}
	if err := run([]string{"whatif", "-i", bundle}); err == nil {
		t.Error("whatif without -remove should fail")
	}
	out := filepath.Join(dir, "r.html")
	if err := run([]string{"report", "-i", bundle, "-o", out, "-title", "cli test"}); err != nil {
		t.Fatalf("report: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "cli test") || !strings.Contains(string(data), "<svg") {
		t.Error("report output incomplete")
	}
}

func TestCLITransitionsAndInteractiveFlame(t *testing.T) {
	dir := chdirTemp(t)
	bundle := filepath.Join(dir, "tr.teeperf")
	if err := run([]string{"record", "-workload", "spdk-naive", "-ops", "150", "-transitions", "-o", bundle}); err != nil {
		t.Fatalf("record -transitions: %v", err)
	}
	svg := filepath.Join(dir, "i.svg")
	if err := run([]string{"flame", "-i", bundle, "-o", svg, "-interactive"}); err != nil {
		t.Fatalf("flame -interactive: %v", err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<script><![CDATA[") {
		t.Error("interactive flame graph missing zoom script")
	}
}
