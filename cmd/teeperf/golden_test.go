package main

// Golden-file tests for the CLI's human-facing output. The fixtures in
// testdata/ are deterministic (virtual counter, fixed PID), so the exact
// bytes of `teeperf analyze -top` and `teeperf recover` are pinned.
// Regenerate fixtures and goldens together after an intentional format
// change with:
//
//	go test ./cmd/teeperf -run TestGolden -update

import (
	"bytes"
	"flag"
	"os"
	"sync"
	"testing"

	"teeperf"
	"teeperf/internal/counter"
	"teeperf/internal/shmlog"
)

var update = flag.Bool("update", false, "regenerate testdata fixtures and golden files")

var fixturesOnce sync.Once

// ensureFixtures regenerates the checked-in fixture bundles when -update
// is set; otherwise it verifies they exist.
func ensureFixtures(t *testing.T) {
	t.Helper()
	if *update {
		fixturesOnce.Do(func() { regenFixtures(t) })
		return
	}
	for _, p := range []string{"testdata/sample.teeperf", "testdata/torn.teeperf.part"} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("fixture missing (regenerate with -update): %v", err)
		}
	}
}

// regenFixtures writes a deterministic clean bundle and a torn variant
// (final entry cut mid-record, as a crash mid-checkpoint would leave it).
func regenFixtures(t *testing.T) {
	t.Helper()
	s, err := teeperf.New(
		teeperf.WithCounterSource(counter.NewVirtual(1)),
		teeperf.WithPID(4242),
		teeperf.WithCapacity(4096),
	)
	if err != nil {
		t.Fatal(err)
	}
	var reg struct{ main, dispatch, seal, write, walk uint64 }
	for _, f := range []struct {
		dst  *uint64
		name string
		line int
	}{
		{&reg.main, "tee_main", 10},
		{&reg.dispatch, "ecall_dispatch", 20},
		{&reg.seal, "crypto_seal", 30},
		{&reg.write, "ocall_write", 40},
		{&reg.walk, "page_walk", 50},
	} {
		addr, err := s.RegisterFunc(f.name, "enclave.c", f.line)
		if err != nil {
			t.Fatal(err)
		}
		*f.dst = addr
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	th, err := s.Thread()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		th.Enter(reg.main)
		th.Enter(reg.dispatch)
		th.Enter(reg.seal)
		th.Exit(reg.seal)
		if i%3 == 0 {
			th.Enter(reg.write)
			th.Exit(reg.write)
		}
		th.Exit(reg.dispatch)
		if i%5 == 0 {
			th.Enter(reg.walk)
			th.Exit(reg.walk)
		}
		th.Exit(reg.main)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Persist("testdata/sample.teeperf"); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile("testdata/sample.teeperf")
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < 64 {
		t.Fatalf("sample bundle implausibly small: %d bytes", len(b))
	}
	if err := os.WriteFile("testdata/torn.teeperf.part", b[:len(b)-16], 0o644); err != nil {
		t.Fatal(err)
	}
}

// ensureSpoolFixtures regenerates the agent's spool-directory fixture when
// -update is set: two well-formed shared mappings with deterministic
// entries (virtual ticks, app PID left 0 so liveness is unknowable and the
// sessions deterministically report "attached") plus one torn file that
// must stay "discovered".
func ensureSpoolFixtures(t *testing.T) {
	t.Helper()
	if !*update {
		if _, err := os.Stat("testdata/spool/enclave_a.shm"); err != nil {
			t.Fatalf("spool fixture missing (regenerate with -update): %v", err)
		}
		return
	}
	spoolOnce.Do(func() { regenSpoolFixtures(t) })
}

var spoolOnce sync.Once

func regenSpoolFixtures(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll("testdata/spool", 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, pairs int) {
		log, err := shmlog.CreateFile("testdata/spool/"+name, 4096)
		if err != nil {
			t.Fatal(err)
		}
		tick := uint64(0)
		for i := 0; i < pairs; i++ {
			tick += 3
			if err := log.Append(shmlog.Entry{Kind: shmlog.KindCall, Counter: tick, Addr: 0x1000 + uint64(i%2)*16, ThreadID: 1}); err != nil {
				t.Fatal(err)
			}
			tick += 5
			if err := log.Append(shmlog.Entry{Kind: shmlog.KindReturn, Counter: tick, Addr: 0x1000 + uint64(i%2)*16, ThreadID: 1}); err != nil {
				t.Fatal(err)
			}
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("enclave_a.shm", 12)
	write("enclave_b.shm", 30)
	if err := os.WriteFile("testdata/spool/torn.shm", []byte("not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenAnalyzeTop(t *testing.T) {
	ensureFixtures(t)
	stdout, stderr, code := runCLI(t, nil, "analyze", "-i", "testdata/sample.teeperf", "-top", "5")
	if code != 0 {
		t.Fatalf("analyze exited %d\nstderr: %s", code, stderr)
	}
	checkGolden(t, "testdata/analyze_top.golden", []byte(stdout))
}

func TestGoldenAgentOnce(t *testing.T) {
	if !shmlog.MmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	ensureSpoolFixtures(t)
	stdout, stderr, code := runCLI(t, nil, "agent", "-once", "-spool", "testdata/spool")
	if code != 0 {
		t.Fatalf("agent -once exited %d\nstderr: %s", code, stderr)
	}
	checkGolden(t, "testdata/agent_once.golden", []byte(stdout))
}

// TestGoldenStressTable pins the deterministic surface of the overhead
// gauntlet: -det prints only the timing-free columns (events, masked
// totals, workload checksums) under the virtual counter, so the exact
// bytes are stable across machines. Wall-clock and ratio columns are
// deliberately absent — those are gated by scripts/bench_gate.sh, not
// pinned here.
func TestGoldenStressTable(t *testing.T) {
	stdout, stderr, code := runCLI(t, nil, "stress",
		"-quick", "-det", "-counter", "virtual",
		"-shards", "1", "-runs", "1", "-warmups", "0", "-seed", "1")
	if code != 0 {
		t.Fatalf("stress -det exited %d\nstderr: %s", code, stderr)
	}
	checkGolden(t, "testdata/stress_table.golden", []byte(stdout))
}

func TestGoldenRecoverReport(t *testing.T) {
	ensureFixtures(t)
	stdout, stderr, code := runCLI(t, nil, "recover", "-i", "testdata/torn.teeperf.part", "-top", "3")
	if code != 0 {
		t.Fatalf("recover exited %d\nstderr: %s", code, stderr)
	}
	checkGolden(t, "testdata/recover_report.golden", []byte(stdout))
}
