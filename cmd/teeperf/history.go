package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"teeperf/internal/flamegraph"
	"teeperf/internal/profilestore"
	"teeperf/internal/query"
)

// cmdHistory is the profile history store front end: finished segments
// (bundles, or logs the agent salvaged) accumulate in an LSM-style store
// that answers time-travel and differential queries long after the
// recordings died.
//
//	teeperf history ingest  -store DIR bundle.teeperf [bundle2 ...]
//	teeperf history query   -store DIR [-tid N] [-from C] [-to C] [-top 20]
//	teeperf history diff    -store DIR -a FROM:TO -b FROM:TO [-top 20] [-svg diff.svg]
//	teeperf history compact -store DIR
func cmdHistory(args []string) error {
	if len(args) < 1 {
		return usageErr{fmt.Errorf("history needs a subcommand: ingest | query | diff | compact")}
	}
	switch args[0] {
	case "ingest":
		return historyIngest(args[1:])
	case "query":
		return historyQuery(args[1:])
	case "diff":
		return historyDiff(args[1:])
	case "compact":
		return historyCompact(args[1:])
	default:
		return usageErr{fmt.Errorf("unknown history subcommand %q (want ingest | query | diff | compact)", args[0])}
	}
}

// openStore opens the history store, reporting any open-time repairs on
// stderr so they are visible but do not pollute piped query output.
func openStore(dir string) (*profilestore.Store, error) {
	if dir == "" {
		return nil, usageErr{fmt.Errorf("missing -store <dir>")}
	}
	st, err := profilestore.Open(dir, profilestore.Options{})
	if err != nil {
		return nil, err
	}
	if rep := st.Report(); !rep.Clean() {
		fmt.Fprintf(os.Stderr, "history: store repaired on open: %+v\n", rep)
	}
	return st, nil
}

func historyIngest(args []string) error {
	fs := flag.NewFlagSet("history ingest", flag.ContinueOnError)
	dir := fs.String("store", "", "history store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return usageErr{fmt.Errorf("history ingest needs bundle paths")}
	}
	st, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	for _, path := range fs.Args() {
		res, err := st.IngestBundle(path, "")
		if err != nil {
			return fmt.Errorf("ingest %s: %w", path, err)
		}
		if res.Duplicate {
			fmt.Printf("%s: already stored (segment %s, table %d)\n", path, res.Segment, res.TableSeq)
		} else {
			fmt.Printf("%s: stored as segment %s (%d entries, table %d)\n", path, res.Segment, res.Entries, res.TableSeq)
		}
	}
	return nil
}

// windowFlags parses the shared query window flags.
func windowFlags(fs *flag.FlagSet) (tid, from, to *uint64) {
	tid = fs.Uint64("tid", 0, "restrict to one thread ID (0 = all threads)")
	from = fs.Uint64("from", 0, "window start (counter ticks)")
	to = fs.Uint64("to", 0, "window end (counter ticks, 0 = end of history)")
	return
}

func normWindow(from, to uint64) (uint64, uint64) {
	if to == 0 {
		to = profilestore.FullWindow
	}
	return from, to
}

func historyQuery(args []string) error {
	fs := flag.NewFlagSet("history query", flag.ContinueOnError)
	dir := fs.String("store", "", "history store directory")
	tid, from, to := windowFlags(fs)
	top := fs.Int("top", 20, "number of functions to show")
	folded := fs.Bool("folded", false, "emit folded stacks instead of the hot-methods table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	f, t := normWindow(*from, *to)
	p, err := st.Profile(*tid, f, t)
	if err != nil {
		return err
	}
	if *folded {
		return flamegraph.WriteFolded(os.Stdout, p.Folded())
	}
	min, max, ok := st.Bounds()
	if ok {
		fmt.Printf("history [%d, %d] of %d segments in %d tables\n\n", min, max, len(st.Segments()), st.Stats().Tables)
	}
	return p.WriteTable(os.Stdout, *top)
}

// parseWindow parses a FROM:TO counter window ("500:900"; an empty TO means
// end of history).
func parseWindow(s string) (uint64, uint64, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("window %q: want FROM:TO", s)
	}
	from, err := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("window %q: %v", s, err)
	}
	to := profilestore.FullWindow
	if hi = strings.TrimSpace(hi); hi != "" {
		if to, err = strconv.ParseUint(hi, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("window %q: %v", s, err)
		}
	}
	if from > to {
		return 0, 0, fmt.Errorf("window %q is inverted", s)
	}
	return from, to, nil
}

func historyDiff(args []string) error {
	fs := flag.NewFlagSet("history diff", flag.ContinueOnError)
	dir := fs.String("store", "", "history store directory")
	winA := fs.String("a", "", "baseline counter window FROM:TO")
	winB := fs.String("b", "", "comparison counter window FROM:TO")
	tid := fs.Uint64("tid", 0, "restrict to one thread ID (0 = all threads)")
	top := fs.Int("top", 20, "rows to show")
	svg := fs.String("svg", "", "also render a differential flame graph SVG here")
	width := fs.Int("width", 1200, "SVG width in pixels")
	asJSON := fs.Bool("json", false, "emit the diff rows as JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *winA == "" || *winB == "" {
		return usageErr{fmt.Errorf("history diff needs -a FROM:TO and -b FROM:TO")}
	}
	fromA, toA, err := parseWindow(*winA)
	if err != nil {
		return usageErr{err}
	}
	fromB, toB, err := parseWindow(*winB)
	if err != nil {
		return usageErr{err}
	}
	st, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	pa, pb, rows, err := st.Diff(*tid, fromA, toA, fromB, toB)
	if err != nil {
		return err
	}

	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			return err
		}
		err = flamegraph.RenderDiffSVG(f, pa.Folded(), pb.Folded(), flamegraph.SVGOptions{
			Title: fmt.Sprintf("TEE-Perf history diff: [%s] vs [%s]", *winA, *winB),
			Width: *width,
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svg)
	}

	frame := query.DiffFrame(rows).Head(*top)
	if *asJSON {
		return frame.WriteJSON(os.Stdout)
	}
	return frame.WriteTable(os.Stdout)
}

func historyCompact(args []string) error {
	fs := flag.NewFlagSet("history compact", flag.ContinueOnError)
	dir := fs.String("store", "", "history store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := openStore(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	before := st.Stats()
	if err := st.Compact(); err != nil {
		return err
	}
	after := st.Stats()
	fmt.Printf("compacted %d tables into %d (%d segments, %d entries)\n",
		before.Tables, after.Tables, after.Segments, after.Entries)
	return nil
}
