package main

// Golden-file tests for `teeperf history query` and `teeperf history diff`.
// The fixture bundle is deterministic (virtual counter, fixed PID) and its
// workload deliberately shifts halfway through — crypto_seal dominates the
// first half of counter time, page_walk the second — so the differential
// query has signal to pin. Regenerate with:
//
//	go test ./cmd/teeperf -run TestGoldenHistory -update

import (
	"os"
	"sync"
	"testing"

	"teeperf"
	"teeperf/internal/counter"
)

const historyFixture = "testdata/history.teeperf"

var historyOnce sync.Once

func ensureHistoryFixture(t *testing.T) {
	t.Helper()
	if *update {
		historyOnce.Do(func() { regenHistoryFixture(t) })
		return
	}
	if _, err := os.Stat(historyFixture); err != nil {
		t.Fatalf("fixture missing (regenerate with -update): %v", err)
	}
}

// regenHistoryFixture writes one bundle whose hot function changes over
// counter time: 20 seal-heavy iterations, then 20 walk-heavy ones. Every
// probe event advances the virtual counter by exactly one tick, so the
// phase boundary sits at a fixed, reproducible counter value.
func regenHistoryFixture(t *testing.T) {
	t.Helper()
	s, err := teeperf.New(
		teeperf.WithCounterSource(counter.NewVirtual(1)),
		teeperf.WithPID(4242),
		teeperf.WithCapacity(4096),
	)
	if err != nil {
		t.Fatal(err)
	}
	var reg struct{ main, dispatch, seal, walk uint64 }
	for _, f := range []struct {
		dst  *uint64
		name string
		line int
	}{
		{&reg.main, "tee_main", 10},
		{&reg.dispatch, "ecall_dispatch", 20},
		{&reg.seal, "crypto_seal", 30},
		{&reg.walk, "page_walk", 50},
	} {
		addr, err := s.RegisterFunc(f.name, "enclave.c", f.line)
		if err != nil {
			t.Fatal(err)
		}
		*f.dst = addr
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	th, err := s.Thread()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		hot := reg.seal
		if i >= 20 {
			hot = reg.walk
		}
		th.Enter(reg.main)
		th.Enter(reg.dispatch)
		th.Enter(hot)
		th.Exit(hot)
		th.Exit(reg.dispatch)
		th.Exit(reg.main)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Persist(historyFixture); err != nil {
		t.Fatal(err)
	}
}

// historyStore ingests the fixture into a fresh store and returns its
// directory. Ingest output is itself pinned: fresh store, so the segment
// lands in table 1 every time.
func historyStore(t *testing.T) string {
	t.Helper()
	ensureHistoryFixture(t)
	dir := t.TempDir()
	stdout, stderr, code := runCLI(t, nil, "history", "ingest", "-store", dir, historyFixture)
	if code != 0 {
		t.Fatalf("history ingest exited %d\nstderr: %s", code, stderr)
	}
	checkGolden(t, "testdata/history_ingest.golden", []byte(stdout))
	return dir
}

func TestGoldenHistoryQuery(t *testing.T) {
	dir := historyStore(t)
	stdout, stderr, code := runCLI(t, nil, "history", "query", "-store", dir, "-top", "5")
	if code != 0 {
		t.Fatalf("history query exited %d\nstderr: %s", code, stderr)
	}
	checkGolden(t, "testdata/history_query.golden", []byte(stdout))

	// The folded view of the same window is pinned too: it is the byte
	// surface the conformance suite compares, so format drift should be a
	// deliberate act.
	stdout, stderr, code = runCLI(t, nil, "history", "query", "-store", dir, "-folded")
	if code != 0 {
		t.Fatalf("history query -folded exited %d\nstderr: %s", code, stderr)
	}
	checkGolden(t, "testdata/history_folded.golden", []byte(stdout))
}

func TestGoldenHistoryDiff(t *testing.T) {
	dir := historyStore(t)
	// 40 iterations x 6 probe events, one tick each: the seal->walk phase
	// boundary is at tick 120.
	stdout, stderr, code := runCLI(t, nil, "history", "diff", "-store", dir,
		"-a", "0:120", "-b", "121:", "-top", "6")
	if code != 0 {
		t.Fatalf("history diff exited %d\nstderr: %s", code, stderr)
	}
	checkGolden(t, "testdata/history_diff.golden", []byte(stdout))
}
