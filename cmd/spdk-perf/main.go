// spdk-perf regenerates Figure 6 and the §IV-C throughput table of the
// paper: the SPDK perf benchmark (4 KiB random I/O, 80% reads) run native,
// naively ported into a simulated SGX enclave, and with the paper's
// getpid/timestamp caching optimizations — each run profiled by TEE-Perf.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"teeperf/internal/experiments"
	"teeperf/internal/tee"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spdk-perf:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		platformName = flag.String("platform", "sgx-v1", "TEE platform: "+strings.Join(tee.PlatformNames(), ", "))
		ops          = flag.Int("ops", 20000, "I/O operations per configuration")
		depth        = flag.Int("qd", 32, "queue depth")
		readPct      = flag.Int("reads", 80, "read percentage")
		flameDir     = flag.String("flame-dir", "", "write naive/optimized flame graph SVGs into this directory")
	)
	flag.Parse()

	platform, err := tee.ByName(*platformName)
	if err != nil {
		return err
	}
	fmt.Printf("Fig 6 + §IV-C: SPDK perf (4 KiB, %d%% reads, QD %d) on platform %s\n\n",
		*readPct, *depth, platform.Name)
	res, err := experiments.RunFig6(experiments.Fig6Config{
		Platform:   platform,
		Ops:        *ops,
		QueueDepth: *depth,
		ReadPct:    *readPct,
	})
	if err != nil {
		return err
	}
	if err := experiments.WriteFig6(os.Stdout, res); err != nil {
		return err
	}
	if *flameDir != "" {
		if err := os.MkdirAll(*flameDir, 0o755); err != nil {
			return err
		}
		for _, run := range []experiments.Fig6Run{res.Naive, res.Optimized} {
			path := *flameDir + "/spdk-" + run.Label + ".svg"
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = experiments.WriteFlameGraph(f, run.Profile, "SPDK perf "+run.Label+" (TEE-Perf)")
			f.Close()
			if err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	return nil
}
