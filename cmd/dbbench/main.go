// dbbench regenerates Figure 5 of the paper: profile the RocksDB-style
// db_bench ReadRandomWriteRandom workload (80% reads) inside a simulated
// SGX enclave with TEE-Perf, print the hot-method table and emit the flame
// graph.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"teeperf/internal/experiments"
	"teeperf/internal/tee"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dbbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		platformName = flag.String("platform", "sgx-v1", "TEE platform: "+strings.Join(tee.PlatformNames(), ", "))
		ops          = flag.Int("ops", 20000, "operations")
		readPct      = flag.Int("reads", 80, "read percentage")
		flame        = flag.String("flame", "", "write flame graph SVG to this path")
	)
	flag.Parse()

	platform, err := tee.ByName(*platformName)
	if err != nil {
		return err
	}
	fmt.Printf("Fig 5: RocksDB db_bench readrandomwriterandom under TEE-Perf, platform %s\n\n", platform.Name)
	res, err := experiments.RunFig5(experiments.Fig5Config{
		Platform: platform,
		Ops:      *ops,
		ReadPct:  *readPct,
	})
	if err != nil {
		return err
	}
	if err := experiments.WriteFig5(os.Stdout, res); err != nil {
		return err
	}
	if *flame != "" {
		f, err := os.Create(*flame)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := experiments.WriteFlameGraph(f, res.Profile, "RocksDB db_bench (TEE-Perf, "+platform.Name+")"); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *flame)
	}
	return nil
}
