// teeperf-instrument is the stage-1 compiler pass: it rewrites the Go
// sources of a package so every function executes a TEE-Perf probe at
// entry and exit, and registers itself with the teeperf/rt runtime — the
// analogue of rebuilding a C application with
// `gcc -finstrument-functions --include=profiler.h ... -lprofiler`.
//
// Usage:
//
//	teeperf-instrument -in ./myapp -out ./myapp-instrumented [-skip-tests] [-only pattern]
//
// Rebuild the output directory with the normal Go toolchain (the module
// must require teeperf for the rt package), run the binary, and analyze
// the bundle written by rt.Finish with `teeperf analyze`.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"teeperf/internal/instrument"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "teeperf-instrument:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "input package directory")
		out       = flag.String("out", "", "output directory for instrumented sources")
		skipTests = flag.Bool("skip-tests", true, "skip *_test.go files")
		only      = flag.String("only", "", "regexp of qualified function names to instrument (selective profiling)")
		verbose   = flag.Bool("v", false, "list instrumented functions")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		return fmt.Errorf("both -in and -out are required")
	}
	opts := instrument.Options{SkipTests: *skipTests}
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			return fmt.Errorf("bad -only pattern: %w", err)
		}
		opts.Only = re.MatchString
	}
	report, err := instrument.Dir(*in, *out, opts)
	if err != nil {
		return err
	}
	fmt.Printf("instrumented %d functions in %d files (%d skipped)\n",
		report.Instrumented, report.Files, report.Skipped)
	if *verbose {
		for _, fi := range report.Funcs {
			fmt.Printf("  %-50s %s:%d\n", fi.Name, fi.File, fi.Line)
		}
	}
	fmt.Println("rebuild the output package against teeperf/rt and run it to record a profile")
	return nil
}
