//go:build linux || darwin

package teeperf

// Fleet-agent lifecycle conformance: one agent observes three real
// instrumented child processes through a spool directory, one child is
// SIGKILLed mid-run, and the fleet metrics must show exactly the surviving
// sessions live and the killed one salvaged — with per-session entry
// counts intact and the neighbors' accounting undisturbed.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"teeperf/internal/agent"
	"teeperf/internal/recorder"
)

// crossprocWorkloadEntries is the deterministic entry count of the fixed
// re-exec workload: 40×main{alpha{beta}} (6 entries each) plus 20×gamma
// pairs.
const crossprocWorkloadEntries = 40*6 + 20*2

// lifecycleChild hosts one mapping and runs one "spin" child over it.
type lifecycleChild struct {
	name string
	shm  string
	host *recorder.Recorder
	cmd  *exec.Cmd
}

func startLifecycleChild(t *testing.T, spool, name string) *lifecycleChild {
	t.Helper()
	shm := filepath.Join(spool, name+".shm")
	host, err := recorder.Create(shm, recorder.WithCapacity(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = host.Log().Close() })
	if err := host.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = host.Stop() })

	cmd := spawnCrossprocChild(t, "spin", shm)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	waitForLine(t, bufio.NewScanner(stdout), "WORKLOAD-DONE")
	return &lifecycleChild{name: name, shm: shm, host: host, cmd: cmd}
}

func fetchAgent(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

func TestAgentFleetLifecycle(t *testing.T) {
	requireMmap(t)
	spool := t.TempDir()

	// Three real instrumented children, each appending the deterministic
	// workload into its own spool mapping, then blocking for a signal.
	children := []*lifecycleChild{
		startLifecycleChild(t, spool, "app_a"),
		startLifecycleChild(t, spool, "app_b"),
		startLifecycleChild(t, spool, "app_c"),
	}
	defer func() {
		for _, c := range children {
			if c.cmd.ProcessState == nil {
				_ = c.cmd.Process.Kill()
				_, _ = c.cmd.Process.Wait()
			}
		}
	}()

	a := agent.New(agent.Config{Spool: spool})
	defer a.Close()
	srv, err := agent.Serve(a, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The background loop discovers and scrapes all three; children are
	// blocked in select{}, so their stamped PIDs answer liveness probes.
	waitFleet := func(desc string, ok func(string) bool) string {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			body := fetchAgent(t, srv.URL()+"/metrics")
			if ok(body) {
				return body
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet never reached: %s\n%s", desc, body)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	allLive := waitFleet("3 live sessions with full workloads", func(body string) bool {
		if !strings.Contains(body, `teeperf_fleet_sessions_by_state{state="live"} 3`) {
			return false
		}
		for _, c := range children {
			want := fmt.Sprintf("teeperf_entries_committed_total{session=%q} %d", c.name, crossprocWorkloadEntries)
			if !strings.Contains(body, want) {
				return false
			}
		}
		return true
	})
	if !strings.Contains(allLive, "teeperf_fleet_sessions 3") {
		t.Fatalf("fleet size wrong:\n%s", allLive)
	}
	if want := fmt.Sprintf("teeperf_fleet_entries_committed_total %d", 3*crossprocWorkloadEntries); !strings.Contains(allLive, want) {
		t.Fatalf("fleet rollup missing %q:\n%s", want, allLive)
	}

	// SIGKILL the middle child mid-run. The agent must notice death, run
	// the salvage pass, and leave the neighbors' sessions untouched.
	assertKilled(t, children[1].cmd)

	final := waitFleet("2 live + 1 salvaged", func(body string) bool {
		return strings.Contains(body, `teeperf_fleet_sessions_by_state{state="live"} 2`) &&
			strings.Contains(body, `teeperf_fleet_sessions_by_state{state="salvaged"} 1`)
	})
	for _, want := range []string{
		`teeperf_session_state{session="app_b",state="salvaged"} 1`,
		`teeperf_session_state{session="app_a",state="live"} 1`,
		`teeperf_session_state{session="app_c",state="live"} 1`,
		fmt.Sprintf(`teeperf_session_salvaged_entries{session="app_b"} %d`, crossprocWorkloadEntries),
		fmt.Sprintf(`teeperf_entries_committed_total{session="app_b"} %d`, crossprocWorkloadEntries),
		fmt.Sprintf(`teeperf_fleet_salvaged_entries_total %d`, crossprocWorkloadEntries),
	} {
		if !strings.Contains(final, want) {
			t.Errorf("/metrics missing %q after kill", want)
		}
	}
	// Neighbors keep their full per-session accounting.
	for _, name := range []string{"app_a", "app_c"} {
		want := fmt.Sprintf("teeperf_entries_committed_total{session=%q} %d", name, crossprocWorkloadEntries)
		if !strings.Contains(final, want) {
			t.Errorf("neighbor %s accounting disturbed: missing %q", name, want)
		}
	}
	if t.Failed() {
		t.Logf("final /metrics:\n%s", final)
	}

	// The salvage report on the session itself agrees with the metrics.
	s := srv.Agent().Session("app_b")
	if rep := s.Salvage(); rep == nil || rep.EntriesSalvaged != crossprocWorkloadEntries {
		t.Fatalf("salvage report = %+v, want %d entries", rep, crossprocWorkloadEntries)
	}

	// The fleet dashboard and sessions registry reflect the same state.
	index := fetchAgent(t, srv.URL()+"/")
	for _, want := range []string{"<code>app_a</code>", "<code>app_b</code>", "salvaged"} {
		if !strings.Contains(index, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
