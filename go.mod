module teeperf

go 1.22
