package shmlog

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestCursorSequential(t *testing.T) {
	l, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	c := l.Cursor()
	if got := c.Next(nil); len(got) != 0 {
		t.Fatalf("cursor on empty log returned %d entries", len(got))
	}

	for i := 0; i < 3; i++ {
		if err := l.Append(Entry{Kind: KindCall, Counter: uint64(i + 1), Addr: 0x100, ThreadID: 1}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Next(nil)
	if len(got) != 3 {
		t.Fatalf("first drain returned %d entries, want 3", len(got))
	}
	for i, e := range got {
		if e.Counter != uint64(i+1) || e.Addr != 0x100 || e.ThreadID != 1 || e.Kind != KindCall {
			t.Errorf("entry %d = %+v", i, e)
		}
	}
	if got := c.Next(nil); len(got) != 0 {
		t.Fatalf("second drain re-returned %d entries", len(got))
	}

	if err := l.Append(Entry{Kind: KindReturn, Counter: 9, Addr: 0x100, ThreadID: 1}); err != nil {
		t.Fatal(err)
	}
	got = c.Next(nil)
	if len(got) != 1 || got[0].Kind != KindReturn || got[0].Counter != 9 {
		t.Fatalf("incremental drain = %+v, want one return", got)
	}
	if c.Pos() != 4 {
		t.Errorf("Pos = %d, want 4", c.Pos())
	}
	if c.Log() != l {
		t.Error("Cursor.Log does not return the source log")
	}
}

func TestCursorZeroCounterCallIsCommitted(t *testing.T) {
	// A call entry with counter value 0 stores an all-zero first word; the
	// commit marker is the thread-ID word, so the cursor must still
	// surface it (the old torn-record heuristic could not).
	l, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Kind: KindCall, Counter: 0, Addr: 0x42, ThreadID: 7}); err != nil {
		t.Fatal(err)
	}
	got := l.Cursor().Next(nil)
	if len(got) != 1 || got[0].Counter != 0 || got[0].Addr != 0x42 || got[0].ThreadID != 7 {
		t.Fatalf("zero-counter call not observed: %+v", got)
	}
}

// TestCursorConcurrentTailing runs writer goroutines appending entries
// while a reader repeatedly snapshots through the cursor, asserting that
// every committed entry is eventually observed exactly once, in per-thread
// order, and that no torn or in-flight entry is ever returned. Run under
// -race in CI.
func TestCursorConcurrentTailing(t *testing.T) {
	const (
		writers    = 4
		perWriter  = 5000
		capacity   = writers*perWriter - 1500 // force the overflow path too
		addrStride = 1_000_000
	)
	l, err := New(capacity)
	if err != nil {
		t.Fatal(err)
	}

	// Each writer's entry encodes (thread, sequence) redundantly in the
	// address word so the reader can detect torn records.
	var committed atomic.Uint64
	var wg sync.WaitGroup
	for w := 1; w <= writers; w++ {
		wg.Add(1)
		go func(tid uint64) {
			defer wg.Done()
			for seq := 0; seq < perWriter; seq++ {
				e := Entry{
					Kind:     KindCall,
					Counter:  uint64(seq),
					Addr:     tid*addrStride + uint64(seq),
					ThreadID: tid,
				}
				if seq%2 == 1 {
					e.Kind = KindReturn
				}
				if err := l.Append(e); err == nil {
					committed.Add(1)
				}
			}
		}(uint64(w))
	}
	writersDone := make(chan struct{})
	go func() { wg.Wait(); close(writersDone) }()

	cursor := l.Cursor()
	var observed []Entry
	done := false
	for !done {
		select {
		case <-writersDone:
			done = true
		default:
		}
		observed = cursor.Next(observed)
	}
	// Final drain: every reserved slot below capacity is committed once
	// the writers have exited.
	observed = cursor.Next(observed)

	if got, want := uint64(len(observed)), committed.Load(); got != want {
		t.Fatalf("observed %d entries, committed %d", got, want)
	}
	if cursor.Pos() != l.Len() {
		t.Fatalf("cursor stopped at %d of %d committed entries", cursor.Pos(), l.Len())
	}

	lastSeq := make(map[uint64]int64)
	for w := 1; w <= writers; w++ {
		lastSeq[uint64(w)] = -1
	}
	seen := make(map[uint64]bool, len(observed))
	for i, e := range observed {
		if e.ThreadID < 1 || e.ThreadID > writers {
			t.Fatalf("entry %d: torn or in-flight record surfaced: %+v", i, e)
		}
		seq := e.Addr - e.ThreadID*addrStride
		if seq != e.Counter {
			t.Fatalf("entry %d: torn record (addr %d vs counter %d)", i, e.Addr, e.Counter)
		}
		wantKind := KindCall
		if seq%2 == 1 {
			wantKind = KindReturn
		}
		if e.Kind != wantKind {
			t.Fatalf("entry %d: torn kind bit: %+v", i, e)
		}
		if seen[e.Addr] {
			t.Fatalf("entry %d observed twice: %+v", i, e)
		}
		seen[e.Addr] = true
		// A thread's own entries appear in its program order (the
		// property the analyzer relies on).
		if int64(seq) <= lastSeq[e.ThreadID] {
			t.Fatalf("thread %d out of order: seq %d after %d", e.ThreadID, seq, lastSeq[e.ThreadID])
		}
		lastSeq[e.ThreadID] = int64(seq)
	}
}
