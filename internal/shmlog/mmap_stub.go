//go:build !(linux || darwin)

package shmlog

// MmapSupported reports whether this platform supports file-backed shared
// logs. On platforms without MAP_SHARED file mappings callers fall back to
// the in-process heap log.
const MmapSupported = false

// CreateFile is unavailable on this platform.
func CreateFile(path string, capacity int, opts ...Option) (*Log, error) {
	return nil, ErrMmapUnsupported
}

// OpenFile is unavailable on this platform.
func OpenFile(path string) (*Log, error) {
	return nil, ErrMmapUnsupported
}

// ObserveFile is unavailable on this platform.
func ObserveFile(path string) (*Log, error) {
	return nil, ErrMmapUnsupported
}

// ControlFile is unavailable on this platform.
func ControlFile(path string) (*Log, error) {
	return nil, ErrMmapUnsupported
}

func msync(data []byte) error  { return nil }
func munmap(data []byte) error { return nil }
