package shmlog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// encodeV1 renders entries in the legacy version-1 persisted format: a
// packed 8-word header (flags, version, pid, capacity, tail, profiler
// address, counter, magic) followed by the 3-word entries. The current
// writer only emits version 2, so this is the reference encoder the
// decode-compatibility tests are pinned against.
func encodeV1(flags, pid, profilerAddr, counter uint64, entries []Entry) []byte {
	var buf bytes.Buffer
	put := func(v uint64) {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], v)
		buf.Write(w[:])
	}
	header := [HeaderWordsV1]uint64{
		v1WordFlags:        flags,
		v1WordVersion:      VersionV1,
		v1WordPID:          pid,
		v1WordCapacity:     uint64(len(entries)),
		v1WordTail:         uint64(len(entries)),
		v1WordProfilerAddr: profilerAddr,
		v1WordCounter:      counter,
		v1WordMagic:        Magic,
	}
	for _, w := range header {
		put(w)
	}
	for _, e := range entries {
		word0 := e.Counter & counterMask
		if e.Kind == KindReturn {
			word0 |= kindBit
		}
		put(word0)
		put(e.Addr)
		put(e.ThreadID)
	}
	return buf.Bytes()
}

// TestReadV1Golden pins the v1 byte layout: if the header constants drift,
// the golden header bytes change and old recordings silently stop decoding.
func TestReadV1Golden(t *testing.T) {
	entries := []Entry{
		{Kind: KindCall, Counter: 100, Addr: 0x400010, ThreadID: 1},
		{Kind: KindReturn, Counter: 250, Addr: 0x400010, ThreadID: 1},
	}
	raw := encodeV1(EventCall|EventReturn, 42, 0x400000, 999, entries)

	golden := [HeaderWordsV1]uint64{
		EventCall | EventReturn, // flags
		1,                       // version
		42,                      // pid
		2,                       // capacity
		2,                       // tail
		0x400000,                // profiler anchor
		999,                     // counter
		0x5445455045524631,      // magic "TEEPERF1"
	}
	for i, want := range golden {
		if got := binary.LittleEndian.Uint64(raw[i*8:]); got != want {
			t.Fatalf("v1 header word %d = %#x, want %#x", i, got, want)
		}
	}

	l, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Read v1: %v", err)
	}
	if l.SourceVersion() != VersionV1 {
		t.Fatalf("SourceVersion = %d, want %d", l.SourceVersion(), VersionV1)
	}
	if l.Version() != Version {
		t.Fatalf("in-memory Version = %d, want %d (decoded logs are normalized)", l.Version(), Version)
	}
	if l.PID() != 42 || l.ProfilerAddr() != 0x400000 || l.LoadCounter() != 999 {
		t.Fatalf("header fields: pid=%d addr=%#x counter=%d", l.PID(), l.ProfilerAddr(), l.LoadCounter())
	}
	if l.Active() {
		t.Fatal("decoded log must be inactive")
	}
	if got := l.Entries(); !reflect.DeepEqual(got, entries) {
		t.Fatalf("entries = %+v, want %+v", got, entries)
	}
}

// TestReadV1RoundTripsToV2 decodes a v1 stream and re-persists it: the
// output must be the version-2 format carrying the same events and header
// state.
func TestReadV1RoundTripsToV2(t *testing.T) {
	entries := []Entry{
		{Kind: KindCall, Counter: 1, Addr: 0xA, ThreadID: 1},
		{Kind: KindCall, Counter: 2, Addr: 0xB, ThreadID: 2},
		{Kind: KindReturn, Counter: 7, Addr: 0xB, ThreadID: 2},
		{Kind: KindReturn, Counter: 9, Addr: 0xA, ThreadID: 1},
	}
	raw := encodeV1(FlagActive|FlagMultithread|EventCall|EventReturn, 7, 0x1000, 55, entries)

	v1, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Read v1: %v", err)
	}

	var out bytes.Buffer
	if _, err := v1.WriteTo(&out); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if got := out.Len(); got != HeaderSize+SegHeaderSize+len(entries)*EntrySize {
		t.Fatalf("re-encoded size = %d, want current-format size %d", got, HeaderSize+SegHeaderSize+len(entries)*EntrySize)
	}
	if magic := binary.LittleEndian.Uint64(out.Bytes()); magic != Magic {
		t.Fatalf("re-encoded word 0 = %#x, want v2 magic", magic)
	}

	v2, err := Read(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("Read re-encoded: %v", err)
	}
	if v2.SourceVersion() != Version {
		t.Fatalf("re-encoded SourceVersion = %d, want %d", v2.SourceVersion(), Version)
	}
	if !reflect.DeepEqual(v2.Entries(), entries) {
		t.Fatalf("entries after v1→v2 round trip = %+v, want %+v", v2.Entries(), entries)
	}
	if v2.PID() != v1.PID() || v2.LoadCounter() != v1.LoadCounter() ||
		v2.ProfilerAddr() != v1.ProfilerAddr() || v2.Flags() != v1.Flags() {
		t.Fatal("header state changed across the v1→v2 round trip")
	}
}

// TestReadV1BadVersion: a stream with the magic in the v1 position but an
// unknown version must be rejected, not misparsed.
func TestReadV1BadVersion(t *testing.T) {
	raw := encodeV1(0, 0, 0, 0, nil)
	binary.LittleEndian.PutUint64(raw[v1WordVersion*8:], 3)
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

// TestReadV1Truncated: a v1 header promising more entries than the stream
// carries must fail cleanly.
func TestReadV1Truncated(t *testing.T) {
	raw := encodeV1(0, 0, 0, 0, []Entry{{Kind: KindCall, Counter: 1, Addr: 2, ThreadID: 3}})
	if _, err := Read(bytes.NewReader(raw[:len(raw)-8])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}
