package shmlog

import (
	"bytes"
	"testing"

	"teeperf/internal/faultinject"
)

// tornSeeds builds fixtures the fault injector produces in practice: a
// valid stream torn mid-entry, torn mid-header, and bit-flipped in the
// header and entry regions. Seeding these steers the fuzzer straight at
// the salvage paths instead of making it rediscover the format.
func tornSeeds(f *testing.F, valid []byte) [][]byte {
	f.Helper()
	inj := faultinject.New(1)
	return [][]byte{
		faultinject.Truncate(valid, -5),                 // torn mid-entry
		faultinject.Truncate(valid, HeaderSize/2),       // torn mid-header
		faultinject.Truncate(valid, HeaderSize+1),       // one byte into the entry region
		inj.FlipBits(valid, 0, HeaderSize, 16),          // bit rot in the header
		inj.FlipBits(valid, HeaderSize, len(valid), 16), // bit rot in the entries
	}
}

// FuzzRead exercises the binary log decoder with arbitrary input. The
// decoder must never panic and, when it accepts input, the decoded log
// must be internally consistent.
func FuzzRead(f *testing.F) {
	// Seed with a valid log.
	l, err := New(4, WithPID(9))
	if err != nil {
		f.Fatal(err)
	}
	_ = l.Append(Entry{Kind: KindCall, Counter: 1, Addr: 2, ThreadID: 3})
	_ = l.Append(Entry{Kind: KindReturn, Counter: 4, Addr: 2, ThreadID: 3})
	var valid bytes.Buffer
	if _, err := l.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize))
	for _, seed := range tornSeeds(f, valid.Bytes()) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if log.Len() > log.Capacity() {
			t.Fatalf("len %d > capacity %d", log.Len(), log.Capacity())
		}
		for i := 0; i < log.Len(); i++ {
			e, err := log.Entry(i)
			if err != nil {
				t.Fatalf("entry %d unreadable: %v", i, err)
			}
			if e.Kind != KindCall && e.Kind != KindReturn {
				t.Fatalf("entry %d: impossible kind %d", i, e.Kind)
			}
		}
		// Accepted logs must round-trip.
		var out bytes.Buffer
		if _, err := log.WriteTo(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Len() != log.Len() {
			t.Fatalf("round trip changed length: %d -> %d", log.Len(), again.Len())
		}
	})
}

// FuzzReadSharded steers the fuzzer at the v3 multi-segment decode path:
// seeds are genuinely sharded streams (several segments, interleaved
// counters) plus torn/bit-rotted variants, and accepted inputs must keep
// the sharded invariants — per-thread counter order after the merge, and a
// stable round trip through the current writer.
func FuzzReadSharded(f *testing.F) {
	l, err := New(32, WithShards(4), WithPID(9))
	if err != nil {
		f.Fatal(err)
	}
	// Threads 1..4 hash onto distinct segments; interleaved global
	// counters force the read-time merge to actually reorder.
	for k := 0; k < 5; k++ {
		for tid := uint64(1); tid <= 4; tid++ {
			_ = l.Append(Entry{Kind: KindCall, Counter: uint64(k)*7 + tid, Addr: 0x40 + tid, ThreadID: tid})
		}
	}
	var valid bytes.Buffer
	if _, err := l.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:HeaderSize+SegHeaderSize]) // first segment header only
	for _, seed := range tornSeeds(f, valid.Bytes()) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if log.Len() > log.Capacity() {
			t.Fatalf("len %d > capacity %d", log.Len(), log.Capacity())
		}
		last := make(map[uint64]uint64)
		for i := 0; i < log.Len(); i++ {
			e, err := log.Entry(i)
			if err != nil {
				t.Fatalf("entry %d unreadable: %v", i, err)
			}
			if e.ThreadID == 0 || e.ThreadID == TombstoneTID {
				continue
			}
			// The merge may not break per-thread slot order (counters
			// within one thread were committed in increasing slot order
			// only when the writer made them monotone, which arbitrary
			// fuzz input does not guarantee — so only the structural
			// invariants are asserted here, not counter monotonicity).
			last[e.ThreadID] = e.Counter
		}
		var out bytes.Buffer
		if _, err := log.WriteTo(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Len() != log.Len() {
			t.Fatalf("round trip changed length: %d -> %d", log.Len(), again.Len())
		}
		// A second round trip must be byte-stable: the first decode
		// normalized the stream, so encode(decode(x)) is a fixpoint.
		var out2 bytes.Buffer
		if _, err := again.WriteTo(&out2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("normalized encoding is not a fixpoint")
		}
	})
}

// FuzzReadLenient exercises the salvage decoder: it must never panic and
// never error on in-memory input, the report must be self-consistent, and
// whatever it salvages must survive a strict re-read.
func FuzzReadLenient(f *testing.F) {
	l, err := New(4, WithPID(9))
	if err != nil {
		f.Fatal(err)
	}
	_ = l.Append(Entry{Kind: KindCall, Counter: 1, Addr: 2, ThreadID: 3})
	_ = l.Append(Entry{Kind: KindReturn, Counter: 4, Addr: 2, ThreadID: 3})
	var valid bytes.Buffer
	if _, err := l.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	for _, seed := range tornSeeds(f, valid.Bytes()) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		log, rep, err := ReadLenient(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ReadLenient must not fail on in-memory input: %v", err)
		}
		if log == nil || rep == nil {
			t.Fatal("nil log or report")
		}
		if rep.EntriesSalvaged != log.Len() {
			t.Fatalf("report says %d salvaged, log holds %d", rep.EntriesSalvaged, log.Len())
		}
		if rep.EntriesSalvaged+rep.EntriesDropped != rep.EntriesPresent {
			t.Fatalf("salvaged %d + dropped %d != present %d",
				rep.EntriesSalvaged, rep.EntriesDropped, rep.EntriesPresent)
		}
		if rep.BytesRead != int64(len(data)) {
			t.Fatalf("BytesRead %d != input %d", rep.BytesRead, len(data))
		}
		// Whatever was salvaged must be strictly loadable.
		var out bytes.Buffer
		if _, err := log.WriteTo(&out); err != nil {
			t.Fatalf("re-encode salvaged log: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("strict Read of salvaged log: %v", err)
		}
		if again.Len() != log.Len() {
			t.Fatalf("salvage round trip changed length: %d -> %d", log.Len(), again.Len())
		}
	})
}
