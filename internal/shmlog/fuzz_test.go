package shmlog

import (
	"bytes"
	"testing"
)

// FuzzRead exercises the binary log decoder with arbitrary input. The
// decoder must never panic and, when it accepts input, the decoded log
// must be internally consistent.
func FuzzRead(f *testing.F) {
	// Seed with a valid log.
	l, err := New(4, WithPID(9))
	if err != nil {
		f.Fatal(err)
	}
	_ = l.Append(Entry{Kind: KindCall, Counter: 1, Addr: 2, ThreadID: 3})
	_ = l.Append(Entry{Kind: KindReturn, Counter: 4, Addr: 2, ThreadID: 3})
	var valid bytes.Buffer
	if _, err := l.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, HeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if log.Len() > log.Capacity() {
			t.Fatalf("len %d > capacity %d", log.Len(), log.Capacity())
		}
		for i := 0; i < log.Len(); i++ {
			e, err := log.Entry(i)
			if err != nil {
				t.Fatalf("entry %d unreadable: %v", i, err)
			}
			if e.Kind != KindCall && e.Kind != KindReturn {
				t.Fatalf("entry %d: impossible kind %d", i, e.Kind)
			}
		}
		// Accepted logs must round-trip.
		var out bytes.Buffer
		if _, err := log.WriteTo(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Len() != log.Len() {
			t.Fatalf("round trip changed length: %d -> %d", log.Len(), again.Len())
		}
	})
}
