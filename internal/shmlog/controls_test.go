package shmlog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestControlsDenies(t *testing.T) {
	cases := []struct {
		name      string
		c         Controls
		tid, addr uint64
		want      bool
	}{
		{"zero allows", Controls{}, 1, 0x100, false},
		{"thread bit 0 denies tid 1", Controls{ThreadMask: 1 << 0}, 1, 0x100, true},
		{"thread bit 0 allows tid 2", Controls{ThreadMask: 1 << 0}, 2, 0x100, false},
		{"tid 65 wraps onto bit 0", Controls{ThreadMask: 1 << 0}, 65, 0x100, true},
		{"all-ones denies any thread", Controls{ThreadMask: ^uint64(0)}, 7, 0x100, true},
		{"addr inside range", Controls{AddrLo: 0x200, AddrHi: 0x300}, 1, 0x240, true},
		{"addr at lo", Controls{AddrLo: 0x200, AddrHi: 0x300}, 1, 0x200, true},
		{"addr at hi is exclusive", Controls{AddrLo: 0x200, AddrHi: 0x300}, 1, 0x300, false},
		{"empty range inactive", Controls{AddrLo: 0x200, AddrHi: 0x200}, 1, 0x200, false},
	}
	for _, tc := range cases {
		if got := tc.c.Denies(tc.tid, tc.addr); got != tc.want {
			t.Errorf("%s: Denies(%d, %#x) = %v, want %v", tc.name, tc.tid, tc.addr, got, tc.want)
		}
	}
}

// TestControlSettersBumpGen: every control setter must publish through the
// generation word, and the snapshot read back must carry the new values.
func TestControlSettersBumpGen(t *testing.T) {
	log, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	gen := log.CtlGen()

	log.SetSamplePeriod(8)
	if g := log.CtlGen(); g != gen+1 {
		t.Fatalf("SetSamplePeriod bumped gen to %d, want %d", g, gen+1)
	}
	log.SetThreadMask(0b10)
	if g := log.CtlGen(); g != gen+2 {
		t.Fatalf("SetThreadMask bumped gen to %d, want %d", g, gen+2)
	}
	log.SetAddrMask(0x1000, 0x2000)
	if g := log.CtlGen(); g != gen+3 {
		t.Fatalf("SetAddrMask bumped gen to %d, want %d", g, gen+3)
	}

	c := log.Controls()
	if c.Gen != gen+3 || c.Period != 8 || c.ThreadMask != 0b10 || c.AddrLo != 0x1000 || c.AddrHi != 0x2000 {
		t.Fatalf("snapshot = %+v", c)
	}
	if log.Flags()&FlagSampled == 0 {
		t.Error("period > 1 did not set FlagSampled")
	}

	// Periods of 0 and 1 restore record-everything but never clear the
	// sticky sampled flag: entries recorded while throttled stay scaled.
	log.SetSamplePeriod(1)
	if log.Flags()&FlagSampled == 0 {
		t.Error("FlagSampled must be sticky across SetSamplePeriod(1)")
	}
}

func TestCopyControls(t *testing.T) {
	src, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	src.SetSamplePeriod(16)
	src.SetThreadMask(0b101)
	src.SetAddrMask(0x10, 0x20)

	dst, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	gen := dst.CtlGen()
	dst.CopyControls(src)
	if g := dst.CtlGen(); g != gen+1 {
		t.Fatalf("CopyControls bumped gen %d times, want 1", g-gen)
	}
	c := dst.Controls()
	if c.Period != 16 || c.ThreadMask != 0b101 || c.AddrLo != 0x10 || c.AddrHi != 0x20 {
		t.Fatalf("copied snapshot = %+v", c)
	}
	if dst.Flags()&FlagSampled == 0 {
		t.Error("copying a period > 1 did not set FlagSampled")
	}
}

// TestSamplePeriodPersists: the sampling period and the sampled flag are
// part of the profile's meaning (analyzers scale by them), so they round-trip
// through the v3 encoding. The live controls — masks, generation, masked
// counter, batch mirror — are runtime state and decode to zero.
func TestSamplePeriodPersists(t *testing.T) {
	log, err := New(16, WithSamplePeriod(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(Entry{Kind: KindCall, Addr: 0x1, ThreadID: 1}); err != nil {
		t.Fatal(err)
	}
	log.SetThreadMask(0b1)
	log.SetAddrMask(0x100, 0x200)
	log.NoteMasked(9)
	log.SetBatchSize(32)

	var buf bytes.Buffer
	if _, err := log.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p := got.SamplePeriod(); p != 4 {
		t.Fatalf("decoded sample period %d, want 4", p)
	}
	if got.Flags()&FlagSampled == 0 {
		t.Error("decoded log lost FlagSampled")
	}
	if m := got.ThreadMask(); m != 0 {
		t.Errorf("thread mask persisted as %#x, want 0", m)
	}
	if lo, hi := got.AddrMask(); lo != 0 || hi != 0 {
		t.Errorf("addr mask persisted as [%#x, %#x), want zero", lo, hi)
	}
	if g := got.CtlGen(); g != 0 {
		t.Errorf("control generation persisted as %d, want 0", g)
	}
	if m := got.Masked(); m != 0 {
		t.Errorf("masked counter persisted as %d, want 0", m)
	}
	if b := got.BatchSize(); b != 0 {
		t.Errorf("batch mirror persisted as %d, want 0", b)
	}
}

// TestResetKeepsControls: Reset clears entries and drop counters but leaves
// the control plane alone — a throttle pushed by an operator must survive a
// log reset.
func TestResetKeepsControls(t *testing.T) {
	log, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	log.SetSamplePeriod(8)
	log.SetThreadMask(0b11)
	if err := log.Append(Entry{Kind: KindCall, Addr: 0x1, ThreadID: 1}); err != nil {
		t.Fatal(err)
	}
	log.Reset()
	if log.Len() != 0 {
		t.Fatalf("reset left %d entries", log.Len())
	}
	c := log.Controls()
	if c.Period != 8 || c.ThreadMask != 0b11 {
		t.Fatalf("reset dropped controls: %+v", c)
	}
}

// TestControlFile: the writable control mapping lets an external process
// (the fleet agent) push controls into a live header, without bumping the
// attach generation the way OpenFile (an adopting attach) does.
func TestControlFile(t *testing.T) {
	if !MmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	path := filepath.Join(t.TempDir(), "ctl.shm")
	log, err := CreateFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	gen := log.AttachGen()

	ctl, err := ControlFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if g := log.AttachGen(); g != gen {
		t.Fatalf("ControlFile bumped attach gen %d -> %d", gen, g)
	}
	ctl.SetSamplePeriod(8)
	ctl.SetThreadMask(0b100)

	obs, err := ObserveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	c := obs.Controls()
	if c.Period != 8 || c.ThreadMask != 0b100 {
		t.Fatalf("pushed controls not visible through observer: %+v", c)
	}
	if c.Gen != log.CtlGen() {
		t.Fatalf("observer gen %d != creator gen %d", c.Gen, log.CtlGen())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
