package shmlog

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// encodeV2 renders entries in the version-2 persisted format: the 32-word
// cache-line-padded header followed by one flat 3-word-entry region. The
// current writer only emits version 3 (sharded segments), so this is the
// reference encoder the decode-compatibility tests pin the retired layout
// against — bundles persisted by v2 recorders must keep loading verbatim.
func encodeV2(flags, pid, profilerAddr, counter uint64, entries []Entry) []byte {
	var buf bytes.Buffer
	put := func(v uint64) {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], v)
		buf.Write(w[:])
	}
	header := [HeaderWords]uint64{
		wordMagic:        Magic,
		wordVersion:      VersionV2,
		wordPID:          pid,
		wordCapacity:     uint64(len(entries)),
		wordProfilerAddr: profilerAddr,
		wordFlags:        flags,
		wordTail:         uint64(len(entries)),
		wordCounter:      counter,
		// wordShards (7) stays zero: reserved padding in v2.
	}
	for _, w := range header {
		put(w)
	}
	for _, e := range entries {
		word0 := e.Counter & counterMask
		if e.Kind == KindReturn {
			word0 |= kindBit
		}
		put(word0)
		put(e.Addr)
		put(e.ThreadID)
	}
	return buf.Bytes()
}

// TestReadV2Golden pins the v2 byte layout and its decode-only status: a
// hand-built v2 stream must load with the entries in slot order (no
// counter merge — v2 has one tail), survive a re-encode into the current
// format, and report its source version faithfully.
func TestReadV2Golden(t *testing.T) {
	entries := []Entry{
		// Deliberately counter-disordered: a flat v2 body is slot-ordered,
		// and the decoder must NOT re-sort it (only multi-segment v3
		// bodies merge by counter).
		{Kind: KindCall, Counter: 300, Addr: 0x400010, ThreadID: 2},
		{Kind: KindCall, Counter: 100, Addr: 0x400020, ThreadID: 1},
		{Kind: KindReturn, Counter: 200, Addr: 0x400020, ThreadID: 1},
	}
	raw := encodeV2(EventCall|EventReturn, 42, 0x400000, 999, entries)

	if got, want := len(raw), HeaderSize+len(entries)*EntrySize; got != want {
		t.Fatalf("fixture size = %d, want %d", got, want)
	}
	golden := map[int]uint64{
		wordMagic:        Magic,
		wordVersion:      2,
		wordPID:          42,
		wordCapacity:     3,
		wordProfilerAddr: 0x400000,
		wordShards:       0,
		wordFlags:        EventCall | EventReturn,
		wordTail:         3,
		wordCounter:      999,
	}
	for i, want := range golden {
		if got := binary.LittleEndian.Uint64(raw[i*8:]); got != want {
			t.Fatalf("v2 header word %d = %#x, want %#x", i, got, want)
		}
	}

	l, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Read v2: %v", err)
	}
	if l.SourceVersion() != VersionV2 {
		t.Fatalf("SourceVersion = %d, want %d", l.SourceVersion(), VersionV2)
	}
	if l.Version() != Version {
		t.Fatalf("decoded in-memory version = %d, want normalized %d", l.Version(), Version)
	}
	if l.PID() != 42 || l.ProfilerAddr() != 0x400000 || l.LoadCounter() != 999 {
		t.Fatalf("metadata lost: pid %d addr %#x counter %d", l.PID(), l.ProfilerAddr(), l.LoadCounter())
	}
	if got := l.Entries(); !reflect.DeepEqual(got, entries) {
		t.Fatalf("decoded entries reordered or damaged:\n%+v\nwant\n%+v", got, entries)
	}

	// Decode-only: re-persisting writes the current format, which must
	// round-trip with identical entries and remember the v2 origin is gone.
	var out bytes.Buffer
	if _, err := l.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(out.Bytes()[wordVersion*8:]); got != Version {
		t.Fatalf("re-encode version = %d, want %d", got, Version)
	}
	again, err := Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.Entries(); !reflect.DeepEqual(got, entries) {
		t.Fatalf("v2 -> v3 round trip changed entries:\n%+v\nwant\n%+v", got, entries)
	}

	// The lenient decoder agrees with the strict one on clean v2 input.
	sal, rep, err := ReadLenient(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("lenient read of clean v2 flagged corruption: %+v", rep)
	}
	if got := sal.Entries(); !reflect.DeepEqual(got, entries) {
		t.Fatalf("lenient v2 decode diverges:\n%+v\nwant\n%+v", got, entries)
	}
}
