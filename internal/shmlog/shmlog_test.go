package shmlog

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name     string
		capacity int
		opts     []Option
		wantErr  bool
	}{
		{name: "zero capacity", capacity: 0, wantErr: true},
		{name: "negative capacity", capacity: -5, wantErr: true},
		{name: "one entry", capacity: 1},
		{name: "mutex mode", capacity: 4, opts: []Option{WithSync(SyncMutex)}},
		{name: "bad sync mode", capacity: 4, opts: []Option{WithSync(Sync(99))}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.capacity, tt.opts...)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%d) error = %v, wantErr %v", tt.capacity, err, tt.wantErr)
			}
		})
	}
}

func TestHeaderFields(t *testing.T) {
	l, err := New(16, WithPID(4242), WithProfilerAddr(0x401000))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.PID(); got != 4242 {
		t.Errorf("PID() = %d, want 4242", got)
	}
	if got := l.ProfilerAddr(); got != 0x401000 {
		t.Errorf("ProfilerAddr() = %#x, want 0x401000", got)
	}
	if got := l.Version(); got != Version {
		t.Errorf("Version() = %d, want %d", got, Version)
	}
	if got := l.Capacity(); got != 16 {
		t.Errorf("Capacity() = %d, want 16", got)
	}
	if !l.Active() {
		t.Error("new log should be active by default")
	}
}

func TestAppendAndDecode(t *testing.T) {
	l, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	in := []Entry{
		{Kind: KindCall, Counter: 100, Addr: 0x400010, ThreadID: 1},
		{Kind: KindReturn, Counter: 250, Addr: 0x400010, ThreadID: 1},
		{Kind: KindCall, Counter: 300, Addr: 0x400020, ThreadID: 2},
	}
	for i, e := range in {
		if err := l.Append(e); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if got := l.Len(); got != len(in) {
		t.Fatalf("Len() = %d, want %d", got, len(in))
	}
	for i, want := range in {
		got, err := l.Entry(i)
		if err != nil {
			t.Fatalf("Entry(%d): %v", i, err)
		}
		if got != want {
			t.Errorf("Entry(%d) = %+v, want %+v", i, got, want)
		}
	}
}

func TestAppendKindEncoding(t *testing.T) {
	// Counter values near the 63-bit boundary must round-trip with the
	// kind bit intact.
	l, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	huge := counterMask // maximum representable counter
	if err := l.Append(Entry{Kind: KindReturn, Counter: huge, Addr: 1, ThreadID: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := l.Entry(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindReturn {
		t.Errorf("Kind = %v, want return", got.Kind)
	}
	if got.Counter != huge {
		t.Errorf("Counter = %d, want %d", got.Counter, huge)
	}
}

func TestAppendTruncatesCounterTo63Bits(t *testing.T) {
	l, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Kind: KindCall, Counter: 1 << 63, Addr: 1, ThreadID: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := l.Entry(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counter != 0 {
		t.Errorf("Counter = %d, want 0 (bit 63 must be masked)", got.Counter)
	}
	if got.Kind != KindCall {
		t.Errorf("Kind = %v, want call", got.Kind)
	}
}

func TestAppendFull(t *testing.T) {
	l, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	e := Entry{Kind: KindCall, Counter: 1, Addr: 1, ThreadID: 1}
	if err := l.Append(e); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(e); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(e); !errors.Is(err, ErrFull) {
			t.Fatalf("Append on full log: err = %v, want ErrFull", err)
		}
	}
	if got := l.Dropped(); got != 3 {
		t.Errorf("Dropped() = %d, want 3", got)
	}
	if got := l.Len(); got != 2 {
		t.Errorf("Len() = %d, want 2", got)
	}
}

func TestAppendInactive(t *testing.T) {
	l, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	l.SetActive(false)
	if err := l.Append(Entry{Kind: KindCall, Counter: 1, Addr: 1, ThreadID: 1}); !errors.Is(err, ErrInactive) {
		t.Fatalf("err = %v, want ErrInactive", err)
	}
	l.SetActive(true)
	if err := l.Append(Entry{Kind: KindCall, Counter: 1, Addr: 1, ThreadID: 1}); err != nil {
		t.Fatalf("after re-activation: %v", err)
	}
}

func TestEventMaskFiltering(t *testing.T) {
	l, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	l.ClearFlag(EventReturn)
	if err := l.Append(Entry{Kind: KindReturn, Counter: 1, Addr: 1, ThreadID: 1}); !errors.Is(err, ErrFiltered) {
		t.Fatalf("return append: err = %v, want ErrFiltered", err)
	}
	if err := l.Append(Entry{Kind: KindCall, Counter: 1, Addr: 1, ThreadID: 1}); err != nil {
		t.Fatalf("call append: %v", err)
	}
	l.ClearFlag(EventCall)
	if err := l.Append(Entry{Kind: KindCall, Counter: 1, Addr: 1, ThreadID: 1}); !errors.Is(err, ErrFiltered) {
		t.Fatalf("masked call append: err = %v, want ErrFiltered", err)
	}
	if got := l.Len(); got != 1 {
		t.Errorf("Len() = %d, want 1", got)
	}
}

func TestAppendInvalidKind(t *testing.T) {
	l, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Kind: Kind(7), Counter: 1}); err == nil {
		t.Fatal("Append with invalid kind should fail")
	}
}

func TestEntryRange(t *testing.T) {
	l, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Entry(0); !errors.Is(err, ErrRange) {
		t.Fatalf("Entry(0) on empty log: err = %v, want ErrRange", err)
	}
	if _, err := l.Entry(-1); !errors.Is(err, ErrRange) {
		t.Fatalf("Entry(-1): err = %v, want ErrRange", err)
	}
}

func TestCounterWord(t *testing.T) {
	l, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LoadCounter(); got != 0 {
		t.Fatalf("LoadCounter() = %d, want 0", got)
	}
	if got := l.AddCounter(5); got != 5 {
		t.Fatalf("AddCounter(5) = %d, want 5", got)
	}
	if got := l.AddCounter(1); got != 6 {
		t.Fatalf("AddCounter(1) = %d, want 6", got)
	}
	if got := l.LoadCounter(); got != 6 {
		t.Fatalf("LoadCounter() = %d, want 6", got)
	}
}

func TestReset(t *testing.T) {
	l, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	e := Entry{Kind: KindCall, Counter: 1, Addr: 1, ThreadID: 1}
	if err := l.Append(e); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(e); !errors.Is(err, ErrFull) {
		t.Fatal("expected full")
	}
	l.AddCounter(10)
	l.Reset()
	if l.Len() != 0 || l.Dropped() != 0 || l.LoadCounter() != 0 {
		t.Errorf("Reset left state: len=%d dropped=%d counter=%d", l.Len(), l.Dropped(), l.LoadCounter())
	}
	if err := l.Append(e); err != nil {
		t.Fatalf("Append after reset: %v", err)
	}
}

func TestConcurrentAppendLockFree(t *testing.T) {
	testConcurrentAppend(t, SyncAtomic)
}

func TestConcurrentAppendMutex(t *testing.T) {
	testConcurrentAppend(t, SyncMutex)
}

func testConcurrentAppend(t *testing.T, mode Sync) {
	t.Helper()
	const (
		threads       = 8
		perThread     = 2000
		totalCapacity = threads * perThread
	)
	l, err := New(totalCapacity, WithSync(mode))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for tid := 1; tid <= threads; tid++ {
		wg.Add(1)
		go func(tid uint64) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				kind := KindCall
				if i%2 == 1 {
					kind = KindReturn
				}
				e := Entry{Kind: kind, Counter: uint64(i), Addr: tid*1000 + uint64(i), ThreadID: tid}
				if err := l.Append(e); err != nil {
					t.Errorf("thread %d append %d: %v", tid, i, err)
					return
				}
			}
		}(uint64(tid))
	}
	wg.Wait()

	if got := l.Len(); got != totalCapacity {
		t.Fatalf("Len() = %d, want %d", got, totalCapacity)
	}
	// Invariant: every slot written exactly once, and per-thread order is
	// preserved (counter values strictly increasing per thread).
	lastCounter := make(map[uint64]int64, threads)
	seen := make(map[uint64]int, threads)
	for i := 0; i < l.Len(); i++ {
		e, err := l.Entry(i)
		if err != nil {
			t.Fatal(err)
		}
		if e.ThreadID < 1 || e.ThreadID > threads {
			t.Fatalf("entry %d: unexpected thread %d", i, e.ThreadID)
		}
		if last, ok := lastCounter[e.ThreadID]; ok && int64(e.Counter) <= last {
			t.Fatalf("entry %d: thread %d counter %d not increasing (last %d)",
				i, e.ThreadID, e.Counter, last)
		}
		lastCounter[e.ThreadID] = int64(e.Counter)
		seen[e.ThreadID]++
	}
	for tid, n := range seen {
		if n != perThread {
			t.Errorf("thread %d wrote %d entries, want %d", tid, n, perThread)
		}
	}
}

func TestConcurrentAppendOverflowAccounting(t *testing.T) {
	const capacity = 100
	l, err := New(capacity)
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg   sync.WaitGroup
		full atomic64
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(tid uint64) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				err := l.Append(Entry{Kind: KindCall, Counter: uint64(i), ThreadID: tid})
				if errors.Is(err, ErrFull) {
					full.add(1)
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	if got := l.Len(); got != capacity {
		t.Errorf("Len() = %d, want %d", got, capacity)
	}
	if got, want := l.Dropped(), uint64(400-capacity); got != want {
		t.Errorf("Dropped() = %d, want %d", got, want)
	}
	if got := full.load(); got != 400-capacity {
		t.Errorf("ErrFull count = %d, want %d", got, 400-capacity)
	}
}

func TestRoundTripPersistence(t *testing.T) {
	l, err := New(64, WithPID(7), WithProfilerAddr(0xdead0))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var want []Entry
	for i := 0; i < 40; i++ {
		kind := KindCall
		if rng.Intn(2) == 1 {
			kind = KindReturn
		}
		e := Entry{
			Kind:     kind,
			Counter:  rng.Uint64() & counterMask,
			Addr:     rng.Uint64(),
			ThreadID: uint64(rng.Intn(8)),
		}
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
		want = append(want, e)
	}
	l.AddCounter(12345)

	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wantSize := int64(HeaderSize + SegHeaderSize + 40*EntrySize)
	if int64(buf.Len()) != wantSize {
		t.Fatalf("persisted size = %d, want %d", buf.Len(), wantSize)
	}

	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PID() != 7 || got.ProfilerAddr() != 0xdead0 {
		t.Errorf("header mismatch: pid=%d addr=%#x", got.PID(), got.ProfilerAddr())
	}
	if got.LoadCounter() != 12345 {
		t.Errorf("counter = %d, want 12345", got.LoadCounter())
	}
	if got.Active() {
		t.Error("decoded log must be inactive")
	}
	entries := got.Entries()
	if len(entries) != len(want) {
		t.Fatalf("decoded %d entries, want %d", len(entries), len(want))
	}
	for i := range want {
		if entries[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, entries[i], want[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		buf := make([]byte, HeaderSize)
		if _, err := Read(bytes.NewReader(buf)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		l, err := New(1, WithVersion(99))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(&buf); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		l, err := New(8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := l.Append(Entry{Kind: KindCall, Counter: uint64(i), ThreadID: 1}); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		cut := buf.Bytes()[:buf.Len()-5]
		if _, err := Read(bytes.NewReader(cut)); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
	})
}

func TestPersistenceRoundTripProperty(t *testing.T) {
	// Property: any sequence of valid entries survives a
	// serialize/deserialize round trip bit-exactly.
	f := func(raw []struct {
		Ret     bool
		Counter uint64
		Addr    uint64
		Tid     uint16
	}) bool {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		l, err := New(len(raw) + 1)
		if err != nil {
			return false
		}
		want := make([]Entry, 0, len(raw))
		for _, r := range raw {
			kind := KindCall
			if r.Ret {
				kind = KindReturn
			}
			e := Entry{Kind: kind, Counter: r.Counter & counterMask, Addr: r.Addr, ThreadID: uint64(r.Tid)}
			if err := l.Append(e); err != nil {
				return false
			}
			want = append(want, e)
		}
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		entries := got.Entries()
		if len(entries) != len(want) {
			return false
		}
		for i := range want {
			if entries[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindCall, "call"},
		{KindReturn, "return"},
		{Kind(9), "kind(9)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestWriteToFailure(t *testing.T) {
	l, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Kind: KindCall, Counter: 1, ThreadID: 1}); err != nil {
		t.Fatal(err)
	}
	w := &limitedWriter{limit: 16}
	if _, err := l.WriteTo(w); err == nil {
		t.Fatal("WriteTo with failing writer should error")
	}
}

// limitedWriter fails after limit bytes, for failure-injection tests.
type limitedWriter struct {
	n, limit int
}

func (w *limitedWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		return 0, io.ErrShortWrite
	}
	w.n += len(p)
	return len(p), nil
}

// atomic64 is a tiny helper to avoid importing sync/atomic in tests twice.
type atomic64 struct {
	mu sync.Mutex
	v  int
}

func (a *atomic64) add(d int) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
