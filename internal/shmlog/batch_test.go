package shmlog

import (
	"sync"
	"testing"
)

// TestReserveBasics covers the block-reservation contract: contiguous
// non-overlapping blocks, clamping at capacity, and zero-count once full.
func TestReserveBasics(t *testing.T) {
	l, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	start, n := l.Reserve(4)
	if start != 0 || n != 4 {
		t.Fatalf("first Reserve = (%d, %d), want (0, 4)", start, n)
	}
	start, n = l.Reserve(4)
	if start != 4 || n != 4 {
		t.Fatalf("second Reserve = (%d, %d), want (4, 4)", start, n)
	}
	start, n = l.Reserve(4)
	if start != 8 || n != 2 {
		t.Fatalf("clamped Reserve = (%d, %d), want (8, 2)", start, n)
	}
	if _, n = l.Reserve(4); n != 0 {
		t.Fatalf("Reserve on full log returned %d usable slots, want 0", n)
	}
	if _, n = l.Reserve(0); n != 0 {
		t.Fatal("Reserve(0) must return no slots")
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10 (clamped to capacity)", l.Len())
	}
}

// TestCursorBatchedHolesScripted walks a cursor through a hand-scripted
// interleaving of two batched writers: out-of-order commits become holes
// that are revisited and emitted exactly once, releases are dismissed, and
// hole backfills are emitted before newer frontier entries (per-thread
// order).
func TestCursorBatchedHolesScripted(t *testing.T) {
	l, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	// Writer 1 owns slots 0..3, writer 2 owns 4..7.
	s1, n1 := l.Reserve(4)
	s2, n2 := l.Reserve(4)
	if s1 != 0 || n1 != 4 || s2 != 4 || n2 != 4 {
		t.Fatalf("reservations = (%d,%d) (%d,%d)", s1, n1, s2, n2)
	}
	at := func(tid, seq uint64) Entry {
		return Entry{Kind: KindCall, Counter: seq, Addr: tid*100 + seq, ThreadID: tid}
	}

	// Writer 2 commits first: the cursor must not block on writer 1's
	// still-empty block.
	l.Commit(4, at(2, 1))
	l.Commit(5, at(2, 2))
	c := l.Cursor()
	got := c.Next(nil)
	if len(got) != 2 || got[0] != at(2, 1) || got[1] != at(2, 2) {
		t.Fatalf("first drain = %+v, want writer 2's two entries", got)
	}
	if c.Pending() != 6 || c.Pos() != 8 {
		t.Fatalf("Pending = %d, Pos = %d; want 6 tracked holes, frontier 8", c.Pending(), c.Pos())
	}

	// Writer 1 backfills two of its slots; they must come out before
	// anything newer, and only once.
	l.Commit(0, at(1, 1))
	l.Commit(1, at(1, 2))
	l.Commit(6, at(2, 3))
	got = c.Next(nil)
	want := []Entry{at(1, 1), at(1, 2), at(2, 3)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("second drain[%d] = %+v, want %+v (holes before frontier)", i, got[i], want[i])
		}
	}
	if len(got) != 3 {
		t.Fatalf("second drain returned %d entries, want 3", len(got))
	}

	// Both writers flush: remaining slots tombstone and the holes resolve
	// to nothing.
	l.Release(2)
	l.Release(3)
	l.Release(7)
	if got = c.Next(nil); len(got) != 0 {
		t.Fatalf("drain after release = %+v, want nothing", got)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after all slots resolved, want 0", c.Pending())
	}

	// A fresh cursor over the settled log sees the same five entries.
	fresh := l.Cursor().Next(nil)
	if len(fresh) != 5 {
		t.Fatalf("fresh cursor saw %d entries, want 5", len(fresh))
	}
}

// TestCursorConcurrentBatchedWriters tails a log while several goroutines
// write through Reserve/Commit blocks of varying batch size, then checks
// every committed entry was observed exactly once and in per-thread order.
func TestCursorConcurrentBatchedWriters(t *testing.T) {
	const (
		writers = 4
		perner  = 3000
		// Slack for the trailing slots each writer's final partly-used
		// block releases: they consume capacity without carrying events.
		capacity = writers*perner + 64
	)
	l, err := New(capacity)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(tid uint64) {
			defer wg.Done()
			batch := int(tid)*4 + 1 // 1, 5, 9, 13: exercise uneven tails
			var next, end uint64
			for i := 0; i < perner; i++ {
				if next == end {
					start, n := l.Reserve(batch)
					if n == 0 {
						t.Errorf("writer %d: log unexpectedly full", tid)
						return
					}
					next, end = start, start+uint64(n)
				}
				l.Commit(next, Entry{Kind: KindCall, Counter: uint64(i + 1), Addr: tid<<32 | uint64(i), ThreadID: tid})
				next++
			}
			for ; next < end; next++ {
				l.Release(next)
			}
		}(uint64(w + 1))
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var got []Entry
	cursor := l.Cursor()
	for {
		got = cursor.Next(got)
		select {
		case <-done:
			got = cursor.Next(got) // final drain picks up late holes
			if cursor.Pending() != 0 {
				t.Fatalf("cursor still tracks %d holes after all writers flushed", cursor.Pending())
			}
			if len(got) != writers*perner {
				t.Fatalf("observed %d entries, want %d", len(got), writers*perner)
			}
			lastSeq := make(map[uint64]uint64)
			for i, e := range got {
				if e.ThreadID < 1 || e.ThreadID > writers {
					t.Fatalf("entry %d: bad thread %d", i, e.ThreadID)
				}
				if e.Counter <= lastSeq[e.ThreadID] {
					t.Fatalf("thread %d out of order: seq %d after %d", e.ThreadID, e.Counter, lastSeq[e.ThreadID])
				}
				lastSeq[e.ThreadID] = e.Counter
			}
			for w := 1; w <= writers; w++ {
				if lastSeq[uint64(w)] != perner {
					t.Fatalf("thread %d: last seq %d, want %d", w, lastSeq[uint64(w)], perner)
				}
			}
			return
		default:
		}
	}
}

// TestEntriesDismissTombstones: released slots disappear from Entries but
// still count toward Len (they occupy reserved slots).
func TestEntriesDismissTombstones(t *testing.T) {
	l, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	start, n := l.Reserve(4)
	if start != 0 || n != 4 {
		t.Fatalf("Reserve = (%d, %d)", start, n)
	}
	l.Commit(0, Entry{Kind: KindCall, Counter: 1, Addr: 0xA, ThreadID: 3})
	l.Commit(1, Entry{Kind: KindReturn, Counter: 2, Addr: 0xA, ThreadID: 3})
	l.Release(2)
	l.Release(3)

	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	got := l.Entries()
	if len(got) != 2 || got[0].Addr != 0xA || got[1].Kind != KindReturn {
		t.Fatalf("Entries = %+v, want the 2 committed entries", got)
	}
	// The raw view still exposes the tombstone marker.
	e, err := l.Entry(2)
	if err != nil {
		t.Fatal(err)
	}
	if e.ThreadID != TombstoneTID {
		t.Fatalf("raw tombstone ThreadID = %#x, want TombstoneTID", e.ThreadID)
	}
}
