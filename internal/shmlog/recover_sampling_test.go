package shmlog

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// encodeSampled persists a committed sampled log (period in the header,
// FlagSampled set) and returns the raw bytes plus the entries it carries.
func encodeSampled(t *testing.T, n int, period uint64) ([]byte, []Entry) {
	t.Helper()
	l, err := New(n, WithPID(42), WithProfilerAddr(0x400000), WithSamplePeriod(period))
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		kind := KindCall
		if i%2 == 1 {
			kind = KindReturn
		}
		e := Entry{Kind: kind, Counter: uint64(100 + i), Addr: uint64(0x400010 + 16*(i/2)), ThreadID: 1}
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), entries
}

// TestReadLenientTornSampledLog: tearing a period-4 sampled log mid-entry
// must salvage the committed prefix AND carry the sampling metadata through
// the rebuild — FlagSampled and the period word are v3 vocabulary, not
// unknown-bit corruption, and without them the analyzer would silently
// underweight the salvaged profile by the period.
func TestReadLenientTornSampledLog(t *testing.T) {
	const n, period = 8, 4
	raw, want := encodeSampled(t, n, period)

	entriesStart := HeaderSize + SegHeaderSize
	cut := entriesStart + 5*EntrySize + 7 // mid-sixth-entry
	log, rep := readLenient(t, raw[:cut])

	if rep.Clean() {
		t.Fatal("torn stream reported clean")
	}
	if hasClass(rep, CorruptUnknownFlags) {
		t.Fatalf("sampling words misread as unknown flags: %v", rep.Corruption)
	}
	if rep.EntriesSalvaged != 5 {
		t.Fatalf("salvaged %d entries, want 5", rep.EntriesSalvaged)
	}
	if !sameEntries(log.Entries(), want[:5]) {
		t.Fatalf("salvaged entries = %+v, want prefix of %+v", log.Entries(), want[:5])
	}
	if p := log.SamplePeriod(); p != period {
		t.Fatalf("salvaged sample period = %d, want %d", p, period)
	}
	if log.Flags()&FlagSampled == 0 {
		t.Fatal("salvaged log lost FlagSampled")
	}

	// The salvaged log must re-encode into a strictly readable stream that
	// still carries the period.
	var buf bytes.Buffer
	if _, err := log.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := Read(&buf)
	if err != nil {
		t.Fatalf("strict re-read of salvage: %v", err)
	}
	if p := again.SamplePeriod(); p != period {
		t.Fatalf("re-encoded sample period = %d, want %d", p, period)
	}
}

// TestReadLenientV2NonzeroControlWords: version-2 headers reserve the words
// v3 turned into sampling/mask controls as zero padding. A v2 stream with
// garbage there is damaged — the entries still salvage, but the report says
// unknown-flag-bits and no phantom sampling period leaks into the rebuild.
func TestReadLenientV2NonzeroControlWords(t *testing.T) {
	entries := []Entry{
		{Kind: KindCall, Counter: 100, Addr: 0x400010, ThreadID: 1},
		{Kind: KindReturn, Counter: 200, Addr: 0x400010, ThreadID: 1},
	}
	raw := encodeV2(EventCall|EventReturn, 42, 0x400000, 999, entries)
	binary.LittleEndian.PutUint64(raw[wordSamplePeriod*8:], 5)

	log, rep := readLenient(t, raw)
	if !hasClass(rep, CorruptUnknownFlags) {
		t.Fatalf("nonzero v2 control word not reported: %v", rep.Corruption)
	}
	if rep.EntriesSalvaged != len(entries) {
		t.Fatalf("salvaged %d entries, want %d", rep.EntriesSalvaged, len(entries))
	}
	if !sameEntries(log.Entries(), entries) {
		t.Fatalf("salvaged entries = %+v, want %+v", log.Entries(), entries)
	}
	if p := log.SamplePeriod(); p != 0 {
		t.Fatalf("phantom sample period %d leaked from a v2 header", p)
	}
	if log.Flags()&FlagSampled != 0 {
		t.Fatal("FlagSampled invented for a v2 stream")
	}
}

// TestReadLenientV2SampledFlagRejected: FlagSampled's bit is not part of
// the v2 vocabulary — a v2 header carrying it is damaged and the bit must
// be stripped, not adopted.
func TestReadLenientV2SampledFlagRejected(t *testing.T) {
	entries := []Entry{
		{Kind: KindCall, Counter: 100, Addr: 0x400010, ThreadID: 1},
	}
	raw := encodeV2(EventCall|FlagSampled, 42, 0x400000, 999, entries)
	log, rep := readLenient(t, raw)
	if !hasClass(rep, CorruptUnknownFlags) {
		t.Fatalf("v2 FlagSampled not reported as unknown: %v", rep.Corruption)
	}
	if log.Flags()&FlagSampled != 0 {
		t.Fatal("v2 FlagSampled survived the salvage")
	}
	if rep.EntriesSalvaged != len(entries) {
		t.Fatalf("salvaged %d entries, want %d", rep.EntriesSalvaged, len(entries))
	}
}
