package shmlog

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
)

// TestSwapWriterContentAndOrder: arbitrary-length writes through the
// double buffer must reach the underlying writer byte-identical and in
// order, regardless of how they straddle buffer boundaries.
func TestSwapWriterContentAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	want := make([]byte, 10_000)
	rng.Read(want)

	var out bytes.Buffer
	sw := NewSwapWriter(&out, 256)
	for off := 0; off < len(want); {
		n := 1 + rng.Intn(700) // spans sub-buffer and multi-buffer writes
		if off+n > len(want) {
			n = len(want) - off
		}
		wrote, err := sw.Write(want[off : off+n])
		if err != nil || wrote != n {
			t.Fatalf("Write = %d, %v; want %d, nil", wrote, err, n)
		}
		off += n
	}
	if sw.Written() != int64(len(want)) {
		t.Fatalf("Written = %d, want %d", sw.Written(), len(want))
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("output diverges from input (%d vs %d bytes)", out.Len(), len(want))
	}
}

// TestSwapWriterFlushBarrier: Flush must not return before every byte
// written so far is visible in the underlying writer, and writing must
// keep working afterwards.
func TestSwapWriterFlushBarrier(t *testing.T) {
	var out bytes.Buffer
	sw := NewSwapWriter(&out, 1024) // nothing would auto-swap at this size
	payload := []byte("well before the buffer fills")
	if _, err := sw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("bytes reached the writer before any flush (%d)", out.Len())
	}
	if err := sw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !bytes.Equal(out.Bytes(), payload) {
		t.Fatalf("after Flush the writer holds %q, want %q", out.Bytes(), payload)
	}
	if _, err := sw.Write([]byte("!")); err != nil {
		t.Fatalf("Write after Flush: %v", err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := out.String(); got != string(payload)+"!" {
		t.Fatalf("final output %q", got)
	}
}

// failAfterWriter accepts the first n bytes, then fails every write.
type failAfterWriter struct {
	n   int
	got int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.got+len(p) > w.n {
		return 0, w.err
	}
	w.got += len(p)
	return len(p), nil
}

// TestSwapWriterStickyError: a failing underlying writer must surface its
// error to the producer — at the latest on Close, and on every Write once
// observed — without deadlocking the flusher handoff.
func TestSwapWriterStickyError(t *testing.T) {
	boom := errors.New("disk gone")
	sw := NewSwapWriter(&failAfterWriter{n: 512, err: boom}, 256)
	var werr error
	for i := 0; i < 64 && werr == nil; i++ {
		_, werr = sw.Write(make([]byte, 128))
	}
	if cerr := sw.Close(); !errors.Is(cerr, boom) {
		t.Fatalf("Close = %v, want the flusher's error %v", cerr, boom)
	}
	if werr != nil && !errors.Is(werr, boom) {
		t.Fatalf("Write surfaced %v, want %v", werr, boom)
	}
	// After Close with a sticky error, further writes fail fast.
	if _, err := sw.Write([]byte("x")); err == nil {
		t.Fatal("Write after Close succeeded")
	}
}

// shortWriter claims fewer bytes than handed to it.
type shortWriter struct{}

func (shortWriter) Write(p []byte) (int, error) {
	if len(p) > 1 {
		return len(p) - 1, nil
	}
	return len(p), nil
}

// TestSwapWriterShortWrite: a short write with a nil error must be
// promoted to io.ErrShortWrite, never silently dropped bytes.
func TestSwapWriterShortWrite(t *testing.T) {
	sw := NewSwapWriter(shortWriter{}, 64)
	if _, err := sw.Write(make([]byte, 300)); err != nil && !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Write = %v, want nil or ErrShortWrite", err)
	}
	if err := sw.Close(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Close = %v, want %v", err, io.ErrShortWrite)
	}
}

// TestSwapWriterCloseIdempotent: Close twice is safe and stable.
func TestSwapWriterCloseIdempotent(t *testing.T) {
	var out bytes.Buffer
	sw := NewSwapWriter(&out, 64)
	if _, err := sw.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if out.String() != "abc" {
		t.Fatalf("output %q", out.String())
	}
}

// TestSwapWriterEmptyClose: closing without writing is a no-op.
func TestSwapWriterEmptyClose(t *testing.T) {
	var out bytes.Buffer
	sw := NewSwapWriter(&out, 64)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 || sw.Written() != 0 {
		t.Fatalf("empty close wrote %d bytes, Written = %d", out.Len(), sw.Written())
	}
}
