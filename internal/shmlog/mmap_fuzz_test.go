//go:build linux || darwin

package shmlog

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// FuzzMmapRoundTrip drives random workloads through a file-backed log and
// checks three views agree: the creating mapping, a second mapping of the
// same file, and the raw bytes decoded offline (strict and lenient).
func FuzzMmapRoundTrip(f *testing.F) {
	f.Add(uint16(8), uint16(3), int64(1))
	f.Add(uint16(1), uint16(4), int64(2))  // overflow: more events than slots
	f.Add(uint16(64), uint16(0), int64(3)) // empty log
	f.Add(uint16(256), uint16(200), int64(4))
	f.Fuzz(func(t *testing.T, rawCap, rawCount uint16, seed int64) {
		capacity := int(rawCap)%256 + 1
		count := int(rawCount) % 512
		rng := rand.New(rand.NewSource(seed))

		path := filepath.Join(t.TempDir(), "fuzz.shm")
		creator, err := CreateFile(path, capacity)
		if err != nil {
			t.Fatal(err)
		}
		defer creator.Close()
		attached, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer attached.Close()

		var want []Entry
		for i := 0; i < count; i++ {
			e := Entry{
				Kind:     KindCall,
				Counter:  rng.Uint64() & counterMask,
				Addr:     rng.Uint64(),
				ThreadID: uint64(rng.Intn(8) + 1),
			}
			if rng.Intn(2) == 1 {
				e.Kind = KindReturn
			}
			// Alternate which mapping appends: both write the same region.
			l := creator
			if i%2 == 1 {
				l = attached
			}
			if err := l.Append(e); err == nil {
				want = append(want, e)
			}
		}

		if got := creator.Entries(); !sameEntries(got, want) {
			t.Fatalf("creator entries diverge: got %d, want %d", len(got), len(want))
		}
		if got := attached.Entries(); !sameEntries(got, want) {
			t.Fatalf("attached entries diverge: got %d, want %d", len(got), len(want))
		}
		wantDropped := uint64(count - len(want))
		if got := creator.Dropped(); got != wantDropped {
			t.Fatalf("Dropped = %d, want %d", got, wantDropped)
		}

		if err := creator.Msync(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		strict, err := Read(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("strict Read of raw file: %v", err)
		}
		if got := strict.Entries(); !sameEntries(got, want) {
			t.Fatalf("strict raw-file entries diverge: got %d, want %d", len(got), len(want))
		}
		lenient, rep, err := ReadLenient(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("intact raw file not clean: %v", rep)
		}
		if got := lenient.Entries(); !sameEntries(got, want) {
			t.Fatalf("lenient raw-file entries diverge: got %d, want %d", len(got), len(want))
		}
	})
}
