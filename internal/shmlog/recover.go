package shmlog

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Corruption classifies one kind of damage ReadLenient detected and
// recovered from. A report carries every class observed, in detection
// order.
type Corruption string

// Corruption classes.
const (
	// CorruptEmptyInput: the input held no bytes at all.
	CorruptEmptyInput Corruption = "empty-input"
	// CorruptBadMagic: no magic word found; nothing was salvageable.
	CorruptBadMagic Corruption = "bad-magic"
	// CorruptTruncatedHeader: the header (or a segment header) ended early;
	// missing words were taken as zero.
	CorruptTruncatedHeader Corruption = "truncated-header"
	// CorruptBadVersion: the version word matched no known format; the
	// layout was inferred from the magic position and the shards word.
	CorruptBadVersion Corruption = "bad-version"
	// CorruptBadShards: a sharded header carried an implausible shard
	// count; it was clamped.
	CorruptBadShards Corruption = "bad-shard-count"
	// CorruptTornEntry: the entry region ended mid-entry; the partial
	// trailing record was dropped.
	CorruptTornEntry Corruption = "torn-entry"
	// CorruptTailRange: the header tail disagreed with the entries
	// actually present (out of range or past EOF); it was clamped to the
	// last fully committed entry.
	CorruptTailRange Corruption = "tail-out-of-range"
	// CorruptGarbageMarker: an entry's commit-marker word held an
	// implausible thread ID (bit-flip damage); the entry was dropped.
	CorruptGarbageMarker Corruption = "garbage-commit-marker"
	// CorruptUnknownFlags: the header flags word carried undefined bits;
	// they were masked off.
	CorruptUnknownFlags Corruption = "unknown-flag-bits"
)

// maxPlausibleTID bounds commit-marker thread IDs ReadLenient accepts.
// The probe runtime assigns IDs sequentially from 1, so any value above
// this bound (other than TombstoneTID) can only be corruption.
const maxPlausibleTID = uint64(1) << 32

// RecoveryReport describes what ReadLenient salvaged from a damaged log
// stream and what it had to drop, instead of an error: the recovery
// analogue of the paper's analyzer dismissing possibly-wrong records.
type RecoveryReport struct {
	// SourceVersion is the format version the stream was decoded as
	// (Version, VersionV2, VersionV1, or 0 when no header was
	// recognizable).
	SourceVersion uint64
	// BytesRead is the total input length.
	BytesRead int64
	// BytesSalvaged counts the header and entry bytes that contributed to
	// the recovered log.
	BytesSalvaged int64
	// EntriesPresent is the number of complete entry records found in the
	// input, committed or not.
	EntriesPresent int
	// EntriesSalvaged is the number of committed entries recovered.
	EntriesSalvaged int
	// EntriesDropped is EntriesPresent minus EntriesSalvaged, split into
	// the Dropped* counters below.
	EntriesDropped int
	// DroppedInFlight counts slots whose commit marker was still zero
	// (a writer died between reserve and commit).
	DroppedInFlight int
	// DroppedTombstone counts released slots (normal batched-writer
	// residue, not corruption).
	DroppedTombstone int
	// DroppedGarbage counts entries with implausible commit markers
	// (bit-flip damage).
	DroppedGarbage int
	// TailClamped reports that a header tail was out of range and was
	// clamped to the entries actually present.
	TailClamped bool
	// Corruption lists every damage class observed, in detection order.
	Corruption []Corruption
}

// note records a corruption class once.
func (r *RecoveryReport) note(c Corruption) {
	for _, have := range r.Corruption {
		if have == c {
			return
		}
	}
	r.Corruption = append(r.Corruption, c)
}

// Clean reports whether the stream decoded without any damage: a clean
// ReadLenient is equivalent to Read.
func (r *RecoveryReport) Clean() bool {
	return len(r.Corruption) == 0 && r.EntriesDropped == 0
}

// String renders the report as a short human-readable summary (the
// `teeperf recover` output).
func (r *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "salvaged %d/%d entries (%d/%d bytes)",
		r.EntriesSalvaged, r.EntriesPresent, r.BytesSalvaged, r.BytesRead)
	if r.EntriesDropped > 0 {
		fmt.Fprintf(&b, "; dropped %d (%d in-flight, %d released, %d garbage)",
			r.EntriesDropped, r.DroppedInFlight, r.DroppedTombstone, r.DroppedGarbage)
	}
	if r.TailClamped {
		b.WriteString("; tail clamped")
	}
	if len(r.Corruption) > 0 {
		names := make([]string, len(r.Corruption))
		for i, c := range r.Corruption {
			names[i] = string(c)
		}
		fmt.Fprintf(&b, "; corruption: %s", strings.Join(names, ", "))
	} else {
		b.WriteString("; clean")
	}
	return b.String()
}

// knownFlags is every flag bit a valid header may carry regardless of
// format version; lenient decoding masks everything else off (bit-flip
// damage in the flags word). FlagRecorderReady appears in raw mmap files
// salvaged after a crash. FlagSampled is NOT here: sampling arrived with
// the version-3 control words, so it is admitted per-version (v3 only —
// on v1/v2 headers it can only be damage).
const knownFlags = FlagActive | FlagMultithread | EventCall | EventReturn | FlagRecorderReady

// lenientSalvage accumulates admitted entries and damage notes while a
// lenient decode walks one or more entry regions.
type lenientSalvage struct {
	rep     *RecoveryReport
	entries []Entry
	// counters carries each admitted entry's raw counter value so sharded
	// streams can be merged after all segments are walked.
	counters []uint64
	// segHeaderBytes counts the segment-header bytes actually read by the
	// sharded walk, so BytesSalvaged accounts for them.
	segHeaderBytes int64
}

// admitRegion scans one contiguous entry region (the flat v1/v2 body, or
// one v3 segment) and admits committed entries, classifying everything
// else. tail is the region's claimed reserved length, capacity its claimed
// slot count; body holds the region's raw bytes (possibly truncated).
// Regions persisted at full capacity (raw mmap files and v3 segments)
// carry all-zero slots above the tail — never-reserved padding rather than
// died-in-flight writers — which the trim below removes.
func (ls *lenientSalvage) admitRegion(body []byte, tail, capacity uint64) {
	rep := ls.rep
	if len(body)%EntrySize != 0 {
		rep.note(CorruptTornEntry)
	}
	slotZero := func(i int) bool {
		for _, b := range body[i*EntrySize : (i+1)*EntrySize] {
			if b != 0 {
				return false
			}
		}
		return true
	}
	present := len(body) / EntrySize
	// Trim trailing all-zero slots down to the tail before judging the
	// tail against what is present — they are padding, not died-in-flight
	// writers. The trim stops at the first non-zero slot, so a tail word
	// bit-flipped downward still leaves the real entries above it in the
	// scan.
	for present > 0 && uint64(present) > tail && slotZero(present-1) {
		present--
	}
	rep.EntriesPresent += present

	// The region's tail and capacity may both be damaged or stale; the
	// authoritative bound is the entries physically present. A tail that
	// disagrees is clamped, never trusted past EOF.
	switch {
	case tail > capacity && capacity == uint64(present):
		// A raw region whose writers raced past the end: reservation
		// normally parks the tail at the capacity, but a crash can
		// persist the transient overshoot. A tail above the capacity of
		// a physically full region is benign overflow, not damage. Clamp
		// silently, exactly as the strict Read does.
		tail = capacity
	case tail > uint64(present) || tail > capacity || int(tail) != present:
		rep.note(CorruptTailRange)
		rep.TailClamped = true
	}

	for i := 0; i < present; i++ {
		word0 := binary.LittleEndian.Uint64(body[i*EntrySize:])
		addr := binary.LittleEndian.Uint64(body[i*EntrySize+8:])
		tid := binary.LittleEndian.Uint64(body[i*EntrySize+16:])
		switch {
		case tid == 0:
			rep.DroppedInFlight++
			continue
		case tid == TombstoneTID:
			rep.DroppedTombstone++
			continue
		case tid > maxPlausibleTID:
			rep.note(CorruptGarbageMarker)
			rep.DroppedGarbage++
			continue
		}
		e := Entry{Kind: KindCall, Counter: word0 & counterMask, Addr: addr, ThreadID: tid}
		if word0&kindBit != 0 {
			e.Kind = KindReturn
		}
		ls.entries = append(ls.entries, e)
		ls.counters = append(ls.counters, word0&counterMask)
	}
}

// ReadLenient decodes a persisted log salvaging whatever it can: a
// truncated header is zero-filled, a tail pointing past EOF (or past the
// capacity) is clamped to the last fully committed entry, a torn trailing
// entry is dropped, and entries whose commit-marker word is zero
// (in-flight), TombstoneTID (released) or implausible (bit-flipped) are
// skipped. Sharded (version-3) streams are walked segment by segment with
// the same per-region salvage rules, then merged by the global counter
// value exactly as the strict Read merges them. Damage is returned as a
// structured RecoveryReport rather than an error; the only errors are real
// I/O failures from r.
//
// The recovered log is compacted — it contains exactly the salvaged
// committed entries, in log order, with a fresh consistent header — so
// Read, the analyzer and every downstream consumer accept it unmodified.
// When the input is undamaged the result is entry-for-entry identical to
// Read's and the report is Clean.
//
// The magic word is the one thing ReadLenient cannot do without: with
// fewer than 8 input bytes, or a damaged magic in both the version-1 and
// version-2/3 positions, nothing distinguishes a torn log from arbitrary
// bytes, and the salvaged log is empty (class bad-magic).
func ReadLenient(r io.Reader) (*Log, *RecoveryReport, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("shmlog: read: %w", err)
	}
	rep := &RecoveryReport{BytesRead: int64(len(data))}

	word := func(i int) uint64 {
		if (i+1)*8 > len(data) {
			return 0
		}
		return binary.LittleEndian.Uint64(data[i*8:])
	}

	// Locate the magic. v1 stores it in word 7, v2/v3 in word 0; neither
	// position can fake the other (v1 word 0 holds small flag bits, v2
	// word 7 is reserved padding, v3 word 7 is a small shard count).
	var headerLen int
	var flags, pid, profilerAddr, counterVal, capacity, tail uint64
	v1 := false
	switch {
	case len(data) == 0:
		rep.note(CorruptEmptyInput)
		return emptyRecovered(rep, 0, 0)
	case len(data) >= HeaderSizeV1 && word(v1WordMagic) == Magic:
		v1 = true
		rep.SourceVersion = VersionV1
		headerLen = HeaderSizeV1
		if word(v1WordVersion) != VersionV1 {
			rep.note(CorruptBadVersion)
		}
		flags = word(v1WordFlags)
		pid = word(v1WordPID)
		capacity = word(v1WordCapacity)
		tail = word(v1WordTail)
		profilerAddr = word(v1WordProfilerAddr)
		counterVal = word(v1WordCounter)
	case word(wordMagic) == Magic:
		headerLen = HeaderSize
		if len(data) < HeaderSize {
			rep.note(CorruptTruncatedHeader)
			headerLen = len(data)
		}
		pid = word(wordPID)
		capacity = word(wordCapacity)
		profilerAddr = word(wordProfilerAddr)
		flags = word(wordFlags)
		tail = word(wordTail)
		counterVal = word(wordCounter)
	default:
		rep.note(CorruptBadMagic)
		if len(data) < HeaderSizeV1 {
			rep.note(CorruptTruncatedHeader)
		}
		return emptyRecovered(rep, 0, 0)
	}

	// Flag admission is version-dependent: FlagSampled (and the sampling
	// period it describes) exists only in version-3 headers. On v3 both are
	// admitted — a salvaged sampled log must keep its period or the analyzer
	// under-weighs every entry — while on v1/v2 a set FlagSampled bit or a
	// nonzero byte in the reserved control-word region is bit-flip damage.
	isV3 := !v1 && word(wordVersion) == Version
	known := uint64(knownFlags)
	var samplePeriod uint64
	if isV3 {
		known |= FlagSampled
		samplePeriod = word(wordSamplePeriod)
	} else if !v1 && len(data) >= HeaderSize {
		// v2 reserves words 9-13 (the v3 control words) as zero padding.
		for w := wordSamplePeriod; w <= wordAddrMaskHi; w++ {
			if word(w) != 0 {
				rep.note(CorruptUnknownFlags)
				break
			}
		}
	}
	if flags&^known != 0 {
		rep.note(CorruptUnknownFlags)
		flags &= known
	}

	body := data[min(headerLen, len(data)):]
	ls := &lenientSalvage{rep: rep}
	switch v := word(wordVersion); {
	case v1:
		// Flat v1 entry region: everything after the packed header.
		ls.admitRegion(body, tail, capacity)
	case v == Version:
		rep.SourceVersion = Version
		salvageSharded(ls, body, capacity, word(wordShards))
	case v == VersionV2:
		rep.SourceVersion = VersionV2
		ls.admitRegion(body, tail, capacity)
	default:
		if len(data) >= (wordVersion+1)*8 {
			rep.note(CorruptBadVersion)
		}
		// The version word is unreadable, so the body's layout — sharded
		// segment headers vs a flat entry region — is unknown. Parse it
		// both ways into scratch reports and keep whichever salvages more
		// entries; ties go to the layout the shards word suggests (a v2
		// header reserves word 7 as zero, a v3 header sets a small
		// positive count).
		a := &lenientSalvage{rep: &RecoveryReport{}}
		salvageSharded(a, body, capacity, word(wordShards))
		b := &lenientSalvage{rep: &RecoveryReport{}}
		b.admitRegion(body, tail, capacity)
		shardsPlausible := word(wordShards) >= 1 && word(wordShards) <= MaxShards
		if len(b.entries) > len(a.entries) || (len(b.entries) == len(a.entries) && !shardsPlausible) {
			ls = b
			rep.SourceVersion = VersionV2
		} else {
			ls = a
			rep.SourceVersion = Version
		}
		mergeReport(rep, ls.rep)
		ls.rep = rep
	}

	entries := ls.entries
	rep.EntriesSalvaged = len(entries)
	rep.EntriesDropped = rep.DroppedInFlight + rep.DroppedTombstone + rep.DroppedGarbage
	rep.BytesSalvaged = int64(min(headerLen, len(data))) + ls.segHeaderBytes + int64(len(entries))*EntrySize

	if len(entries) == 0 {
		return emptyRecovered(rep, pid, profilerAddr)
	}

	out, err := New(len(entries),
		WithPID(pid),
		WithProfilerAddr(profilerAddr),
		WithFlags(flags&^FlagActive),   // recovered logs are read-only
		WithSamplePeriod(samplePeriod), // 0 on v1/v2 (they predate sampling)
	)
	if err != nil {
		return nil, nil, err
	}
	out.srcVersion = rep.SourceVersion
	for _, e := range entries {
		slot, n := out.Reserve(1)
		if n == 0 {
			break
		}
		out.Commit(slot, e)
	}
	out.AddCounter(counterVal)
	return out, rep, nil
}

// salvageSharded salvages a v3 body: a self-synchronizing segment walk
// (the shards word may itself be damaged, so the walk trusts the segment
// headers tiling the body instead) followed by the counter merge. The
// shards word is only cross-checked against the walked count.
func salvageSharded(ls *lenientSalvage, body []byte, capacity, shardsWord uint64) {
	if len(body) < SegHeaderSize && capacity > 0 {
		// The main header promises entries but not even one segment header
		// is present.
		ls.rep.note(CorruptTruncatedHeader)
	}
	segs := walkSegments(ls, body)
	if uint64(segs) != shardsWord {
		ls.rep.note(CorruptBadShards)
	}
	// A single segment is already in slot order; only a multi-segment
	// stream needs the counter merge.
	if segs > 1 {
		mergeSalvaged(ls)
	}
}

// walkSegments walks a v3 body — per-segment headers followed by that
// segment's entry slots — salvaging each segment with the shared
// per-region rules, until the body is exhausted. A truncated stream simply
// runs out of segments; a segment header cut short is zero-filled like the
// main header. Returns the number of segments walked.
func walkSegments(ls *lenientSalvage, body []byte) int {
	off := 0
	segs := 0
	for off < len(body) && segs < MaxShards {
		segWord := func(i int) uint64 {
			at := off + i*8
			if at+8 > len(body) {
				return 0
			}
			return binary.LittleEndian.Uint64(body[at:])
		}
		if off+SegHeaderSize > len(body) {
			ls.rep.note(CorruptTruncatedHeader)
		}
		segTail := segWord(segWordTail)
		segCap := segWord(segWordCapacity)
		headAvail := len(body) - off
		if headAvail > SegHeaderSize {
			headAvail = SegHeaderSize
		}
		ls.segHeaderBytes += int64(headAvail)
		off += SegHeaderSize
		if off > len(body) {
			off = len(body)
		}
		if segCap > maxEntries {
			ls.rep.note(CorruptTailRange)
			segCap = maxEntries
		}
		regionLen := int64(segCap) * EntrySize
		avail := int64(len(body) - off)
		if regionLen > avail {
			regionLen = avail
		}
		ls.admitRegion(body[off:off+int(regionLen)], segTail, segCap)
		off += int(regionLen)
		segs++
	}
	return segs
}

// mergeReport folds the counters and damage classes of a scratch report
// (from the dual-layout parse of a damaged version word) into the main one.
func mergeReport(dst, src *RecoveryReport) {
	dst.EntriesPresent += src.EntriesPresent
	dst.DroppedInFlight += src.DroppedInFlight
	dst.DroppedTombstone += src.DroppedTombstone
	dst.DroppedGarbage += src.DroppedGarbage
	dst.TailClamped = dst.TailClamped || src.TailClamped
	for _, c := range src.Corruption {
		dst.note(c)
	}
}

// mergeSalvaged orders the salvaged entries of a sharded stream by their
// global counter values (stable over segment walk order), exactly as the
// strict Read's segment merge — preserving per-thread order, since each
// thread's entries live in one segment with nondecreasing counters.
func mergeSalvaged(ls *lenientSalvage) {
	entries, counters := ls.entries, ls.counters
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return counters[idx[a]] < counters[idx[b]] })
	sorted := make([]Entry, len(entries))
	for out, i := range idx {
		sorted[out] = entries[i]
	}
	ls.entries = sorted
}

// emptyRecovered builds the zero-entry recovered log ReadLenient returns
// when nothing was salvageable: still a valid, loadable log so downstream
// consumers need no special case.
func emptyRecovered(rep *RecoveryReport, pid, profilerAddr uint64) (*Log, *RecoveryReport, error) {
	out, err := New(1,
		WithPID(pid),
		WithProfilerAddr(profilerAddr),
		WithFlags(EventCall|EventReturn),
	)
	if err != nil {
		return nil, nil, err
	}
	out.srcVersion = rep.SourceVersion
	return out, rep, nil
}
