// Package shmlog implements the TEE-Perf shared-memory log (Figure 2 of the
// paper): a fixed-capacity, append-only event log designed to be mapped into
// untrusted host memory and written lock-free from inside a trusted
// execution environment.
//
// The log consists of a padded header followed by fixed-size entries.
// Writers reserve entry slots with a single atomic fetch-and-add on the
// tail index — one slot (Append) or a contiguous block of slots (Reserve,
// the batched fast path) — and then own those slots exclusively, so no
// locks are required and per-thread event order is preserved (the property
// the analyzer relies on).
//
// Since format version 2 the header spreads its mutable words over
// separate 64-byte cache lines so the three concurrent hot loops never
// false-share:
//
//	line 0 (bytes   0..63):  magic, version, pid, capacity, profiler addr
//	                         — written once at setup, read-mostly.
//	line 1 (bytes  64..127): flags — read by every probe, toggled rarely.
//	line 2 (bytes 128..191): tail — fetch-and-add by every reservation.
//	line 3 (bytes 192..255): counter — the software-counter thread's
//	                         tight-loop increment word.
//	byte 256: first entry (a cache-line boundary).
//
// In version 1 all eight header words shared one cache line, so the counter
// thread's increment loop, every probe's tail fetch-and-add and the flag
// reads all contended on the same line. Read still decodes version-1
// streams; in memory every Log uses the padded layout.
//
// On Linux and macOS the same layout can back a real cross-process shared
// region: CreateFile / OpenFile lay the header and entries over a
// MAP_SHARED file mapping, so a recorder process and the instrumented
// application each map the file and communicate through the header's
// handshake words (creator PID, attach generation, recorder-ready flag)
// exactly as the paper's Stage 2 native recorder shares memory with the
// TEE. Everything above the word array — probes, cursors, recovery — works
// unchanged on a mapped log.
package shmlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Layout constants. The on-disk representation is little-endian 64-bit
// words matching the in-memory word layout exactly.
const (
	// HeaderWords is the number of 64-bit words in the version-2 log
	// header: four 64-byte cache lines.
	HeaderWords = 32
	// HeaderWordsV1 is the number of header words in the legacy version-1
	// format (decode-only support).
	HeaderWordsV1 = 8
	// EntryWords is the number of 64-bit words per log entry:
	// word 0: kind bit (bit 63) | counter value (bits 62..0)
	// word 1: call/return target address
	// word 2: thread ID (stored last: the commit marker)
	EntryWords = 3

	// HeaderSize, HeaderSizeV1 and EntrySize are the byte sizes of the
	// corresponding structures in the persisted format.
	HeaderSize   = HeaderWords * 8
	HeaderSizeV1 = HeaderWordsV1 * 8
	EntrySize    = EntryWords * 8

	// Magic identifies a persisted TEE-Perf log ("TEEPERF1").
	Magic uint64 = 0x5445455045524631

	// Version is the current log structure version: the cache-line-padded
	// header. VersionV1 is the legacy packed-header format, still decoded
	// by Read.
	Version   uint64 = 2
	VersionV1 uint64 = 1
)

// Header word indexes (version-2 layout). The mutable words — flags, tail,
// counter — each sit on their own cache line (8 words apart); the remaining
// words of each line are reserved padding, persisted as zero.
//
// File-backed (mmap) logs additionally use three handshake slots for the
// cross-process attach protocol: the creator PID and attach generation live
// in line 0 (written at setup / bumped once per attach), the recorder-ready
// flag is a bit in the flags word, and the dropped-event counter shares the
// tail's line (drops happen on the reservation path, and only when the log
// is already full). All four persist as zero through WriteTo — they are
// runtime coordination state, not part of the recorded measurement.
const (
	wordMagic        = 0
	wordVersion      = 1
	wordPID          = 2
	wordCapacity     = 3
	wordProfilerAddr = 4
	wordCreatorPID   = 5  // attach handshake: PID of the creating process
	wordAttachGen    = 6  // attach handshake: bumped once per OpenFile
	wordFlags        = 8  // cache line 1
	wordTail         = 16 // cache line 2
	wordDropped      = 17 // drop counter (cold: touched only when full)
	wordCounter      = 24 // cache line 3
)

// Version-1 header word indexes (decode-only).
const (
	v1WordFlags = iota
	v1WordVersion
	v1WordPID
	v1WordCapacity
	v1WordTail
	v1WordProfilerAddr
	v1WordCounter
	v1WordMagic
)

// Flag bits stored in the header flags word. Flags may be toggled while the
// measured application runs; all access is atomic so toggling introduces no
// critical section into the measured execution.
const (
	// FlagActive enables recording. Probes drop events while it is clear.
	FlagActive uint64 = 1 << 0
	// FlagMultithread marks a log produced by a multi-threaded run.
	FlagMultithread uint64 = 1 << 1

	// EventCall / EventReturn select which event kinds are recorded.
	EventCall   uint64 = 1 << 2
	EventReturn uint64 = 1 << 3

	// FlagRecorderReady is the attach-handshake bit: the hosting recorder
	// process sets it once its counter thread is running, so an attaching
	// application knows the shared counter word is live before it starts
	// sampling (cross-process mode).
	FlagRecorderReady uint64 = 1 << 4

	// EventMask covers all event-selection bits.
	EventMask = EventCall | EventReturn
)

// TombstoneTID is the thread-ID word of a reserved slot that was released
// without being committed (a batched writer's unused trailing slots).
// Readers dismiss tombstoned slots. Real thread IDs start at 1 and are
// assigned sequentially, so neither 0 (in-flight) nor TombstoneTID ever
// collides with a committed entry.
const TombstoneTID = ^uint64(0)

// Kind distinguishes call and return entries.
type Kind uint8

// Entry kinds. KindCall is recorded by the function-entry probe,
// KindReturn by the function-exit probe.
const (
	KindCall Kind = iota + 1
	KindReturn
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

const (
	kindBit     = uint64(1) << 63
	counterMask = kindBit - 1
)

// bulkBufSize is the scratch-buffer size shared by WriteTo and Read: big
// enough to amortize Write/Read syscalls, small enough to stay cache- and
// stack-friendly.
const bulkBufSize = 64 * 1024

// Sync selects the slot-reservation strategy. The paper designs the log for
// lock-free atomic access but explicitly does not rely on atomics being
// available; SyncMutex is the portable fallback (and the A1 ablation
// baseline).
type Sync int

// Synchronization modes.
const (
	SyncAtomic Sync = iota + 1
	SyncMutex
)

// Errors returned by log operations.
var (
	// ErrFull is returned by Append once all slots are used.
	ErrFull = errors.New("shmlog: log full")
	// ErrInactive is returned by Append when FlagActive is clear.
	ErrInactive = errors.New("shmlog: recording inactive")
	// ErrFiltered is returned by Append when the entry kind is masked out.
	ErrFiltered = errors.New("shmlog: event kind filtered")
	// ErrBadMagic is returned when decoding a non-TEE-Perf stream.
	ErrBadMagic = errors.New("shmlog: bad magic")
	// ErrBadVersion is returned when decoding an unsupported log version.
	ErrBadVersion = errors.New("shmlog: unsupported log version")
	// ErrTruncated is returned when a persisted log ends prematurely.
	ErrTruncated = errors.New("shmlog: truncated log")
	// ErrEmptyLog is returned by Read for a zero-byte input. It wraps
	// ErrTruncated, so existing errors.Is(err, ErrTruncated) checks keep
	// matching.
	ErrEmptyLog = fmt.Errorf("%w: empty (zero-byte) input", ErrTruncated)
	// ErrTruncatedHeader is returned by Read when the input ends inside
	// the header — shorter than any valid log can be. It wraps
	// ErrTruncated.
	ErrTruncatedHeader = fmt.Errorf("%w: incomplete header", ErrTruncated)
	// ErrRange is returned when an entry index is out of bounds.
	ErrRange = errors.New("shmlog: entry index out of range")
	// ErrMmapUnsupported is returned by CreateFile/OpenFile on platforms
	// without shared file-backed mappings; callers fall back to the
	// in-process heap log.
	ErrMmapUnsupported = errors.New("shmlog: file-backed shared mapping not supported on this platform")
	// ErrMapped is returned for operations invalid on a file-backed log
	// (e.g. unsupported sync modes).
	ErrMapped = errors.New("shmlog: invalid operation on mapped log")
)

// Entry is one decoded log record (Figure 2 (b)).
type Entry struct {
	// Kind reports whether the probe observed a call or a return.
	Kind Kind
	// Counter is the 63-bit counter value sampled by the probe.
	Counter uint64
	// Addr is the call/return target address (a virtual text address
	// resolvable through the symbol table).
	Addr uint64
	// ThreadID identifies the application thread that wrote the entry.
	ThreadID uint64
}

// Log is the shared-memory log region. It is safe for concurrent use by any
// number of writers and readers.
type Log struct {
	words []uint64
	sync  Sync
	mu    sync.Mutex // used only in SyncMutex mode

	// srcVersion is the format version the log was decoded from (Version
	// for logs created by New).
	srcVersion uint64

	// mapped/file/path are set only for file-backed logs (CreateFile /
	// OpenFile): words then aliases the MAP_SHARED byte region, so every
	// atomic store is visible to other processes mapping the same file.
	mapped []byte
	file   *os.File
	path   string

	// readOnly marks an observer mapping (ObserveFile): PROT_READ only, so
	// any store to the shared region would fault. Observers must restrict
	// themselves to loads — cursors, header accessors, stats.
	readOnly bool
}

// Option configures New.
type Option interface {
	apply(*options)
}

type options struct {
	pid          uint64
	version      uint64
	profilerAddr uint64
	sync         Sync
	flags        uint64
}

type pidOption uint64

func (o pidOption) apply(opts *options) { opts.pid = uint64(o) }

// WithPID records the process ID of the profiled application in the header
// so the analyzer can tell multiple runs apart.
func WithPID(pid uint64) Option { return pidOption(pid) }

type profilerAddrOption uint64

func (o profilerAddrOption) apply(opts *options) { opts.profilerAddr = uint64(o) }

// WithProfilerAddr records the in-memory address of the well-known profiler
// anchor function, letting the analyzer compute the relocation offset of
// position-independent code.
func WithProfilerAddr(addr uint64) Option { return profilerAddrOption(addr) }

type syncOption Sync

func (o syncOption) apply(opts *options) { opts.sync = Sync(o) }

// WithSync selects the slot reservation strategy (default SyncAtomic).
func WithSync(s Sync) Option { return syncOption(s) }

type flagsOption uint64

func (o flagsOption) apply(opts *options) { opts.flags = uint64(o) }

// WithFlags sets the initial header flags. The default enables recording of
// both calls and returns with the log active.
func WithFlags(flags uint64) Option { return flagsOption(flags) }

type versionOption uint64

func (o versionOption) apply(opts *options) { opts.version = uint64(o) }

// WithVersion overrides the log structure version (testing only).
func WithVersion(v uint64) Option { return versionOption(v) }

// New allocates a log with room for capacity entries.
func New(capacity int, opts ...Option) (*Log, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("shmlog: capacity must be positive, got %d", capacity)
	}
	o := options{
		version: Version,
		sync:    SyncAtomic,
		flags:   FlagActive | EventCall | EventReturn,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.sync != SyncAtomic && o.sync != SyncMutex {
		return nil, fmt.Errorf("shmlog: unknown sync mode %d", o.sync)
	}
	l := &Log{
		words:      make([]uint64, HeaderWords+capacity*EntryWords),
		sync:       o.sync,
		srcVersion: o.version,
	}
	l.words[wordMagic] = Magic
	l.words[wordVersion] = o.version
	l.words[wordPID] = o.pid
	l.words[wordCapacity] = uint64(capacity)
	l.words[wordProfilerAddr] = o.profilerAddr
	l.words[wordFlags] = o.flags
	return l, nil
}

// Capacity returns the maximum number of entries the log can hold. The
// capacity is fixed at setup and immutable afterwards (per the paper), but
// it is read on the Append fast path next to atomically-written words, so
// the load is atomic to keep the race detector (and weaker memory models)
// satisfied.
func (l *Log) Capacity() int { return int(atomic.LoadUint64(&l.words[wordCapacity])) }

// PID returns the recorded process ID.
func (l *Log) PID() uint64 { return atomic.LoadUint64(&l.words[wordPID]) }

// SetPID records the process ID of the profiled application. In
// cross-process mode the recorder creates the mapping before the
// application exists, so the attaching process stamps its own PID here.
func (l *Log) SetPID(pid uint64) { atomic.StoreUint64(&l.words[wordPID], pid) }

// Version returns the log structure version of the in-memory layout.
func (l *Log) Version() uint64 { return atomic.LoadUint64(&l.words[wordVersion]) }

// SourceVersion returns the format version the log was decoded from: for
// logs decoded by Read it may be VersionV1; for logs created by New it is
// the configured (normally current) version.
func (l *Log) SourceVersion() uint64 { return l.srcVersion }

// ProfilerAddr returns the recorded profiler anchor address.
func (l *Log) ProfilerAddr() uint64 { return atomic.LoadUint64(&l.words[wordProfilerAddr]) }

// SetProfilerAddr records the profiler anchor address. It is written by the
// recorder during setup, before any probes run.
func (l *Log) SetProfilerAddr(addr uint64) { atomic.StoreUint64(&l.words[wordProfilerAddr], addr) }

// Flags returns the current header flags (atomic).
func (l *Log) Flags() uint64 { return atomic.LoadUint64(&l.words[wordFlags]) }

// SetFlag sets the given flag bits atomically while the application runs.
//
// Go 1.22 has no atomic.OrUint64 (it arrived in Go 1.23), so a read-
// modify-write of the flags word must be a CompareAndSwap retry loop. Flag
// toggles come from a single control goroutine in practice, so the first
// CAS — or no write at all, when the bits are already set — is the common
// case; the loop only spins under a concurrent toggle.
func (l *Log) SetFlag(bits uint64) {
	old := atomic.LoadUint64(&l.words[wordFlags])
	if old&bits == bits {
		return // already set: no write, no cache-line bounce
	}
	if atomic.CompareAndSwapUint64(&l.words[wordFlags], old, old|bits) {
		return // uncontended single-caller fast path
	}
	for {
		old = atomic.LoadUint64(&l.words[wordFlags])
		if old&bits == bits {
			return
		}
		if atomic.CompareAndSwapUint64(&l.words[wordFlags], old, old|bits) {
			return
		}
	}
}

// ClearFlag clears the given flag bits atomically. Same CAS-loop rationale
// as SetFlag (no atomic.AndUint64 before Go 1.23).
func (l *Log) ClearFlag(bits uint64) {
	old := atomic.LoadUint64(&l.words[wordFlags])
	if old&bits == 0 {
		return // already clear
	}
	if atomic.CompareAndSwapUint64(&l.words[wordFlags], old, old&^bits) {
		return
	}
	for {
		old = atomic.LoadUint64(&l.words[wordFlags])
		if old&bits == 0 {
			return
		}
		if atomic.CompareAndSwapUint64(&l.words[wordFlags], old, old&^bits) {
			return
		}
	}
}

// Active reports whether recording is enabled.
func (l *Log) Active() bool { return l.Flags()&FlagActive != 0 }

// SetActive toggles the active flag.
func (l *Log) SetActive(active bool) {
	if active {
		l.SetFlag(FlagActive)
	} else {
		l.ClearFlag(FlagActive)
	}
}

// CreatorPID returns the PID of the process that created a file-backed log
// (zero for heap logs). An attaching process uses it to confirm it is
// talking to a live recorder, not a stale file.
func (l *Log) CreatorPID() uint64 { return atomic.LoadUint64(&l.words[wordCreatorPID]) }

// AttachGen returns the attach generation: how many times OpenFile has
// mapped this log. The creator observes it rise when the application
// attaches; tests assert on it.
func (l *Log) AttachGen() uint64 { return atomic.LoadUint64(&l.words[wordAttachGen]) }

// Ready reports whether the hosting recorder has marked its counter thread
// live (FlagRecorderReady).
func (l *Log) Ready() bool { return l.Flags()&FlagRecorderReady != 0 }

// SetReady toggles the recorder-ready handshake bit. The hosting recorder
// sets it in Start (after the counter thread is running) and clears it in
// Stop.
func (l *Log) SetReady(ready bool) {
	if ready {
		l.SetFlag(FlagRecorderReady)
	} else {
		l.ClearFlag(FlagRecorderReady)
	}
}

// WaitReady blocks until the recorder-ready bit is set or the timeout
// elapses, polling the shared flags word. It returns true when the bit was
// observed set. An attaching application calls this before sampling so its
// first events carry live counter values.
func (l *Log) WaitReady(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if l.Ready() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Mapped reports whether the log is a file-backed shared mapping.
func (l *Log) Mapped() bool { return l.mapped != nil }

// ReadOnly reports whether the log is a read-only observer mapping
// (ObserveFile). Mutating a read-only mapping faults; callers that might
// hold either kind check here first.
func (l *Log) ReadOnly() bool { return l.readOnly }

// Path returns the backing file path of a mapped log ("" for heap logs).
func (l *Log) Path() string { return l.path }

// Msync flushes the mapped region to the backing file (MS_SYNC). It is a
// no-op for heap logs and read-only observer mappings (which have nothing
// of their own to flush).
func (l *Log) Msync() error {
	if l.mapped == nil || l.readOnly {
		return nil
	}
	return msync(l.mapped)
}

// Close unmaps a file-backed log and closes the backing file. The words
// slice is repointed at a zeroed header-only region first, so a straggler
// touching the log after Close reads harmless zeros (inactive, empty)
// instead of faulting on unmapped memory. Heap logs are unaffected. Close
// is not safe to call concurrently with writers still appending.
func (l *Log) Close() error {
	if l.mapped == nil {
		return nil
	}
	l.words = make([]uint64, HeaderWords)
	mapped := l.mapped
	l.mapped = nil
	err := munmap(mapped)
	if l.file != nil {
		if cerr := l.file.Close(); err == nil {
			err = cerr
		}
		l.file = nil
	}
	return err
}

// AddCounter atomically advances the header counter word by delta and
// returns the new value. The software counter thread calls this in its
// tight loop; since format v2 the counter word owns a whole cache line, so
// the loop no longer contends with tail reservations or flag reads.
func (l *Log) AddCounter(delta uint64) uint64 {
	return atomic.AddUint64(&l.words[wordCounter], delta)
}

// LoadCounter atomically reads the header counter word.
func (l *Log) LoadCounter() uint64 {
	return atomic.LoadUint64(&l.words[wordCounter])
}

// Tail returns the raw tail index. It can exceed Capacity when writers
// raced past the end; Len clamps it.
func (l *Log) Tail() uint64 { return atomic.LoadUint64(&l.words[wordTail]) }

// Len returns the number of reserved entry slots, clamped to the capacity.
// With single-slot writers every slot below Len is committed; with batched
// writers (Reserve) slots below Len may still be in flight (zero thread-ID
// word) or released (TombstoneTID) — readers dismiss those.
func (l *Log) Len() int {
	tail := l.Tail()
	if c := uint64(l.Capacity()); tail > c {
		tail = c
	}
	return int(tail)
}

// Dropped returns how many entries were rejected because the log was full.
// The count lives in header word 17 (not a heap field) so that in
// cross-process mode the hosting recorder sees drops suffered by the
// attached application.
func (l *Log) Dropped() uint64 { return atomic.LoadUint64(&l.words[wordDropped]) }

// NoteDropped adds n to the drop counter. Batched writers call it when an
// event arrives and no slot can be reserved, so drop accounting matches the
// single-slot Append path.
func (l *Log) NoteDropped(n uint64) { atomic.AddUint64(&l.words[wordDropped], n) }

// Reserve claims up to n contiguous entry slots with a single fetch-and-add
// on the tail and returns the first slot index and the number of usable
// slots (0 when the log is full). The caller owns slots
// [start, start+count) exclusively and must either Commit or Release every
// one of them; a slot left untouched is indistinguishable from an in-flight
// write and is dismissed by readers.
func (l *Log) Reserve(n int) (start uint64, count int) {
	if n <= 0 {
		return 0, 0
	}
	if l.sync == SyncAtomic {
		start = atomic.AddUint64(&l.words[wordTail], uint64(n)) - uint64(n)
	} else {
		// The stores stay atomic even under the mutex so concurrent
		// atomic readers (Tail, Len, cursors) never mix a plain write
		// with an atomic load on the same word.
		l.mu.Lock()
		start = atomic.LoadUint64(&l.words[wordTail])
		atomic.StoreUint64(&l.words[wordTail], start+uint64(n))
		l.mu.Unlock()
	}
	capacity := uint64(l.Capacity())
	if start >= capacity {
		return start, 0
	}
	usable := capacity - start
	if usable > uint64(n) {
		usable = uint64(n)
	}
	return start, int(usable)
}

// Commit writes e into a reserved slot the caller owns exclusively.
// Counter values are truncated to 63 bits; bit 63 carries the kind. The
// thread-ID word is stored atomically last and doubles as the commit
// marker: thread IDs are never zero (the probe runtime assigns IDs starting
// at 1), so a concurrent tailing reader that observes a non-zero,
// non-tombstone thread ID is guaranteed to see the final counter and
// address words too.
func (l *Log) Commit(slot uint64, e Entry) {
	base := HeaderWords + int(slot)*EntryWords
	word0 := e.Counter & counterMask
	if e.Kind == KindReturn {
		word0 |= kindBit
	}
	atomic.StoreUint64(&l.words[base], word0)
	atomic.StoreUint64(&l.words[base+1], e.Addr)
	atomic.StoreUint64(&l.words[base+2], e.ThreadID)
}

// Release marks a reserved slot as permanently unused (tombstone). Batched
// writers release the trailing slots of a partially-filled block at flush,
// rotation or stop, so readers can tell "never coming" from "still in
// flight".
func (l *Log) Release(slot uint64) {
	base := HeaderWords + int(slot)*EntryWords
	atomic.StoreUint64(&l.words[base+2], TombstoneTID)
}

// Append records one entry. It checks the active flag and the event mask,
// reserves a slot (fetch-and-add in SyncAtomic mode), and commits the entry
// into the reserved slot, which it owns exclusively.
func (l *Log) Append(e Entry) error {
	flags := l.Flags()
	if flags&FlagActive == 0 {
		return ErrInactive
	}
	switch e.Kind {
	case KindCall:
		if flags&EventCall == 0 {
			return ErrFiltered
		}
	case KindReturn:
		if flags&EventReturn == 0 {
			return ErrFiltered
		}
	default:
		return fmt.Errorf("shmlog: invalid entry kind %d", e.Kind)
	}

	slot, n := l.Reserve(1)
	if n == 0 {
		atomic.AddUint64(&l.words[wordDropped], 1)
		return ErrFull
	}
	l.Commit(slot, e)
	return nil
}

// Entry decodes the raw entry at index i. Under batched writers a slot
// below Len may be reserved-in-flight (ThreadID 0) or released
// (ThreadID TombstoneTID); Entry returns those raw words and the caller
// dismisses them (as Entries and the analyzer do).
func (l *Log) Entry(i int) (Entry, error) {
	if i < 0 || i >= l.Len() {
		return Entry{}, fmt.Errorf("%w: %d (len %d)", ErrRange, i, l.Len())
	}
	base := HeaderWords + i*EntryWords
	word0 := atomic.LoadUint64(&l.words[base])
	e := Entry{
		Kind:     KindCall,
		Counter:  word0 & counterMask,
		Addr:     atomic.LoadUint64(&l.words[base+1]),
		ThreadID: atomic.LoadUint64(&l.words[base+2]),
	}
	if word0&kindBit != 0 {
		e.Kind = KindReturn
	}
	return e, nil
}

// Entries decodes all committed entries in log order, dismissing released
// (tombstoned) slots. Slots still in flight decode as zero-thread entries,
// exactly as they are persisted.
func (l *Log) Entries() []Entry {
	n := l.Len()
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		e, err := l.Entry(i)
		if err != nil {
			break
		}
		if e.ThreadID == TombstoneTID {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Reset clears the tail, counter and drop count, keeping configuration
// (capacity, pid, flags) intact. Not safe to call concurrently with Append,
// Reserve or a live Cursor; batched writers must Flush (releasing their
// blocks) before a Reset, or their stale blocks would commit into the
// recycled region.
func (l *Log) Reset() {
	atomic.StoreUint64(&l.words[wordTail], 0)
	atomic.StoreUint64(&l.words[wordCounter], 0)
	atomic.StoreUint64(&l.words[wordDropped], 0)
}

// WriteTo persists the header and all reserved entries in the binary
// format, re-encoding the word array through a reused 64 KiB buffer (one
// Write per buffer-full rather than one per word). It implements
// io.WriterTo.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	n := l.Len()
	header := [HeaderWords]uint64{
		wordMagic:        Magic,
		wordVersion:      l.Version(),
		wordPID:          l.PID(),
		wordCapacity:     uint64(n), // persisted capacity == reserved length
		wordTail:         uint64(n),
		wordProfilerAddr: l.ProfilerAddr(),
		wordFlags:        l.Flags(),
		wordCounter:      l.LoadCounter(),
	}

	var (
		buf     [bulkBufSize]byte
		off     int
		written int64
	)
	flush := func() error {
		if off == 0 {
			return nil
		}
		m, err := w.Write(buf[:off])
		written += int64(m)
		off = 0
		return err
	}
	put := func(v uint64) error {
		if off == len(buf) {
			if err := flush(); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint64(buf[off:], v)
		off += 8
		return nil
	}

	for _, word := range header {
		if err := put(word); err != nil {
			return written, err
		}
	}
	for i := 0; i < n*EntryWords; i++ {
		if err := put(atomic.LoadUint64(&l.words[HeaderWords+i])); err != nil {
			return written, err
		}
	}
	return written, flush()
}

var _ io.WriterTo = (*Log)(nil)

// Read decodes a persisted log, accepting both the current padded format
// and legacy version-1 streams (packed 64-byte header). The returned log is
// inactive (read-only use), always uses the in-memory version-2 layout, and
// still supports Entry/Entries/Len and header accessors; SourceVersion
// reports the format it was decoded from.
func Read(r io.Reader) (*Log, error) {
	// Both formats share a 64-byte prefix length: v1 is exactly 64 bytes
	// of header, v2 begins with its first cache line. The magic word
	// disambiguates: v1 stores it in word 7, v2 in word 0, and neither
	// position can fake the other (v1 word 0 holds small flag bits, v2
	// word 7 is reserved padding).
	head := make([]byte, HeaderSizeV1)
	if _, err := io.ReadFull(r, head); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, ErrEmptyLog
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTruncatedHeader
		}
		return nil, fmt.Errorf("shmlog: read header: %w", err)
	}
	var prefix [HeaderWordsV1]uint64
	for i := range prefix {
		prefix[i] = binary.LittleEndian.Uint64(head[i*8:])
	}

	var (
		flags, pid, profilerAddr, counter uint64
		capacity, tail                    uint64
		srcVersion                        uint64
	)
	switch {
	case prefix[v1WordMagic] == Magic:
		if prefix[v1WordVersion] != VersionV1 {
			return nil, fmt.Errorf("%w: %d", ErrBadVersion, prefix[v1WordVersion])
		}
		srcVersion = VersionV1
		flags = prefix[v1WordFlags]
		pid = prefix[v1WordPID]
		capacity = prefix[v1WordCapacity]
		tail = prefix[v1WordTail]
		profilerAddr = prefix[v1WordProfilerAddr]
		counter = prefix[v1WordCounter]
	case prefix[wordMagic] == Magic:
		if prefix[wordVersion] != Version {
			return nil, fmt.Errorf("%w: %d", ErrBadVersion, prefix[wordVersion])
		}
		srcVersion = Version
		rest := make([]byte, HeaderSize-HeaderSizeV1)
		if _, err := io.ReadFull(r, rest); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, ErrTruncatedHeader
			}
			return nil, fmt.Errorf("shmlog: read header: %w", err)
		}
		word := func(i int) uint64 {
			if i < HeaderWordsV1 {
				return prefix[i]
			}
			return binary.LittleEndian.Uint64(rest[(i-HeaderWordsV1)*8:])
		}
		pid = prefix[wordPID]
		capacity = prefix[wordCapacity]
		profilerAddr = prefix[wordProfilerAddr]
		flags = word(wordFlags)
		tail = word(wordTail)
		counter = word(wordCounter)
	default:
		return nil, ErrBadMagic
	}

	if tail > capacity {
		tail = capacity
	}
	const maxEntries = 1 << 32
	if capacity > maxEntries {
		return nil, fmt.Errorf("shmlog: unreasonable capacity %d", capacity)
	}

	// Read the body incrementally so a forged header claiming billions of
	// entries fails at the first missing byte instead of pre-allocating
	// the claimed size. Each chunk is bulk-converted: the slice is grown
	// once per chunk and the words decoded by index, not appended one by
	// one.
	words := make([]uint64, HeaderWords, HeaderWords+clampEntries(tail)*EntryWords)
	chunk := make([]byte, bulkBufSize)
	remaining := int64(tail) * EntrySize
	for remaining > 0 {
		n := int64(len(chunk))
		if remaining < n {
			n = remaining
		}
		if _, err := io.ReadFull(r, chunk[:n]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, ErrTruncated
			}
			return nil, fmt.Errorf("shmlog: read entries: %w", err)
		}
		base := len(words)
		words = append(words, make([]uint64, n/8)...)
		dst := words[base:]
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(chunk[i*8:])
		}
		remaining -= n
	}

	l := &Log{words: words, sync: SyncAtomic, srcVersion: srcVersion}
	l.words[wordMagic] = Magic
	// Decoded logs are normalized to the current in-memory layout and
	// version; SourceVersion keeps the origin.
	l.words[wordVersion] = Version
	l.words[wordPID] = pid
	l.words[wordProfilerAddr] = profilerAddr
	l.words[wordFlags] = flags &^ FlagActive // read-only
	// The decoded log is immutable: its capacity is what was persisted.
	l.words[wordCapacity] = tail
	l.words[wordTail] = tail
	l.words[wordCounter] = counter
	return l, nil
}

// Cursor is an incremental reader over a live log: each Next call returns
// the entries committed since the previous call, letting a monitor tail the
// log concurrently with running probes without reparsing from the start.
//
// A slot below the tail may be reserved but still in flight: the writer
// sits between the fetch-and-add and the entry stores, or — under batched
// reservation — holds the slot in its current block and will fill it with
// one of its next events. The cursor uses the thread-ID word, stored last
// by Commit, as the commit marker. Instead of stopping at the first zero
// thread-ID word it records such slots as holes, keeps scanning, and
// re-examines the holes on every subsequent Next: a hole that commits is
// emitted exactly once, a hole that is released (TombstoneTID) is dropped.
//
// Within one Next call entries are emitted in slot order, and a writer
// thread always commits its slots in increasing slot order, so emitted
// entries are per-thread ordered — the only order the analyzer relies on.
// The subtle case is a hole left behind across calls: a single scan could
// read slot i as in-flight, then read a later slot j of the same thread as
// committed (the writer committed both in between), emit j now and backfill
// i on a later call — out of per-thread order. Next therefore rescans the
// remaining holes until a pass resolves no new commit: any hole ordered
// before an entry observed committed this call was itself committed first
// (increasing-slot commit order), so the rescan is guaranteed to observe it
// and splice it in. When Next returns, no tracked hole was committed before
// any entry it emitted.
//
// Consequently the cursor requires non-zero thread IDs: an entry committed
// with ThreadID 0 is indistinguishable from an in-flight slot and is
// tracked as a hole forever (never emitted). The probe runtime always
// assigns thread IDs starting at 1.
//
// A cursor is not safe for concurrent use by multiple goroutines, and
// Log.Reset must not be called while a cursor is live.
type Cursor struct {
	log   *Log
	pos   int
	holes []int
	// scratch holds the slot indexes observed committed during one Next
	// call, reused across calls to avoid per-call allocation.
	scratch []int
}

// Cursor returns a new incremental reader positioned at the start of the
// log.
func (l *Log) Cursor() *Cursor { return &Cursor{log: l} }

// Log returns the log this cursor reads.
func (c *Cursor) Log() *Log { return c.log }

// Pos returns the index of the next entry the cursor's frontier will
// examine. Entries returned so far equal Pos minus Pending (holes below the
// frontier still awaiting their commit or release).
func (c *Cursor) Pos() int { return c.pos }

// Pending returns how many reserved-but-unresolved holes the cursor is
// tracking below its frontier.
func (c *Cursor) Pending() int { return len(c.holes) }

// Next appends every newly committed entry to dst in slot order and
// returns the extended slice. It returns dst unchanged when nothing new has
// committed.
func (c *Cursor) Next(dst []Entry) []Entry {
	n := c.log.Len()
	if len(c.holes) == 0 && c.pos >= n {
		return dst
	}

	// Candidate slots for this call, in increasing slot order: previously
	// tracked holes (all below the frontier) followed by the new frontier
	// region.
	pending := c.holes
	for i := c.pos; i < n; i++ {
		pending = append(pending, i)
	}
	c.pos = n

	// Resolve to a fixpoint. A single pass is racy: it can read slot i as
	// in-flight, then read a later slot j of the same thread as committed
	// (the writer committed i then j in between) — emitting j while i is
	// left to backfill on a later call would break per-thread order. A
	// writer commits its slots in increasing slot order, so every hole
	// ordered before a commit observed by pass k is itself committed
	// before pass k+1 starts; rescanning the remaining holes until a pass
	// observes no new commit therefore guarantees that no hole surviving
	// this call was committed before any entry emitted by it. In practice
	// the loop is two passes — the second resolves nothing — and only the
	// first walks the frontier.
	committed := c.scratch[:0]
	for {
		resolved := false
		kept := pending[:0]
		for _, i := range pending {
			switch tid := atomic.LoadUint64(&c.log.words[HeaderWords+i*EntryWords+2]); tid {
			case 0:
				kept = append(kept, i) // still in flight
			case TombstoneTID:
				// released: never coming
			default:
				committed = append(committed, i)
				resolved = true
			}
		}
		pending = kept
		if !resolved || len(pending) == 0 {
			break
		}
	}
	c.holes = pending

	// Later passes append holes that sit between earlier passes' slots;
	// restore slot order (== per-thread commit order) before emitting.
	if !sort.IntsAreSorted(committed) {
		sort.Ints(committed)
	}
	for _, i := range committed {
		tid := atomic.LoadUint64(&c.log.words[HeaderWords+i*EntryWords+2])
		dst = append(dst, c.decode(i, tid))
	}
	c.scratch = committed[:0]
	return dst
}

// decode reads the committed entry at slot i; tid is the already-loaded
// commit marker.
func (c *Cursor) decode(i int, tid uint64) Entry {
	base := HeaderWords + i*EntryWords
	word0 := atomic.LoadUint64(&c.log.words[base])
	e := Entry{
		Kind:     KindCall,
		Counter:  word0 & counterMask,
		Addr:     atomic.LoadUint64(&c.log.words[base+1]),
		ThreadID: tid,
	}
	if word0&kindBit != 0 {
		e.Kind = KindReturn
	}
	return e
}

// clampEntries bounds the initial allocation hint for decoded logs.
func clampEntries(tail uint64) int {
	const hintLimit = 1 << 16
	if tail > hintLimit {
		return hintLimit
	}
	return int(tail)
}
