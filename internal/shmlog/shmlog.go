// Package shmlog implements the TEE-Perf shared-memory log (Figure 2 of the
// paper): a fixed-capacity, append-only event log designed to be mapped into
// untrusted host memory and written lock-free from inside a trusted
// execution environment.
//
// The log consists of a padded header followed by one or more entry
// segments (shards). Writers reserve entry slots with a single atomic
// fetch-and-add on their segment's tail index — one slot (Append) or a
// contiguous block of slots (Reserve/ReserveShard, the batched fast path) —
// and then own those slots exclusively, so no locks are required and
// per-thread event order is preserved (the property the analyzer relies
// on).
//
// Since format version 3 the entry region is sharded: each segment owns an
// independent tail word on its own 64-byte cache line, and threads are
// hashed onto segments by thread ID, so writer threads on different shards
// never touch the same line. A single-shard log degenerates to the
// version-2 behaviour (one tail, one entry region) with one extra segment
// header between the main header and the entries:
//
//	line 0 (bytes   0..63):  magic, version, pid, capacity, profiler addr,
//	                         creator pid, attach gen, shard count
//	                         — written once at setup, read-mostly.
//	line 1 (bytes  64..127): flags plus the adaptive-probe control words —
//	                         sample period, control generation, thread and
//	                         address deny masks — read by every probe,
//	                         written rarely by the controlling side.
//	line 2 (bytes 128..191): legacy tail slot (persisted total), dropped
//	                         counter, masked-event counter, current batch
//	                         size (cold: touched only on overflow or by
//	                         the batch controller).
//	line 3 (bytes 192..255): counter — the software-counter thread's
//	                         tight-loop increment word.
//	byte 256: segment 0 header (one cache line: tail, capacity, dropped),
//	          then segment 0's entries, then segment 1's header, ...
//
// Per-segment capacities are padded so every segment header — and therefore
// every tail word — starts on a 64-byte cache-line boundary.
//
// Readers merge the segments back into one stream: Entry/Entries/the
// Cursor enumerate reserved slots segment-major (each thread lives on
// exactly one segment, so per-thread order is intact), and Read merges
// persisted segments by the global counter value, so analyzer output is
// byte-identical to a single-segment recording of the same events.
//
// Version-1 (packed 8-word header) and version-2 (padded header, single
// unsharded entry region) streams are decode-only: Read still accepts them
// and normalizes to the in-memory layout.
//
// On Linux and macOS the same layout can back a real cross-process shared
// region: CreateFile / OpenFile lay the header and segments over a
// MAP_SHARED file mapping, so a recorder process and the instrumented
// application each map the file and communicate through the header's
// handshake words (creator PID, attach generation, recorder-ready flag)
// exactly as the paper's Stage 2 native recorder shares memory with the
// TEE. Everything above the word array — probes, cursors, recovery — works
// unchanged on a mapped log.
package shmlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Layout constants. The on-disk representation is little-endian 64-bit
// words matching the in-memory word layout exactly.
const (
	// HeaderWords is the number of 64-bit words in the version-2/3 main
	// header: four 64-byte cache lines.
	HeaderWords = 32
	// HeaderWordsV1 is the number of header words in the legacy version-1
	// format (decode-only support).
	HeaderWordsV1 = 8
	// SegHeaderWords is the number of 64-bit words in a version-3 segment
	// header (one cache line): tail, capacity, dropped, five reserved.
	SegHeaderWords = 8
	// EntryWords is the number of 64-bit words per log entry:
	// word 0: kind bit (bit 63) | counter value (bits 62..0)
	// word 1: call/return target address
	// word 2: thread ID (stored last: the commit marker)
	EntryWords = 3

	// HeaderSize, HeaderSizeV1, SegHeaderSize and EntrySize are the byte
	// sizes of the corresponding structures in the persisted format.
	HeaderSize    = HeaderWords * 8
	HeaderSizeV1  = HeaderWordsV1 * 8
	SegHeaderSize = SegHeaderWords * 8
	EntrySize     = EntryWords * 8

	// Magic identifies a persisted TEE-Perf log ("TEEPERF1").
	Magic uint64 = 0x5445455045524631

	// Version is the current log structure version: the sharded-segment
	// layout. VersionV2 (padded header, single flat entry region) and
	// VersionV1 (packed header) are legacy formats, still decoded by Read.
	Version   uint64 = 3
	VersionV2 uint64 = 2
	VersionV1 uint64 = 1

	// MaxShards bounds the shard count of one log. The probe runtime hashes
	// thread IDs onto shards, so more shards than plausible threads is
	// pure memory overhead; the bound also caps what decoders trust from a
	// (possibly corrupt) header.
	MaxShards = 1 << 12
)

// Header word indexes (version-2/3 main-header layout). The mutable words —
// flags, counter — each sit on their own cache line (8 words apart); the
// remaining words of each line are reserved padding, persisted as zero.
//
// File-backed (mmap) logs additionally use three handshake slots for the
// cross-process attach protocol: the creator PID and attach generation live
// in line 0 (written at setup / bumped once per attach), the recorder-ready
// flag is a bit in the flags word, and the dropped-event counter sits on
// line 2 (drops happen on the reservation path, and only when a segment is
// already full). All four persist as zero through WriteTo — they are
// runtime coordination state, not part of the recorded measurement.
//
// Since version 3 the per-writer tails live in the segment headers;
// wordTail only carries the total reserved length in persisted streams
// (zero in live logs).
const (
	wordMagic        = 0
	wordVersion      = 1
	wordPID          = 2
	wordCapacity     = 3
	wordProfilerAddr = 4
	wordCreatorPID   = 5 // attach handshake: PID of the creating process
	wordAttachGen    = 6 // attach handshake: bumped once per OpenFile
	wordShards       = 7 // segment (shard) count, >= 1
	wordFlags        = 8 // cache line 1

	// Adaptive-probe control words. They share cache line 1 with the flags
	// word, which every probe already loads per event, so the per-event
	// generation check is effectively free. The controlling side (recorder,
	// monitor, fleet agent) writes the value words first and bumps the
	// generation word last; probes reread the values when they observe the
	// generation change (see Controls). All deny semantics: zero means
	// "record everything", so legacy writers and period-1 logs behave
	// byte-identically to pre-sampling builds.
	wordSamplePeriod = 9  // record 1-in-N call pairs; 0 and 1 mean every pair
	wordCtlGen       = 10 // control generation: bumped after every mask write
	wordThreadMask   = 11 // deny bitmask over (tid-1)%64; all-ones stops all threads
	wordAddrMaskLo   = 12 // deny address range [lo, hi): suppressed when hi > lo
	wordAddrMaskHi   = 13

	wordTail      = 16 // v2 tail / v3 persisted total (cache line 2)
	wordDropped   = 17 // drop counter (cold: touched only when full)
	wordMasked    = 18 // events suppressed by sampling/masks (cold, flushed in bulk)
	wordBatchSize = 19 // live batch size mirrored by the adaptive controller
	wordCounter   = 24 // cache line 3
)

// Segment-header word offsets (relative to the segment's first word). Each
// live segment tail is fetch-and-added by the writers hashed onto that
// segment; capacity is written once at setup; dropped counts events lost
// because this segment was full.
const (
	segWordTail     = 0
	segWordCapacity = 1
	segWordDropped  = 2
)

// Version-1 header word indexes (decode-only).
const (
	v1WordFlags = iota
	v1WordVersion
	v1WordPID
	v1WordCapacity
	v1WordTail
	v1WordProfilerAddr
	v1WordCounter
	v1WordMagic
)

// Flag bits stored in the header flags word. Flags may be toggled while the
// measured application runs; all access is atomic so toggling introduces no
// critical section into the measured execution.
const (
	// FlagActive enables recording. Probes drop events while it is clear.
	FlagActive uint64 = 1 << 0
	// FlagMultithread marks a log produced by a multi-threaded run.
	FlagMultithread uint64 = 1 << 1

	// EventCall / EventReturn select which event kinds are recorded.
	EventCall   uint64 = 1 << 2
	EventReturn uint64 = 1 << 3

	// FlagRecorderReady is the attach-handshake bit: the hosting recorder
	// process sets it once its counter thread is running, so an attaching
	// application knows the shared counter word is live before it starts
	// sampling (cross-process mode).
	FlagRecorderReady uint64 = 1 << 4

	// FlagSampled marks a log recorded (at least partly) with a sampling
	// period above 1: folded weights must be scaled by the period word to
	// estimate the full profile. Introduced with format v3's control words;
	// unknown to v1/v2 decoders.
	FlagSampled uint64 = 1 << 5

	// EventMask covers all event-selection bits.
	EventMask = EventCall | EventReturn
)

// TombstoneTID is the thread-ID word of a reserved slot that was released
// without being committed (a batched writer's unused trailing slots).
// Readers dismiss tombstoned slots. Real thread IDs start at 1 and are
// assigned sequentially, so neither 0 (in-flight) nor TombstoneTID ever
// collides with a committed entry.
const TombstoneTID = ^uint64(0)

// Kind distinguishes call and return entries.
type Kind uint8

// Entry kinds. KindCall is recorded by the function-entry probe,
// KindReturn by the function-exit probe.
const (
	KindCall Kind = iota + 1
	KindReturn
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

const (
	kindBit     = uint64(1) << 63
	counterMask = kindBit - 1
)

// bulkBufSize is the scratch-buffer size shared by WriteTo and Read: big
// enough to amortize Write/Read syscalls, small enough to stay cache- and
// stack-friendly. It is a multiple of the direct-I/O block size so the
// double-buffered writer can hand whole buffers to an O_DIRECT file.
const bulkBufSize = 64 * 1024

// Sync selects the slot-reservation strategy. The paper designs the log for
// lock-free atomic access but explicitly does not rely on atomics being
// available; SyncMutex is the portable fallback (and the A1 ablation
// baseline).
type Sync int

// Synchronization modes.
const (
	SyncAtomic Sync = iota + 1
	SyncMutex
)

// Errors returned by log operations.
var (
	// ErrFull is returned by Append once all slots are used.
	ErrFull = errors.New("shmlog: log full")
	// ErrInactive is returned by Append when FlagActive is clear.
	ErrInactive = errors.New("shmlog: recording inactive")
	// ErrFiltered is returned by Append when the entry kind is masked out.
	ErrFiltered = errors.New("shmlog: event kind filtered")
	// ErrBadMagic is returned when decoding a non-TEE-Perf stream.
	ErrBadMagic = errors.New("shmlog: bad magic")
	// ErrBadVersion is returned when decoding an unsupported log version.
	ErrBadVersion = errors.New("shmlog: unsupported log version")
	// ErrBadShards is returned when a version-3 stream carries an
	// implausible shard count.
	ErrBadShards = errors.New("shmlog: implausible shard count")
	// ErrTruncated is returned when a persisted log ends prematurely.
	ErrTruncated = errors.New("shmlog: truncated log")
	// ErrEmptyLog is returned by Read for a zero-byte input. It wraps
	// ErrTruncated, so existing errors.Is(err, ErrTruncated) checks keep
	// matching.
	ErrEmptyLog = fmt.Errorf("%w: empty (zero-byte) input", ErrTruncated)
	// ErrTruncatedHeader is returned by Read when the input ends inside
	// the header — shorter than any valid log can be. It wraps
	// ErrTruncated.
	ErrTruncatedHeader = fmt.Errorf("%w: incomplete header", ErrTruncated)
	// ErrRange is returned when an entry index is out of bounds.
	ErrRange = errors.New("shmlog: entry index out of range")
	// ErrMmapUnsupported is returned by CreateFile/OpenFile on platforms
	// without shared file-backed mappings; callers fall back to the
	// in-process heap log.
	ErrMmapUnsupported = errors.New("shmlog: file-backed shared mapping not supported on this platform")
	// ErrMapped is returned for operations invalid on a file-backed log
	// (e.g. unsupported sync modes).
	ErrMapped = errors.New("shmlog: invalid operation on mapped log")
)

// Entry is one decoded log record (Figure 2 (b)).
type Entry struct {
	// Kind reports whether the probe observed a call or a return.
	Kind Kind
	// Counter is the 63-bit counter value sampled by the probe.
	Counter uint64
	// Addr is the call/return target address (a virtual text address
	// resolvable through the symbol table).
	Addr uint64
	// ThreadID identifies the application thread that wrote the entry.
	ThreadID uint64
}

// Log is the shared-memory log region. It is safe for concurrent use by any
// number of writers and readers.
type Log struct {
	words []uint64
	sync  Sync
	mu    sync.Mutex // used only in SyncMutex mode

	// shards/segCap mirror the header's shard count and the (uniform)
	// per-segment capacity; they are fixed at setup and cached here so the
	// hot paths never re-derive them from header words.
	shards int
	segCap int

	// srcVersion is the format version the log was decoded from (Version
	// for logs created by New).
	srcVersion uint64

	// mapped/file/path are set only for file-backed logs (CreateFile /
	// OpenFile): words then aliases the MAP_SHARED byte region, so every
	// atomic store is visible to other processes mapping the same file.
	mapped []byte
	file   *os.File
	path   string

	// readOnly marks an observer mapping (ObserveFile): PROT_READ only, so
	// any store to the shared region would fault. Observers must restrict
	// themselves to loads — cursors, header accessors, stats.
	readOnly bool
}

// Option configures New.
type Option interface {
	apply(*options)
}

type options struct {
	pid          uint64
	version      uint64
	profilerAddr uint64
	sync         Sync
	flags        uint64
	shards       int
	samplePeriod uint64
}

type pidOption uint64

func (o pidOption) apply(opts *options) { opts.pid = uint64(o) }

// WithPID records the process ID of the profiled application in the header
// so the analyzer can tell multiple runs apart.
func WithPID(pid uint64) Option { return pidOption(pid) }

type profilerAddrOption uint64

func (o profilerAddrOption) apply(opts *options) { opts.profilerAddr = uint64(o) }

// WithProfilerAddr records the in-memory address of the well-known profiler
// anchor function, letting the analyzer compute the relocation offset of
// position-independent code.
func WithProfilerAddr(addr uint64) Option { return profilerAddrOption(addr) }

type syncOption Sync

func (o syncOption) apply(opts *options) { opts.sync = Sync(o) }

// WithSync selects the slot reservation strategy (default SyncAtomic).
func WithSync(s Sync) Option { return syncOption(s) }

type flagsOption uint64

func (o flagsOption) apply(opts *options) { opts.flags = uint64(o) }

// WithFlags sets the initial header flags. The default enables recording of
// both calls and returns with the log active.
func WithFlags(flags uint64) Option { return flagsOption(flags) }

type versionOption uint64

func (o versionOption) apply(opts *options) { opts.version = uint64(o) }

// WithVersion overrides the log structure version (testing only).
func WithVersion(v uint64) Option { return versionOption(v) }

type shardsOption int

func (o shardsOption) apply(opts *options) { opts.shards = int(o) }

type samplePeriodOption uint64

func (o samplePeriodOption) apply(opts *options) { opts.samplePeriod = uint64(o) }

// WithSamplePeriod sets the initial sampling period: probes record 1-in-n
// call pairs. 0 and 1 both mean "record every pair" (the default) and leave
// the log byte-identical to an unsampled recording; n > 1 additionally sets
// FlagSampled so analyzers know to scale folded weights by n.
func WithSamplePeriod(n uint64) Option { return samplePeriodOption(n) }

// WithShards splits the entry region into n independent segments, each with
// its own cache-line-aligned tail, and hashes writer threads onto them by
// thread ID — removing the single contended fetch-and-add word that caps
// multi-writer append throughput. The default (n = 1) keeps one segment.
//
// The per-segment capacity is the requested capacity divided by n, rounded
// up so every segment stays cache-line aligned; Capacity reports the actual
// (possibly rounded-up) total.
func WithShards(n int) Option { return shardsOption(n) }

// segCapFor splits capacity over shards: ceil-divided, then padded to a
// multiple of 8 entries so each segment's byte length (SegHeaderSize +
// segCap*EntrySize) is a multiple of 64 — keeping every segment header, and
// therefore every tail word, on its own cache-line boundary. Single-shard
// logs skip the padding: nothing follows the only segment, and tests and
// callers rely on New(n) holding exactly n entries.
func segCapFor(capacity, shards int) int {
	segCap := (capacity + shards - 1) / shards
	if shards > 1 {
		segCap = (segCap + 7) &^ 7
	}
	return segCap
}

// New allocates a log with room for capacity entries.
func New(capacity int, opts ...Option) (*Log, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("shmlog: capacity must be positive, got %d", capacity)
	}
	o := options{
		version: Version,
		sync:    SyncAtomic,
		flags:   FlagActive | EventCall | EventReturn,
		shards:  1,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.sync != SyncAtomic && o.sync != SyncMutex {
		return nil, fmt.Errorf("shmlog: unknown sync mode %d", o.sync)
	}
	if o.shards < 1 || o.shards > MaxShards {
		return nil, fmt.Errorf("%w: %d (want 1..%d)", ErrBadShards, o.shards, MaxShards)
	}
	segCap := segCapFor(capacity, o.shards)
	total := segCap * o.shards
	l := &Log{
		words:      make([]uint64, HeaderWords+o.shards*(SegHeaderWords+segCap*EntryWords)),
		sync:       o.sync,
		shards:     o.shards,
		segCap:     segCap,
		srcVersion: o.version,
	}
	l.words[wordMagic] = Magic
	l.words[wordVersion] = o.version
	l.words[wordPID] = o.pid
	l.words[wordCapacity] = uint64(total)
	l.words[wordProfilerAddr] = o.profilerAddr
	l.words[wordShards] = uint64(o.shards)
	l.words[wordFlags] = o.flags
	l.words[wordSamplePeriod] = o.samplePeriod
	if o.samplePeriod > 1 {
		l.words[wordFlags] |= FlagSampled
	}
	for s := 0; s < o.shards; s++ {
		l.words[l.segHeaderIdx(s)+segWordCapacity] = uint64(segCap)
	}
	return l, nil
}

// segWords is the stride of one segment (header plus entries) in words.
func (l *Log) segWords() int { return SegHeaderWords + l.segCap*EntryWords }

// segHeaderIdx returns the word index of segment s's header.
func (l *Log) segHeaderIdx(s int) int { return HeaderWords + s*l.segWords() }

// segEntryIdx returns the word index of local entry slot i of segment s.
func (l *Log) segEntryIdx(s, i int) int {
	return l.segHeaderIdx(s) + SegHeaderWords + i*EntryWords
}

// slotWordIdx returns the word index of the global slot id (segment-strided:
// slot = segment*segCap + local).
func (l *Log) slotWordIdx(slot uint64) int {
	if l.shards == 1 {
		return HeaderWords + SegHeaderWords + int(slot)*EntryWords
	}
	s := int(slot) / l.segCap
	return l.segEntryIdx(s, int(slot)%l.segCap)
}

// segTail returns segment s's raw tail word.
func (l *Log) segTail(s int) uint64 {
	return atomic.LoadUint64(&l.words[l.segHeaderIdx(s)+segWordTail])
}

// segLen returns segment s's reserved length, clamped to the segment
// capacity.
func (l *Log) segLen(s int) int {
	t := l.segTail(s)
	if c := uint64(l.segCap); t > c {
		t = c
	}
	return int(t)
}

// Shards returns the number of independent entry segments.
func (l *Log) Shards() int { return l.shards }

// ShardOf returns the segment a writer thread with the given ID reserves
// from. The mapping is deterministic — a thread always lands on the same
// segment — which is what keeps per-thread order intact under the
// segment-major readers.
func (l *Log) ShardOf(tid uint64) int {
	if l.shards == 1 {
		return 0
	}
	return int(tid % uint64(l.shards))
}

// SegmentStat is one segment's live accounting, surfaced per shard by the
// monitor and the fleet agent.
type SegmentStat struct {
	// Tail is the segment's raw tail word (may transiently exceed Capacity
	// by in-flight overshoot under overload; see ReserveShard).
	Tail uint64
	// Capacity is the segment's slot count.
	Capacity uint64
	// Dropped counts events lost because this segment was full.
	Dropped uint64
}

// SegmentStats snapshots every segment's tail, capacity and drop counter.
func (l *Log) SegmentStats() []SegmentStat {
	out := make([]SegmentStat, l.shards)
	for s := 0; s < l.shards; s++ {
		h := l.segHeaderIdx(s)
		out[s] = SegmentStat{
			Tail:     atomic.LoadUint64(&l.words[h+segWordTail]),
			Capacity: atomic.LoadUint64(&l.words[h+segWordCapacity]),
			Dropped:  atomic.LoadUint64(&l.words[h+segWordDropped]),
		}
	}
	return out
}

// Capacity returns the maximum number of entries the log can hold. The
// capacity is fixed at setup and immutable afterwards (per the paper), but
// it is read on the Append fast path next to atomically-written words, so
// the load is atomic to keep the race detector (and weaker memory models)
// satisfied.
func (l *Log) Capacity() int { return int(atomic.LoadUint64(&l.words[wordCapacity])) }

// PID returns the recorded process ID.
func (l *Log) PID() uint64 { return atomic.LoadUint64(&l.words[wordPID]) }

// SetPID records the process ID of the profiled application. In
// cross-process mode the recorder creates the mapping before the
// application exists, so the attaching process stamps its own PID here.
func (l *Log) SetPID(pid uint64) { atomic.StoreUint64(&l.words[wordPID], pid) }

// Version returns the log structure version of the in-memory layout.
func (l *Log) Version() uint64 { return atomic.LoadUint64(&l.words[wordVersion]) }

// SourceVersion returns the format version the log was decoded from: for
// logs decoded by Read it may be VersionV1 or VersionV2; for logs created
// by New it is the configured (normally current) version.
func (l *Log) SourceVersion() uint64 { return l.srcVersion }

// ProfilerAddr returns the recorded profiler anchor address.
func (l *Log) ProfilerAddr() uint64 { return atomic.LoadUint64(&l.words[wordProfilerAddr]) }

// SetProfilerAddr records the profiler anchor address. It is written by the
// recorder during setup, before any probes run.
func (l *Log) SetProfilerAddr(addr uint64) { atomic.StoreUint64(&l.words[wordProfilerAddr], addr) }

// Flags returns the current header flags (atomic).
func (l *Log) Flags() uint64 { return atomic.LoadUint64(&l.words[wordFlags]) }

// SetFlag sets the given flag bits atomically while the application runs.
//
// Go 1.22 has no atomic.OrUint64 (it arrived in Go 1.23), so a read-
// modify-write of the flags word must be a CompareAndSwap retry loop. Flag
// toggles come from a single control goroutine in practice, so the first
// CAS — or no write at all, when the bits are already set — is the common
// case; the loop only spins under a concurrent toggle.
func (l *Log) SetFlag(bits uint64) {
	old := atomic.LoadUint64(&l.words[wordFlags])
	if old&bits == bits {
		return // already set: no write, no cache-line bounce
	}
	if atomic.CompareAndSwapUint64(&l.words[wordFlags], old, old|bits) {
		return // uncontended single-caller fast path
	}
	for {
		old = atomic.LoadUint64(&l.words[wordFlags])
		if old&bits == bits {
			return
		}
		if atomic.CompareAndSwapUint64(&l.words[wordFlags], old, old|bits) {
			return
		}
	}
}

// ClearFlag clears the given flag bits atomically. Same CAS-loop rationale
// as SetFlag (no atomic.AndUint64 before Go 1.23).
func (l *Log) ClearFlag(bits uint64) {
	old := atomic.LoadUint64(&l.words[wordFlags])
	if old&bits == 0 {
		return // already clear
	}
	if atomic.CompareAndSwapUint64(&l.words[wordFlags], old, old&^bits) {
		return
	}
	for {
		old = atomic.LoadUint64(&l.words[wordFlags])
		if old&bits == 0 {
			return
		}
		if atomic.CompareAndSwapUint64(&l.words[wordFlags], old, old&^bits) {
			return
		}
	}
}

// Active reports whether recording is enabled.
func (l *Log) Active() bool { return l.Flags()&FlagActive != 0 }

// SetActive toggles the active flag.
func (l *Log) SetActive(active bool) {
	if active {
		l.SetFlag(FlagActive)
	} else {
		l.ClearFlag(FlagActive)
	}
}

// CreatorPID returns the PID of the process that created a file-backed log
// (zero for heap logs). An attaching process uses it to confirm it is
// talking to a live recorder, not a stale file.
func (l *Log) CreatorPID() uint64 { return atomic.LoadUint64(&l.words[wordCreatorPID]) }

// AttachGen returns the attach generation: how many times OpenFile has
// mapped this log. The creator observes it rise when the application
// attaches; tests assert on it.
func (l *Log) AttachGen() uint64 { return atomic.LoadUint64(&l.words[wordAttachGen]) }

// Ready reports whether the hosting recorder has marked its counter thread
// live (FlagRecorderReady).
func (l *Log) Ready() bool { return l.Flags()&FlagRecorderReady != 0 }

// SetReady toggles the recorder-ready handshake bit. The hosting recorder
// sets it in Start (after the counter thread is running) and clears it in
// Stop.
func (l *Log) SetReady(ready bool) {
	if ready {
		l.SetFlag(FlagRecorderReady)
	} else {
		l.ClearFlag(FlagRecorderReady)
	}
}

// WaitReady blocks until the recorder-ready bit is set or the timeout
// elapses, polling the shared flags word. It returns true when the bit was
// observed set. An attaching application calls this before sampling so its
// first events carry live counter values.
func (l *Log) WaitReady(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if l.Ready() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Controls is a consistent snapshot of the adaptive-probe control words:
// the sampling period and the deny masks, tagged with the generation they
// were read at. All fields use deny semantics — the zero value records
// everything.
type Controls struct {
	// Gen is the control generation the snapshot was taken at. Probes cache
	// it and reread the snapshot when the header's generation differs.
	Gen uint64
	// Period is the sampling period: record 1-in-Period call pairs. 0 and 1
	// both mean every pair.
	Period uint64
	// ThreadMask is a deny bitmask over (tid-1)%64: a set bit suppresses
	// recording for threads hashing onto it. All-ones stops every thread.
	ThreadMask uint64
	// AddrLo/AddrHi deny the address range [AddrLo, AddrHi); the range is
	// active only when AddrHi > AddrLo.
	AddrLo, AddrHi uint64
}

// Denies reports whether the snapshot suppresses the given thread/address.
func (c Controls) Denies(tid, addr uint64) bool {
	if c.ThreadMask != 0 && c.ThreadMask&(1<<((tid-1)%64)) != 0 {
		return true
	}
	return c.AddrHi > c.AddrLo && addr >= c.AddrLo && addr < c.AddrHi
}

// CtlGen returns the current control generation. Probes compare it against
// their cached snapshot's Gen on every event (the word shares a cache line
// with flags, so the extra load is effectively free) and call Controls again
// when it moved.
func (l *Log) CtlGen() uint64 { return atomic.LoadUint64(&l.words[wordCtlGen]) }

// Controls reads a consistent snapshot of the control words using the
// generation handshake: read the generation, read the values, reread the
// generation, and retry if a writer bumped it in between. Writers bump the
// generation only after all value words are stored, so a stable generation
// brackets a consistent value set.
func (l *Log) Controls() Controls {
	for {
		gen := atomic.LoadUint64(&l.words[wordCtlGen])
		c := Controls{
			Gen:        gen,
			Period:     atomic.LoadUint64(&l.words[wordSamplePeriod]),
			ThreadMask: atomic.LoadUint64(&l.words[wordThreadMask]),
			AddrLo:     atomic.LoadUint64(&l.words[wordAddrMaskLo]),
			AddrHi:     atomic.LoadUint64(&l.words[wordAddrMaskHi]),
		}
		if atomic.LoadUint64(&l.words[wordCtlGen]) == gen {
			return c
		}
	}
}

// bumpCtlGen publishes a control-word change: value stores above must
// already be visible (they are atomic stores on the same cache line).
func (l *Log) bumpCtlGen() { atomic.AddUint64(&l.words[wordCtlGen], 1) }

// SamplePeriod returns the live sampling period word (0 or 1: every pair).
func (l *Log) SamplePeriod() uint64 { return atomic.LoadUint64(&l.words[wordSamplePeriod]) }

// SetSamplePeriod changes the sampling period live: probes pick it up on the
// next generation check. Periods above 1 set FlagSampled (sticky — once any
// part of the log was sampled, analyzers must scale); 0 and 1 restore
// record-everything without clearing the flag.
func (l *Log) SetSamplePeriod(n uint64) {
	atomic.StoreUint64(&l.words[wordSamplePeriod], n)
	if n > 1 {
		l.SetFlag(FlagSampled)
	}
	l.bumpCtlGen()
}

// ThreadMask returns the live thread deny-mask word.
func (l *Log) ThreadMask() uint64 { return atomic.LoadUint64(&l.words[wordThreadMask]) }

// SetThreadMask replaces the thread deny-mask: bit (tid-1)%64 suppresses the
// matching threads, all-ones stops every thread, zero records everything.
func (l *Log) SetThreadMask(mask uint64) {
	atomic.StoreUint64(&l.words[wordThreadMask], mask)
	l.bumpCtlGen()
}

// AddrMask returns the live address deny-range [lo, hi) (inactive unless
// hi > lo).
func (l *Log) AddrMask() (lo, hi uint64) {
	return atomic.LoadUint64(&l.words[wordAddrMaskLo]), atomic.LoadUint64(&l.words[wordAddrMaskHi])
}

// SetAddrMask replaces the address deny-range: events whose target address
// falls in [lo, hi) are suppressed. lo == hi (e.g. both zero) disables the
// range.
func (l *Log) SetAddrMask(lo, hi uint64) {
	atomic.StoreUint64(&l.words[wordAddrMaskLo], lo)
	atomic.StoreUint64(&l.words[wordAddrMaskHi], hi)
	l.bumpCtlGen()
}

// CopyControls carries another log's control words (sampling period and
// deny masks) into this one with a single generation bump — the rotation
// path uses it so a live throttle survives segment rotation.
func (l *Log) CopyControls(from *Log) {
	c := from.Controls()
	atomic.StoreUint64(&l.words[wordSamplePeriod], c.Period)
	atomic.StoreUint64(&l.words[wordThreadMask], c.ThreadMask)
	atomic.StoreUint64(&l.words[wordAddrMaskLo], c.AddrLo)
	atomic.StoreUint64(&l.words[wordAddrMaskHi], c.AddrHi)
	if c.Period > 1 {
		l.SetFlag(FlagSampled)
	}
	l.bumpCtlGen()
}

// Masked returns how many events probes suppressed because of the sampling
// period or a deny mask. Like the drop counter it lives in a shared header
// word so cross-process observers see it; probes accumulate locally and
// flush in bulk, so the value trails the truth by at most one batch per
// thread.
func (l *Log) Masked() uint64 { return atomic.LoadUint64(&l.words[wordMasked]) }

// NoteMasked adds n to the shared masked-event counter.
func (l *Log) NoteMasked(n uint64) {
	if n != 0 {
		atomic.AddUint64(&l.words[wordMasked], n)
	}
}

// BatchSize returns the live batch size mirrored into the header by the
// adaptive batch controller (zero when no controller ever wrote it).
func (l *Log) BatchSize() uint64 { return atomic.LoadUint64(&l.words[wordBatchSize]) }

// SetBatchSize mirrors the probe runtime's current batch size into the
// header so external observers (the fleet agent's read-only mapping) can
// export it without an in-process channel.
func (l *Log) SetBatchSize(n uint64) { atomic.StoreUint64(&l.words[wordBatchSize], n) }

// ShardFill returns one segment's fill fraction in [0, 1] (reserved slots
// over capacity). The adaptive batch controller samples it on the
// reservation path.
func (l *Log) ShardFill(shard int) float64 {
	if shard < 0 || shard >= l.shards || l.segCap == 0 {
		return 0
	}
	return float64(l.segLen(shard)) / float64(l.segCap)
}

// Mapped reports whether the log is a file-backed shared mapping.
func (l *Log) Mapped() bool { return l.mapped != nil }

// ReadOnly reports whether the log is a read-only observer mapping
// (ObserveFile). Mutating a read-only mapping faults; callers that might
// hold either kind check here first.
func (l *Log) ReadOnly() bool { return l.readOnly }

// Path returns the backing file path of a mapped log ("" for heap logs).
func (l *Log) Path() string { return l.path }

// Msync flushes the mapped region to the backing file (MS_SYNC). It is a
// no-op for heap logs and read-only observer mappings (which have nothing
// of their own to flush).
func (l *Log) Msync() error {
	if l.mapped == nil || l.readOnly {
		return nil
	}
	return msync(l.mapped)
}

// Close unmaps a file-backed log and closes the backing file. The words
// slice is repointed at a zeroed region covering the header and the segment
// headers (with zero segment capacity) first, so a straggler touching the
// log after Close reads harmless zeros (inactive, empty) instead of
// faulting on unmapped memory. Heap logs are unaffected. Close is not safe
// to call concurrently with writers still appending.
func (l *Log) Close() error {
	if l.mapped == nil {
		return nil
	}
	l.segCap = 0
	l.words = make([]uint64, HeaderWords+l.shards*SegHeaderWords)
	mapped := l.mapped
	l.mapped = nil
	err := munmap(mapped)
	if l.file != nil {
		if cerr := l.file.Close(); err == nil {
			err = cerr
		}
		l.file = nil
	}
	return err
}

// AddCounter atomically advances the header counter word by delta and
// returns the new value. The software counter thread calls this in its
// tight loop; since format v2 the counter word owns a whole cache line, so
// the loop no longer contends with tail reservations or flag reads.
func (l *Log) AddCounter(delta uint64) uint64 {
	return atomic.AddUint64(&l.words[wordCounter], delta)
}

// LoadCounter atomically reads the header counter word.
func (l *Log) LoadCounter() uint64 {
	return atomic.LoadUint64(&l.words[wordCounter])
}

// Tail returns the summed raw tail indexes of all segments. Reservation
// clamps each segment tail back to the segment capacity when writers race
// past the end, so the sum exceeds Capacity only transiently (by at most
// one in-flight batch per concurrently overflowing writer); Len clamps
// per segment.
func (l *Log) Tail() uint64 {
	var t uint64
	for s := 0; s < l.shards; s++ {
		t += l.segTail(s)
	}
	return t
}

// Len returns the number of reserved entry slots, summed over segments and
// clamped to each segment's capacity. With single-slot writers every
// reserved slot is committed; with batched writers (Reserve) reserved slots
// may still be in flight (zero thread-ID word) or released (TombstoneTID) —
// readers dismiss those.
func (l *Log) Len() int {
	n := 0
	for s := 0; s < l.shards; s++ {
		n += l.segLen(s)
	}
	return n
}

// Dropped returns how many entries were rejected because the log was full.
// The count lives in header word 17 (not a heap field) so that in
// cross-process mode the hosting recorder sees drops suffered by the
// attached application.
func (l *Log) Dropped() uint64 { return atomic.LoadUint64(&l.words[wordDropped]) }

// NoteDropped adds n to the global drop counter. Batched writers call it
// (via NoteDroppedShard) when an event arrives and no slot can be reserved,
// so drop accounting matches the single-slot Append path.
func (l *Log) NoteDropped(n uint64) { atomic.AddUint64(&l.words[wordDropped], n) }

// NoteDroppedShard charges n dropped events to one segment's counter as
// well as the global one, so per-shard overload is observable (the
// monitor's per-segment drop series).
func (l *Log) NoteDroppedShard(shard int, n uint64) {
	if shard >= 0 && shard < l.shards {
		atomic.AddUint64(&l.words[l.segHeaderIdx(shard)+segWordDropped], n)
	}
	atomic.AddUint64(&l.words[wordDropped], n)
}

// Reserve claims up to n contiguous entry slots from segment 0 — the whole
// log when unsharded. Sharded writers use ReserveShard with their thread's
// ShardOf segment; Reserve remains the single-segment compatibility path
// (and the recovery rebuild path).
func (l *Log) Reserve(n int) (start uint64, count int) {
	return l.ReserveShard(0, n)
}

// ReserveShard claims up to n contiguous entry slots in the given segment
// with a single fetch-and-add on that segment's tail, returning the first
// global slot id and the number of usable slots (0 when the segment is
// full). The caller owns slots [start, start+count) exclusively and must
// either Commit or Release every one of them; a slot left untouched is
// indistinguishable from an in-flight write and is dismissed by readers.
//
// When the fetch-and-add overshoots the segment capacity — the segment is
// full, or the batch straddles the end — the tail is parked back at the
// capacity with a CAS loop, so the shared tail word stays meaningful under
// sustained overload (readers, FillPercent and lenient recovery all clamp
// against capacity) instead of growing without bound. Between a writer's
// overshoot and its park, concurrent readers can observe the tail above
// the capacity by at most the sum of in-flight reservation batches.
func (l *Log) ReserveShard(shard, n int) (start uint64, count int) {
	if n <= 0 || shard < 0 || shard >= l.shards {
		return 0, 0
	}
	tailIdx := l.segHeaderIdx(shard) + segWordTail
	segCap := uint64(l.segCap)
	var local uint64
	if l.sync == SyncAtomic {
		local = atomic.AddUint64(&l.words[tailIdx], uint64(n)) - uint64(n)
		if local+uint64(n) > segCap {
			// Overload: park the tail at the capacity boundary. The CAS
			// only ever moves the word down to segCap — never below — so
			// reservations that did land usable slots stay accounted.
			for {
				t := atomic.LoadUint64(&l.words[tailIdx])
				if t <= segCap || atomic.CompareAndSwapUint64(&l.words[tailIdx], t, segCap) {
					break
				}
			}
		}
	} else {
		// The stores stay atomic even under the mutex so concurrent
		// atomic readers (Tail, Len, cursors) never mix a plain write
		// with an atomic load on the same word. The mutex serializes
		// reservations, so the tail can be clamped exactly — it never
		// overshoots at all in this mode.
		l.mu.Lock()
		local = atomic.LoadUint64(&l.words[tailIdx])
		end := local + uint64(n)
		if end > segCap {
			end = segCap
		}
		if end > local {
			atomic.StoreUint64(&l.words[tailIdx], end)
		}
		l.mu.Unlock()
	}
	if local >= segCap {
		return uint64(shard)*segCap + segCap, 0
	}
	usable := segCap - local
	if usable > uint64(n) {
		usable = uint64(n)
	}
	return uint64(shard)*segCap + local, int(usable)
}

// Commit writes e into a reserved slot the caller owns exclusively.
// Counter values are truncated to 63 bits; bit 63 carries the kind. The
// thread-ID word is stored atomically last and doubles as the commit
// marker: thread IDs are never zero (the probe runtime assigns IDs starting
// at 1), so a concurrent tailing reader that observes a non-zero,
// non-tombstone thread ID is guaranteed to see the final counter and
// address words too.
func (l *Log) Commit(slot uint64, e Entry) {
	base := l.slotWordIdx(slot)
	word0 := e.Counter & counterMask
	if e.Kind == KindReturn {
		word0 |= kindBit
	}
	atomic.StoreUint64(&l.words[base], word0)
	atomic.StoreUint64(&l.words[base+1], e.Addr)
	atomic.StoreUint64(&l.words[base+2], e.ThreadID)
}

// Release marks a reserved slot as permanently unused (tombstone). Batched
// writers release the trailing slots of a partially-filled block at flush,
// rotation or stop, so readers can tell "never coming" from "still in
// flight".
func (l *Log) Release(slot uint64) {
	base := l.slotWordIdx(slot)
	atomic.StoreUint64(&l.words[base+2], TombstoneTID)
}

// Append records one entry. It checks the active flag and the event mask,
// reserves a slot in the segment the entry's thread hashes onto
// (fetch-and-add in SyncAtomic mode), and commits the entry into the
// reserved slot, which it owns exclusively.
func (l *Log) Append(e Entry) error {
	flags := l.Flags()
	if flags&FlagActive == 0 {
		return ErrInactive
	}
	switch e.Kind {
	case KindCall:
		if flags&EventCall == 0 {
			return ErrFiltered
		}
	case KindReturn:
		if flags&EventReturn == 0 {
			return ErrFiltered
		}
	default:
		return fmt.Errorf("shmlog: invalid entry kind %d", e.Kind)
	}

	shard := l.ShardOf(e.ThreadID)
	slot, n := l.ReserveShard(shard, 1)
	if n == 0 {
		l.NoteDroppedShard(shard, 1)
		return ErrFull
	}
	l.Commit(slot, e)
	return nil
}

// readerSlot maps a reader index i (0 <= i < Len()) onto the word index of
// the i-th reserved slot in segment-major order: segment 0's reserved
// prefix, then segment 1's, and so on. Each thread's entries live in one
// segment in increasing slot order, so this enumeration preserves
// per-thread order — the only order downstream readers rely on.
func (l *Log) readerSlot(i int) (base int, ok bool) {
	if l.shards == 1 {
		if i >= l.segLen(0) {
			return 0, false
		}
		return HeaderWords + SegHeaderWords + i*EntryWords, true
	}
	for s := 0; s < l.shards; s++ {
		n := l.segLen(s)
		if i < n {
			return l.segEntryIdx(s, i), true
		}
		i -= n
	}
	return 0, false
}

// Entry decodes the raw entry at reader index i (segment-major over the
// reserved slots; identical to slot order on a single-segment log). Under
// batched writers a reserved slot may be in flight (ThreadID 0) or released
// (ThreadID TombstoneTID); Entry returns those raw words and the caller
// dismisses them (as Entries and the analyzer do).
func (l *Log) Entry(i int) (Entry, error) {
	if i < 0 {
		return Entry{}, fmt.Errorf("%w: %d (len %d)", ErrRange, i, l.Len())
	}
	base, ok := l.readerSlot(i)
	if !ok {
		return Entry{}, fmt.Errorf("%w: %d (len %d)", ErrRange, i, l.Len())
	}
	word0 := atomic.LoadUint64(&l.words[base])
	e := Entry{
		Kind:     KindCall,
		Counter:  word0 & counterMask,
		Addr:     atomic.LoadUint64(&l.words[base+1]),
		ThreadID: atomic.LoadUint64(&l.words[base+2]),
	}
	if word0&kindBit != 0 {
		e.Kind = KindReturn
	}
	return e, nil
}

// Entries decodes all committed entries in reader order, dismissing
// released (tombstoned) slots. Slots still in flight decode as zero-thread
// entries, exactly as they are persisted.
func (l *Log) Entries() []Entry {
	n := l.Len()
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		e, err := l.Entry(i)
		if err != nil {
			break
		}
		if e.ThreadID == TombstoneTID {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Reset clears every segment tail and drop counter plus the shared counter,
// keeping configuration (capacity, shards, pid, flags) intact. Not safe to
// call concurrently with Append, Reserve or a live Cursor; batched writers
// must Flush (releasing their blocks) before a Reset, or their stale blocks
// would commit into the recycled region.
func (l *Log) Reset() {
	for s := 0; s < l.shards; s++ {
		h := l.segHeaderIdx(s)
		atomic.StoreUint64(&l.words[h+segWordTail], 0)
		atomic.StoreUint64(&l.words[h+segWordDropped], 0)
	}
	atomic.StoreUint64(&l.words[wordTail], 0)
	atomic.StoreUint64(&l.words[wordCounter], 0)
	atomic.StoreUint64(&l.words[wordDropped], 0)
}

// WriteTo persists the header and all reserved entries in the version-3
// binary format: the 32-word main header (capacity and tail both set to the
// total persisted length), then each segment compacted — an 8-word segment
// header whose tail and capacity equal the segment's persisted entry count,
// followed by exactly those entries.
//
// The encoding streams through a double-buffered SwapWriter: while the
// encoder fills one buffer, a background flusher drains the previously
// filled one into w, so persistence of a large log overlaps encoding with
// I/O instead of alternating between them. It implements io.WriterTo.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	sw := NewSwapWriter(w, bulkBufSize)
	err := l.encodeTo(sw)
	if cerr := sw.Close(); err == nil {
		err = cerr
	}
	return sw.Written(), err
}

// encodeTo streams the v3 encoding into w in 4 KiB chunks. The per-segment
// reserved lengths are snapshotted once up front so the header totals and
// the segment bodies agree even if writers are still appending.
func (l *Log) encodeTo(w io.Writer) error {
	segLens := make([]int, l.shards)
	total := 0
	for s := 0; s < l.shards; s++ {
		segLens[s] = l.segLen(s)
		total += segLens[s]
	}
	header := [HeaderWords]uint64{
		wordMagic:        Magic,
		wordVersion:      l.Version(),
		wordPID:          l.PID(),
		wordCapacity:     uint64(total), // persisted capacity == reserved length
		wordTail:         uint64(total),
		wordShards:       uint64(l.shards),
		wordProfilerAddr: l.ProfilerAddr(),
		wordFlags:        l.Flags(),
		// The sampling period is measurement state — analyzers scale folded
		// weights by it — so it persists; the mask/generation/batch words are
		// runtime coordination and persist as zero like the handshake words.
		wordSamplePeriod: l.SamplePeriod(),
		wordCounter:      l.LoadCounter(),
	}

	var (
		buf [4096]byte
		off int
	)
	flush := func() error {
		if off == 0 {
			return nil
		}
		_, err := w.Write(buf[:off])
		off = 0
		return err
	}
	put := func(v uint64) error {
		if off == len(buf) {
			if err := flush(); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint64(buf[off:], v)
		off += 8
		return nil
	}

	for _, word := range header {
		if err := put(word); err != nil {
			return err
		}
	}
	for s := 0; s < l.shards; s++ {
		n := segLens[s]
		// Segment header: tail == capacity == persisted length; the drop
		// counter persists as zero like the main header's (runtime
		// coordination state, not measurement).
		seg := [SegHeaderWords]uint64{
			segWordTail:     uint64(n),
			segWordCapacity: uint64(n),
		}
		for _, word := range seg {
			if err := put(word); err != nil {
				return err
			}
		}
		entryBase := l.segHeaderIdx(s) + SegHeaderWords
		for i := 0; i < n*EntryWords; i++ {
			if err := put(atomic.LoadUint64(&l.words[entryBase+i])); err != nil {
				return err
			}
		}
	}
	return flush()
}

var _ io.WriterTo = (*Log)(nil)

// rawSlot is one persisted slot's raw words plus its merge key, used while
// decoding a sharded stream.
type rawSlot struct {
	w0, w1, w2 uint64
	seg        int
	local      int
}

// buildDecoded assembles a decoded single-segment log from raw slot words.
// The result is normalized to the current in-memory layout (one segment
// whose tail and capacity equal the slot count) with recording disabled.
func buildDecoded(slots []rawSlot, srcVersion, pid, profilerAddr, flags, counter, samplePeriod uint64) *Log {
	n := len(slots)
	l := &Log{
		words:      make([]uint64, HeaderWords+SegHeaderWords+n*EntryWords),
		sync:       SyncAtomic,
		shards:     1,
		segCap:     n,
		srcVersion: srcVersion,
	}
	l.words[wordMagic] = Magic
	// Decoded logs are normalized to the current in-memory layout and
	// version; SourceVersion keeps the origin.
	l.words[wordVersion] = Version
	l.words[wordPID] = pid
	l.words[wordProfilerAddr] = profilerAddr
	l.words[wordShards] = 1
	l.words[wordFlags] = flags &^ FlagActive // read-only
	l.words[wordCapacity] = uint64(n)
	l.words[wordCounter] = counter
	l.words[wordSamplePeriod] = samplePeriod
	h := HeaderWords
	l.words[h+segWordTail] = uint64(n)
	l.words[h+segWordCapacity] = uint64(n)
	for i, s := range slots {
		base := h + SegHeaderWords + i*EntryWords
		l.words[base] = s.w0
		l.words[base+1] = s.w1
		l.words[base+2] = s.w2
	}
	return l
}

// mergeSlots orders persisted slots by the global counter value, breaking
// ties by (segment, local slot). Collection order is (segment, local), so a
// stable sort by counter alone yields exactly that key. Each thread's
// entries live in one segment with nondecreasing counters in local-slot
// order, so the merged stream preserves per-thread order — analyzer output
// over the merged stream is byte-identical to a single-segment recording.
// Slots that never committed (zero or tombstone markers, counter word 0 or
// stale) ride along and are dismissed by readers exactly as in a
// single-segment log.
func mergeSlots(slots []rawSlot) {
	sort.SliceStable(slots, func(i, j int) bool {
		return slots[i].w0&counterMask < slots[j].w0&counterMask
	})
}

// maxEntries bounds the entry counts decoders trust from a header before
// the body bytes back them up.
const maxEntries = 1 << 32

// Read decodes a persisted log, accepting the current sharded format plus
// legacy version-2 (padded header, flat entry region) and version-1 (packed
// 64-byte header) streams. The returned log is inactive (read-only use),
// always uses the in-memory single-segment layout — a sharded stream is
// merged at read time by the global counter value — and still supports
// Entry/Entries/Len and header accessors; SourceVersion reports the format
// it was decoded from.
func Read(r io.Reader) (*Log, error) {
	// All formats share a 64-byte prefix length: v1 is exactly 64 bytes
	// of header, v2/v3 begin with their first cache line. The magic word
	// disambiguates: v1 stores it in word 7, v2/v3 in word 0, and neither
	// position can fake the other (v1 word 0 holds small flag bits, v2
	// word 7 is reserved padding, v3 word 7 is a small shard count).
	head := make([]byte, HeaderSizeV1)
	if _, err := io.ReadFull(r, head); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, ErrEmptyLog
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTruncatedHeader
		}
		return nil, fmt.Errorf("shmlog: read header: %w", err)
	}
	var prefix [HeaderWordsV1]uint64
	for i := range prefix {
		prefix[i] = binary.LittleEndian.Uint64(head[i*8:])
	}

	switch {
	case prefix[v1WordMagic] == Magic:
		if prefix[v1WordVersion] != VersionV1 {
			return nil, fmt.Errorf("%w: %d", ErrBadVersion, prefix[v1WordVersion])
		}
		return readFlat(r, VersionV1,
			prefix[v1WordFlags], prefix[v1WordPID], prefix[v1WordProfilerAddr],
			prefix[v1WordCounter], prefix[v1WordCapacity], prefix[v1WordTail])
	case prefix[wordMagic] == Magic:
		// v2 and v3 share the 32-word main header; read the rest.
		rest := make([]byte, HeaderSize-HeaderSizeV1)
		if _, err := io.ReadFull(r, rest); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, ErrTruncatedHeader
			}
			return nil, fmt.Errorf("shmlog: read header: %w", err)
		}
		word := func(i int) uint64 {
			if i < HeaderWordsV1 {
				return prefix[i]
			}
			return binary.LittleEndian.Uint64(rest[(i-HeaderWordsV1)*8:])
		}
		switch v := prefix[wordVersion]; v {
		case VersionV2:
			return readFlat(r, VersionV2,
				word(wordFlags), word(wordPID), word(wordProfilerAddr),
				word(wordCounter), word(wordCapacity), word(wordTail))
		case Version:
			return readSharded(r, word)
		default:
			return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
		}
	default:
		return nil, ErrBadMagic
	}
}

// readFlat decodes the entry body of a legacy v1/v2 stream: tail entries
// immediately following the header, one flat region.
func readFlat(r io.Reader, srcVersion, flags, pid, profilerAddr, counter, capacity, tail uint64) (*Log, error) {
	if tail > capacity {
		tail = capacity
	}
	if capacity > maxEntries {
		return nil, fmt.Errorf("shmlog: unreasonable capacity %d", capacity)
	}
	slots := make([]rawSlot, 0, clampEntries(tail))
	if err := readSlots(r, &slots, int(tail), 0); err != nil {
		return nil, err
	}
	// v1/v2 predate the sampling-period word: always a full recording.
	return buildDecoded(slots, srcVersion, pid, profilerAddr, flags, counter, 0), nil
}

// readSharded decodes a v3 body: per-segment headers and compacted entry
// regions, merged into one stream by the global counter value.
func readSharded(r io.Reader, word func(int) uint64) (*Log, error) {
	shards := word(wordShards)
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("%w: %d", ErrBadShards, shards)
	}
	if word(wordCapacity) > maxEntries {
		return nil, fmt.Errorf("shmlog: unreasonable capacity %d", word(wordCapacity))
	}
	var slots []rawSlot
	segHead := make([]byte, SegHeaderSize)
	total := uint64(0)
	for s := 0; s < int(shards); s++ {
		if _, err := io.ReadFull(r, segHead); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, ErrTruncated
			}
			return nil, fmt.Errorf("shmlog: read segment header: %w", err)
		}
		segTail := binary.LittleEndian.Uint64(segHead[segWordTail*8:])
		segCap := binary.LittleEndian.Uint64(segHead[segWordCapacity*8:])
		if segCap > maxEntries || total+segCap > maxEntries {
			return nil, fmt.Errorf("shmlog: unreasonable segment capacity %d", segCap)
		}
		total += segCap
		if segTail > segCap {
			// A raw (uncompacted) region whose writers raced past the end;
			// the reservation clamp normally parks the tail, but trust the
			// physical bound regardless.
			segTail = segCap
		}
		// The persisted segment body holds segCap slots (compacted streams
		// have segCap == segTail); only the reserved prefix carries data.
		if err := readSlots(r, &slots, int(segCap), s); err != nil {
			return nil, err
		}
		// Drop never-reserved slots above the tail from the decoded view.
		keep := len(slots) - (int(segCap) - int(segTail))
		slots = slots[:keep]
	}
	// A single segment is already in slot order; only a multi-segment
	// stream needs the counter merge.
	if shards > 1 {
		mergeSlots(slots)
	}
	return buildDecoded(slots, Version,
		word(wordPID), word(wordProfilerAddr), word(wordFlags), word(wordCounter),
		word(wordSamplePeriod)), nil
}

// readSlots reads n entry slots from r and appends them to *slots tagged
// with their segment and local index. It reads incrementally so a forged
// header claiming billions of entries fails at the first missing byte
// instead of pre-allocating the claimed size.
func readSlots(r io.Reader, slots *[]rawSlot, n, seg int) error {
	// Whole entries per chunk: 64 KiB is not a multiple of the 24-byte
	// entry size, so round down.
	chunk := make([]byte, (bulkBufSize/EntrySize)*EntrySize)
	remaining := int64(n) * EntrySize
	local := 0
	for remaining > 0 {
		want := int64(len(chunk))
		if remaining < want {
			want = remaining
		}
		if _, err := io.ReadFull(r, chunk[:want]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return ErrTruncated
			}
			return fmt.Errorf("shmlog: read entries: %w", err)
		}
		for off := int64(0); off < want; off += EntrySize {
			*slots = append(*slots, rawSlot{
				w0:    binary.LittleEndian.Uint64(chunk[off:]),
				w1:    binary.LittleEndian.Uint64(chunk[off+8:]),
				w2:    binary.LittleEndian.Uint64(chunk[off+16:]),
				seg:   seg,
				local: local,
			})
			local++
		}
		remaining -= want
	}
	return nil
}

// Cursor is an incremental reader over a live log: each Next call returns
// the entries committed since the previous call, letting a monitor tail the
// log concurrently with running probes without reparsing from the start.
//
// A slot below a segment's tail may be reserved but still in flight: the
// writer sits between the fetch-and-add and the entry stores, or — under
// batched reservation — holds the slot in its current block and will fill
// it with one of its next events. The cursor uses the thread-ID word,
// stored last by Commit, as the commit marker. Instead of stopping at the
// first zero thread-ID word it records such slots as holes, keeps scanning,
// and re-examines the holes on every subsequent Next: a hole that commits
// is emitted exactly once, a hole that is released (TombstoneTID) is
// dropped.
//
// The cursor tracks each segment independently and emits segment-major
// within one Next call. Entries of one segment are emitted in slot order,
// and a writer thread — pinned to one segment by the shard hash — always
// commits its slots in increasing slot order, so emitted entries are
// per-thread ordered — the only order the analyzer relies on. The subtle
// case is a hole left behind across calls: a single scan could read slot i
// as in-flight, then read a later slot j of the same thread as committed
// (the writer committed both in between), emit j now and backfill i on a
// later call — out of per-thread order. Next therefore rescans each
// segment's remaining holes until a pass resolves no new commit: any hole
// ordered before an entry observed committed this call was itself committed
// first (increasing-slot commit order), so the rescan is guaranteed to
// observe it and splice it in. When Next returns, no tracked hole was
// committed before any entry it emitted.
//
// Consequently the cursor requires non-zero thread IDs: an entry committed
// with ThreadID 0 is indistinguishable from an in-flight slot and is
// tracked as a hole forever (never emitted). The probe runtime always
// assigns thread IDs starting at 1.
//
// A cursor is not safe for concurrent use by multiple goroutines, and
// Log.Reset must not be called while a cursor is live.
type Cursor struct {
	log  *Log
	segs []segCursor
	// scratch holds the local slot indexes observed committed during one
	// segment's scan, reused across segments and calls to avoid per-call
	// allocation.
	scratch []int
}

// segCursor is the cursor's per-segment frontier state.
type segCursor struct {
	pos   int
	holes []int
}

// Cursor returns a new incremental reader positioned at the start of the
// log.
func (l *Log) Cursor() *Cursor {
	return &Cursor{log: l, segs: make([]segCursor, l.shards)}
}

// Log returns the log this cursor reads.
func (c *Cursor) Log() *Log { return c.log }

// Pos returns the summed per-segment frontier: the total number of slots
// the cursor has examined. Entries returned so far equal Pos minus Pending
// (holes below the frontiers still awaiting their commit or release).
func (c *Cursor) Pos() int {
	n := 0
	for s := range c.segs {
		n += c.segs[s].pos
	}
	return n
}

// Pending returns how many reserved-but-unresolved holes the cursor is
// tracking below its frontiers, summed over segments.
func (c *Cursor) Pending() int {
	n := 0
	for s := range c.segs {
		n += len(c.segs[s].holes)
	}
	return n
}

// Next appends every newly committed entry to dst — segment-major, in slot
// order within each segment — and returns the extended slice. It returns
// dst unchanged when nothing new has committed.
func (c *Cursor) Next(dst []Entry) []Entry {
	for s := range c.segs {
		dst = c.nextSeg(s, dst)
	}
	return dst
}

// nextSeg advances one segment's frontier, resolving holes to a fixpoint
// (see the Cursor doc comment), and appends that segment's newly committed
// entries to dst in slot order.
func (c *Cursor) nextSeg(s int, dst []Entry) []Entry {
	sc := &c.segs[s]
	n := c.log.segLen(s)
	if len(sc.holes) == 0 && sc.pos >= n {
		return dst
	}

	// Candidate slots for this call, in increasing slot order: previously
	// tracked holes (all below the frontier) followed by the new frontier
	// region.
	pending := sc.holes
	for i := sc.pos; i < n; i++ {
		pending = append(pending, i)
	}
	sc.pos = n

	// Resolve to a fixpoint. A single pass is racy: it can read slot i as
	// in-flight, then read a later slot j of the same thread as committed
	// (the writer committed i then j in between) — emitting j while i is
	// left to backfill on a later call would break per-thread order. A
	// writer commits its slots in increasing slot order, so every hole
	// ordered before a commit observed by pass k is itself committed
	// before pass k+1 starts; rescanning the remaining holes until a pass
	// observes no new commit therefore guarantees that no hole surviving
	// this call was committed before any entry emitted by it. In practice
	// the loop is two passes — the second resolves nothing — and only the
	// first walks the frontier.
	committed := c.scratch[:0]
	for {
		resolved := false
		kept := pending[:0]
		for _, i := range pending {
			switch tid := atomic.LoadUint64(&c.log.words[c.log.segEntryIdx(s, i)+2]); tid {
			case 0:
				kept = append(kept, i) // still in flight
			case TombstoneTID:
				// released: never coming
			default:
				committed = append(committed, i)
				resolved = true
			}
		}
		pending = kept
		if !resolved || len(pending) == 0 {
			break
		}
	}
	sc.holes = pending

	// Later passes append holes that sit between earlier passes' slots;
	// restore slot order (== per-thread commit order) before emitting.
	if !sort.IntsAreSorted(committed) {
		sort.Ints(committed)
	}
	for _, i := range committed {
		tid := atomic.LoadUint64(&c.log.words[c.log.segEntryIdx(s, i)+2])
		dst = append(dst, c.decode(s, i, tid))
	}
	c.scratch = committed[:0]
	return dst
}

// decode reads the committed entry at local slot i of segment s; tid is the
// already-loaded commit marker.
func (c *Cursor) decode(s, i int, tid uint64) Entry {
	base := c.log.segEntryIdx(s, i)
	word0 := atomic.LoadUint64(&c.log.words[base])
	e := Entry{
		Kind:     KindCall,
		Counter:  word0 & counterMask,
		Addr:     atomic.LoadUint64(&c.log.words[base+1]),
		ThreadID: tid,
	}
	if word0&kindBit != 0 {
		e.Kind = KindReturn
	}
	return e
}

// clampEntries bounds the initial allocation hint for decoded logs.
func clampEntries(tail uint64) int {
	const hintLimit = 1 << 16
	if tail > hintLimit {
		return hintLimit
	}
	return int(tail)
}
