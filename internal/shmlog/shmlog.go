// Package shmlog implements the TEE-Perf shared-memory log (Figure 2 of the
// paper): a fixed-capacity, append-only event log designed to be mapped into
// untrusted host memory and written lock-free from inside a trusted
// execution environment.
//
// The log consists of a 64-byte header followed by fixed-size entries.
// Writers reserve an entry slot with a single atomic fetch-and-add on the
// tail index and then own that slot exclusively, so no locks are required
// and per-thread event order is preserved (the property the analyzer relies
// on). The header also hosts the software-counter word, so the counter
// thread's tight loop touches only the header cache line.
package shmlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Layout constants. The on-disk representation is little-endian 64-bit
// words matching the in-memory word layout exactly.
const (
	// HeaderWords is the number of 64-bit words in the log header.
	HeaderWords = 8
	// EntryWords is the number of 64-bit words per log entry:
	// word 0: kind bit (bit 63) | counter value (bits 62..0)
	// word 1: call/return target address
	// word 2: thread ID
	EntryWords = 3

	// HeaderSize and EntrySize are the byte sizes of the corresponding
	// structures in the persisted format.
	HeaderSize = HeaderWords * 8
	EntrySize  = EntryWords * 8

	// Magic identifies a persisted TEE-Perf log ("TEEPERF1").
	Magic uint64 = 0x5445455045524631

	// Version is the current log structure version. The version is
	// written once at setup and never changes afterwards, so it does not
	// need atomic access (per the paper).
	Version uint64 = 1
)

// Header word indexes.
const (
	wordFlags = iota
	wordVersion
	wordPID
	wordCapacity
	wordTail
	wordProfilerAddr
	wordCounter
	wordMagic
)

// Flag bits stored in the header flags word. Flags may be toggled while the
// measured application runs; all access is atomic so toggling introduces no
// critical section into the measured execution.
const (
	// FlagActive enables recording. Probes drop events while it is clear.
	FlagActive uint64 = 1 << 0
	// FlagMultithread marks a log produced by a multi-threaded run.
	FlagMultithread uint64 = 1 << 1

	// EventCall / EventReturn select which event kinds are recorded.
	EventCall   uint64 = 1 << 2
	EventReturn uint64 = 1 << 3

	// EventMask covers all event-selection bits.
	EventMask = EventCall | EventReturn
)

// Kind distinguishes call and return entries.
type Kind uint8

// Entry kinds. KindCall is recorded by the function-entry probe,
// KindReturn by the function-exit probe.
const (
	KindCall Kind = iota + 1
	KindReturn
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

const (
	kindBit     = uint64(1) << 63
	counterMask = kindBit - 1
)

// Sync selects the slot-reservation strategy. The paper designs the log for
// lock-free atomic access but explicitly does not rely on atomics being
// available; SyncMutex is the portable fallback (and the A1 ablation
// baseline).
type Sync int

// Synchronization modes.
const (
	SyncAtomic Sync = iota + 1
	SyncMutex
)

// Errors returned by log operations.
var (
	// ErrFull is returned by Append once all slots are used.
	ErrFull = errors.New("shmlog: log full")
	// ErrInactive is returned by Append when FlagActive is clear.
	ErrInactive = errors.New("shmlog: recording inactive")
	// ErrFiltered is returned by Append when the entry kind is masked out.
	ErrFiltered = errors.New("shmlog: event kind filtered")
	// ErrBadMagic is returned when decoding a non-TEE-Perf stream.
	ErrBadMagic = errors.New("shmlog: bad magic")
	// ErrBadVersion is returned when decoding an unsupported log version.
	ErrBadVersion = errors.New("shmlog: unsupported log version")
	// ErrTruncated is returned when a persisted log ends prematurely.
	ErrTruncated = errors.New("shmlog: truncated log")
	// ErrRange is returned when an entry index is out of bounds.
	ErrRange = errors.New("shmlog: entry index out of range")
)

// Entry is one decoded log record (Figure 2 (b)).
type Entry struct {
	// Kind reports whether the probe observed a call or a return.
	Kind Kind
	// Counter is the 63-bit counter value sampled by the probe.
	Counter uint64
	// Addr is the call/return target address (a virtual text address
	// resolvable through the symbol table).
	Addr uint64
	// ThreadID identifies the application thread that wrote the entry.
	ThreadID uint64
}

// Log is the shared-memory log region. It is safe for concurrent use by any
// number of writers and readers.
type Log struct {
	words []uint64
	sync  Sync
	mu    sync.Mutex // used only in SyncMutex mode

	dropped atomic.Uint64
}

// Option configures New.
type Option interface {
	apply(*options)
}

type options struct {
	pid          uint64
	version      uint64
	profilerAddr uint64
	sync         Sync
	flags        uint64
}

type pidOption uint64

func (o pidOption) apply(opts *options) { opts.pid = uint64(o) }

// WithPID records the process ID of the profiled application in the header
// so the analyzer can tell multiple runs apart.
func WithPID(pid uint64) Option { return pidOption(pid) }

type profilerAddrOption uint64

func (o profilerAddrOption) apply(opts *options) { opts.profilerAddr = uint64(o) }

// WithProfilerAddr records the in-memory address of the well-known profiler
// anchor function, letting the analyzer compute the relocation offset of
// position-independent code.
func WithProfilerAddr(addr uint64) Option { return profilerAddrOption(addr) }

type syncOption Sync

func (o syncOption) apply(opts *options) { opts.sync = Sync(o) }

// WithSync selects the slot reservation strategy (default SyncAtomic).
func WithSync(s Sync) Option { return syncOption(s) }

type flagsOption uint64

func (o flagsOption) apply(opts *options) { opts.flags = uint64(o) }

// WithFlags sets the initial header flags. The default enables recording of
// both calls and returns with the log active.
func WithFlags(flags uint64) Option { return flagsOption(flags) }

type versionOption uint64

func (o versionOption) apply(opts *options) { opts.version = uint64(o) }

// WithVersion overrides the log structure version (testing only).
func WithVersion(v uint64) Option { return versionOption(v) }

// New allocates a log with room for capacity entries.
func New(capacity int, opts ...Option) (*Log, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("shmlog: capacity must be positive, got %d", capacity)
	}
	o := options{
		version: Version,
		sync:    SyncAtomic,
		flags:   FlagActive | EventCall | EventReturn,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.sync != SyncAtomic && o.sync != SyncMutex {
		return nil, fmt.Errorf("shmlog: unknown sync mode %d", o.sync)
	}
	l := &Log{
		words: make([]uint64, HeaderWords+capacity*EntryWords),
		sync:  o.sync,
	}
	l.words[wordFlags] = o.flags
	l.words[wordVersion] = o.version
	l.words[wordPID] = o.pid
	l.words[wordCapacity] = uint64(capacity)
	l.words[wordProfilerAddr] = o.profilerAddr
	l.words[wordMagic] = Magic
	return l, nil
}

// Capacity returns the maximum number of entries the log can hold. The
// capacity is fixed at setup and immutable afterwards (per the paper).
func (l *Log) Capacity() int { return int(l.words[wordCapacity]) }

// PID returns the recorded process ID.
func (l *Log) PID() uint64 { return l.words[wordPID] }

// Version returns the log structure version.
func (l *Log) Version() uint64 { return l.words[wordVersion] }

// ProfilerAddr returns the recorded profiler anchor address.
func (l *Log) ProfilerAddr() uint64 { return l.words[wordProfilerAddr] }

// SetProfilerAddr records the profiler anchor address. It is written by the
// recorder during setup, before any probes run.
func (l *Log) SetProfilerAddr(addr uint64) { l.words[wordProfilerAddr] = addr }

// Flags returns the current header flags (atomic).
func (l *Log) Flags() uint64 { return atomic.LoadUint64(&l.words[wordFlags]) }

// SetFlag sets the given flag bits atomically while the application runs.
func (l *Log) SetFlag(bits uint64) {
	for {
		old := atomic.LoadUint64(&l.words[wordFlags])
		if atomic.CompareAndSwapUint64(&l.words[wordFlags], old, old|bits) {
			return
		}
	}
}

// ClearFlag clears the given flag bits atomically.
func (l *Log) ClearFlag(bits uint64) {
	for {
		old := atomic.LoadUint64(&l.words[wordFlags])
		if atomic.CompareAndSwapUint64(&l.words[wordFlags], old, old&^bits) {
			return
		}
	}
}

// Active reports whether recording is enabled.
func (l *Log) Active() bool { return l.Flags()&FlagActive != 0 }

// SetActive toggles the active flag.
func (l *Log) SetActive(active bool) {
	if active {
		l.SetFlag(FlagActive)
	} else {
		l.ClearFlag(FlagActive)
	}
}

// AddCounter atomically advances the header counter word by delta and
// returns the new value. The software counter thread calls this in its
// tight loop.
func (l *Log) AddCounter(delta uint64) uint64 {
	return atomic.AddUint64(&l.words[wordCounter], delta)
}

// LoadCounter atomically reads the header counter word.
func (l *Log) LoadCounter() uint64 {
	return atomic.LoadUint64(&l.words[wordCounter])
}

// Tail returns the raw tail index. It can exceed Capacity when writers
// raced past the end; Len clamps it.
func (l *Log) Tail() uint64 { return atomic.LoadUint64(&l.words[wordTail]) }

// Len returns the number of committed entries.
func (l *Log) Len() int {
	tail := l.Tail()
	if c := uint64(l.Capacity()); tail > c {
		tail = c
	}
	return int(tail)
}

// Dropped returns how many entries were rejected because the log was full.
func (l *Log) Dropped() uint64 { return l.dropped.Load() }

// Append records one entry. It checks the active flag and the event mask,
// reserves a slot (fetch-and-add in SyncAtomic mode), and writes the entry
// into the reserved slot, which it owns exclusively. Counter values are
// truncated to 63 bits; bit 63 carries the kind.
func (l *Log) Append(e Entry) error {
	flags := l.Flags()
	if flags&FlagActive == 0 {
		return ErrInactive
	}
	switch e.Kind {
	case KindCall:
		if flags&EventCall == 0 {
			return ErrFiltered
		}
	case KindReturn:
		if flags&EventReturn == 0 {
			return ErrFiltered
		}
	default:
		return fmt.Errorf("shmlog: invalid entry kind %d", e.Kind)
	}

	var slot uint64
	if l.sync == SyncAtomic {
		slot = atomic.AddUint64(&l.words[wordTail], 1) - 1
	} else {
		l.mu.Lock()
		slot = l.words[wordTail]
		l.words[wordTail]++
		l.mu.Unlock()
	}
	if slot >= uint64(l.Capacity()) {
		l.dropped.Add(1)
		return ErrFull
	}

	base := HeaderWords + int(slot)*EntryWords
	word0 := e.Counter & counterMask
	if e.Kind == KindReturn {
		word0 |= kindBit
	}
	// The slot is exclusively owned; the thread-ID word is stored
	// atomically last and doubles as the commit marker: thread IDs are
	// never zero (the probe runtime assigns IDs starting at 1), so a
	// concurrent tailing reader that observes a non-zero thread ID is
	// guaranteed to see the final counter and address words too, and a
	// zero thread ID marks a reserved-but-in-flight slot it must dismiss.
	atomic.StoreUint64(&l.words[base], word0)
	atomic.StoreUint64(&l.words[base+1], e.Addr)
	atomic.StoreUint64(&l.words[base+2], e.ThreadID)
	return nil
}

// Entry decodes the committed entry at index i.
func (l *Log) Entry(i int) (Entry, error) {
	if i < 0 || i >= l.Len() {
		return Entry{}, fmt.Errorf("%w: %d (len %d)", ErrRange, i, l.Len())
	}
	base := HeaderWords + i*EntryWords
	word0 := atomic.LoadUint64(&l.words[base])
	e := Entry{
		Kind:     KindCall,
		Counter:  word0 & counterMask,
		Addr:     atomic.LoadUint64(&l.words[base+1]),
		ThreadID: atomic.LoadUint64(&l.words[base+2]),
	}
	if word0&kindBit != 0 {
		e.Kind = KindReturn
	}
	return e, nil
}

// Entries decodes all committed entries in log order.
func (l *Log) Entries() []Entry {
	n := l.Len()
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		e, err := l.Entry(i)
		if err != nil {
			break
		}
		out = append(out, e)
	}
	return out
}

// Reset clears the tail, counter and drop count, keeping configuration
// (capacity, pid, flags) intact. Not safe to call concurrently with Append.
func (l *Log) Reset() {
	atomic.StoreUint64(&l.words[wordTail], 0)
	atomic.StoreUint64(&l.words[wordCounter], 0)
	l.dropped.Store(0)
}

// WriteTo persists the header and all committed entries in the binary
// format. It implements io.WriterTo.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	n := l.Len()
	buf := make([]byte, 8)
	var written int64

	writeWord := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf, v)
		m, err := w.Write(buf)
		written += int64(m)
		return err
	}

	header := [HeaderWords]uint64{
		wordFlags:        l.Flags(),
		wordVersion:      l.Version(),
		wordPID:          l.PID(),
		wordCapacity:     uint64(n), // persisted capacity == committed length
		wordTail:         uint64(n),
		wordProfilerAddr: l.ProfilerAddr(),
		wordCounter:      l.LoadCounter(),
		wordMagic:        Magic,
	}
	for _, word := range header {
		if err := writeWord(word); err != nil {
			return written, err
		}
	}
	for i := 0; i < n; i++ {
		base := HeaderWords + i*EntryWords
		for j := 0; j < EntryWords; j++ {
			if err := writeWord(atomic.LoadUint64(&l.words[base+j])); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

var _ io.WriterTo = (*Log)(nil)

// Read decodes a persisted log. The returned log is inactive (read-only
// use); it still supports Entry/Entries/Len and header accessors.
func Read(r io.Reader) (*Log, error) {
	head := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, head); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTruncated
		}
		return nil, fmt.Errorf("shmlog: read header: %w", err)
	}
	var header [HeaderWords]uint64
	for i := range header {
		header[i] = binary.LittleEndian.Uint64(head[i*8:])
	}
	if header[wordMagic] != Magic {
		return nil, ErrBadMagic
	}
	if header[wordVersion] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, header[wordVersion])
	}
	capacity := header[wordCapacity]
	tail := header[wordTail]
	if tail > capacity {
		tail = capacity
	}
	const maxEntries = 1 << 32
	if capacity > maxEntries {
		return nil, fmt.Errorf("shmlog: unreasonable capacity %d", capacity)
	}

	// Read the body incrementally so a forged header claiming billions of
	// entries fails at the first missing byte instead of pre-allocating
	// the claimed size.
	words := make([]uint64, HeaderWords, HeaderWords+clampEntries(tail)*EntryWords)
	copy(words, header[:])
	chunk := make([]byte, 64*1024)
	remaining := int64(tail) * EntrySize
	for remaining > 0 {
		n := int64(len(chunk))
		if remaining < n {
			n = remaining
		}
		if _, err := io.ReadFull(r, chunk[:n]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, ErrTruncated
			}
			return nil, fmt.Errorf("shmlog: read entries: %w", err)
		}
		for i := int64(0); i+8 <= n; i += 8 {
			words = append(words, binary.LittleEndian.Uint64(chunk[i:]))
		}
		remaining -= n
	}

	l := &Log{words: words, sync: SyncAtomic}
	l.words[wordFlags] = header[wordFlags] &^ FlagActive // read-only
	// The decoded log is immutable: its capacity is what was persisted.
	l.words[wordCapacity] = tail
	l.words[wordTail] = tail
	return l, nil
}

// Cursor is an incremental reader over a live log: each Next call returns
// the entries committed since the previous call, letting a monitor tail the
// log concurrently with running probes without reparsing from the start.
//
// A slot below the tail may be reserved but still in flight (the writer
// sits between the fetch-and-add and the entry stores). The cursor uses the
// thread-ID word — stored last by Append — as the commit marker and stops
// at the first slot whose thread ID is still zero, dismissing the in-flight
// region exactly like the offline analyzer dismisses the log's trailing
// edge. The dismissed region is re-examined on the next call, so every
// committed entry is observed exactly once, in log order.
//
// Consequently the cursor requires non-zero thread IDs: an entry appended
// with ThreadID 0 is indistinguishable from an in-flight slot and blocks
// the cursor. The probe runtime always assigns thread IDs starting at 1.
//
// A cursor is not safe for concurrent use by multiple goroutines, and
// Log.Reset must not be called while a cursor is live.
type Cursor struct {
	log *Log
	pos int
}

// Cursor returns a new incremental reader positioned at the start of the
// log.
func (l *Log) Cursor() *Cursor { return &Cursor{log: l} }

// Log returns the log this cursor reads.
func (c *Cursor) Log() *Log { return c.log }

// Pos returns the index of the next entry the cursor will examine, i.e.
// how many entries it has returned so far.
func (c *Cursor) Pos() int { return c.pos }

// Next appends every newly committed entry to dst and returns the extended
// slice. It returns dst unchanged when nothing new has committed.
func (c *Cursor) Next(dst []Entry) []Entry {
	n := c.log.Len()
	for c.pos < n {
		base := HeaderWords + c.pos*EntryWords
		tid := atomic.LoadUint64(&c.log.words[base+2])
		if tid == 0 {
			break // reserved but not yet committed; retry next call
		}
		word0 := atomic.LoadUint64(&c.log.words[base])
		e := Entry{
			Kind:     KindCall,
			Counter:  word0 & counterMask,
			Addr:     atomic.LoadUint64(&c.log.words[base+1]),
			ThreadID: tid,
		}
		if word0&kindBit != 0 {
			e.Kind = KindReturn
		}
		dst = append(dst, e)
		c.pos++
	}
	return dst
}

// clampEntries bounds the initial allocation hint for decoded logs.
func clampEntries(tail uint64) int {
	const hintLimit = 1 << 16
	if tail > hintLimit {
		return hintLimit
	}
	return int(tail)
}
