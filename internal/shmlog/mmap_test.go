//go:build linux || darwin

package shmlog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mmapPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "log.shm")
}

// TestMmapRoundTrip: entries appended through one mapping are visible,
// committed and identical through a second mapping of the same file — the
// property every cross-process piece rests on.
func TestMmapRoundTrip(t *testing.T) {
	path := mmapPath(t)
	creator, err := CreateFile(path, 16, WithPID(42), WithProfilerAddr(0x1000))
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	want := []Entry{
		{Kind: KindCall, Counter: 1, Addr: 0xA, ThreadID: 1},
		{Kind: KindReturn, Counter: 5, Addr: 0xA, ThreadID: 1},
		{Kind: KindCall, Counter: 9, Addr: 0xB, ThreadID: 2},
	}
	for _, e := range want {
		if err := creator.Append(e); err != nil {
			t.Fatal(err)
		}
	}

	attached, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer attached.Close()
	if got := attached.Capacity(); got != 16 {
		t.Fatalf("Capacity = %d, want 16", got)
	}
	if got := attached.PID(); got != 42 {
		t.Fatalf("PID = %d, want 42", got)
	}
	if got := attached.ProfilerAddr(); got != 0x1000 {
		t.Fatalf("ProfilerAddr = %#x, want 0x1000", got)
	}
	if got := attached.Entries(); !sameEntries(got, want) {
		t.Fatalf("entries via second mapping = %+v, want %+v", got, want)
	}

	// And the reverse direction: an append through the attached mapping is
	// visible to the creator.
	extra := Entry{Kind: KindReturn, Counter: 11, Addr: 0xB, ThreadID: 2}
	if err := attached.Append(extra); err != nil {
		t.Fatal(err)
	}
	if got := creator.Entries(); !sameEntries(got, append(append([]Entry(nil), want...), extra)) {
		t.Fatalf("creator sees %+v after attached append", got)
	}
}

// TestMmapHandshake exercises the attach-protocol words: creator PID,
// attach generation, and the recorder-ready flag — all through two
// mappings.
func TestMmapHandshake(t *testing.T) {
	path := mmapPath(t)
	creator, err := CreateFile(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	if got := creator.CreatorPID(); got != uint64(os.Getpid()) {
		t.Fatalf("CreatorPID = %d, want %d", got, os.Getpid())
	}
	if creator.AttachGen() != 0 {
		t.Fatalf("AttachGen = %d before any attach, want 0", creator.AttachGen())
	}
	if creator.Ready() {
		t.Fatal("Ready before SetReady")
	}
	if creator.WaitReady(time.Millisecond) {
		t.Fatal("WaitReady succeeded with the bit clear")
	}

	attached, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer attached.Close()
	if got := creator.AttachGen(); got != 1 {
		t.Fatalf("AttachGen after one attach = %d, want 1", got)
	}
	if got := attached.CreatorPID(); got != uint64(os.Getpid()) {
		t.Fatalf("attached CreatorPID = %d, want %d", got, os.Getpid())
	}

	creator.SetReady(true)
	if !attached.WaitReady(time.Second) {
		t.Fatal("ready bit not visible through second mapping")
	}
	creator.SetReady(false)
	if attached.Ready() {
		t.Fatal("ready bit still set after clear")
	}
}

// TestMmapDroppedShared: the drop counter lives in the header, so drops
// suffered through one mapping are visible through the other.
func TestMmapDroppedShared(t *testing.T) {
	path := mmapPath(t)
	creator, err := CreateFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	attached, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer attached.Close()

	e := Entry{Kind: KindCall, Counter: 1, Addr: 0xA, ThreadID: 1}
	if err := attached.Append(e); err != nil {
		t.Fatal(err)
	}
	if err := attached.Append(e); !errors.Is(err, ErrFull) {
		t.Fatalf("append past capacity: err = %v, want ErrFull", err)
	}
	if got := creator.Dropped(); got != 1 {
		t.Fatalf("creator Dropped = %d, want 1 (drop happened in the other mapping)", got)
	}
}

// TestMmapRawFileRead: the raw backing file is itself a decodable log —
// strict Read accepts it (capacity word bounds the region, tail bounds the
// entries) and ReadLenient reports it clean, so crash salvage needs no
// special mmap path.
func TestMmapRawFileRead(t *testing.T) {
	path := mmapPath(t)
	l, err := CreateFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{
		{Kind: KindCall, Counter: 2, Addr: 0xF0, ThreadID: 1},
		{Kind: KindCall, Counter: 3, Addr: 0xF1, ThreadID: 1},
		{Kind: KindReturn, Counter: 7, Addr: 0xF1, ThreadID: 1},
	}
	for _, e := range want {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Msync(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	strict, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("strict Read of raw mapping file: %v", err)
	}
	if got := strict.Entries(); !sameEntries(got, want) {
		t.Fatalf("strict entries = %+v, want %+v", got, want)
	}

	lenient, rep, err := ReadLenient(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("lenient report of an intact raw file not clean: %v", rep)
	}
	if got := lenient.Entries(); !sameEntries(got, want) {
		t.Fatalf("lenient entries = %+v, want %+v", got, want)
	}
}

// TestMmapClose: a closed log reads as empty and inactive instead of
// faulting, and the backing file persists for offline salvage.
func TestMmapClose(t *testing.T) {
	path := mmapPath(t)
	l, err := CreateFile(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Entry{Kind: KindCall, Counter: 1, Addr: 0xA, ThreadID: 1}); err != nil {
		t.Fatal(err)
	}
	if !l.Mapped() || l.Path() != path {
		t.Fatalf("Mapped=%v Path=%q before Close", l.Mapped(), l.Path())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Mapped() {
		t.Fatal("Mapped still true after Close")
	}
	if err := l.Append(Entry{Kind: KindCall, Counter: 2, Addr: 0xB, ThreadID: 1}); !errors.Is(err, ErrInactive) {
		t.Fatalf("append after Close: err = %v, want ErrInactive", err)
	}
	if l.Len() != 0 {
		t.Fatalf("Len after Close = %d, want 0", l.Len())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("backing file gone after Close: %v", err)
	}
}

// TestMmapOpenValidation: OpenFile rejects files that are not (or no
// longer) valid logs.
func TestMmapOpenValidation(t *testing.T) {
	dir := t.TempDir()

	missing := filepath.Join(dir, "nope.shm")
	if _, err := OpenFile(missing); err == nil {
		t.Fatal("OpenFile of a missing path succeeded")
	}

	tiny := filepath.Join(dir, "tiny.shm")
	if err := os.WriteFile(tiny, make([]byte, HeaderSize-8), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(tiny); !errors.Is(err, ErrTruncated) {
		t.Fatalf("OpenFile of a sub-header file: err = %v, want ErrTruncated", err)
	}

	garbage := filepath.Join(dir, "garbage.shm")
	if err := os.WriteFile(garbage, bytes.Repeat([]byte{0xAB}, HeaderSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(garbage); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("OpenFile of garbage: err = %v, want ErrBadMagic", err)
	}

	// A valid header whose capacity claims more entries than the file holds
	// (e.g. a truncated copy) is rejected rather than mapped short.
	short := filepath.Join(dir, "short.shm")
	l, err := CreateFile(short, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(short, HeaderSize+2*EntrySize); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(short); !errors.Is(err, ErrTruncated) {
		t.Fatalf("OpenFile of truncated file: err = %v, want ErrTruncated", err)
	}
}

// TestMmapCreateRejections: modes that cannot work across processes are
// refused at creation.
func TestMmapCreateRejections(t *testing.T) {
	if _, err := CreateFile(mmapPath(t), 4, WithSync(SyncMutex)); !errors.Is(err, ErrMapped) {
		t.Fatalf("SyncMutex: err = %v, want ErrMapped", err)
	}
	if _, err := CreateFile(mmapPath(t), 4, WithVersion(VersionV1)); !errors.Is(err, ErrMapped) {
		t.Fatalf("WithVersion(1): err = %v, want ErrMapped", err)
	}
	if _, err := CreateFile(mmapPath(t), 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

// TestMmapObserveFile: a read-only observer mapping sees entries committed
// by a writer mapping without bumping the attach generation or otherwise
// touching the shared region, and its cursor tails new commits live.
func TestMmapObserveFile(t *testing.T) {
	path := mmapPath(t)
	creator, err := CreateFile(path, 32, WithPID(77), WithProfilerAddr(0x2000))
	if err != nil {
		t.Fatal(err)
	}
	defer creator.Close()
	if err := creator.Append(Entry{Kind: KindCall, Counter: 3, Addr: 0xC, ThreadID: 1}); err != nil {
		t.Fatal(err)
	}

	obs, err := ObserveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer obs.Close()
	if !obs.ReadOnly() || !obs.Mapped() {
		t.Fatalf("observer: ReadOnly=%v Mapped=%v, want true/true", obs.ReadOnly(), obs.Mapped())
	}
	if got := creator.AttachGen(); got != 0 {
		t.Fatalf("observer bumped attach generation to %d; observers must be invisible", got)
	}
	if obs.PID() != 77 || obs.Capacity() != 32 {
		t.Fatalf("observer header: pid=%d cap=%d", obs.PID(), obs.Capacity())
	}

	// Live tailing: entries committed after the observer attached appear
	// through its cursor.
	cur := obs.Cursor()
	if got := cur.Next(nil); len(got) != 1 || got[0].Addr != 0xC {
		t.Fatalf("first drain = %+v, want the pre-attach entry", got)
	}
	if err := creator.Append(Entry{Kind: KindReturn, Counter: 9, Addr: 0xC, ThreadID: 1}); err != nil {
		t.Fatal(err)
	}
	if got := cur.Next(nil); len(got) != 1 || got[0].Kind != KindReturn {
		t.Fatalf("live drain = %+v, want the post-attach return", got)
	}

	// A writer attach still bumps the generation — only observers are
	// exempt.
	w, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := obs.AttachGen(); got != 1 {
		t.Fatalf("attach generation through observer = %d, want 1", got)
	}
	if err := obs.Msync(); err != nil {
		t.Fatalf("observer Msync: %v", err)
	}
}

// TestMmapObserveValidation: observers reject missing, truncated and
// non-teeperf files with the same typed errors as OpenFile.
func TestMmapObserveValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := ObserveFile(filepath.Join(dir, "absent.shm")); err == nil {
		t.Fatal("observing a missing file succeeded")
	}
	small := filepath.Join(dir, "small.shm")
	if err := os.WriteFile(small, make([]byte, HeaderSize-8), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ObserveFile(small); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short file: err = %v, want ErrTruncated", err)
	}
	junk := filepath.Join(dir, "junk.shm")
	if err := os.WriteFile(junk, bytes.Repeat([]byte{0xEE}, HeaderSize+EntrySize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ObserveFile(junk); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("junk file: err = %v, want ErrBadMagic", err)
	}
}
