//go:build linux || darwin

package shmlog

import (
	"fmt"
	"os"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// MmapSupported reports whether this platform supports file-backed shared
// logs (CreateFile / OpenFile). When false, callers fall back to the
// in-process heap log.
const MmapSupported = true

// CreateFile creates (truncating) a file-backed log at path with room for
// capacity entries and maps it MAP_SHARED. The header is initialised like
// New's — including the segment headers of a sharded log (WithShards) —
// plus the attach-handshake words: creator PID (this process) and a zero
// attach generation. The recorder process calls this before spawning the
// instrumented application.
//
// SyncMutex is rejected: a Go mutex cannot synchronise writers in two
// different processes. WithVersion is likewise rejected — a shared file is
// always the current layout.
func CreateFile(path string, capacity int, opts ...Option) (*Log, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("shmlog: capacity must be positive, got %d", capacity)
	}
	o := options{
		version: Version,
		sync:    SyncAtomic,
		flags:   FlagActive | EventCall | EventReturn,
		shards:  1,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.sync != SyncAtomic {
		return nil, fmt.Errorf("%w: file-backed logs require SyncAtomic (a mutex cannot cross processes)", ErrMapped)
	}
	if o.version != Version {
		return nil, fmt.Errorf("%w: file-backed logs are always version %d", ErrMapped, Version)
	}
	if o.shards < 1 || o.shards > MaxShards {
		return nil, fmt.Errorf("%w: %d (want 1..%d)", ErrBadShards, o.shards, MaxShards)
	}

	segCap := segCapFor(capacity, o.shards)
	total := segCap * o.shards
	size := HeaderSize + o.shards*(SegHeaderSize+segCap*EntrySize)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("shmlog: create mapping file: %w", err)
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("shmlog: size mapping file: %w", err)
	}
	l, err := mapFile(f, path, size)
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	l.shards = o.shards
	l.segCap = segCap
	l.words[wordMagic] = Magic
	l.words[wordVersion] = Version
	l.words[wordPID] = o.pid
	l.words[wordCapacity] = uint64(total)
	l.words[wordProfilerAddr] = o.profilerAddr
	l.words[wordCreatorPID] = uint64(os.Getpid())
	l.words[wordShards] = uint64(o.shards)
	l.words[wordFlags] = o.flags
	l.words[wordSamplePeriod] = o.samplePeriod
	if o.samplePeriod > 1 {
		l.words[wordFlags] |= FlagSampled
	}
	for s := 0; s < o.shards; s++ {
		l.words[l.segHeaderIdx(s)+segWordCapacity] = uint64(segCap)
	}
	return l, nil
}

// validateMapped checks a freshly mapped log's header against the file size
// and derives the cached shard layout (l.shards, l.segCap). Shared with
// OpenFile and ObserveFile.
func validateMapped(l *Log, path string, size int64) error {
	if got := atomic.LoadUint64(&l.words[wordMagic]); got != Magic {
		return fmt.Errorf("%w: mapping file %q", ErrBadMagic, path)
	}
	if got := atomic.LoadUint64(&l.words[wordVersion]); got != Version {
		return fmt.Errorf("%w: %d in mapping file %q", ErrBadVersion, got, path)
	}
	shards := atomic.LoadUint64(&l.words[wordShards])
	if shards < 1 || shards > MaxShards {
		return fmt.Errorf("%w: %d in mapping file %q", ErrBadShards, shards, path)
	}
	capacity := atomic.LoadUint64(&l.words[wordCapacity])
	if capacity > maxEntries {
		return fmt.Errorf("shmlog: unreasonable capacity %d in mapping file %q", capacity, path)
	}
	if capacity%shards != 0 {
		return fmt.Errorf("%w: capacity %d not divisible by %d shards in mapping file %q",
			ErrTruncated, capacity, shards, path)
	}
	segCap := capacity / shards
	want := int64(HeaderSize) + int64(shards)*(SegHeaderSize+int64(segCap)*EntrySize)
	if want > size {
		return fmt.Errorf("%w: mapping file %q holds %d bytes but header claims capacity %d over %d shards (%d bytes)",
			ErrTruncated, path, size, capacity, shards, want)
	}
	l.shards = int(shards)
	l.segCap = int(segCap)
	// The per-segment capacity words must agree with the main header, or
	// the segment arithmetic (and every writer mapping the file) would
	// disagree about where segments start.
	for s := 0; s < l.shards; s++ {
		if got := atomic.LoadUint64(&l.words[l.segHeaderIdx(s)+segWordCapacity]); got != segCap {
			return fmt.Errorf("%w: segment %d capacity %d disagrees with header segment capacity %d in mapping file %q",
				ErrTruncated, s, got, segCap, path)
		}
	}
	return nil
}

// OpenFile maps an existing file-backed log MAP_SHARED and validates its
// header (magic, version, shard layout, capacity vs file size). It
// atomically bumps the attach generation so the creator can observe the
// attach. The instrumented application calls this with the path handed
// over in TEEPERF_SHM.
func OpenFile(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("shmlog: open mapping file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shmlog: stat mapping file: %w", err)
	}
	size := st.Size()
	if size < HeaderSize {
		f.Close()
		return nil, fmt.Errorf("%w: mapping file %q is %d bytes, below the %d-byte header", ErrTruncatedHeader, path, size, HeaderSize)
	}
	if size > int64(int(^uint(0)>>1)) { // cannot address as one slice
		f.Close()
		return nil, fmt.Errorf("shmlog: mapping file %q too large (%d bytes)", path, size)
	}
	l, err := mapFile(f, path, int(size))
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := validateMapped(l, path, size); err != nil {
		l.Close()
		return nil, err
	}
	atomic.AddUint64(&l.words[wordAttachGen], 1)
	return l, nil
}

// ObserveFile maps an existing file-backed log MAP_SHARED but read-only:
// PROT_READ, no attach-generation bump, no header writes. It is the
// multi-attach path for passive observers (the fleet agent): any number of
// observer mappings can coexist with the hosting recorder and the
// instrumented application without either noticing, because an observer
// never stores to the shared region — cursors, header accessors and stats
// are all atomic loads. Mutating a log returned by ObserveFile (SetPID,
// Append, ...) faults; ReadOnly reports the restriction.
func ObserveFile(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("shmlog: open mapping file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shmlog: stat mapping file: %w", err)
	}
	size := st.Size()
	if size < HeaderSize {
		f.Close()
		return nil, fmt.Errorf("%w: mapping file %q is %d bytes, below the %d-byte header", ErrTruncatedHeader, path, size, HeaderSize)
	}
	if size > int64(int(^uint(0)>>1)) {
		f.Close()
		return nil, fmt.Errorf("shmlog: mapping file %q too large (%d bytes)", path, size)
	}
	l, err := mapFileProt(f, path, int(size), syscall.PROT_READ)
	if err != nil {
		f.Close()
		return nil, err
	}
	l.readOnly = true
	if err := validateMapped(l, path, size); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// ControlFile maps an existing file-backed log MAP_SHARED read-write for a
// controller: unlike OpenFile it does NOT bump the attach generation (the
// creator must not mistake a throttling agent for the instrumented
// application attaching), and unlike ObserveFile the mapping is writable so
// the caller can drive the adaptive-probe control words (SetSamplePeriod,
// SetThreadMask, SetAddrMask) live. Controllers must restrict their stores
// to the control words; everything else belongs to the recorder and the
// application.
func ControlFile(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("shmlog: open mapping file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("shmlog: stat mapping file: %w", err)
	}
	size := st.Size()
	if size < HeaderSize {
		f.Close()
		return nil, fmt.Errorf("%w: mapping file %q is %d bytes, below the %d-byte header", ErrTruncatedHeader, path, size, HeaderSize)
	}
	if size > int64(int(^uint(0)>>1)) {
		f.Close()
		return nil, fmt.Errorf("shmlog: mapping file %q too large (%d bytes)", path, size)
	}
	l, err := mapFile(f, path, int(size))
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := validateMapped(l, path, size); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// mapFile maps size bytes of f MAP_SHARED read-write and lays the word
// array over the mapping. size must be a multiple of 8 and at least
// HeaderSize.
func mapFile(f *os.File, path string, size int) (*Log, error) {
	return mapFileProt(f, path, size, syscall.PROT_READ|syscall.PROT_WRITE)
}

func mapFileProt(f *os.File, path string, size, prot int) (*Log, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, prot, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("shmlog: mmap %q: %w", path, err)
	}
	words := unsafe.Slice((*uint64)(unsafe.Pointer(&data[0])), size/8)
	return &Log{
		words:      words,
		sync:       SyncAtomic,
		shards:     1,
		srcVersion: Version,
		mapped:     data,
		file:       f,
		path:       path,
	}, nil
}

// msync flushes the mapping to its backing file with MS_SYNC.
func msync(data []byte) error {
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&data[0])), uintptr(len(data)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("shmlog: msync: %w", errno)
	}
	return nil
}

// munmap releases the mapping.
func munmap(data []byte) error {
	if err := syscall.Munmap(data); err != nil {
		return fmt.Errorf("shmlog: munmap: %w", err)
	}
	return nil
}
