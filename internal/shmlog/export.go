package shmlog

// Segment export: the profile history store persists committed entries out
// of finished logs and later rebuilds read-only logs from stored entries,
// so both directions live here next to the decoder they reuse.

// CommittedEntries decodes only the fully committed entries in reader
// order: slots still in flight (zero thread-ID word) and released slots
// (TombstoneTID) are dismissed, exactly as the analyzer dismisses them.
// This is the canonical extraction for persisting a finished segment —
// what remains is what any analysis of the log would have folded.
func (l *Log) CommittedEntries() []Entry {
	n := l.Len()
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		e, err := l.Entry(i)
		if err != nil {
			break
		}
		if e.ThreadID == 0 || e.ThreadID == TombstoneTID {
			continue
		}
		out = append(out, e)
	}
	return out
}

// FromEntries assembles a read-only single-segment log carrying exactly the
// given committed entries, in the given order. The result supports
// Entry/Entries/Len and the header accessors the analyzer reads (PID,
// ProfilerAddr, SamplePeriod), with recording disabled — the inverse of
// CommittedEntries, used by the history store to hand stored windows back
// to the analyzer. A samplePeriod of 0 normalizes to 1; periods above 1
// set FlagSampled so analyzers scale folded weights.
func FromEntries(entries []Entry, pid, profilerAddr, samplePeriod uint64) *Log {
	if samplePeriod == 0 {
		samplePeriod = 1
	}
	flags := EventCall | EventReturn
	if samplePeriod > 1 {
		flags |= FlagSampled
	}
	slots := make([]rawSlot, len(entries))
	var maxCounter uint64
	for i, e := range entries {
		w0 := e.Counter & counterMask
		if e.Kind == KindReturn {
			w0 |= kindBit
		}
		slots[i] = rawSlot{w0: w0, w1: e.Addr, w2: e.ThreadID}
		if e.Counter > maxCounter {
			maxCounter = e.Counter
		}
	}
	return buildDecoded(slots, Version, pid, profilerAddr, flags, maxCounter, samplePeriod)
}
