package shmlog

import (
	"fmt"
	"io"
	"sync"
)

// SwapWriter is a double-buffered writer: Write fills the active buffer in
// the caller's goroutine, and whenever the buffer fills it is swapped with
// a free one and handed to a single background flusher goroutine that
// drains it into the underlying writer. The producer therefore keeps
// encoding while the previous buffer is in flight — the asynclogger
// swap-and-flush shape — so persisting a large log overlaps encoding with
// I/O instead of alternating, and a slow disk no longer stalls the
// appenders a checkpoint pass snapshots around.
//
// Buffers are handed over in order through an unbuffered channel, so
// writes reach the underlying writer in order and memory use is bounded at
// two buffers: one filling, one draining. The flusher's first error is
// sticky: subsequent Writes fail fast with it, and Flush/Close return it.
//
// SwapWriter is not safe for concurrent Write calls; it has exactly one
// producer (the encoder) and owns exactly one consumer (the flusher).
type SwapWriter struct {
	w       io.Writer
	active  []byte // buffer being filled by Write
	fill    int
	written int64

	ch   chan swapChunk // filled buffers / barriers, in order
	free chan []byte    // drained buffers coming back from the flusher
	done chan struct{}

	mu     sync.Mutex
	err    error
	closed bool
}

// swapChunk is one handover to the flusher: a filled buffer and/or a
// barrier to close once everything enqueued so far has reached the
// underlying writer.
type swapChunk struct {
	buf     []byte
	barrier chan struct{}
}

// swapBufSize is the default buffer size: matches the bulk encoder chunking
// and is a multiple of the 4096-byte direct-I/O block size.
const swapBufSize = bulkBufSize

// NewSwapWriter returns a SwapWriter over w with two size-byte buffers
// (size <= 0 selects the 64 KiB default) and starts its flusher goroutine.
// Callers must Close it to stop the flusher and surface trailing errors.
func NewSwapWriter(w io.Writer, size int) *SwapWriter {
	if size <= 0 {
		size = swapBufSize
	}
	sw := &SwapWriter{
		w:      w,
		active: make([]byte, size),
		ch:     make(chan swapChunk),
		free:   make(chan []byte, 1),
		done:   make(chan struct{}),
	}
	sw.free <- make([]byte, size) // the second buffer starts out free
	go sw.flusher()
	return sw
}

// flusher drains handed-over buffers into the underlying writer in order.
// After an error it keeps consuming (so the producer never blocks) but
// stops writing; the error is surfaced through loadErr.
func (sw *SwapWriter) flusher() {
	defer close(sw.done)
	for chunk := range sw.ch {
		if chunk.buf != nil {
			if sw.loadErr() == nil {
				n, err := sw.w.Write(chunk.buf)
				if err == nil && n < len(chunk.buf) {
					err = io.ErrShortWrite
				}
				if err != nil {
					sw.storeErr(err)
				}
			}
			sw.free <- chunk.buf[:cap(chunk.buf)]
		}
		if chunk.barrier != nil {
			close(chunk.barrier)
		}
	}
}

func (sw *SwapWriter) loadErr() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.err
}

func (sw *SwapWriter) storeErr(err error) {
	sw.mu.Lock()
	if sw.err == nil {
		sw.err = err
	}
	sw.mu.Unlock()
}

// Write fills the active buffer, swapping it to the flusher whenever it
// fills up. The only wait is for the flusher to hand back the other
// buffer — bounded by one buffer's drain — so encoding overlaps I/O.
func (sw *SwapWriter) Write(p []byte) (int, error) {
	if sw.closed {
		return 0, fmt.Errorf("shmlog: write on closed SwapWriter")
	}
	if err := sw.loadErr(); err != nil {
		return 0, err
	}
	total := len(p)
	for len(p) > 0 {
		n := copy(sw.active[sw.fill:], p)
		sw.fill += n
		p = p[n:]
		if sw.fill == len(sw.active) {
			if err := sw.swap(nil); err != nil {
				return total - len(p), err
			}
		}
	}
	sw.written += int64(total)
	return total, nil
}

// swap hands the active buffer (and an optional barrier) to the flusher
// and installs a drained buffer as the new active one, blocking until the
// flusher returns it.
func (sw *SwapWriter) swap(barrier chan struct{}) error {
	chunk := swapChunk{buf: sw.active[:sw.fill], barrier: barrier}
	if sw.fill == 0 {
		chunk.buf = nil
	}
	sw.ch <- chunk
	if chunk.buf != nil {
		sw.active = <-sw.free
		sw.fill = 0
	}
	return sw.loadErr()
}

// Flush hands any buffered bytes to the flusher and blocks until every byte
// written so far has reached the underlying writer, returning the sticky
// error if any write failed.
func (sw *SwapWriter) Flush() error {
	if sw.closed {
		return sw.loadErr()
	}
	barrier := make(chan struct{})
	err := sw.swap(barrier)
	<-barrier
	if ferr := sw.loadErr(); err == nil {
		err = ferr
	}
	return err
}

// Written returns how many bytes have been accepted by Write (buffered or
// flushed). After a successful Flush or Close, all of them have reached the
// underlying writer.
func (sw *SwapWriter) Written() int64 { return sw.written }

// Close flushes remaining bytes, stops the flusher goroutine and returns
// the first error encountered. Close is idempotent.
func (sw *SwapWriter) Close() error {
	if sw.closed {
		return sw.loadErr()
	}
	err := sw.Flush()
	sw.closed = true
	close(sw.ch)
	<-sw.done
	if ferr := sw.loadErr(); err == nil {
		err = ferr
	}
	return err
}
