package shmlog

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// TestReserveShardOverloadTailBounded is the overload-path regression test:
// before the tail was parked at capacity, every failed reservation grew the
// shared tail word without bound, so Tail() (and everything derived from it
// — fill gauges, recovery clamps) lost meaning under sustained overload.
// Hammer a full log from many goroutines and check the tail stays within
// the in-flight overshoot bound throughout, and settles exactly at the
// capacity once the writers quiesce.
func TestReserveShardOverloadTailBounded(t *testing.T) {
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			const (
				goroutines = 8
				batch      = 8
				attempts   = 2000
			)
			l, err := New(64, WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			// Fill every segment to the brim first.
			for s := 0; s < shards; s++ {
				for {
					slot, n := l.ReserveShard(s, 1)
					if n == 0 {
						break
					}
					l.Commit(slot, Entry{Kind: KindCall, Counter: 1, Addr: 2, ThreadID: uint64(s + 1)})
				}
			}
			capTotal := uint64(l.Capacity())
			if got := l.Tail(); got != capTotal {
				t.Fatalf("tail after fill = %d, want %d", got, capTotal)
			}

			// The documented transient bound: the sum of in-flight
			// reservation batches.
			bound := capTotal + uint64(goroutines*batch)
			var worst atomic.Uint64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					shard := g % shards
					for i := 0; i < attempts; i++ {
						if _, n := l.ReserveShard(shard, batch); n != 0 {
							t.Errorf("reservation succeeded on a full segment (%d slots)", n)
							return
						}
						l.NoteDroppedShard(shard, batch)
						if tail := l.Tail(); tail > bound {
							// Record, don't Fatal: worst case is asserted once below.
							worst.Store(tail)
						}
					}
				}(g)
			}
			wg.Wait()

			if w := worst.Load(); w != 0 {
				t.Fatalf("tail overshot the in-flight bound: saw %d, bound %d", w, bound)
			}
			if got := l.Tail(); got != capTotal {
				t.Fatalf("tail after quiesce = %d, want parked at capacity %d", got, capTotal)
			}
			for s, st := range l.SegmentStats() {
				if st.Tail != st.Capacity {
					t.Fatalf("segment %d tail = %d, want its capacity %d", s, st.Tail, st.Capacity)
				}
			}
			if got, want := l.Dropped(), uint64(goroutines*batch*attempts); got != want {
				t.Fatalf("dropped = %d, want %d", got, want)
			}
			if got := len(l.Entries()); got != int(capTotal) {
				t.Fatalf("Entries = %d, want the %d committed before overload", got, capTotal)
			}
		})
	}
}

// TestShardedPerThreadOrderProperty is the sharding conformance property:
// for every batch × shards combination, concurrent writers driving the
// batched reserve/commit protocol produce a log whose readers (Entries,
// the merging Cursor, and a persist/Read round trip) all observe each
// thread's entries complete and in write order — exactly what a single-tail
// log guarantees. Run under -race this also exercises the per-segment
// reserve path against racing readers.
func TestShardedPerThreadOrderProperty(t *testing.T) {
	for _, batch := range []int{1, 4, 16} {
		for _, shards := range []int{1, 4, 16} {
			batch, shards := batch, shards
			t.Run(fmt.Sprintf("batch=%d,shards=%d", batch, shards), func(t *testing.T) {
				runShardOrderProperty(t, batch, shards)
			})
		}
	}
}

func runShardOrderProperty(t *testing.T, batch, shards int) {
	const (
		threads         = 8
		eventsPerThread = 500
	)
	// Capacity is sized so every segment can hold all the threads that
	// hash onto it even in the worst (all-on-one-shard) skew.
	l, err := New(shards*threads*(eventsPerThread+batch), WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}

	// A concurrent merging cursor drains while writers append; its view is
	// checked against the same invariant afterwards.
	cur := l.Cursor()
	var drained []Entry
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			drained = cur.Next(drained)
			select {
			case <-stop:
				drained = cur.Next(drained)
				return
			default:
			}
		}
	}()

	// A shared monotone clock makes counters strictly increasing per
	// thread (and globally unique), like the profiler's counter thread.
	var clock atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(tid uint64) {
			defer wg.Done()
			shard := l.ShardOf(tid)
			written := 0
			for written < eventsPerThread {
				slot, n := l.ReserveShard(shard, batch)
				if n == 0 {
					t.Errorf("thread %d: log full after %d events", tid, written)
					return
				}
				for i := 0; i < n; i++ {
					if written == eventsPerThread {
						l.Release(slot + uint64(i)) // unused trailing slots
						continue
					}
					l.Commit(slot+uint64(i), Entry{
						Kind:     KindCall,
						Counter:  clock.Add(1),
						Addr:     0x1000 + tid,
						ThreadID: tid,
					})
					written++
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	close(stop)
	<-readerDone

	check := func(src string, entries []Entry) {
		t.Helper()
		perThread := make(map[uint64][]uint64)
		for _, e := range entries {
			if e.ThreadID == 0 || e.ThreadID == TombstoneTID {
				t.Fatalf("%s: reader surfaced an uncommitted slot: %+v", src, e)
			}
			perThread[e.ThreadID] = append(perThread[e.ThreadID], e.Counter)
		}
		if len(perThread) != threads {
			t.Fatalf("%s: %d threads observed, want %d", src, len(perThread), threads)
		}
		for tid, counters := range perThread {
			if len(counters) != eventsPerThread {
				t.Fatalf("%s: thread %d has %d entries, want %d", src, tid, len(counters), eventsPerThread)
			}
			for i := 1; i < len(counters); i++ {
				if counters[i] <= counters[i-1] {
					t.Fatalf("%s: thread %d order broken at %d: counter %d after %d",
						src, tid, i, counters[i], counters[i-1])
				}
			}
		}
	}

	check("cursor", drained)
	check("Entries", l.Entries())

	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	check("Read", decoded.Entries())
	// The persisted stream carries every reserved slot — committed entries
	// plus the released tails of partial batches, which readers dismiss.
	reserved := threads * ((eventsPerThread + batch - 1) / batch) * batch
	if decoded.Len() != reserved {
		t.Fatalf("decoded Len = %d, want %d reserved slots (batch %d)",
			decoded.Len(), reserved, batch)
	}
}

// TestShardedPersistMergesByCounter pins the read-time merge: a persisted
// multi-shard log decodes to a single stream globally ordered by counter,
// byte-identical to what the same events produce through a single-tail
// log — the invariant that keeps the analyzer output independent of the
// shard count.
func TestShardedPersistMergesByCounter(t *testing.T) {
	const threads, events = 6, 40
	write := func(shards int) *Log {
		// Sized so each segment can hold every event in the worst skew.
		l, err := New(shards*threads*events, WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic round-robin schedule: thread t's k-th event has
		// global counter k*threads+t, so the fully merged stream is the
		// counter sequence 0,1,2,...
		for k := 0; k < events; k++ {
			for tid := 1; tid <= threads; tid++ {
				e := Entry{
					Kind:     KindCall,
					Counter:  uint64(k*threads + tid),
					Addr:     0x4000 + uint64(tid),
					ThreadID: uint64(tid),
				}
				if err := l.Append(e); err != nil {
					t.Fatal(err)
				}
			}
		}
		return l
	}

	roundTrip := func(l *Log) []Entry {
		var buf bytes.Buffer
		if _, err := l.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		decoded, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return decoded.Entries()
	}

	want := roundTrip(write(1))
	if !sort.SliceIsSorted(want, func(i, j int) bool { return want[i].Counter < want[j].Counter }) {
		t.Fatal("single-tail reference stream is not counter-ordered")
	}
	for _, shards := range []int{2, 3, 8} {
		got := roundTrip(write(shards))
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d entries, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: entry %d = %+v, want %+v (merge not counter-ordered)",
					shards, i, got[i], want[i])
			}
		}
	}
}
