package shmlog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"teeperf/internal/faultinject"
)

// encodeCurrent persists a small committed log in the current format and
// returns the raw bytes plus the entries it carries.
func encodeCurrent(t *testing.T, n int) ([]byte, []Entry) {
	t.Helper()
	l, err := New(n, WithPID(42), WithProfilerAddr(0x400000))
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		kind := KindCall
		if i%2 == 1 {
			kind = KindReturn
		}
		e := Entry{Kind: kind, Counter: uint64(100 + i), Addr: uint64(0x400010 + 16*(i/2)), ThreadID: uint64(1 + i%2)}
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, e)
	}
	l.AddCounter(999)
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), entries
}

// readLenient is the test helper: ReadLenient must never fail on torn or
// corrupted inputs (only on real I/O errors).
func readLenient(t *testing.T, data []byte) (*Log, *RecoveryReport) {
	t.Helper()
	log, rep, err := ReadLenient(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadLenient: %v", err)
	}
	if log == nil || rep == nil {
		t.Fatal("ReadLenient returned nil log or report")
	}
	return log, rep
}

// sameEntries compares entry slices treating nil and empty as equal.
func sameEntries(got, want []Entry) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// hasClass reports whether the report observed the corruption class.
func hasClass(rep *RecoveryReport, c Corruption) bool {
	for _, have := range rep.Corruption {
		if have == c {
			return true
		}
	}
	return false
}

// TestReadLenientClean: an undamaged stream salvages everything and the
// report is clean — lenient reading is a strict superset of Read.
func TestReadLenientClean(t *testing.T) {
	raw, want := encodeCurrent(t, 6)
	log, rep := readLenient(t, raw)
	if !rep.Clean() {
		t.Fatalf("clean input produced dirty report: %v", rep)
	}
	if rep.EntriesSalvaged != 6 || rep.EntriesPresent != 6 {
		t.Fatalf("salvaged %d/%d, want 6/6", rep.EntriesSalvaged, rep.EntriesPresent)
	}
	if rep.BytesSalvaged != rep.BytesRead {
		t.Fatalf("BytesSalvaged %d != BytesRead %d on clean input", rep.BytesSalvaged, rep.BytesRead)
	}
	if got := log.Entries(); !sameEntries(got, want) {
		t.Fatalf("entries = %+v, want %+v", got, want)
	}
	if log.PID() != 42 || log.ProfilerAddr() != 0x400000 || log.LoadCounter() != 999 {
		t.Fatalf("header fields lost: pid=%d addr=%#x counter=%d", log.PID(), log.ProfilerAddr(), log.LoadCounter())
	}
	if log.Active() {
		t.Fatal("recovered log must be inactive")
	}
}

// TestReadLenientTruncationMatrix cuts a valid 2-entry stream at every
// 8-byte boundary of the headers and the first two entries, asserting the
// exact salvage count at each cut — the crash-consistency contract that a
// tear at any word boundary loses at most the uncommitted tail.
func TestReadLenientTruncationMatrix(t *testing.T) {
	raw, want := encodeCurrent(t, 2)
	entriesStart := HeaderSize + SegHeaderSize
	total := entriesStart + 2*EntrySize // 368 bytes
	if len(raw) != total {
		t.Fatalf("fixture is %d bytes, want %d", len(raw), total)
	}
	for cut := 0; cut <= total; cut += 8 {
		torn := faultinject.Truncate(raw, cut)
		log, rep := readLenient(t, torn)

		wantSalvaged := 0
		if cut > entriesStart {
			wantSalvaged = (cut - entriesStart) / EntrySize
		}
		if rep.EntriesSalvaged != wantSalvaged {
			t.Errorf("cut %d: salvaged %d entries, want %d (report %v)", cut, rep.EntriesSalvaged, wantSalvaged, rep)
			continue
		}
		if got := log.Entries(); !sameEntries(got, want[:wantSalvaged]) {
			t.Errorf("cut %d: entries = %+v, want %+v", cut, got, want[:wantSalvaged])
		}

		switch {
		case cut == 0:
			if !hasClass(rep, CorruptEmptyInput) {
				t.Errorf("cut 0: classes %v, want empty-input", rep.Corruption)
			}
		case cut < entriesStart:
			// Inside the main header or the segment header: both report
			// a truncated header.
			if !hasClass(rep, CorruptTruncatedHeader) {
				t.Errorf("cut %d: classes %v, want truncated-header", cut, rep.Corruption)
			}
		case cut < total:
			if (cut-entriesStart)%EntrySize != 0 && !hasClass(rep, CorruptTornEntry) {
				t.Errorf("cut %d: classes %v, want torn-entry", cut, rep.Corruption)
			}
		default:
			if !rep.Clean() {
				t.Errorf("cut %d (no cut): dirty report %v", cut, rep)
			}
		}

		// Every salvaged log must be strictly loadable after re-encoding:
		// recovery output is indistinguishable from a clean recording.
		var out bytes.Buffer
		if _, err := log.WriteTo(&out); err != nil {
			t.Fatalf("cut %d: re-encode: %v", cut, err)
		}
		if _, err := Read(&out); err != nil {
			t.Fatalf("cut %d: strict Read of salvaged log: %v", cut, err)
		}
	}
}

// TestReadLenientV1TornMidEntry: the legacy format salvages the committed
// prefix of a stream torn mid-entry.
func TestReadLenientV1TornMidEntry(t *testing.T) {
	entries := []Entry{
		{Kind: KindCall, Counter: 1, Addr: 0xA, ThreadID: 1},
		{Kind: KindReturn, Counter: 5, Addr: 0xA, ThreadID: 1},
		{Kind: KindCall, Counter: 9, Addr: 0xB, ThreadID: 2},
	}
	raw := encodeV1(EventCall|EventReturn, 7, 0x1000, 55, entries)
	torn := faultinject.Truncate(raw, -13) // tear the last entry mid-word

	log, rep := readLenient(t, torn)
	if rep.SourceVersion != VersionV1 {
		t.Fatalf("SourceVersion = %d, want v1", rep.SourceVersion)
	}
	if rep.EntriesSalvaged != 2 || !hasClass(rep, CorruptTornEntry) || !rep.TailClamped {
		t.Fatalf("report = %v, want 2 salvaged + torn-entry + tail clamp", rep)
	}
	if got := log.Entries(); !sameEntries(got, entries[:2]) {
		t.Fatalf("entries = %+v, want %+v", got, entries[:2])
	}
	// A v1 header torn below 64 bytes is unrecoverable by design: the v1
	// magic lives in the last header word.
	short, rep2, err := ReadLenient(bytes.NewReader(raw[:HeaderSizeV1-8]))
	if err != nil || short.Len() != 0 || !hasClass(rep2, CorruptBadMagic) {
		t.Fatalf("torn v1 header: log=%v report=%v err=%v, want empty + bad-magic", short.Len(), rep2, err)
	}
}

// TestReadLenientTailPastEOF: a header whose tail (and capacity) promise
// more entries than the stream carries is clamped to the last fully
// committed entry instead of being rejected.
func TestReadLenientTailPastEOF(t *testing.T) {
	raw, want := encodeCurrent(t, 4)
	binary.LittleEndian.PutUint64(raw[wordTail*8:], 4000)
	binary.LittleEndian.PutUint64(raw[wordCapacity*8:], 4000)
	// Since v3 the per-segment header is authoritative: inflate it too.
	binary.LittleEndian.PutUint64(raw[(HeaderWords+segWordTail)*8:], 4000)
	binary.LittleEndian.PutUint64(raw[(HeaderWords+segWordCapacity)*8:], 4000)

	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("strict Read: err = %v, want ErrTruncated", err)
	}
	log, rep := readLenient(t, raw)
	if !rep.TailClamped || !hasClass(rep, CorruptTailRange) {
		t.Fatalf("report = %v, want tail clamp", rep)
	}
	if got := log.Entries(); !sameEntries(got, want) {
		t.Fatalf("entries = %+v, want %+v", got, want)
	}
}

// TestReadLenientCommitMarkers: in-flight (zero), released (tombstone) and
// garbage commit markers are dropped and counted by class; committed
// entries around them survive.
func TestReadLenientCommitMarkers(t *testing.T) {
	l, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	commit := func(slot uint64, tid uint64) {
		l.Commit(slot, Entry{Kind: KindCall, Counter: 10 * (slot + 1), Addr: 0xC0DE, ThreadID: tid})
	}
	start, n := l.Reserve(5)
	if n != 5 {
		t.Fatalf("reserved %d slots, want 5", n)
	}
	commit(start, 1)       // committed
	_ = start + 1          // slot 1: left in flight (zero marker)
	l.Release(start + 2)   // tombstone
	commit(start+3, 1<<40) // garbage marker (implausible thread ID)
	commit(start+4, 2)     // committed
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	log, rep := readLenient(t, buf.Bytes())
	if rep.EntriesSalvaged != 2 || rep.DroppedInFlight != 1 || rep.DroppedTombstone != 1 || rep.DroppedGarbage != 1 {
		t.Fatalf("report = %v, want 2 salvaged, 1 in-flight, 1 tombstone, 1 garbage", rep)
	}
	if !hasClass(rep, CorruptGarbageMarker) {
		t.Fatalf("classes = %v, want garbage-commit-marker", rep.Corruption)
	}
	got := log.Entries()
	if len(got) != 2 || got[0].ThreadID != 1 || got[1].ThreadID != 2 {
		t.Fatalf("entries = %+v, want the two committed ones", got)
	}
}

// TestReadLenientBitFlippedHeader: seed-driven bit flips in the header
// region (past the magic word) still salvage the full entry region — the
// header fields are either normalized or clamped against what is
// physically present.
func TestReadLenientBitFlippedHeader(t *testing.T) {
	raw, _ := encodeCurrent(t, 8)
	inj := faultinject.New(7)
	// Flip bits across the mutable header region only: words 1.. (the
	// magic in word 0 is the one unrecoverable anchor, by design).
	flipped := inj.FlipBits(raw, 8, HeaderSize, 64)

	log, rep := readLenient(t, flipped)
	if rep.EntriesSalvaged != 8 {
		t.Fatalf("salvaged %d entries, want all 8 (report %v)", rep.EntriesSalvaged, rep)
	}
	if rep.Clean() {
		t.Fatalf("64 header bit flips produced a clean report: %v", rep)
	}
	var out bytes.Buffer
	if _, err := log.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&out); err != nil {
		t.Fatalf("strict Read of salvaged log: %v", err)
	}
}

// TestReadLenientBitFlippedEntries: bit flips confined to the entry region
// never panic and drop at most the entries whose commit marker was hit.
func TestReadLenientBitFlippedEntries(t *testing.T) {
	raw, _ := encodeCurrent(t, 16)
	inj := faultinject.New(11)
	flipped := inj.FlipBits(raw, HeaderSize, len(raw), 48)

	log, rep := readLenient(t, flipped)
	if rep.EntriesPresent != 16 {
		t.Fatalf("present %d, want 16", rep.EntriesPresent)
	}
	if rep.EntriesSalvaged+rep.EntriesDropped != 16 {
		t.Fatalf("salvaged %d + dropped %d != 16", rep.EntriesSalvaged, rep.EntriesDropped)
	}
	if log.Len() != rep.EntriesSalvaged {
		t.Fatalf("log.Len %d != salvaged %d", log.Len(), rep.EntriesSalvaged)
	}
}

// TestReadLenientGarbage: arbitrary non-log bytes salvage nothing but
// produce a usable empty log and a bad-magic report, never an error.
func TestReadLenientGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0xFF}, 512),
		make([]byte, 512),
	} {
		log, rep := readLenient(t, data)
		if log.Len() != 0 {
			t.Fatalf("garbage salvaged %d entries", log.Len())
		}
		if len(data) == 0 {
			if !hasClass(rep, CorruptEmptyInput) {
				t.Fatalf("empty: classes %v", rep.Corruption)
			}
		} else if !hasClass(rep, CorruptBadMagic) {
			t.Fatalf("garbage: classes %v, want bad-magic", rep.Corruption)
		}
	}
}

// TestReadTypedErrors pins the typed decode errors the CLI keys its
// recovery hint on.
func TestReadTypedErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, ErrEmptyLog) || !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty: err = %v, want ErrEmptyLog wrapping ErrTruncated", err)
	}
	if _, err := Read(bytes.NewReader(make([]byte, 32))); !errors.Is(err, ErrTruncatedHeader) || !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: err = %v, want ErrTruncatedHeader wrapping ErrTruncated", err)
	}
	raw, _ := encodeCurrent(t, 1)
	if _, err := Read(bytes.NewReader(raw[:HeaderSize-8])); !errors.Is(err, ErrTruncatedHeader) {
		t.Fatalf("torn v2 header: err = %v, want ErrTruncatedHeader", err)
	}
}
