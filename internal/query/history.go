package query

import (
	"teeperf/internal/analyzer"
)

// DiffFrame lifts a differential-query result (per-function share deltas
// between two history windows) into a frame, so history diffs compose with
// the same sort/head/CSV/JSON machinery as profile queries.
func DiffFrame(rows []analyzer.DiffRow) *Frame {
	f, err := NewFrame("name", "before_pct", "after_pct", "delta_pct", "before_calls", "after_calls")
	if err != nil {
		panic("query: DiffFrame columns invalid: " + err.Error())
	}
	for _, r := range rows {
		if err := f.AppendRow(
			Str(r.Name),
			Float(100*r.BeforeShare),
			Float(100*r.AfterShare),
			Float(100*r.DeltaShare),
			Int(int64(r.BeforeCalls)),
			Int(int64(r.AfterCalls)),
		); err != nil {
			panic("query: DiffFrame row invalid: " + err.Error())
		}
	}
	return f
}
