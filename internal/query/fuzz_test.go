package query

import "testing"

// FuzzCompile: the expression parser must never panic; compiled
// expressions must evaluate without panicking on any row.
func FuzzCompile(f *testing.F) {
	f.Add(`thread == 1 && name =~ "rocksdb"`)
	f.Add(`self > 100 || (depth < 3 && !(caller == "main"))`)
	f.Add(`x != 'y'`)
	f.Add(`((((`)
	f.Add(`a =~ "("`)
	f.Add(`1 == 1`)
	f.Fuzz(func(t *testing.T, expr string) {
		pred, err := Compile(expr)
		if err != nil {
			return
		}
		// Evaluate against a row where every column resolves, and one
		// where none does: both must be panic-free.
		_, _ = pred.Eval(func(string) (Value, bool) { return Int(1), true })
		_, _ = pred.Eval(func(string) (Value, bool) { return Value{}, false })
	})
}
