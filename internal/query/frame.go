// Package query is TEE-Perf's declarative query interface (the role pandas
// plays for the original analyzer). Profile records become a column-typed
// frame that supports a filter expression language, group-by aggregation,
// sorting and pretty-printing — enough to ask the paper's questions, e.g.
// "which thread called which method how often".
package query

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"teeperf/internal/analyzer"
)

// Kind is a column value type.
type Kind int

// Column kinds.
const (
	KindInt Kind = iota + 1
	KindFloat
	KindString
)

// Value is one cell.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// AsInt converts to int64 (floats truncate, strings are 0).
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindFloat:
		return int64(v.f)
	case KindString:
		return 0
	default:
		return v.i
	}
}

// AsFloat converts to float64 (strings are 0).
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindString:
		return 0
	default:
		return v.f
	}
}

// AsString renders the value.
func (v Value) AsString() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', 6, 64)
	default:
		return v.s
	}
}

// compare orders two values; strings compare lexically, numbers
// numerically (mixed numeric kinds compare as floats).
func compare(a, b Value) int {
	if a.kind == KindString || b.kind == KindString {
		return strings.Compare(a.AsString(), b.AsString())
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// Frame is an immutable table: named, typed columns over rows.
type Frame struct {
	cols []string
	idx  map[string]int
	rows [][]Value
}

// NewFrame creates a frame with the given column names.
func NewFrame(cols ...string) (*Frame, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("query: frame needs at least one column")
	}
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		if c == "" {
			return nil, fmt.Errorf("query: empty column name")
		}
		if _, dup := idx[c]; dup {
			return nil, fmt.Errorf("query: duplicate column %q", c)
		}
		idx[c] = i
	}
	return &Frame{cols: cols, idx: idx}, nil
}

// AppendRow adds a row; the value count must match the column count.
func (f *Frame) AppendRow(vals ...Value) error {
	if len(vals) != len(f.cols) {
		return fmt.Errorf("query: row has %d values, frame has %d columns", len(vals), len(f.cols))
	}
	row := make([]Value, len(vals))
	copy(row, vals)
	f.rows = append(f.rows, row)
	return nil
}

// Columns returns the column names.
func (f *Frame) Columns() []string {
	out := make([]string, len(f.cols))
	copy(out, f.cols)
	return out
}

// Len returns the number of rows.
func (f *Frame) Len() int { return len(f.rows) }

// At returns the cell at row r, column name col.
func (f *Frame) At(r int, col string) (Value, error) {
	ci, ok := f.idx[col]
	if !ok {
		return Value{}, fmt.Errorf("query: unknown column %q", col)
	}
	if r < 0 || r >= len(f.rows) {
		return Value{}, fmt.Errorf("query: row %d out of range [0,%d)", r, len(f.rows))
	}
	return f.rows[r][ci], nil
}

// FromProfile builds the canonical record frame with columns:
// thread, name, caller, depth, start, end, incl, self, truncated.
func FromProfile(p *analyzer.Profile) *Frame {
	f, err := NewFrame("thread", "name", "caller", "depth", "start", "end", "incl", "self", "truncated")
	if err != nil {
		// Static column list; cannot fail.
		panic(err)
	}
	for _, r := range p.Records() {
		trunc := int64(0)
		if r.Truncated {
			trunc = 1
		}
		// Static arity; AppendRow cannot fail.
		_ = f.AppendRow(
			Int(int64(r.Thread)),
			Str(r.Name),
			Str(r.Caller),
			Int(int64(r.Depth)),
			Int(int64(r.Start)),
			Int(int64(r.End)),
			Int(int64(r.Incl)),
			Int(int64(r.Self)),
			Int(trunc),
		)
	}
	return f
}

// Filter returns the rows matching the expression, e.g.
//
//	thread == 3 && name =~ "rocksdb" && self > 1000
func (f *Frame) Filter(expr string) (*Frame, error) {
	pred, err := Compile(expr)
	if err != nil {
		return nil, err
	}
	out := &Frame{cols: f.cols, idx: f.idx}
	for _, row := range f.rows {
		ok, err := pred.Eval(func(col string) (Value, bool) {
			ci, exists := f.idx[col]
			if !exists {
				return Value{}, false
			}
			return row[ci], true
		})
		if err != nil {
			return nil, err
		}
		if ok {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// SortOrder selects ascending or descending order.
type SortOrder int

// Sort orders.
const (
	Asc SortOrder = iota + 1
	Desc
)

// Sort returns a copy sorted by the given column.
func (f *Frame) Sort(col string, order SortOrder) (*Frame, error) {
	ci, ok := f.idx[col]
	if !ok {
		return nil, fmt.Errorf("query: unknown column %q", col)
	}
	out := &Frame{cols: f.cols, idx: f.idx, rows: make([][]Value, len(f.rows))}
	copy(out.rows, f.rows)
	sort.SliceStable(out.rows, func(i, j int) bool {
		c := compare(out.rows[i][ci], out.rows[j][ci])
		if order == Desc {
			return c > 0
		}
		return c < 0
	})
	return out, nil
}

// Head returns the first n rows.
func (f *Frame) Head(n int) *Frame {
	if n > len(f.rows) {
		n = len(f.rows)
	}
	if n < 0 {
		n = 0
	}
	out := &Frame{cols: f.cols, idx: f.idx, rows: make([][]Value, n)}
	copy(out.rows, f.rows[:n])
	return out
}

// String renders the frame as an aligned text table.
func (f *Frame) String() string {
	var sb strings.Builder
	// Errors are impossible when writing to a strings.Builder.
	_ = f.WriteTable(&sb)
	return sb.String()
}

// WriteTable renders the frame as an aligned text table to w.
func (f *Frame) WriteTable(w io.Writer) error {
	widths := make([]int, len(f.cols))
	for i, c := range f.cols {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(f.rows))
	for r, row := range f.rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.AsString()
			if len(cells[i]) > widths[i] {
				widths[i] = len(cells[i])
			}
		}
		rendered[r] = cells
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := writeRow(f.cols); err != nil {
		return err
	}
	for _, cells := range rendered {
		if err := writeRow(cells); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the frame as CSV to w.
func (f *Frame) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	if _, err := fmt.Fprintln(w, strings.Join(f.cols, ",")); err != nil {
		return err
	}
	for _, row := range f.rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = esc(v.AsString())
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Select returns a frame with only the named columns, in the given order.
func (f *Frame) Select(cols ...string) (*Frame, error) {
	out, err := NewFrame(cols...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		ci, ok := f.idx[c]
		if !ok {
			return nil, fmt.Errorf("query: unknown column %q", c)
		}
		idx[i] = ci
	}
	for _, row := range f.rows {
		cells := make([]Value, len(idx))
		for i, ci := range idx {
			cells[i] = row[ci]
		}
		out.rows = append(out.rows, cells)
	}
	return out, nil
}

// Distinct returns a frame with duplicate rows removed, keeping first
// occurrences in order.
func (f *Frame) Distinct() *Frame {
	out := &Frame{cols: f.cols, idx: f.idx}
	seen := make(map[string]struct{}, len(f.rows))
	for _, row := range f.rows {
		var sb strings.Builder
		for _, v := range row {
			sb.WriteString(v.AsString())
			sb.WriteByte('\x00')
		}
		key := sb.String()
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out.rows = append(out.rows, row)
	}
	return out
}

// WriteJSON renders the frame as a JSON array of objects keyed by column
// name (integers and floats as numbers, strings as strings).
func (f *Frame) WriteJSON(w io.Writer) error {
	rows := make([]map[string]any, 0, len(f.rows))
	for _, row := range f.rows {
		m := make(map[string]any, len(f.cols))
		for i, c := range f.cols {
			switch row[i].Kind() {
			case KindInt:
				m[c] = row[i].AsInt()
			case KindFloat:
				m[c] = row[i].AsFloat()
			default:
				m[c] = row[i].AsString()
			}
		}
		rows = append(rows, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
