package query

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"unicode"
)

// Predicate is a compiled filter expression evaluated per row.
type Predicate struct {
	root node
}

// Lookup resolves a column name to its value in the current row.
type Lookup func(col string) (Value, bool)

// Compile parses a filter expression. The grammar:
//
//	expr   := or
//	or     := and ("||" and)*
//	and    := unary ("&&" unary)*
//	unary  := "!" unary | "(" expr ")" | cmp
//	cmp    := operand (op operand)
//	op     := "==" | "!=" | "<" | "<=" | ">" | ">=" | "=~" | "!~"
//	operand:= ident | int | float | string
//
// "=~" and "!~" match the left side against a regular expression literal.
func Compile(expr string) (*Predicate, error) {
	toks, err := lex(expr)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("query: unexpected token %q", p.peek().text)
	}
	return &Predicate{root: root}, nil
}

// Eval evaluates the predicate against one row.
func (p *Predicate) Eval(lookup Lookup) (bool, error) {
	return p.root.eval(lookup)
}

// --- lexer ---

type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokInt
	tokFloat
	tokString
	tokOp
	tokLParen
	tokRParen
)

type token struct {
	kind tokenKind
	text string
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < len(s) && s[j] != quote {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				sb.WriteByte(s[j])
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("query: unterminated string at %d", i)
			}
			toks = append(toks, token{tokString, sb.String()})
			i = j + 1
		case strings.ContainsRune("=!<>&|~", rune(c)):
			j := i
			for j < len(s) && strings.ContainsRune("=!<>&|~", rune(s[j])) {
				j++
			}
			op := s[i:j]
			switch op {
			case "==", "!=", "<", "<=", ">", ">=", "=~", "!~", "&&", "||", "!":
				toks = append(toks, token{tokOp, op})
			default:
				return nil, fmt.Errorf("query: bad operator %q", op)
			}
			i = j
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9':
			j := i + 1
			isFloat := false
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
				(s[j] == '-' || s[j] == '+') && (s[j-1] == 'e' || s[j-1] == 'E')) {
				if s[j] == '.' || s[j] == 'e' || s[j] == 'E' {
					isFloat = true
				}
				j++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, s[i:j]})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_' || s[j] == '.') {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, i)
		}
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("query: empty expression")
	}
	return toks, nil
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{}
	}
	return p.toks[p.pos]
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.eof() {
		return false
	}
	t := p.toks[p.pos]
	if t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, "||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binNode{op: "||", l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOp, "&&") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binNode{op: "&&", l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	if p.accept(tokOp, "!") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notNode{inner: inner}, nil
	}
	if p.accept(tokLParen, "") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tokRParen, "") {
			return nil, fmt.Errorf("query: missing )")
		}
		return inner, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (node, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.eof() || p.peek().kind != tokOp {
		return nil, fmt.Errorf("query: expected comparison operator after operand")
	}
	op := p.peek().text
	switch op {
	case "==", "!=", "<", "<=", ">", ">=", "=~", "!~":
		p.pos++
	default:
		return nil, fmt.Errorf("query: expected comparison, got %q", op)
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if op == "=~" || op == "!~" {
		lit, ok := right.(*litNode)
		if !ok || lit.v.Kind() != KindString {
			return nil, fmt.Errorf("query: right side of %s must be a string literal", op)
		}
		re, err := regexp.Compile(lit.v.AsString())
		if err != nil {
			return nil, fmt.Errorf("query: bad regexp: %w", err)
		}
		return &matchNode{l: left, re: re, negate: op == "!~"}, nil
	}
	return &cmpNode{op: op, l: left, r: right}, nil
}

func (p *parser) parseOperand() (node, error) {
	if p.eof() {
		return nil, fmt.Errorf("query: unexpected end of expression")
	}
	t := p.toks[p.pos]
	switch t.kind {
	case tokIdent:
		p.pos++
		return &colNode{name: t.text}, nil
	case tokInt:
		p.pos++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad integer %q", t.text)
		}
		return &litNode{v: Int(v)}, nil
	case tokFloat:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad float %q", t.text)
		}
		return &litNode{v: Float(v)}, nil
	case tokString:
		p.pos++
		return &litNode{v: Str(t.text)}, nil
	default:
		return nil, fmt.Errorf("query: unexpected token %q", t.text)
	}
}

// --- evaluation nodes ---

type node interface {
	eval(Lookup) (bool, error)
}

type valueNode interface {
	value(Lookup) (Value, error)
}

type colNode struct{ name string }

func (n *colNode) value(lk Lookup) (Value, error) {
	v, ok := lk(n.name)
	if !ok {
		return Value{}, fmt.Errorf("query: unknown column %q", n.name)
	}
	return v, nil
}

func (n *colNode) eval(Lookup) (bool, error) {
	return false, fmt.Errorf("query: column %q used as boolean", n.name)
}

type litNode struct{ v Value }

func (n *litNode) value(Lookup) (Value, error) { return n.v, nil }
func (n *litNode) eval(Lookup) (bool, error) {
	return false, fmt.Errorf("query: literal used as boolean")
}

type cmpNode struct {
	op   string
	l, r node
}

func (n *cmpNode) eval(lk Lookup) (bool, error) {
	lv, err := operandValue(n.l, lk)
	if err != nil {
		return false, err
	}
	rv, err := operandValue(n.r, lk)
	if err != nil {
		return false, err
	}
	c := compare(lv, rv)
	switch n.op {
	case "==":
		return c == 0, nil
	case "!=":
		return c != 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	default:
		return false, fmt.Errorf("query: bad comparison %q", n.op)
	}
}

type matchNode struct {
	l      node
	re     *regexp.Regexp
	negate bool
}

func (n *matchNode) eval(lk Lookup) (bool, error) {
	lv, err := operandValue(n.l, lk)
	if err != nil {
		return false, err
	}
	m := n.re.MatchString(lv.AsString())
	if n.negate {
		return !m, nil
	}
	return m, nil
}

type binNode struct {
	op   string
	l, r node
}

func (n *binNode) eval(lk Lookup) (bool, error) {
	lv, err := n.l.eval(lk)
	if err != nil {
		return false, err
	}
	if n.op == "&&" && !lv {
		return false, nil
	}
	if n.op == "||" && lv {
		return true, nil
	}
	return n.r.eval(lk)
}

type notNode struct{ inner node }

func (n *notNode) eval(lk Lookup) (bool, error) {
	v, err := n.inner.eval(lk)
	if err != nil {
		return false, err
	}
	return !v, nil
}

func operandValue(n node, lk Lookup) (Value, error) {
	vn, ok := n.(valueNode)
	if !ok {
		return Value{}, fmt.Errorf("query: boolean expression used as operand")
	}
	return vn.value(lk)
}
