package query

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"teeperf/internal/analyzer"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

func sampleFrame(t *testing.T) *Frame {
	t.Helper()
	f, err := NewFrame("thread", "name", "self")
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		thread int64
		name   string
		self   int64
	}{
		{1, "rocksdb::Stats::Now", 100},
		{1, "main", 10},
		{2, "rocksdb::Stats::Now", 80},
		{2, "rocksdb::Get", 40},
		{3, "main", 5},
	}
	for _, r := range rows {
		if err := f.AppendRow(Int(r.thread), Str(r.name), Int(r.self)); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestNewFrameValidation(t *testing.T) {
	if _, err := NewFrame(); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := NewFrame(""); err == nil {
		t.Error("empty column name should fail")
	}
	if _, err := NewFrame("a", "a"); err == nil {
		t.Error("duplicate column should fail")
	}
}

func TestAppendRowArity(t *testing.T) {
	f, err := NewFrame("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AppendRow(Int(1)); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestAt(t *testing.T) {
	f := sampleFrame(t)
	v, err := f.At(0, "name")
	if err != nil {
		t.Fatal(err)
	}
	if v.AsString() != "rocksdb::Stats::Now" {
		t.Errorf("At(0,name) = %q", v.AsString())
	}
	if _, err := f.At(0, "nope"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := f.At(99, "name"); err == nil {
		t.Error("row out of range should fail")
	}
}

func TestValueConversions(t *testing.T) {
	tests := []struct {
		give       Value
		wantInt    int64
		wantFloat  float64
		wantString string
	}{
		{Int(7), 7, 7, "7"},
		{Float(2.5), 2, 2.5, "2.5"},
		{Str("x"), 0, 0, "x"},
	}
	for _, tt := range tests {
		if got := tt.give.AsInt(); got != tt.wantInt {
			t.Errorf("AsInt(%v) = %d, want %d", tt.give, got, tt.wantInt)
		}
		if got := tt.give.AsFloat(); got != tt.wantFloat {
			t.Errorf("AsFloat(%v) = %f, want %f", tt.give, got, tt.wantFloat)
		}
		if got := tt.give.AsString(); got != tt.wantString {
			t.Errorf("AsString(%v) = %q, want %q", tt.give, got, tt.wantString)
		}
	}
}

func TestFilterExpressions(t *testing.T) {
	f := sampleFrame(t)
	tests := []struct {
		expr string
		want int
	}{
		{expr: "thread == 1", want: 2},
		{expr: "thread != 1", want: 3},
		{expr: "self > 50", want: 2},
		{expr: "self >= 80", want: 2},
		{expr: "self < 10", want: 1},
		{expr: "self <= 10", want: 2},
		{expr: `name == "main"`, want: 2},
		{expr: `name =~ "rocksdb"`, want: 3},
		{expr: `name !~ "rocksdb"`, want: 2},
		{expr: `thread == 1 && name =~ "Stats"`, want: 1},
		{expr: `thread == 1 || thread == 3`, want: 3},
		{expr: `!(thread == 1)`, want: 3},
		{expr: `(thread == 1 || thread == 2) && self > 50`, want: 2},
		{expr: `name == 'main'`, want: 2}, // single quotes
		{expr: "self > 1000", want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			got, err := f.Filter(tt.expr)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != tt.want {
				t.Errorf("Filter(%q) kept %d rows, want %d", tt.expr, got.Len(), tt.want)
			}
		})
	}
}

func TestFilterErrors(t *testing.T) {
	f := sampleFrame(t)
	exprs := []string{
		"",
		"thread ==",
		"== 3",
		"thread = 3",
		"(thread == 1",
		"thread == 1 &&",
		`name =~ "("`,  // bad regexp
		"name =~ 42",   // regexp needs string literal
		"unknown == 1", // unknown column
		"thread",       // bare column
		"3 ~ 4",
		"thread == 1 extra",
		`name == "unterminated`,
		"thread @ 3",
	}
	for _, expr := range exprs {
		t.Run(expr, func(t *testing.T) {
			if _, err := f.Filter(expr); err == nil {
				t.Errorf("Filter(%q) should fail", expr)
			}
		})
	}
}

func TestFilterNumericLiterals(t *testing.T) {
	f, err := NewFrame("x")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-2.5, 0, 1.5, 3} {
		if err := f.AppendRow(Float(v)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := f.Filter("x >= -2.5 && x < 1.5e0")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("kept %d rows, want 2", got.Len())
	}
}

func TestSort(t *testing.T) {
	f := sampleFrame(t)
	desc, err := f.Sort("self", Desc)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := desc.At(0, "self")
	if v.AsInt() != 100 {
		t.Errorf("Sort desc first self = %d, want 100", v.AsInt())
	}
	asc, err := f.Sort("name", Asc)
	if err != nil {
		t.Fatal(err)
	}
	v, _ = asc.At(0, "name")
	if v.AsString() != "main" {
		t.Errorf("Sort asc first name = %q, want main", v.AsString())
	}
	if _, err := f.Sort("nope", Asc); err == nil {
		t.Error("unknown column should fail")
	}
	// Original unchanged.
	v, _ = f.At(0, "self")
	if v.AsInt() != 100 {
		t.Error("Sort mutated the source frame")
	}
}

func TestHead(t *testing.T) {
	f := sampleFrame(t)
	if got := f.Head(2).Len(); got != 2 {
		t.Errorf("Head(2).Len() = %d", got)
	}
	if got := f.Head(100).Len(); got != 5 {
		t.Errorf("Head(100).Len() = %d", got)
	}
	if got := f.Head(-1).Len(); got != 0 {
		t.Errorf("Head(-1).Len() = %d", got)
	}
}

func TestGroupBy(t *testing.T) {
	f := sampleFrame(t)
	g, err := f.GroupBy([]string{"name"},
		Count("calls"),
		Sum("self", "total_self"),
		Mean("self", "mean_self"),
		Min("self", "min_self"),
		Max("self", "max_self"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("groups = %d, want 3", g.Len())
	}
	// Groups are key-sorted: main, rocksdb::Get, rocksdb::Stats::Now.
	name, _ := g.At(0, "name")
	if name.AsString() != "main" {
		t.Errorf("group 0 = %q, want main", name.AsString())
	}
	calls, _ := g.At(0, "calls")
	if calls.AsInt() != 2 {
		t.Errorf("main calls = %d, want 2", calls.AsInt())
	}
	total, _ := g.At(2, "total_self")
	if total.AsFloat() != 180 {
		t.Errorf("Stats::Now total_self = %f, want 180", total.AsFloat())
	}
	mn, _ := g.At(0, "mean_self")
	if mn.AsFloat() != 7.5 {
		t.Errorf("main mean_self = %f, want 7.5", mn.AsFloat())
	}
	lo, _ := g.At(0, "min_self")
	hi, _ := g.At(0, "max_self")
	if lo.AsFloat() != 5 || hi.AsFloat() != 10 {
		t.Errorf("main min/max = %f/%f, want 5/10", lo.AsFloat(), hi.AsFloat())
	}
}

func TestGroupByMultiKeyAndQuantile(t *testing.T) {
	f := sampleFrame(t)
	g, err := f.GroupBy([]string{"thread", "name"}, Count("n"), Quantile("self", 0.5, "p50"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Errorf("groups = %d, want 5 (all rows distinct)", g.Len())
	}
	p50, _ := g.At(0, "p50")
	if p50.AsFloat() <= 0 {
		t.Errorf("p50 = %f, want > 0", p50.AsFloat())
	}
}

func TestGroupByErrors(t *testing.T) {
	f := sampleFrame(t)
	if _, err := f.GroupBy(nil, Count("n")); err == nil {
		t.Error("no keys should fail")
	}
	if _, err := f.GroupBy([]string{"name"}); err == nil {
		t.Error("no aggs should fail")
	}
	if _, err := f.GroupBy([]string{"nope"}, Count("n")); err == nil {
		t.Error("unknown key should fail")
	}
	if _, err := f.GroupBy([]string{"name"}, Sum("nope", "s")); err == nil {
		t.Error("unknown agg column should fail")
	}
	if _, err := f.GroupBy([]string{"name"}, Quantile("self", 1.5, "q")); err == nil {
		t.Error("bad quantile should fail")
	}
	if _, err := f.GroupBy([]string{"name"}, Agg{Out: "x"}); err == nil {
		t.Error("zero agg should fail")
	}
}

func TestRenderTableAndCSV(t *testing.T) {
	f := sampleFrame(t)
	out := f.String()
	if !strings.Contains(out, "thread") || !strings.Contains(out, "rocksdb::Stats::Now") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("table has %d lines, want 6", len(lines))
	}

	var csv bytes.Buffer
	if err := f.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "thread,name,self\n") {
		t.Errorf("csv header wrong:\n%s", csv.String())
	}
	// Quoting.
	fq, err := NewFrame("s")
	if err != nil {
		t.Fatal(err)
	}
	if err := fq.AppendRow(Str(`has,comma "and quote"`)); err != nil {
		t.Fatal(err)
	}
	csv.Reset()
	if err := fq.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), `"has,comma ""and quote"""`) {
		t.Errorf("csv quoting wrong: %s", csv.String())
	}
}

func TestFromProfile(t *testing.T) {
	log, err := shmlog.New(16)
	if err != nil {
		t.Fatal(err)
	}
	tab := symtab.New()
	m := tab.MustRegister("main", 16, "m.go", 1)
	w := tab.MustRegister("work", 16, "m.go", 5)
	for _, e := range []shmlog.Entry{
		{Kind: shmlog.KindCall, Counter: 0, Addr: m, ThreadID: 1},
		{Kind: shmlog.KindCall, Counter: 10, Addr: w, ThreadID: 1},
		{Kind: shmlog.KindReturn, Counter: 30, Addr: w, ThreadID: 1},
		{Kind: shmlog.KindReturn, Counter: 50, Addr: m, ThreadID: 1},
	} {
		if err := log.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		t.Fatal(err)
	}
	f := FromProfile(p)
	if f.Len() != 2 {
		t.Fatalf("frame rows = %d, want 2", f.Len())
	}
	// The paper's example query: which thread called which method how often.
	g, err := f.GroupBy([]string{"thread", "name"}, Count("calls"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Errorf("thread-method groups = %d, want 2", g.Len())
	}
	only, err := f.Filter(`name == "work" && incl == 20`)
	if err != nil {
		t.Fatal(err)
	}
	if only.Len() != 1 {
		t.Errorf("work rows = %d, want 1", only.Len())
	}
}

func TestCompileDeterministicProperty(t *testing.T) {
	// Property: filtering twice gives identical results, and filter output
	// row count never exceeds input.
	f := sampleFrame(t)
	prop := func(threshold uint8) bool {
		expr := "self > " + Int(int64(threshold)).AsString()
		a, err := f.Filter(expr)
		if err != nil {
			return false
		}
		b, err := f.Filter(expr)
		if err != nil {
			return false
		}
		return a.Len() == b.Len() && a.Len() <= f.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSelect(t *testing.T) {
	f := sampleFrame(t)
	sel, err := f.Select("name", "self")
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Columns(); len(got) != 2 || got[0] != "name" || got[1] != "self" {
		t.Fatalf("columns = %v", got)
	}
	if sel.Len() != f.Len() {
		t.Errorf("Select changed row count: %d vs %d", sel.Len(), f.Len())
	}
	v, err := sel.At(0, "name")
	if err != nil || v.AsString() != "rocksdb::Stats::Now" {
		t.Errorf("At(0,name) = %v, %v", v, err)
	}
	if _, err := sel.At(0, "thread"); err == nil {
		t.Error("dropped column still accessible")
	}
	if _, err := f.Select("nope"); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := f.Select(); err == nil {
		t.Error("empty selection should fail")
	}
}

func TestDistinct(t *testing.T) {
	f, err := NewFrame("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	rows := [][2]int64{{1, 2}, {1, 2}, {1, 3}, {2, 2}, {1, 2}}
	for _, r := range rows {
		if err := f.AppendRow(Int(r[0]), Int(r[1])); err != nil {
			t.Fatal(err)
		}
	}
	d := f.Distinct()
	if d.Len() != 3 {
		t.Fatalf("distinct rows = %d, want 3", d.Len())
	}
	// First occurrence order preserved.
	v, _ := d.At(0, "b")
	if v.AsInt() != 2 {
		t.Errorf("first distinct row b = %d, want 2", v.AsInt())
	}
}

func TestSelectThenDistinctPipeline(t *testing.T) {
	f := sampleFrame(t)
	names, err := f.Select("name")
	if err != nil {
		t.Fatal(err)
	}
	distinct := names.Distinct()
	if distinct.Len() != 3 {
		t.Errorf("distinct names = %d, want 3", distinct.Len())
	}
}

func TestWriteJSON(t *testing.T) {
	f := sampleFrame(t)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("output not valid JSON: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("json rows = %d, want 5", len(rows))
	}
	if rows[0]["name"] != "rocksdb::Stats::Now" {
		t.Errorf("rows[0].name = %v", rows[0]["name"])
	}
	if rows[0]["self"].(float64) != 100 {
		t.Errorf("rows[0].self = %v", rows[0]["self"])
	}
}
