package query

import (
	"fmt"
	"sort"
	"strings"
)

// Agg is one aggregation applied to each group.
type Agg struct {
	// Out is the output column name.
	Out string
	// Col is the input column ("" for Count).
	Col string
	fn  aggKind
	q   float64
}

type aggKind int

const (
	aggCount aggKind = iota + 1
	aggSum
	aggMean
	aggMin
	aggMax
	aggQuantile
)

// Count counts group rows.
func Count(out string) Agg { return Agg{Out: out, fn: aggCount} }

// Sum totals a numeric column.
func Sum(col, out string) Agg { return Agg{Out: out, Col: col, fn: aggSum} }

// Mean averages a numeric column.
func Mean(col, out string) Agg { return Agg{Out: out, Col: col, fn: aggMean} }

// Min takes the minimum of a numeric column.
func Min(col, out string) Agg { return Agg{Out: out, Col: col, fn: aggMin} }

// Max takes the maximum of a numeric column.
func Max(col, out string) Agg { return Agg{Out: out, Col: col, fn: aggMax} }

// Quantile computes the q-quantile (0 < q <= 1) of a numeric column using
// the nearest-rank method.
func Quantile(col string, q float64, out string) Agg {
	return Agg{Out: out, Col: col, fn: aggQuantile, q: q}
}

// GroupBy aggregates rows sharing the same values in the key columns.
// The result has the key columns followed by one column per aggregation,
// sorted by the key columns ascending.
func (f *Frame) GroupBy(keys []string, aggs ...Agg) (*Frame, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("query: GroupBy needs at least one key column")
	}
	if len(aggs) == 0 {
		return nil, fmt.Errorf("query: GroupBy needs at least one aggregation")
	}
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		ci, ok := f.idx[k]
		if !ok {
			return nil, fmt.Errorf("query: unknown key column %q", k)
		}
		keyIdx[i] = ci
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.fn == 0 {
			return nil, fmt.Errorf("query: aggregation %d is zero-valued", i)
		}
		if a.fn == aggCount {
			aggIdx[i] = -1
			continue
		}
		ci, ok := f.idx[a.Col]
		if !ok {
			return nil, fmt.Errorf("query: unknown aggregation column %q", a.Col)
		}
		aggIdx[i] = ci
		if a.fn == aggQuantile && (a.q <= 0 || a.q > 1) {
			return nil, fmt.Errorf("query: quantile %f out of (0,1]", a.q)
		}
	}

	type group struct {
		keyVals []Value
		vals    [][]float64 // per aggregation, collected inputs
		count   int64
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range f.rows {
		var kb strings.Builder
		for _, ki := range keyIdx {
			kb.WriteString(row[ki].AsString())
			kb.WriteByte('\x00')
		}
		key := kb.String()
		g, ok := groups[key]
		if !ok {
			keyVals := make([]Value, len(keyIdx))
			for i, ki := range keyIdx {
				keyVals[i] = row[ki]
			}
			g = &group{keyVals: keyVals, vals: make([][]float64, len(aggs))}
			groups[key] = g
			order = append(order, key)
		}
		g.count++
		for i, ci := range aggIdx {
			if ci >= 0 {
				g.vals[i] = append(g.vals[i], row[ci].AsFloat())
			}
		}
	}

	outCols := make([]string, 0, len(keys)+len(aggs))
	outCols = append(outCols, keys...)
	for _, a := range aggs {
		outCols = append(outCols, a.Out)
	}
	out, err := NewFrame(outCols...)
	if err != nil {
		return nil, err
	}
	sort.Strings(order)
	for _, key := range order {
		g := groups[key]
		row := make([]Value, 0, len(outCols))
		row = append(row, g.keyVals...)
		for i, a := range aggs {
			row = append(row, aggregate(a, g.vals[i], g.count))
		}
		if err := out.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func aggregate(a Agg, vals []float64, count int64) Value {
	switch a.fn {
	case aggCount:
		return Int(count)
	case aggSum:
		var s float64
		for _, v := range vals {
			s += v
		}
		return Float(s)
	case aggMean:
		if len(vals) == 0 {
			return Float(0)
		}
		var s float64
		for _, v := range vals {
			s += v
		}
		return Float(s / float64(len(vals)))
	case aggMin:
		if len(vals) == 0 {
			return Float(0)
		}
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return Float(m)
	case aggMax:
		if len(vals) == 0 {
			return Float(0)
		}
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return Float(m)
	case aggQuantile:
		if len(vals) == 0 {
			return Float(0)
		}
		sorted := make([]float64, len(vals))
		copy(sorted, vals)
		sort.Float64s(sorted)
		rank := int(a.q*float64(len(sorted))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		return Float(sorted[rank])
	default:
		return Float(0)
	}
}
