// Package faultinject provides deterministic, seed-driven fault points for
// the record→persist→analyze pipeline. The recorder's checkpointer, the
// software counter and the tests wire an Injector into the paths that must
// survive hostile conditions (TEEMon's "the monitor is a production
// service" stance, Stress-SGX's "stress it on purpose" stance): short,
// failed and slow writes, a stalled counter thread, a process kill between
// any two persistence steps, and bit-flips in the header or entry region
// of a persisted log.
//
// The default injector is disabled: every fault point collapses to a
// single atomic-bool load, so production hot paths pay one predicate
// check. Arming is explicit and per-point; all randomness (bit-flip
// positions, jitter) flows from the injector's seed so a failing run can
// be replayed exactly.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Point identifies one registered fault point. Points are stable
// identifiers: tests arm them by name and the kill-at-every-point
// harness iterates over All.
type Point uint8

// Registered fault points.
const (
	// PointNone is the zero Point; it is never hit.
	PointNone Point = iota

	// CheckpointBegin fires at the top of one checkpoint pass, before
	// the .part file is created.
	CheckpointBegin
	// CheckpointWrite fires once per Write call while the bundle body
	// streams into the .part file (the injectable writer wrapper).
	CheckpointWrite
	// CheckpointBeforeSync fires after the body is written, before fsync.
	CheckpointBeforeSync
	// CheckpointBeforeRename fires after fsync, before the atomic
	// .part→final rename.
	CheckpointBeforeRename
	// CheckpointAfterRename fires after the rename completed.
	CheckpointAfterRename
	// CounterStall fires periodically from the software-counter loop;
	// arming it with Sleep models a stalled/descheduled counter thread.
	CounterStall

	// StoreTableWrite fires once per Write while a history-store table
	// file streams into its .tmp (the injectable writer wrapper).
	StoreTableWrite
	// StoreTableSync fires after a table body is written, before fsync.
	StoreTableSync
	// StoreTableRename fires after the table fsync, before the atomic
	// .tmp→final rename.
	StoreTableRename
	// StoreManifestWrite fires once per Write while a MANIFEST-<seq>
	// file streams into its .tmp.
	StoreManifestWrite
	// StoreManifestSync fires after the manifest body is written, before
	// its fsync (and before the .tmp→MANIFEST-<seq> rename).
	StoreManifestSync
	// StoreCurrentRename fires after the manifest landed, before the
	// CURRENT pointer's atomic rename — the store's commit point.
	StoreCurrentRename
	// StoreGC fires after a commit, before obsolete files (compaction
	// inputs, superseded manifests) are deleted.
	StoreGC

	numPoints
)

// All lists every registered fault point, in pipeline order.
var All = []Point{
	CheckpointBegin,
	CheckpointWrite,
	CheckpointBeforeSync,
	CheckpointBeforeRename,
	CheckpointAfterRename,
	CounterStall,
	StoreTableWrite,
	StoreTableSync,
	StoreTableRename,
	StoreManifestWrite,
	StoreManifestSync,
	StoreCurrentRename,
	StoreGC,
}

// CheckpointPoints lists the recorder-pipeline fault points; the
// recorder's kill-at-every-fault-point test iterates over it, so adding
// a checkpoint point here automatically extends that harness.
var CheckpointPoints = []Point{
	CheckpointBegin,
	CheckpointWrite,
	CheckpointBeforeSync,
	CheckpointBeforeRename,
	CheckpointAfterRename,
	CounterStall,
}

// StorePoints lists the history-store fault points in commit order; the
// store's kill-at-every-fault-point matrix iterates over it.
var StorePoints = []Point{
	StoreTableWrite,
	StoreTableSync,
	StoreTableRename,
	StoreManifestWrite,
	StoreManifestSync,
	StoreCurrentRename,
	StoreGC,
}

// String returns the stable name of the point.
func (p Point) String() string {
	switch p {
	case PointNone:
		return "none"
	case CheckpointBegin:
		return "checkpoint-begin"
	case CheckpointWrite:
		return "checkpoint-write"
	case CheckpointBeforeSync:
		return "checkpoint-before-sync"
	case CheckpointBeforeRename:
		return "checkpoint-before-rename"
	case CheckpointAfterRename:
		return "checkpoint-after-rename"
	case CounterStall:
		return "counter-stall"
	case StoreTableWrite:
		return "store-table-write"
	case StoreTableSync:
		return "store-table-sync"
	case StoreTableRename:
		return "store-table-rename"
	case StoreManifestWrite:
		return "store-manifest-write"
	case StoreManifestSync:
		return "store-manifest-sync"
	case StoreCurrentRename:
		return "store-current-rename"
	case StoreGC:
		return "store-gc"
	default:
		return fmt.Sprintf("point(%d)", uint8(p))
	}
}

// PointByName resolves a stable point name (as printed by String) back to
// its Point. The subprocess kill harness passes points through the
// environment by name.
func PointByName(name string) (Point, bool) {
	for _, p := range All {
		if p.String() == name {
			return p, true
		}
	}
	return PointNone, false
}

// ErrInjected is the error produced by the Fail action (and wrapped by
// injected write failures), so tests can tell an injected fault from a
// real one.
var ErrInjected = errors.New("faultinject: injected fault")

// errShortWrite is the internal sentinel an armed action returns to make
// the writer wrapper truncate the current Write instead of failing it.
var errShortWrite = errors.New("faultinject: short write")

// Action is what happens when an armed fault point is hit. Returning an
// error propagates it to the caller of Hit (injected write/IO failures);
// an action may also never return (process kill).
type Action func(p Point) error

// Fail returns an action that fails the operation with ErrInjected.
func Fail() Action {
	return func(p Point) error {
		return fmt.Errorf("%w at %s", ErrInjected, p)
	}
}

// Short returns an action that truncates the current write: the writer
// wrapper persists roughly half the buffer and reports io.ErrShortWrite.
// At non-writer points it behaves like Fail.
func Short() Action {
	return func(Point) error { return errShortWrite }
}

// Sleep returns an action that stalls the calling goroutine for d — a slow
// write, or a descheduled counter thread at CounterStall.
func Sleep(d time.Duration) Action {
	return func(Point) error {
		time.Sleep(d)
		return nil
	}
}

// Kill returns an action that SIGKILLs the current process: the operating
// system tears the process down mid-operation with no deferred cleanup,
// exactly like the profiled application wedging and taking the recorder
// with it. It never returns.
func Kill() Action {
	return func(Point) error {
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		// SIGKILL is asynchronous in principle; block until it lands so
		// no further persistence step runs.
		select {}
	}
}

// arm is one armed fault point: the action fires on the n-th hit (1-based)
// and, unless persistent, disarms afterwards.
type arm struct {
	after      int64 // remaining hits before firing
	action     Action
	persistent bool
}

// Injector is a set of armed fault points plus the seeded randomness the
// corruption helpers draw from. The zero value is not usable; call New.
// An Injector is safe for concurrent use.
type Injector struct {
	enabled atomic.Bool

	mu   sync.Mutex
	rng  *rand.Rand
	arms map[Point]*arm
	hits [numPoints]atomic.Uint64
}

// New returns a disabled injector whose randomness derives from seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:  rand.New(rand.NewSource(seed)),
		arms: make(map[Point]*arm),
	}
}

// Default is the package-level injector production code consults when no
// explicit one is configured. It stays disabled (one atomic load per fault
// point) unless a test arms it.
var Default = New(0)

// Enabled reports whether any fault point is armed.
func (in *Injector) Enabled() bool { return in.enabled.Load() }

// Arm schedules action to fire on the nth subsequent hit of p (n <= 1
// means the next hit), then disarm.
func (in *Injector) Arm(p Point, nth int, action Action) {
	in.arm(p, nth, action, false)
}

// ArmEvery schedules action to fire on every hit of p from the nth on.
func (in *Injector) ArmEvery(p Point, nth int, action Action) {
	in.arm(p, nth, action, true)
}

func (in *Injector) arm(p Point, nth int, action Action, persistent bool) {
	if nth < 1 {
		nth = 1
	}
	in.mu.Lock()
	in.arms[p] = &arm{after: int64(nth), action: action, persistent: persistent}
	in.mu.Unlock()
	in.enabled.Store(true)
}

// Disarm removes any armed action at p.
func (in *Injector) Disarm(p Point) {
	in.mu.Lock()
	delete(in.arms, p)
	empty := len(in.arms) == 0
	in.mu.Unlock()
	if empty {
		in.enabled.Store(false)
	}
}

// Reset disarms every point and zeroes the hit counters.
func (in *Injector) Reset() {
	in.mu.Lock()
	in.arms = make(map[Point]*arm)
	for i := range in.hits {
		in.hits[i].Store(0)
	}
	in.mu.Unlock()
	in.enabled.Store(false)
}

// Hits reports how many times p was reached (whether or not armed) since
// the last Reset. Hits are only counted while the injector is enabled, so
// the disabled fast path stays a single load.
func (in *Injector) Hits(p Point) uint64 { return in.hits[p].Load() }

// Hit is the fault point itself. Disabled injectors return nil after one
// atomic load. An armed point fires its action when its countdown
// expires; the action's error (if any) is returned to the caller.
func (in *Injector) Hit(p Point) error {
	if !in.enabled.Load() {
		return nil
	}
	in.hits[p].Add(1)
	in.mu.Lock()
	a := in.arms[p]
	var action Action
	if a != nil {
		a.after--
		if a.after <= 0 {
			action = a.action
			if a.persistent {
				a.after = 1
			} else {
				delete(in.arms, p)
				if len(in.arms) == 0 {
					in.enabled.Store(false)
				}
			}
		}
	}
	in.mu.Unlock()
	if action == nil {
		return nil
	}
	return action(p)
}

// Writer wraps w so every Write first hits p: armed faults turn into
// short writes (Short), write errors (Fail), delays (Sleep) or a process
// kill (Kill). With the injector disabled the wrapper adds one atomic
// load per Write.
func (in *Injector) Writer(w io.Writer, p Point) io.Writer {
	return &faultWriter{in: in, w: w, p: p}
}

type faultWriter struct {
	in *Injector
	w  io.Writer
	p  Point
}

func (fw *faultWriter) Write(b []byte) (int, error) {
	switch err := fw.in.Hit(fw.p); {
	case err == nil:
	case errors.Is(err, errShortWrite):
		n, werr := fw.w.Write(b[:len(b)/2])
		if werr != nil {
			return n, werr
		}
		return n, io.ErrShortWrite
	default:
		return 0, err
	}
	return fw.w.Write(b)
}

// WriterAt wraps w so every WriteAt first hits p, with the same armed
// fault semantics as Writer.
func (in *Injector) WriterAt(w io.WriterAt, p Point) io.WriterAt {
	return &faultWriterAt{in: in, w: w, p: p}
}

type faultWriterAt struct {
	in *Injector
	w  io.WriterAt
	p  Point
}

func (fw *faultWriterAt) WriteAt(b []byte, off int64) (int, error) {
	switch err := fw.in.Hit(fw.p); {
	case err == nil:
	case errors.Is(err, errShortWrite):
		n, werr := fw.w.WriteAt(b[:len(b)/2], off)
		if werr != nil {
			return n, werr
		}
		return n, io.ErrShortWrite
	default:
		return 0, err
	}
	return fw.w.WriteAt(b, off)
}

// FlipBits returns a copy of data with n random bit flips confined to
// [lo, hi) (clamped to the data's bounds). Flip positions derive from the
// injector's seed, so a corrupted fixture is reproducible. It is how the
// corruption-matrix tests and the fuzz corpus model silent media or
// shared-memory corruption in the header versus entry regions of a
// persisted log.
func (in *Injector) FlipBits(data []byte, lo, hi, n int) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if lo < 0 {
		lo = 0
	}
	if hi > len(out) {
		hi = len(out)
	}
	if lo >= hi || n <= 0 {
		return out
	}
	in.mu.Lock()
	for i := 0; i < n; i++ {
		pos := lo + in.rng.Intn(hi-lo)
		out[pos] ^= 1 << in.rng.Intn(8)
	}
	in.mu.Unlock()
	return out
}

// Truncate returns data cut to n bytes (a torn file). Negative n counts
// from the end.
func Truncate(data []byte, n int) []byte {
	if n < 0 {
		n = len(data) + n
	}
	if n < 0 {
		n = 0
	}
	if n > len(data) {
		n = len(data)
	}
	out := make([]byte, n)
	copy(out, data[:n])
	return out
}
