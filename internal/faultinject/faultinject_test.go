package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	in := New(1)
	if in.Enabled() {
		t.Fatal("fresh injector reports enabled")
	}
	for _, p := range All {
		if err := in.Hit(p); err != nil {
			t.Fatalf("disabled Hit(%v) = %v", p, err)
		}
	}
	// Hits are not counted while disabled — the fast path is one load.
	for _, p := range All {
		if in.Hits(p) != 0 {
			t.Fatalf("disabled injector counted hits at %v", p)
		}
	}
}

func TestArmCountdown(t *testing.T) {
	in := New(1)
	in.Arm(CheckpointBegin, 3, Fail())
	if !in.Enabled() {
		t.Fatal("armed injector reports disabled")
	}
	for i := 0; i < 2; i++ {
		if err := in.Hit(CheckpointBegin); err != nil {
			t.Fatalf("hit %d fired early: %v", i+1, err)
		}
	}
	if err := in.Hit(CheckpointBegin); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd hit: err = %v, want ErrInjected", err)
	}
	// One-shot: the arm is consumed and the injector disables itself.
	if err := in.Hit(CheckpointBegin); err != nil {
		t.Fatalf("4th hit after one-shot: %v", err)
	}
	if in.Enabled() {
		t.Fatal("injector still enabled after its only arm fired")
	}
	if in.Hits(CheckpointBegin) != 3 {
		t.Fatalf("Hits = %d, want 3 (4th hit was on the disabled fast path)", in.Hits(CheckpointBegin))
	}
}

func TestArmEveryAndDisarm(t *testing.T) {
	in := New(1)
	in.ArmEvery(CheckpointWrite, 2, Fail())
	if err := in.Hit(CheckpointWrite); err != nil {
		t.Fatalf("1st hit fired early: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := in.Hit(CheckpointWrite); !errors.Is(err, ErrInjected) {
			t.Fatalf("persistent hit %d: err = %v", i, err)
		}
	}
	in.Disarm(CheckpointWrite)
	if in.Enabled() {
		t.Fatal("enabled after disarming the only point")
	}
	if err := in.Hit(CheckpointWrite); err != nil {
		t.Fatalf("hit after disarm: %v", err)
	}
}

func TestReset(t *testing.T) {
	in := New(1)
	in.ArmEvery(CounterStall, 1, Fail())
	_ = in.Hit(CounterStall)
	in.Reset()
	if in.Enabled() || in.Hits(CounterStall) != 0 {
		t.Fatalf("Reset left enabled=%v hits=%d", in.Enabled(), in.Hits(CounterStall))
	}
}

func TestSleepAction(t *testing.T) {
	in := New(1)
	in.Arm(CheckpointBeforeSync, 1, Sleep(30*time.Millisecond))
	start := time.Now()
	if err := in.Hit(CheckpointBeforeSync); err != nil {
		t.Fatalf("Sleep action returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("stall lasted %v, want >= 30ms", d)
	}
}

func TestWriterShortAndFail(t *testing.T) {
	in := New(1)
	var buf bytes.Buffer
	w := in.Writer(&buf, CheckpointWrite)

	// Pass-through while unarmed.
	if n, err := w.Write([]byte("abcdefgh")); n != 8 || err != nil {
		t.Fatalf("unarmed write: n=%d err=%v", n, err)
	}

	in.Arm(CheckpointWrite, 1, Short())
	n, err := w.Write([]byte("ijklmnop"))
	if n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v, want 4 + ErrShortWrite", n, err)
	}
	if got := buf.String(); got != "abcdefghijkl" {
		t.Fatalf("buffer = %q after short write", got)
	}

	in.Arm(CheckpointWrite, 1, Fail())
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("failed write: n=%d err=%v", n, err)
	}
	if got := buf.String(); got != "abcdefghijkl" {
		t.Fatalf("failed write reached the underlying writer: %q", got)
	}
}

type recordingWriterAt struct {
	data []byte
}

func (r *recordingWriterAt) WriteAt(b []byte, off int64) (int, error) {
	need := int(off) + len(b)
	if need > len(r.data) {
		grown := make([]byte, need)
		copy(grown, r.data)
		r.data = grown
	}
	copy(r.data[off:], b)
	return len(b), nil
}

func TestWriterAtShort(t *testing.T) {
	in := New(1)
	under := &recordingWriterAt{}
	w := in.WriterAt(under, CheckpointWrite)
	if n, err := w.WriteAt([]byte("12345678"), 0); n != 8 || err != nil {
		t.Fatalf("unarmed WriteAt: n=%d err=%v", n, err)
	}
	in.Arm(CheckpointWrite, 1, Short())
	n, err := w.WriteAt([]byte("ABCDEFGH"), 8)
	if n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short WriteAt: n=%d err=%v", n, err)
	}
	if got := string(under.data); got != "12345678ABCD" {
		t.Fatalf("underlying data = %q", got)
	}
}

func TestFlipBitsDeterministic(t *testing.T) {
	base := bytes.Repeat([]byte{0x00}, 64)
	a := New(42).FlipBits(base, 8, 56, 10)
	b := New(42).FlipBits(base, 8, 56, 10)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different flips")
	}
	if bytes.Equal(a, base) {
		t.Fatal("no bits flipped")
	}
	// Flips stay inside [lo, hi).
	if !bytes.Equal(a[:8], base[:8]) || !bytes.Equal(a[56:], base[56:]) {
		t.Fatal("flip escaped the [lo, hi) window")
	}
	// Original input untouched.
	if !bytes.Equal(base, bytes.Repeat([]byte{0x00}, 64)) {
		t.Fatal("FlipBits mutated its input")
	}
}

func TestTruncate(t *testing.T) {
	data := []byte("0123456789")
	for _, tc := range []struct {
		n    int
		want string
	}{
		{0, ""},
		{4, "0123"},
		{10, "0123456789"},
		{99, "0123456789"},
		{-3, "0123456"},
		{-99, ""},
	} {
		if got := string(Truncate(data, tc.n)); got != tc.want {
			t.Errorf("Truncate(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
	if string(data) != "0123456789" {
		t.Fatal("Truncate mutated its input")
	}
}

func TestPointNames(t *testing.T) {
	for _, p := range All {
		name := p.String()
		if name == "" || name == "none" {
			t.Fatalf("point %d has no name", p)
		}
		back, ok := PointByName(name)
		if !ok || back != p {
			t.Fatalf("PointByName(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := PointByName("no-such-point"); ok {
		t.Fatal("PointByName accepted garbage")
	}
}
