package analyzer

import (
	"strings"
	"testing"

	"teeperf/internal/shmlog"
)

// recoveryReport builds a minimal non-clean salvage report.
func recoveryReport() *shmlog.RecoveryReport {
	rep := &shmlog.RecoveryReport{
		SourceVersion:   shmlog.Version,
		EntriesPresent:  4,
		EntriesSalvaged: 3,
		EntriesDropped:  1,
		TailClamped:     true,
	}
	return rep
}

// TestAnalyzeRecoveredCarriesReport: the salvage report rides on the
// profile so every downstream consumer can see the profile is partial.
func TestAnalyzeRecoveredCarriesReport(t *testing.T) {
	f := newFixture(t, 16, "main", "work")
	f.call(t, 1, "main", 10)
	f.call(t, 1, "work", 20)
	f.ret(t, 1, "work", 30)
	f.ret(t, 1, "main", 40)

	rep := recoveryReport()
	p, err := AnalyzeRecovered(f.log, f.tab, rep)
	if err != nil {
		t.Fatal(err)
	}
	if p.Recovery != rep {
		t.Fatal("Profile.Recovery does not carry the salvage report")
	}
	if len(p.Records()) != 2 {
		t.Fatalf("records = %d, want 2", len(p.Records()))
	}
	// Plain Analyze leaves Recovery nil.
	plain, err := Analyze(f.log, f.tab)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Recovery != nil {
		t.Fatal("plain Analyze set Recovery")
	}
}

// TestAnalyzeRecoveredTruncatedFrame: a salvaged log whose opening calls
// were lost (the tear ate the log's beginning or middle) produces returns
// with no matching call. In recovery mode those surface as the synthetic
// [truncated] frame instead of silently vanishing into the Unmatched
// counter.
func TestAnalyzeRecoveredTruncatedFrame(t *testing.T) {
	f := newFixture(t, 16, "main", "work")
	// The call that opened "work" was lost to the tear; its return
	// survives, followed by an intact call/return pair.
	f.ret(t, 1, "work", 15)
	f.call(t, 1, "main", 20)
	f.ret(t, 1, "main", 30)

	p, err := AnalyzeRecovered(f.log, f.tab, recoveryReport())
	if err != nil {
		t.Fatal(err)
	}
	if p.Unmatched != 1 {
		t.Fatalf("Unmatched = %d, want 1", p.Unmatched)
	}
	var truncated []Record
	for _, r := range p.Records() {
		if r.Name == TruncatedFrameName {
			truncated = append(truncated, r)
		}
	}
	if len(truncated) != 1 {
		t.Fatalf("found %d %s records, want 1 (records: %+v)", len(truncated), TruncatedFrameName, p.Records())
	}
	tr := truncated[0]
	if !tr.Truncated || tr.Start != tr.End || tr.Start != 15 {
		t.Fatalf("synthetic frame = %+v, want zero-width truncated record at counter 15", tr)
	}
	// The synthetic frame shows up in the folded stacks for flame graphs.
	folded := p.Folded()
	found := false
	for stack := range folded {
		if strings.Contains(stack, TruncatedFrameName) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s stack in folded output: %v", TruncatedFrameName, folded)
	}
	// The intact pair still analyzed normally.
	if _, ok := p.Func("main"); !ok {
		t.Fatal("intact call lost in recovery mode")
	}
}

// TestAnalyzeStrictDropsUnmatched pins the non-recovery behavior the
// synthetic frame deliberately diverges from: unmatched returns are
// counted but produce no record.
func TestAnalyzeStrictDropsUnmatched(t *testing.T) {
	f := newFixture(t, 16, "main", "work")
	f.ret(t, 1, "work", 15)
	f.call(t, 1, "main", 20)
	f.ret(t, 1, "main", 30)

	p := f.analyze(t)
	if p.Unmatched != 1 {
		t.Fatalf("Unmatched = %d, want 1", p.Unmatched)
	}
	for _, r := range p.Records() {
		if r.Name == TruncatedFrameName {
			t.Fatalf("strict analysis produced a %s record: %+v", TruncatedFrameName, r)
		}
	}
}

// TestAnalyzeRecoveredNestedTruncated: an unmatched return inside an open
// stack attributes the synthetic frame UNDER the open frames, so the
// flame graph shows where the torn activity happened.
func TestAnalyzeRecoveredNestedTruncated(t *testing.T) {
	f := newFixture(t, 16, "main", "work")
	f.call(t, 1, "main", 10) // still open at the tear
	f.ret(t, 1, "work", 25)  // its call was lost
	f.ret(t, 1, "main", 40)

	p, err := AnalyzeRecovered(f.log, f.tab, recoveryReport())
	if err != nil {
		t.Fatal(err)
	}
	wantStack := "main;" + TruncatedFrameName
	if _, ok := p.Folded()[wantStack]; !ok {
		t.Fatalf("folded stacks %v missing %q", p.Folded(), wantStack)
	}
}
