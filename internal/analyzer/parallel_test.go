package analyzer

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// buildRandomizedLog writes ~100k call/return events from several
// interleaved threads with nested stacks, sprinkled with unmatched returns,
// frames left open at the end (truncation), in-flight holes and released
// tombstones — every irregularity the analyzer must handle.
func buildRandomizedLog(t *testing.T, events int) (*shmlog.Log, *symtab.Table) {
	t.Helper()
	const threads = 8
	rng := rand.New(rand.NewSource(42))

	tab := symtab.New()
	addrs := make([]uint64, 32)
	for i := range addrs {
		addr, err := tab.Register(fmt.Sprintf("fn_%02d", i), 0x40, "fixture.c", i+1)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
	}

	log, err := shmlog.New(events + 64)
	if err != nil {
		t.Fatal(err)
	}
	stacks := make([][]uint64, threads+1)
	for i := 0; i < events; i++ {
		tid := uint64(rng.Intn(threads) + 1)
		stack := &stacks[tid]
		e := shmlog.Entry{Counter: uint64(i + 1), ThreadID: tid}
		switch {
		case rng.Intn(50) == 0:
			// Unmatched return: an address that is not on the stack.
			e.Kind = shmlog.KindReturn
			e.Addr = 0xDEAD0000 + uint64(rng.Intn(8))*0x10
		case len(*stack) == 0 || (rng.Intn(2) == 0 && len(*stack) < 40):
			e.Kind = shmlog.KindCall
			e.Addr = addrs[rng.Intn(len(addrs))]
			*stack = append(*stack, e.Addr)
		default:
			// Return from a random live frame: everything above it closes
			// implicitly (lost returns).
			d := rng.Intn(len(*stack))
			e.Kind = shmlog.KindReturn
			e.Addr = (*stack)[d]
			*stack = (*stack)[:d]
		}
		if err := log.Append(e); err != nil {
			t.Fatal(err)
		}
	}

	// A batched writer's leftovers: committed, in-flight and released slots.
	start, n := log.Reserve(12)
	if n != 12 {
		t.Fatalf("Reserve = %d slots, want 12", n)
	}
	for i := 0; i < 4; i++ {
		log.Commit(start+uint64(i), shmlog.Entry{
			Kind: shmlog.KindCall, Counter: uint64(events + i + 1), Addr: addrs[i], ThreadID: 1,
		})
	}
	for i := 4; i < 8; i++ {
		log.Release(start + uint64(i))
	}
	// Slots start+8..start+11 stay in flight (holes).
	return log, tab
}

// TestAnalyzeParallelMatchesSerial: the worker-pool analysis must be
// indistinguishable from the serial one on a randomized 100k-entry log —
// same records in the same order, same aggregates, same rendered table.
func TestAnalyzeParallelMatchesSerial(t *testing.T) {
	log, tab := buildRandomizedLog(t, 100_000)

	serial, err := AnalyzeWith(log, tab, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Dismissed != 8 {
		t.Fatalf("Dismissed = %d, want 8 (4 tombstones + 4 holes)", serial.Dismissed)
	}
	if serial.Unmatched == 0 || serial.Truncated == 0 {
		t.Fatalf("fixture too tame: unmatched=%d truncated=%d", serial.Unmatched, serial.Truncated)
	}

	for _, workers := range []int{0, 2, 5, 16} {
		parallel, err := AnalyzeWith(log, tab, Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parallel.Records(), serial.Records()) {
			t.Fatalf("parallelism %d: record streams differ", workers)
		}
		if !reflect.DeepEqual(parallel.Funcs(), serial.Funcs()) {
			t.Fatalf("parallelism %d: function tables differ", workers)
		}
		if !reflect.DeepEqual(parallel.Threads(), serial.Threads()) {
			t.Fatalf("parallelism %d: thread tables differ", workers)
		}
		if !reflect.DeepEqual(parallel.Folded(), serial.Folded()) {
			t.Fatalf("parallelism %d: folded stacks differ", workers)
		}
		if parallel.TotalTicks != serial.TotalTicks ||
			parallel.Truncated != serial.Truncated ||
			parallel.Unmatched != serial.Unmatched ||
			parallel.Dismissed != serial.Dismissed ||
			parallel.PID != serial.PID {
			t.Fatalf("parallelism %d: scalar fields differ: %+v vs %+v", workers, parallel, serial)
		}
		var a, b bytes.Buffer
		if err := serial.WriteTable(&a, 50); err != nil {
			t.Fatal(err)
		}
		if err := parallel.WriteTable(&b, 50); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("parallelism %d: rendered tables differ", workers)
		}
	}
}

// TestAnalyzeDismissesHolesAndTombstones: committed events around dismissed
// slots still analyze normally.
func TestAnalyzeDismissesHolesAndTombstones(t *testing.T) {
	tab := symtab.New()
	fAddr, err := tab.Register("f", 0x10, "fixture.c", 1)
	if err != nil {
		t.Fatal(err)
	}
	log, err := shmlog.New(8)
	if err != nil {
		t.Fatal(err)
	}
	start, n := log.Reserve(4)
	if n != 4 {
		t.Fatal("reserve failed")
	}
	log.Commit(start, shmlog.Entry{Kind: shmlog.KindCall, Counter: 1, Addr: fAddr, ThreadID: 1})
	log.Release(start + 1)
	// start+2 stays a hole.
	log.Commit(start+3, shmlog.Entry{Kind: shmlog.KindReturn, Counter: 5, Addr: fAddr, ThreadID: 1})

	p, err := Analyze(log, tab)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dismissed != 2 {
		t.Fatalf("Dismissed = %d, want 2", p.Dismissed)
	}
	recs := p.Records()
	if len(recs) != 1 || recs[0].Name != "f" || recs[0].Incl != 4 || recs[0].Truncated {
		t.Fatalf("records = %+v, want one clean 4-tick execution of f", recs)
	}
}
