// Package analyzer implements TEE-Perf's stage 3: the offline component
// that dissects a recorded log. It groups entries per thread, rebuilds each
// thread's call stack from the call/return stream, computes inclusive and
// exclusive (self) tick counts per method, resolves addresses through the
// symbol table (using the profiler-anchor relocation offset stored in the
// log header), and produces the folded call stacks the visualizer consumes.
package analyzer

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// Record is one completed (or force-closed) function execution.
type Record struct {
	// Thread is the log thread ID.
	Thread uint64
	// Name is the resolved, demangled function name.
	Name string
	// Addr is the runtime address recorded by the probe.
	Addr uint64
	// Caller is the resolved name of the parent frame ("" for roots).
	Caller string
	// Depth is the stack depth (0 for roots).
	Depth int
	// Start and End are the counter values at entry and exit.
	Start, End uint64
	// Incl is End-Start; Self is Incl minus the inclusive time of
	// children (never negative).
	Incl, Self uint64
	// Truncated marks frames force-closed at the end of the log.
	Truncated bool
}

// FuncStat aggregates all executions of one function.
type FuncStat struct {
	// Name is the resolved, demangled function name.
	Name string
	// Addr is the runtime address recorded by the probes.
	Addr uint64
	// Calls is the number of recorded executions.
	Calls uint64
	// Incl and Self are total inclusive and exclusive ticks.
	Incl, Self uint64
	// Callers and Callees count invocation edges by resolved name.
	Callers map[string]uint64
	Callees map[string]uint64
}

// ThreadStat summarizes one thread.
type ThreadStat struct {
	// ID is the log thread ID.
	ID uint64
	// Events is the number of log entries attributed to the thread.
	Events int
	// Calls is the number of completed executions.
	Calls uint64
	// Ticks is the total root-level inclusive time.
	Ticks uint64
	// MaxDepth is the deepest reconstructed stack.
	MaxDepth int
}

// Profile is the analyzer output.
type Profile struct {
	// PID is the process ID recorded in the log header.
	PID uint64
	// TotalTicks is the sum of root-frame inclusive ticks over all
	// threads — the denominator for percentages.
	TotalTicks uint64
	// Truncated counts frames force-closed because the log ended (the
	// paper's analyzer similarly dismisses possibly-wrong records at the
	// log end).
	Truncated int
	// Unmatched counts return entries with no corresponding call
	// (typically the result of toggling recording mid-run).
	Unmatched int
	// Dropped is the number of entries lost to log overflow, as recorded
	// in the log.
	Dropped uint64

	funcs     []FuncStat
	byName    map[string]int
	threads   []ThreadStat
	records   []Record
	folded    map[string]uint64
	pathStats map[string]*pathAccum
}

// pathAccum collects per-call-path totals during analysis.
type pathAccum struct {
	calls, incl, self uint64
}

// ErrNilInput is returned when Analyze receives nil arguments.
var ErrNilInput = errors.New("analyzer: nil log or symbol table")

type frame struct {
	addr       uint64
	name       string
	start      uint64
	childTicks uint64
}

type threadState struct {
	stat   ThreadStat
	stack  []frame
	names  []string
	lastTS uint64
}

// Analyze reconstructs a profile from a recorded log.
func Analyze(log *shmlog.Log, tab *symtab.Table) (*Profile, error) {
	if log == nil || tab == nil {
		return nil, ErrNilInput
	}
	// Recover the relocation offset from the recorded anchor address.
	if log.ProfilerAddr() != 0 {
		tab.SetLoadBias(log.ProfilerAddr())
	}

	p := &Profile{
		PID:       log.PID(),
		byName:    make(map[string]int),
		folded:    make(map[string]uint64),
		pathStats: make(map[string]*pathAccum),
		Dropped:   log.Dropped(),
	}
	threads := make(map[uint64]*threadState)
	order := make([]uint64, 0, 8)

	n := log.Len()
	for i := 0; i < n; i++ {
		e, err := log.Entry(i)
		if err != nil {
			return nil, fmt.Errorf("analyzer: entry %d: %w", i, err)
		}
		ts, ok := threads[e.ThreadID]
		if !ok {
			ts = &threadState{stat: ThreadStat{ID: e.ThreadID}}
			threads[e.ThreadID] = ts
			order = append(order, e.ThreadID)
		}
		ts.stat.Events++
		ts.lastTS = e.Counter

		switch e.Kind {
		case shmlog.KindCall:
			ts.stack = append(ts.stack, frame{
				addr:  e.Addr,
				name:  tab.Name(e.Addr),
				start: e.Counter,
			})
			ts.names = append(ts.names, ts.stack[len(ts.stack)-1].name)
			if d := len(ts.stack); d > ts.stat.MaxDepth {
				ts.stat.MaxDepth = d
			}
		case shmlog.KindReturn:
			p.closeUntil(ts, e.Addr, e.Counter)
		}
	}

	// Force-close whatever remains on each stack at the thread's last
	// observed counter value; these durations are approximate.
	for _, tid := range order {
		ts := threads[tid]
		for len(ts.stack) > 0 {
			p.closeTop(ts, ts.lastTS, true)
			p.Truncated++
		}
		p.TotalTicks += ts.stat.Ticks
		p.threads = append(p.threads, ts.stat)
	}
	sort.Slice(p.threads, func(i, j int) bool { return p.threads[i].ID < p.threads[j].ID })
	sort.Slice(p.funcs, func(i, j int) bool {
		if p.funcs[i].Self != p.funcs[j].Self {
			return p.funcs[i].Self > p.funcs[j].Self
		}
		return p.funcs[i].Name < p.funcs[j].Name
	})
	p.byName = make(map[string]int, len(p.funcs))
	for i, f := range p.funcs {
		p.byName[f.Name] = i
	}
	return p, nil
}

// closeUntil pops frames until it closes the frame matching addr. Frames
// above the match lost their return entries (recording was toggled or the
// log overflowed); they are closed at the return's counter value.
func (p *Profile) closeUntil(ts *threadState, addr, now uint64) {
	// Find the matching frame.
	match := -1
	for i := len(ts.stack) - 1; i >= 0; i-- {
		if ts.stack[i].addr == addr {
			match = i
			break
		}
	}
	if match < 0 {
		p.Unmatched++
		return
	}
	for len(ts.stack) > match {
		p.closeTop(ts, now, false)
	}
}

// closeTop completes the top frame at counter value now.
func (p *Profile) closeTop(ts *threadState, now uint64, truncated bool) {
	f := ts.stack[len(ts.stack)-1]
	ts.stack = ts.stack[:len(ts.stack)-1]

	incl := uint64(0)
	if now > f.start {
		incl = now - f.start
	}
	self := uint64(0)
	if incl > f.childTicks {
		self = incl - f.childTicks
	}

	depth := len(ts.stack)
	caller := ""
	if depth > 0 {
		parent := &ts.stack[depth-1]
		parent.childTicks += incl
		caller = parent.name
	} else {
		ts.stat.Ticks += incl
	}
	ts.stat.Calls++

	rec := Record{
		Thread:    ts.stat.ID,
		Name:      f.name,
		Addr:      f.addr,
		Caller:    caller,
		Depth:     depth,
		Start:     f.start,
		End:       now,
		Incl:      incl,
		Self:      self,
		Truncated: truncated,
	}
	p.records = append(p.records, rec)

	// Folded stack and call-path accounting: attributed to the full stack
	// including the closing frame.
	stackKey := strings.Join(ts.names, ";")
	if self > 0 {
		p.folded[stackKey] += self
	}
	pa, ok := p.pathStats[stackKey]
	if !ok {
		pa = &pathAccum{}
		p.pathStats[stackKey] = pa
	}
	pa.calls++
	pa.incl += incl
	pa.self += self
	ts.names = ts.names[:len(ts.names)-1]

	p.accumulate(rec)
}

func (p *Profile) accumulate(rec Record) {
	i, ok := p.byName[rec.Name]
	if !ok {
		i = len(p.funcs)
		p.byName[rec.Name] = i
		p.funcs = append(p.funcs, FuncStat{
			Name:    rec.Name,
			Addr:    rec.Addr,
			Callers: make(map[string]uint64),
			Callees: make(map[string]uint64),
		})
	}
	f := &p.funcs[i]
	if f.Addr == 0 {
		f.Addr = rec.Addr
	}
	f.Calls++
	f.Incl += rec.Incl
	f.Self += rec.Self
	if rec.Caller != "" {
		f.Callers[rec.Caller]++
		// Register the callee edge on the caller as well.
		j, ok := p.byName[rec.Caller]
		if !ok {
			j = len(p.funcs)
			p.byName[rec.Caller] = j
			p.funcs = append(p.funcs, FuncStat{
				Name:    rec.Caller,
				Callers: make(map[string]uint64),
				Callees: make(map[string]uint64),
			})
			f = &p.funcs[i] // re-take: append may have moved the slice
		}
		p.funcs[j].Callees[rec.Name]++
	}
}

// Funcs returns per-function statistics sorted by self time (descending).
func (p *Profile) Funcs() []FuncStat {
	out := make([]FuncStat, len(p.funcs))
	copy(out, p.funcs)
	return out
}

// Top returns the n hottest functions by self time.
func (p *Profile) Top(n int) []FuncStat {
	if n > len(p.funcs) {
		n = len(p.funcs)
	}
	if n <= 0 {
		return nil
	}
	out := make([]FuncStat, n)
	copy(out, p.funcs[:n])
	return out
}

// Func returns the statistics for a function by resolved name.
func (p *Profile) Func(name string) (FuncStat, bool) {
	i, ok := p.byName[name]
	if !ok {
		return FuncStat{}, false
	}
	return p.funcs[i], true
}

// SelfFraction returns a function's share of total self time, in [0,1].
func (p *Profile) SelfFraction(name string) float64 {
	f, ok := p.Func(name)
	if !ok || p.TotalTicks == 0 {
		return 0
	}
	return float64(f.Self) / float64(p.TotalTicks)
}

// Threads returns per-thread statistics sorted by thread ID.
func (p *Profile) Threads() []ThreadStat {
	out := make([]ThreadStat, len(p.threads))
	copy(out, p.threads)
	return out
}

// Records returns every completed execution in completion order.
func (p *Profile) Records() []Record {
	out := make([]Record, len(p.records))
	copy(out, p.records)
	return out
}

// Folded returns the folded-stack map: "root;child;leaf" -> self ticks.
func (p *Profile) Folded() map[string]uint64 {
	out := make(map[string]uint64, len(p.folded))
	for k, v := range p.folded {
		out[k] = v
	}
	return out
}

// WriteTable renders the top-n functions as an aligned text table, the
// analyzer's default sorted report.
func (p *Profile) WriteTable(w io.Writer, n int) error {
	top := p.Top(n)
	if _, err := fmt.Fprintf(w, "%-44s %12s %14s %14s %7s\n",
		"FUNCTION", "CALLS", "SELF", "INCL", "SELF%"); err != nil {
		return err
	}
	for _, f := range top {
		pct := 0.0
		if p.TotalTicks > 0 {
			pct = 100 * float64(f.Self) / float64(p.TotalTicks)
		}
		name := f.Name
		if len(name) > 44 {
			name = name[:41] + "..."
		}
		if _, err := fmt.Fprintf(w, "%-44s %12d %14d %14d %6.2f%%\n",
			name, f.Calls, f.Self, f.Incl, pct); err != nil {
			return err
		}
	}
	return nil
}
