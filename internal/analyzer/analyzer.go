// Package analyzer implements TEE-Perf's stage 3: the offline component
// that dissects a recorded log. It groups entries per thread, rebuilds each
// thread's call stack from the call/return stream, computes inclusive and
// exclusive (self) tick counts per method, resolves addresses through the
// symbol table (using the profiler-anchor relocation offset stored in the
// log header), and produces the folded call stacks the visualizer consumes.
package analyzer

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// Record is one completed (or force-closed) function execution.
type Record struct {
	// Thread is the log thread ID.
	Thread uint64
	// Name is the resolved, demangled function name.
	Name string
	// Addr is the runtime address recorded by the probe.
	Addr uint64
	// Caller is the resolved name of the parent frame ("" for roots).
	Caller string
	// Depth is the stack depth (0 for roots).
	Depth int
	// Start and End are the counter values at entry and exit (always raw,
	// even in sampled logs).
	Start, End uint64
	// Incl is End-Start; Self is Incl minus the inclusive time of
	// children (never negative). In a sampled log (header sampling period
	// N > 1) both are scaled by N, so totals estimate the full profile.
	Incl, Self uint64
	// Truncated marks frames force-closed at the end of the log.
	Truncated bool
}

// FuncStat aggregates all executions of one function.
type FuncStat struct {
	// Name is the resolved, demangled function name.
	Name string
	// Addr is the runtime address recorded by the probes.
	Addr uint64
	// Calls is the number of recorded executions.
	Calls uint64
	// Incl and Self are total inclusive and exclusive ticks.
	Incl, Self uint64
	// Callers and Callees count invocation edges by resolved name.
	Callers map[string]uint64
	Callees map[string]uint64
}

// ThreadStat summarizes one thread.
type ThreadStat struct {
	// ID is the log thread ID.
	ID uint64
	// Events is the number of log entries attributed to the thread.
	Events int
	// Calls is the number of completed executions.
	Calls uint64
	// Ticks is the total root-level inclusive time.
	Ticks uint64
	// MaxDepth is the deepest reconstructed stack.
	MaxDepth int
}

// Profile is the analyzer output.
type Profile struct {
	// PID is the process ID recorded in the log header.
	PID uint64
	// SamplePeriod is the sampling period recorded in the log header (1 for
	// full recordings; the header's 0 normalizes to 1). When above 1, every
	// weight in the profile — tick totals, folded stacks, call counts — has
	// been scaled by it, so the profile estimates the full recording.
	SamplePeriod uint64
	// TotalTicks is the sum of root-frame inclusive ticks over all
	// threads — the denominator for percentages.
	TotalTicks uint64
	// Truncated counts frames force-closed because the log ended (the
	// paper's analyzer similarly dismisses possibly-wrong records at the
	// log end).
	Truncated int
	// Unmatched counts return entries with no corresponding call
	// (typically the result of toggling recording mid-run).
	Unmatched int
	// Dismissed counts log slots that carried no committed event: holes a
	// batched writer reserved but never filled (thread ID 0) and released
	// slots (tombstones). They are skipped, exactly as the paper's
	// analyzer dismisses possibly-wrong records.
	Dismissed int
	// Dropped is the number of entries lost to log overflow, as recorded
	// in the log.
	Dropped uint64
	// Recovery carries the salvage report when the profile was built from
	// a log recovered by shmlog.ReadLenient (nil for clean logs). When
	// set, return entries whose call was lost to the salvage are
	// attributed to the synthetic TruncatedFrameName function instead of
	// being silently dropped, so the damage is visible in tables and
	// flame graphs.
	Recovery *shmlog.RecoveryReport

	funcs     []FuncStat
	byName    map[string]int
	threads   []ThreadStat
	records   []Record
	folded    map[string]uint64
	pathStats map[string]*pathAccum
}

// pathAccum collects per-call-path totals during analysis.
type pathAccum struct {
	calls, incl, self uint64
}

// ErrNilInput is returned when Analyze receives nil arguments.
var ErrNilInput = errors.New("analyzer: nil log or symbol table")

type frame struct {
	addr       uint64
	name       string
	start      uint64
	childTicks uint64
}

// TruncatedFrameName is the synthetic frame recovered-but-unmatched
// entries are attributed to when analyzing a salvaged log: the visible
// scar of a torn head or tail, mirroring the analyzer's existing
// force-close tolerance for truncated tails.
const TruncatedFrameName = "[truncated]"

// Options tunes AnalyzeWith. The zero value matches Analyze.
type Options struct {
	// Parallelism is the number of worker goroutines reconstructing
	// per-thread call stacks (threads are independent by construction);
	// 0 means GOMAXPROCS, 1 forces the serial path. The output is
	// byte-identical at every setting.
	Parallelism int

	// Recovery marks the log as salvaged by shmlog.ReadLenient and
	// attaches the salvage report to the profile. In recovery mode,
	// unmatched returns — calls lost with the torn region — surface as
	// zero-tick records under TruncatedFrameName instead of vanishing
	// into a counter.
	Recovery *shmlog.RecoveryReport
}

// threadEntries is one thread's slice of the log: the committed entries
// attributed to it, with each entry's global log index (the merge key that
// makes the parallel reconstruction deterministic).
type threadEntries struct {
	id      uint64
	entries []shmlog.Entry
	at      []int
}

// closedRec is a completed execution produced by a reconstruction worker,
// tagged with the global log index of the entry that closed it; force-closed
// frames are tagged past the end of the log in thread-discovery order, so a
// stable sort by the tag replays records in exactly the serial close order.
type closedRec struct {
	rec      Record
	stackKey string
	at       int
}

// threadResult is one worker's output for one thread.
type threadResult struct {
	stat      ThreadStat
	recs      []closedRec
	unmatched int
	truncated int
}

// Analyze reconstructs a profile from a recorded log.
func Analyze(log *shmlog.Log, tab *symtab.Table) (*Profile, error) {
	return AnalyzeWith(log, tab, Options{})
}

// AnalyzeRecovered reconstructs a profile from a log salvaged by
// shmlog.ReadLenient, attaching the recovery report and attributing
// salvaged-but-unmatched entries to the synthetic TruncatedFrameName
// frame.
func AnalyzeRecovered(log *shmlog.Log, tab *symtab.Table, rep *shmlog.RecoveryReport) (*Profile, error) {
	return AnalyzeWith(log, tab, Options{Recovery: rep})
}

// AnalyzeWith is Analyze with explicit tuning. It runs in three phases:
// a serial scan groups committed entries per thread (dismissing in-flight
// holes and released tombstones), a worker pool rebuilds each thread's call
// stack independently, and a serial merge — ordered by the global log index
// of each record's closing entry — folds the per-thread results into one
// profile. The merge order equals the serial close order, so the output is
// identical to a single-threaded analysis, worker scheduling notwithstanding.
func AnalyzeWith(log *shmlog.Log, tab *symtab.Table, opts Options) (*Profile, error) {
	if log == nil || tab == nil {
		return nil, ErrNilInput
	}
	// Recover the relocation offset from the recorded anchor address.
	if log.ProfilerAddr() != 0 {
		tab.SetLoadBias(log.ProfilerAddr())
	}

	// The sampling period scales every weight at the phase-3 merge below.
	// Reconstruction (phase 2) stays raw: the childTicks arithmetic must
	// subtract like from like, and integer-multiplying only the finished
	// records keeps serial, parallel and incremental results exactly equal.
	period := log.SamplePeriod()
	if period == 0 {
		period = 1
	}
	p := &Profile{
		PID:          log.PID(),
		SamplePeriod: period,
		byName:       make(map[string]int),
		folded:       make(map[string]uint64),
		pathStats:    make(map[string]*pathAccum),
		Dropped:      log.Dropped(),
		Recovery:     opts.Recovery,
	}
	lenient := opts.Recovery != nil

	// Phase 1 (serial): group entries per thread in log order.
	threads := make(map[uint64]*threadEntries)
	order := make([]uint64, 0, 8)
	n := log.Len()
	for i := 0; i < n; i++ {
		e, err := log.Entry(i)
		if err != nil {
			return nil, fmt.Errorf("analyzer: entry %d: %w", i, err)
		}
		if e.ThreadID == 0 || e.ThreadID == shmlog.TombstoneTID {
			p.Dismissed++
			continue
		}
		g, ok := threads[e.ThreadID]
		if !ok {
			g = &threadEntries{id: e.ThreadID}
			threads[e.ThreadID] = g
			order = append(order, e.ThreadID)
		}
		g.entries = append(g.entries, e)
		g.at = append(g.at, i)
	}

	// Phase 2 (parallel): rebuild each thread's stacks. The symbol table's
	// resolver is concurrency-safe; everything else is thread-local.
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(order) {
		workers = len(order)
	}
	results := make([]threadResult, len(order))
	if workers <= 1 {
		for oi, tid := range order {
			results[oi] = analyzeThread(threads[tid], tab, n+oi, lenient)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for oi := range jobs {
					results[oi] = analyzeThread(threads[order[oi]], tab, n+oi, lenient)
				}
			}()
		}
		for oi := range order {
			jobs <- oi
		}
		close(jobs)
		wg.Wait()
	}

	// Phase 3 (serial): merge deterministically. Records carry the global
	// index of their closing entry; at most one thread closes records at any
	// given index, and within a thread the worker emitted them in order, so
	// a stable sort reproduces the serial close order exactly.
	total := 0
	for oi := range results {
		r := &results[oi]
		stat := r.stat
		stat.Ticks *= period
		stat.Calls *= period
		p.threads = append(p.threads, stat)
		p.TotalTicks += stat.Ticks
		p.Truncated += r.truncated
		p.Unmatched += r.unmatched
		total += len(r.recs)
	}
	merged := make([]closedRec, 0, total)
	for oi := range results {
		merged = append(merged, results[oi].recs...)
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].at < merged[j].at })
	p.records = make([]Record, 0, len(merged))
	for i := range merged {
		cr := &merged[i]
		cr.rec.Incl *= period
		cr.rec.Self *= period
		p.records = append(p.records, cr.rec)
		if cr.rec.Self > 0 {
			p.folded[cr.stackKey] += cr.rec.Self
		} else if cr.rec.Name == TruncatedFrameName {
			// The synthetic recovery frame is zero-width; register its
			// stack anyway so flame graphs show WHERE the torn activity
			// happened, even at zero weight.
			p.folded[cr.stackKey] += 0
		}
		pa, ok := p.pathStats[cr.stackKey]
		if !ok {
			pa = &pathAccum{}
			p.pathStats[cr.stackKey] = pa
		}
		pa.calls += period
		pa.incl += cr.rec.Incl
		pa.self += cr.rec.Self
		p.accumulate(cr.rec, period)
	}

	sort.Slice(p.threads, func(i, j int) bool { return p.threads[i].ID < p.threads[j].ID })
	sort.Slice(p.funcs, func(i, j int) bool {
		if p.funcs[i].Self != p.funcs[j].Self {
			return p.funcs[i].Self > p.funcs[j].Self
		}
		return p.funcs[i].Name < p.funcs[j].Name
	})
	p.byName = make(map[string]int, len(p.funcs))
	for i, f := range p.funcs {
		p.byName[f.Name] = i
	}
	return p, nil
}

// analyzeThread rebuilds one thread's call stack from its entry stream.
// forceAt is the merge tag for frames force-closed at the end of the log
// (past every real index, ordered by thread discovery). In lenient
// (recovery) mode, unmatched returns surface as zero-tick records under
// TruncatedFrameName rather than being dropped.
func analyzeThread(g *threadEntries, tab *symtab.Table, forceAt int, lenient bool) threadResult {
	res := threadResult{stat: ThreadStat{ID: g.id}}
	var (
		stack  []frame
		names  []string
		lastTS uint64
	)

	// closeTop completes the top frame at counter value now; identical
	// arithmetic to the historical serial closeTop.
	closeTop := func(now uint64, truncated bool, at int) {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		incl := uint64(0)
		if now > f.start {
			incl = now - f.start
		}
		self := uint64(0)
		if incl > f.childTicks {
			self = incl - f.childTicks
		}

		depth := len(stack)
		caller := ""
		if depth > 0 {
			parent := &stack[depth-1]
			parent.childTicks += incl
			caller = parent.name
		} else {
			res.stat.Ticks += incl
		}
		res.stat.Calls++

		// Folded stack and call-path accounting are attributed to the full
		// stack including the closing frame.
		stackKey := strings.Join(names, ";")
		names = names[:len(names)-1]

		res.recs = append(res.recs, closedRec{
			rec: Record{
				Thread:    res.stat.ID,
				Name:      f.name,
				Addr:      f.addr,
				Caller:    caller,
				Depth:     depth,
				Start:     f.start,
				End:       now,
				Incl:      incl,
				Self:      self,
				Truncated: truncated,
			},
			stackKey: stackKey,
			at:       at,
		})
	}

	for k := range g.entries {
		e := &g.entries[k]
		res.stat.Events++
		lastTS = e.Counter

		switch e.Kind {
		case shmlog.KindCall:
			stack = append(stack, frame{
				addr:  e.Addr,
				name:  tab.Name(e.Addr),
				start: e.Counter,
			})
			names = append(names, stack[len(stack)-1].name)
			if d := len(stack); d > res.stat.MaxDepth {
				res.stat.MaxDepth = d
			}
		case shmlog.KindReturn:
			// Pop frames until the one matching the return closes. Frames
			// above the match lost their return entries (recording was
			// toggled or the log overflowed); they close at the return's
			// counter value.
			match := -1
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].addr == e.Addr {
					match = i
					break
				}
			}
			if match < 0 {
				res.unmatched++
				if lenient {
					// The call side was lost with the torn region:
					// attribute the orphaned return to the synthetic
					// truncated frame so the salvage scar is visible.
					caller := ""
					if len(stack) > 0 {
						caller = stack[len(stack)-1].name
					}
					stackKey := TruncatedFrameName
					if len(names) > 0 {
						stackKey = strings.Join(names, ";") + ";" + TruncatedFrameName
					}
					res.recs = append(res.recs, closedRec{
						rec: Record{
							Thread:    res.stat.ID,
							Name:      TruncatedFrameName,
							Addr:      e.Addr,
							Caller:    caller,
							Depth:     len(stack),
							Start:     e.Counter,
							End:       e.Counter,
							Truncated: true,
						},
						stackKey: stackKey,
						at:       g.at[k],
					})
				}
				continue
			}
			for len(stack) > match {
				closeTop(e.Counter, false, g.at[k])
			}
		}
	}

	// Force-close whatever remains on the stack at the thread's last
	// observed counter value; these durations are approximate.
	for len(stack) > 0 {
		closeTop(lastTS, true, forceAt)
		res.truncated++
	}
	return res
}

// accumulate folds one (already weight-scaled) record into the per-function
// table; period scales the call counts, matching the record's tick scaling.
func (p *Profile) accumulate(rec Record, period uint64) {
	i, ok := p.byName[rec.Name]
	if !ok {
		i = len(p.funcs)
		p.byName[rec.Name] = i
		p.funcs = append(p.funcs, FuncStat{
			Name:    rec.Name,
			Addr:    rec.Addr,
			Callers: make(map[string]uint64),
			Callees: make(map[string]uint64),
		})
	}
	f := &p.funcs[i]
	if f.Addr == 0 {
		f.Addr = rec.Addr
	}
	f.Calls += period
	f.Incl += rec.Incl
	f.Self += rec.Self
	if rec.Caller != "" {
		f.Callers[rec.Caller] += period
		// Register the callee edge on the caller as well.
		j, ok := p.byName[rec.Caller]
		if !ok {
			j = len(p.funcs)
			p.byName[rec.Caller] = j
			p.funcs = append(p.funcs, FuncStat{
				Name:    rec.Caller,
				Callers: make(map[string]uint64),
				Callees: make(map[string]uint64),
			})
			f = &p.funcs[i] // re-take: append may have moved the slice
		}
		p.funcs[j].Callees[rec.Name] += period
	}
}

// Funcs returns per-function statistics sorted by self time (descending).
func (p *Profile) Funcs() []FuncStat {
	out := make([]FuncStat, len(p.funcs))
	copy(out, p.funcs)
	return out
}

// Top returns the n hottest functions by self time.
func (p *Profile) Top(n int) []FuncStat {
	if n > len(p.funcs) {
		n = len(p.funcs)
	}
	if n <= 0 {
		return nil
	}
	out := make([]FuncStat, n)
	copy(out, p.funcs[:n])
	return out
}

// Func returns the statistics for a function by resolved name.
func (p *Profile) Func(name string) (FuncStat, bool) {
	i, ok := p.byName[name]
	if !ok {
		return FuncStat{}, false
	}
	return p.funcs[i], true
}

// SelfFraction returns a function's share of total self time, in [0,1].
func (p *Profile) SelfFraction(name string) float64 {
	f, ok := p.Func(name)
	if !ok || p.TotalTicks == 0 {
		return 0
	}
	return float64(f.Self) / float64(p.TotalTicks)
}

// Threads returns per-thread statistics sorted by thread ID.
func (p *Profile) Threads() []ThreadStat {
	out := make([]ThreadStat, len(p.threads))
	copy(out, p.threads)
	return out
}

// Records returns every completed execution in completion order.
func (p *Profile) Records() []Record {
	out := make([]Record, len(p.records))
	copy(out, p.records)
	return out
}

// Folded returns the folded-stack map: "root;child;leaf" -> self ticks.
func (p *Profile) Folded() map[string]uint64 {
	out := make(map[string]uint64, len(p.folded))
	for k, v := range p.folded {
		out[k] = v
	}
	return out
}

// WriteTable renders the top-n functions as an aligned text table, the
// analyzer's default sorted report.
func (p *Profile) WriteTable(w io.Writer, n int) error {
	top := p.Top(n)
	if _, err := fmt.Fprintf(w, "%-44s %12s %14s %14s %7s\n",
		"FUNCTION", "CALLS", "SELF", "INCL", "SELF%"); err != nil {
		return err
	}
	for _, f := range top {
		pct := 0.0
		if p.TotalTicks > 0 {
			pct = 100 * float64(f.Self) / float64(p.TotalTicks)
		}
		name := f.Name
		if len(name) > 44 {
			name = name[:41] + "..."
		}
		if _, err := fmt.Fprintf(w, "%-44s %12d %14d %14d %6.2f%%\n",
			name, f.Calls, f.Self, f.Incl, pct); err != nil {
			return err
		}
	}
	return nil
}
