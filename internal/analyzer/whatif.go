package analyzer

import (
	"fmt"
	"io"
	"sort"
)

// WhatIfResult projects the effect of eliminating functions from the
// critical path — the quantified version of the paper's §IV-C reasoning
// ("these two functions either have to be removed from the critical path,
// or have to be replaced").
type WhatIfResult struct {
	// Removed lists the (existing) functions considered, with their
	// self-time shares.
	Removed []WhatIfEntry
	// RemovedShare is the summed self-time share in [0,1).
	RemovedShare float64
	// ProjectedSpeedup is the Amdahl projection 1/(1-RemovedShare).
	ProjectedSpeedup float64
	// Unknown lists requested functions absent from the profile.
	Unknown []string
}

// WhatIfEntry is one removed function.
type WhatIfEntry struct {
	Name  string
	Share float64
}

// WhatIf projects the speedup from removing the named functions' self time
// (assuming their callers no longer pay it — caching, batching or deleting
// the calls).
func (p *Profile) WhatIf(names ...string) WhatIfResult {
	var res WhatIfResult
	seen := make(map[string]struct{}, len(names))
	for _, name := range names {
		if _, dup := seen[name]; dup {
			continue
		}
		seen[name] = struct{}{}
		if _, ok := p.Func(name); !ok {
			res.Unknown = append(res.Unknown, name)
			continue
		}
		share := p.SelfFraction(name)
		res.Removed = append(res.Removed, WhatIfEntry{Name: name, Share: share})
		res.RemovedShare += share
	}
	sort.Slice(res.Removed, func(i, j int) bool {
		if res.Removed[i].Share != res.Removed[j].Share {
			return res.Removed[i].Share > res.Removed[j].Share
		}
		return res.Removed[i].Name < res.Removed[j].Name
	})
	sort.Strings(res.Unknown)
	if res.RemovedShare >= 1 {
		res.RemovedShare = 0.999999 // numerical guard; shares sum to <= 1
	}
	res.ProjectedSpeedup = 1 / (1 - res.RemovedShare)
	return res
}

// WriteWhatIf renders the projection.
func WriteWhatIf(w io.Writer, r WhatIfResult) error {
	for _, e := range r.Removed {
		if _, err := fmt.Fprintf(w, "remove %-44s %6.2f%% of self time\n", e.Name, 100*e.Share); err != nil {
			return err
		}
	}
	for _, u := range r.Unknown {
		if _, err := fmt.Fprintf(w, "remove %-44s (not in profile)\n", u); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "projected speedup: %.2fx (removing %.1f%% of execution)\n",
		r.ProjectedSpeedup, 100*r.RemovedShare)
	return err
}

// Merge aggregates profiles from multiple runs (the PID field in each log
// header is what tells runs apart, §II-B): per-function statistics, folded
// stacks and call paths are summed. The merged profile is an aggregate
// view: per-run records and thread lists are not carried over.
func Merge(profiles ...*Profile) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("analyzer: nothing to merge")
	}
	out := &Profile{
		byName:    make(map[string]int),
		folded:    make(map[string]uint64),
		pathStats: make(map[string]*pathAccum),
	}
	for _, p := range profiles {
		if p == nil {
			return nil, fmt.Errorf("analyzer: nil profile in merge")
		}
		out.TotalTicks += p.TotalTicks
		out.Truncated += p.Truncated
		out.Unmatched += p.Unmatched
		out.Dropped += p.Dropped
		for _, f := range p.funcs {
			i, ok := out.byName[f.Name]
			if !ok {
				i = len(out.funcs)
				out.byName[f.Name] = i
				out.funcs = append(out.funcs, FuncStat{
					Name:    f.Name,
					Addr:    f.Addr,
					Callers: make(map[string]uint64),
					Callees: make(map[string]uint64),
				})
			}
			dst := &out.funcs[i]
			dst.Calls += f.Calls
			dst.Incl += f.Incl
			dst.Self += f.Self
			for caller, n := range f.Callers {
				dst.Callers[caller] += n
			}
			for callee, n := range f.Callees {
				dst.Callees[callee] += n
			}
		}
		for stack, v := range p.folded {
			out.folded[stack] += v
		}
		for stack, pa := range p.pathStats {
			dst, ok := out.pathStats[stack]
			if !ok {
				dst = &pathAccum{}
				out.pathStats[stack] = dst
			}
			dst.calls += pa.calls
			dst.incl += pa.incl
			dst.self += pa.self
		}
	}
	sort.Slice(out.funcs, func(i, j int) bool {
		if out.funcs[i].Self != out.funcs[j].Self {
			return out.funcs[i].Self > out.funcs[j].Self
		}
		return out.funcs[i].Name < out.funcs[j].Name
	})
	out.byName = make(map[string]int, len(out.funcs))
	for i, f := range out.funcs {
		out.byName[f.Name] = i
	}
	return out, nil
}
