package analyzer

// Conformance test for log sharding: the shard count is a recording-side
// concurrency knob and must be invisible downstream. The same event
// schedule recorded into a single-tail log, a sharded log, and a sharded
// log persisted and re-read must analyze to byte-identical folded output.

import (
	"bytes"
	"fmt"
	"testing"

	"teeperf/internal/counter"
	"teeperf/internal/flamegraph"
	"teeperf/internal/probe"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

func TestShardedFoldedOutputIdentical(t *testing.T) {
	tab := symtab.New()
	names := []string{"sh_main", "sh_parse", "sh_eval", "sh_emit"}
	addrs := make([]uint64, len(names))
	for i, n := range names {
		a, err := tab.Register(n, 16, "shard.go", i+1)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}

	// A deterministic multi-thread schedule: the virtual counter advances
	// one tick per event, so every recording of this schedule commits the
	// exact same entries (thread IDs, counters, addresses).
	record := func(shards int) *shmlog.Log {
		log, err := shmlog.New(1<<12, shmlog.WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := probe.New(log, counter.NewVirtual(1))
		if err != nil {
			t.Fatal(err)
		}
		// Thread IDs are assigned sequentially, so creating the threads
		// up front makes every recording use the same IDs 1..3.
		threads := []*probe.Thread{rt.Thread(), rt.Thread(), rt.Thread()}
		for round := 0; round < 30; round++ {
			for w, th := range threads {
				th.Enter(addrs[0])
				th.Enter(addrs[1+(round+w)%3])
				th.Exit(addrs[1+(round+w)%3])
				th.Exit(addrs[0])
			}
		}
		rt.Flush()
		return log
	}

	folded := func(log *shmlog.Log) string {
		p, err := Analyze(log, tab)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := flamegraph.WriteFolded(&buf, p.Folded()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	want := folded(record(1))
	if want == "" {
		t.Fatal("reference folded output is empty")
	}
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			log := record(shards)
			if got := folded(log); got != want {
				t.Fatalf("folded output diverges from single-tail log:\n%s\nwant:\n%s", got, want)
			}
			// The persisted form must agree too: the read-time counter
			// merge reconstructs the same stream the live readers see.
			var raw bytes.Buffer
			if _, err := log.WriteTo(&raw); err != nil {
				t.Fatal(err)
			}
			decoded, err := shmlog.Read(&raw)
			if err != nil {
				t.Fatal(err)
			}
			if got := folded(decoded); got != want {
				t.Fatalf("persisted sharded log analyzes differently:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}
