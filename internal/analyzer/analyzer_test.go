package analyzer

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// fixture builds a log + table with a small registered program.
type fixture struct {
	log *shmlog.Log
	tab *symtab.Table
	fns map[string]uint64
	now uint64
}

func newFixture(t *testing.T, capacity int, names ...string) *fixture {
	t.Helper()
	log, err := shmlog.New(capacity)
	if err != nil {
		t.Fatal(err)
	}
	tab := symtab.New()
	fns := make(map[string]uint64, len(names))
	for i, n := range names {
		fns[n] = tab.MustRegister(n, 16, "test.go", i+1)
	}
	return &fixture{log: log, tab: tab, fns: fns}
}

func (f *fixture) call(t *testing.T, tid uint64, name string, at uint64) {
	t.Helper()
	f.emit(t, shmlog.KindCall, tid, name, at)
}

func (f *fixture) ret(t *testing.T, tid uint64, name string, at uint64) {
	t.Helper()
	f.emit(t, shmlog.KindReturn, tid, name, at)
}

func (f *fixture) emit(t *testing.T, kind shmlog.Kind, tid uint64, name string, at uint64) {
	t.Helper()
	addr, ok := f.fns[name]
	if !ok {
		t.Fatalf("unregistered function %q", name)
	}
	if err := f.log.Append(shmlog.Entry{Kind: kind, Counter: at, Addr: addr, ThreadID: tid}); err != nil {
		t.Fatal(err)
	}
}

func (f *fixture) analyze(t *testing.T) *Profile {
	t.Helper()
	p, err := Analyze(f.log, f.tab)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, nil); err == nil {
		t.Error("nil inputs should fail")
	}
}

func TestSimpleNestedCalls(t *testing.T) {
	// main [0..100] calls work [10..60]: main self=50, work self=50.
	f := newFixture(t, 16, "main", "work")
	f.call(t, 1, "main", 0)
	f.call(t, 1, "work", 10)
	f.ret(t, 1, "work", 60)
	f.ret(t, 1, "main", 100)

	p := f.analyze(t)
	if p.TotalTicks != 100 {
		t.Errorf("TotalTicks = %d, want 100", p.TotalTicks)
	}
	mainStat, ok := p.Func("main")
	if !ok {
		t.Fatal("main missing")
	}
	if mainStat.Incl != 100 || mainStat.Self != 50 || mainStat.Calls != 1 {
		t.Errorf("main = %+v, want incl=100 self=50 calls=1", mainStat)
	}
	workStat, ok := p.Func("work")
	if !ok {
		t.Fatal("work missing")
	}
	if workStat.Incl != 50 || workStat.Self != 50 {
		t.Errorf("work = %+v, want incl=50 self=50", workStat)
	}
	if got := workStat.Callers["main"]; got != 1 {
		t.Errorf("work callers[main] = %d, want 1", got)
	}
	if got := mainStat.Callees["work"]; got != 1 {
		t.Errorf("main callees[work] = %d, want 1", got)
	}
	if got := p.SelfFraction("work"); got != 0.5 {
		t.Errorf("SelfFraction(work) = %f, want 0.5", got)
	}
}

func TestRepeatedCallsAggregate(t *testing.T) {
	f := newFixture(t, 64, "main", "leaf")
	f.call(t, 1, "main", 0)
	now := uint64(10)
	for i := 0; i < 5; i++ {
		f.call(t, 1, "leaf", now)
		f.ret(t, 1, "leaf", now+7)
		now += 10
	}
	f.ret(t, 1, "main", 100)
	p := f.analyze(t)

	leaf, _ := p.Func("leaf")
	if leaf.Calls != 5 {
		t.Errorf("leaf calls = %d, want 5", leaf.Calls)
	}
	if leaf.Self != 35 {
		t.Errorf("leaf self = %d, want 35", leaf.Self)
	}
	mainStat, _ := p.Func("main")
	if mainStat.Self != 65 {
		t.Errorf("main self = %d, want 65", mainStat.Self)
	}
	if got := mainStat.Callees["leaf"]; got != 5 {
		t.Errorf("main callees[leaf] = %d, want 5", got)
	}
}

func TestMultiThreadIndependence(t *testing.T) {
	// Interleave two threads; per-thread reconstruction must untangle.
	f := newFixture(t, 64, "a", "b")
	f.call(t, 1, "a", 0)
	f.call(t, 2, "b", 5)
	f.ret(t, 2, "b", 25)
	f.ret(t, 1, "a", 50)

	p := f.analyze(t)
	if p.TotalTicks != 70 {
		t.Errorf("TotalTicks = %d, want 70", p.TotalTicks)
	}
	threads := p.Threads()
	if len(threads) != 2 {
		t.Fatalf("threads = %d, want 2", len(threads))
	}
	if threads[0].ID != 1 || threads[0].Ticks != 50 || threads[0].Events != 2 {
		t.Errorf("thread 1 = %+v", threads[0])
	}
	if threads[1].ID != 2 || threads[1].Ticks != 20 {
		t.Errorf("thread 2 = %+v", threads[1])
	}
}

func TestTruncatedLogForceCloses(t *testing.T) {
	// Returns missing: log ended mid-run.
	f := newFixture(t, 16, "main", "work")
	f.call(t, 1, "main", 0)
	f.call(t, 1, "work", 10)
	// no returns at all; last counter seen is 10
	p := f.analyze(t)

	if p.Truncated != 2 {
		t.Errorf("Truncated = %d, want 2", p.Truncated)
	}
	mainStat, _ := p.Func("main")
	if mainStat.Incl != 10 {
		t.Errorf("main incl = %d, want 10 (closed at last counter)", mainStat.Incl)
	}
	recs := p.Records()
	for _, r := range recs {
		if !r.Truncated {
			t.Errorf("record %s not marked truncated", r.Name)
		}
	}
}

func TestMissingReturnUnwinds(t *testing.T) {
	// c's return is lost; b's return must close both.
	f := newFixture(t, 16, "a", "b", "c")
	f.call(t, 1, "a", 0)
	f.call(t, 1, "b", 10)
	f.call(t, 1, "c", 20)
	f.ret(t, 1, "b", 50) // closes c (at 50) then b
	f.ret(t, 1, "a", 100)

	p := f.analyze(t)
	if p.Unmatched != 0 {
		t.Errorf("Unmatched = %d, want 0", p.Unmatched)
	}
	cStat, ok := p.Func("c")
	if !ok {
		t.Fatal("c missing")
	}
	if cStat.Incl != 30 {
		t.Errorf("c incl = %d, want 30", cStat.Incl)
	}
	bStat, _ := p.Func("b")
	if bStat.Incl != 40 || bStat.Self != 10 {
		t.Errorf("b = incl %d self %d, want incl=40 self=10", bStat.Incl, bStat.Self)
	}
}

func TestUnmatchedReturnSkipped(t *testing.T) {
	// A return with no call at all (recording enabled mid-function).
	f := newFixture(t, 16, "a", "b")
	f.ret(t, 1, "b", 5)
	f.call(t, 1, "a", 10)
	f.ret(t, 1, "a", 20)

	p := f.analyze(t)
	if p.Unmatched != 1 {
		t.Errorf("Unmatched = %d, want 1", p.Unmatched)
	}
	aStat, _ := p.Func("a")
	if aStat.Incl != 10 {
		t.Errorf("a incl = %d, want 10", aStat.Incl)
	}
	if _, ok := p.Func("b"); ok {
		t.Error("b should have no completed records")
	}
}

func TestRecursionDepth(t *testing.T) {
	// fib-like self recursion: matching must close the innermost frame.
	f := newFixture(t, 32, "rec")
	f.call(t, 1, "rec", 0)
	f.call(t, 1, "rec", 10)
	f.call(t, 1, "rec", 20)
	f.ret(t, 1, "rec", 30)
	f.ret(t, 1, "rec", 40)
	f.ret(t, 1, "rec", 50)

	p := f.analyze(t)
	rec, _ := p.Func("rec")
	if rec.Calls != 3 {
		t.Errorf("rec calls = %d, want 3", rec.Calls)
	}
	// inner incl: 10, middle: 30, outer: 50 => incl sum 90
	if rec.Incl != 90 {
		t.Errorf("rec incl = %d, want 90", rec.Incl)
	}
	// self: inner 10, middle 30-10=20, outer 50-30=20 => 50 == TotalTicks
	if rec.Self != 50 || p.TotalTicks != 50 {
		t.Errorf("rec self = %d total = %d, want 50/50", rec.Self, p.TotalTicks)
	}
	if got := p.Threads()[0].MaxDepth; got != 3 {
		t.Errorf("MaxDepth = %d, want 3", got)
	}
}

func TestFoldedStacks(t *testing.T) {
	f := newFixture(t, 32, "main", "work", "leaf")
	f.call(t, 1, "main", 0)
	f.call(t, 1, "work", 10)
	f.call(t, 1, "leaf", 20)
	f.ret(t, 1, "leaf", 40)
	f.ret(t, 1, "work", 50)
	f.ret(t, 1, "main", 100)

	p := f.analyze(t)
	folded := p.Folded()
	want := map[string]uint64{
		"main":           60, // 100 - 40 child
		"main;work":      20, // 40 - 20 child
		"main;work;leaf": 20,
	}
	if len(folded) != len(want) {
		t.Fatalf("folded = %v, want %v", folded, want)
	}
	for k, v := range want {
		if folded[k] != v {
			t.Errorf("folded[%q] = %d, want %d", k, folded[k], v)
		}
	}
	// Sum of folded values equals total ticks.
	var sum uint64
	for _, v := range folded {
		sum += v
	}
	if sum != p.TotalTicks {
		t.Errorf("folded sum = %d, want TotalTicks %d", sum, p.TotalTicks)
	}
}

func TestLoadBiasRecovery(t *testing.T) {
	// Addresses in the log are relocated by +0x5000; the header's anchor
	// lets the analyzer resolve them anyway.
	const bias = 0x5000
	tab := symtab.New()
	fn := tab.MustRegister("fn", 16, "t.go", 1)
	log, err := shmlog.New(8, shmlog.WithProfilerAddr(tab.AnchorAddr()+bias))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend := func(kind shmlog.Kind, at uint64) {
		t.Helper()
		if err := log.Append(shmlog.Entry{Kind: kind, Counter: at, Addr: fn + bias, ThreadID: 1}); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(shmlog.KindCall, 0)
	mustAppend(shmlog.KindReturn, 10)

	p, err := Analyze(log, tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Func("fn"); !ok {
		t.Errorf("fn not resolved under load bias; funcs: %+v", p.Funcs())
	}
}

func TestUnresolvedAddressesFallBackToHex(t *testing.T) {
	f := newFixture(t, 8, "known")
	if err := f.log.Append(shmlog.Entry{Kind: shmlog.KindCall, Counter: 0, Addr: 0x99, ThreadID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.log.Append(shmlog.Entry{Kind: shmlog.KindReturn, Counter: 5, Addr: 0x99, ThreadID: 1}); err != nil {
		t.Fatal(err)
	}
	p := f.analyze(t)
	if _, ok := p.Func("0x99"); !ok {
		t.Errorf("unresolved address not reported as hex; funcs: %+v", p.Funcs())
	}
}

func TestTopAndTable(t *testing.T) {
	f := newFixture(t, 32, "hot", "cold")
	f.call(t, 1, "hot", 0)
	f.ret(t, 1, "hot", 90)
	f.call(t, 1, "cold", 90)
	f.ret(t, 1, "cold", 100)

	p := f.analyze(t)
	top := p.Top(1)
	if len(top) != 1 || top[0].Name != "hot" {
		t.Errorf("Top(1) = %+v, want hot", top)
	}
	if got := p.Top(0); got != nil {
		t.Errorf("Top(0) = %v, want nil", got)
	}
	if got := len(p.Top(10)); got != 2 {
		t.Errorf("Top(10) returned %d, want 2", got)
	}

	var sb strings.Builder
	if err := p.WriteTable(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "hot") || !strings.Contains(out, "90.00%") {
		t.Errorf("table missing expected content:\n%s", out)
	}
}

func TestRecordsOrderAndFields(t *testing.T) {
	f := newFixture(t, 16, "main", "work")
	f.call(t, 1, "main", 0)
	f.call(t, 1, "work", 10)
	f.ret(t, 1, "work", 30)
	f.ret(t, 1, "main", 50)

	p := f.analyze(t)
	recs := p.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	// Completion order: work closes first.
	if recs[0].Name != "work" || recs[0].Depth != 1 || recs[0].Caller != "main" {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].Name != "main" || recs[1].Depth != 0 || recs[1].Caller != "" {
		t.Errorf("record 1 = %+v", recs[1])
	}
	if recs[0].Incl != 20 || recs[1].Self != 30 {
		t.Errorf("records have wrong ticks: %+v", recs)
	}
}

// TestConservationProperty checks the core invariant on random well-nested
// traces: for every thread, the sum of self ticks equals the sum of
// root-frame inclusive ticks, and per-function call counts match what was
// generated.
func TestConservationProperty(t *testing.T) {
	type genParams struct {
		Seed  int64
		Funcs uint8
		Ops   uint16
	}
	f := func(gp genParams) bool {
		nf := int(gp.Funcs%8) + 2
		ops := int(gp.Ops%300) + 10
		rng := rand.New(rand.NewSource(gp.Seed))

		names := make([]string, nf)
		tab := symtab.New()
		addrs := make([]uint64, nf)
		for i := range names {
			names[i] = string(rune('a'+i%26)) + "fn"
			addrs[i] = tab.MustRegister(names[i]+string(rune('0'+i/26)), 16, "g.go", i)
		}
		log, err := shmlog.New(ops*2 + 4)
		if err != nil {
			return false
		}

		now := uint64(0)
		var stack []int
		calls := 0
		for i := 0; i < ops; i++ {
			now += uint64(rng.Intn(5) + 1)
			if len(stack) == 0 || (rng.Intn(2) == 0 && len(stack) < 30) {
				fi := rng.Intn(nf)
				stack = append(stack, fi)
				if log.Append(shmlog.Entry{Kind: shmlog.KindCall, Counter: now, Addr: addrs[fi], ThreadID: 1}) != nil {
					return false
				}
				calls++
			} else {
				fi := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if log.Append(shmlog.Entry{Kind: shmlog.KindReturn, Counter: now, Addr: addrs[fi], ThreadID: 1}) != nil {
					return false
				}
			}
		}
		p, err := Analyze(log, tab)
		if err != nil {
			return false
		}
		var selfSum, callSum uint64
		for _, fs := range p.Funcs() {
			selfSum += fs.Self
			callSum += fs.Calls
		}
		if selfSum != p.TotalTicks {
			return false
		}
		if callSum != uint64(calls) {
			return false
		}
		// Folded stacks conserve ticks too.
		var foldedSum uint64
		for _, v := range p.Folded() {
			foldedSum += v
		}
		return foldedSum == p.TotalTicks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
