package analyzer

// Property/model test: random balanced call/return streams pushed through
// the real probe runtime — batched and unbatched, single- and
// multi-threaded — while an Incremental drains the live Cursor
// concurrently. Once the writers finish and the runtime flushes, the live
// table must converge EXACTLY to the offline analyzer's result over the
// same log. Run under -race this also exercises the lock-free
// reserve/commit protocol against a racing reader.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"teeperf/internal/counter"
	"teeperf/internal/probe"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

func TestPropertyIncrementalConvergesViaProbe(t *testing.T) {
	for _, batch := range []int{1, 4, 16} {
		for _, threads := range []int{1, 3} {
			batch, threads := batch, threads
			t.Run(fmt.Sprintf("batch=%d,threads=%d", batch, threads), func(t *testing.T) {
				runProbeProperty(t, batch, threads, int64(batch)*1000+int64(threads))
			})
		}
	}
}

func runProbeProperty(t *testing.T, batch, threads int, seed int64) {
	tab := symtab.New()
	names := []string{"pp_a", "pp_b", "pp_c", "pp_d", "pp_e", "pp_f"}
	addrs := make([]uint64, len(names))
	for i, n := range names {
		a, err := tab.Register(n, 16, "prop.go", i+1)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}

	log, err := shmlog.New(1 << 13)
	if err != nil {
		t.Fatal(err)
	}
	var popts []probe.Option
	if batch > 1 {
		popts = append(popts, probe.WithBatch(batch))
	}
	rt, err := probe.New(log, counter.NewVirtual(1), popts...)
	if err != nil {
		t.Fatal(err)
	}

	// Live reader: drain the cursor while the writers are still appending.
	// Incremental is not safe for concurrent use, so only this goroutine
	// touches it; the cursor itself reads the log's committed prefix with
	// the same atomics the probes commit with.
	inc := NewIncremental(tab)
	cur := log.Cursor()
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			inc.FeedAll(cur.Next(nil))
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()

	const eventsPerThread = 400
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.Thread()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			var stack []uint64
			for i := 0; i < eventsPerThread; i++ {
				if len(stack) > 0 && (rng.Intn(2) == 0 || len(stack) >= 12) {
					a := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					th.Exit(a)
				} else {
					a := addrs[rng.Intn(len(addrs))]
					stack = append(stack, a)
					th.Enter(a)
				}
			}
			// Balance the stream: every call gets its return.
			for len(stack) > 0 {
				a := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				th.Exit(a)
			}
		}(w)
	}
	wg.Wait()
	rt.Flush() // release reserved-but-unused batch slots
	close(stop)
	<-readerDone
	// Final drain: everything committed (including former in-flight holes)
	// must now be visible.
	inc.FeedAll(cur.Next(nil))

	if d := rt.Dropped(); d != 0 {
		t.Fatalf("dropped %d events; the property needs a loss-free run", d)
	}
	if p := cur.Pending(); p != 0 {
		t.Fatalf("cursor still has %d unresolved holes after flush", p)
	}

	live := inc.Snapshot(0)
	p, err := Analyze(log, tab)
	if err != nil {
		t.Fatal(err)
	}
	assertTablesMatch(t, live, p)
	if live.Unmatched != p.Unmatched {
		t.Errorf("Unmatched = %d, offline %d", live.Unmatched, p.Unmatched)
	}
	if live.OpenFrames != 0 {
		t.Errorf("OpenFrames = %d after a balanced stream", live.OpenFrames)
	}
	if live.Threads != threads {
		t.Errorf("Threads = %d, want %d", live.Threads, threads)
	}
}
