package analyzer

import (
	"math/rand"
	"testing"

	"teeperf/internal/shmlog"
)

// feedAllFromLog replays a fixture's log through an incremental analyzer
// the way the monitor's cursor would: in committed log order.
func feedAllFromLog(inc *Incremental, log *shmlog.Log) {
	inc.FeedAll(log.Cursor().Next(nil))
}

func TestIncrementalMatchesAnalyzeNested(t *testing.T) {
	f := newFixture(t, 16, "main", "work", "leaf")
	f.call(t, 1, "main", 0)
	f.call(t, 1, "work", 10)
	f.call(t, 1, "leaf", 20)
	f.ret(t, 1, "leaf", 30)
	f.ret(t, 1, "work", 60)
	f.ret(t, 1, "main", 100)

	inc := NewIncremental(f.tab)
	feedAllFromLog(inc, f.log)
	got := inc.Snapshot(0)
	p := f.analyze(t)
	assertTablesMatch(t, got, p)
	if got.OpenFrames != 0 {
		t.Errorf("OpenFrames = %d after a balanced stream", got.OpenFrames)
	}
}

func TestIncrementalMatchesAnalyzeTruncatedAndUnmatched(t *testing.T) {
	f := newFixture(t, 32, "main", "work", "other")
	// Unmatched return (recording toggled mid-run)...
	f.ret(t, 1, "other", 5)
	// ...then a run that ends with frames still open.
	f.call(t, 1, "main", 10)
	f.call(t, 1, "work", 20)
	f.ret(t, 1, "work", 50)
	f.call(t, 1, "work", 60) // never returns
	// A second thread entirely open.
	f.call(t, 2, "other", 0)
	f.call(t, 2, "work", 40)

	inc := NewIncremental(f.tab)
	feedAllFromLog(inc, f.log)
	got := inc.Snapshot(0)
	p := f.analyze(t)
	assertTablesMatch(t, got, p)
	if got.Unmatched != p.Unmatched {
		t.Errorf("Unmatched = %d, offline %d", got.Unmatched, p.Unmatched)
	}
	if got.OpenFrames != p.Truncated {
		t.Errorf("OpenFrames = %d, offline force-closed %d", got.OpenFrames, p.Truncated)
	}
}

func TestIncrementalMatchesAnalyzeRandomStream(t *testing.T) {
	// A randomized multi-thread call/return stream: whatever the offline
	// analyzer computes, the incremental fold must reproduce exactly.
	names := []string{"a", "b", "c", "d", "e"}
	f := newFixture(t, 4096, names...)
	rng := rand.New(rand.NewSource(7))
	now := uint64(0)
	depth := map[uint64][]string{}
	for i := 0; i < 2000; i++ {
		tid := uint64(1 + rng.Intn(3))
		now += uint64(1 + rng.Intn(5))
		stack := depth[tid]
		if len(stack) > 0 && rng.Intn(2) == 0 {
			name := stack[len(stack)-1]
			depth[tid] = stack[:len(stack)-1]
			f.ret(t, tid, name, now)
		} else {
			name := names[rng.Intn(len(names))]
			depth[tid] = append(stack, name)
			f.call(t, tid, name, now)
		}
	}

	inc := NewIncremental(f.tab)
	feedAllFromLog(inc, f.log)
	assertTablesMatch(t, inc.Snapshot(0), f.analyze(t))
}

func TestIncrementalSnapshotDoesNotPerturbState(t *testing.T) {
	f := newFixture(t, 16, "main", "work")
	f.call(t, 1, "main", 0)
	f.call(t, 1, "work", 10)

	inc := NewIncremental(f.tab)
	cur := f.log.Cursor()
	inc.FeedAll(cur.Next(nil))
	first := inc.Snapshot(0)
	second := inc.Snapshot(0)
	if first.TotalTicks != second.TotalTicks || len(first.Funcs) != len(second.Funcs) {
		t.Fatalf("repeated snapshots differ: %+v vs %+v", first, second)
	}
	for i := range first.Funcs {
		if first.Funcs[i] != second.Funcs[i] {
			t.Errorf("func %d drifted across snapshots: %+v vs %+v", i, first.Funcs[i], second.Funcs[i])
		}
	}

	// Completing the stream must still close frames with the full
	// inclusive time, proving the snapshots above worked on copies.
	f.ret(t, 1, "work", 60)
	f.ret(t, 1, "main", 100)
	inc.FeedAll(cur.Next(nil))
	assertTablesMatch(t, inc.Snapshot(0), f.analyze(t))
}

func TestIncrementalTopLimit(t *testing.T) {
	f := newFixture(t, 64, "a", "b", "c", "d")
	now := uint64(0)
	for _, n := range []string{"a", "b", "c", "d"} {
		f.call(t, 1, n, now)
		now += 10
		f.ret(t, 1, n, now)
		now += 1
	}
	inc := NewIncremental(f.tab)
	feedAllFromLog(inc, f.log)
	if got := inc.Snapshot(2); len(got.Funcs) != 2 {
		t.Errorf("Snapshot(2) returned %d funcs", len(got.Funcs))
	}
	if got := inc.Snapshot(0); len(got.Funcs) != 4 {
		t.Errorf("Snapshot(0) returned %d funcs", len(got.Funcs))
	}
}

// assertTablesMatch requires the live table to agree exactly with the
// offline profile: same function set, same calls/incl/self, same totals.
func assertTablesMatch(t *testing.T, live LiveTable, p *Profile) {
	t.Helper()
	if live.TotalTicks != p.TotalTicks {
		t.Errorf("TotalTicks = %d, offline %d", live.TotalTicks, p.TotalTicks)
	}
	offline := p.Funcs()
	if len(live.Funcs) != len(offline) {
		t.Fatalf("function count = %d, offline %d", len(live.Funcs), len(offline))
	}
	for i := range offline {
		lf, of := live.Funcs[i], offline[i]
		if lf.Name != of.Name || lf.Calls != of.Calls || lf.Incl != of.Incl || lf.Self != of.Self {
			t.Errorf("func %d: live %+v, offline {%s %d %d %d}",
				i, lf, of.Name, of.Calls, of.Incl, of.Self)
		}
	}
}
