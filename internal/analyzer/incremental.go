package analyzer

import (
	"sort"

	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// Incremental folds a live stream of log entries into a per-method
// inclusive/exclusive-time table without reparsing the whole log. It is the
// online counterpart of Analyze: the monitor feeds it the entries a
// shmlog.Cursor surfaces while the workload is still running, and a
// Snapshot at any point reflects everything committed so far.
//
// The stack-reconstruction rules are identical to Analyze's — unmatched
// returns are counted and skipped, and frames still open at snapshot time
// are provisionally closed at their thread's last observed counter value
// (the live analogue of the offline force-close at the log's end) — so
// once the stream has been fully drained a snapshot converges to exactly
// the offline analyzer's result.
//
// Batched writers (probe.WithBatch) never disturb the stream: the cursor
// skips in-flight reserved slots and revisits them once committed, emitting
// resolved holes before newer entries, and drops released (tombstoned)
// slots entirely — so Incremental only ever sees committed events, each
// thread's in order.
//
// An Incremental is not safe for concurrent use; the monitor serializes
// access to it.
type Incremental struct {
	tab     *symtab.Table
	threads map[uint64]*incThread
	order   []uint64
	funcs   map[string]*LiveFunc

	// period is the sampling-period weight multiplier (>= 1). Stack
	// reconstruction stays raw; the period scales ticks and call counts at
	// aggregation time, exactly like the offline analyzer's phase-3 merge,
	// so a drained snapshot still equals Analyze's result on sampled logs.
	period uint64

	entries    int
	unmatched  int
	calls      uint64
	totalTicks uint64 // inclusive ticks of closed root frames
}

type incThread struct {
	id       uint64
	stack    []frame
	lastTS   uint64
	events   int
	maxDepth int
}

// LiveFunc is one function's running totals in the live table.
type LiveFunc struct {
	// Name is the resolved function name.
	Name string
	// Calls counts closed executions (plus provisionally closed frames in
	// snapshots).
	Calls uint64
	// Incl and Self are total inclusive and exclusive ticks.
	Incl, Self uint64

	// addr remembers one runtime address of the function so SetTable can
	// re-resolve accumulated totals when symbols arrive mid-stream.
	addr uint64
}

// LiveTable is a point-in-time view of the live profile.
type LiveTable struct {
	// TotalTicks is the inclusive time of all root frames, including
	// provisionally closed ones — the denominator for percentages.
	TotalTicks uint64
	// Entries is the number of log entries folded in so far.
	Entries int
	// Calls is the number of closed executions.
	Calls uint64
	// Unmatched counts returns with no corresponding call.
	Unmatched int
	// OpenFrames counts frames that were provisionally closed for this
	// snapshot (calls still in flight).
	OpenFrames int
	// Threads is the number of threads observed.
	Threads int
	// MaxDepth is the deepest stack observed on any thread.
	MaxDepth int
	// Funcs is sorted by self time (descending, ties by name).
	Funcs []LiveFunc
}

// SelfPercent returns f's share of the table's total ticks, in percent.
func (t *LiveTable) SelfPercent(f LiveFunc) float64 {
	if t.TotalTicks == 0 {
		return 0
	}
	return 100 * float64(f.Self) / float64(t.TotalTicks)
}

// NewIncremental creates an incremental analyzer resolving addresses
// through tab. Set the table's load bias (from the log's profiler anchor)
// before feeding entries, exactly as Analyze does.
func NewIncremental(tab *symtab.Table) *Incremental {
	return &Incremental{
		tab:     tab,
		threads: make(map[uint64]*incThread),
		funcs:   make(map[string]*LiveFunc),
		period:  1,
	}
}

// SetSamplePeriod sets the weight multiplier for a sampled stream (the
// log header's sampling period; 0 and 1 both mean unscaled). Entries fed
// after the call are aggregated at the new weight — live monitors refresh
// it from the header each poll, so a mid-run throttle scales the entries
// recorded under it.
func (inc *Incremental) SetSamplePeriod(n uint64) {
	if n == 0 {
		n = 1
	}
	inc.period = n
}

// SamplePeriod returns the current weight multiplier.
func (inc *Incremental) SamplePeriod() uint64 { return inc.period }

// Feed folds one log entry into the live table.
func (inc *Incremental) Feed(e shmlog.Entry) {
	ts, ok := inc.threads[e.ThreadID]
	if !ok {
		ts = &incThread{id: e.ThreadID}
		inc.threads[e.ThreadID] = ts
		inc.order = append(inc.order, e.ThreadID)
	}
	inc.entries++
	ts.events++
	ts.lastTS = e.Counter

	switch e.Kind {
	case shmlog.KindCall:
		ts.stack = append(ts.stack, frame{
			addr:  e.Addr,
			name:  inc.tab.Name(e.Addr),
			start: e.Counter,
		})
		if d := len(ts.stack); d > ts.maxDepth {
			ts.maxDepth = d
		}
	case shmlog.KindReturn:
		inc.closeUntil(ts, e.Addr, e.Counter)
	}
}

// FeedAll folds a batch of entries in order.
func (inc *Incremental) FeedAll(entries []shmlog.Entry) {
	for _, e := range entries {
		inc.Feed(e)
	}
}

// Entries returns how many log entries have been folded in.
func (inc *Incremental) Entries() int { return inc.entries }

// Unmatched returns how many returns had no corresponding call.
func (inc *Incremental) Unmatched() int { return inc.unmatched }

// OpenFrames returns how many calls are currently in flight.
func (inc *Incremental) OpenFrames() int {
	open := 0
	for _, ts := range inc.threads {
		open += len(ts.stack)
	}
	return open
}

// closeUntil mirrors Profile.closeUntil: pop frames until the one matching
// addr is closed; an unmatched return is counted and skipped.
func (inc *Incremental) closeUntil(ts *incThread, addr, now uint64) {
	match := -1
	for i := len(ts.stack) - 1; i >= 0; i-- {
		if ts.stack[i].addr == addr {
			match = i
			break
		}
	}
	if match < 0 {
		inc.unmatched++
		return
	}
	for len(ts.stack) > match {
		inc.closeTop(ts, now)
	}
}

// closeTop completes the top frame at counter value now, with the same
// inclusive/exclusive arithmetic as the offline analyzer.
func (inc *Incremental) closeTop(ts *incThread, now uint64) {
	f := ts.stack[len(ts.stack)-1]
	ts.stack = ts.stack[:len(ts.stack)-1]

	var incl uint64
	if now > f.start {
		incl = now - f.start
	}
	var self uint64
	if incl > f.childTicks {
		self = incl - f.childTicks
	}
	// Stack arithmetic stays raw (childTicks subtracts like from like);
	// the sampling period scales only the aggregated weights below.
	if len(ts.stack) > 0 {
		ts.stack[len(ts.stack)-1].childTicks += incl
	} else {
		inc.totalTicks += incl * inc.period
	}
	inc.calls += inc.period
	inc.bump(f.addr, f.name, incl*inc.period, self*inc.period)
}

func (inc *Incremental) bump(addr uint64, name string, incl, self uint64) {
	lf, ok := inc.funcs[name]
	if !ok {
		lf = &LiveFunc{Name: name, addr: addr}
		inc.funcs[name] = lf
	}
	lf.Calls += inc.period
	lf.Incl += incl
	lf.Self += self
}

// SetTable swaps the resolution table and retroactively re-resolves every
// accumulated name — the open stacks and the per-function totals. This is
// how an external observer (the fleet agent) handles symbols that arrive
// after entries were already folded: addresses were accumulated under
// their placeholder "0x…" names, and the fresh table gives them real ones.
// Totals that re-resolve to the same name are merged.
func (inc *Incremental) SetTable(tab *symtab.Table) {
	if tab == nil || tab == inc.tab {
		return
	}
	inc.tab = tab
	for _, ts := range inc.threads {
		for i := range ts.stack {
			ts.stack[i].name = tab.Name(ts.stack[i].addr)
		}
	}
	funcs := make(map[string]*LiveFunc, len(inc.funcs))
	for _, lf := range inc.funcs {
		name := tab.Name(lf.addr)
		lf.Name = name
		if prev, ok := funcs[name]; ok {
			prev.Calls += lf.Calls
			prev.Incl += lf.Incl
			prev.Self += lf.Self
		} else {
			funcs[name] = lf
		}
	}
	inc.funcs = funcs
}

// Snapshot returns the current live table. Frames still open are
// provisionally closed at their thread's last observed counter value on a
// copy of the totals, so snapshotting never perturbs the running state. A
// top of 0 returns every function.
func (inc *Incremental) Snapshot(top int) LiveTable {
	t := LiveTable{
		TotalTicks: inc.totalTicks,
		Entries:    inc.entries,
		Calls:      inc.calls,
		Unmatched:  inc.unmatched,
		Threads:    len(inc.threads),
	}
	merged := make(map[string]LiveFunc, len(inc.funcs))
	for name, lf := range inc.funcs {
		merged[name] = *lf
	}

	for _, tid := range inc.order {
		ts := inc.threads[tid]
		if ts.maxDepth > t.MaxDepth {
			t.MaxDepth = ts.maxDepth
		}
		// Closing proceeds top of stack first; each closed frame's
		// inclusive time becomes additional child time of the frame
		// directly beneath it.
		var childIncl uint64
		for i := len(ts.stack) - 1; i >= 0; i-- {
			f := ts.stack[i]
			var incl uint64
			if ts.lastTS > f.start {
				incl = ts.lastTS - f.start
			}
			children := f.childTicks + childIncl
			var self uint64
			if incl > children {
				self = incl - children
			}
			lf := merged[f.name]
			lf.Name = f.name
			lf.Calls += inc.period
			lf.Incl += incl * inc.period
			lf.Self += self * inc.period
			merged[f.name] = lf
			childIncl = incl
			t.OpenFrames++
			t.Calls += inc.period
			if i == 0 {
				t.TotalTicks += incl * inc.period
			}
		}
	}

	t.Funcs = make([]LiveFunc, 0, len(merged))
	for _, lf := range merged {
		t.Funcs = append(t.Funcs, lf)
	}
	sort.Slice(t.Funcs, func(i, j int) bool {
		if t.Funcs[i].Self != t.Funcs[j].Self {
			return t.Funcs[i].Self > t.Funcs[j].Self
		}
		return t.Funcs[i].Name < t.Funcs[j].Name
	})
	if top > 0 && len(t.Funcs) > top {
		t.Funcs = t.Funcs[:top]
	}
	return t
}
