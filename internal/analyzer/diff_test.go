package analyzer

import (
	"math"
	"strings"
	"testing"
)

// diffProfiles builds before/after profiles: "getpid" shrinks from 75% to
// ~0, "work" absorbs the time.
func diffProfiles(t *testing.T) (*Profile, *Profile) {
	t.Helper()
	before := newFixture(t, 16, "work", "getpid")
	before.call(t, 1, "work", 0)
	before.call(t, 1, "getpid", 10)
	before.ret(t, 1, "getpid", 85)
	before.ret(t, 1, "work", 100)

	after := newFixture(t, 16, "work", "getpid")
	after.call(t, 1, "work", 0)
	after.call(t, 1, "getpid", 10)
	after.ret(t, 1, "getpid", 11)
	after.ret(t, 1, "work", 100)
	return before.analyze(t), after.analyze(t)
}

func TestDiff(t *testing.T) {
	bp, ap := diffProfiles(t)
	rows := Diff(bp, ap)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// getpid: 75% -> 1%; the largest mover sorts first.
	if rows[0].Name != "getpid" {
		t.Fatalf("top mover = %s, want getpid", rows[0].Name)
	}
	if math.Abs(rows[0].BeforeShare-0.75) > 1e-9 {
		t.Errorf("getpid before = %f, want 0.75", rows[0].BeforeShare)
	}
	if math.Abs(rows[0].AfterShare-0.01) > 1e-9 {
		t.Errorf("getpid after = %f, want 0.01", rows[0].AfterShare)
	}
	if rows[0].DeltaShare >= 0 {
		t.Errorf("getpid delta = %f, want negative (improvement)", rows[0].DeltaShare)
	}
	if rows[1].Name != "work" || rows[1].DeltaShare <= 0 {
		t.Errorf("work row = %+v, want positive delta", rows[1])
	}
}

func TestDiffDisjointFunctions(t *testing.T) {
	a := newFixture(t, 8, "only_a")
	a.call(t, 1, "only_a", 0)
	a.ret(t, 1, "only_a", 10)
	b := newFixture(t, 8, "only_b")
	b.call(t, 1, "only_b", 0)
	b.ret(t, 1, "only_b", 10)

	rows := Diff(a.analyze(t), b.analyze(t))
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		switch r.Name {
		case "only_a":
			if r.BeforeShare != 1 || r.AfterShare != 0 || r.AfterCalls != 0 {
				t.Errorf("only_a = %+v", r)
			}
		case "only_b":
			if r.BeforeShare != 0 || r.AfterShare != 1 || r.BeforeCalls != 0 {
				t.Errorf("only_b = %+v", r)
			}
		default:
			t.Errorf("unexpected row %s", r.Name)
		}
	}
}

func TestWriteDiff(t *testing.T) {
	bp, ap := diffProfiles(t)
	var sb strings.Builder
	if err := WriteDiff(&sb, Diff(bp, ap), 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FUNCTION", "DELTA", "getpid", "-74.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff table missing %q:\n%s", want, out)
		}
	}
}
