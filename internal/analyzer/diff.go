package analyzer

import (
	"fmt"
	"io"
	"sort"
)

// DiffRow compares one function between two profiles. Shares are
// self-time fractions of each profile's total, so profiles of different
// lengths compare meaningfully.
type DiffRow struct {
	// Name is the function name.
	Name string
	// BeforeShare and AfterShare are self-time fractions in [0,1].
	BeforeShare, AfterShare float64
	// DeltaShare is AfterShare - BeforeShare (negative = improved).
	DeltaShare float64
	// BeforeCalls and AfterCalls are execution counts.
	BeforeCalls, AfterCalls uint64
}

// Diff compares two profiles function by function, sorted by the absolute
// share change (largest first) — the before/after view of an optimization,
// e.g. the naive versus optimized SPDK ports of §IV-C.
func Diff(before, after *Profile) []DiffRow {
	names := make(map[string]struct{})
	for _, f := range before.Funcs() {
		names[f.Name] = struct{}{}
	}
	for _, f := range after.Funcs() {
		names[f.Name] = struct{}{}
	}
	rows := make([]DiffRow, 0, len(names))
	for name := range names {
		row := DiffRow{Name: name}
		if f, ok := before.Func(name); ok {
			row.BeforeCalls = f.Calls
			row.BeforeShare = before.SelfFraction(name)
		}
		if f, ok := after.Func(name); ok {
			row.AfterCalls = f.Calls
			row.AfterShare = after.SelfFraction(name)
		}
		row.DeltaShare = row.AfterShare - row.BeforeShare
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		ai, aj := abs64(rows[i].DeltaShare), abs64(rows[j].DeltaShare)
		if ai != aj {
			return ai > aj
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// WriteDiff renders a diff as an aligned table, top-n rows.
func WriteDiff(w io.Writer, rows []DiffRow, n int) error {
	if n > len(rows) {
		n = len(rows)
	}
	if _, err := fmt.Fprintf(w, "%-44s %9s %9s %9s %10s %10s\n",
		"FUNCTION", "BEFORE%", "AFTER%", "DELTA", "CALLS-B", "CALLS-A"); err != nil {
		return err
	}
	for _, r := range rows[:n] {
		name := r.Name
		if len(name) > 44 {
			name = name[:41] + "..."
		}
		if _, err := fmt.Fprintf(w, "%-44s %8.2f%% %8.2f%% %+8.2f%% %10d %10d\n",
			name, 100*r.BeforeShare, 100*r.AfterShare, 100*r.DeltaShare,
			r.BeforeCalls, r.AfterCalls); err != nil {
			return err
		}
	}
	return nil
}
