package analyzer

// Satellite property test for the sampling plane: a period-N sampled
// profile's scaled weights must converge to the full profile, all three
// analyzers (serial, parallel, incremental) must agree exactly on a sampled
// log, and an explicit period of 1 must be byte-identical to a default
// recording at every shard count.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"teeperf/internal/probe"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// samplingFixtureTab registers a small function set and returns it with the
// assigned addresses.
func samplingFixtureTab(t *testing.T) (*symtab.Table, []uint64) {
	t.Helper()
	tab := symtab.New()
	names := []string{"sp_root", "sp_map", "sp_reduce", "sp_hash", "sp_emit", "sp_sort"}
	addrs := make([]uint64, len(names))
	for i, n := range names {
		a, err := tab.Register(n, 16, "sampling.go", i+1)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}
	return tab, addrs
}

// logicalClock is a counter source the workload driver advances by hand —
// one tick per logical event whether or not the probe records it. Sampled
// frames therefore carry their TRUE durations (as a hardware counter would),
// and only the 1-in-N thinning needs the analyzer's ×period scaling. A
// commit-driven counter like counter.Virtual would shrink durations AND
// counts under sampling, which a single scale factor cannot undo.
type logicalClock struct{ n uint64 }

func (c *logicalClock) Now() uint64 { return c.n }

// driveSamplingWorkload replays the same deterministic balanced workload
// (fixed seed, threads driven sequentially) through a probe runtime: random
// nested call trees, depth-bounded, every call matched by its return. Each
// log gets its own clock advanced identically, so the entry streams of two
// identically driven logs are fully comparable.
func driveSamplingWorkload(t *testing.T, log *shmlog.Log, addrs []uint64, iters int) {
	t.Helper()
	clock := &logicalClock{}
	rt, err := probe.New(log, clock)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for tid := 0; tid < 3; tid++ {
		th := rt.Thread()
		var walk func(depth int)
		walk = func(depth int) {
			a := addrs[rng.Intn(len(addrs))]
			clock.n++
			th.Enter(a)
			for depth < 6 && rng.Intn(3) == 0 {
				walk(depth + 1)
			}
			clock.n++
			th.Exit(a)
		}
		for i := 0; i < iters; i++ {
			walk(0)
		}
	}
	rt.Flush()
	if rt.Dropped() != 0 {
		t.Fatalf("fixture dropped %d events; raise the capacity", rt.Dropped())
	}
}

const samplingFixtureIters = 30_000 // per thread; ~2 pairs per walk, 3 threads

func newSamplingLog(t *testing.T, opts ...shmlog.Option) *shmlog.Log {
	t.Helper()
	log, err := shmlog.New(1<<19, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// TestSampledProfileConvergesToFull: scaling a period-N profile's weights by
// N (which the analyzer does internally) estimates the full profile. The
// workload is deterministic, so the tolerances are pinned, not flaky.
func TestSampledProfileConvergesToFull(t *testing.T) {
	tab, addrs := samplingFixtureTab(t)
	fullLog := newSamplingLog(t)
	driveSamplingWorkload(t, fullLog, addrs, samplingFixtureIters)
	full, err := Analyze(fullLog, tab)
	if err != nil {
		t.Fatal(err)
	}
	if full.SamplePeriod != 1 {
		t.Fatalf("full profile period = %d, want 1", full.SamplePeriod)
	}

	for _, tc := range []struct {
		period uint64
		tol    float64
	}{
		{8, 0.06},
		{64, 0.15},
	} {
		t.Run(fmt.Sprintf("period=%d", tc.period), func(t *testing.T) {
			log := newSamplingLog(t, shmlog.WithSamplePeriod(tc.period))
			driveSamplingWorkload(t, log, addrs, samplingFixtureIters)
			p, err := Analyze(log, tab)
			if err != nil {
				t.Fatal(err)
			}
			if p.SamplePeriod != tc.period {
				t.Fatalf("profile period = %d, want %d", p.SamplePeriod, tc.period)
			}
			within := func(what string, got, want uint64) {
				t.Helper()
				if want == 0 {
					return
				}
				if rel := math.Abs(float64(got)-float64(want)) / float64(want); rel > tc.tol {
					t.Errorf("%s: sampled %d vs full %d (%.1f%% off, tolerance %.0f%%)",
						what, got, want, rel*100, tc.tol*100)
				}
			}
			// Per-function inclusive ticks and call counts are the weights
			// sampling preserves: each recorded frame carries its true span,
			// thinned 1-in-N and scaled back by N. TotalTicks (the sum of
			// ROOT spans) is deliberately not asserted — a sampled frame
			// whose ancestors were all skipped is promoted to root, so the
			// scaled root-span sum estimates a different quantity on nested
			// workloads.
			for _, of := range full.Funcs() {
				sf, ok := p.Func(of.Name)
				if !ok {
					t.Errorf("func %s missing from sampled profile", of.Name)
					continue
				}
				within(of.Name+" calls", sf.Calls, of.Calls)
				within(of.Name+" incl", sf.Incl, of.Incl)
			}
		})
	}
}

// TestSampledLogAnalyzersAgree: on the same sampled log, the serial
// analyzer, the parallel analyzer at several worker counts, and the
// incremental analyzer (fed through a cursor with the header's period) must
// produce exactly the same scaled result — not merely converging estimates.
func TestSampledLogAnalyzersAgree(t *testing.T) {
	tab, addrs := samplingFixtureTab(t)
	log := newSamplingLog(t, shmlog.WithSamplePeriod(8))
	driveSamplingWorkload(t, log, addrs, samplingFixtureIters)

	serial, err := AnalyzeWith(log, tab, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		p, err := AnalyzeWith(log, tab, Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Funcs(), serial.Funcs()) {
			t.Fatalf("parallelism %d: function tables differ", workers)
		}
		if !reflect.DeepEqual(p.Folded(), serial.Folded()) {
			t.Fatalf("parallelism %d: folded stacks differ", workers)
		}
		if p.TotalTicks != serial.TotalTicks || p.SamplePeriod != serial.SamplePeriod {
			t.Fatalf("parallelism %d: totals differ: %d/%d vs %d/%d",
				workers, p.TotalTicks, p.SamplePeriod, serial.TotalTicks, serial.SamplePeriod)
		}
	}

	inc := NewIncremental(tab)
	inc.SetSamplePeriod(log.SamplePeriod())
	inc.FeedAll(log.Cursor().Next(nil))
	assertTablesMatch(t, inc.Snapshot(0), serial)
}

// TestSamplingPeriodOneFoldedByteIdentical is the compatibility acceptance:
// at period 1 the sampling plane must be invisible — the raw entry stream,
// the folded output, and the rendered table all match a default recording
// bit for bit, at every shard count.
func TestSamplingPeriodOneFoldedByteIdentical(t *testing.T) {
	tab, addrs := samplingFixtureTab(t)
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			plain := newSamplingLog(t, shmlog.WithShards(shards))
			sampled := newSamplingLog(t, shmlog.WithShards(shards), shmlog.WithSamplePeriod(1))
			driveSamplingWorkload(t, plain, addrs, 2000)
			driveSamplingWorkload(t, sampled, addrs, 2000)

			a, b := plain.Entries(), sampled.Entries()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("entry streams differ: %d vs %d entries", len(a), len(b))
			}

			pp, err := Analyze(plain, tab)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := Analyze(sampled, tab)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pp.Folded(), ps.Folded()) {
				t.Fatal("folded outputs differ at period 1")
			}
			var tblP, tblS bytes.Buffer
			if err := pp.WriteTable(&tblP, 0); err != nil {
				t.Fatal(err)
			}
			if err := ps.WriteTable(&tblS, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(tblP.Bytes(), tblS.Bytes()) {
				t.Fatal("rendered tables differ at period 1")
			}
		})
	}
}
