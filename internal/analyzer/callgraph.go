package analyzer

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PathStat aggregates executions sharing one full call path — the basis of
// the paper's call-history queries ("performance depending on the call
// history of a method", §II-C) and of the flame graph.
type PathStat struct {
	// Stack is the full call path, frames joined by ";".
	Stack string
	// Leaf is the executing function (last frame).
	Leaf string
	// Calls counts executions of the leaf under exactly this path.
	Calls uint64
	// Incl and Self are total inclusive and exclusive ticks.
	Incl, Self uint64
}

// Paths returns per-call-path statistics sorted by self time (descending).
func (p *Profile) Paths() []PathStat {
	byStack := make(map[string]*PathStat)
	// Reconstruct path stats from the records: each record carries its
	// caller chain implicitly through completion order, so we rebuild the
	// stack per thread the same way the analyzer's folded accounting did.
	// The folded map already has self ticks; calls and incl need the
	// records, so recompute from pathCalls collected during analysis.
	for stack, pc := range p.pathStats {
		byStack[stack] = &PathStat{
			Stack: stack,
			Leaf:  lastFrame(stack),
			Calls: pc.calls,
			Incl:  pc.incl,
			Self:  pc.self,
		}
	}
	out := make([]PathStat, 0, len(byStack))
	for _, ps := range byStack {
		out = append(out, *ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Stack < out[j].Stack
	})
	return out
}

// PathsOf returns the call paths whose leaf is the given function, hottest
// first — "how does this method perform depending on who called it".
func (p *Profile) PathsOf(leaf string) []PathStat {
	var out []PathStat
	for _, ps := range p.Paths() {
		if ps.Leaf == leaf {
			out = append(out, ps)
		}
	}
	return out
}

func lastFrame(stack string) string {
	if i := strings.LastIndexByte(stack, ';'); i >= 0 {
		return stack[i+1:]
	}
	return stack
}

// WriteCallGraph renders a gprof-style call-graph report for the top-n
// functions by self time: each block lists the function's callers above it
// and its callees below it, with call counts.
func (p *Profile) WriteCallGraph(w io.Writer, n int) error {
	top := p.Top(n)
	if _, err := fmt.Fprintf(w, "call graph (top %d by self time; <- callers, -> callees)\n\n", len(top)); err != nil {
		return err
	}
	for i, f := range top {
		pct := 0.0
		if p.TotalTicks > 0 {
			pct = 100 * float64(f.Self) / float64(p.TotalTicks)
		}
		if _, err := fmt.Fprintf(w, "[%d] %s  self=%d (%.1f%%)  incl=%d  calls=%d\n",
			i+1, f.Name, f.Self, pct, f.Incl, f.Calls); err != nil {
			return err
		}
		for _, edge := range sortedEdges(f.Callers) {
			if _, err := fmt.Fprintf(w, "      <- %-40s %d calls\n", edge.name, edge.count); err != nil {
				return err
			}
		}
		for _, edge := range sortedEdges(f.Callees) {
			if _, err := fmt.Fprintf(w, "      -> %-40s %d calls\n", edge.name, edge.count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

type graphEdge struct {
	name  string
	count uint64
}

func sortedEdges(edges map[string]uint64) []graphEdge {
	out := make([]graphEdge, 0, len(edges))
	for name, count := range edges {
		out = append(out, graphEdge{name: name, count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].count != out[j].count {
			return out[i].count > out[j].count
		}
		return out[i].name < out[j].name
	})
	return out
}
