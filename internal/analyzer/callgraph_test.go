package analyzer

import (
	"strings"
	"testing"
)

// pathFixture: main calls work twice (once directly, once via helper).
//
//	main[0..100]
//	  work[10..30]            (direct)
//	  helper[40..90]
//	    work[50..80]          (via helper)
func pathFixture(t *testing.T) *Profile {
	t.Helper()
	f := newFixture(t, 32, "main", "helper", "work")
	f.call(t, 1, "main", 0)
	f.call(t, 1, "work", 10)
	f.ret(t, 1, "work", 30)
	f.call(t, 1, "helper", 40)
	f.call(t, 1, "work", 50)
	f.ret(t, 1, "work", 80)
	f.ret(t, 1, "helper", 90)
	f.ret(t, 1, "main", 100)
	return f.analyze(t)
}

func TestPaths(t *testing.T) {
	p := pathFixture(t)
	paths := p.Paths()
	want := map[string]PathStat{
		"main":             {Leaf: "main", Calls: 1, Incl: 100, Self: 30},
		"main;work":        {Leaf: "work", Calls: 1, Incl: 20, Self: 20},
		"main;helper":      {Leaf: "helper", Calls: 1, Incl: 50, Self: 20},
		"main;helper;work": {Leaf: "work", Calls: 1, Incl: 30, Self: 30},
	}
	if len(paths) != len(want) {
		t.Fatalf("paths = %d, want %d: %+v", len(paths), len(want), paths)
	}
	for _, ps := range paths {
		w, ok := want[ps.Stack]
		if !ok {
			t.Errorf("unexpected path %q", ps.Stack)
			continue
		}
		if ps.Leaf != w.Leaf || ps.Calls != w.Calls || ps.Incl != w.Incl || ps.Self != w.Self {
			t.Errorf("path %q = %+v, want %+v", ps.Stack, ps, w)
		}
	}
	// Sorted by self descending.
	for i := 1; i < len(paths); i++ {
		if paths[i].Self > paths[i-1].Self {
			t.Errorf("paths not sorted: %d after %d", paths[i].Self, paths[i-1].Self)
		}
	}
}

func TestPathsOf(t *testing.T) {
	p := pathFixture(t)
	workPaths := p.PathsOf("work")
	if len(workPaths) != 2 {
		t.Fatalf("work paths = %d, want 2", len(workPaths))
	}
	// The call-history question: work is slower when called via helper.
	var direct, viaHelper PathStat
	for _, ps := range workPaths {
		if strings.Contains(ps.Stack, "helper") {
			viaHelper = ps
		} else {
			direct = ps
		}
	}
	if viaHelper.Incl <= direct.Incl {
		t.Errorf("via-helper incl %d should exceed direct %d in this fixture",
			viaHelper.Incl, direct.Incl)
	}
	if got := p.PathsOf("nothing"); got != nil {
		t.Errorf("PathsOf(unknown) = %v, want nil", got)
	}
}

func TestPathCallsAggregate(t *testing.T) {
	// The same path executed repeatedly accumulates calls.
	f := newFixture(t, 64, "main", "leaf")
	f.call(t, 1, "main", 0)
	for i := uint64(0); i < 4; i++ {
		f.call(t, 1, "leaf", 10+i*10)
		f.ret(t, 1, "leaf", 15+i*10)
	}
	f.ret(t, 1, "main", 100)
	p := f.analyze(t)
	leafPaths := p.PathsOf("leaf")
	if len(leafPaths) != 1 {
		t.Fatalf("leaf paths = %d, want 1", len(leafPaths))
	}
	if leafPaths[0].Calls != 4 || leafPaths[0].Self != 20 {
		t.Errorf("leaf path = %+v, want calls=4 self=20", leafPaths[0])
	}
}

func TestWriteCallGraph(t *testing.T) {
	p := pathFixture(t)
	var sb strings.Builder
	if err := p.WriteCallGraph(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"call graph",
		"work",
		"<- main",
		"<- helper",
		"-> work",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("call graph missing %q:\n%s", want, out)
		}
	}
	// work has two callers with one call each.
	workStat, _ := p.Func("work")
	if workStat.Callers["main"] != 1 || workStat.Callers["helper"] != 1 {
		t.Errorf("work callers = %v", workStat.Callers)
	}
}
