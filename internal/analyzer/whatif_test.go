package analyzer

import (
	"math"
	"strings"
	"testing"
)

func whatIfFixture(t *testing.T) *Profile {
	t.Helper()
	// work [0..100]: getpid self 70, rdtsc self 20, work self 10.
	f := newFixture(t, 16, "work", "getpid", "rdtsc")
	f.call(t, 1, "work", 0)
	f.call(t, 1, "getpid", 5)
	f.ret(t, 1, "getpid", 75)
	f.call(t, 1, "rdtsc", 75)
	f.ret(t, 1, "rdtsc", 95)
	f.ret(t, 1, "work", 100)
	return f.analyze(t)
}

func TestWhatIf(t *testing.T) {
	p := whatIfFixture(t)
	res := p.WhatIf("getpid", "rdtsc")
	if len(res.Removed) != 2 {
		t.Fatalf("removed = %d, want 2", len(res.Removed))
	}
	if math.Abs(res.RemovedShare-0.9) > 1e-9 {
		t.Errorf("removed share = %f, want 0.9", res.RemovedShare)
	}
	// Removing 90% of the run projects a 10x speedup — the §IV-C shape:
	// TEE-Perf saw getpid+rdtsc at ~92% and the measured fix was 14.7x.
	if math.Abs(res.ProjectedSpeedup-10) > 1e-6 {
		t.Errorf("projected speedup = %f, want 10", res.ProjectedSpeedup)
	}
	// Sorted by share, getpid first.
	if res.Removed[0].Name != "getpid" {
		t.Errorf("top removed = %s, want getpid", res.Removed[0].Name)
	}
}

func TestWhatIfUnknownAndDuplicates(t *testing.T) {
	p := whatIfFixture(t)
	res := p.WhatIf("getpid", "getpid", "bogus")
	if len(res.Removed) != 1 {
		t.Errorf("removed = %v, want just getpid once", res.Removed)
	}
	if len(res.Unknown) != 1 || res.Unknown[0] != "bogus" {
		t.Errorf("unknown = %v, want [bogus]", res.Unknown)
	}
	if math.Abs(res.RemovedShare-0.7) > 1e-9 {
		t.Errorf("share = %f, want 0.7", res.RemovedShare)
	}
}

func TestWhatIfNothingRemoved(t *testing.T) {
	p := whatIfFixture(t)
	res := p.WhatIf()
	if res.ProjectedSpeedup != 1 {
		t.Errorf("speedup = %f, want 1", res.ProjectedSpeedup)
	}
}

func TestWriteWhatIf(t *testing.T) {
	p := whatIfFixture(t)
	var sb strings.Builder
	if err := WriteWhatIf(&sb, p.WhatIf("getpid", "nope")); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"getpid", "70.00%", "not in profile", "projected speedup: 3.33x"} {
		if !strings.Contains(out, want) {
			t.Errorf("what-if output missing %q:\n%s", want, out)
		}
	}
}

func TestMerge(t *testing.T) {
	a := whatIfFixture(t)
	b := whatIfFixture(t)
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.TotalTicks != a.TotalTicks+b.TotalTicks {
		t.Errorf("total = %d, want %d", merged.TotalTicks, a.TotalTicks*2)
	}
	gp, ok := merged.Func("getpid")
	if !ok {
		t.Fatal("getpid missing from merge")
	}
	if gp.Calls != 2 || gp.Self != 140 {
		t.Errorf("merged getpid = %+v, want calls=2 self=140", gp)
	}
	// Shares are preserved under merging identical runs.
	if math.Abs(merged.SelfFraction("getpid")-a.SelfFraction("getpid")) > 1e-9 {
		t.Errorf("merged share %f != single-run share %f",
			merged.SelfFraction("getpid"), a.SelfFraction("getpid"))
	}
	// Folded stacks summed.
	if got := merged.Folded()["work;getpid"]; got != 140 {
		t.Errorf("merged folded[work;getpid] = %d, want 140", got)
	}
	// Caller edges summed.
	if got := gp.Callers["work"]; got != 2 {
		t.Errorf("merged callers[work] = %d, want 2", got)
	}
	// Paths summed.
	paths := merged.PathsOf("getpid")
	if len(paths) != 1 || paths[0].Calls != 2 {
		t.Errorf("merged paths = %+v", paths)
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Error("empty merge should fail")
	}
	if _, err := Merge(whatIfFixture(t), nil); err == nil {
		t.Error("nil profile should fail")
	}
}
