package counter

import (
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// fakeWord is an in-test counter word (the role shmlog.Log plays in the
// real pipeline).
type fakeWord struct {
	v atomic.Uint64
}

func (w *fakeWord) AddCounter(d uint64) uint64 { return w.v.Add(d) }
func (w *fakeWord) LoadCounter() uint64        { return w.v.Load() }

func TestSoftwareStartStop(t *testing.T) {
	var w fakeWord
	s := NewSoftware(&w)
	if s.Running() {
		t.Fatal("counter running before Start")
	}
	s.Start()
	if !s.Running() {
		t.Fatal("counter not running after Start")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Now() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Now() == 0 {
		t.Fatal("software counter did not advance")
	}
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if s.Running() {
		t.Fatal("counter still running after Stop")
	}
	after := s.Now()
	time.Sleep(10 * time.Millisecond)
	if got := s.Now(); got != after {
		t.Errorf("counter advanced after Stop: %d -> %d", after, got)
	}
}

func TestSoftwareStopWithoutStart(t *testing.T) {
	s := NewSoftware(&fakeWord{})
	if err := s.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("err = %v, want ErrNotRunning", err)
	}
}

func TestSoftwareDoubleStart(t *testing.T) {
	var w fakeWord
	s := NewSoftware(&w)
	s.Start()
	s.Start() // must be a harmless no-op
	if err := s.Stop(); err != nil {
		t.Fatalf("Stop after double Start: %v", err)
	}
	if err := s.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("second Stop: err = %v, want ErrNotRunning", err)
	}
}

func TestSoftwareRestart(t *testing.T) {
	var w fakeWord
	s := NewSoftware(&w)
	s.Start()
	time.Sleep(2 * time.Millisecond)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	first := s.Now()
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for s.Now() == first && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if s.Now() <= first {
		t.Errorf("counter did not advance after restart: %d -> %d", first, s.Now())
	}
}

func TestTSCMonotonic(t *testing.T) {
	src := NewTSC()
	prev := src.Now()
	for i := 0; i < 1000; i++ {
		now := src.Now()
		if now < prev {
			t.Fatalf("TSC went backwards: %d -> %d", prev, now)
		}
		prev = now
	}
}

func TestTSCAdvancesWithWallClock(t *testing.T) {
	src := NewTSC()
	a := src.Now()
	time.Sleep(5 * time.Millisecond)
	b := src.Now()
	if d := time.Duration(b - a); d < 4*time.Millisecond {
		t.Errorf("TSC advanced only %v over a 5ms sleep", d)
	}
}

func TestVirtualStep(t *testing.T) {
	v := NewVirtual(10)
	if got := v.Now(); got != 10 {
		t.Fatalf("first Now() = %d, want 10", got)
	}
	if got := v.Now(); got != 20 {
		t.Fatalf("second Now() = %d, want 20", got)
	}
	v.Advance(5)
	if got := v.Now(); got != 35 {
		t.Fatalf("Now() after Advance(5) = %d, want 35", got)
	}
	v.Set(100)
	if got := v.Now(); got != 110 {
		t.Fatalf("Now() after Set(100) = %d, want 110", got)
	}
}

func TestVirtualZeroStep(t *testing.T) {
	v := NewVirtual(0)
	if got := v.Now(); got != 0 {
		t.Fatalf("Now() = %d, want 0", got)
	}
	v.Advance(7)
	if got := v.Now(); got != 7 {
		t.Fatalf("Now() = %d, want 7", got)
	}
	if got := v.Now(); got != 7 {
		t.Fatalf("zero-step clock moved on its own: %d", got)
	}
}

func TestVirtualMonotonicProperty(t *testing.T) {
	// Property: for any step and any sequence of Advance deltas, Now never
	// decreases.
	f := func(step uint16, deltas []uint16) bool {
		v := NewVirtual(uint64(step))
		prev := v.Now()
		for _, d := range deltas {
			v.Advance(uint64(d))
			now := v.Now()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResolutionValidation(t *testing.T) {
	if _, err := Resolution(NewVirtual(1), 0); err == nil {
		t.Fatal("Resolution with zero window should fail")
	}
	if _, err := Resolution(NewVirtual(1), -time.Second); err == nil {
		t.Fatal("Resolution with negative window should fail")
	}
}

func TestResolutionMeasuresSoftwareCounter(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	var w fakeWord
	s := NewSoftware(&w)
	s.Start()
	defer func() {
		if err := s.Stop(); err != nil {
			t.Error(err)
		}
	}()
	res, err := Resolution(s, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Even on a loaded machine the spin loop should deliver well over a
	// thousand ticks per millisecond.
	if res < 1000 {
		t.Errorf("software counter resolution %f ticks/ms, want >= 1000", res)
	}
}

func TestSoftwareRetarget(t *testing.T) {
	var a, b fakeWord
	s := NewSoftware(&a)
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for s.Now() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	before := s.Now()
	if before == 0 {
		t.Skip("counter got no CPU time")
	}
	s.Retarget(&b)
	if got := s.Now(); got < before {
		t.Errorf("Now() after retarget = %d, want >= %d (monotonic across swap)", got, before)
	}
	if b.LoadCounter() < before {
		t.Errorf("new word seeded with %d, want >= %d", b.LoadCounter(), before)
	}
	// The loop now increments the new word, not the old.
	oldVal := a.LoadCounter()
	deadline = time.Now().Add(2 * time.Second)
	for b.LoadCounter() == before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.LoadCounter() != oldVal {
		t.Errorf("old word still advancing after retarget: %d -> %d", oldVal, a.LoadCounter())
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestSoftwareRetargetWhileStopped(t *testing.T) {
	var a, b fakeWord
	a.AddCounter(500)
	s := NewSoftware(&a)
	s.Retarget(&b)
	if s.Running() {
		t.Error("retarget of a stopped counter must not start it")
	}
	if b.LoadCounter() != 500 {
		t.Errorf("seed = %d, want 500", b.LoadCounter())
	}
	if s.Now() != 500 {
		t.Errorf("Now() = %d, want 500", s.Now())
	}
}
