// Package counter provides the time sources used by TEE-Perf probes.
//
// The paper's key portability trick is the software counter: when no
// hardware counter is readable from inside the TEE, the recorder sacrifices
// one core to a thread that increments a counter word in the log header in
// a tight loop. The counter is monotonic and fine-grained enough for
// method-level *relative* profiling; absolute accuracy is explicitly not a
// goal. This package also provides a TSC-like source (backed by the host
// monotonic clock) and a deterministic virtual source for tests.
package counter

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Source is a monotonic tick source sampled by probes.
type Source interface {
	// Now returns the current tick value. Ticks are monotonically
	// non-decreasing; their absolute rate is source-specific.
	Now() uint64
}

// Word is the destination the software counter increments — in TEE-Perf
// this is the counter word in the shared-memory log header, so the counter
// loop touches only the header cache line. *shmlog.Log satisfies Word.
type Word interface {
	// AddCounter atomically advances the counter and returns the new value.
	AddCounter(delta uint64) uint64
	// LoadCounter atomically reads the counter.
	LoadCounter() uint64
}

// ErrNotRunning is returned by Stop when the counter was never started or
// already stopped.
var ErrNotRunning = errors.New("counter: not running")

// Software is the paper's software counter: a dedicated goroutine
// incrementing a shared word in a tight loop. It implements Source by
// reading the word. The target word can be swapped at run time (Retarget),
// which the recorder uses to carry the counter across log rotations.
type Software struct {
	word atomic.Pointer[wordBox]

	// hook, when non-nil, is called once per outer loop iteration (every
	// 1024 increments) — the recorder's fault-injection wiring uses it to
	// model a stalled counter thread. The nil check costs one branch per
	// 1024 adds, so an unhooked counter's rate is unaffected.
	hook func()

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	running bool
}

// wordBox wraps the interface so it can sit behind an atomic pointer.
type wordBox struct {
	w Word
}

var _ Source = (*Software)(nil)

// NewSoftware returns a software counter targeting word. The counter does
// not run until Start is called.
func NewSoftware(word Word) *Software {
	s := &Software{}
	s.word.Store(&wordBox{w: word})
	return s
}

// Retarget atomically points the counter at a new word, seeding it with
// the old word's final value so ticks stay monotonic across the swap.
func (s *Software) Retarget(word Word) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.word.Load().w
	// Pause the loop so the old word's value is final before seeding.
	wasRunning := s.running
	if wasRunning {
		close(s.stop)
		<-s.done
		s.running = false
	}
	if have, want := word.LoadCounter(), old.LoadCounter(); have < want {
		word.AddCounter(want - have)
	}
	s.word.Store(&wordBox{w: word})
	if wasRunning {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		s.running = true
		go s.loop(s.stop, s.done)
	}
}

// OnTick installs fn to be called once per outer loop iteration (every
// 1024 increments). It must be called before Start; the fault-injection
// harness uses it to stall the counter thread deterministically.
func (s *Software) OnTick(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		panic("counter: OnTick after Start")
	}
	s.hook = fn
}

// Start launches the counter loop. Starting an already-running counter is a
// no-op.
func (s *Software) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.running = true
	go s.loop(s.stop, s.done)
}

func (s *Software) loop(stop, done chan struct{}) {
	defer close(done)
	// The inner loop batches the stop-channel check so the common path is
	// a single atomic add, keeping the counter rate (and therefore its
	// resolution) high while the goroutine remains stoppable.
	for {
		select {
		case <-stop:
			return
		default:
		}
		w := s.word.Load().w
		for i := 0; i < 1024; i++ {
			w.AddCounter(1)
		}
		if s.hook != nil {
			s.hook()
		}
	}
}

// Stop terminates the counter loop and waits for it to exit.
func (s *Software) Stop() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return ErrNotRunning
	}
	close(s.stop)
	<-s.done
	s.running = false
	return nil
}

// Running reports whether the counter loop is active.
func (s *Software) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Now reads the current counter value.
func (s *Software) Now() uint64 { return s.word.Load().w.LoadCounter() }

// Reader is a passive source that samples a counter word some other
// process advances — the attached application's view of the software
// counter in cross-process mode: the recorder process runs the increment
// loop against the shared mapping, the instrumented application only reads
// the word. It is the paper's TEE-side half of the software counter.
type Reader struct {
	word Word
}

var _ Source = (*Reader)(nil)

// NewReader returns a source that reads word without ever advancing it.
func NewReader(word Word) *Reader { return &Reader{word: word} }

// Now samples the externally-advanced counter word.
func (r *Reader) Now() uint64 { return r.word.LoadCounter() }

// TSC is a hardware-timestamp-like source backed by the host monotonic
// clock, reporting nanoseconds since construction. It stands in for rdtsc
// on platforms where the TEE can read a hardware counter directly.
type TSC struct {
	start time.Time
}

var _ Source = (*TSC)(nil)

// NewTSC returns a TSC source anchored at the current instant.
func NewTSC() *TSC { return &TSC{start: time.Now()} }

// Now returns nanoseconds elapsed since the source was created.
func (t *TSC) Now() uint64 { return uint64(time.Since(t.start)) }

// Virtual is a deterministic source for tests: every Now call advances the
// tick by a fixed step, and the clock can be advanced manually.
type Virtual struct {
	ticks atomic.Uint64
	step  uint64
}

var _ Source = (*Virtual)(nil)

// NewVirtual returns a virtual source that advances by step per Now call.
// A step of 0 yields a clock that only moves via Advance.
func NewVirtual(step uint64) *Virtual {
	return &Virtual{step: step}
}

// Now returns the current tick, advancing the clock by the configured step.
func (v *Virtual) Now() uint64 {
	if v.step == 0 {
		return v.ticks.Load()
	}
	return v.ticks.Add(v.step)
}

// Advance moves the clock forward by delta ticks.
func (v *Virtual) Advance(delta uint64) { v.ticks.Add(delta) }

// Set forces the clock to an absolute value (test setup only).
func (v *Virtual) Set(value uint64) { v.ticks.Store(value) }

// Resolution measures the tick rate of a source over the given window and
// returns ticks per millisecond. It is used by the A2 ablation to compare
// the software counter against the TSC.
func Resolution(src Source, window time.Duration) (ticksPerMS float64, err error) {
	if window <= 0 {
		return 0, fmt.Errorf("counter: window must be positive, got %v", window)
	}
	begin := src.Now()
	t0 := time.Now()
	time.Sleep(window)
	elapsed := time.Since(t0)
	end := src.Now()
	if end < begin {
		return 0, fmt.Errorf("counter: source went backwards (%d -> %d)", begin, end)
	}
	ms := float64(elapsed) / float64(time.Millisecond)
	return float64(end-begin) / ms, nil
}
