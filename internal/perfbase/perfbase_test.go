package perfbase

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

func TestThreadLeafPublication(t *testing.T) {
	p := New()
	th := p.Thread(nil)
	if th.Leaf() != 0 {
		t.Fatalf("idle leaf = %#x, want 0", th.Leaf())
	}
	th.Enter(0xA)
	if th.Leaf() != 0xA {
		t.Errorf("leaf = %#x, want 0xA", th.Leaf())
	}
	th.Enter(0xB)
	if th.Leaf() != 0xB {
		t.Errorf("leaf = %#x, want 0xB", th.Leaf())
	}
	th.Exit(0xB)
	if th.Leaf() != 0xA {
		t.Errorf("leaf after exit = %#x, want 0xA", th.Leaf())
	}
	th.Exit(0xA)
	if th.Leaf() != 0 {
		t.Errorf("leaf after final exit = %#x, want 0", th.Leaf())
	}
}

func TestThreadExitUnwindsLostFrames(t *testing.T) {
	p := New()
	th := p.Thread(nil)
	th.Enter(0xA)
	th.Enter(0xB)
	th.Enter(0xC)
	th.Exit(0xA) // unwind everything
	if th.Leaf() != 0 {
		t.Errorf("leaf = %#x, want 0 after unwind", th.Leaf())
	}
	// Exit with no matching frame is harmless.
	th.Exit(0x99)
	if th.Leaf() != 0 {
		t.Errorf("leaf = %#x after stray exit", th.Leaf())
	}
}

func TestSampleNowDeterministic(t *testing.T) {
	p := New()
	t1 := p.Thread(nil)
	t2 := p.Thread(nil)

	t1.Enter(0x10)
	p.SampleNow()
	p.SampleNow()
	t1.Exit(0x10)
	t2.Enter(0x20)
	p.SampleNow()

	samples := p.Samples()
	if got := samples[t1.ID()][0x10]; got != 2 {
		t.Errorf("t1 samples at 0x10 = %d, want 2", got)
	}
	if got := samples[t2.ID()][0x20]; got != 1 {
		t.Errorf("t2 samples at 0x20 = %d, want 1", got)
	}
	if got := p.TotalSamples(); got != 3 {
		t.Errorf("TotalSamples = %d, want 3", got)
	}
	if f := p.Fraction(0x10); math.Abs(f-2.0/3.0) > 1e-9 {
		t.Errorf("Fraction(0x10) = %f, want 2/3", f)
	}
	if f := p.Fraction(0x99); f != 0 {
		t.Errorf("Fraction(unknown) = %f, want 0", f)
	}
}

func TestIdleThreadsNotSampled(t *testing.T) {
	p := New()
	p.Thread(nil) // never enters a function
	p.SampleNow()
	if got := p.TotalSamples(); got != 0 {
		t.Errorf("TotalSamples = %d, want 0 for idle thread", got)
	}
}

func TestSamplingChargesAEX(t *testing.T) {
	encl, err := tee.NewEnclave(tee.SGXv1(), tee.NewHost(1), tee.WithoutSpin())
	if err != nil {
		t.Fatal(err)
	}
	teeTh := encl.Thread()
	p := New()
	th := p.Thread(teeTh)
	th.Enter(0x1)
	before := encl.Snapshot()
	p.SampleNow()
	teeTh.Safepoint()
	after := encl.Snapshot()
	if after.AEXs != before.AEXs+1 {
		t.Errorf("AEXs = %d, want %d", after.AEXs, before.AEXs+1)
	}
	if delta := after.Charged - before.Charged; delta < tee.SGXv1().AEXCost {
		t.Errorf("charged %v per sample, want >= platform AEX %v", delta, tee.SGXv1().AEXCost)
	}
}

func TestSamplingAEXOverride(t *testing.T) {
	encl, err := tee.NewEnclave(tee.SGXv1(), tee.NewHost(1), tee.WithoutSpin())
	if err != nil {
		t.Fatal(err)
	}
	teeTh := encl.Thread()
	const cost = 5 * time.Millisecond
	p := New(WithAEXCost(cost))
	th := p.Thread(teeTh)
	th.Enter(0x1)
	before := encl.Snapshot().Charged
	p.SampleNow()
	teeTh.Safepoint()
	if delta := encl.Snapshot().Charged - before; delta < cost {
		t.Errorf("charged %v, want >= %v override", delta, cost)
	}
}

func TestBackgroundSamplerLifecycle(t *testing.T) {
	p := New(WithPeriod(time.Millisecond))
	th := p.Thread(nil)
	th.Enter(0x42)

	if err := p.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("Stop before Start: %v", err)
	}
	p.Start()
	p.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for p.TotalSamples() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if p.TotalSamples() == 0 {
		t.Error("background sampler took no samples")
	}
	if err := p.Stop(); !errors.Is(err, ErrNotRunning) {
		t.Errorf("double Stop: %v", err)
	}
}

// TestSamplingFrequencyBias demonstrates the paper's accuracy argument
// deterministically: two functions each take exactly half the execution time,
// but the workload's phase aligns with the sampling period so the sampler
// only ever observes one of them. A full-tracing profiler sees the true
// 50/50 split; the sampler reports 100/0.
func TestSamplingFrequencyBias(t *testing.T) {
	p := New()
	th := p.Thread(nil)

	const (
		fnAligned = 0xAAA // active exactly when samples fire
		fnHidden  = 0xBBB // active between samples, equally long
	)
	for i := 0; i < 1000; i++ {
		th.Enter(fnAligned)
		p.SampleNow() // the tick lands while fnAligned runs
		th.Exit(fnAligned)
		th.Enter(fnHidden) // equal duration, but between ticks
		th.Exit(fnHidden)
	}
	if f := p.Fraction(fnAligned); f != 1.0 {
		t.Errorf("Fraction(aligned) = %f, want 1.0 (total mis-attribution)", f)
	}
	if f := p.Fraction(fnHidden); f != 0 {
		t.Errorf("Fraction(hidden) = %f, want 0 (invisible to sampler)", f)
	}
}

func TestReport(t *testing.T) {
	tab := symtab.New()
	hot := tab.MustRegister("hot_fn", 16, "h.go", 1)
	cold := tab.MustRegister("cold_fn", 16, "c.go", 1)

	p := New()
	th := p.Thread(nil)
	th.Enter(hot)
	for i := 0; i < 9; i++ {
		p.SampleNow()
	}
	th.Exit(hot)
	th.Enter(cold)
	p.SampleNow()
	th.Exit(cold)

	rows := p.Report(tab)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Name != "hot_fn" || rows[0].Samples != 9 {
		t.Errorf("top row = %+v", rows[0])
	}
	if math.Abs(rows[0].Share-0.9) > 1e-9 {
		t.Errorf("hot share = %f, want 0.9", rows[0].Share)
	}

	var sb strings.Builder
	if err := p.WriteReport(&sb, tab, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "hot_fn") || strings.Contains(out, "cold_fn") {
		t.Errorf("top-1 report wrong:\n%s", out)
	}
	// Nil table: hex fallback.
	rows = p.Report(nil)
	if !strings.HasPrefix(rows[0].Name, "0x") {
		t.Errorf("nil-table report name = %q, want hex", rows[0].Name)
	}
}
