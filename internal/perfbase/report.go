package perfbase

import (
	"fmt"
	"io"
	"sort"

	"teeperf/internal/symtab"
)

// ReportRow is one line of the perf-report-style output.
type ReportRow struct {
	// Name is the resolved symbol (hex fallback for unknown addresses).
	Name string
	// Addr is the sampled leaf address.
	Addr uint64
	// Samples is the total sample count across threads.
	Samples uint64
	// Share is Samples over the total (perf report's Overhead column).
	Share float64
}

// Report aggregates the collected samples across threads and resolves
// symbols — the `perf report` view of the baseline.
func (p *Profiler) Report(tab *symtab.Table) []ReportRow {
	totals := make(map[uint64]uint64)
	var grand uint64
	p.samplesMu.Lock()
	for _, m := range p.samples {
		for addr, c := range m {
			totals[addr] += c
			grand += c
		}
	}
	p.samplesMu.Unlock()

	rows := make([]ReportRow, 0, len(totals))
	for addr, c := range totals {
		name := fmt.Sprintf("0x%x", addr)
		if tab != nil {
			name = tab.Name(addr)
		}
		share := 0.0
		if grand > 0 {
			share = float64(c) / float64(grand)
		}
		rows = append(rows, ReportRow{Name: name, Addr: addr, Samples: c, Share: share})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Samples != rows[j].Samples {
			return rows[i].Samples > rows[j].Samples
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// WriteReport renders the sample report like `perf report --stdio`.
func (p *Profiler) WriteReport(w io.Writer, tab *symtab.Table, top int) error {
	rows := p.Report(tab)
	if top > 0 && top < len(rows) {
		rows = rows[:top]
	}
	if _, err := fmt.Fprintf(w, "%9s  %10s  %s\n", "OVERHEAD", "SAMPLES", "SYMBOL"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%8.2f%%  %10d  %s\n", 100*r.Share, r.Samples, r.Name); err != nil {
			return err
		}
	}
	return nil
}
