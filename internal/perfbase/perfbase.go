// Package perfbase is the Linux-perf stand-in TEE-Perf is evaluated
// against: a sampling profiler. Application threads publish their current
// leaf function with a single atomic store per entry/exit (far cheaper than
// TEE-Perf's full log write — the cheap end of perf's frame-pointer walk),
// and a sampler interrupts at a fixed frequency, attributing the sample to
// whatever leaf it observes and charging the sampled thread the cost of an
// asynchronous enclave exit plus kernel context switch. Sampling both costs
// time in proportion to runtime (the Fig 4 comparison) and suffers
// frequency bias (the accuracy experiment): activity aligned with the
// sampling period is systematically mis-attributed.
package perfbase

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"teeperf/internal/probe"
	"teeperf/internal/tee"
)

// DefaultPeriod is the default sampling period (4 kHz, perf's default
// frequency).
const DefaultPeriod = 250 * time.Microsecond

// ErrNotRunning is returned by Stop when the sampler is not running.
var ErrNotRunning = errors.New("perfbase: not running")

// Profiler is one sampling-profiler session.
type Profiler struct {
	period time.Duration
	aex    time.Duration

	mu      sync.Mutex
	threads []*Thread
	running bool
	stop    chan struct{}
	done    chan struct{}

	samplesMu sync.Mutex
	samples   map[uint64]map[uint64]uint64 // thread -> addr -> count
}

// Option configures New.
type Option interface {
	apply(*Profiler)
}

type optionFunc func(*Profiler)

func (f optionFunc) apply(p *Profiler) { f(p) }

// WithPeriod sets the sampling period (default DefaultPeriod).
func WithPeriod(d time.Duration) Option {
	return optionFunc(func(p *Profiler) { p.period = d })
}

// WithAEXCost sets the penalty charged to a sampled enclave thread per
// sample (the AEX + kernel switch). Defaults to the thread's platform AEX
// cost; this option overrides it with a fixed value.
func WithAEXCost(d time.Duration) Option {
	return optionFunc(func(p *Profiler) { p.aex = d })
}

// New creates a sampling profiler.
func New(opts ...Option) *Profiler {
	p := &Profiler{
		period:  DefaultPeriod,
		aex:     -1, // sentinel: use platform AEX cost
		samples: make(map[uint64]map[uint64]uint64),
	}
	for _, opt := range opts {
		opt.apply(p)
	}
	return p
}

// Thread registers an application thread. teeThread may be nil for native
// runs; when set, each sample charges it the AEX penalty.
func (p *Profiler) Thread(teeThread *tee.Thread) *Thread {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := &Thread{id: uint64(len(p.threads) + 1), teeThread: teeThread}
	p.threads = append(p.threads, t)
	return t
}

// Start launches the background sampler.
func (p *Profiler) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.running {
		return
	}
	p.running = true
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop(p.stop, p.done)
}

func (p *Profiler) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(p.period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			p.SampleNow()
		}
	}
}

// SampleNow takes one sample of every registered thread. It is exported so
// experiments can drive sampling deterministically instead of (or in
// addition to) the wall-clock sampler.
func (p *Profiler) SampleNow() {
	p.mu.Lock()
	threads := p.threads
	p.mu.Unlock()

	for _, t := range threads {
		addr := t.leaf.Load()
		if addr == 0 {
			continue // thread idle / outside instrumented code
		}
		p.samplesMu.Lock()
		m, ok := p.samples[t.id]
		if !ok {
			m = make(map[uint64]uint64)
			p.samples[t.id] = m
		}
		m[addr]++
		p.samplesMu.Unlock()

		if t.teeThread != nil {
			cost := p.aex
			if cost < 0 {
				cost = t.teeThread.Enclave().Platform().AEXCost
			}
			t.teeThread.AddInterruptDebt(cost)
		}
	}
}

// Stop halts the background sampler.
func (p *Profiler) Stop() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.running {
		return ErrNotRunning
	}
	close(p.stop)
	<-p.done
	p.running = false
	return nil
}

// Samples returns a copy of the per-thread sample counts.
func (p *Profiler) Samples() map[uint64]map[uint64]uint64 {
	p.samplesMu.Lock()
	defer p.samplesMu.Unlock()
	out := make(map[uint64]map[uint64]uint64, len(p.samples))
	for tid, m := range p.samples {
		mm := make(map[uint64]uint64, len(m))
		for a, c := range m {
			mm[a] = c
		}
		out[tid] = mm
	}
	return out
}

// TotalSamples returns the total sample count across threads.
func (p *Profiler) TotalSamples() uint64 {
	p.samplesMu.Lock()
	defer p.samplesMu.Unlock()
	var n uint64
	for _, m := range p.samples {
		for _, c := range m {
			n += c
		}
	}
	return n
}

// Fraction estimates the share of execution time spent in addr, as a
// sampling profiler would report it: samples(addr) / totalSamples.
func (p *Profiler) Fraction(addr uint64) float64 {
	total := p.TotalSamples()
	if total == 0 {
		return 0
	}
	p.samplesMu.Lock()
	defer p.samplesMu.Unlock()
	var n uint64
	for _, m := range p.samples {
		n += m[addr]
	}
	return float64(n) / float64(total)
}

// Thread is the per-thread publication slot. Enter/Exit maintain a local
// shadow stack and publish the current leaf atomically — the only work on
// the application's hot path.
type Thread struct {
	id        uint64
	teeThread *tee.Thread
	leaf      atomic.Uint64
	stack     []uint64
}

var _ probe.Hooks = (*Thread)(nil)

// ID returns the registration order identifier (≥ 1).
func (t *Thread) ID() uint64 { return t.id }

// Enter publishes addr as the current leaf.
func (t *Thread) Enter(addr uint64) {
	t.stack = append(t.stack, addr)
	t.leaf.Store(addr)
}

// Exit pops the shadow stack and republishes the parent frame.
func (t *Thread) Exit(addr uint64) {
	// Unwind to the matching frame, tolerating lost entries like the
	// analyzer does.
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == addr {
			t.stack = t.stack[:i]
			break
		}
	}
	if len(t.stack) == 0 {
		t.leaf.Store(0)
		return
	}
	t.leaf.Store(t.stack[len(t.stack)-1])
}

// Leaf returns the currently published leaf (0 when idle).
func (t *Thread) Leaf() uint64 { return t.leaf.Load() }
