package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunEPCSweepShowsPagingCliff(t *testing.T) {
	rows, err := RunEPCSweep(EPCSweepConfig{EPCPages: 128, Touches: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	// Within EPC: everything resident after warmup — no faults at all.
	within := rows[0] // 0.5x
	if within.PageFaults != 0 {
		t.Errorf("working set within EPC faulted %d times in steady state, want 0", within.PageFaults)
	}
	// Beyond EPC: thrashing, orders of magnitude more faults and cost.
	beyond := rows[len(rows)-1] // 4x
	if beyond.PageFaults < 1000 {
		t.Errorf("thrashing produced only %d faults", beyond.PageFaults)
	}
	if beyond.Slowdown < 100 {
		t.Errorf("slowdown = %.1fx, want a dramatic cliff (paper motivation: up to 2000x)",
			beyond.Slowdown)
	}
	// Monotone non-decreasing cost across the sweep.
	for i := 1; i < len(rows); i++ {
		if rows[i].NanosPerTouch < rows[i-1].NanosPerTouch {
			t.Errorf("cost not monotone at %v: %.1f < %.1f",
				rows[i].WorkingSetRatio, rows[i].NanosPerTouch, rows[i-1].NanosPerTouch)
		}
	}

	var sb strings.Builder
	if err := WriteEPCSweep(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SLOWDOWN") {
		t.Errorf("sweep table incomplete:\n%s", sb.String())
	}
}

func TestRunPlatformSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real workloads")
	}
	rows, err := RunPlatformSweep("histogram", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 platforms", len(rows))
	}
	// The generality claim: the identical pipeline yields the same event
	// count and the same hottest function on every platform.
	for _, r := range rows[1:] {
		if r.Events != rows[0].Events {
			t.Errorf("platform %s recorded %d events, %s recorded %d — instrumentation must be platform-independent",
				r.Platform, r.Events, rows[0].Platform, rows[0].Events)
		}
		if r.Hottest == "" {
			t.Errorf("platform %s has no hottest function", r.Platform)
		}
	}
	var sb strings.Builder
	if err := WritePlatformSweep(&sb, "histogram", rows); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"native", "sgx-v1", "trustzone", "sev", "keystone"} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("sweep missing platform %s:\n%s", name, sb.String())
		}
	}
}

func TestRunAccuracy(t *testing.T) {
	res, err := RunAccuracy(0.7, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// TEE-Perf tracks the truth exactly (virtual time, full tracing).
	if math.Abs(res.TEEPerfShare-0.7) > 0.02 {
		t.Errorf("TEE-Perf share = %.3f, want ~0.70", res.TEEPerfShare)
	}
	// Unaligned sampling is close but noisier.
	if math.Abs(res.PerfShare-0.7) > 0.1 {
		t.Errorf("perf unaligned share = %.3f, want ~0.70", res.PerfShare)
	}
	// Aligned sampling is catastrophically wrong: 100% attribution to A.
	if res.AlignedPerfShare != 1.0 {
		t.Errorf("perf aligned share = %.3f, want 1.0 (total bias)", res.AlignedPerfShare)
	}

	var sb strings.Builder
	if err := WriteAccuracy(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sampling-frequency bias") {
		t.Errorf("accuracy report incomplete:\n%s", sb.String())
	}
}

func TestRunAccuracyValidation(t *testing.T) {
	if _, err := RunAccuracy(0, 10); err == nil {
		t.Error("share 0 should fail")
	}
	if _, err := RunAccuracy(1.5, 10); err == nil {
		t.Error("share > 1 should fail")
	}
}

func TestEPCSweepDefaults(t *testing.T) {
	c := EPCSweepConfig{}.withDefaults()
	if c.EPCPages <= 0 || c.Touches <= 0 || len(c.WorkingSets) == 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}
