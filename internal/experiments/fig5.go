package experiments

import (
	"fmt"
	"io"

	"teeperf/internal/analyzer"
	"teeperf/internal/flamegraph"
	"teeperf/internal/kvstore"
	"teeperf/internal/tee"
)

// Fig5Config parameterizes the RocksDB db_bench profile (Fig 5).
type Fig5Config struct {
	// Platform is the TEE model (default SGXv1).
	Platform tee.Platform
	// Ops is the operation count (default 20000).
	Ops int
	// ReadPct is the read share (default 80, the paper's mix).
	ReadPct int
	// RandomDataSize is the RandomGenerator buffer (default 4 MiB).
	RandomDataSize int
}

func (c Fig5Config) withDefaults() Fig5Config {
	if c.Platform.Name == "" {
		c.Platform = tee.SGXv1()
	}
	if c.Ops <= 0 {
		c.Ops = 20000
	}
	if c.ReadPct == 0 {
		c.ReadPct = 80
	}
	if c.RandomDataSize <= 0 {
		c.RandomDataSize = 4 << 20
	}
	return c
}

// Fig5Result carries the profile behind the flame graph.
type Fig5Result struct {
	// Profile is the analyzed TEE-Perf recording.
	Profile *analyzer.Profile
	// Bench is the db_bench outcome.
	Bench kvstore.BenchResult
}

// RunFig5 profiles the ReadRandomWriteRandom db_bench workload inside the
// TEE with TEE-Perf and returns the profile whose flame graph reproduces
// Fig 5 (hot: rocksdb::Stats::Now and rocksdb::RandomGenerator's
// constructor).
func RunFig5(cfg Fig5Config) (Fig5Result, error) {
	c := cfg.withDefaults()
	host := tee.NewHost(4321)
	encl, err := tee.NewEnclave(c.Platform, host)
	if err != nil {
		return Fig5Result{}, err
	}
	th := encl.Thread()
	db, err := kvstore.Open(host, th, "fig5", nil)
	if err != nil {
		return Fig5Result{}, err
	}
	tab, log, rt, err := buildProbePipeline(1 << 22)
	if err != nil {
		return Fig5Result{}, err
	}
	if err := kvstore.RegisterBenchSymbols(tab); err != nil {
		return Fig5Result{}, err
	}
	res, err := kvstore.RunDBBench(th, &kvstore.BenchConfig{
		DB:             db,
		Hooks:          rt.Thread(),
		AddrOf:         tab.Addr,
		Ops:            c.Ops,
		ReadPct:        c.ReadPct,
		RandomDataSize: c.RandomDataSize,
	})
	if err != nil {
		return Fig5Result{}, err
	}
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		return Fig5Result{}, err
	}
	return Fig5Result{Profile: p, Bench: res}, nil
}

// WriteFig5 prints the hot-method table and notes the paper's expectation.
func WriteFig5(w io.Writer, r Fig5Result) error {
	if _, err := fmt.Fprintf(w, "db_bench readrandomwriterandom: %d ops (%d reads / %d writes, %d not found)\n\n",
		r.Bench.Ops, r.Bench.Reads, r.Bench.Writes, r.Bench.NotFound); err != nil {
		return err
	}
	if err := r.Profile.WriteTable(w, 10); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\npaper (Fig 5): hottest methods are rocksdb::Stats::Now() and rocksdb::RandomGenerator::RandomGenerator()\n"+
		"measured: Stats::Now self share = %.1f%%, RandomGenerator ctor (incl CompressibleString) = %.1f%%\n",
		100*r.Profile.SelfFraction("rocksdb::Stats::Now()"),
		100*(r.Profile.SelfFraction("rocksdb::RandomGenerator::RandomGenerator()")+
			r.Profile.SelfFraction("rocksdb::test::CompressibleString()")))
	return err
}

// WriteFlameGraph renders any harness profile as an SVG flame graph.
func WriteFlameGraph(w io.Writer, p *analyzer.Profile, title string) error {
	return flamegraph.RenderSVG(w, p.Folded(), flamegraph.SVGOptions{Title: title, Unit: "ticks"})
}
