package experiments

import (
	"fmt"
	"io"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/counter"
	"teeperf/internal/perfbase"
	"teeperf/internal/probe"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

// --- EPC paging sweep (the intro's secure-paging cliff) ---

// EPCSweepConfig parameterizes the paging experiment: random page touches
// over a working set swept across the EPC boundary. Beyond the boundary,
// secure paging makes each access orders of magnitude slower — the paper's
// motivation quotes up to 2000x for EPC-thrashing applications.
type EPCSweepConfig struct {
	// EPCPages is the protected-memory budget in pages (default 512).
	EPCPages int
	// WorkingSets are the working-set sizes to test, as multiples of the
	// EPC size (default 0.5, 0.9, 1.1, 2, 4).
	WorkingSets []float64
	// Touches is the number of random page touches per measurement
	// (default 20000).
	Touches int
}

func (c EPCSweepConfig) withDefaults() EPCSweepConfig {
	if c.EPCPages <= 0 {
		c.EPCPages = 512
	}
	if len(c.WorkingSets) == 0 {
		c.WorkingSets = []float64{0.5, 0.9, 1.1, 2, 4}
	}
	if c.Touches <= 0 {
		c.Touches = 20000
	}
	return c
}

// EPCSweepRow is one working-set measurement.
type EPCSweepRow struct {
	// WorkingSetRatio is the working set over the EPC size.
	WorkingSetRatio float64
	// PageFaults is the number of secure-paging events.
	PageFaults uint64
	// NanosPerTouch is the average charged cost per access.
	NanosPerTouch float64
	// Slowdown is NanosPerTouch relative to the smallest working set.
	Slowdown float64
}

// RunEPCSweep measures the access-cost cliff at the EPC boundary.
func RunEPCSweep(cfg EPCSweepConfig) ([]EPCSweepRow, error) {
	c := cfg.withDefaults()
	platform := tee.SGXv1()
	platform.EPCSize = c.EPCPages * platform.PageSize

	var rows []EPCSweepRow
	for _, ratio := range c.WorkingSets {
		encl, err := tee.NewEnclave(platform, tee.NewHost(1), tee.WithoutSpin())
		if err != nil {
			return nil, err
		}
		th := encl.Thread()
		pages := int(float64(c.EPCPages) * ratio)
		if pages < 1 {
			pages = 1
		}
		buf, err := encl.Alloc(pages * platform.PageSize)
		if err != nil {
			return nil, err
		}
		// Warm every page once so the measurement reflects steady state,
		// not cold demand-paging.
		for pg := 0; pg < pages; pg++ {
			if err := buf.Touch(th, pg*platform.PageSize); err != nil {
				return nil, err
			}
		}
		// Deterministic random page touches.
		state := uint64(0x45504353) // "EPCS"
		before := encl.Snapshot()
		for i := 0; i < c.Touches; i++ {
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			page := int(z % uint64(pages))
			if err := buf.Touch(th, page*platform.PageSize); err != nil {
				return nil, err
			}
		}
		after := encl.Snapshot()
		charged := after.Charged - before.Charged
		rows = append(rows, EPCSweepRow{
			WorkingSetRatio: ratio,
			PageFaults:      after.PageFaults - before.PageFaults,
			NanosPerTouch:   float64(charged) / float64(c.Touches),
		})
	}
	base := rows[0].NanosPerTouch
	for i := range rows {
		if base > 0 {
			rows[i].Slowdown = rows[i].NanosPerTouch / base
		}
	}
	return rows, nil
}

// WriteEPCSweep renders the sweep table.
func WriteEPCSweep(w io.Writer, rows []EPCSweepRow) error {
	if _, err := fmt.Fprintf(w, "%-12s %12s %14s %10s\n",
		"WS/EPC", "PAGEFAULTS", "NS/TOUCH", "SLOWDOWN"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-12.2f %12d %14.1f %9.1fx\n",
			r.WorkingSetRatio, r.PageFaults, r.NanosPerTouch, r.Slowdown); err != nil {
			return err
		}
	}
	return nil
}

// --- Platform generality sweep ---

// PlatformSweepRow is one platform's result for the generality claim: the
// identical instrumented binary profiles correctly on every TEE model.
type PlatformSweepRow struct {
	// Platform is the TEE model name.
	Platform string
	// Runtime is the measured geometric-mean runtime under TEE-Perf.
	Runtime time.Duration
	// Hottest is the top self-time function the profile reports.
	Hottest string
	// Events is the recorded event count.
	Events int
}

// RunPlatformSweep profiles one Phoenix workload on every platform preset
// with the identical pipeline — TEE-Perf's generality claim (§II-A: the
// tool must work across instruction sets and TEE versions).
func RunPlatformSweep(workload string, scale, runs int) ([]PlatformSweepRow, error) {
	if scale <= 0 {
		scale = 1
	}
	if runs <= 0 {
		runs = 3
	}
	var rows []PlatformSweepRow
	for _, name := range tee.PlatformNames() {
		platform, err := tee.ByName(name)
		if err != nil {
			return nil, err
		}
		cfg := Fig4Config{
			Platform:  platform,
			Scale:     scale,
			Runs:      runs,
			Warmups:   1,
			Workloads: []string{workload},
		}
		res, err := RunFig4(cfg)
		if err != nil {
			return nil, fmt.Errorf("platform %s: %w", name, err)
		}
		row := PlatformSweepRow{Platform: platform.Name}
		if len(res.Rows) == 1 {
			row.Runtime = res.Rows[0].TEEPerf
			row.Events = res.Rows[0].Events
			row.Hottest = res.Rows[0].Hottest
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WritePlatformSweep renders the generality table.
func WritePlatformSweep(w io.Writer, workload string, rows []PlatformSweepRow) error {
	if _, err := fmt.Fprintf(w, "generality: %s profiled with the identical pipeline on every platform\n\n", workload); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s %14s %10s  %s\n", "PLATFORM", "RUNTIME", "EVENTS", "HOTTEST"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-12s %14s %10d  %s\n",
			r.Platform, r.Runtime.Round(time.Microsecond), r.Events, r.Hottest); err != nil {
			return err
		}
	}
	return nil
}

// --- Accuracy comparison ---

// AccuracyResult compares attribution accuracy of TEE-Perf against the
// sampling baseline on a workload with a known ground-truth split.
type AccuracyResult struct {
	// TruthShare is function A's true share of execution time.
	TruthShare float64
	// TEEPerfShare and PerfShare are each profiler's estimates.
	TEEPerfShare float64
	PerfShare    float64
	// AlignedPerfShare is the sampling estimate when the workload phase
	// aligns with the sampling period (the bias failure mode).
	AlignedPerfShare float64
}

// RunAccuracy builds a two-function workload where function A performs
// truthShare of the work, measures it with both profilers, and additionally
// demonstrates sampling-frequency alignment. TEE-Perf's estimate comes from
// full tracing; perf's from samples.
func RunAccuracy(truthShare float64, rounds int) (AccuracyResult, error) {
	if truthShare <= 0 || truthShare >= 1 {
		return AccuracyResult{}, fmt.Errorf("experiments: truth share %f out of (0,1)", truthShare)
	}
	if rounds <= 0 {
		rounds = 3000
	}
	const (
		fnA = 0x400100
		fnB = 0x400200
	)
	workUnitsA := int(truthShare * 100)
	workUnitsB := 100 - workUnitsA

	// TEE-Perf: full tracing with a virtual counter advanced by the
	// simulated work, giving the analyzer exact durations.
	tab := symtab.New()
	log, err := shmlog.New(4*rounds + 8)
	if err != nil {
		return AccuracyResult{}, err
	}
	vclock := counter.NewVirtual(0)
	rt, err := probe.New(log, vclock)
	if err != nil {
		return AccuracyResult{}, err
	}
	aAddr := tab.MustRegister("accuracy_a", 16, "acc.go", 1)
	bAddr := tab.MustRegister("accuracy_b", 16, "acc.go", 2)
	th := rt.Thread()
	for r := 0; r < rounds; r++ {
		th.Enter(aAddr)
		vclock.Advance(uint64(workUnitsA))
		th.Exit(aAddr)
		th.Enter(bAddr)
		vclock.Advance(uint64(workUnitsB))
		th.Exit(bAddr)
	}
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		return AccuracyResult{}, err
	}
	res := AccuracyResult{
		TruthShare:   truthShare,
		TEEPerfShare: p.SelfFraction("accuracy_a"),
	}

	// perf, unaligned: samples land uniformly across the work — model by
	// sampling proportionally to work units.
	prof := perfbase.New()
	pth := prof.Thread(nil)
	for r := 0; r < rounds; r++ {
		pth.Enter(fnA)
		for u := 0; u < workUnitsA; u++ {
			if (r*100+u)%97 == 0 { // incommensurate period: unbiased
				prof.SampleNow()
			}
		}
		pth.Exit(fnA)
		pth.Enter(fnB)
		for u := 0; u < workUnitsB; u++ {
			if (r*100+workUnitsA+u)%97 == 0 {
				prof.SampleNow()
			}
		}
		pth.Exit(fnB)
	}
	res.PerfShare = prof.Fraction(fnA)

	// perf, aligned: the sampling tick always lands while A runs.
	aligned := perfbase.New()
	ath := aligned.Thread(nil)
	for r := 0; r < rounds; r++ {
		ath.Enter(fnA)
		aligned.SampleNow()
		ath.Exit(fnA)
		ath.Enter(fnB)
		ath.Exit(fnB)
	}
	res.AlignedPerfShare = aligned.Fraction(fnA)
	return res, nil
}

// WriteAccuracy renders the comparison.
func WriteAccuracy(w io.Writer, r AccuracyResult) error {
	_, err := fmt.Fprintf(w,
		"ground truth: function A = %.0f%% of execution\n"+
			"  TEE-Perf (full tracing):      %.1f%%\n"+
			"  perf (unaligned sampling):    %.1f%%\n"+
			"  perf (phase-aligned):         %.1f%%  <- sampling-frequency bias\n",
		100*r.TruthShare, 100*r.TEEPerfShare, 100*r.PerfShare, 100*r.AlignedPerfShare)
	return err
}
