// Package experiments implements the paper's evaluation harnesses: one
// entry point per figure/table, shared by the cmd/ tools and the
// bench_test.go benchmarks. Each harness builds the full pipeline
// (workload + TEE + profiler or baseline), runs it with the Fex
// methodology (warmup + repeated runs, geometric means) and returns the
// same rows/series the paper reports.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/counter"
	"teeperf/internal/fex"
	"teeperf/internal/perfbase"
	"teeperf/internal/phoenix"
	"teeperf/internal/probe"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

// Fig4Config parameterizes the Phoenix overhead comparison (Fig 4).
type Fig4Config struct {
	// Platform is the TEE model (default SGXv1, the paper's testbed).
	Platform tee.Platform
	// Scale is the workload input scale (default 2).
	Scale int
	// Runs and Warmups follow the Fex methodology (defaults 10 and 1; the
	// paper reports geometric means over 10 runs).
	Runs    int
	Warmups int
	// SamplePeriod is perf's sampling period (default 250µs = 4 kHz).
	SamplePeriod time.Duration
	// PerfSampleCost is the per-sample penalty charged to the sampled
	// enclave thread: AEX + kernel sampling path + TLB/cache refill on
	// re-entry (default 30µs).
	PerfSampleCost time.Duration
	// Workloads restricts the suite (default: all seven).
	Workloads []string
	// Counter overrides the TEE-Perf time source. The default picks the
	// paper's software counter when a spare core exists to host its spin
	// thread, falling back to the TSC source on single-core machines
	// (where a dedicated counter core is impossible by construction).
	Counter recorder.CounterMode
}

func (c Fig4Config) withDefaults() Fig4Config {
	if c.Platform.Name == "" {
		c.Platform = tee.SGXv1()
	}
	if c.Scale <= 0 {
		c.Scale = 2
	}
	if c.Runs <= 0 {
		c.Runs = fex.DefaultRuns
	}
	if c.Warmups < 0 {
		c.Warmups = 0
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 250 * time.Microsecond
	}
	if c.PerfSampleCost <= 0 {
		c.PerfSampleCost = 30 * time.Microsecond
	}
	if len(c.Workloads) == 0 {
		c.Workloads = phoenix.Names()
	}
	if c.Counter == 0 {
		c.Counter = recorder.CounterSoftware
		if runtime.NumCPU() < 2 {
			c.Counter = recorder.CounterTSC
		}
	}
	return c
}

// Fig4Row is one benchmark's result.
type Fig4Row struct {
	// Benchmark is the workload name.
	Benchmark string
	// TEEPerf and Perf are the geometric mean runtimes under each
	// profiler.
	TEEPerf time.Duration
	Perf    time.Duration
	// Ratio is TEEPerf/Perf — the Fig 4 y-axis.
	Ratio float64
	// Events is the number of log entries one TEE-Perf run produced.
	Events int
	// Hottest is the top self-time function in the TEE-Perf profile.
	Hottest string
}

// Fig4Result is the regenerated figure.
type Fig4Result struct {
	Rows []Fig4Row
	// Mean is the geometric mean ratio across benchmarks (the paper
	// reports 1.9x).
	Mean float64
}

// RunFig4 measures TEE-Perf's overhead relative to the perf baseline on
// the Phoenix suite inside the simulated TEE.
func RunFig4(cfg Fig4Config) (Fig4Result, error) {
	c := cfg.withDefaults()
	var result Fig4Result
	ratios := make([]float64, 0, len(c.Workloads))

	for _, name := range c.Workloads {
		w, err := phoenix.ByName(name)
		if err != nil {
			return Fig4Result{}, err
		}
		teeTime, events, hottest, err := measureTEEPerf(c, w)
		if err != nil {
			return Fig4Result{}, fmt.Errorf("fig4 %s under tee-perf: %w", name, err)
		}
		perfTime, err := measurePerf(c, w)
		if err != nil {
			return Fig4Result{}, fmt.Errorf("fig4 %s under perf: %w", name, err)
		}
		ratio := float64(teeTime) / float64(perfTime)
		result.Rows = append(result.Rows, Fig4Row{
			Benchmark: name,
			TEEPerf:   teeTime,
			Perf:      perfTime,
			Ratio:     ratio,
			Events:    events,
			Hottest:   hottest,
		})
		ratios = append(ratios, ratio)
	}
	result.Mean = fex.GeoMeanFloats(ratios)
	return result, nil
}

// measureTEEPerf times the workload with full TEE-Perf instrumentation
// (software counter, shared-memory log) and reports the hottest function
// of the final run's profile.
func measureTEEPerf(c Fig4Config, w phoenix.Workload) (time.Duration, int, string, error) {
	tab := symtab.New()
	if err := w.RegisterSymbols(tab); err != nil {
		return 0, 0, "", err
	}
	rec, err := recorder.New(tab, recorder.WithCapacity(1<<23), recorder.WithCounterMode(c.Counter))
	if err != nil {
		return 0, 0, "", err
	}
	encl, err := tee.NewEnclave(c.Platform, tee.NewHost(1))
	if err != nil {
		return 0, 0, "", err
	}
	runner, err := w.New(phoenix.Config{
		Enclave: encl,
		Hooks:   rec.Thread(),
		AddrOf:  rec.AddrOf,
	}, c.Scale)
	if err != nil {
		return 0, 0, "", err
	}
	if err := rec.Start(); err != nil {
		return 0, 0, "", err
	}
	defer func() { _ = rec.Stop() }()

	th := encl.Thread()
	res, err := fex.Run(w.Name+"/teeperf", c.Warmups, c.Runs, func() error {
		rec.Log().Reset() // fresh log per run, fixed capacity per the paper
		_, err := runner(th)
		return err
	})
	if err != nil {
		return 0, 0, "", err
	}
	hottest := ""
	if p, err := analyzer.Analyze(rec.Log(), tab); err == nil {
		if top := p.Top(1); len(top) == 1 {
			hottest = top[0].Name
		}
	}
	return res.GeoMean(), rec.Log().Len(), hottest, nil
}

// measurePerf times the workload under the sampling baseline.
func measurePerf(c Fig4Config, w phoenix.Workload) (time.Duration, error) {
	tab := symtab.New()
	if err := w.RegisterSymbols(tab); err != nil {
		return 0, err
	}
	encl, err := tee.NewEnclave(c.Platform, tee.NewHost(1))
	if err != nil {
		return 0, err
	}
	th := encl.Thread()
	prof := perfbase.New(
		perfbase.WithPeriod(c.SamplePeriod),
		perfbase.WithAEXCost(c.PerfSampleCost),
	)
	hooks := prof.Thread(th)
	runner, err := w.New(phoenix.Config{
		Enclave: encl,
		Hooks:   hooks,
		AddrOf:  tab.Addr,
	}, c.Scale)
	if err != nil {
		return 0, err
	}
	prof.Start()
	defer func() { _ = prof.Stop() }()

	res, err := fex.Run(w.Name+"/perf", c.Warmups, c.Runs, func() error {
		_, err := runner(th)
		return err
	})
	if err != nil {
		return 0, err
	}
	return res.GeoMean(), nil
}

// WriteFig4 renders the figure as a text table plus the mean line, in the
// layout of the paper's bar chart.
func WriteFig4(w io.Writer, r Fig4Result) error {
	rows := make([]fex.Row, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, fex.Row{
			Name: row.Benchmark,
			Values: map[string]float64{
				"teeperf_ms": float64(row.TEEPerf) / 1e6,
				"perf_ms":    float64(row.Perf) / 1e6,
				"ratio":      row.Ratio,
			},
		})
	}
	if err := fex.WriteTable(w, rows, []string{"teeperf_ms", "perf_ms", "ratio"}, "%.3f"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nmean overhead of TEE-Perf relative to perf: %.2fx (paper: 1.9x)\n", r.Mean)
	return err
}

// buildProbePipeline is shared by the Fig 5/6 harnesses.
func buildProbePipeline(capacity int) (*symtab.Table, *shmlog.Log, *probe.Runtime, error) {
	tab := symtab.New()
	log, err := shmlog.New(capacity)
	if err != nil {
		return nil, nil, nil, err
	}
	rt, err := probe.New(log, counter.NewTSC())
	if err != nil {
		return nil, nil, nil, err
	}
	return tab, log, rt, nil
}
