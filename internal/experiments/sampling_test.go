package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestRunSamplingOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real workloads")
	}
	cfg := SamplingOverheadConfig{
		Periods:          []uint64{1, 8},
		Runs:             2,
		Warmups:          1,
		Scale:            1,
		Ops:              500,
		PhoenixWorkloads: []string{"word_count"},
	}
	rows, err := RunSamplingOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two workloads x (native + 2 periods).
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byKey := map[string]SamplingOverheadRow{}
	for _, r := range rows {
		if r.Time <= 0 || r.Ratio <= 0 {
			t.Errorf("%s p%d: non-positive time %v / ratio %f", r.Workload, r.Period, r.Time, r.Ratio)
		}
		byKey[r.Workload+"/"+periodKey(r.Period)] = r
	}
	for _, wl := range []string{"phoenix/word_count", "kvstore/db_bench"} {
		p1, p8 := byKey[wl+"/p1"], byKey[wl+"/p8"]
		if p1.Events == 0 {
			t.Errorf("%s p1 recorded no events", wl)
		}
		if p8.Masked == 0 {
			t.Errorf("%s p8 masked nothing", wl)
		}
		// Thinning must hold regardless of timing noise: period 8 keeps
		// roughly 1-in-8 of the pairs period 1 records.
		if p8.Events >= p1.Events/2 {
			t.Errorf("%s: p8 events %d not thinned vs p1 events %d", wl, p8.Events, p1.Events)
		}
	}

	var buf bytes.Buffer
	if err := WriteSamplingOverhead(&buf, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phoenix/word_count/native", "kvstore/db_bench/p8", "RATIO"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report lacks %q:\n%s", want, buf.String())
		}
	}
}

func periodKey(p uint64) string {
	if p == 0 {
		return "native"
	}
	return fmt.Sprintf("p%d", p)
}
