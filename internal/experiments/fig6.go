package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/spdknvme"
	"teeperf/internal/tee"
)

// Fig6Config parameterizes the SPDK case study (Fig 6 + §IV-C table).
type Fig6Config struct {
	// Platform is the TEE model (default SGXv1).
	Platform tee.Platform
	// Ops is the number of I/Os per run (default 20000).
	Ops int
	// QueueDepth (default 32) and ReadPct (default 80) follow the paper.
	QueueDepth int
	ReadPct    int
	// Device overrides the simulated SSD parameters.
	Device spdknvme.DeviceConfig
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Platform.Name == "" {
		c.Platform = tee.SGXv1()
	}
	if c.Ops <= 0 {
		c.Ops = 20000
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.ReadPct == 0 {
		c.ReadPct = 80
	}
	return c
}

// Fig6Run is one profiled SPDK configuration.
type Fig6Run struct {
	// Label names the configuration ("native", "sgx-naive",
	// "sgx-optimized").
	Label string
	// Perf is the throughput result.
	Perf spdknvme.PerfResult
	// Profile is the TEE-Perf recording (nil for the unprofiled native
	// throughput row).
	Profile *analyzer.Profile
	// OCallCounts is the enclave's per-name OCALL accounting.
	OCallCounts map[string]uint64
}

// Fig6Result regenerates the case study: both flame-graph profiles and the
// three-row IOPS table.
type Fig6Result struct {
	Native    Fig6Run
	Naive     Fig6Run
	Optimized Fig6Run
	// Speedup is optimized IOPS over naive IOPS (paper: 14.7x).
	Speedup float64
}

// RunFig6 executes the full case study.
func RunFig6(cfg Fig6Config) (Fig6Result, error) {
	c := cfg.withDefaults()

	native, err := runSPDK(c, tee.Native(), spdknvme.ModeNaive, "native")
	if err != nil {
		return Fig6Result{}, err
	}
	naive, err := runSPDK(c, c.Platform, spdknvme.ModeNaive, "sgx-naive")
	if err != nil {
		return Fig6Result{}, err
	}
	optimized, err := runSPDK(c, c.Platform, spdknvme.ModeOptimized, "sgx-optimized")
	if err != nil {
		return Fig6Result{}, err
	}
	res := Fig6Result{Native: native, Naive: naive, Optimized: optimized}
	if naive.Perf.IOPS > 0 {
		res.Speedup = optimized.Perf.IOPS / naive.Perf.IOPS
	}
	return res, nil
}

func runSPDK(c Fig6Config, platform tee.Platform, mode spdknvme.Mode, label string) (Fig6Run, error) {
	host := tee.NewHost(11)
	encl, err := tee.NewEnclave(platform, host)
	if err != nil {
		return Fig6Run{}, err
	}
	dev, err := spdknvme.NewDevice(host, c.Device)
	if err != nil {
		return Fig6Run{}, err
	}
	tab, log, rt, err := buildProbePipeline(1 << 23)
	if err != nil {
		return Fig6Run{}, err
	}
	if err := spdknvme.RegisterPerfSymbols(tab); err != nil {
		return Fig6Run{}, err
	}
	// Warm up the device, allocator and code paths with a short discarded
	// run (Fex methodology) before the measured one.
	warmupOps := c.Ops / 8
	if warmupOps > 2000 {
		warmupOps = 2000
	}
	if warmupOps > 0 {
		wtab, _, wrt, err := buildProbePipeline(1 << 20)
		if err != nil {
			return Fig6Run{}, err
		}
		if err := spdknvme.RegisterPerfSymbols(wtab); err != nil {
			return Fig6Run{}, err
		}
		if _, err := spdknvme.RunPerf(&spdknvme.PerfConfig{
			Device:     dev,
			Thread:     encl.Thread(),
			Hooks:      wrt.Thread(),
			AddrOf:     wtab.Addr,
			Mode:       mode,
			Ops:        warmupOps,
			QueueDepth: c.QueueDepth,
			ReadPct:    c.ReadPct,
		}); err != nil {
			return Fig6Run{}, fmt.Errorf("warmup: %w", err)
		}
	}
	perf, err := spdknvme.RunPerf(&spdknvme.PerfConfig{
		Device:     dev,
		Thread:     encl.Thread(),
		Hooks:      rt.Thread(),
		AddrOf:     tab.Addr,
		Mode:       mode,
		Ops:        c.Ops,
		QueueDepth: c.QueueDepth,
		ReadPct:    c.ReadPct,
	})
	if err != nil {
		return Fig6Run{}, err
	}
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		return Fig6Run{}, err
	}
	return Fig6Run{Label: label, Perf: perf, Profile: p, OCallCounts: encl.OCallCounts()}, nil
}

// WriteFig6 prints the §IV-C table and per-configuration hot functions.
func WriteFig6(w io.Writer, r Fig6Result) error {
	const rowFormat = "%-14s %12.0f %10.1f %12s %10d\n"
	if _, err := fmt.Fprintf(w, "%-14s %12s %10s %12s %10s\n",
		"CONFIG", "IOPS", "MiB/s", "ELAPSED", "OCALLS"); err != nil {
		return err
	}
	for _, run := range []Fig6Run{r.Native, r.Naive, r.Optimized} {
		if _, err := fmt.Fprintf(w, rowFormat, run.Label, run.Perf.IOPS, run.Perf.MiBPerSec,
			run.Perf.Elapsed.Round(time.Millisecond).String(), run.Perf.OCalls); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"\noptimized/naive speedup: %.1fx (paper: 14.7x; native 223,808 IOPS / 874 MiB/s, naive 15,821 / 61.8, optimized 232,736 / 909)\n",
		r.Speedup); err != nil {
		return err
	}

	report := func(run Fig6Run) error {
		gp := run.Profile.SelfFraction("getpid")
		rd := run.Profile.SelfFraction("rdtsc")
		_, err := fmt.Fprintf(w, "%-14s getpid self = %5.1f%%   rdtsc self = %5.1f%%\n",
			run.Label, 100*gp, 100*rd)
		return err
	}
	if _, err := fmt.Fprintf(w, "\nflame-graph hot shares (paper Fig 6: naive getpid ~72%%, rdtsc ~20%%; optimized ~0%%):\n"); err != nil {
		return err
	}
	if err := report(r.Naive); err != nil {
		return err
	}
	if err := report(r.Optimized); err != nil {
		return err
	}

	if _, err := fmt.Fprintf(w, "\nOCALLs by host call (naive vs optimized):\n"); err != nil {
		return err
	}
	names := make(map[string]struct{})
	for n := range r.Naive.OCallCounts {
		names[n] = struct{}{}
	}
	for n := range r.Optimized.OCallCounts {
		names[n] = struct{}{}
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	for _, n := range ordered {
		if _, err := fmt.Fprintf(w, "  %-16s %10d -> %d\n",
			n, r.Naive.OCallCounts[n], r.Optimized.OCallCounts[n]); err != nil {
			return err
		}
	}
	return nil
}
