package experiments

import (
	"strings"
	"testing"
	"time"

	"teeperf/internal/raceinfo"
	"teeperf/internal/spdknvme"
)

func TestRunFig4SmallSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real workloads")
	}
	cfg := Fig4Config{
		Scale:     1,
		Runs:      2,
		Warmups:   1,
		Workloads: []string{"string_match", "linear_regression"},
	}
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TEEPerf <= 0 || row.Perf <= 0 {
			t.Errorf("%s: non-positive time %v/%v", row.Benchmark, row.TEEPerf, row.Perf)
		}
		if row.Ratio <= 0 {
			t.Errorf("%s: ratio %f", row.Benchmark, row.Ratio)
		}
	}
	if res.Rows[0].Events <= res.Rows[1].Events {
		t.Errorf("string_match events (%d) should exceed linear_regression (%d)",
			res.Rows[0].Events, res.Rows[1].Events)
	}
	if !raceinfo.Enabled {
		// The Fig 4 shape: call-dense string_match costs far more under
		// TEE-Perf than call-light linear_regression.
		if res.Rows[0].Ratio <= res.Rows[1].Ratio {
			t.Errorf("ratio(string_match)=%.2f should exceed ratio(linear_regression)=%.2f",
				res.Rows[0].Ratio, res.Rows[1].Ratio)
		}
	}

	var sb strings.Builder
	if err := WriteFig4(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "string_match") || !strings.Contains(sb.String(), "mean overhead") {
		t.Errorf("fig4 table incomplete:\n%s", sb.String())
	}
}

func TestRunFig4UnknownWorkload(t *testing.T) {
	if _, err := RunFig4(Fig4Config{Workloads: []string{"nope"}, Runs: 1}); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestRunFig5Small(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real workloads")
	}
	res, err := RunFig5(Fig5Config{Ops: 1500, RandomDataSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bench.Ops != 1500 {
		t.Errorf("ops = %d", res.Bench.Ops)
	}
	if _, ok := res.Profile.Func("rocksdb::Stats::Now()"); !ok {
		t.Error("Stats::Now missing from profile")
	}
	if !raceinfo.Enabled {
		if f := res.Profile.SelfFraction("rocksdb::Stats::Now()"); f < 0.2 {
			t.Errorf("Stats::Now self share = %.2f, want dominant", f)
		}
	}
	var sb strings.Builder
	if err := WriteFig5(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Stats::Now") {
		t.Errorf("fig5 report incomplete:\n%s", sb.String())
	}
	var svg strings.Builder
	if err := WriteFlameGraph(&svg, res.Profile, "fig5"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Error("flame graph not rendered")
	}
}

func TestRunFig6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real workloads")
	}
	res, err := RunFig6(Fig6Config{
		Ops: 1200,
		Device: spdknvme.DeviceConfig{
			Blocks:  4096,
			Latency: 20 * time.Microsecond,
			MaxIOPS: 240000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []Fig6Run{res.Native, res.Naive, res.Optimized} {
		if run.Perf.Ops != 1200 {
			t.Errorf("%s ops = %d, want 1200", run.Label, run.Perf.Ops)
		}
		if run.Profile == nil {
			t.Errorf("%s has no profile", run.Label)
		}
	}
	if res.Naive.Perf.OCalls < 1000 {
		t.Errorf("naive OCalls = %d, want thousands", res.Naive.Perf.OCalls)
	}
	if res.Optimized.Perf.OCalls > 100 {
		t.Errorf("optimized OCalls = %d, want near zero", res.Optimized.Perf.OCalls)
	}
	if !raceinfo.Enabled {
		if res.Speedup < 2 {
			t.Errorf("speedup = %.1fx, want substantial", res.Speedup)
		}
		gp := res.Naive.Profile.SelfFraction("getpid")
		if gp < 0.3 {
			t.Errorf("naive getpid share = %.2f, want dominant", gp)
		}
	}
	var sb strings.Builder
	if err := WriteFig6(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"native", "sgx-naive", "sgx-optimized", "speedup", "getpid"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 report missing %q:\n%s", want, out)
		}
	}
}
