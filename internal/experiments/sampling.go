package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"teeperf/internal/fex"
	"teeperf/internal/kvstore"
	"teeperf/internal/phoenix"
	"teeperf/internal/probe"
	"teeperf/internal/recorder"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

// SamplingOverheadConfig parameterizes the sampled-probe overhead sweep:
// each workload runs uninstrumented (probe.Nop, the native baseline) and
// then fully instrumented at every sampling period, so the ratio column
// isolates what the probes themselves cost at each thinning level.
type SamplingOverheadConfig struct {
	// Platform is the TEE model (default SGXv1).
	Platform tee.Platform
	// Periods are the sampling periods to sweep (default 1, 8, 64).
	Periods []uint64
	// Runs and Warmups follow the Fex methodology (defaults 5 and 1).
	Runs    int
	Warmups int
	// Scale is the Phoenix input scale (default 2).
	Scale int
	// Ops is the kvstore db_bench operation count (default 10000).
	Ops int
	// PhoenixWorkloads restricts the Phoenix half of the sweep (default
	// word_count and string_match — the paper's median and worst case).
	PhoenixWorkloads []string
	// Counter picks the TEE-Perf time source (default: software counter
	// when a spare core exists, TSC otherwise, as in Fig 4).
	Counter recorder.CounterMode
}

func (c SamplingOverheadConfig) withDefaults() SamplingOverheadConfig {
	if c.Platform.Name == "" {
		c.Platform = tee.SGXv1()
	}
	if len(c.Periods) == 0 {
		c.Periods = []uint64{1, 8, 64}
	}
	if c.Runs <= 0 {
		c.Runs = 5
	}
	if c.Warmups < 0 {
		c.Warmups = 0
	}
	if c.Scale <= 0 {
		c.Scale = 2
	}
	if c.Ops <= 0 {
		c.Ops = 10000
	}
	if len(c.PhoenixWorkloads) == 0 {
		c.PhoenixWorkloads = []string{"word_count", "string_match"}
	}
	if c.Counter == 0 {
		c.Counter = recorder.CounterSoftware
		if runtime.NumCPU() < 2 {
			c.Counter = recorder.CounterTSC
		}
	}
	return c
}

// SamplingOverheadRow is one (workload, period) measurement. Period 0 is
// the uninstrumented baseline the ratios divide by.
type SamplingOverheadRow struct {
	Workload string
	Period   uint64
	// Time is the geometric-mean runtime.
	Time time.Duration
	// Ratio is Time over the workload's uninstrumented baseline.
	Ratio float64
	// Events is the committed entry count of one run; Masked the events
	// suppressed by sampling across the measured runs.
	Events int
	Masked uint64
}

// RunSamplingOverhead measures instrumented-vs-uninstrumented runtime at
// each sampling period on the Phoenix workloads and the kvstore db_bench.
func RunSamplingOverhead(cfg SamplingOverheadConfig) ([]SamplingOverheadRow, error) {
	c := cfg.withDefaults()
	var rows []SamplingOverheadRow
	for _, name := range c.PhoenixWorkloads {
		w, err := phoenix.ByName(name)
		if err != nil {
			return nil, err
		}
		wr, err := sweepWorkload(c, "phoenix/"+name, func(hooks probe.Hooks, tab *symtab.Table, addrOf func(string) uint64) (func() error, error) {
			if err := w.RegisterSymbols(tab); err != nil {
				return nil, err
			}
			encl, err := tee.NewEnclave(c.Platform, tee.NewHost(1))
			if err != nil {
				return nil, err
			}
			runner, err := w.New(phoenix.Config{Enclave: encl, Hooks: hooks, AddrOf: addrOf}, c.Scale)
			if err != nil {
				return nil, err
			}
			th := encl.Thread()
			return func() error { _, err := runner(th); return err }, nil
		})
		if err != nil {
			return nil, fmt.Errorf("sampling overhead %s: %w", name, err)
		}
		rows = append(rows, wr...)
	}

	wr, err := sweepWorkload(c, "kvstore/db_bench", func(hooks probe.Hooks, tab *symtab.Table, addrOf func(string) uint64) (func() error, error) {
		if err := kvstore.RegisterBenchSymbols(tab); err != nil {
			return nil, err
		}
		host := tee.NewHost(4321)
		encl, err := tee.NewEnclave(c.Platform, host)
		if err != nil {
			return nil, err
		}
		th := encl.Thread()
		db, err := kvstore.Open(host, th, "sampling-overhead", nil)
		if err != nil {
			return nil, err
		}
		bench := &kvstore.BenchConfig{
			DB: db, Hooks: hooks, AddrOf: addrOf,
			Ops: c.Ops, Seed: 7,
		}
		return func() error { _, err := kvstore.RunDBBench(th, bench); return err }, nil
	})
	if err != nil {
		return nil, fmt.Errorf("sampling overhead db_bench: %w", err)
	}
	return append(rows, wr...), nil
}

// sweepWorkload measures one workload's baseline plus every period. build
// wires the workload to the given hooks and returns one run of it; it is
// called once per configuration so each measurement gets fresh state.
func sweepWorkload(c SamplingOverheadConfig, label string,
	build func(probe.Hooks, *symtab.Table, func(string) uint64) (func() error, error)) ([]SamplingOverheadRow, error) {

	tab := symtab.New()
	run, err := build(probe.Nop{}, tab, tab.Addr)
	if err != nil {
		return nil, err
	}
	base, err := fex.Run(label+"/native", c.Warmups, c.Runs, run)
	if err != nil {
		return nil, err
	}
	rows := []SamplingOverheadRow{{Workload: label, Period: 0, Time: base.GeoMean(), Ratio: 1}}

	for _, period := range c.Periods {
		tab = symtab.New()
		rec, err := recorder.New(tab,
			recorder.WithCapacity(1<<23),
			recorder.WithCounterMode(c.Counter),
			recorder.WithSamplePeriod(period))
		if err != nil {
			return nil, err
		}
		run, err := build(rec.Thread(), tab, rec.AddrOf)
		if err != nil {
			return nil, err
		}
		if err := rec.Start(); err != nil {
			return nil, err
		}
		res, err := fex.Run(fmt.Sprintf("%s/p%d", label, period), c.Warmups, c.Runs, func() error {
			rec.Log().Reset() // fresh log per run, as in Fig 4
			return run()
		})
		if err != nil {
			_ = rec.Stop()
			return nil, err
		}
		events := rec.Log().Len()
		if err := rec.Stop(); err != nil {
			return nil, err
		}
		rows = append(rows, SamplingOverheadRow{
			Workload: label,
			Period:   period,
			Time:     res.GeoMean(),
			Ratio:    float64(res.GeoMean()) / float64(base.GeoMean()),
			Events:   events,
			Masked:   rec.Stats().Masked,
		})
	}
	return rows, nil
}

// WriteSamplingOverhead renders the sweep as a text table, one row per
// (workload, period), ratios relative to each workload's native baseline.
func WriteSamplingOverhead(w io.Writer, rows []SamplingOverheadRow) error {
	out := make([]fex.Row, 0, len(rows))
	for _, r := range rows {
		name := r.Workload + "/native"
		if r.Period > 0 {
			name = fmt.Sprintf("%s/p%d", r.Workload, r.Period)
		}
		out = append(out, fex.Row{
			Name: name,
			Values: map[string]float64{
				"time_ms": float64(r.Time) / 1e6,
				"ratio":   r.Ratio,
				"events":  float64(r.Events),
				"masked":  float64(r.Masked),
			},
		})
	}
	return fex.WriteTable(w, out, []string{"time_ms", "ratio", "events", "masked"}, "%.3f")
}
