// Package monitor implements live observation of a TEE-Perf recording in
// progress. The paper's recorder only persists the shared-memory log after
// the run; this package tails the log *while* probes are writing it — an
// incremental cursor reads committed entries, an incremental analyzer folds
// them into a live hot-methods table, and a sampler tracks recorder health
// (entries/s, drop rate, log fill, counter ticks/s, rotations) — so an
// operator sees the emerging profile and the recorder's headroom without
// waiting for the process to exit.
//
// The monitor is exposed three ways: a terminal top-N view (teeperf
// monitor), an HTTP server with Prometheus/JSON metrics and a live profile
// snapshot (teeperf serve), and an in-memory ring of samples recording the
// run's trajectory for post-mortems.
package monitor

import (
	"fmt"
	"io"
	"sync"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
)

// Sample is one point of the run's trajectory: cumulative totals plus the
// rates observed since the previous sample.
type Sample struct {
	// When is the sample instant.
	When time.Time `json:"-"`
	// Elapsed is the run duration at the sample instant. time.Duration
	// marshals as nanoseconds, so the JSON field says so.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Entries is the cumulative number of committed entries the monitor
	// has observed, across all rotated segments.
	Entries uint64 `json:"entries"`
	// Dropped is the cumulative drop count.
	Dropped uint64 `json:"dropped"`
	// CounterTicks is the counter value at the sample instant.
	CounterTicks uint64 `json:"counter_ticks"`
	// FillPercent is the active segment's fill level.
	FillPercent float64 `json:"fill_percent"`
	// Capacity is the active segment's capacity in entries.
	Capacity int `json:"capacity"`
	// Rotations counts completed log rotations.
	Rotations int `json:"rotations"`
	// EntriesPerSec, TicksPerSec and DropsPerSec are rates over the
	// window since the previous recorded sample.
	EntriesPerSec float64 `json:"entries_per_sec"`
	TicksPerSec   float64 `json:"ticks_per_sec"`
	DropsPerSec   float64 `json:"drops_per_sec"`
	// SamplePeriod is the probe sampling period in effect (1 = every call
	// pair recorded). Masked is the cumulative count of probe events
	// suppressed by sampling or deny masks, and BatchSize is the current
	// per-thread reservation batch (static or adaptive).
	SamplePeriod uint64 `json:"sample_period"`
	Masked       uint64 `json:"masked"`
	BatchSize    int    `json:"batch_size"`
	// Shards is the active segment's per-shard breakdown (one element per
	// shard, index = shard id). Omitted for single-shard logs, where it
	// would duplicate FillPercent/Dropped.
	Shards []ShardSample `json:"shards,omitempty"`
}

// ShardSample is one shard's fill and drop accounting inside a sample —
// the signal that tells a skewed thread-to-shard distribution (one hot
// shard dropping while others sit empty) apart from global overload.
type ShardSample struct {
	FillPercent float64 `json:"fill_percent"`
	Dropped     uint64  `json:"dropped"`
}

// ShardSamples converts a SegmentStats snapshot into the sample form.
// Single-shard logs return nil: their one shard is the whole log. Shared
// with the fleet agent, which builds Samples from observed mappings.
func ShardSamples(stats []shmlog.SegmentStat) []ShardSample {
	if len(stats) <= 1 {
		return nil
	}
	out := make([]ShardSample, len(stats))
	for i, st := range stats {
		fill := 0.0
		if st.Capacity > 0 {
			t := st.Tail
			if t > st.Capacity { // transient overshoot under overload
				t = st.Capacity
			}
			fill = float64(t) / float64(st.Capacity) * 100
		}
		out[i] = ShardSample{FillPercent: fill, Dropped: st.Dropped}
	}
	return out
}

// Option configures New.
type Option interface {
	apply(*Monitor)
}

type optionFunc func(*Monitor)

func (f optionFunc) apply(m *Monitor) { f(m) }

// WithInterval sets the sampling interval (default 250ms).
func WithInterval(d time.Duration) Option {
	return optionFunc(func(m *Monitor) {
		if d > 0 {
			m.interval = d
		}
	})
}

// WithHistorySize bounds the snapshot ring buffer (default 512 samples).
func WithHistorySize(n int) Option {
	return optionFunc(func(m *Monitor) {
		if n > 0 {
			m.histCap = n
		}
	})
}

// WithSessionLabel sets the value of the `session` label on every exported
// metric (default "main"). Single-session serving and the fleet agent share
// one metric schema; the label is what tells their series apart.
func WithSessionLabel(name string) Option {
	return optionFunc(func(m *Monitor) {
		if name != "" {
			m.session = name
		}
	})
}

// retireGrace is how many polls a rotated-out segment's cursor is kept
// around: probes that loaded the log pointer just before the swap may still
// commit entries into the old segment shortly after it.
const retireGrace = 2

type retiredCursor struct {
	cur   *shmlog.Cursor
	polls int
}

// Monitor tails a recorder's shared-memory log concurrently with the run.
type Monitor struct {
	rec      *recorder.Recorder
	interval time.Duration
	histCap  int
	session  string

	// pendMu is a leaf lock shared with the recorder's rotation hook; it
	// must never be held while taking mu or calling into the recorder.
	pendMu  sync.Mutex
	pending []*shmlog.Log

	mu       sync.Mutex
	inc      *analyzer.Incremental
	cur      *shmlog.Cursor
	seen     map[*shmlog.Log]bool
	retired  []retiredCursor
	buf      []shmlog.Entry
	observed uint64
	history  []Sample
	latest   Sample
	lastPoll time.Time
	haveLast bool

	running bool
	stop    chan struct{}
	done    chan struct{}
}

// New creates a monitor over rec. The recorder may be started before or
// after; entries recorded before the monitor exists are still observed
// (the cursor starts at the head of the log).
func New(rec *recorder.Recorder, opts ...Option) *Monitor {
	m := &Monitor{
		rec:      rec,
		interval: 250 * time.Millisecond,
		histCap:  512,
		session:  "main",
	}
	for _, opt := range opts {
		opt.apply(m)
	}
	// Resolve through the same relocation anchor the offline analyzer
	// uses, so live names match post-run names.
	if addr := rec.Log().ProfilerAddr(); addr != 0 {
		rec.Table().SetLoadBias(addr)
	}
	m.inc = analyzer.NewIncremental(rec.Table())
	m.seen = make(map[*shmlog.Log]bool)
	m.cur = m.adopt(rec.Log())
	// Rotated-out segments are handed to the monitor by the recorder, so
	// none is missed even when several rotations happen between polls.
	rec.OnRotate(func(old *shmlog.Log) {
		m.pendMu.Lock()
		m.pending = append(m.pending, old)
		m.pendMu.Unlock()
	})
	return m
}

// adopt starts a cursor on log and remembers the segment so a late rotation
// notification for it is not mistaken for an unseen segment (which would
// re-read it from the start).
func (m *Monitor) adopt(log *shmlog.Log) *shmlog.Cursor {
	m.seen[log] = true
	return log.Cursor()
}

// Start launches the background sampling loop. It is a no-op if already
// running.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return
	}
	m.running = true
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.loop(m.stop, m.done)
}

func (m *Monitor) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			m.mu.Lock()
			m.pollLocked(now, true)
			m.mu.Unlock()
		}
	}
}

// Stop halts the sampling loop and performs a final drain so the live
// table covers every committed entry. Idempotent.
func (m *Monitor) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	m.running = false
	stop, done := m.stop, m.done
	m.mu.Unlock()
	close(stop)
	<-done
	m.mu.Lock()
	m.pollLocked(time.Now(), true)
	m.mu.Unlock()
}

// Poll drains newly committed entries and returns a fresh sample without
// recording it into the history ring (on-demand reads, e.g. HTTP scrapes,
// should not distort the time-spaced trajectory).
func (m *Monitor) Poll() Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pollLocked(time.Now(), false)
}

// pollLocked drains cursors, updates the live analyzer and computes one
// sample. Rate windows shorter than a millisecond reuse the previous rates
// rather than amplifying scheduling noise.
func (m *Monitor) pollLocked(now time.Time, record bool) Sample {
	// Rotation: rotated-out segments arrive through the recorder hook in
	// rotation order. Drain each a final time before switching cursors, and
	// keep them on the retired list for a grace period to catch stragglers
	// that committed just after the swap.
	m.pendMu.Lock()
	pending := m.pending
	m.pending = nil
	m.pendMu.Unlock()
	for _, old := range pending {
		switch {
		case m.cur != nil && old == m.cur.Log():
			m.drainLocked(m.cur)
			m.retired = append(m.retired, retiredCursor{cur: m.cur})
			m.cur = nil
		case !m.seen[old]:
			// The segment came and went entirely between two polls.
			c := m.adopt(old)
			m.drainLocked(c)
			m.retired = append(m.retired, retiredCursor{cur: c})
		}
	}
	current := m.rec.Log()
	if m.cur == nil || m.cur.Log() != current {
		if m.cur != nil {
			// Rotation observed via Log() before its hook notification was
			// processed; the pending entry arrives next poll and is skipped
			// because the segment is already in seen.
			m.drainLocked(m.cur)
			m.retired = append(m.retired, retiredCursor{cur: m.cur})
		}
		m.cur = m.adopt(current)
	}
	kept := m.retired[:0]
	for _, rc := range m.retired {
		m.drainLocked(rc.cur)
		rc.polls++
		if rc.polls < retireGrace {
			kept = append(kept, rc)
		}
	}
	m.retired = kept
	m.drainLocked(m.cur)

	st := m.rec.Stats()
	// A live throttle (sample period pushed through the shared header)
	// changes the weight of entries recorded after it; refreshing the
	// incremental analyzer's period each poll keeps the live table's
	// scaling in step with the recorder's.
	m.inc.SetSamplePeriod(st.SamplePeriod)
	s := Sample{
		When:         now,
		Elapsed:      st.Duration,
		Entries:      m.observed,
		Dropped:      st.Dropped,
		CounterTicks: st.CounterTicks,
		FillPercent:  st.FillPercent,
		Capacity:     st.Capacity,
		Rotations:    st.Rotations,
		SamplePeriod: st.SamplePeriod,
		Masked:       st.Masked,
		BatchSize:    st.BatchSize,
		Shards:       ShardSamples(current.SegmentStats()),
	}
	if m.haveLast {
		dt := now.Sub(m.lastPoll).Seconds()
		if dt >= 0.001 {
			prev := m.latest
			s.EntriesPerSec = float64(s.Entries-prev.Entries) / dt
			s.TicksPerSec = float64(s.CounterTicks-prev.CounterTicks) / dt
			s.DropsPerSec = float64(s.Dropped-prev.Dropped) / dt
		} else {
			s.EntriesPerSec = m.latest.EntriesPerSec
			s.TicksPerSec = m.latest.TicksPerSec
			s.DropsPerSec = m.latest.DropsPerSec
		}
	}
	if record || !m.haveLast {
		m.lastPoll = now
		m.latest = s
		m.haveLast = true
		if record {
			if len(m.history) == m.histCap {
				copy(m.history, m.history[1:])
				m.history = m.history[:m.histCap-1]
			}
			m.history = append(m.history, s)
		}
	}
	return s
}

func (m *Monitor) drainLocked(c *shmlog.Cursor) {
	m.buf = c.Next(m.buf[:0])
	m.inc.FeedAll(m.buf)
	m.observed += uint64(len(m.buf))
}

// Latest returns the most recent sample (zero before the first poll).
func (m *Monitor) Latest() Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latest
}

// History returns the recorded trajectory, oldest first. The ring is
// bounded by WithHistorySize, so a post-mortem sees how the profile and
// the recorder's health evolved, not just their final state.
func (m *Monitor) History() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.history))
	copy(out, m.history)
	return out
}

// Table drains pending entries and returns the live hot-methods table. A
// top of 0 returns every function.
func (m *Monitor) Table(top int) analyzer.LiveTable {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pollLocked(time.Now(), false)
	return m.inc.Snapshot(top)
}

// Recorder exposes the observed recorder.
func (m *Monitor) Recorder() *recorder.Recorder { return m.rec }

// Interval returns the sampling interval.
func (m *Monitor) Interval() time.Duration { return m.interval }

// WriteTop renders the live view as text: one status line followed by the
// top-n hot methods. It is the body of the terminal monitor's refresh.
func (m *Monitor) WriteTop(w io.Writer, n int) error {
	m.mu.Lock()
	s := m.pollLocked(time.Now(), false)
	t := m.inc.Snapshot(n)
	m.mu.Unlock()

	if _, err := fmt.Fprintf(w,
		"live %s: %d entries (%.0f/s), %d dropped (%.0f/s), fill %.1f%%, %d rotations, %d ticks\n",
		s.Elapsed.Round(time.Millisecond), s.Entries, s.EntriesPerSec,
		s.Dropped, s.DropsPerSec, s.FillPercent, s.Rotations, s.CounterTicks); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%d threads, %d calls, %d frames in flight, %d unmatched\n\n",
		t.Threads, t.Calls, t.OpenFrames, t.Unmatched); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-44s %12s %14s %14s %7s\n",
		"FUNCTION", "CALLS", "SELF", "INCL", "SELF%"); err != nil {
		return err
	}
	for _, f := range t.Funcs {
		name := f.Name
		if len(name) > 44 {
			name = name[:41] + "..."
		}
		if _, err := fmt.Fprintf(w, "%-44s %12d %14d %14d %6.2f%%\n",
			name, f.Calls, f.Self, f.Incl, t.SelfPercent(f)); err != nil {
			return err
		}
	}
	return nil
}
