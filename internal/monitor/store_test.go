package monitor

import (
	"strings"
	"testing"

	"teeperf/internal/profilestore"
)

func TestStoreMetrics(t *testing.T) {
	st := profilestore.Stats{
		Tables: 3, Levels: 2, Entries: 1200, Segments: 5,
		Backlog: 2, Compactions: 7,
		CacheLen: 16, CacheHits: 30, CacheMisses: 10,
	}
	ms := StoreMetrics(st)
	byName := make(map[string]Metric, len(ms))
	for _, m := range ms {
		if !strings.HasPrefix(m.Name, "teeperf_store_") {
			t.Errorf("metric %q outside the store namespace", m.Name)
		}
		if m.Help == "" || m.Kind == "" {
			t.Errorf("metric %q missing help or kind", m.Name)
		}
		byName[m.Name] = m
	}
	want := map[string]float64{
		"teeperf_store_tables":             3,
		"teeperf_store_levels":             2,
		"teeperf_store_entries":            1200,
		"teeperf_store_segments":           5,
		"teeperf_store_compaction_backlog": 2,
		"teeperf_store_compactions_total":  7,
		"teeperf_store_cache_blocks":       16,
		"teeperf_store_cache_hit_rate":     0.75,
	}
	if len(ms) != len(want) {
		t.Fatalf("got %d metrics, want %d", len(ms), len(want))
	}
	for name, v := range want {
		m, ok := byName[name]
		if !ok {
			t.Errorf("missing metric %s", name)
			continue
		}
		if m.Value != v {
			t.Errorf("%s = %v, want %v", name, m.Value, v)
		}
	}
	if byName["teeperf_store_compactions_total"].Kind != "counter" {
		t.Error("compactions_total must be a counter")
	}
}
