package monitor

import (
	"fmt"
	"io"
	"strings"
)

// Metric is one exported Prometheus series: a metric name with metadata,
// an optional ordered label set, and the sample value. The single-session
// monitor and the fleet agent share this type (and WriteMetrics) so both
// expose the same metric schema — the fleet view is the single-session
// view plus more `session` label values and rollups, never a parallel
// namespace of diverging names.
type Metric struct {
	Name, Help, Kind string
	Labels           []Label
	Value            float64
}

// Label is one key="value" pair of a metric's label set.
type Label struct{ Key, Value string }

// SessionLabel builds the canonical per-session label set.
func SessionLabel(session string) []Label {
	return []Label{{Key: "session", Value: session}}
}

// Series renders the metric's series identity (name plus label set) in
// Prometheus exposition syntax, e.g. `teeperf_log_fill_percent` or
// `teeperf_log_fill_percent{session="db"}`. It is also the /vars JSON key.
func (m Metric) Series() string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	var b strings.Builder
	b.WriteString(m.Name)
	b.WriteByte('{')
	for i, l := range m.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslash, double quote and newline exactly as the
		// Prometheus text format requires.
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteMetrics renders metrics in the Prometheus text exposition format.
// Series are grouped by metric name (first-appearance order) so the HELP
// and TYPE headers are emitted exactly once per name even when many
// sessions share it.
func WriteMetrics(w io.Writer, metrics []Metric) {
	order := make([]string, 0, len(metrics))
	groups := make(map[string][]Metric, len(metrics))
	for _, m := range metrics {
		if _, ok := groups[m.Name]; !ok {
			order = append(order, m.Name)
		}
		groups[m.Name] = append(groups[m.Name], m)
	}
	for _, name := range order {
		g := groups[name]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, g[0].Help, name, g[0].Kind)
		for _, m := range g {
			fmt.Fprintf(w, "%s %g\n", m.Series(), m.Value)
		}
	}
}
