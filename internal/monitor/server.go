package monitor

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net"
	"net/http"
	"time"

	"teeperf/internal/recorder"
	"teeperf/internal/report"
)

// Handler returns the monitor's HTTP interface:
//
//	/              auto-refreshing HTML hot-methods page
//	/metrics       Prometheus text exposition of the recorder self-metrics
//	/vars          the same metrics as an expvar-style JSON document
//	/profile.json  live profile snapshot (stats + hot-methods table)
//	/history.json  the recorded sample trajectory (snapshot ring buffer)
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", m.serveIndex)
	mux.HandleFunc("/metrics", m.serveMetrics)
	mux.HandleFunc("/vars", m.serveVars)
	mux.HandleFunc("/profile.json", m.serveProfile)
	mux.HandleFunc("/history.json", m.serveHistory)
	return mux
}

// normPeriod maps the header's 0 ("unset") to the effective period 1, so
// the gauge always reports the weight actually applied to entries.
func normPeriod(p uint64) uint64 {
	if p == 0 {
		return 1
	}
	return p
}

// SessionMetrics builds the canonical per-session metric list from one
// sample — the shared schema between `teeperf serve` (one session) and the
// fleet agent (many sessions): identical names, distinguished only by the
// `session` label value.
func SessionMetrics(session string, s Sample, openFrames, funcs int) []Metric {
	lbl := SessionLabel(session)
	out := []Metric{
		{"teeperf_entries_committed_total", "Committed log entries observed across all segments.", "counter", lbl, float64(s.Entries)},
		{"teeperf_entries_dropped_total", "Probe events lost to log overflow.", "counter", lbl, float64(s.Dropped)},
		{"teeperf_counter_ticks_total", "Software/TSC counter value.", "counter", lbl, float64(s.CounterTicks)},
		{"teeperf_log_fill_percent", "Active log segment fill level (0-100).", "gauge", lbl, s.FillPercent},
		{"teeperf_log_capacity_entries", "Active log segment capacity.", "gauge", lbl, float64(s.Capacity)},
		{"teeperf_log_rotations_total", "Completed log segment rotations.", "counter", lbl, float64(s.Rotations)},
		{"teeperf_entries_per_second", "Entry commit rate over the last sample window.", "gauge", lbl, s.EntriesPerSec},
		{"teeperf_counter_ticks_per_second", "Counter tick rate over the last sample window.", "gauge", lbl, s.TicksPerSec},
		{"teeperf_drops_per_second", "Drop rate over the last sample window.", "gauge", lbl, s.DropsPerSec},
		{"teeperf_run_duration_seconds", "Wall-clock run duration.", "gauge", lbl, s.Elapsed.Seconds()},
		{"teeperf_open_frames", "Calls currently in flight (entered, not yet returned).", "gauge", lbl, float64(openFrames)},
		{"teeperf_profile_functions", "Distinct functions in the live profile.", "gauge", lbl, float64(funcs)},
		{"teeperf_probe_sample_period", "Probe sampling period (1 = every call pair recorded).", "gauge", lbl, float64(normPeriod(s.SamplePeriod))},
		{"teeperf_probe_batch_size", "Per-thread slot reservation batch size (adaptive controllers move it live).", "gauge", lbl, float64(s.BatchSize)},
		{"teeperf_probe_masked_total", "Probe events suppressed by sampling or deny masks.", "counter", lbl, float64(s.Masked)},
	}
	// Sharded logs additionally break fill and drops down per shard, so a
	// skewed thread distribution (one shard saturated, the rest idle) is
	// visible where the aggregate gauges would hide it.
	for i, sh := range s.Shards {
		slbl := append(SessionLabel(session), Label{Key: "shard", Value: fmt.Sprintf("%d", i)})
		out = append(out,
			Metric{"teeperf_shard_fill_percent", "Per-shard log segment fill level (0-100).", "gauge", slbl, sh.FillPercent},
			Metric{"teeperf_shard_dropped_total", "Probe events lost to overflow of this shard's segment.", "counter", slbl, float64(sh.Dropped)},
		)
	}
	return out
}

// CheckpointMetrics builds the per-session checkpoint gauges from the
// recorder's CheckpointStats — the crash-consistency health signals. Before
// the first successful pass the age gauge reports -1.
func CheckpointMetrics(session string, cs recorder.CheckpointStats, now time.Time) []Metric {
	lbl := SessionLabel(session)
	age := -1.0
	if !cs.LastSuccess.IsZero() {
		age = now.Sub(cs.LastSuccess).Seconds()
	}
	return []Metric{
		{"teeperf_checkpoint_passes_total", "Completed checkpoint passes (reached the atomic rename).", "counter", lbl, float64(cs.Passes)},
		{"teeperf_checkpoint_consecutive_failures", "Failed checkpoint passes since the last clean one.", "gauge", lbl, float64(cs.ConsecutiveFailures)},
		{"teeperf_checkpoint_bytes_written_total", "Bundle bytes written by completed checkpoint passes.", "counter", lbl, float64(cs.BytesWritten)},
		{"teeperf_checkpoint_last_success_age_seconds", "Seconds since the last successful checkpoint pass (-1 before the first).", "gauge", lbl, age},
	}
}

func (m *Monitor) metrics() []Metric {
	m.mu.Lock()
	s := m.pollLocked(time.Now(), false)
	open := m.inc.OpenFrames()
	funcs := len(m.inc.Snapshot(0).Funcs)
	session := m.session
	m.mu.Unlock()

	out := SessionMetrics(session, s, open, funcs)
	// Checkpoint statistics ride along once checkpointing is configured;
	// before that the gauges would be meaningless zeros.
	if cs := m.rec.CheckpointStats(); cs.Configured {
		out = append(out, CheckpointMetrics(session, cs, time.Now())...)
	}
	return out
}

func (m *Monitor) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, m.metrics())
}

func (m *Monitor) serveVars(w http.ResponseWriter, r *http.Request) {
	vars := make(map[string]float64)
	for _, mt := range m.metrics() {
		// Bare names keep single-session /vars keys stable; the label only
		// disambiguates when several sessions share one exposition, which
		// /vars of a single-session monitor never has.
		vars[mt.Name] = mt.Value
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(vars)
}

// profileJSON is the /profile.json document.
type profileJSON struct {
	PID        uint64        `json:"pid"`
	Stats      statsJSON     `json:"stats"`
	TotalTicks uint64        `json:"total_ticks"`
	Calls      uint64        `json:"calls"`
	Unmatched  int           `json:"unmatched"`
	OpenFrames int           `json:"open_frames"`
	Threads    int           `json:"threads"`
	MaxDepth   int           `json:"max_depth"`
	Functions  []funcRowJSON `json:"functions"`
}

type statsJSON struct {
	Entries     uint64  `json:"entries"`
	Dropped     uint64  `json:"dropped"`
	Ticks       uint64  `json:"counter_ticks"`
	DurationMS  int64   `json:"duration_ms"`
	Capacity    int     `json:"capacity"`
	FillPercent float64 `json:"fill_percent"`
	Rotations   int     `json:"rotations"`
	DropRate    float64 `json:"drop_rate"`
}

type funcRowJSON struct {
	Name        string  `json:"name"`
	Calls       uint64  `json:"calls"`
	Self        uint64  `json:"self"`
	Incl        uint64  `json:"incl"`
	SelfPercent float64 `json:"self_percent"`
}

func (m *Monitor) serveProfile(w http.ResponseWriter, r *http.Request) {
	top := 0
	if v := r.URL.Query().Get("top"); v != "" {
		fmt.Sscanf(v, "%d", &top)
	}
	t := m.Table(top)
	s := m.Latest()
	st := m.rec.Stats()
	doc := profileJSON{
		PID: m.rec.Log().PID(),
		Stats: statsJSON{
			Entries:     s.Entries,
			Dropped:     st.Dropped,
			Ticks:       st.CounterTicks,
			DurationMS:  st.Duration.Milliseconds(),
			Capacity:    st.Capacity,
			FillPercent: st.FillPercent,
			Rotations:   st.Rotations,
			DropRate:    st.DropRate,
		},
		TotalTicks: t.TotalTicks,
		Calls:      t.Calls,
		Unmatched:  t.Unmatched,
		OpenFrames: t.OpenFrames,
		Threads:    t.Threads,
		MaxDepth:   t.MaxDepth,
	}
	for _, f := range t.Funcs {
		doc.Functions = append(doc.Functions, funcRowJSON{
			Name:        f.Name,
			Calls:       f.Calls,
			Self:        f.Self,
			Incl:        f.Incl,
			SelfPercent: t.SelfPercent(f),
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

func (m *Monitor) serveHistory(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(m.History())
}

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{{.Refresh}}">
<title>teeperf live monitor</title>
<style>
` + report.BaseCSS + `</style>
</head>
<body>
<h1>teeperf live monitor</h1>
<p class="summary">
  <span>elapsed <b>{{.Elapsed}}</b></span>
  <span>entries <b>{{.Entries}}</b> ({{printf "%.0f" .EntriesPerSec}}/s)</span>
  <span>dropped <b>{{.Dropped}}</b> ({{printf "%.1f" .DropsPerSec}}/s)</span>
  <span>log fill <b>{{printf "%.1f" .FillPercent}}%</b></span>
  <span>rotations <b>{{.Rotations}}</b></span>
  <span>counter <b>{{.CounterTicks}}</b> ticks</span>
</p>
<p class="summary">
  <span>threads <b>{{.Threads}}</b></span>
  <span>calls <b>{{.Calls}}</b></span>
  <span>in flight <b>{{.OpenFrames}}</b></span>
  <span>unmatched <b>{{.Unmatched}}</b></span>
</p>

<h2>Hot methods (live, by self time)</h2>
<table>
<tr><th>Function</th><th class="num">Calls</th><th class="num">Self</th><th class="num">Incl</th><th class="num">Self %</th></tr>
{{range .Funcs}}<tr><td><code>{{.Name}}</code></td><td class="num">{{.Calls}}</td><td class="num">{{.Self}}</td><td class="num">{{.Incl}}</td><td class="num">{{printf "%.2f" .SelfPercent}}%</td></tr>
{{end}}</table>

<p><small>auto-refreshes every {{.Refresh}}s — <a href="/metrics">/metrics</a> · <a href="/vars">/vars</a> · <a href="/profile.json">/profile.json</a> · <a href="/history.json">/history.json</a></small></p>
</body>
</html>
`))

type indexData struct {
	Refresh int
	Sample
	Threads    int
	Calls      uint64
	OpenFrames int
	Unmatched  int
	Funcs      []funcRowJSON
}

func (m *Monitor) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	t := m.Table(25)
	refresh := int(m.interval / time.Second)
	if refresh < 1 {
		refresh = 1
	}
	data := indexData{
		Refresh:    refresh,
		Sample:     m.Latest(),
		Threads:    t.Threads,
		Calls:      t.Calls,
		OpenFrames: t.OpenFrames,
		Unmatched:  t.Unmatched,
	}
	for _, f := range t.Funcs {
		data.Funcs = append(data.Funcs, funcRowJSON{
			Name:        f.Name,
			Calls:       f.Calls,
			Self:        f.Self,
			Incl:        f.Incl,
			SelfPercent: t.SelfPercent(f),
		})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTemplate.Execute(w, data)
}

// Server is a running live-monitor HTTP endpoint.
type Server struct {
	mon      *Monitor
	ln       net.Listener
	srv      *http.Server
	ownedMon bool
}

// Serve starts serving m's Handler on addr (e.g. ":7070" or
// "127.0.0.1:0"). The caller keeps ownership of the monitor.
func Serve(m *Monitor, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: m.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{mon: m, ln: ln, srv: srv}, nil
}

// ServeRecorder builds a monitor over rec, starts its sampling loop and
// serves it on addr — the one-call recorder serve hook. Close stops both
// the server and the monitor.
func ServeRecorder(rec *recorder.Recorder, addr string, opts ...Option) (*Server, error) {
	m := New(rec, opts...)
	m.Start()
	s, err := Serve(m, addr)
	if err != nil {
		m.Stop()
		return nil, err
	}
	s.ownedMon = true
	return s, nil
}

// Monitor returns the served monitor.
func (s *Server) Monitor() *Monitor { return s.mon }

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down (and stops the monitor if ServeRecorder
// created it).
func (s *Server) Close() error {
	err := s.srv.Close()
	if s.ownedMon {
		s.mon.Stop()
	}
	return err
}
