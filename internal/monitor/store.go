package monitor

import (
	"teeperf/internal/profilestore"
)

// StoreMetrics exports the profile history store's gauges in the same
// schema the monitor and agent use, so a store-backed agent surfaces its
// persistence health next to the session metrics.
func StoreMetrics(st profilestore.Stats) []Metric {
	return []Metric{
		{Name: "teeperf_store_tables", Help: "Live tables in the profile history store.",
			Kind: "gauge", Value: float64(st.Tables)},
		{Name: "teeperf_store_levels", Help: "Occupied compaction levels in the history store.",
			Kind: "gauge", Value: float64(st.Levels)},
		{Name: "teeperf_store_entries", Help: "Total entries persisted across live tables.",
			Kind: "gauge", Value: float64(st.Entries)},
		{Name: "teeperf_store_segments", Help: "Acknowledged segments in the history store.",
			Kind: "gauge", Value: float64(st.Segments)},
		{Name: "teeperf_store_compaction_backlog", Help: "Tables currently eligible as compaction inputs.",
			Kind: "gauge", Value: float64(st.Backlog)},
		{Name: "teeperf_store_compactions_total", Help: "Compaction steps completed since open.",
			Kind: "counter", Value: float64(st.Compactions)},
		{Name: "teeperf_store_cache_blocks", Help: "Decoded blocks held in the store's LRU cache.",
			Kind: "gauge", Value: float64(st.CacheLen)},
		{Name: "teeperf_store_cache_hit_rate", Help: "Block cache hit fraction since open.",
			Kind: "gauge", Value: st.HitRate()},
	}
}
