package monitor

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/counter"
	"teeperf/internal/recorder"
	"teeperf/internal/symtab"
)

// testRig is a recorder with a small registered program driven by probe
// hooks, the in-process equivalent of an instrumented workload.
type testRig struct {
	rec  *recorder.Recorder
	tab  *symtab.Table
	fns  map[string]uint64
	tick *counter.Virtual
}

func newRig(t *testing.T, capacity int, names ...string) *testRig {
	t.Helper()
	tab := symtab.New()
	fns := make(map[string]uint64, len(names))
	for i, n := range names {
		addr, err := tab.Register(n, 16, "rig.go", i+1)
		if err != nil {
			t.Fatal(err)
		}
		fns[n] = addr
	}
	tick := counter.NewVirtual(1)
	rec, err := recorder.New(tab,
		recorder.WithCapacity(capacity),
		recorder.WithCounterSource(tick),
		recorder.WithPID(424242),
	)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{rec: rec, tab: tab, fns: fns, tick: tick}
}

// runNested performs `loops` executions of main{ work{ leaf{} } work2{} }
// on one registered thread.
func (r *testRig) runNested(loops int) {
	th := r.rec.Thread()
	for i := 0; i < loops; i++ {
		th.Enter(r.fns["main"])
		th.Enter(r.fns["work"])
		th.Enter(r.fns["leaf"])
		r.tick.Advance(3)
		th.Exit(r.fns["leaf"])
		th.Exit(r.fns["work"])
		th.Enter(r.fns["work2"])
		r.tick.Advance(7)
		th.Exit(r.fns["work2"])
		th.Exit(r.fns["main"])
	}
}

// TestLiveConvergesToOffline is the acceptance test: a monitor tailing the
// log while writer goroutines run must converge to the offline analyzer's
// result for the same run — same top-5 hot methods, self time within 1%.
func TestLiveConvergesToOffline(t *testing.T) {
	rig := newRig(t, 1<<18, "main", "work", "leaf", "work2", "other")
	if err := rig.rec.Start(); err != nil {
		t.Fatal(err)
	}
	mon := New(rig.rec, WithInterval(2*time.Millisecond))
	mon.Start()

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rig.runNested(2000)
		}()
	}
	// A fourth thread with a different shape, left partially open.
	th := rig.rec.Thread()
	th.Enter(rig.fns["other"])
	rig.tick.Advance(100)
	wg.Wait()
	th.Exit(rig.fns["other"])

	if err := rig.rec.Stop(); err != nil {
		t.Fatal(err)
	}
	mon.Stop() // final drain

	live := mon.Table(0)
	offline, err := analyzer.Analyze(rig.rec.Log(), rig.tab)
	if err != nil {
		t.Fatal(err)
	}

	if live.Entries != rig.rec.Log().Len() {
		t.Fatalf("monitor observed %d entries, log has %d", live.Entries, rig.rec.Log().Len())
	}
	offFuncs := offline.Funcs()
	n := 5
	if n > len(offFuncs) {
		n = len(offFuncs)
	}
	if len(live.Funcs) < n {
		t.Fatalf("live table has %d functions, offline %d", len(live.Funcs), len(offFuncs))
	}
	for i := 0; i < n; i++ {
		lf, of := live.Funcs[i], offFuncs[i]
		if lf.Name != of.Name {
			t.Errorf("top-%d: live %q, offline %q", i+1, lf.Name, of.Name)
			continue
		}
		if of.Self == 0 {
			if lf.Self != 0 {
				t.Errorf("%s: live self %d, offline 0", lf.Name, lf.Self)
			}
			continue
		}
		rel := math.Abs(float64(lf.Self)-float64(of.Self)) / float64(of.Self)
		if rel > 0.01 {
			t.Errorf("%s: live self %d vs offline %d (%.2f%% off)", lf.Name, lf.Self, of.Self, 100*rel)
		}
	}
	if live.TotalTicks != offline.TotalTicks {
		t.Errorf("TotalTicks: live %d, offline %d", live.TotalTicks, offline.TotalTicks)
	}
}

func TestMonitorSamplesAndHistory(t *testing.T) {
	rig := newRig(t, 1<<16, "main", "work", "leaf", "work2")
	if err := rig.rec.Start(); err != nil {
		t.Fatal(err)
	}
	mon := New(rig.rec, WithInterval(time.Millisecond), WithHistorySize(8))
	mon.Start()
	rig.runNested(500)
	time.Sleep(25 * time.Millisecond)
	rig.runNested(500)
	if err := rig.rec.Stop(); err != nil {
		t.Fatal(err)
	}
	mon.Stop()

	s := mon.Latest()
	if s.Entries != 8*1000 {
		t.Errorf("Latest().Entries = %d, want 8000", s.Entries)
	}
	if s.Capacity != 1<<16 {
		t.Errorf("Capacity = %d", s.Capacity)
	}
	if s.FillPercent <= 0 {
		t.Errorf("FillPercent = %f", s.FillPercent)
	}
	if s.CounterTicks == 0 {
		t.Error("CounterTicks = 0")
	}

	hist := mon.History()
	if len(hist) == 0 || len(hist) > 8 {
		t.Fatalf("history length %d, want 1..8 (ring bound)", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].When.Before(hist[i-1].When) {
			t.Errorf("history not chronological at %d", i)
		}
		if hist[i].Entries < hist[i-1].Entries {
			t.Errorf("observed entries went backwards at %d", i)
		}
	}
}

func TestMonitorAcrossRotation(t *testing.T) {
	rig := newRig(t, 1<<16, "main", "work", "leaf", "work2")
	if err := rig.rec.Start(); err != nil {
		t.Fatal(err)
	}
	mon := New(rig.rec, WithInterval(time.Hour)) // poll manually
	rig.runNested(100)
	mon.Poll()
	if _, err := rig.rec.Rotate(); err != nil {
		t.Fatal(err)
	}
	rig.runNested(100)
	if _, err := rig.rec.Rotate(); err != nil {
		t.Fatal(err)
	}
	rig.runNested(100)
	if err := rig.rec.Stop(); err != nil {
		t.Fatal(err)
	}
	s := mon.Poll()
	if s.Rotations != 2 {
		t.Errorf("Rotations = %d, want 2", s.Rotations)
	}
	if want := uint64(300 * 8); s.Entries != want {
		t.Errorf("Entries across rotations = %d, want %d", s.Entries, want)
	}
	table := mon.Table(0)
	if table.Entries != 300*8 {
		t.Errorf("live table folded %d entries, want %d", table.Entries, 300*8)
	}
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServerEndpoints(t *testing.T) {
	rig := newRig(t, 1<<16, "main", "work", "leaf", "work2")
	if err := rig.rec.Start(); err != nil {
		t.Fatal(err)
	}
	srv, err := ServeRecorder(rig.rec, "127.0.0.1:0", WithInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rig.runNested(200)
	time.Sleep(10 * time.Millisecond)
	if err := rig.rec.Stop(); err != nil {
		t.Fatal(err)
	}

	metrics := fetch(t, srv.URL()+"/metrics")
	for _, w := range []string{
		`teeperf_entries_committed_total{session="main"} 1600`,
		`teeperf_entries_dropped_total{session="main"} 0`,
		"teeperf_log_fill_percent",
		"teeperf_counter_ticks_total",
		`teeperf_log_rotations_total{session="main"} 0`,
		"# TYPE teeperf_log_fill_percent gauge",
		"# HELP teeperf_entries_committed_total",
	} {
		if !strings.Contains(metrics, w) {
			t.Errorf("/metrics missing %q\n%s", w, metrics)
		}
	}

	var vars map[string]float64
	if err := json.Unmarshal([]byte(fetch(t, srv.URL()+"/vars")), &vars); err != nil {
		t.Fatalf("/vars is not JSON: %v", err)
	}
	if vars["teeperf_entries_committed_total"] != 1600 {
		t.Errorf("/vars entries = %f", vars["teeperf_entries_committed_total"])
	}

	var prof struct {
		PID       uint64 `json:"pid"`
		Functions []struct {
			Name  string `json:"name"`
			Calls uint64 `json:"calls"`
		} `json:"functions"`
		Stats struct {
			Entries uint64 `json:"entries"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(fetch(t, srv.URL()+"/profile.json")), &prof); err != nil {
		t.Fatalf("/profile.json is not JSON: %v", err)
	}
	if prof.PID != 424242 {
		t.Errorf("profile pid = %d", prof.PID)
	}
	if len(prof.Functions) == 0 || prof.Stats.Entries != 1600 {
		t.Errorf("profile incomplete: %+v", prof)
	}

	var hist []Sample
	if err := json.Unmarshal([]byte(fetch(t, srv.URL()+"/history.json")), &hist); err != nil {
		t.Fatalf("/history.json is not JSON: %v", err)
	}
	if len(hist) == 0 {
		t.Error("history empty after sampling")
	}

	index := fetch(t, srv.URL()+"/")
	for _, w := range []string{"teeperf live monitor", "Hot methods", "<code>work2</code>", "http-equiv=\"refresh\""} {
		if !strings.Contains(index, w) {
			t.Errorf("index page missing %q", w)
		}
	}
	if body := fetch(t, srv.URL()+"/profile.json?top=2"); strings.Count(body, "\"name\"") != 2 {
		t.Errorf("profile.json?top=2 did not limit functions:\n%s", body)
	}

	resp, err := http.Get(srv.URL() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", resp.StatusCode)
	}
}

func TestHandlerDirect(t *testing.T) {
	rig := newRig(t, 1<<12, "main", "work", "leaf", "work2")
	if err := rig.rec.Start(); err != nil {
		t.Fatal(err)
	}
	rig.runNested(10)
	if err := rig.rec.Stop(); err != nil {
		t.Fatal(err)
	}
	mon := New(rig.rec)
	rr := httptest.NewRecorder()
	mon.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), `teeperf_entries_committed_total{session="main"} 80`) {
		t.Errorf("direct /metrics = %d\n%s", rr.Code, rr.Body.String())
	}
}

func TestWriteTop(t *testing.T) {
	rig := newRig(t, 1<<12, "main", "work", "leaf", "work2")
	if err := rig.rec.Start(); err != nil {
		t.Fatal(err)
	}
	rig.runNested(50)
	if err := rig.rec.Stop(); err != nil {
		t.Fatal(err)
	}
	mon := New(rig.rec)
	var b strings.Builder
	if err := mon.WriteTop(&b, 3); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{"FUNCTION", "SELF%", "work2", "live"} {
		if !strings.Contains(out, w) {
			t.Errorf("WriteTop missing %q:\n%s", w, out)
		}
	}
	// top 3 of 4 functions: header+status lines plus exactly 3 rows
	if got := strings.Count(out, "\n"); got != 7 {
		t.Errorf("WriteTop line count = %d:\n%s", got, out)
	}
}

func TestMonitorStopIdempotent(t *testing.T) {
	rig := newRig(t, 1<<12, "main", "work", "leaf", "work2")
	if err := rig.rec.Start(); err != nil {
		t.Fatal(err)
	}
	mon := New(rig.rec, WithInterval(time.Millisecond))
	mon.Start()
	mon.Start() // no-op
	mon.Stop()
	mon.Stop() // no-op
	if err := rig.rec.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionLabelAndCheckpointMetrics covers the fleet-schema contract:
// every per-session series carries the configured session label, checkpoint
// gauges appear once checkpointing is configured, and /vars exposes the
// same values under bare names.
func TestSessionLabelAndCheckpointMetrics(t *testing.T) {
	rig := newRig(t, 1<<12, "main", "work", "leaf", "work2")
	if err := rig.rec.Start(); err != nil {
		t.Fatal(err)
	}
	rig.runNested(10)
	out := t.TempDir() + "/ckpt.teeperf"
	if err := rig.rec.StartCheckpoint(out, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := rig.rec.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if err := rig.rec.Stop(); err != nil {
		t.Fatal(err)
	}

	mon := New(rig.rec, WithSessionLabel("db-bench"))
	rr := httptest.NewRecorder()
	mon.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, w := range []string{
		`teeperf_entries_committed_total{session="db-bench"} 80`,
		`teeperf_checkpoint_passes_total{session="db-bench"}`,
		`teeperf_checkpoint_consecutive_failures{session="db-bench"} 0`,
		`teeperf_checkpoint_bytes_written_total{session="db-bench"}`,
		`teeperf_checkpoint_last_success_age_seconds{session="db-bench"}`,
		"# TYPE teeperf_checkpoint_passes_total counter",
	} {
		if !strings.Contains(body, w) {
			t.Errorf("/metrics missing %q\n%s", w, body)
		}
	}

	rr = httptest.NewRecorder()
	mon.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/vars", nil))
	var vars map[string]float64
	if err := json.Unmarshal(rr.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/vars is not JSON: %v", err)
	}
	if vars["teeperf_checkpoint_passes_total"] < 1 {
		t.Errorf("/vars checkpoint passes = %f, want >= 1", vars["teeperf_checkpoint_passes_total"])
	}
	if vars["teeperf_checkpoint_bytes_written_total"] <= 0 {
		t.Errorf("/vars checkpoint bytes = %f, want > 0", vars["teeperf_checkpoint_bytes_written_total"])
	}
	if age := vars["teeperf_checkpoint_last_success_age_seconds"]; age < 0 {
		t.Errorf("/vars checkpoint age = %f, want >= 0 after a pass", age)
	}
}
