package spdknvme

import (
	"errors"
	"testing"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/counter"
	"teeperf/internal/probe"
	"teeperf/internal/raceinfo"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

func testDevice(t *testing.T) (*tee.Host, *Device) {
	t.Helper()
	host := tee.NewHost(99)
	dev, err := NewDevice(host, DeviceConfig{Blocks: 1024, Latency: time.Microsecond, MaxIOPS: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	return host, dev
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(nil, DeviceConfig{}); err == nil {
		t.Error("nil host should fail")
	}
	host := tee.NewHost(1)
	dev, err := NewDevice(host, DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := dev.Config()
	if cfg.Blocks <= 0 || cfg.Latency <= 0 || cfg.MaxIOPS <= 0 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestQueuePairValidation(t *testing.T) {
	_, dev := testDevice(t)
	if _, err := dev.NewQueuePair(0); err == nil {
		t.Error("zero depth should fail")
	}
	if _, err := dev.NewQueuePair(99999); err == nil {
		t.Error("absurd depth should fail")
	}
}

func TestSubmitPollRoundTrip(t *testing.T) {
	_, dev := testDevice(t)
	qp, err := dev.NewQueuePair(4)
	if err != nil {
		t.Fatal(err)
	}
	wbuf := make([]byte, BlockSize)
	for i := range wbuf {
		wbuf[i] = byte(i * 7)
	}
	if err := qp.Submit(5, true, wbuf, 1); err != nil {
		t.Fatal(err)
	}
	waitAll(t, qp, 1)

	rbuf := make([]byte, BlockSize)
	if err := qp.Submit(5, false, rbuf, 2); err != nil {
		t.Fatal(err)
	}
	waitAll(t, qp, 1)
	for i := range rbuf {
		if rbuf[i] != wbuf[i] {
			t.Fatalf("readback mismatch at %d: %d != %d", i, rbuf[i], wbuf[i])
		}
	}
}

func waitAll(t *testing.T, qp *QueuePair, want int) {
	t.Helper()
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < want {
		comps, err := qp.Poll()
		if err != nil {
			t.Fatal(err)
		}
		got += len(comps)
		if time.Now().After(deadline) {
			t.Fatalf("completions stalled: %d/%d", got, want)
		}
	}
}

func TestSubmitErrors(t *testing.T) {
	_, dev := testDevice(t)
	qp, err := dev.NewQueuePair(1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	if err := qp.Submit(0, false, buf[:10], 0); err == nil {
		t.Error("short buffer should fail")
	}
	if err := qp.Submit(-1, false, buf, 0); !errors.Is(err, ErrBadLBA) {
		t.Errorf("negative lba: %v", err)
	}
	if err := qp.Submit(99999, false, buf, 0); !errors.Is(err, ErrBadLBA) {
		t.Errorf("huge lba: %v", err)
	}
	if err := qp.Submit(0, false, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := qp.Submit(1, false, buf, 1); !errors.Is(err, ErrQueueFull) {
		t.Errorf("full queue: %v", err)
	}
}

func TestDeviceLatencyGatesCompletion(t *testing.T) {
	host := tee.NewHost(1)
	dev, err := NewDevice(host, DeviceConfig{Blocks: 64, Latency: 50 * time.Millisecond, MaxIOPS: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	qp, err := dev.NewQueuePair(2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	if err := qp.Submit(0, false, buf, 0); err != nil {
		t.Fatal(err)
	}
	comps, err := qp.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 0 {
		t.Error("command completed before its service latency elapsed")
	}
	if qp.Inflight() != 1 {
		t.Errorf("inflight = %d, want 1", qp.Inflight())
	}
}

func TestTokenBucketCapsThroughput(t *testing.T) {
	if testing.Short() || raceinfo.Enabled {
		t.Skip("timing-sensitive; skipped under -race and -short")
	}
	host := tee.NewHost(1)
	dev, err := NewDevice(host, DeviceConfig{Blocks: 1024, Latency: time.Microsecond, MaxIOPS: 10000})
	if err != nil {
		t.Fatal(err)
	}
	qp, err := dev.NewQueuePair(64)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	done := 0
	t0 := time.Now()
	for done < 1500 {
		for qp.Inflight() < 64 {
			if err := qp.Submit(done%1024, false, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
		comps, err := qp.Poll()
		if err != nil {
			t.Fatal(err)
		}
		done += len(comps)
	}
	iops := float64(done) / time.Since(t0).Seconds()
	if iops > 20000 {
		t.Errorf("token bucket leaked: measured %.0f IOPS with a 10k cap", iops)
	}
}

// perfPipeline builds a full instrumented perf run.
func perfPipeline(t *testing.T, platform tee.Platform, spin bool, mode Mode, ops int) (*PerfConfig, *shmlog.Log, *symtab.Table) {
	t.Helper()
	host := tee.NewHost(4242)
	var enclOpts []tee.EnclaveOption
	if !spin {
		enclOpts = append(enclOpts, tee.WithoutSpin())
	}
	encl, err := tee.NewEnclave(platform, host, enclOpts...)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(host, DeviceConfig{Latency: 20 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	tab := symtab.New()
	if err := RegisterPerfSymbols(tab); err != nil {
		t.Fatal(err)
	}
	log, err := shmlog.New(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	var src counter.Source = counter.NewVirtual(1)
	if spin {
		src = counter.NewTSC()
	}
	rt, err := probe.New(log, src)
	if err != nil {
		t.Fatal(err)
	}
	return &PerfConfig{
		Device: dev,
		Thread: encl.Thread(),
		Hooks:  rt.Thread(),
		AddrOf: tab.Addr,
		Mode:   mode,
		Ops:    ops,
	}, log, tab
}

func TestPerfConfigValidation(t *testing.T) {
	if _, err := RunPerf(nil); err == nil {
		t.Error("nil config should fail")
	}
	if _, err := RunPerf(&PerfConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	cfg, _, _ := perfPipeline(t, tee.Native(), false, ModeNaive, 10)
	bad := *cfg
	bad.Mode = Mode(9)
	if _, err := RunPerf(&bad); err == nil {
		t.Error("bad mode should fail")
	}
	bad2 := *cfg
	bad2.ReadPct = -5
	if _, err := RunPerf(&bad2); err == nil {
		t.Error("bad read pct should fail")
	}
	bad3 := *cfg
	bad3.AddrOf = symtab.New().Addr
	if _, err := RunPerf(&bad3); err == nil {
		t.Error("unregistered symbols should fail")
	}
}

func TestPerfRunCompletesAllOps(t *testing.T) {
	for _, mode := range []Mode{ModeNaive, ModeOptimized} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg, log, tab := perfPipeline(t, tee.SGXv1(), false, mode, 500)
			res, err := RunPerf(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 500 {
				t.Errorf("Ops = %d, want 500", res.Ops)
			}
			if res.Reads+res.Writes != 500 {
				t.Errorf("reads+writes = %d", res.Reads+res.Writes)
			}
			frac := float64(res.Reads) / float64(res.Ops)
			if frac < 0.70 || frac > 0.90 {
				t.Errorf("read fraction %.2f, want ~0.8", frac)
			}
			p, err := analyzer.Analyze(log, tab)
			if err != nil {
				t.Fatal(err)
			}
			if p.Truncated != 0 || p.Unmatched != 0 {
				t.Errorf("profile unbalanced: %d/%d", p.Truncated, p.Unmatched)
			}
			// The Fig 6 stacks must be present.
			for _, sym := range []string{"work_fn", "check_io", "getpid", "rdtsc", "allocate_request"} {
				if _, ok := p.Func(sym); !ok {
					t.Errorf("%s missing from profile", sym)
				}
			}
		})
	}
}

func TestNaiveVsOptimizedOCalls(t *testing.T) {
	// The whole case study in one assertion: the naive port performs
	// getpid+rdtsc OCALLs per I/O; the optimized port a handful total.
	const ops = 400
	naiveCfg, _, _ := perfPipeline(t, tee.SGXv1(), false, ModeNaive, ops)
	naive, err := RunPerf(naiveCfg)
	if err != nil {
		t.Fatal(err)
	}
	optCfg, _, _ := perfPipeline(t, tee.SGXv1(), false, ModeOptimized, ops)
	opt, err := RunPerf(optCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Naive: >= getpidPerAlloc + 2 rdtsc per op.
	if naive.OCalls < uint64(ops*getpidPerAlloc) {
		t.Errorf("naive OCalls = %d, want >= %d", naive.OCalls, ops*getpidPerAlloc)
	}
	// Optimized: 1 getpid + periodic tick corrections only.
	if opt.OCalls > uint64(ops/10+10) {
		t.Errorf("optimized OCalls = %d, want near zero", opt.OCalls)
	}
	if naive.OCalls < 50*opt.OCalls {
		t.Errorf("OCall reduction too small: naive=%d optimized=%d", naive.OCalls, opt.OCalls)
	}
}

func TestPerfDeterministicChecksum(t *testing.T) {
	a, _, _ := perfPipeline(t, tee.Native(), false, ModeNaive, 300)
	resA, err := RunPerf(a)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := perfPipeline(t, tee.Native(), false, ModeNaive, 300)
	resB, err := RunPerf(b)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Checksum != resB.Checksum || resA.Reads != resB.Reads {
		t.Errorf("runs differ: %+v vs %+v", resA, resB)
	}
}

// TestFig6Hotspots reproduces the Fig 6 (top) profile with real injected
// penalties: on the naive SGX port, getpid dominates self time with rdtsc
// second; after the optimization both fall to ~0 (Fig 6 bottom).
func TestFig6Hotspots(t *testing.T) {
	if testing.Short() || raceinfo.Enabled {
		t.Skip("timing-sensitive; skipped under -race and -short")
	}
	run := func(mode Mode) *analyzer.Profile {
		cfg, log, tab := perfPipeline(t, tee.SGXv1(), true, mode, 1500)
		if _, err := RunPerf(cfg); err != nil {
			t.Fatal(err)
		}
		p, err := analyzer.Analyze(log, tab)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	naive := run(ModeNaive)
	gp := naive.SelfFraction("getpid")
	rd := naive.SelfFraction("rdtsc")
	if gp < 0.4 {
		t.Errorf("naive getpid self fraction = %.2f, want dominant (paper: ~0.72)", gp)
	}
	if rd <= 0 || rd >= gp {
		t.Errorf("naive rdtsc fraction = %.2f, want > 0 and below getpid (%.2f)", rd, gp)
	}
	top := naive.Top(1)
	if len(top) == 0 || top[0].Name != "getpid" {
		t.Errorf("naive hottest = %v, want getpid", top)
	}

	opt := run(ModeOptimized)
	if f := opt.SelfFraction("getpid"); f > 0.05 {
		t.Errorf("optimized getpid fraction = %.2f, want ~0", f)
	}
	if f := opt.SelfFraction("rdtsc"); f > 0.05 {
		t.Errorf("optimized rdtsc fraction = %.2f, want ~0", f)
	}
}

// TestSPDKSpeedup verifies the §IV-C throughput story: naive inside SGX is
// an order of magnitude below native; optimized recovers to near native.
func TestSPDKSpeedup(t *testing.T) {
	if testing.Short() || raceinfo.Enabled {
		t.Skip("timing-sensitive; skipped under -race and -short")
	}
	run := func(platform tee.Platform, mode Mode) PerfResult {
		cfg, _, _ := perfPipeline(t, platform, true, mode, 4000)
		res, err := RunPerf(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	native := run(tee.Native(), ModeNaive) // native: syscalls are cheap either way
	naive := run(tee.SGXv1(), ModeNaive)
	opt := run(tee.SGXv1(), ModeOptimized)

	if naive.IOPS*2 > native.IOPS {
		t.Errorf("naive SGX IOPS %.0f not well below native %.0f", naive.IOPS, native.IOPS)
	}
	if opt.IOPS < 0.6*native.IOPS {
		t.Errorf("optimized IOPS %.0f did not recover toward native %.0f", opt.IOPS, native.IOPS)
	}
	if speedup := opt.IOPS / naive.IOPS; speedup < 3 {
		t.Errorf("optimized/naive speedup = %.1fx, want substantial (paper: 14.7x)", speedup)
	}
}
