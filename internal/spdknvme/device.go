// Package spdknvme is the SPDK stand-in for the paper's §IV-C case study:
// a user-space NVMe driver model with polled queue pairs and a DMA-style
// data path that needs no syscalls — which is exactly why the two stray
// OCALLs on the naive TEE port (getpid during request allocation, rdtsc
// for latency timestamps) dominate its profile, and why caching them
// returns the enclave build to native throughput.
package spdknvme

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"teeperf/internal/tee"
)

// Errors returned by the queue pair.
var (
	// ErrQueueFull is returned when the submission queue is at depth.
	ErrQueueFull = errors.New("spdknvme: submission queue full")
	// ErrBadLBA is returned for out-of-range block addresses.
	ErrBadLBA = errors.New("spdknvme: lba out of range")
)

// BlockSize is the device's logical block size (the paper's 4 KiB I/Os).
const BlockSize = 4096

// DeviceConfig describes the simulated NVMe SSD.
type DeviceConfig struct {
	// Blocks is the namespace capacity in logical blocks (default 65536,
	// i.e. 256 MiB).
	Blocks int
	// Latency is the per-command device service latency (default 120µs,
	// NVMe-flash-like).
	Latency time.Duration
	// MaxIOPS caps device throughput (default 240000, in the Intel DC
	// P3700 mixed-workload range the paper's native numbers come from).
	MaxIOPS float64
}

func (c DeviceConfig) withDefaults() DeviceConfig {
	if c.Blocks <= 0 {
		c.Blocks = 65536
	}
	if c.Latency <= 0 {
		c.Latency = 120 * time.Microsecond
	}
	if c.MaxIOPS <= 0 {
		c.MaxIOPS = 240000
	}
	return c
}

// Device is the simulated PCIe NVMe SSD. Its storage lives in host memory
// (the DMA region); command completion is governed by a fixed service
// latency and a token-bucket throughput cap.
type Device struct {
	cfg  DeviceConfig
	host *tee.Host

	mu      sync.Mutex
	data    []byte
	tokens  float64
	lastRef uint64 // host nanos of the last token refill
}

// NewDevice attaches a simulated SSD to the host.
func NewDevice(host *tee.Host, cfg DeviceConfig) (*Device, error) {
	if host == nil {
		return nil, errors.New("spdknvme: nil host")
	}
	c := cfg.withDefaults()
	d := &Device{
		cfg:     c,
		host:    host,
		data:    make([]byte, c.Blocks*BlockSize),
		tokens:  1,
		lastRef: host.NowNanos(),
	}
	// Deterministic initial content.
	state := uint64(0x6e766d65) // "nvme"
	for i := 0; i < len(d.data); i += 512 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		d.data[i] = byte(z)
	}
	return d, nil
}

// Config returns the device parameters in effect.
func (d *Device) Config() DeviceConfig { return d.cfg }

// takeToken consumes one I/O token if available at host time now.
func (d *Device) takeToken(now uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	elapsed := float64(now-d.lastRef) / 1e9
	d.lastRef = now
	d.tokens += elapsed * d.cfg.MaxIOPS
	if burst := d.cfg.MaxIOPS / 1000; d.tokens > burst { // 1ms of burst
		d.tokens = burst
	}
	if d.tokens < 1 {
		return false
	}
	d.tokens--
	return true
}

// dma copies a block between the device and a host-memory buffer: SPDK's
// syscall-free data path.
func (d *Device) dma(lba int, buf []byte, write bool) error {
	if lba < 0 || lba >= d.cfg.Blocks {
		return fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	off := lba * BlockSize
	d.mu.Lock()
	defer d.mu.Unlock()
	if write {
		copy(d.data[off:off+BlockSize], buf)
	} else {
		copy(buf, d.data[off:off+BlockSize])
	}
	return nil
}

// request is one in-flight NVMe command.
type request struct {
	lba     int
	write   bool
	buf     []byte
	readyAt uint64
	// tag carries driver context back on completion.
	tag int
}

// QueuePair is one submission/completion queue pair, polled by exactly one
// driver thread (SPDK's threading model).
type QueuePair struct {
	dev      *Device
	depth    int
	inflight []request
}

// NewQueuePair allocates a queue pair of the given depth.
func (d *Device) NewQueuePair(depth int) (*QueuePair, error) {
	if depth <= 0 || depth > 4096 {
		return nil, fmt.Errorf("spdknvme: bad queue depth %d", depth)
	}
	return &QueuePair{dev: d, depth: depth, inflight: make([]request, 0, depth)}, nil
}

// Depth returns the configured queue depth.
func (qp *QueuePair) Depth() int { return qp.depth }

// Inflight returns the number of submitted, uncompleted commands.
func (qp *QueuePair) Inflight() int { return len(qp.inflight) }

// Submit queues one command. buf must be BlockSize bytes of host (DMA)
// memory.
func (qp *QueuePair) Submit(lba int, write bool, buf []byte, tag int) error {
	if len(qp.inflight) >= qp.depth {
		return ErrQueueFull
	}
	if len(buf) != BlockSize {
		return fmt.Errorf("spdknvme: buffer must be %d bytes, got %d", BlockSize, len(buf))
	}
	if lba < 0 || lba >= qp.dev.cfg.Blocks {
		return fmt.Errorf("%w: %d", ErrBadLBA, lba)
	}
	qp.inflight = append(qp.inflight, request{
		lba:     lba,
		write:   write,
		buf:     buf,
		readyAt: qp.dev.host.NowNanos() + uint64(qp.dev.cfg.Latency),
		tag:     tag,
	})
	return nil
}

// Completion reports one finished command.
type Completion struct {
	Tag   int
	LBA   int
	Write bool
}

// Poll completes every command whose service latency elapsed and for which
// the device has throughput tokens, performing the DMA copies. It returns
// the completions in submission order.
func (qp *QueuePair) Poll() ([]Completion, error) {
	now := qp.dev.host.NowNanos()
	var done []Completion
	remaining := qp.inflight[:0]
	blocked := false
	for _, req := range qp.inflight {
		if blocked || req.readyAt > now || !qp.dev.takeToken(now) {
			// Preserve ordering: once one command stalls, later ones
			// wait behind it.
			blocked = true
			remaining = append(remaining, req)
			continue
		}
		if err := qp.dev.dma(req.lba, req.buf, req.write); err != nil {
			return nil, err
		}
		done = append(done, Completion{Tag: req.tag, LBA: req.lba, Write: req.write})
	}
	qp.inflight = remaining
	return done, nil
}
