package spdknvme

import (
	"errors"
	"fmt"
	"time"

	"teeperf/internal/probe"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

// Mode selects the TEE port variant of the perf tool.
type Mode int

// Port variants: Naive issues a getpid OCALL per request allocation (the
// DPDK mempool ownership checks) and an rdtsc OCALL per timestamp;
// Optimized applies the paper's fixes — cache the PID after the first call
// and cache the timestamp with periodic correction.
const (
	ModeNaive Mode = iota + 1
	ModeOptimized
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNaive:
		return "naive"
	case ModeOptimized:
		return "optimized"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// getpidPerAlloc is how many process-identity checks one request
// allocation performs (DPDK's mempool ownership audit).
const getpidPerAlloc = 2

// tickCorrectionInterval is how often the optimized timestamp cache
// refreshes from the real counter ("caching with correcting after a
// specific amount of calls", §IV-C).
const tickCorrectionInterval = 1024

// Fig 6 call-graph symbols.
const (
	symMain          = "main"
	symEALInit       = "eal_init"
	symEnvInit       = "env_init"
	symRegisterCtrls = "register_controllers"
	symProbe         = "probe"
	symProbeInternal = "probe_internal"
	symCtrlrInit     = "ctrlr_process_init"
	symWorkFn        = "work_fn"
	symCheckIO       = "check_io"
	symQPairComplete = "qpair_process_completions"
	symTransComplete = "transport_qpair_process_completions"
	symPcieComplete  = "pcie_qpair_process_completions"
	symPcieTracker   = "pcie_qpair_complete_tracker"
	symIOComplete    = "io_complete"
	symTaskComplete  = "task_complete"
	symSubmitSingle  = "submit_single_io"
	symNsCmdRead     = "ns_cmd_read_with_md"
	symNsCmdWrite    = "ns_cmd_write_with_md"
	symNvmeNsCmdRW   = "_nvme_ns_cmd_rw"
	symAllocRequest  = "allocate_request"
	symGetpid        = "getpid"
	symQPairSubmit   = "qpair_submit_request"
	symTransSubmit   = "transport_qpair_submit_request"
	symPcieSubmit    = "pcie_qpair_submit_request"
	symGetTicks      = "get_ticks"
	symTimerCycles   = "get_timer_cycles"
	symTSCCycles     = "get_tsc_cycles"
	symRdtsc         = "rdtsc"
)

// PerfSymbols lists every function instrumented by the perf tool.
func PerfSymbols() []string {
	return []string{
		symMain, symEALInit, symEnvInit, symRegisterCtrls, symProbe,
		symProbeInternal, symCtrlrInit, symWorkFn, symCheckIO,
		symQPairComplete, symTransComplete, symPcieComplete,
		symPcieTracker, symIOComplete, symTaskComplete, symSubmitSingle,
		symNsCmdRead, symNsCmdWrite, symNvmeNsCmdRW, symAllocRequest,
		symGetpid, symQPairSubmit, symTransSubmit, symPcieSubmit,
		symGetTicks, symTimerCycles, symTSCCycles, symRdtsc,
	}
}

// RegisterPerfSymbols adds the perf tool's functions to the symbol table
// (idempotent).
func RegisterPerfSymbols(tab *symtab.Table) error {
	for i, name := range PerfSymbols() {
		if _, ok := tab.Lookup(name); ok {
			continue
		}
		if _, err := tab.Register(name, 64, "spdk/examples/nvme/perf/perf.c", 50+5*i); err != nil {
			return fmt.Errorf("spdknvme: register %s: %w", name, err)
		}
	}
	return nil
}

// PerfConfig configures one perf-tool run.
type PerfConfig struct {
	// Device is the SSD under test.
	Device *Device
	// Thread is the enclave execution context.
	Thread *tee.Thread
	// Hooks receives instrumentation events.
	Hooks probe.Hooks
	// AddrOf resolves the registered perf symbols.
	AddrOf func(string) uint64
	// Mode selects naive or optimized (default naive).
	Mode Mode
	// Ops is the number of I/Os to complete (default 20000).
	Ops int
	// QueueDepth is the submission queue depth (default 32).
	QueueDepth int
	// ReadPct is the read percentage (default 80, the paper's mix).
	ReadPct int
	// Seed makes the LBA stream deterministic.
	Seed uint64
}

func (c *PerfConfig) withDefaults() (PerfConfig, error) {
	if c == nil {
		return PerfConfig{}, errors.New("spdknvme: nil config")
	}
	out := *c
	if out.Device == nil || out.Thread == nil || out.Hooks == nil || out.AddrOf == nil {
		return PerfConfig{}, errors.New("spdknvme: config needs Device, Thread, Hooks and AddrOf")
	}
	if out.Mode == 0 {
		out.Mode = ModeNaive
	}
	if out.Mode != ModeNaive && out.Mode != ModeOptimized {
		return PerfConfig{}, fmt.Errorf("spdknvme: bad mode %d", out.Mode)
	}
	if out.Ops <= 0 {
		out.Ops = 20000
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 32
	}
	if out.ReadPct == 0 {
		out.ReadPct = 80
	}
	if out.ReadPct < 0 || out.ReadPct > 100 {
		return PerfConfig{}, fmt.Errorf("spdknvme: read pct %d out of range", out.ReadPct)
	}
	if out.Seed == 0 {
		out.Seed = 0x73706466
	}
	return out, nil
}

// PerfResult reports the run like the SPDK perf tool does.
type PerfResult struct {
	Mode      Mode
	Ops       int
	Reads     int
	Writes    int
	Elapsed   time.Duration
	IOPS      float64
	MiBPerSec float64
	// OCalls is the number of world switches the run performed (getpid +
	// rdtsc on the naive port; almost none when optimized).
	OCalls   uint64
	Checksum uint64
}

// driver bundles the run state.
type driver struct {
	cfg   PerfConfig
	addrs map[string]uint64
	h     probe.Hooks
	th    *tee.Thread
	qp    *QueuePair

	// PID source (the naive/optimized difference #1).
	pidCached bool
	cachedPID int

	// Tick source (difference #2).
	tickCalls   int
	cachedTicks uint64

	rng uint64
	buf []byte

	completed int
	reads     int
	writes    int
	checksum  uint64
}

// RunPerf executes the perf benchmark: a random read/write mix at fixed
// queue depth, with the Fig 6 call structure.
func RunPerf(cfg *PerfConfig) (PerfResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return PerfResult{}, err
	}
	addrs := make(map[string]uint64, len(PerfSymbols()))
	for _, s := range PerfSymbols() {
		a := c.AddrOf(s)
		if a == 0 {
			return PerfResult{}, fmt.Errorf("spdknvme: symbol %q not registered", s)
		}
		addrs[s] = a
	}
	d := &driver{
		cfg:   c,
		addrs: addrs,
		h:     c.Hooks,
		th:    c.Thread,
		rng:   c.Seed,
		buf:   make([]byte, BlockSize),
	}

	d.enter(symMain)
	ocallsBefore := c.Thread.Enclave().Snapshot().OCalls
	if err := d.initController(); err != nil {
		d.exit(symMain)
		return PerfResult{}, err
	}
	t0 := time.Now()
	if err := d.workFn(); err != nil {
		d.exit(symMain)
		return PerfResult{}, err
	}
	elapsed := time.Since(t0)
	d.exit(symMain)
	d.th.Exit()

	res := PerfResult{
		Mode:     c.Mode,
		Ops:      d.completed,
		Reads:    d.reads,
		Writes:   d.writes,
		Elapsed:  elapsed,
		Checksum: d.checksum,
		OCalls:   c.Thread.Enclave().Snapshot().OCalls - ocallsBefore,
	}
	if elapsed > 0 {
		res.IOPS = float64(d.completed) / elapsed.Seconds()
		res.MiBPerSec = res.IOPS * BlockSize / (1 << 20)
	}
	return res, nil
}

func (d *driver) enter(sym string) { d.h.Enter(d.addrs[sym]) }
func (d *driver) exit(sym string)  { d.h.Exit(d.addrs[sym]) }

// initController mirrors the init stack at the right of Fig 6.
func (d *driver) initController() error {
	d.enter(symEALInit)
	d.enter(symEnvInit)
	d.exit(symEnvInit)
	d.exit(symEALInit)

	d.enter(symRegisterCtrls)
	d.enter(symProbe)
	d.enter(symProbeInternal)
	d.enter(symCtrlrInit)
	qp, err := d.cfg.Device.NewQueuePair(d.cfg.QueueDepth)
	d.exit(symCtrlrInit)
	d.exit(symProbeInternal)
	d.exit(symProbe)
	d.exit(symRegisterCtrls)
	if err != nil {
		return err
	}
	d.qp = qp
	return nil
}

// getpid performs the process-identity check: an OCALL per call on the
// naive port, one OCALL ever on the optimized port.
func (d *driver) getpid() int {
	d.enter(symGetpid)
	var pid int
	if d.cfg.Mode == ModeOptimized && d.pidCached {
		pid = d.cachedPID
	} else {
		pid = d.th.Getpid()
		d.cachedPID = pid
		d.pidCached = true
	}
	d.exit(symGetpid)
	return pid
}

// getTicks reads the timestamp through the Fig 6 chain
// get_ticks -> get_timer_cycles -> get_tsc_cycles -> rdtsc.
func (d *driver) getTicks() uint64 {
	d.enter(symGetTicks)
	d.enter(symTimerCycles)
	d.enter(symTSCCycles)
	d.enter(symRdtsc)
	var t uint64
	if d.cfg.Mode == ModeOptimized {
		d.tickCalls++
		if d.cachedTicks == 0 || d.tickCalls%tickCorrectionInterval == 0 {
			d.cachedTicks = d.th.Rdtsc()
		} else {
			d.cachedTicks++ // estimated advance between corrections
		}
		t = d.cachedTicks
	} else {
		t = d.th.Rdtsc()
	}
	d.exit(symRdtsc)
	d.exit(symTSCCycles)
	d.exit(symTimerCycles)
	d.exit(symGetTicks)
	return t
}

// submitSingleIO issues the next random I/O: the Fig 6 submission stack.
func (d *driver) submitSingleIO(tag int) error {
	d.enter(symSubmitSingle)
	t := d.getTicks()
	_ = t // latency bookkeeping; excluded from the checksum for determinism

	d.rng += 0x9e3779b97f4a7c15
	z := d.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	lba := int(z % uint64(d.cfg.Device.Config().Blocks))
	write := int(z>>32%100) >= d.cfg.ReadPct

	cmdSym := symNsCmdRead
	if write {
		cmdSym = symNsCmdWrite
		d.buf[0] = byte(z)
	}
	d.enter(cmdSym)
	d.enter(symNvmeNsCmdRW)

	// allocate_request: the DPDK mempool ownership checks — getpid per
	// segment (the paper's 72% hotspot on the naive port).
	d.enter(symAllocRequest)
	var pidSum int
	for i := 0; i < getpidPerAlloc; i++ {
		pidSum += d.getpid()
	}
	d.checksum += uint64(pidSum)
	d.exit(symAllocRequest)

	d.enter(symQPairSubmit)
	d.enter(symTransSubmit)
	d.enter(symPcieSubmit)
	err := d.qp.Submit(lba, write, d.buf, tag)
	d.exit(symPcieSubmit)
	d.exit(symTransSubmit)
	d.exit(symQPairSubmit)

	d.exit(symNvmeNsCmdRW)
	d.exit(cmdSym)
	d.exit(symSubmitSingle)
	if err != nil {
		return err
	}
	if write {
		d.writes++
	} else {
		d.reads++
	}
	return nil
}

// workFn is the polling loop (Fig 6's root of the hot stacks).
func (d *driver) workFn() error {
	d.enter(symWorkFn)
	defer d.exit(symWorkFn)

	// Prime the queue.
	for i := 0; i < d.cfg.QueueDepth && i < d.cfg.Ops; i++ {
		if err := d.submitSingleIO(i); err != nil {
			return err
		}
	}
	issued := d.qp.Inflight()

	idlePolls := 0
	for d.completed < d.cfg.Ops {
		d.enter(symCheckIO)
		d.enter(symQPairComplete)
		d.enter(symTransComplete)
		d.enter(symPcieComplete)
		completions, err := d.qp.Poll()
		d.exit(symPcieComplete)
		d.exit(symTransComplete)
		d.exit(symQPairComplete)
		if err != nil {
			d.exit(symCheckIO)
			return err
		}

		for _, comp := range completions {
			d.enter(symPcieTracker)
			d.enter(symIOComplete)
			d.enter(symTaskComplete)
			t := d.getTicks()
			_ = t
			d.checksum += uint64(comp.LBA)
			d.completed++
			if d.completed+d.qp.Inflight() < d.cfg.Ops && issued < d.cfg.Ops {
				if err := d.submitSingleIO(issued); err != nil {
					d.exit(symTaskComplete)
					d.exit(symIOComplete)
					d.exit(symPcieTracker)
					d.exit(symCheckIO)
					return err
				}
				issued++
			}
			d.exit(symTaskComplete)
			d.exit(symIOComplete)
			d.exit(symPcieTracker)
		}
		d.exit(symCheckIO)

		if len(completions) == 0 {
			idlePolls++
			if idlePolls > 1<<26 {
				return errors.New("spdknvme: device stalled")
			}
		} else {
			idlePolls = 0
		}
		d.th.Safepoint()
	}
	return nil
}
