package phoenix

import (
	"fmt"

	"teeperf/internal/tee"
)

// KMeans returns the kmeans workload: Lloyd's algorithm on 3-dimensional
// integer points (k=8, fixed iteration count), with per-iteration
// assignment and update functions and chunk-granular assignment calls.
func KMeans() Workload {
	return Workload{
		Name:    "kmeans",
		Symbols: []string{"kmeans", "km_assign", "km_assign_chunk", "km_update"},
		New:     newKMeans,
	}
}

const (
	kmK          = 8
	kmDim        = 3
	kmIterations = 5
	kmChunk      = 1024 // points per assignment call
)

func newKMeans(cfg Config, scale int) (Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("phoenix: scale must be >= 1, got %d", scale)
	}
	addrs, err := cfg.resolve("kmeans", "km_assign", "km_assign_chunk", "km_update")
	if err != nil {
		return nil, err
	}
	nPoints := 40000 * scale
	buf, err := cfg.Enclave.Alloc(nPoints * kmDim * 4)
	if err != nil {
		return nil, err
	}
	points := make([]int32, nPoints*kmDim)
	state := uint64(0x6b6d6e73) // "kmns"
	for i := range points {
		points[i] = int32(splitmix64(&state) % 4096)
	}

	var (
		fnMain   = addrs["kmeans"]
		fnAssign = addrs["km_assign"]
		fnChunk  = addrs["km_assign_chunk"]
		fnUpdate = addrs["km_update"]
	)
	return func(th *tee.Thread) (uint64, error) {
		h := cfg.Hooks
		h.Enter(fnMain)
		var centroids [kmK][kmDim]int64
		for c := 0; c < kmK; c++ {
			for d := 0; d < kmDim; d++ {
				centroids[c][d] = int64(points[(c*997+d)%len(points)])
			}
		}
		assign := make([]uint8, nPoints)

		for iter := 0; iter < kmIterations; iter++ {
			h.Enter(fnAssign)
			for start := 0; start < nPoints; start += kmChunk {
				end := start + kmChunk
				if end > nPoints {
					end = nPoints
				}
				h.Enter(fnChunk)
				if err := buf.TouchRange(th, start*kmDim*4, (end-start)*kmDim*4); err != nil {
					h.Exit(fnChunk)
					h.Exit(fnAssign)
					h.Exit(fnMain)
					return 0, err
				}
				for p := start; p < end; p++ {
					best, bestDist := 0, int64(1)<<62
					for c := 0; c < kmK; c++ {
						var dist int64
						for d := 0; d < kmDim; d++ {
							diff := int64(points[p*kmDim+d]) - centroids[c][d]
							dist += diff * diff
						}
						if dist < bestDist {
							best, bestDist = c, dist
						}
					}
					assign[p] = uint8(best)
				}
				h.Exit(fnChunk)
				th.Safepoint()
			}
			h.Exit(fnAssign)

			h.Enter(fnUpdate)
			var sums [kmK][kmDim]int64
			var counts [kmK]int64
			for p := 0; p < nPoints; p++ {
				c := assign[p]
				counts[c]++
				for d := 0; d < kmDim; d++ {
					sums[c][d] += int64(points[p*kmDim+d])
				}
			}
			for c := 0; c < kmK; c++ {
				if counts[c] == 0 {
					continue
				}
				for d := 0; d < kmDim; d++ {
					centroids[c][d] = sums[c][d] / counts[c]
				}
			}
			h.Exit(fnUpdate)
		}

		var checksum uint64
		for c := 0; c < kmK; c++ {
			for d := 0; d < kmDim; d++ {
				checksum = checksum*31 + uint64(centroids[c][d])
			}
		}
		h.Exit(fnMain)
		return checksum, nil
	}, nil
}
