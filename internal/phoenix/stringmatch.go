package phoenix

import (
	"fmt"

	"teeperf/internal/tee"
)

// StringMatch returns the string_match workload: every candidate word in
// the input stream is hashed and compared against four target keys, with a
// probe-visible function per word and per comparison. This is the
// call-densest member of the suite — the paper's 5.7x worst case for
// TEE-Perf — because the injected code runs on each of the millions of
// tiny calls.
func StringMatch() Workload {
	return Workload{
		Name:    "string_match",
		Symbols: []string{"string_match", "sm_process_word", "sm_hash", "sm_compare"},
		New:     newStringMatch,
	}
}

func newStringMatch(cfg Config, scale int) (Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("phoenix: scale must be >= 1, got %d", scale)
	}
	addrs, err := cfg.resolve("string_match", "sm_process_word", "sm_hash", "sm_compare")
	if err != nil {
		return nil, err
	}
	// Word stream: fixed 12-byte pseudo-words.
	const wordLen = 12
	words := 20000 * scale
	buf, err := cfg.Enclave.Alloc(words * wordLen)
	if err != nil {
		return nil, err
	}
	data := buf.Data()
	fillBytes(data, 0x73747269) // "stri"
	// Plant the four target keys at deterministic positions so matches
	// exist (as in the original, which searches for specific keys).
	keys := [4]uint64{}
	state := uint64(0x6b657973)
	for i := range keys {
		keys[i] = splitmix64(&state)
	}
	for i := 0; i < 4; i++ {
		pos := (i*words/5 + 7) * wordLen
		k := keys[i]
		for b := 0; b < 8; b++ {
			data[pos+b] = byte(k >> (8 * b))
		}
	}

	var (
		fnMain    = addrs["string_match"]
		fnProcess = addrs["sm_process_word"]
		fnHash    = addrs["sm_hash"]
		fnCompare = addrs["sm_compare"]
	)
	return func(th *tee.Thread) (uint64, error) {
		h := cfg.Hooks
		h.Enter(fnMain)
		var matches, checksum uint64
		for w := 0; w < words; w++ {
			off := w * wordLen
			if off%(4096*4) == 0 {
				span := 4096 * 4
				if rest := len(data) - off; rest < span {
					span = rest
				}
				if err := buf.TouchRange(th, off, span); err != nil {
					h.Exit(fnMain)
					return 0, err
				}
				th.Safepoint()
			}
			h.Enter(fnProcess)

			h.Enter(fnHash)
			// Raw 8-byte key for comparison, plus an FNV mix over the
			// whole word (the "encrypt the word" work of the original).
			var hash uint64
			for b := 0; b < 8; b++ {
				hash |= uint64(data[off+b]) << (8 * b)
			}
			mix := uint64(1469598103934665603)
			for b := 0; b < wordLen; b++ {
				mix = (mix ^ uint64(data[off+b])) * 1099511628211
			}
			h.Exit(fnHash)

			for k := 0; k < 4; k++ {
				h.Enter(fnCompare)
				if hash == keys[k] {
					matches++
				}
				h.Exit(fnCompare)
			}
			checksum += hash ^ (mix >> 32)
			h.Exit(fnProcess)
		}
		h.Exit(fnMain)
		return checksum + matches<<32, nil
	}, nil
}
