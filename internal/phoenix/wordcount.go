package phoenix

import (
	"fmt"

	"teeperf/internal/tee"
)

// WordCount returns the word_count workload: tokenize a synthetic text and
// count word frequencies in a hash table, with a probe-visible call per
// inserted word — call-dense, but with more work per call than
// string_match.
func WordCount() Workload {
	return Workload{
		Name:    "word_count",
		Symbols: []string{"word_count", "wc_tokenize_chunk", "wc_insert"},
		New:     newWordCount,
	}
}

func newWordCount(cfg Config, scale int) (Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("phoenix: scale must be >= 1, got %d", scale)
	}
	addrs, err := cfg.resolve("word_count", "wc_tokenize_chunk", "wc_insert")
	if err != nil {
		return nil, err
	}
	// Synthetic text: lowercase letters with spaces roughly every 3-10
	// characters, deterministic.
	textLen := 128 * 1024 * scale
	buf, err := cfg.Enclave.Alloc(textLen)
	if err != nil {
		return nil, err
	}
	text := buf.Data()
	state := uint64(0x776f7264) // "word"
	pos := 0
	for pos < textLen {
		wl := int(splitmix64(&state)%8) + 3
		for i := 0; i < wl && pos < textLen; i++ {
			text[pos] = byte('a' + splitmix64(&state)%26)
			pos++
		}
		if pos < textLen {
			text[pos] = ' '
			pos++
		}
	}

	var (
		fnMain   = addrs["word_count"]
		fnChunk  = addrs["wc_tokenize_chunk"]
		fnInsert = addrs["wc_insert"]
	)
	const chunkSize = 16 * 1024
	return func(th *tee.Thread) (uint64, error) {
		h := cfg.Hooks
		h.Enter(fnMain)
		counts := make(map[uint64]uint32, 4096)
		var words uint64
		for off := 0; off < textLen; off += chunkSize {
			end := off + chunkSize
			if end > textLen {
				end = textLen
			}
			h.Enter(fnChunk)
			if err := buf.TouchRange(th, off, end-off); err != nil {
				h.Exit(fnChunk)
				h.Exit(fnMain)
				return 0, err
			}
			var wordHash uint64 = 1469598103934665603
			inWord := false
			for i := off; i < end; i++ {
				c := text[i]
				if c == ' ' {
					if inWord {
						h.Enter(fnInsert)
						counts[wordHash]++
						words++
						h.Exit(fnInsert)
						wordHash = 1469598103934665603
						inWord = false
					}
					continue
				}
				wordHash = (wordHash ^ uint64(c)) * 1099511628211
				inWord = true
			}
			if inWord {
				h.Enter(fnInsert)
				counts[wordHash]++
				words++
				h.Exit(fnInsert)
			}
			h.Exit(fnChunk)
			th.Safepoint()
		}
		var checksum uint64
		for k, v := range counts {
			checksum += k * uint64(v)
		}
		h.Exit(fnMain)
		return checksum ^ words, nil
	}, nil
}
