package phoenix

import (
	"fmt"
	"sync"

	"teeperf/internal/probe"
	"teeperf/internal/tee"
)

// ParallelConfig drives a multithreaded suite run: the Phoenix benchmarks
// are map-reduce style, so each thread processes its own shard of the
// input with an identical call structure — which is exactly the case
// TEE-Perf's per-thread log reconstruction exists for.
type ParallelConfig struct {
	// Enclave hosts all worker threads.
	Enclave *tee.Enclave
	// NewHooks returns the per-thread instrumentation handle (one probe
	// thread per worker).
	NewHooks func() probe.Hooks
	// AddrOf resolves registered symbols.
	AddrOf func(string) uint64
	// Threads is the worker count (default 2).
	Threads int
	// ShardScale is the input scale per worker (default 1).
	ShardScale int
}

// ParallelResult reports one multithreaded run.
type ParallelResult struct {
	// Checksums holds each worker's result, in worker order.
	Checksums []uint64
}

// RunParallel executes Threads instances of w concurrently, each over its
// own shard, each on its own enclave thread with its own hooks.
func RunParallel(w Workload, cfg ParallelConfig) (ParallelResult, error) {
	if cfg.Enclave == nil || cfg.NewHooks == nil || cfg.AddrOf == nil {
		return ParallelResult{}, fmt.Errorf("phoenix: parallel config needs Enclave, NewHooks and AddrOf")
	}
	threads := cfg.Threads
	if threads <= 0 {
		threads = 2
	}
	scale := cfg.ShardScale
	if scale <= 0 {
		scale = 1
	}

	// Bind all runners before starting: allocation errors surface here,
	// not mid-flight.
	runners := make([]Runner, threads)
	for i := range runners {
		r, err := w.New(Config{
			Enclave: cfg.Enclave,
			Hooks:   cfg.NewHooks(),
			AddrOf:  cfg.AddrOf,
		}, scale)
		if err != nil {
			return ParallelResult{}, fmt.Errorf("phoenix: bind shard %d: %w", i, err)
		}
		runners[i] = r
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstErr  error
		checksums = make([]uint64, threads)
	)
	for i, r := range runners {
		wg.Add(1)
		go func(i int, r Runner) {
			defer wg.Done()
			th := cfg.Enclave.Thread()
			defer th.Exit()
			sum, err := r(th)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("phoenix: shard %d: %w", i, err)
				return
			}
			checksums[i] = sum
		}(i, r)
	}
	wg.Wait()
	if firstErr != nil {
		return ParallelResult{}, firstErr
	}
	return ParallelResult{Checksums: checksums}, nil
}
