package phoenix

import (
	"fmt"

	"teeperf/internal/tee"
)

// LinearRegression returns the linear_regression workload: one pass over a
// large point array accumulating the five regression sums inside a single
// function with no inner calls — the call-lightest member of the suite.
// This is the paper's crossover case where TEE-Perf is ~8% *faster* than
// perf: the injected code almost never runs, while perf keeps paying its
// periodic sampling interrupts.
func LinearRegression() Workload {
	return Workload{
		Name:    "linear_regression",
		Symbols: []string{"linear_regression", "lr_scan", "lr_finalize"},
		New:     newLinearRegression,
	}
}

func newLinearRegression(cfg Config, scale int) (Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("phoenix: scale must be >= 1, got %d", scale)
	}
	addrs, err := cfg.resolve("linear_regression", "lr_scan", "lr_finalize")
	if err != nil {
		return nil, err
	}
	// Points are (x,y) byte pairs, as in the Phoenix original.
	nBytes := 2 * 1024 * 1024 * scale
	buf, err := cfg.Enclave.Alloc(nBytes)
	if err != nil {
		return nil, err
	}
	fillBytes(buf.Data(), 0x6c696e72) // "linr"

	var (
		fnMain     = addrs["linear_regression"]
		fnScan     = addrs["lr_scan"]
		fnFinalize = addrs["lr_finalize"]
	)
	const pageSpan = 64 * 1024
	return func(th *tee.Thread) (uint64, error) {
		h := cfg.Hooks
		data := buf.Data()
		h.Enter(fnMain)
		h.Enter(fnScan)
		var sx, sy, sxx, syy, sxy uint64
		for off := 0; off < len(data); off += pageSpan {
			end := off + pageSpan
			if end > len(data) {
				end = len(data)
			}
			if err := buf.TouchRange(th, off, end-off); err != nil {
				h.Exit(fnScan)
				h.Exit(fnMain)
				return 0, err
			}
			for i := off; i+1 < end; i += 2 {
				x := uint64(data[i])
				y := uint64(data[i+1])
				sx += x
				sy += y
				sxx += x * x
				syy += y * y
				sxy += x * y
			}
			th.Safepoint()
		}
		h.Exit(fnScan)

		h.Enter(fnFinalize)
		n := uint64(len(data) / 2)
		// Slope/intercept in fixed point; only the checksum matters.
		denom := n*sxx - sx*sx
		var slopeQ uint64
		if denom != 0 {
			slopeQ = ((n*sxy - sx*sy) << 16) / denom
		}
		checksum := slopeQ ^ sx ^ sy ^ sxx ^ syy ^ sxy
		h.Exit(fnFinalize)
		h.Exit(fnMain)
		return checksum, nil
	}, nil
}
