package phoenix

import (
	"strings"
	"sync"
	"testing"

	"teeperf/internal/analyzer"
	"teeperf/internal/counter"
	"teeperf/internal/probe"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

func testEnclave(t *testing.T) *tee.Enclave {
	t.Helper()
	e, err := tee.NewEnclave(tee.SGXv1(), tee.NewHost(1), tee.WithoutSpin())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// instrumented builds a full probe pipeline for one workload.
func instrumented(t *testing.T, w Workload, capacity int) (Config, *shmlog.Log, *symtab.Table, *tee.Enclave) {
	t.Helper()
	tab := symtab.New()
	if err := w.RegisterSymbols(tab); err != nil {
		t.Fatal(err)
	}
	log, err := shmlog.New(capacity)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := probe.New(log, counter.NewVirtual(1))
	if err != nil {
		t.Fatal(err)
	}
	encl := testEnclave(t)
	cfg := Config{
		Enclave: encl,
		Hooks:   rt.Thread(),
		AddrOf:  tab.Addr,
	}
	return cfg, log, tab, encl
}

func TestSuiteRegistry(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("suite has %d workloads, want 7", len(all))
	}
	seen := make(map[string]bool)
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if len(w.Symbols) == 0 {
			t.Errorf("%s has no symbols", w.Name)
		}
		if w.New == nil {
			t.Errorf("%s has nil constructor", w.Name)
		}
	}
	for _, name := range []string{"matrix_mult", "string_match", "word_count", "linear_regression", "histogram", "kmeans", "pca"} {
		if !seen[name] {
			t.Errorf("missing workload %s", name)
		}
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
	if got := len(Names()); got != 7 {
		t.Errorf("Names() has %d entries", got)
	}
}

func TestRegisterSymbolsIdempotent(t *testing.T) {
	tab := symtab.New()
	w := Histogram()
	if err := w.RegisterSymbols(tab); err != nil {
		t.Fatal(err)
	}
	before := tab.Len()
	if err := w.RegisterSymbols(tab); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != before {
		t.Errorf("double registration grew table: %d -> %d", before, tab.Len())
	}
}

func TestConfigValidation(t *testing.T) {
	encl := testEnclave(t)
	tab := symtab.New()
	w := Histogram()
	if err := w.RegisterSymbols(tab); err != nil {
		t.Fatal(err)
	}
	valid := Config{Enclave: encl, Hooks: probe.Nop{}, AddrOf: tab.Addr}

	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "nil enclave", cfg: Config{Hooks: probe.Nop{}, AddrOf: tab.Addr}},
		{name: "nil hooks", cfg: Config{Enclave: encl, AddrOf: tab.Addr}},
		{name: "nil addrof", cfg: Config{Enclave: encl, Hooks: probe.Nop{}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := w.New(tt.cfg, 1); err == nil {
				t.Error("invalid config should fail")
			}
		})
	}
	if _, err := w.New(valid, 0); err == nil {
		t.Error("scale 0 should fail")
	}
	// Unregistered symbols fail at bind time.
	empty := symtab.New()
	if _, err := w.New(Config{Enclave: encl, Hooks: probe.Nop{}, AddrOf: empty.Addr}, 1); err == nil {
		t.Error("unregistered symbols should fail")
	}
}

func TestWorkloadsDeterministicAcrossModes(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			// Native (no hooks) run.
			tab := symtab.New()
			if err := w.RegisterSymbols(tab); err != nil {
				t.Fatal(err)
			}
			encl := testEnclave(t)
			nativeCfg := Config{Enclave: encl, Hooks: probe.Nop{}, AddrOf: tab.Addr}
			run, err := w.New(nativeCfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			th := encl.Thread()
			sum1, err := run(th)
			if err != nil {
				t.Fatal(err)
			}
			sum2, err := run(th)
			if err != nil {
				t.Fatal(err)
			}
			if sum1 != sum2 {
				t.Fatalf("native checksums differ: %#x vs %#x", sum1, sum2)
			}

			// Instrumented run must compute the same result.
			cfg, log, _, encl2 := instrumented(t, w, 1<<22)
			run2, err := w.New(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			sum3, err := run2(encl2.Thread())
			if err != nil {
				t.Fatal(err)
			}
			if sum3 != sum1 {
				t.Fatalf("instrumented checksum %#x != native %#x", sum3, sum1)
			}
			if log.Len() == 0 {
				t.Fatal("instrumented run recorded no events")
			}
			if log.Dropped() != 0 {
				t.Fatalf("log overflowed: %d dropped", log.Dropped())
			}
		})
	}
}

func TestWorkloadEventsAreBalanced(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			cfg, log, tab, encl := instrumented(t, w, 1<<22)
			run, err := w.New(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := run(encl.Thread()); err != nil {
				t.Fatal(err)
			}
			p, err := analyzer.Analyze(log, tab)
			if err != nil {
				t.Fatal(err)
			}
			if p.Truncated != 0 || p.Unmatched != 0 {
				t.Errorf("unbalanced events: truncated=%d unmatched=%d", p.Truncated, p.Unmatched)
			}
			// The workload's entry function must be the root of the
			// profile with 100%% inclusive time.
			rootStat, ok := p.Func(w.Name)
			if !ok {
				t.Fatalf("root function %s missing from profile", w.Name)
			}
			if rootStat.Incl != p.TotalTicks {
				t.Errorf("root incl = %d, total = %d", rootStat.Incl, p.TotalTicks)
			}
			// Every registered symbol should appear.
			for _, s := range w.Symbols {
				if _, ok := p.Func(s); !ok {
					t.Errorf("symbol %s never recorded", s)
				}
			}
		})
	}
}

func TestCallDensityOrdering(t *testing.T) {
	// The Fig 4 driver: string_match must be far more call-dense than
	// linear_regression on identical scale.
	events := func(w Workload) int {
		cfg, log, _, encl := instrumented(t, w, 1<<22)
		run, err := w.New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := run(encl.Thread()); err != nil {
			t.Fatal(err)
		}
		return log.Len()
	}
	sm := events(StringMatch())
	lr := events(LinearRegression())
	if sm < 100*lr {
		t.Errorf("string_match events (%d) should dwarf linear_regression (%d)", sm, lr)
	}
	if lr > 100 {
		t.Errorf("linear_regression recorded %d events, want very few", lr)
	}
}

func TestScaleGrowsWork(t *testing.T) {
	w := Histogram()
	cfg, log, _, encl := instrumented(t, w, 1<<22)
	run1, err := w.New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run1(encl.Thread()); err != nil {
		t.Fatal(err)
	}
	small := log.Len()
	log.Reset()
	run3, err := w.New(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run3(encl.Thread()); err != nil {
		t.Fatal(err)
	}
	if log.Len() <= small {
		t.Errorf("scale 3 events (%d) not above scale 1 (%d)", log.Len(), small)
	}
}

func TestParallelShardsMultithreaded(t *testing.T) {
	// Phoenix is a multithreaded suite: run 4 shards of word_count on 4
	// probe threads and check the analyzer untangles them.
	const threads = 4
	w := WordCount()
	tab := symtab.New()
	if err := w.RegisterSymbols(tab); err != nil {
		t.Fatal(err)
	}
	log, err := shmlog.New(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := probe.New(log, counter.NewVirtual(1))
	if err != nil {
		t.Fatal(err)
	}
	encl := testEnclave(t)

	var wg sync.WaitGroup
	errs := make([]error, threads)
	for i := 0; i < threads; i++ {
		cfg := Config{Enclave: encl, Hooks: rt.Thread(), AddrOf: tab.Addr}
		run, err := w.New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = run(encl.Thread())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Threads()); got != threads {
		t.Fatalf("profile has %d threads, want %d", got, threads)
	}
	if p.Truncated != 0 || p.Unmatched != 0 {
		t.Errorf("multithreaded reconstruction: truncated=%d unmatched=%d", p.Truncated, p.Unmatched)
	}
	wc, ok := p.Func("word_count")
	if !ok || wc.Calls != threads {
		t.Errorf("word_count calls = %d, want %d", wc.Calls, threads)
	}
}

func TestWorkloadNamesMatchFigure4(t *testing.T) {
	// The five benchmarks plotted in Fig 4 must exist under the paper's
	// axis labels.
	fig4 := []string{"matrix_mult", "string_match", "word_count", "linear_regression", "histogram"}
	names := strings.Join(Names(), ",")
	for _, n := range fig4 {
		if !strings.Contains(names, n) {
			t.Errorf("Fig 4 benchmark %s missing from suite (%s)", n, names)
		}
	}
}

func TestRunParallelValidation(t *testing.T) {
	if _, err := RunParallel(Histogram(), ParallelConfig{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestRunParallelAllWorkloads(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			tab := symtab.New()
			if err := w.RegisterSymbols(tab); err != nil {
				t.Fatal(err)
			}
			log, err := shmlog.New(1 << 23)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := probe.New(log, counter.NewVirtual(1))
			if err != nil {
				t.Fatal(err)
			}
			encl := testEnclave(t)
			res, err := RunParallel(w, ParallelConfig{
				Enclave:  encl,
				NewHooks: func() probe.Hooks { return rt.Thread() },
				AddrOf:   tab.Addr,
				Threads:  3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Checksums) != 3 {
				t.Fatalf("checksums = %d, want 3", len(res.Checksums))
			}
			// Identical shards (same seed) compute identical results.
			for i := 1; i < len(res.Checksums); i++ {
				if res.Checksums[i] != res.Checksums[0] {
					t.Errorf("shard %d checksum %#x != shard 0 %#x",
						i, res.Checksums[i], res.Checksums[0])
				}
			}
			p, err := analyzer.Analyze(log, tab)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(p.Threads()); got != 3 {
				t.Errorf("profile threads = %d, want 3", got)
			}
			if p.Truncated != 0 || p.Unmatched != 0 {
				t.Errorf("parallel reconstruction broken: truncated=%d unmatched=%d",
					p.Truncated, p.Unmatched)
			}
			root, ok := p.Func(w.Name)
			if !ok || root.Calls != 3 {
				t.Errorf("root %s calls = %d, want 3", w.Name, root.Calls)
			}
		})
	}
}
