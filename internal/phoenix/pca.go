package phoenix

import (
	"fmt"

	"teeperf/internal/tee"
)

// PCA returns the pca workload: column means and the covariance matrix of
// a tall integer matrix, with one probe-visible call per column mean and
// per covariance cell — each call doing a full column scan (low call
// density, heavy work per call).
func PCA() Workload {
	return Workload{
		Name:    "pca",
		Symbols: []string{"pca", "pca_mean_col", "pca_cov_cell"},
		New:     newPCA,
	}
}

const pcaCols = 24

func newPCA(cfg Config, scale int) (Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("phoenix: scale must be >= 1, got %d", scale)
	}
	addrs, err := cfg.resolve("pca", "pca_mean_col", "pca_cov_cell")
	if err != nil {
		return nil, err
	}
	rows := 2000 * scale
	buf, err := cfg.Enclave.Alloc(rows * pcaCols * 4)
	if err != nil {
		return nil, err
	}
	m := make([]int32, rows*pcaCols)
	state := uint64(0x70636131) // "pca1"
	for i := range m {
		m[i] = int32(splitmix64(&state) % 1000)
	}

	var (
		fnMain = addrs["pca"]
		fnMean = addrs["pca_mean_col"]
		fnCov  = addrs["pca_cov_cell"]
	)
	return func(th *tee.Thread) (uint64, error) {
		h := cfg.Hooks
		h.Enter(fnMain)
		if err := buf.TouchRange(th, 0, rows*pcaCols*4); err != nil {
			h.Exit(fnMain)
			return 0, err
		}

		var means [pcaCols]int64
		for c := 0; c < pcaCols; c++ {
			h.Enter(fnMean)
			var sum int64
			for r := 0; r < rows; r++ {
				sum += int64(m[r*pcaCols+c])
			}
			means[c] = sum / int64(rows)
			h.Exit(fnMean)
		}
		th.Safepoint()

		var checksum uint64
		for i := 0; i < pcaCols; i++ {
			for j := 0; j <= i; j++ {
				h.Enter(fnCov)
				var cov int64
				for r := 0; r < rows; r++ {
					cov += (int64(m[r*pcaCols+i]) - means[i]) * (int64(m[r*pcaCols+j]) - means[j])
				}
				checksum = checksum*131 + uint64(cov/int64(rows-1))
				h.Exit(fnCov)
			}
			th.Safepoint()
		}
		h.Exit(fnMain)
		return checksum, nil
	}, nil
}
