package phoenix

import (
	"fmt"

	"teeperf/internal/tee"
)

// Histogram returns the histogram workload: per-channel 256-bin histograms
// of a synthetic RGB bitmap, processed in page-sized chunks with one
// probe-visible call per chunk — low-to-medium call density.
func Histogram() Workload {
	return Workload{
		Name:    "histogram",
		Symbols: []string{"histogram", "hist_chunk", "hist_merge"},
		New:     newHistogram,
	}
}

func newHistogram(cfg Config, scale int) (Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("phoenix: scale must be >= 1, got %d", scale)
	}
	addrs, err := cfg.resolve("histogram", "hist_chunk", "hist_merge")
	if err != nil {
		return nil, err
	}
	nBytes := 3 * 1024 * 1024 * scale // RGB triples
	buf, err := cfg.Enclave.Alloc(nBytes)
	if err != nil {
		return nil, err
	}
	fillBytes(buf.Data(), 0x68697374) // "hist"

	var (
		fnMain  = addrs["histogram"]
		fnChunk = addrs["hist_chunk"]
		fnMerge = addrs["hist_merge"]
	)
	// Small chunks mirror the per-pixel-block helper structure of the C
	// original, giving the benchmark its mid-range call density.
	const chunkSize = 768 // divisible by 3
	return func(th *tee.Thread) (uint64, error) {
		h := cfg.Hooks
		data := buf.Data()
		h.Enter(fnMain)
		var r, g, b [256]uint32
		for off := 0; off < len(data); off += chunkSize {
			end := off + chunkSize
			if end > len(data) {
				end = len(data)
			}
			h.Enter(fnChunk)
			if err := buf.TouchRange(th, off, end-off); err != nil {
				h.Exit(fnChunk)
				h.Exit(fnMain)
				return 0, err
			}
			for i := off; i+2 < end; i += 3 {
				r[data[i]]++
				g[data[i+1]]++
				b[data[i+2]]++
			}
			h.Exit(fnChunk)
			th.Safepoint()
		}
		h.Enter(fnMerge)
		var checksum uint64
		for i := 0; i < 256; i++ {
			checksum += uint64(i+1) * (uint64(r[i]) + 2*uint64(g[i]) + 3*uint64(b[i]))
		}
		h.Exit(fnMerge)
		h.Exit(fnMain)
		return checksum, nil
	}, nil
}
