package phoenix

import (
	"fmt"

	"teeperf/internal/tee"
)

// MatrixMultiply returns the matrix_multiply workload: dense int32 matrix
// multiplication with a per-row driver function and a per-cell dot-product
// function, the mid-range call density of the suite.
func MatrixMultiply() Workload {
	return Workload{
		Name:    "matrix_mult",
		Symbols: []string{"matrix_mult", "mm_calc_row", "mm_dot"},
		New:     newMatrixMultiply,
	}
}

func newMatrixMultiply(cfg Config, scale int) (Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("phoenix: scale must be >= 1, got %d", scale)
	}
	addrs, err := cfg.resolve("matrix_mult", "mm_calc_row", "mm_dot")
	if err != nil {
		return nil, err
	}
	n := 48 + 16*scale
	bufA, err := cfg.Enclave.Alloc(n * n * 4)
	if err != nil {
		return nil, err
	}
	bufB, err := cfg.Enclave.Alloc(n * n * 4)
	if err != nil {
		return nil, err
	}
	a := make([]int32, n*n)
	b := make([]int32, n*n)
	state := uint64(0x6d617472) // "matr"
	for i := range a {
		a[i] = int32(splitmix64(&state) % 1000)
		b[i] = int32(splitmix64(&state) % 1000)
	}

	var (
		fnMain = addrs["matrix_mult"]
		fnRow  = addrs["mm_calc_row"]
		fnDot  = addrs["mm_dot"]
	)
	return func(th *tee.Thread) (uint64, error) {
		h := cfg.Hooks
		h.Enter(fnMain)
		var checksum uint64
		rowBytes := n * 4
		for i := 0; i < n; i++ {
			h.Enter(fnRow)
			if err := bufA.TouchRange(th, i*rowBytes, rowBytes); err != nil {
				h.Exit(fnRow)
				h.Exit(fnMain)
				return 0, err
			}
			for j := 0; j < n; j++ {
				h.Enter(fnDot)
				var sum int64
				ai := i * n
				for k := 0; k < n; k++ {
					sum += int64(a[ai+k]) * int64(b[k*n+j])
				}
				checksum += uint64(sum)
				h.Exit(fnDot)
			}
			if err := bufB.TouchRange(th, 0, n*n*4); err != nil {
				h.Exit(fnRow)
				h.Exit(fnMain)
				return 0, err
			}
			h.Exit(fnRow)
			th.Safepoint()
		}
		h.Exit(fnMain)
		return checksum, nil
	}, nil
}
