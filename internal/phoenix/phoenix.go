// Package phoenix reimplements the Phoenix 2.0 multithreaded benchmark
// suite used in the paper's Fig 4 evaluation: histogram, kmeans,
// linear_regression, matrix_multiply, pca, string_match and word_count.
//
// The workloads are written against the TEE substrate (enclave memory,
// safepoints) and are decomposed into the same kind of call graphs as the
// C originals, because the Fig 4 shape is driven by call frequency:
// string_match issues a probe-visible call per candidate word (the paper's
// 5.7x worst case), while linear_regression is one tight loop in a single
// function (the case where TEE-Perf beats perf). Inputs are generated
// deterministically; every run returns a checksum so results can be
// validated across instrumentation modes.
package phoenix

import (
	"errors"
	"fmt"

	"teeperf/internal/probe"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

// Config wires a workload instance to its environment.
type Config struct {
	// Enclave provides memory and the platform cost model.
	Enclave *tee.Enclave
	// Hooks receives function entry/exit events (TEE-Perf probe, perf
	// publisher, or probe.Nop for native runs).
	Hooks probe.Hooks
	// AddrOf resolves a registered symbol name to its runtime address.
	AddrOf func(name string) uint64
}

func (c Config) validate() error {
	if c.Enclave == nil {
		return errors.New("phoenix: nil enclave")
	}
	if c.Hooks == nil {
		return errors.New("phoenix: nil hooks")
	}
	if c.AddrOf == nil {
		return errors.New("phoenix: nil AddrOf")
	}
	return nil
}

// resolve maps each name through AddrOf, failing on unregistered symbols.
func (c Config) resolve(names ...string) (map[string]uint64, error) {
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		a := c.AddrOf(n)
		if a == 0 {
			return nil, fmt.Errorf("phoenix: symbol %q not registered", n)
		}
		out[n] = a
	}
	return out, nil
}

// Runner executes one measured run on the given enclave thread and returns
// a workload checksum. A Runner is bound to one goroutine at a time.
type Runner func(th *tee.Thread) (uint64, error)

// Workload describes one Phoenix benchmark.
type Workload struct {
	// Name is the benchmark name as it appears in Fig 4.
	Name string
	// Symbols are the function names the workload's probes reference.
	Symbols []string
	// New allocates input data scaled by scale (>= 1) and binds a Runner.
	New func(cfg Config, scale int) (Runner, error)
}

// RegisterSymbols adds the workload's functions to the symbol table.
// Already-registered symbols are left untouched, so multiple instances of
// the same workload share one registration.
func (w Workload) RegisterSymbols(tab *symtab.Table) error {
	for i, name := range w.Symbols {
		if _, ok := tab.Lookup(name); ok {
			continue
		}
		if _, err := tab.Register(name, 64, "phoenix/"+w.Name+".c", (i+1)*10); err != nil {
			return fmt.Errorf("phoenix: register %s: %w", name, err)
		}
	}
	return nil
}

// All returns the full suite in the paper's Fig 4 order (the five plotted
// benchmarks first, then the remaining suite members).
func All() []Workload {
	return []Workload{
		MatrixMultiply(),
		StringMatch(),
		WordCount(),
		LinearRegression(),
		Histogram(),
		KMeans(),
		PCA(),
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("phoenix: unknown workload %q", name)
}

// Names lists the suite's workload names in Fig 4 order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, w := range all {
		out[i] = w.Name
	}
	return out
}

// splitmix64 is the deterministic generator used for all workload inputs.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fillBytes deterministically fills buf from seed.
func fillBytes(buf []byte, seed uint64) {
	state := seed
	i := 0
	for ; i+8 <= len(buf); i += 8 {
		v := splitmix64(&state)
		buf[i] = byte(v)
		buf[i+1] = byte(v >> 8)
		buf[i+2] = byte(v >> 16)
		buf[i+3] = byte(v >> 24)
		buf[i+4] = byte(v >> 32)
		buf[i+5] = byte(v >> 40)
		buf[i+6] = byte(v >> 48)
		buf[i+7] = byte(v >> 56)
	}
	for ; i < len(buf); i++ {
		buf[i] = byte(splitmix64(&state))
	}
}
