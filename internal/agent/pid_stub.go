//go:build !linux && !darwin

package agent

// pidAlive on platforms without signal-0 probing: liveness is unknowable,
// so sessions never transition past attached on PID evidence alone.
func pidAlive(pid uint64) (alive, known bool) { return false, false }
