package agent

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"

	"teeperf/internal/monitor"
	"teeperf/internal/report"
)

// Handler returns the fleet HTTP interface:
//
//	/               fleet HTML dashboard
//	/metrics        Prometheus exposition: per-session + fleet rollups
//	/vars           the same series as a JSON document (keys are series)
//	/sessions       session registry as JSON
//	/profile.json   live profile of one session (?session=name)
//	/trace          one session's lifecycle trace ring (?session=name)
//	/register       POST ?path=/abs/file.shm — explicit registration
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", a.serveIndex)
	mux.HandleFunc("/metrics", a.serveMetrics)
	mux.HandleFunc("/vars", a.serveVars)
	mux.HandleFunc("/sessions", a.serveSessions)
	mux.HandleFunc("/profile.json", a.serveProfile)
	mux.HandleFunc("/trace", a.serveTrace)
	mux.HandleFunc("/register", a.serveRegister)
	return mux
}

func (a *Agent) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	monitor.WriteMetrics(w, a.Metrics())
	a.writeScrapeHistogram(w)
}

// writeScrapeHistogram renders the agent's self-observability histogram in
// native Prometheus histogram syntax (cumulative buckets, _sum, _count) —
// the one shape the shared flat-metric renderer does not model.
func (a *Agent) writeScrapeHistogram(w http.ResponseWriter) {
	buckets, counts, sum, count := a.scrapeHistogram()
	const name = "teeperf_agent_scrape_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Duration of one fleet scrape cycle.\n# TYPE %s histogram\n", name, name)
	cum := uint64(0)
	for i, le := range buckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(le), cum)
	}
	cum += counts[len(buckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, sum, name, count)
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", f), "0"), ".")
}

func (a *Agent) serveVars(w http.ResponseWriter, r *http.Request) {
	vars := make(map[string]float64)
	for _, m := range a.Metrics() {
		// Series identity (name + labels) keys the JSON: many sessions
		// share each metric name here, unlike single-session /vars.
		vars[m.Series()] = m.Value
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(vars)
}

func (a *Agent) serveSessions(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(a.Sessions())
}

func (a *Agent) sessionFromQuery(w http.ResponseWriter, r *http.Request) *Session {
	name := r.URL.Query().Get("session")
	if name == "" {
		http.Error(w, "missing ?session=<name>", http.StatusBadRequest)
		return nil
	}
	s := a.Session(name)
	if s == nil {
		http.Error(w, "unknown session "+name, http.StatusNotFound)
		return nil
	}
	return s
}

func (a *Agent) serveProfile(w http.ResponseWriter, r *http.Request) {
	s := a.sessionFromQuery(w, r)
	if s == nil {
		return
	}
	top := 0
	if v := r.URL.Query().Get("top"); v != "" {
		fmt.Sscanf(v, "%d", &top)
	}
	t := s.Table(top)
	info := s.Snapshot()
	doc := struct {
		Session    string         `json:"session"`
		State      string         `json:"state"`
		Info       Info           `json:"info"`
		TotalTicks uint64         `json:"total_ticks"`
		Calls      uint64         `json:"calls"`
		Functions  []profileEntry `json:"functions"`
	}{Session: info.Name, State: info.State, Info: info, TotalTicks: t.TotalTicks, Calls: t.Calls}
	for _, f := range t.Funcs {
		doc.Functions = append(doc.Functions, profileEntry{
			Name: f.Name, Calls: f.Calls, Self: f.Self, Incl: f.Incl, SelfPercent: t.SelfPercent(f),
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

type profileEntry struct {
	Name        string  `json:"name"`
	Calls       uint64  `json:"calls"`
	Self        uint64  `json:"self"`
	Incl        uint64  `json:"incl"`
	SelfPercent float64 `json:"self_percent"`
}

func (a *Agent) serveTrace(w http.ResponseWriter, r *http.Request) {
	s := a.sessionFromQuery(w, r)
	if s == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Trace())
}

func (a *Agent) serveRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	path := r.URL.Query().Get("path")
	if path == "" {
		http.Error(w, "missing ?path=<mapping>", http.StatusBadRequest)
		return
	}
	name := a.Register(path)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(map[string]string{"session": name})
}

var fleetTemplate = template.Must(template.New("fleet").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{{.Refresh}}">
<title>teeperf fleet agent</title>
<style>
` + report.BaseCSS + `</style>
</head>
<body>
<h1>teeperf fleet agent</h1>
<p class="summary">
  <span>sessions <b>{{.Total}}</b></span>
  <span>live <b>{{.Live}}</b></span>
  <span>salvaged <b>{{.Salvaged}}</b></span>
  <span>degraded <b>{{.Degraded}}</b></span>
  <span>entries <b>{{.Entries}}</b></span>
  <span>dropped <b>{{.Dropped}}</b></span>
</p>

<h2>Sessions</h2>
<table>
<tr><th>Session</th><th>State</th><th class="num">Entries</th><th class="num">/s</th><th class="num">Dropped</th><th class="num">Fill %</th><th class="num">PID</th><th class="num">Gen</th><th class="num">Funcs</th><th class="num">Salvaged</th></tr>
{{range .Sessions}}<tr><td><code>{{.Name}}</code></td><td>{{.State}}{{if .Degraded}} (degraded){{end}}</td><td class="num">{{.Entries}}</td><td class="num">{{printf "%.0f" .Rate}}</td><td class="num">{{.Dropped}}</td><td class="num">{{printf "%.1f" .FillPct}}</td><td class="num">{{.AppPID}}</td><td class="num">{{.AttachGen}}</td><td class="num">{{.Functions}}</td><td class="num">{{.Salvaged}}</td></tr>
{{end}}</table>

<p><small>auto-refreshes every {{.Refresh}}s — <a href="/metrics">/metrics</a> · <a href="/vars">/vars</a> · <a href="/sessions">/sessions</a></small></p>
</body>
</html>
`))

func (a *Agent) serveIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	infos := a.Sessions()
	data := struct {
		Refresh  int
		Total    int
		Live     int
		Salvaged int
		Degraded int
		Entries  uint64
		Dropped  uint64
		Sessions []Info
	}{Refresh: refreshSeconds(a.cfg.Interval), Total: len(infos), Sessions: infos}
	for _, s := range infos {
		data.Entries += s.Entries
		data.Dropped += s.Dropped
		if s.State == StateLive.String() {
			data.Live++
		}
		if s.State == StateSalvaged.String() {
			data.Salvaged++
		}
		if s.Degraded {
			data.Degraded++
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = fleetTemplate.Execute(w, data)
}

func refreshSeconds(interval interface{ Seconds() float64 }) int {
	if s := int(interval.Seconds()); s >= 1 {
		return s
	}
	return 1
}

// Server is a running fleet-agent HTTP endpoint.
type Server struct {
	agent *Agent
	ln    net.Listener
	srv   *http.Server
}

// Serve starts the agent's scrape loop and serves its Handler on addr.
func Serve(a *Agent, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: listen %s: %w", addr, err)
	}
	a.Start()
	srv := &http.Server{Handler: a.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Server{agent: a, ln: ln, srv: srv}, nil
}

// Agent returns the served agent.
func (s *Server) Agent() *Agent { return s.agent }

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the HTTP server down and stops (but does not close) the
// agent, so final state remains inspectable.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.agent.Stop()
	return err
}

// WriteSummary renders the fleet as text — the `teeperf agent -once`
// output. It is deterministic for a static spool: sessions sorted by name,
// no timestamps or host-dependent fields.
func (a *Agent) WriteSummary(w io.Writer) {
	infos := a.Sessions()
	byState := map[string]int{}
	for _, s := range infos {
		byState[s.State]++
	}
	states := make([]string, 0, len(byState))
	for st := range byState {
		states = append(states, st)
	}
	sort.Strings(states)
	fmt.Fprintf(w, "fleet: %d sessions", len(infos))
	for _, st := range states {
		fmt.Fprintf(w, ", %d %s", byState[st], st)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s %-12s %10s %8s %8s %6s %6s\n", "SESSION", "STATE", "ENTRIES", "DROPPED", "FILL%", "GEN", "FUNCS")
	for _, s := range infos {
		fmt.Fprintf(w, "%-20s %-12s %10d %8d %8.1f %6d %6d\n",
			s.Name, s.State, s.Entries, s.Dropped, s.FillPct, s.AttachGen, s.Functions)
	}
}
