package agent

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"teeperf/internal/monitor"
	"teeperf/internal/profilestore"
	"teeperf/internal/shmlog"
)

// Config parameterizes an Agent.
type Config struct {
	// Spool is a directory watched for *.shm mappings; every matching file
	// becomes a session named after its basename. Empty disables scanning
	// (sessions arrive only via Register).
	Spool string
	// Interval is the scrape-loop period (default 250ms).
	Interval time.Duration
	// ScrapeBudget is the per-session entry budget of one scrape; a session
	// exceeding it on two consecutive scrapes is degraded to sampled
	// scraping (default 1<<16).
	ScrapeBudget int
	// DegradedEvery is how often degraded sessions are still scraped: every
	// N-th cycle (default 4).
	DegradedEvery int
	// AutoThrottle upgrades back-pressure from a scrape-side remedy to a
	// recording-side one: when a session degrades, the agent opens a control
	// mapping over its shared file and pushes ThrottlePeriod into the
	// sampling-period header word, so the flooding tenant's probes stop
	// *recording* most events (not just the agent reading them). The
	// previous period is restored when the session recovers.
	AutoThrottle bool
	// ThrottlePeriod is the sampling period pushed by AutoThrottle
	// (default 8 — one call pair in eight recorded).
	ThrottlePeriod uint64
	// HistoryStore, when set, receives every dead session's drained log as
	// a durable segment at salvage time (segment ID <name>@<attach-gen>, so
	// re-registered mappings ingest separately and replays deduplicate).
	HistoryStore *profilestore.Store
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.ScrapeBudget <= 0 {
		c.ScrapeBudget = 1 << 16
	}
	if c.DegradedEvery < 2 {
		c.DegradedEvery = 4
	}
	if c.ThrottlePeriod == 0 {
		c.ThrottlePeriod = 8
	}
	return c
}

// scrapeBuckets are the upper bounds (seconds) of the scrape-duration
// histogram. An implicit +Inf bucket follows.
var scrapeBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5}

// Agent hosts a fleet of observed sessions: it discovers mappings, runs
// the shared scrape loop, and aggregates per-session accounting into
// fleet-wide metrics. All exported methods are safe for concurrent use.
type Agent struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	cycle    uint64

	// Self-observability: scrape-cycle latency histogram.
	bucketCounts []uint64
	durSum       float64
	durCount     uint64

	running bool
	stop    chan struct{}
	done    chan struct{}
}

// New creates an agent. Start launches its scrape loop; ScrapeOnce drives
// it manually (tests, `teeperf agent -once`).
func New(cfg Config) *Agent {
	return &Agent{
		cfg:          cfg.withDefaults(),
		sessions:     make(map[string]*Session),
		bucketCounts: make([]uint64, len(scrapeBuckets)+1),
	}
}

// SessionName derives the registry key for a mapping path: the basename
// with a trailing ".shm" stripped.
func SessionName(path string) string {
	return strings.TrimSuffix(filepath.Base(path), ".shm")
}

// Register adds (or re-points) the session observing path and returns its
// name. Registering an existing name with a new path re-maps the session —
// the re-registration path of the lifecycle; with the same path it is a
// no-op. The mapping itself is established lazily by the next scrape, so
// registering a file whose header is still being written is safe.
func (a *Agent) Register(path string) string {
	name := SessionName(path)
	a.mu.Lock()
	defer a.mu.Unlock()
	if s, ok := a.sessions[name]; ok {
		if s.Path() != path {
			s.remap(a.cycle, path)
		}
		return name
	}
	a.sessions[name] = newSession(name, path)
	return name
}

// Session returns the named session, or nil.
func (a *Agent) Session(name string) *Session {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sessions[name]
}

// Sessions returns every session's accounting, sorted by name.
func (a *Agent) Sessions() []Info {
	a.mu.Lock()
	list := make([]*Session, 0, len(a.sessions))
	for _, s := range a.sessions {
		list = append(list, s)
	}
	a.mu.Unlock()
	infos := make([]Info, 0, len(list))
	for _, s := range list {
		infos = append(infos, s.Snapshot())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// scanSpool registers every *.shm file currently in the spool directory.
// Scan errors are returned but non-fatal to the loop: a transiently
// unreadable spool just delays discovery.
func (a *Agent) scanSpool() error {
	if a.cfg.Spool == "" {
		return nil
	}
	ents, err := os.ReadDir(a.cfg.Spool)
	if err != nil {
		return fmt.Errorf("agent: scan spool: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".shm") {
			continue
		}
		a.Register(filepath.Join(a.cfg.Spool, e.Name()))
	}
	return nil
}

// ScrapeOnce runs one fleet cycle: spool scan, then one scrape of every
// session. It returns the total entries drained this cycle. Safe to call
// concurrently with a running loop (cycles serialize on the registry
// lock per session; the cycle counter is shared).
func (a *Agent) ScrapeOnce() int {
	start := time.Now()
	_ = a.scanSpool()

	a.mu.Lock()
	a.cycle++
	cycle := a.cycle
	list := make([]*Session, 0, len(a.sessions))
	for _, s := range a.sessions {
		list = append(list, s)
	}
	a.mu.Unlock()
	// Deterministic scrape order (name-sorted) so traces and tests don't
	// depend on map iteration.
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })

	total := 0
	for _, s := range list {
		total += s.scrape(cycle, a.cfg, start)
	}

	dur := time.Since(start).Seconds()
	a.mu.Lock()
	i := sort.SearchFloat64s(scrapeBuckets, dur)
	a.bucketCounts[i]++
	a.durSum += dur
	a.durCount++
	a.mu.Unlock()
	return total
}

// Start launches the background scrape loop. No-op when already running.
func (a *Agent) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.running {
		return
	}
	a.running = true
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go a.loop(a.stop, a.done)
}

func (a *Agent) loop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			a.ScrapeOnce()
		}
	}
}

// Stop halts the loop after a final cycle (so the fleet view covers
// everything committed) and is idempotent.
func (a *Agent) Stop() {
	a.mu.Lock()
	if !a.running {
		a.mu.Unlock()
		return
	}
	a.running = false
	stop, done := a.stop, a.done
	a.mu.Unlock()
	close(stop)
	<-done
	a.ScrapeOnce()
}

// Close stops the loop and releases every session's mapping.
func (a *Agent) Close() {
	a.Stop()
	a.mu.Lock()
	list := make([]*Session, 0, len(a.sessions))
	for _, s := range a.sessions {
		list = append(list, s)
	}
	a.mu.Unlock()
	for _, s := range list {
		s.close()
	}
}

// Metrics builds the fleet exposition: every session's series under the
// single-session schema (monitor.SessionMetrics — same names, different
// `session` label values), the agent's session-lifecycle series, and the
// fleet rollups. Sessions appear in name order so output is deterministic.
func (a *Agent) Metrics() []monitor.Metric {
	a.mu.Lock()
	cycle := a.cycle
	list := make([]*Session, 0, len(a.sessions))
	for _, s := range a.sessions {
		list = append(list, s)
	}
	a.mu.Unlock()
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })

	var out []monitor.Metric
	var fleet struct {
		entries, dropped, salvaged uint64
		degraded                   int
		byState                    map[State]int
	}
	fleet.byState = make(map[State]int, len(States))

	for _, s := range list {
		s.mu.Lock()
		info := s.snapshotLocked()
		state := s.state
		var ticks, period, masked, batch uint64
		var open, funcs int
		var segs []shmlog.SegmentStat
		if s.log != nil {
			ticks = s.log.LoadCounter()
			segs = s.log.SegmentStats()
			period = s.log.SamplePeriod()
			masked = s.log.Masked()
			batch = s.log.BatchSize()
		}
		if s.inc != nil {
			open = s.inc.OpenFrames()
			funcs = len(s.inc.Snapshot(0).Funcs)
		}
		s.mu.Unlock()

		sample := monitor.Sample{
			Entries:       info.Entries,
			Dropped:       info.Dropped,
			CounterTicks:  ticks,
			FillPercent:   info.FillPct,
			Capacity:      info.Capacity,
			EntriesPerSec: info.Rate,
			SamplePeriod:  period,
			Masked:        masked,
			BatchSize:     int(batch),
			Shards:        monitor.ShardSamples(segs),
		}
		out = append(out, monitor.SessionMetrics(info.Name, sample, open, funcs)...)
		lbl := monitor.SessionLabel(info.Name)
		for _, st := range States {
			v := 0.0
			if st == state {
				v = 1
			}
			out = append(out, monitor.Metric{
				Name: "teeperf_session_state", Help: "Session lifecycle state (one-hot).", Kind: "gauge",
				Labels: append([]monitor.Label{{Key: "session", Value: info.Name}}, monitor.Label{Key: "state", Value: st.String()}),
				Value:  v,
			})
		}
		deg, thr := 0.0, 0.0
		if info.Degraded {
			deg = 1
		}
		if info.Throttled {
			thr = 1
		}
		out = append(out,
			monitor.Metric{Name: "teeperf_session_attach_generation", Help: "Attach generation of the observed mapping.", Kind: "gauge", Labels: lbl, Value: float64(info.AttachGen)},
			monitor.Metric{Name: "teeperf_session_degraded", Help: "1 while the session is back-pressure degraded to sampled scraping.", Kind: "gauge", Labels: lbl, Value: deg},
			monitor.Metric{Name: "teeperf_session_throttled", Help: "1 while the agent holds a pushed sampling period on this session.", Kind: "gauge", Labels: lbl, Value: thr},
			monitor.Metric{Name: "teeperf_session_scrapes_total", Help: "Scrapes performed on this session (skipped degraded cycles excluded).", Kind: "counter", Labels: lbl, Value: float64(info.Scrapes)},
			monitor.Metric{Name: "teeperf_session_salvaged_entries", Help: "Committed entries recovered by the salvage pass (0 before salvage).", Kind: "gauge", Labels: lbl, Value: float64(info.Salvaged)},
		)

		fleet.entries += info.Entries
		fleet.dropped += info.Dropped
		fleet.salvaged += info.Salvaged
		if info.Degraded {
			fleet.degraded++
		}
		fleet.byState[state]++
	}

	out = append(out,
		monitor.Metric{Name: "teeperf_fleet_sessions", Help: "Sessions known to the agent.", Kind: "gauge", Value: float64(len(list))},
		monitor.Metric{Name: "teeperf_fleet_entries_committed_total", Help: "Committed entries across the fleet.", Kind: "counter", Value: float64(fleet.entries)},
		monitor.Metric{Name: "teeperf_fleet_entries_dropped_total", Help: "Dropped probe events across the fleet.", Kind: "counter", Value: float64(fleet.dropped)},
		monitor.Metric{Name: "teeperf_fleet_salvaged_entries_total", Help: "Entries recovered by salvage passes across the fleet.", Kind: "counter", Value: float64(fleet.salvaged)},
		monitor.Metric{Name: "teeperf_fleet_degraded_sessions", Help: "Sessions currently degraded by back-pressure.", Kind: "gauge", Value: float64(fleet.degraded)},
		monitor.Metric{Name: "teeperf_agent_scrape_cycles_total", Help: "Completed fleet scrape cycles.", Kind: "counter", Value: float64(cycle)},
	)
	if a.cfg.HistoryStore != nil {
		out = append(out, monitor.StoreMetrics(a.cfg.HistoryStore.Stats())...)
	}
	for _, st := range States {
		out = append(out, monitor.Metric{
			Name: "teeperf_fleet_sessions_by_state", Help: "Sessions per lifecycle state.", Kind: "gauge",
			Labels: []monitor.Label{{Key: "state", Value: st.String()}},
			Value:  float64(fleet.byState[st]),
		})
	}
	return out
}

// scrapeHistogram snapshots the scrape-duration histogram for exposition.
func (a *Agent) scrapeHistogram() (buckets []float64, counts []uint64, sum float64, count uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	counts = make([]uint64, len(a.bucketCounts))
	copy(counts, a.bucketCounts)
	return scrapeBuckets, counts, a.durSum, a.durCount
}
