package agent

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"teeperf/internal/monitor"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// makeSessionFile creates a spool mapping with `pairs` call/return pairs
// committed by one thread and returns its path. pid is stamped as the
// application PID (0 = nobody attached yet).
func makeSessionFile(t *testing.T, dir, name string, pairs int, pid uint64) string {
	t.Helper()
	path := filepath.Join(dir, name+".shm")
	log, err := shmlog.CreateFile(path, 1<<12, shmlog.WithPID(pid))
	if err != nil {
		t.Fatal(err)
	}
	writePairs(t, log, pairs)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func writePairs(t *testing.T, log *shmlog.Log, pairs int) {
	t.Helper()
	tick := uint64(0)
	for i := 0; i < pairs; i++ {
		tick += 3
		if err := log.Append(shmlog.Entry{Kind: shmlog.KindCall, Counter: tick, Addr: 0x1000, ThreadID: 1}); err != nil {
			t.Fatal(err)
		}
		tick += 5
		if err := log.Append(shmlog.Entry{Kind: shmlog.KindReturn, Counter: tick, Addr: 0x1000, ThreadID: 1}); err != nil {
			t.Fatal(err)
		}
	}
}

func requireMmap(t *testing.T) {
	t.Helper()
	if !shmlog.MmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
}

func TestSpoolDiscoveryAndScrape(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	makeSessionFile(t, dir, "alpha", 10, 0)
	makeSessionFile(t, dir, "beta", 20, 0)
	makeSessionFile(t, dir, "gamma", 0, 0)

	a := New(Config{Spool: dir})
	defer a.Close()
	a.ScrapeOnce()

	infos := a.Sessions()
	if len(infos) != 3 {
		t.Fatalf("sessions = %d, want 3", len(infos))
	}
	want := map[string]uint64{"alpha": 20, "beta": 40, "gamma": 0}
	for _, info := range infos {
		if info.State != "attached" {
			t.Errorf("%s state = %s, want attached (pid 0 = liveness unknown)", info.Name, info.State)
		}
		if info.Entries != want[info.Name] {
			t.Errorf("%s entries = %d, want %d", info.Name, info.Entries, want[info.Name])
		}
	}

	// A file appearing later is discovered by a later cycle.
	makeSessionFile(t, dir, "delta", 5, 0)
	a.ScrapeOnce()
	if got := len(a.Sessions()); got != 4 {
		t.Fatalf("sessions after late file = %d, want 4", got)
	}
	if s := a.Session("delta"); s == nil || s.Snapshot().Entries != 10 {
		t.Errorf("delta not scraped: %+v", s.Snapshot())
	}
}

func TestSessionLiveAndSalvage(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()

	// A real child process stands in for the instrumented app: its PID is
	// stamped, so the session goes live, and killing it drives the
	// dead → salvaged path.
	child := exec.Command("sleep", "60")
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = child.Process.Kill(); _, _ = child.Process.Wait() }()

	path := makeSessionFile(t, dir, "app", 15, uint64(child.Process.Pid))

	a := New(Config{Spool: dir})
	defer a.Close()
	a.ScrapeOnce()
	s := a.Session("app")
	if got := s.State(); got != StateLive {
		t.Fatalf("state = %v, want live", got)
	}
	if got := s.Snapshot().Entries; got != 30 {
		t.Fatalf("entries = %d, want 30", got)
	}

	// Kill the app; next scrape must detect death, drain one final time,
	// and salvage the raw file.
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if _, err := child.Process.Wait(); err != nil {
		t.Fatal(err)
	}
	// Append a few more committed pairs after "death" (they were in the
	// mapping before the kill in a real run); reopen read-write to do so.
	log, err := shmlog.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	writePairs(t, log, 2)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	a.ScrapeOnce()
	if got := s.State(); got != StateSalvaged {
		t.Fatalf("state after kill = %v, want salvaged", got)
	}
	rep := s.Salvage()
	if rep == nil || rep.EntriesSalvaged != 34 {
		t.Fatalf("salvage report = %+v, want 34 entries", rep)
	}
	if got := s.Snapshot().Entries; got != 34 {
		t.Errorf("final drained entries = %d, want 34", got)
	}
	// Terminal: further scrapes leave it alone.
	a.ScrapeOnce()
	if got := s.State(); got != StateSalvaged {
		t.Errorf("state after extra scrape = %v, want salvaged", got)
	}

	// Trace ring recorded the journey.
	var joined []string
	for _, ev := range s.Trace() {
		joined = append(joined, ev.Event)
	}
	trace := strings.Join(joined, "\n")
	for _, want := range []string{"discovered -> attached", "attached -> live", "live -> dead", "dead -> salvaged", "salvage: final drain"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
}

func TestSalvageLeavesNeighborsUndisturbed(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	child := exec.Command("sleep", "60")
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = child.Process.Kill(); _, _ = child.Process.Wait() }()

	makeSessionFile(t, dir, "victim", 10, uint64(child.Process.Pid))
	steady := makeSessionFile(t, dir, "steady", 10, 0)

	a := New(Config{Spool: dir})
	defer a.Close()
	a.ScrapeOnce()

	_ = child.Process.Kill()
	_, _ = child.Process.Wait()

	// While the victim dies, the neighbor keeps committing; the same cycle
	// that salvages the victim must still drain the neighbor.
	log, err := shmlog.OpenFile(steady)
	if err != nil {
		t.Fatal(err)
	}
	writePairs(t, log, 7)
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	a.ScrapeOnce()
	if got := a.Session("victim").State(); got != StateSalvaged {
		t.Errorf("victim state = %v, want salvaged", got)
	}
	st := a.Session("steady").Snapshot()
	if st.State != "attached" || st.Entries != 34 {
		t.Errorf("steady session disturbed: %+v, want attached with 34 entries", st)
	}
}

func TestReRegistrationRemaps(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	old := makeSessionFile(t, dir, "app", 5, 0)
	a := New(Config{})
	defer a.Close()
	a.Register(old)
	a.ScrapeOnce()
	if got := a.Session("app").Snapshot().Entries; got != 10 {
		t.Fatalf("entries = %d, want 10", got)
	}

	// Same name, new file (e.g. the workload restarted into a new spool
	// file): the session re-maps and continues accounting cumulatively.
	dir2 := t.TempDir()
	fresh := makeSessionFile(t, dir2, "app", 3, 0)
	a.Register(fresh)
	if got := a.Session("app").State(); got != StateDiscovered {
		t.Fatalf("state after re-register = %v, want discovered", got)
	}
	a.ScrapeOnce()
	st := a.Session("app").Snapshot()
	if st.State != "attached" || st.Entries != 16 || st.Path != fresh {
		t.Errorf("after remap: %+v, want attached, 16 cumulative entries, new path", st)
	}
	var joined []string
	for _, ev := range a.Session("app").Trace() {
		joined = append(joined, ev.Event)
	}
	if trace := strings.Join(joined, "\n"); !strings.Contains(trace, "re-registered") {
		t.Errorf("trace missing re-registration:\n%s", trace)
	}
}

func TestBackPressureDegradesAndRecovers(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	path := makeSessionFile(t, dir, "flood", 0, 0)
	a := New(Config{Spool: dir, ScrapeBudget: 10, DegradedEvery: 4})
	defer a.Close()
	a.ScrapeOnce() // attach

	flood := func(pairs int) {
		log, err := shmlog.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		writePairs(t, log, pairs)
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s := a.Session("flood")

	flood(20) // 40 entries > budget 10
	a.ScrapeOnce()
	if s.Snapshot().Degraded {
		t.Fatal("degraded after one over-budget scrape; needs two consecutive")
	}
	flood(20)
	a.ScrapeOnce()
	if !s.Snapshot().Degraded {
		t.Fatal("not degraded after two consecutive over-budget scrapes")
	}

	// While the flood continues, the degraded session is only scraped on
	// every 4th cycle — the skipped cycles never touch the mapping.
	scrapesBefore := s.Snapshot().Scrapes
	for i := 0; i < 3; i++ {
		flood(20)
		a.ScrapeOnce()
	}
	performed := s.Snapshot().Scrapes - scrapesBefore
	if performed > 1 {
		t.Errorf("degraded session scraped %d times in 3 cycles, want at most 1", performed)
	}

	// Once the flood subsides, a performed scrape under half budget
	// recovers full-rate scraping.
	for i := 0; i < 8 && s.Snapshot().Degraded; i++ {
		a.ScrapeOnce()
	}
	if s.Snapshot().Degraded {
		t.Error("session still degraded after flood subsided")
	}
}

// TestAutoThrottlePushesPeriod: with AutoThrottle on, the back-pressure
// detector does more than degrade its own scraping — it pushes a sampling
// period into the flooding session's shared header (live recording-side
// throttle) and restores the previous period on recovery.
func TestAutoThrottlePushesPeriod(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	path := makeSessionFile(t, dir, "flood", 0, 0)
	a := New(Config{Spool: dir, ScrapeBudget: 10, AutoThrottle: true, ThrottlePeriod: 8})
	defer a.Close()
	a.ScrapeOnce() // attach

	flood := func(pairs int) {
		log, err := shmlog.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		writePairs(t, log, pairs)
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s := a.Session("flood")
	headerPeriod := func() uint64 {
		t.Helper()
		obs, err := shmlog.ObserveFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer obs.Close()
		return obs.SamplePeriod()
	}

	flood(20)
	a.ScrapeOnce()
	if s.Snapshot().Throttled {
		t.Fatal("throttled after one over-budget scrape; needs two consecutive")
	}
	if got := headerPeriod(); got != 0 {
		t.Fatalf("period pushed early: %d", got)
	}
	flood(20)
	a.ScrapeOnce()
	if !s.Snapshot().Throttled {
		t.Fatal("not throttled after two consecutive over-budget scrapes")
	}
	if got := headerPeriod(); got != 8 {
		t.Fatalf("header sample period = %d, want 8", got)
	}

	// The pushed period rides the ordinary degrade/recover state machine:
	// once the flood subsides, recovery restores what was there before.
	for i := 0; i < 16 && s.Snapshot().Degraded; i++ {
		a.ScrapeOnce()
	}
	if s.Snapshot().Throttled {
		t.Error("session still throttled after flood subsided")
	}
	if got := headerPeriod(); got != 0 {
		t.Errorf("restored sample period = %d, want 0 (the pre-throttle value)", got)
	}
}

func TestSymbolAdoption(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	path := makeSessionFile(t, dir, "app", 10, 0)
	a := New(Config{Spool: dir})
	defer a.Close()
	a.ScrapeOnce()

	// Entries were folded under the placeholder "0x1000" name; publishing
	// the side file must retroactively rename them.
	tab := symtab.New()
	if _, err := tab.Register("hot_loop", 16, "app.c", 1); err != nil {
		t.Fatal(err)
	}
	// The fixture's entries use raw address 0x1000 with no profiler
	// anchor, so register the symbol at the address the table assigned and
	// rewrite: simplest is a table whose first symbol IS at 0x1000 — build
	// it via Read round-trip of a handcrafted table is overkill; instead
	// assert the pre-adoption state and the rename mechanism directly.
	s := a.Session("app")
	if t0 := s.Table(0); len(t0.Funcs) != 1 || t0.Funcs[0].Name != "0x1000" {
		t.Fatalf("pre-adoption table = %+v, want one func named 0x1000", t0.Funcs)
	}
	if err := recorder.WriteSymsFile(recorder.SymsPath(path), tab); err != nil {
		t.Fatal(err)
	}
	a.ScrapeOnce()
	var joined []string
	for _, ev := range s.Trace() {
		joined = append(joined, ev.Event)
	}
	if trace := strings.Join(joined, "\n"); !strings.Contains(trace, "symbols: adopted") {
		t.Errorf("trace missing symbol adoption:\n%s", trace)
	}
}

func TestFleetMetricsAndEndpoints(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	makeSessionFile(t, dir, "alpha", 10, 0)
	makeSessionFile(t, dir, "beta", 20, 0)
	a := New(Config{Spool: dir})
	defer a.Close()
	a.ScrapeOnce()

	rr := httptest.NewRecorder()
	a.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		`teeperf_entries_committed_total{session="alpha"} 20`,
		`teeperf_entries_committed_total{session="beta"} 40`,
		"teeperf_fleet_sessions 2",
		"teeperf_fleet_entries_committed_total 60",
		`teeperf_session_state{session="alpha",state="attached"} 1`,
		`teeperf_session_state{session="alpha",state="live"} 0`,
		`teeperf_fleet_sessions_by_state{state="attached"} 2`,
		"teeperf_agent_scrape_cycles_total 1",
		"# TYPE teeperf_agent_scrape_duration_seconds histogram",
		`teeperf_agent_scrape_duration_seconds_bucket{le="+Inf"} 1`,
		"teeperf_agent_scrape_duration_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
	// HELP/TYPE must appear once per name even with two sessions.
	if got := strings.Count(body, "# HELP teeperf_entries_committed_total"); got != 1 {
		t.Errorf("HELP emitted %d times, want 1", got)
	}

	rr = httptest.NewRecorder()
	a.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/sessions", nil))
	var infos []Info
	if err := json.Unmarshal(rr.Body.Bytes(), &infos); err != nil {
		t.Fatalf("/sessions not JSON: %v", err)
	}
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Errorf("/sessions = %+v", infos)
	}

	rr = httptest.NewRecorder()
	a.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/profile.json?session=alpha", nil))
	var prof struct {
		Session   string `json:"session"`
		Functions []struct {
			Name  string `json:"name"`
			Calls uint64 `json:"calls"`
		} `json:"functions"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &prof); err != nil {
		t.Fatalf("/profile.json not JSON: %v", err)
	}
	if prof.Session != "alpha" || len(prof.Functions) != 1 || prof.Functions[0].Calls != 10 {
		t.Errorf("/profile.json = %+v", prof)
	}

	rr = httptest.NewRecorder()
	a.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/profile.json?session=nope", nil))
	if rr.Code != 404 {
		t.Errorf("unknown session status = %d, want 404", rr.Code)
	}

	rr = httptest.NewRecorder()
	a.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/vars", nil))
	var vars map[string]float64
	if err := json.Unmarshal(rr.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if vars[`teeperf_entries_committed_total{session="beta"}`] != 40 {
		t.Errorf("/vars beta entries = %f", vars[`teeperf_entries_committed_total{session="beta"}`])
	}

	rr = httptest.NewRecorder()
	a.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	index := rr.Body.String()
	for _, want := range []string{"teeperf fleet agent", "<code>alpha</code>", "<code>beta</code>"} {
		if !strings.Contains(index, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestRegisterEndpointAndServe(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	path := makeSessionFile(t, dir, "pushed", 5, 0)

	a := New(Config{Interval: time.Millisecond})
	srv, err := Serve(a, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer srv.Close()

	rr := httptest.NewRecorder()
	a.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/register?path="+path, nil))
	if rr.Code != 200 {
		t.Fatalf("/register status = %d: %s", rr.Code, rr.Body.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := a.Session("pushed"); s != nil && s.Snapshot().Entries == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("registered session never scraped by the background loop")
		}
		time.Sleep(time.Millisecond)
	}

	rr = httptest.NewRecorder()
	a.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/register?path="+path, nil))
	if rr.Code != 405 {
		t.Errorf("GET /register status = %d, want 405", rr.Code)
	}
}

func TestDiscoveredStaysUntilMappable(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	// A file too short to be a log: stays discovered, no crash.
	bad := filepath.Join(dir, "torn.shm")
	if err := os.WriteFile(bad, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	a := New(Config{Spool: dir})
	defer a.Close()
	a.ScrapeOnce()
	if got := a.Session("torn").State(); got != StateDiscovered {
		t.Fatalf("state = %v, want discovered", got)
	}
	// The creator finishes laying the file out; the next cycle attaches.
	if err := os.Remove(bad); err != nil {
		t.Fatal(err)
	}
	makeSessionFile(t, dir, "torn", 4, 0)
	a.ScrapeOnce()
	st := a.Session("torn").Snapshot()
	if st.State != "attached" || st.Entries != 8 {
		t.Errorf("after repair: %+v, want attached with 8 entries", st)
	}
}

func TestWriteSummaryDeterministic(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()
	makeSessionFile(t, dir, "b", 2, 0)
	makeSessionFile(t, dir, "a", 1, 0)
	a := New(Config{Spool: dir})
	defer a.Close()
	a.ScrapeOnce()
	var sb strings.Builder
	a.WriteSummary(&sb)
	out := sb.String()
	if !strings.Contains(out, "fleet: 2 sessions, 2 attached") {
		t.Errorf("summary header wrong:\n%s", out)
	}
	if strings.Index(out, "\na ") > strings.Index(out, "\nb ") {
		t.Errorf("sessions not name-sorted:\n%s", out)
	}
	var sb2 strings.Builder
	a.WriteSummary(&sb2)
	if sb2.String() != out {
		t.Error("summary not stable across calls")
	}
}

// Silence unused-import lint when the monitor package is only used via
// metrics assertions in some build configurations.
var _ = monitor.SessionLabel
