//go:build linux || darwin

package agent

import "syscall"

// pidAlive probes whether pid answers signal 0. known is true on platforms
// where the probe is meaningful; EPERM means the process exists but belongs
// to someone else, which still counts as alive.
func pidAlive(pid uint64) (alive, known bool) {
	if pid == 0 || pid > 1<<31 {
		return false, false
	}
	err := syscall.Kill(int(pid), 0)
	if err == nil || err == syscall.EPERM {
		return true, true
	}
	return false, true
}
