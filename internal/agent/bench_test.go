package agent

import (
	"fmt"
	"path/filepath"
	"testing"

	"teeperf/internal/shmlog"
)

// BenchmarkAgentScrape measures one fleet scrape cycle: per iteration each
// of 8 sessions commits a burst of 128 call/return pairs and the agent
// drains and folds all of them. This is the agent's hot path — the cost a
// scrape interval must amortize.
func BenchmarkAgentScrape(b *testing.B) {
	if !shmlog.MmapSupported {
		b.Skip("mmap unsupported on this platform")
	}
	const sessions = 8
	const pairs = 128
	dir := b.TempDir()
	a := New(Config{})
	defer a.Close()
	writers := make([]*shmlog.Log, sessions)
	for i := range writers {
		path := filepath.Join(dir, fmt.Sprintf("s%02d.shm", i))
		log, err := shmlog.CreateFile(path, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		writers[i] = log
		a.Register(path)
	}
	a.ScrapeOnce() // attach every session

	b.ResetTimer()
	b.ReportAllocs()
	full := false
	for i := 0; i < b.N; i++ {
		for _, log := range writers {
			tick := uint64(i * pairs * 8)
			for p := 0; p < pairs && !full; p++ {
				tick += 3
				if log.Append(shmlog.Entry{Kind: shmlog.KindCall, Counter: tick, Addr: 0x1000, ThreadID: 1}) != nil {
					full = true // very long -benchtime outran the capacity
					break
				}
				tick += 5
				_ = log.Append(shmlog.Entry{Kind: shmlog.KindReturn, Counter: tick, Addr: 0x1000, ThreadID: 1})
			}
		}
		if drained := a.ScrapeOnce(); !full && drained != sessions*pairs*2 {
			b.Fatalf("drained %d, want %d", drained, sessions*pairs*2)
		}
	}
	b.ReportMetric(float64(sessions*pairs*2), "entries/op")
}
