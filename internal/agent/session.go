// Package agent implements the fleet observability plane: one daemon
// hosting many concurrent shared-memory profiling sessions. Where the
// monitor package observes the single recorder living in its own process,
// the agent observes *other* processes' recordings from the outside — it
// discovers .shm mappings in a spool directory (or accepts explicit
// registrations), attaches to each with a read-only observer mapping
// (shmlog.ObserveFile, invisible to the app/recorder handshake), tails
// every session's log with an incremental cursor, and exposes the whole
// fleet through one Prometheus/HTML/JSON endpoint set.
//
// Sessions move through a lifecycle state machine:
//
//	discovered → attached → live → dead → salvaged
//
// discovered: the spool file exists but could not be mapped yet (the
// creator may still be writing the header). attached: mapped and scraped,
// but application liveness is unknown (no PID stamped, or the platform
// cannot probe PIDs). live: the stamped application PID answers a liveness
// probe. dead: the PID stopped answering — the session gets one final
// cursor drain and a raw-file salvage pass (shmlog.ReadLenient), then
// rests in salvaged with its recovery report attached. A session may also
// re-register (same name, new file): the agent re-maps it and the attach
// generation gauge moves.
package agent

import (
	"fmt"
	"os"
	"sync"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/recorder"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// State is a session's position in the lifecycle state machine.
type State int

const (
	// StateDiscovered: the spool file exists, mapping not yet succeeded.
	StateDiscovered State = iota + 1
	// StateAttached: mapped and scraped; application liveness unknown.
	StateAttached
	// StateLive: the stamped application PID answers liveness probes.
	StateLive
	// StateDead: the PID stopped answering; salvage is about to run.
	StateDead
	// StateSalvaged: terminal — final drain and raw-file recovery done.
	StateSalvaged
)

var stateNames = map[State]string{
	StateDiscovered: "discovered",
	StateAttached:   "attached",
	StateLive:       "live",
	StateDead:       "dead",
	StateSalvaged:   "salvaged",
}

// States lists every lifecycle state in order (for one-hot metric export).
var States = []State{StateDiscovered, StateAttached, StateLive, StateDead, StateSalvaged}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// TraceEvent is one entry of a session's lifecycle trace ring: what
// happened, on which scrape cycle. Cycles rather than wall-clock times keep
// traces deterministic for golden tests.
type TraceEvent struct {
	Cycle uint64 `json:"cycle"`
	Event string `json:"event"`
}

// traceCap bounds each session's trace ring.
const traceCap = 256

// Session is one observed recording: an observer mapping over a shared
// log, an incremental analyzer folding its committed entries into a live
// profile, and the lifecycle/back-pressure accounting around them.
// All methods are guarded by mu; the agent's scrape loop and the HTTP
// handlers may touch a session concurrently.
type Session struct {
	mu sync.Mutex

	name string
	path string

	state State
	log   *shmlog.Log // nil while discovered
	cur   *shmlog.Cursor
	tab   *symtab.Table
	inc   *analyzer.Incremental
	syms  *recorder.SymsLoader
	buf   []shmlog.Entry

	entries   uint64 // committed entries drained so far
	appPID    uint64 // stamped application PID (0 until the app attaches)
	attachGen uint64
	scrapes   uint64 // scrapes actually performed (not skipped)

	salvage    *shmlog.RecoveryReport // set once salvaged
	historySeg string                 // history-store segment ID, once ingested

	// Back-pressure: a session that floods the agent (drains more than
	// budget entries per scrape, twice in a row) is degraded to sampled
	// scraping — only every degradedEvery-th cycle — until a performed
	// scrape comes back under half the budget.
	overBudget int
	degraded   bool

	// Auto-throttle: with Config.AutoThrottle, degradation also pushes a
	// sampling period into the session's shared header through a writable
	// control mapping (ctl), live-throttling the tenant's *recording*;
	// prevPeriod is what recovery restores.
	ctl        *shmlog.Log
	throttled  bool
	prevPeriod uint64

	// lastEntries/lastScrape feed the per-session rate gauges.
	lastEntries uint64
	lastScrape  time.Time
	entriesRate float64

	trace []TraceEvent
}

func newSession(name, path string) *Session {
	s := &Session{name: name, path: path, state: StateDiscovered}
	return s
}

// Name returns the session's registry key (spool basename minus ".shm").
func (s *Session) Name() string { return s.name }

// Path returns the observed mapping path.
func (s *Session) Path() string { return s.path }

// State returns the current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Info is a session's externally visible accounting, as served by
// /sessions and folded into the fleet metrics.
type Info struct {
	Name      string  `json:"name"`
	Path      string  `json:"path"`
	State     string  `json:"state"`
	Entries   uint64  `json:"entries"`
	Dropped   uint64  `json:"dropped"`
	Capacity  int     `json:"capacity"`
	FillPct   float64 `json:"fill_percent"`
	AppPID    uint64  `json:"app_pid"`
	AttachGen uint64  `json:"attach_gen"`
	Degraded  bool    `json:"degraded"`
	Throttled bool    `json:"throttled"`
	Scrapes   uint64  `json:"scrapes"`
	Salvaged  uint64  `json:"salvaged_entries"`
	Rate      float64 `json:"entries_per_second"`
	Functions int     `json:"functions"`
	// HistorySegment is the history-store segment ID this session's entries
	// were persisted under at salvage (empty before, or without a store).
	HistorySegment string `json:"history_segment,omitempty"`
}

// Snapshot returns the session's current accounting.
func (s *Session) Snapshot() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Session) snapshotLocked() Info {
	info := Info{
		Name:      s.name,
		Path:      s.path,
		State:     s.state.String(),
		Entries:   s.entries,
		AppPID:    s.appPID,
		AttachGen: s.attachGen,
		Degraded:  s.degraded,
		Throttled: s.throttled,
		Scrapes:   s.scrapes,
		Rate:      s.entriesRate,
	}
	if s.log != nil {
		info.Dropped = s.log.Dropped()
		info.Capacity = s.log.Capacity()
		if info.Capacity > 0 {
			info.FillPct = 100 * float64(s.log.Len()) / float64(info.Capacity)
		}
	}
	if s.inc != nil {
		info.Functions = len(s.inc.Snapshot(0).Funcs)
	}
	if s.salvage != nil {
		info.Salvaged = uint64(s.salvage.EntriesSalvaged)
	}
	info.HistorySegment = s.historySeg
	return info
}

// Salvage returns the recovery report once the session reached salvaged
// (nil before).
func (s *Session) Salvage() *shmlog.RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.salvage
}

// Trace returns a copy of the lifecycle trace ring, oldest first.
func (s *Session) Trace() []TraceEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceEvent, len(s.trace))
	copy(out, s.trace)
	return out
}

// Table drains nothing (the scrape loop owns the cursor) and returns the
// live hot-methods table as of the last scrape.
func (s *Session) Table(top int) analyzer.LiveTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inc == nil {
		return analyzer.LiveTable{}
	}
	return s.inc.Snapshot(top)
}

func (s *Session) traceLocked(cycle uint64, format string, args ...any) {
	if len(s.trace) == traceCap {
		copy(s.trace, s.trace[1:])
		s.trace = s.trace[:traceCap-1]
	}
	s.trace = append(s.trace, TraceEvent{Cycle: cycle, Event: fmt.Sprintf(format, args...)})
}

func (s *Session) setStateLocked(cycle uint64, next State, why string) {
	if s.state == next {
		return
	}
	s.traceLocked(cycle, "%s -> %s (%s)", s.state, next, why)
	s.state = next
}

// scrape advances the session one observation cycle: attach if not yet
// mapped, probe application liveness, drain newly committed entries into
// the incremental analyzer, adopt a republished symbol side file, and run
// the back-pressure accounting (with the optional recording-side throttle).
// It returns the number of entries drained. cfg is the agent's (defaulted)
// config; now is the scrape instant (for rate computation only — lifecycle
// decisions never read it).
func (s *Session) scrape(cycle uint64, cfg Config, now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()

	switch s.state {
	case StateSalvaged:
		return 0
	case StateDiscovered:
		if !s.attachLocked(cycle) {
			return 0
		}
	}

	// Degraded sessions are sampled: only every DegradedEvery-th cycle
	// touches the mapping, so one flooding tenant cannot starve the rest
	// of the fleet's scrape interval.
	if s.degraded && cycle%uint64(cfg.DegradedEvery) != 0 {
		return 0
	}

	// Liveness: the application stamps its PID into the header when it
	// attaches. Before that (appPID 0) liveness is unknowable and the
	// session stays attached. A PID that stops answering is dead exactly
	// once — salvage runs and the state machine rests.
	if pid := s.log.PID(); pid != 0 {
		s.appPID = pid
		if alive, known := pidAlive(pid); known {
			if alive {
				s.setStateLocked(cycle, StateLive, fmt.Sprintf("pid %d alive", pid))
			} else {
				s.setStateLocked(cycle, StateDead, fmt.Sprintf("pid %d gone", pid))
				s.salvageLocked(cycle, cfg)
				return 0
			}
		}
	}
	s.attachGen = s.log.AttachGen()

	drained := s.drainLocked()
	s.scrapes++
	if tab, ok := s.syms.Load(); ok {
		s.adoptTableLocked(cycle, tab)
	}

	// Rates for the dashboard; guarded so sub-millisecond windows don't
	// amplify scheduling noise.
	if !s.lastScrape.IsZero() {
		if dt := now.Sub(s.lastScrape).Seconds(); dt >= 0.001 {
			s.entriesRate = float64(s.entries-s.lastEntries) / dt
		}
	}
	s.lastScrape = now
	s.lastEntries = s.entries

	// Back-pressure bookkeeping.
	switch {
	case drained > cfg.ScrapeBudget:
		s.overBudget++
		if !s.degraded && s.overBudget >= 2 {
			s.degraded = true
			s.traceLocked(cycle, "degraded: %d entries > budget %d twice", drained, cfg.ScrapeBudget)
			if cfg.AutoThrottle {
				s.throttleLocked(cycle, cfg.ThrottlePeriod)
			}
		}
	case drained < cfg.ScrapeBudget/2:
		s.overBudget = 0
		if s.degraded {
			s.degraded = false
			s.traceLocked(cycle, "recovered: %d entries < half budget", drained)
			s.unthrottleLocked(cycle)
		}
	default:
		s.overBudget = 0
	}
	return drained
}

// throttleLocked pushes a sampling period into the session's shared header.
// The observer mapping is read-only, so the first throttle opens a second,
// writable control mapping over the same file (shmlog.ControlFile — no
// attach-generation bump, stores restricted to the control words); the
// tenant's probes pick the new period up on the generation bump without any
// restart. Failures are traced and left for the next degrade to retry.
func (s *Session) throttleLocked(cycle uint64, period uint64) {
	if s.ctl == nil {
		ctl, err := shmlog.ControlFile(s.path)
		if err != nil {
			s.traceLocked(cycle, "throttle: control map: %v", err)
			return
		}
		s.ctl = ctl
	}
	s.prevPeriod = s.ctl.SamplePeriod()
	s.ctl.SetSamplePeriod(period)
	s.throttled = true
	s.traceLocked(cycle, "throttle: pushed sample period %d (was %d)", period, s.prevPeriod)
}

// unthrottleLocked restores the sampling period the throttle displaced.
func (s *Session) unthrottleLocked(cycle uint64) {
	if !s.throttled || s.ctl == nil {
		return
	}
	s.ctl.SetSamplePeriod(s.prevPeriod)
	s.throttled = false
	s.traceLocked(cycle, "throttle: restored sample period %d", s.prevPeriod)
}

// attachLocked tries to establish the observer mapping. Failure is normal
// while the creator is still laying out the header; the session just stays
// discovered until a later cycle.
func (s *Session) attachLocked(cycle uint64) bool {
	log, err := shmlog.ObserveFile(s.path)
	if err != nil {
		return false
	}
	s.log = log
	s.cur = log.Cursor()
	s.tab = symtab.New()
	if addr := log.ProfilerAddr(); addr != 0 {
		s.tab.SetLoadBias(addr)
	}
	s.inc = analyzer.NewIncremental(s.tab)
	s.syms = recorder.NewSymsLoader(s.path)
	s.attachGen = log.AttachGen()
	s.setStateLocked(cycle, StateAttached, "observer mapped")
	return true
}

// remap points the session at a fresh file under the same name — a
// re-registration. The old mapping is closed, the analyzer state reset
// (it described the old log), and cumulative entry accounting continues.
func (s *Session) remap(cycle uint64, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log != nil {
		_ = s.log.Close()
		s.log, s.cur, s.inc, s.tab, s.syms = nil, nil, nil, nil, nil
	}
	if s.ctl != nil {
		_ = s.ctl.Close()
		s.ctl = nil
	}
	s.path = path
	s.salvage = nil
	s.degraded = false
	s.throttled = false
	s.overBudget = 0
	s.appPID = 0
	s.setStateLocked(cycle, StateDiscovered, "re-registered "+path)
}

func (s *Session) drainLocked() int {
	// The recording may be sampled (by the recorder, or by this agent's own
	// throttle); weigh entries by the period in effect when they drain.
	s.inc.SetSamplePeriod(s.log.SamplePeriod())
	s.buf = s.cur.Next(s.buf[:0])
	s.inc.FeedAll(s.buf)
	s.entries += uint64(len(s.buf))
	return len(s.buf)
}

// salvageLocked is the dead → salvaged transition: one final cursor drain
// (committed entries are in the mapping regardless of how the app died),
// then a lenient raw-file read whose recovery report becomes the session's
// salvage record. With a history store configured, the drained log is also
// ingested as a durable segment, so dead sessions survive into time-travel
// queries.
func (s *Session) salvageLocked(cycle uint64, cfg Config) {
	drained := s.drainLocked()
	if tab, ok := s.syms.Load(); ok {
		s.adoptTableLocked(cycle, tab)
	}
	s.ingestHistoryLocked(cycle, cfg)
	f, err := os.Open(s.path)
	if err != nil {
		s.traceLocked(cycle, "salvage: open: %v", err)
		s.setStateLocked(cycle, StateSalvaged, "salvage failed")
		return
	}
	_, rep, err := shmlog.ReadLenient(f)
	f.Close()
	if err != nil {
		s.traceLocked(cycle, "salvage: read: %v", err)
		s.setStateLocked(cycle, StateSalvaged, "salvage failed")
		return
	}
	s.salvage = rep
	s.traceLocked(cycle, "salvage: final drain %d, file holds %d committed entries (%d dropped in flight)",
		drained, rep.EntriesSalvaged, rep.DroppedInFlight)
	s.setStateLocked(cycle, StateSalvaged, "recovery complete")
}

// ingestHistoryLocked persists the dead session's committed entries into
// the configured history store. The segment ID pins (name, attach gen), so
// a re-registered mapping under the same name ingests as a new segment
// while an agent restart replaying the same mapping deduplicates. Failure
// is traced, never fatal: salvage must complete regardless.
func (s *Session) ingestHistoryLocked(cycle uint64, cfg Config) {
	if cfg.HistoryStore == nil || s.log == nil {
		return
	}
	seg := fmt.Sprintf("%s@%d", s.name, s.attachGen)
	res, err := cfg.HistoryStore.IngestLog(s.log, s.tab, seg)
	switch {
	case err != nil:
		s.traceLocked(cycle, "history: ingest %s: %v", seg, err)
	case res.Duplicate:
		s.traceLocked(cycle, "history: segment %s already stored (table %d)", seg, res.TableSeq)
	default:
		s.historySeg = seg
		s.traceLocked(cycle, "history: stored segment %s (%d entries, table %d)", seg, res.Entries, res.TableSeq)
	}
}

// adoptTableLocked installs a freshly published symbol table. The
// incremental analyzer resolves names at snapshot time through the table
// pointer it was built with, so the new table's contents are copied in via
// the load-bias anchor and a rebuilt Incremental fed from scratch is not
// needed: names attach to addresses, and addresses were already folded.
func (s *Session) adoptTableLocked(cycle uint64, tab *symtab.Table) {
	if addr := s.log.ProfilerAddr(); addr != 0 {
		tab.SetLoadBias(addr)
	}
	s.tab = tab
	s.inc.SetTable(tab)
	s.traceLocked(cycle, "symbols: adopted %s", s.syms.Path())
}

// close releases the observer mapping (and the control mapping, if a
// throttle ever opened one).
func (s *Session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log != nil {
		_ = s.log.Close()
		s.log = nil
	}
	if s.ctl != nil {
		_ = s.ctl.Close()
		s.ctl = nil
	}
}
