package agent

import (
	"os/exec"
	"strings"
	"testing"

	"teeperf/internal/profilestore"
	"teeperf/internal/shmlog"
)

// TestSalvageIngestsIntoHistoryStore drives the dead → salvaged transition
// with a history store configured and asserts the session's drained entries
// became a durable, queryable segment — and that a replay of the same
// mapping deduplicates instead of double-counting.
func TestSalvageIngestsIntoHistoryStore(t *testing.T) {
	requireMmap(t)
	dir := t.TempDir()

	st, err := profilestore.Open(t.TempDir(), profilestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	child := exec.Command("sleep", "60")
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = child.Process.Kill(); _, _ = child.Process.Wait() }()
	makeSessionFile(t, dir, "app", 15, uint64(child.Process.Pid))

	a := New(Config{Spool: dir, HistoryStore: st})
	defer a.Close()
	a.ScrapeOnce()
	s := a.Session("app")
	if got := s.State(); got != StateLive {
		t.Fatalf("state = %v, want live", got)
	}

	_ = child.Process.Kill()
	_, _ = child.Process.Wait()
	a.ScrapeOnce()
	if got := s.State(); got != StateSalvaged {
		t.Fatalf("state after kill = %v, want salvaged", got)
	}

	info := s.Snapshot()
	if info.HistorySegment == "" {
		t.Fatalf("salvaged session has no history segment: %+v", info)
	}
	segs := st.Segments()
	if _, ok := segs[info.HistorySegment]; !ok {
		t.Fatalf("segment %q not in store: %v", info.HistorySegment, segs)
	}

	// The stored entries answer a time-travel query.
	p, err := st.Profile(profilestore.AllThreads, 0, profilestore.FullWindow)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Records()) == 0 {
		t.Fatal("history profile has no completed calls")
	}

	// Replay: ingesting the same (name, attach gen) again is a no-op.
	before := len(st.Segments())
	res, err := st.IngestLog(mustObserve(t, s), nil, info.HistorySegment)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Duplicate {
		t.Fatalf("replayed segment not deduplicated: %+v", res)
	}
	if got := len(st.Segments()); got != before {
		t.Fatalf("segments grew on replay: %d -> %d", before, got)
	}

	// The trace records the ingest.
	var joined []string
	for _, ev := range s.Trace() {
		joined = append(joined, ev.Event)
	}
	if trace := strings.Join(joined, "\n"); !strings.Contains(trace, "history: stored segment") {
		t.Errorf("trace missing history ingest:\n%s", trace)
	}

	// Fleet metrics include the store gauges when a store is configured.
	var sawStore bool
	for _, m := range a.Metrics() {
		if m.Name == "teeperf_store_segments" {
			sawStore = true
			if m.Value < 1 {
				t.Errorf("teeperf_store_segments = %v, want >= 1", m.Value)
			}
		}
	}
	if !sawStore {
		t.Error("agent metrics missing teeperf_store_* gauges")
	}
}

// mustObserve returns the session's mapped log for replay in tests.
func mustObserve(t *testing.T, s *Session) *shmlog.Log {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		t.Fatal("session has no mapping")
	}
	return s.log
}
