package kvstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"teeperf/internal/tee"
)

func TestIteratorMergedOrder(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, &Options{MaxL0Tables: 8})

	// Spread keys across memtable, L0 and L1 with shadowing and deletes.
	for i := 0; i < 60; i++ {
		if err := db.Put(th, []byte(fmt.Sprintf("k%03d", i)), []byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(th); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(th); err != nil { // -> L1
		t.Fatal(err)
	}
	for i := 20; i < 40; i++ {
		if err := db.Put(th, []byte(fmt.Sprintf("k%03d", i)), []byte("mid")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(th); err != nil { // -> L0
		t.Fatal(err)
	}
	for i := 30; i < 50; i++ {
		if err := db.Put(th, []byte(fmt.Sprintf("k%03d", i)), []byte("new")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(th, []byte("k000")); err != nil {
		t.Fatal(err)
	}

	it, err := db.NewIterator(th)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for it.Next() {
		k, v := string(it.Key()), string(it.Value())
		keys = append(keys, k)
		var want string
		n := 0
		fmt.Sscanf(k, "k%03d", &n)
		switch {
		case n >= 30 && n < 50:
			want = "new"
		case n >= 20 && n < 30:
			want = "mid"
		default:
			want = "old"
		}
		if v != want {
			t.Errorf("%s = %q, want %q", k, v, want)
		}
	}
	if len(keys) != 59 { // 60 minus the deleted k000
		t.Fatalf("iterated %d keys, want 59", len(keys))
	}
	if !sort.StringsAreSorted(keys) {
		t.Error("iterator output not sorted")
	}
	if keys[0] != "k001" {
		t.Errorf("first key = %s, want k001 (k000 deleted)", keys[0])
	}
	// Exhausted iterator stays exhausted and accessors return nil.
	if it.Next() {
		t.Error("Next after exhaustion returned true")
	}
	if it.Key() != nil || it.Value() != nil {
		t.Error("accessors non-nil after exhaustion")
	}
}

func TestIteratorSeek(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, nil)
	for _, k := range []string{"apple", "banana", "cherry", "damson"} {
		if err := db.Put(th, []byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	it, err := db.NewIterator(th)
	if err != nil {
		t.Fatal(err)
	}
	if !it.Seek([]byte("b")) {
		t.Fatal("Seek(b) found nothing")
	}
	if string(it.Key()) != "banana" {
		t.Errorf("Seek(b) = %s, want banana", it.Key())
	}
	if !it.Next() || string(it.Key()) != "cherry" {
		t.Errorf("Next after seek = %s, want cherry", it.Key())
	}

	it2, err := db.NewIterator(th)
	if err != nil {
		t.Fatal(err)
	}
	if it2.Seek([]byte("zzz")) {
		t.Error("Seek past the end should return false")
	}
}

func TestRangeScan(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, nil)
	for i := 0; i < 20; i++ {
		if err := db.Put(th, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.RangeScan(th, []byte("k05"), []byte("k10"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("range [k05,k10) = %d pairs, want 5", len(got))
	}
	if string(got[0][0]) != "k05" || string(got[4][0]) != "k09" {
		t.Errorf("range bounds wrong: %s..%s", got[0][0], got[4][0])
	}
	// Open-ended scan.
	all, err := db.RangeScan(th, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Errorf("full scan = %d pairs, want 20", len(all))
	}
	// Empty range.
	none, err := db.RangeScan(th, []byte("x"), []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("empty range returned %d pairs", len(none))
	}
}

func TestIteratorEmptyDB(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, nil)
	it, err := db.NewIterator(th)
	if err != nil {
		t.Fatal(err)
	}
	if it.Next() {
		t.Error("empty db iterator returned a key")
	}
}

func TestIteratorAgainstReferenceProperty(t *testing.T) {
	// Property: after random puts/deletes/flushes, the iterator yields
	// exactly the reference map's live pairs in sorted order.
	f := func(seed int64) bool {
		host := tee.NewHost(1)
		encl, err := tee.NewEnclave(tee.Native(), host, tee.WithoutSpin())
		if err != nil {
			return false
		}
		th := encl.Thread()
		db, err := Open(host, th, "iterprop", &Options{MemtableFlushSize: 1024, MaxL0Tables: 2, BlockSize: 256})
		if err != nil {
			return false
		}
		ref := make(map[string]string)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("key-%02d", rng.Intn(60))
			switch rng.Intn(8) {
			case 0:
				if db.Delete(th, []byte(key)) != nil {
					return false
				}
				delete(ref, key)
			case 1:
				if db.Flush(th) != nil {
					return false
				}
			default:
				val := fmt.Sprintf("v%d", rng.Int31())
				if db.Put(th, []byte(key), []byte(val)) != nil {
					return false
				}
				ref[key] = val
			}
		}
		var wantKeys []string
		for k := range ref {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)

		it, err := db.NewIterator(th)
		if err != nil {
			return false
		}
		i := 0
		for it.Next() {
			if i >= len(wantKeys) {
				return false
			}
			if string(it.Key()) != wantKeys[i] || string(it.Value()) != ref[wantKeys[i]] {
				return false
			}
			i++
		}
		return i == len(wantKeys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
