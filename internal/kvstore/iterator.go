package kvstore

import (
	"bytes"
	"container/heap"

	"teeperf/internal/tee"
)

// Iterator walks the merged, live view of the store in key order:
// memtable over L0 (newest first) over L1, tombstones resolved. It holds a
// consistent snapshot of the table list taken at creation; concurrent
// writes to the memtable after creation are not reflected.
type Iterator struct {
	h       mergeHeap
	current *iterItem
	err     error
}

// iterSource is one sorted input run with a priority (lower wins ties).
type iterSource struct {
	entries []tableEntry
	pos     int
	prio    int
}

type iterItem struct {
	entry tableEntry
	prio  int
	src   *iterSource
}

type mergeHeap []*iterItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if c := bytes.Compare(h[i].entry.key, h[j].entry.key); c != 0 {
		return c < 0
	}
	return h[i].prio < h[j].prio
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *mergeHeap) Push(x any) { *h = append(*h, x.(*iterItem)) }

func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// NewIterator creates an iterator positioned before the first key. I/O for
// table blocks is performed through th at creation time (matching the
// paper's enclave I/O model where reads are OCALLs on the caller).
func (db *DB) NewIterator(th *tee.Thread) (*Iterator, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()

	var sources []*iterSource
	prio := 0
	var memRecs []tableEntry
	for _, e := range db.mem.entries() {
		memRecs = append(memRecs, tableEntry{key: e.key, value: e.value, seq: e.seq, del: e.del})
	}
	sources = append(sources, &iterSource{entries: memRecs, prio: prio})
	prio++
	for _, t := range db.l0 {
		recs, err := t.all(th)
		if err != nil {
			return nil, err
		}
		sources = append(sources, &iterSource{entries: recs, prio: prio})
		prio++
	}
	for _, t := range db.l1 {
		recs, err := t.all(th)
		if err != nil {
			return nil, err
		}
		// All L1 tables share one priority level: they are
		// non-overlapping.
		sources = append(sources, &iterSource{entries: recs, prio: prio})
	}

	it := &Iterator{}
	for _, src := range sources {
		if len(src.entries) > 0 {
			it.h = append(it.h, &iterItem{entry: src.entries[0], prio: src.prio, src: src})
			src.pos = 1
		}
	}
	heap.Init(&it.h)
	return it, nil
}

// Next advances to the next live key. It returns false when exhausted.
func (it *Iterator) Next() bool {
	for {
		item := it.popMin()
		if item == nil {
			it.current = nil
			return false
		}
		// Drop shadowed versions of the same key (higher priority value
		// already popped wins; here item IS the winner, so discard the
		// rest of the equal-key run).
		for {
			peek := it.peekMin()
			if peek == nil || !bytes.Equal(peek.entry.key, item.entry.key) {
				break
			}
			it.popMin()
		}
		if item.entry.del {
			continue // tombstone: key is dead
		}
		it.current = item
		return true
	}
}

// Seek positions the iterator at the first live key >= target, returning
// false if none exists.
func (it *Iterator) Seek(target []byte) bool {
	for it.Next() {
		if bytes.Compare(it.Key(), target) >= 0 {
			return true
		}
	}
	return false
}

func (it *Iterator) popMin() *iterItem {
	if it.h.Len() == 0 {
		return nil
	}
	item, ok := heap.Pop(&it.h).(*iterItem)
	if !ok {
		return nil
	}
	// Refill from the item's source.
	src := item.src
	if src.pos < len(src.entries) {
		heap.Push(&it.h, &iterItem{entry: src.entries[src.pos], prio: src.prio, src: src})
		src.pos++
	}
	return item
}

func (it *Iterator) peekMin() *iterItem {
	if it.h.Len() == 0 {
		return nil
	}
	return it.h[0]
}

// Key returns the current key. Valid only after Next/Seek returned true.
func (it *Iterator) Key() []byte {
	if it.current == nil {
		return nil
	}
	return it.current.entry.key
}

// Value returns the current value. Valid only after Next/Seek returned
// true.
func (it *Iterator) Value() []byte {
	if it.current == nil {
		return nil
	}
	return it.current.entry.value
}

// RangeScan collects all live pairs in [start, end) in key order. A nil
// end means "to the last key".
func (db *DB) RangeScan(th *tee.Thread, start, end []byte) ([][2][]byte, error) {
	it, err := db.NewIterator(th)
	if err != nil {
		return nil, err
	}
	var out [][2][]byte
	ok := it.Next()
	if len(start) > 0 {
		// Advance to the first key >= start.
		for ok && bytes.Compare(it.Key(), start) < 0 {
			ok = it.Next()
		}
	}
	for ; ok; ok = it.Next() {
		if end != nil && bytes.Compare(it.Key(), end) >= 0 {
			break
		}
		out = append(out, [2][]byte{
			append([]byte(nil), it.Key()...),
			append([]byte(nil), it.Value()...),
		})
	}
	return out, nil
}
