// Package kvstore is the RocksDB stand-in for the paper's Fig 5
// experiment: a log-structured merge-tree key-value store with a skiplist
// memtable, a write-ahead log, block-based sorted tables with bloom
// filters, and leveled compaction — plus a db_bench-style driver whose hot
// path reproduces the two bottlenecks the paper's flame graph exposes
// (per-operation timestamping and random value generation).
package kvstore

import (
	"bytes"
)

const (
	skiplistMaxLevel = 12
	skiplistBranch   = 4
)

// memEntry is one memtable record; nil value encodes a tombstone.
type memEntry struct {
	key   []byte
	value []byte
	seq   uint64
	del   bool
}

type skipNode struct {
	entry memEntry
	next  []*skipNode
}

// memTable is a sorted in-memory table. Later writes of the same key
// shadow earlier ones (seq is informational). Not safe for concurrent use;
// the DB serializes writers.
type memTable struct {
	head     *skipNode
	level    int
	size     int
	count    int
	rngState uint64
}

func newMemTable() *memTable {
	return &memTable{
		head:     &skipNode{next: make([]*skipNode, skiplistMaxLevel)},
		level:    1,
		rngState: 0x736b6970, // "skip"
	}
}

func (m *memTable) randomLevel() int {
	lvl := 1
	for lvl < skiplistMaxLevel {
		m.rngState += 0x9e3779b97f4a7c15
		z := m.rngState
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		if z%skiplistBranch != 0 {
			break
		}
		lvl++
	}
	return lvl
}

// put inserts or overwrites key. del marks a tombstone.
func (m *memTable) put(key, value []byte, seq uint64, del bool) {
	update := make([]*skipNode, skiplistMaxLevel)
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].entry.key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.entry.key, key) {
		m.size += len(value) - len(n.entry.value)
		n.entry.value = append([]byte(nil), value...)
		n.entry.seq = seq
		n.entry.del = del
		return
	}
	lvl := m.randomLevel()
	if lvl > m.level {
		for i := m.level; i < lvl; i++ {
			update[i] = m.head
		}
		m.level = lvl
	}
	node := &skipNode{
		entry: memEntry{
			key:   append([]byte(nil), key...),
			value: append([]byte(nil), value...),
			seq:   seq,
			del:   del,
		},
		next: make([]*skipNode, lvl),
	}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	m.size += len(key) + len(value) + 16
	m.count++
}

// get returns the value for key. found reports presence (including
// tombstones); deleted reports a tombstone.
func (m *memTable) get(key []byte) (value []byte, found, deleted bool) {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].entry.key, key) < 0 {
			x = x.next[i]
		}
	}
	n := x.next[0]
	if n == nil || !bytes.Equal(n.entry.key, key) {
		return nil, false, false
	}
	if n.entry.del {
		return nil, true, true
	}
	return n.entry.value, true, false
}

// entries returns all records in key order.
func (m *memTable) entries() []memEntry {
	out := make([]memEntry, 0, m.count)
	for n := m.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, n.entry)
	}
	return out
}

// approximateSize returns the memtable's memory footprint estimate.
func (m *memTable) approximateSize() int { return m.size }

// len returns the number of distinct keys (including tombstones).
func (m *memTable) len() int { return m.count }
