package kvstore

import "encoding/binary"

// bloomFilter is a split-hash Bloom filter, 10 bits per key by default
// (RocksDB's default), giving ~1% false positives.
type bloomFilter struct {
	bits  []byte
	k     int
	nbits uint32
}

// newBloomFilter sizes a filter for n keys at bitsPerKey.
func newBloomFilter(n, bitsPerKey int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 10
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	k := bitsPerKey * 69 / 100 // ln2 * bitsPerKey
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &bloomFilter{
		bits:  make([]byte, (nbits+7)/8),
		k:     k,
		nbits: uint32((nbits + 7) / 8 * 8),
	}
}

// bloomFromBytes reconstructs a filter serialized by encode.
func bloomFromBytes(data []byte) *bloomFilter {
	if len(data) < 5 {
		return nil
	}
	k := int(data[0])
	bits := data[1:]
	return &bloomFilter{bits: bits, k: k, nbits: uint32(len(bits) * 8)}
}

// encode serializes the filter (k byte + bit array).
func (b *bloomFilter) encode() []byte {
	out := make([]byte, 1+len(b.bits))
	out[0] = byte(b.k)
	copy(out[1:], b.bits)
	return out
}

func bloomHash(key []byte) uint32 {
	// FNV-1a 32-bit seeded variant, mixed for double hashing.
	var h uint32 = 2166136261
	for _, c := range key {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// add inserts key.
func (b *bloomFilter) add(key []byte) {
	h := bloomHash(key)
	delta := h>>17 | h<<15
	for i := 0; i < b.k; i++ {
		pos := h % b.nbits
		b.bits[pos/8] |= 1 << (pos % 8)
		h += delta
	}
}

// mayContain reports whether key may be present (false => definitely not).
func (b *bloomFilter) mayContain(key []byte) bool {
	h := bloomHash(key)
	delta := h>>17 | h<<15
	for i := 0; i < b.k; i++ {
		pos := h % b.nbits
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// putUvarint32 appends v little-endian (fixed 4 bytes) — tiny helper shared
// by the table encoders.
func putU32(dst []byte, v uint32) { binary.LittleEndian.PutUint32(dst, v) }

func getU32(src []byte) uint32 { return binary.LittleEndian.Uint32(src) }

func putU64(dst []byte, v uint64) { binary.LittleEndian.PutUint64(dst, v) }

func getU64(src []byte) uint64 { return binary.LittleEndian.Uint64(src) }
