package kvstore

import (
	"strings"
	"testing"
	"time"

	"teeperf/internal/analyzer"
	"teeperf/internal/counter"
	"teeperf/internal/probe"
	"teeperf/internal/raceinfo"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

func benchPipeline(t *testing.T, platform tee.Platform, spin bool, ops int) (*BenchConfig, *tee.Thread, *shmlog.Log, *symtab.Table) {
	t.Helper()
	host := tee.NewHost(7)
	var enclOpts []tee.EnclaveOption
	if !spin {
		enclOpts = append(enclOpts, tee.WithoutSpin())
	}
	encl, err := tee.NewEnclave(platform, host, enclOpts...)
	if err != nil {
		t.Fatal(err)
	}
	th := encl.Thread()
	db, err := Open(host, th, "benchdb", nil)
	if err != nil {
		t.Fatal(err)
	}
	tab := symtab.New()
	if err := RegisterBenchSymbols(tab); err != nil {
		t.Fatal(err)
	}
	log, err := shmlog.New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var src counter.Source = counter.NewVirtual(1)
	if spin {
		src = counter.NewTSC()
	}
	rt, err := probe.New(log, src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &BenchConfig{
		DB:     db,
		Hooks:  rt.Thread(),
		AddrOf: tab.Addr,
		Ops:    ops,
	}
	return cfg, th, log, tab
}

func TestBenchConfigValidation(t *testing.T) {
	if _, err := RunDBBench(nil, nil); err == nil {
		t.Error("nil config should fail")
	}
	if _, err := RunDBBench(nil, &BenchConfig{}); err == nil {
		t.Error("missing DB should fail")
	}
	cfg, th, _, _ := benchPipeline(t, tee.SGXv1(), false, 10)
	bad := *cfg
	bad.ReadPct = 150
	if _, err := RunDBBench(th, &bad); err == nil {
		t.Error("bad read pct should fail")
	}
	missing := *cfg
	missing.AddrOf = symtab.New().Addr
	if _, err := RunDBBench(th, &missing); err == nil {
		t.Error("unregistered symbols should fail")
	}
}

func TestBenchRunsAndIsDeterministic(t *testing.T) {
	cfg, th, log, tab := benchPipeline(t, tee.SGXv1(), false, 2000)
	res, err := RunDBBench(th, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 {
		t.Errorf("Ops = %d, want 2000", res.Ops)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Errorf("mix degenerate: reads=%d writes=%d", res.Reads, res.Writes)
	}
	// ~80/20 split.
	readFrac := float64(res.Reads) / float64(res.Ops)
	if readFrac < 0.74 || readFrac > 0.86 {
		t.Errorf("read fraction = %.2f, want ~0.80", readFrac)
	}

	// A second identical run over a fresh pipeline must match.
	cfg2, th2, _, _ := benchPipeline(t, tee.SGXv1(), false, 2000)
	res2, err := RunDBBench(th2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Errorf("bench not deterministic:\n  %+v\n  %+v", res, res2)
	}

	// The profile must be balanced and contain the demangled names.
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		t.Fatal(err)
	}
	if p.Truncated != 0 || p.Unmatched != 0 {
		t.Errorf("profile unbalanced: truncated=%d unmatched=%d", p.Truncated, p.Unmatched)
	}
	if _, ok := p.Func("rocksdb::Stats::Now()"); !ok {
		t.Error("rocksdb::Stats::Now() missing from profile")
	}
	now, _ := p.Func("rocksdb::Stats::Now()")
	if want := uint64(2 * 2000); now.Calls != want {
		t.Errorf("Stats::Now calls = %d, want %d (2 per op)", now.Calls, want)
	}
	if _, ok := p.Func("rocksdb::RandomGenerator::RandomGenerator()"); !ok {
		t.Error("RandomGenerator ctor missing from profile")
	}
}

// TestFig5Hotspots reproduces the paper's Fig 5 finding with real injected
// penalties: profiled under SGX, the hottest self-time functions of
// db_bench are rocksdb::Stats::Now() (clock OCALL per op boundary) and
// rocksdb::RandomGenerator::RandomGenerator() (expensive compressible data
// generation).
func TestFig5Hotspots(t *testing.T) {
	if testing.Short() || raceinfo.Enabled {
		t.Skip("timing-sensitive; skipped under -race and -short")
	}
	// Scale OCALLs up a little so the clock reads dominate clearly over
	// scheduling noise, as EPC-resident RocksDB behaves under SCONE.
	platform := tee.SGXv1().Scale(2)
	host := tee.NewHost(7)
	encl, err := tee.NewEnclave(platform, host)
	if err != nil {
		t.Fatal(err)
	}
	th := encl.Thread()
	db, err := Open(host, th, "fig5db", nil)
	if err != nil {
		t.Fatal(err)
	}
	tab := symtab.New()
	if err := RegisterBenchSymbols(tab); err != nil {
		t.Fatal(err)
	}
	log, err := shmlog.New(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := probe.New(log, counter.NewTSC())
	if err != nil {
		t.Fatal(err)
	}
	cfg := &BenchConfig{
		DB:             db,
		Hooks:          rt.Thread(),
		AddrOf:         tab.Addr,
		Ops:            3000,
		RandomDataSize: 4 << 20,
	}
	t0 := time.Now()
	if _, err := RunDBBench(th, cfg); err != nil {
		t.Fatal(err)
	}
	if time.Since(t0) > 30*time.Second {
		t.Logf("warning: bench unexpectedly slow")
	}
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		t.Fatal(err)
	}
	top := p.Top(3)
	names := make([]string, len(top))
	for i, f := range top {
		names[i] = f.Name
	}
	joined := strings.Join(names, " | ")
	if !strings.Contains(joined, "rocksdb::Stats::Now()") {
		t.Errorf("Stats::Now not in top-3 self time: %s", joined)
	}
	if !strings.Contains(joined+" "+p.Top(4)[len(p.Top(4))-1].Name, "RandomGenerator") &&
		!strings.Contains(joined, "CompressibleString") {
		t.Errorf("RandomGenerator/CompressibleString not near the top: %s", joined)
	}
	if f := p.SelfFraction("rocksdb::Stats::Now()"); f < 0.15 {
		t.Errorf("Stats::Now self fraction = %.2f, want a dominant share (>= 0.15)", f)
	}
}
