package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"teeperf/internal/tee"
)

func testEnv(t *testing.T) (*tee.Host, *tee.Thread) {
	t.Helper()
	host := tee.NewHost(42)
	encl, err := tee.NewEnclave(tee.SGXv1(), host, tee.WithoutSpin())
	if err != nil {
		t.Fatal(err)
	}
	return host, encl.Thread()
}

func openTestDB(t *testing.T, host *tee.Host, th *tee.Thread, opts *Options) *DB {
	t.Helper()
	db, err := Open(host, th, "testdb", opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenValidation(t *testing.T) {
	host, th := testEnv(t)
	if _, err := Open(nil, th, "x", nil); err == nil {
		t.Error("nil host should fail")
	}
	if _, err := Open(host, nil, "x", nil); err == nil {
		t.Error("nil thread should fail")
	}
	if _, err := Open(host, th, "", nil); err == nil {
		t.Error("empty name should fail")
	}
}

func TestPutGetDelete(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, nil)

	if err := db.Put(th, []byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get(th, []byte("k1"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v1" {
		t.Errorf("Get = %q, want v1", v)
	}
	// Overwrite.
	if err := db.Put(th, []byte("k1"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, err = db.Get(th, []byte("k1"))
	if err != nil || string(v) != "v2" {
		t.Errorf("Get after overwrite = %q, %v", v, err)
	}
	// Missing.
	if _, err := db.Get(th, []byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	// Delete.
	if err := db.Delete(th, []byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(th, []byte("k1")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(deleted) = %v, want ErrNotFound", err)
	}
	// Empty key rejected.
	if err := db.Put(th, nil, []byte("v")); err == nil {
		t.Error("empty key should fail")
	}
	st := db.Stats()
	if st.Puts != 2 || st.Deletes != 1 || st.Gets != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFlushAndReadFromSSTable(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, &Options{BlockSize: 512})

	const n = 500
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		val := []byte(fmt.Sprintf("val-%05d", i))
		if err := db.Put(th, key, val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(th); err != nil {
		t.Fatal(err)
	}
	l0, _ := db.Levels()
	if l0 == 0 {
		t.Fatal("flush produced no L0 table")
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		v, err := db.Get(th, key)
		if err != nil {
			t.Fatalf("Get(%s) after flush: %v", key, err)
		}
		if want := fmt.Sprintf("val-%05d", i); string(v) != want {
			t.Errorf("Get(%s) = %q, want %q", key, v, want)
		}
	}
	if _, err := db.Get(th, []byte("key-99999")); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(out of range) = %v", err)
	}
}

func TestAutomaticFlushOnMemtableSize(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, &Options{MemtableFlushSize: 4 * 1024})
	val := bytes.Repeat([]byte("x"), 128)
	for i := 0; i < 200; i++ {
		if err := db.Put(th, []byte(fmt.Sprintf("k%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().Flushes == 0 {
		t.Error("no automatic flush despite exceeding memtable size")
	}
}

func TestCompactionMergesLevels(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, &Options{MaxL0Tables: 2, BlockSize: 512})

	// Three flush rounds with overlapping keys; newest wins.
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			key := []byte(fmt.Sprintf("key-%03d", i))
			val := []byte(fmt.Sprintf("round-%d", round))
			if err := db.Put(th, key, val); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(th); err != nil {
			t.Fatal(err)
		}
	}
	l0, l1 := db.Levels()
	if l0 != 0 {
		t.Errorf("L0 tables = %d after compaction, want 0", l0)
	}
	if l1 == 0 {
		t.Error("L1 empty after compaction")
	}
	if db.Stats().Compactions == 0 {
		t.Error("no compaction recorded")
	}
	for i := 0; i < 100; i++ {
		v, err := db.Get(th, []byte(fmt.Sprintf("key-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != "round-2" {
			t.Errorf("key-%03d = %q, want round-2 (newest)", i, v)
		}
	}
}

func TestTombstonesSurviveFlushAndCompaction(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, nil)
	if err := db.Put(th, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(th); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(th, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(th); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(th, []byte("k")); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted key visible after flush: %v", err)
	}
	if err := db.Compact(th); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(th, []byte("k")); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted key resurrected by compaction: %v", err)
	}
}

func TestWALRecovery(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, nil)
	for i := 0; i < 50; i++ {
		if err := db.Put(th, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(th, []byte("k10")); err != nil {
		t.Fatal(err)
	}
	// Reopen without flushing: everything must come back from the WAL.
	db2, err := Open(host, th, "testdb", nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := db2.Get(th, []byte("k05"))
	if err != nil || string(v) != "v05" {
		t.Errorf("recovered Get(k05) = %q, %v", v, err)
	}
	if _, err := db2.Get(th, []byte("k10")); !errors.Is(err, ErrNotFound) {
		t.Errorf("recovered deleted key: %v", err)
	}
}

func TestManifestRecoveryAfterFlush(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, &Options{MaxL0Tables: 2})
	for i := 0; i < 300; i++ {
		if err := db.Put(th, []byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
		if i%100 == 99 {
			if err := db.Flush(th); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Post-flush writes stay in the WAL.
	if err := db.Put(th, []byte("fresh"), []byte("wal-only")); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(host, th, "testdb", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%04d", i)
		v, err := db2.Get(th, []byte(key))
		if err != nil {
			t.Fatalf("recovered Get(%s): %v", key, err)
		}
		if want := fmt.Sprintf("v%04d", i); string(v) != want {
			t.Errorf("recovered %s = %q, want %q", key, v, want)
		}
	}
	if v, err := db2.Get(th, []byte("fresh")); err != nil || string(v) != "wal-only" {
		t.Errorf("WAL-only key = %q, %v", v, err)
	}
}

func TestScanMergedOrder(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, nil)
	keys := []string{"delta", "alpha", "charlie", "bravo"}
	for _, k := range keys {
		if err := db.Put(th, []byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(th); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(th, []byte("alpha"), []byte("v-new")); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(th, []byte("delta")); err != nil {
		t.Fatal(err)
	}
	got, err := db.Scan(th)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"alpha", "v-new"}, {"bravo", "v-bravo"}, {"charlie", "v-charlie"}}
	if len(got) != len(want) {
		t.Fatalf("Scan = %d entries, want %d", len(got), len(want))
	}
	for i, kv := range want {
		if string(got[i][0]) != kv[0] || string(got[i][1]) != kv[1] {
			t.Errorf("Scan[%d] = %s=%s, want %s=%s", i, got[i][0], got[i][1], kv[0], kv[1])
		}
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	host, th := testEnv(t)
	db := openTestDB(t, host, th, &Options{MemtableFlushSize: 16 * 1024})
	encl, err := tee.NewEnclave(tee.Native(), host, tee.WithoutSpin())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			myTh := encl.Thread()
			for i := 0; i < 300; i++ {
				key := []byte(fmt.Sprintf("g%d-k%04d", g, i))
				if err := db.Put(myTh, key, []byte("val")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := db.Get(myTh, key); err != nil {
					t.Errorf("Get just-written %s: %v", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRandomOpsAgainstReference(t *testing.T) {
	// Property: the LSM store agrees with a plain map under random
	// put/delete/get sequences crossing flush and compaction boundaries.
	f := func(seed int64) bool {
		host, thr := tee.NewHost(1), (*tee.Thread)(nil)
		encl, err := tee.NewEnclave(tee.Native(), host, tee.WithoutSpin())
		if err != nil {
			return false
		}
		thr = encl.Thread()
		db, err := Open(host, thr, "propdb", &Options{
			MemtableFlushSize: 2 * 1024,
			MaxL0Tables:       2,
			BlockSize:         512,
		})
		if err != nil {
			return false
		}
		ref := make(map[string]string)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 600; i++ {
			key := fmt.Sprintf("key-%03d", rng.Intn(120))
			switch rng.Intn(10) {
			case 0, 1: // delete
				if err := db.Delete(thr, []byte(key)); err != nil {
					return false
				}
				delete(ref, key)
			case 2: // flush
				if err := db.Flush(thr); err != nil {
					return false
				}
			default: // put
				val := fmt.Sprintf("val-%d", rng.Int63())
				if err := db.Put(thr, []byte(key), []byte(val)); err != nil {
					return false
				}
				ref[key] = val
			}
			if i%7 == 0 {
				v, err := db.Get(thr, []byte(key))
				want, ok := ref[key]
				if ok {
					if err != nil || string(v) != want {
						return false
					}
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			}
		}
		// Full verification at the end.
		for k, want := range ref {
			v, err := db.Get(thr, []byte(k))
			if err != nil || string(v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestGetUsesOCallsForTableReads(t *testing.T) {
	host := tee.NewHost(1)
	encl, err := tee.NewEnclave(tee.SGXv1(), host, tee.WithoutSpin())
	if err != nil {
		t.Fatal(err)
	}
	th := encl.Thread()
	db, err := Open(host, th, "iodb", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(th, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(th); err != nil {
		t.Fatal(err)
	}
	before := encl.Snapshot().OCalls
	if _, err := db.Get(th, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if after := encl.Snapshot().OCalls; after <= before {
		t.Error("SSTable read issued no OCALL — enclave I/O must cross the boundary")
	}
}
