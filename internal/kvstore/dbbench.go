package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"teeperf/internal/probe"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

// db_bench symbol names, mangled like the RocksDB binary's so the analyzer
// demangles them into the names seen in the paper's Fig 5 flame graph.
const (
	symBenchmark   = "_ZN7rocksdb9Benchmark21ReadRandomWriteRandomEv"
	symThreadBody  = "_ZN7rocksdb9Benchmark10ThreadBodyEv"
	symStatsStart  = "_ZN7rocksdb5Stats5StartEv"
	symStatsNow    = "_ZN7rocksdb5Stats3NowEv"
	symRandGenCtor = "_ZN7rocksdb15RandomGeneratorC1Ev"
	symCompressStr = "_ZN7rocksdb4test18CompressibleStringEv"
	symDBGet       = "_ZN7rocksdb6DBImpl3GetEv"
	symDBPut       = "_ZN7rocksdb6DBImpl3PutEv"
)

// BenchSymbols lists every function the db_bench driver instruments.
func BenchSymbols() []string {
	return []string{
		symThreadBody, symBenchmark, symStatsStart, symStatsNow,
		symRandGenCtor, symCompressStr, symDBGet, symDBPut,
	}
}

// RegisterBenchSymbols adds the db_bench functions to the symbol table
// (idempotent).
func RegisterBenchSymbols(tab *symtab.Table) error {
	for i, name := range BenchSymbols() {
		if _, ok := tab.Lookup(name); ok {
			continue
		}
		if _, err := tab.Register(name, 64, "db/db_bench.cc", 100+10*i); err != nil {
			return fmt.Errorf("kvstore: register %s: %w", name, err)
		}
	}
	return nil
}

// BenchConfig configures one db_bench thread.
type BenchConfig struct {
	// DB is the store under test.
	DB *DB
	// Hooks receives instrumentation events.
	Hooks probe.Hooks
	// AddrOf resolves the registered bench symbols.
	AddrOf func(string) uint64
	// Ops is the operation count (default 10000).
	Ops int
	// ReadPct is the read percentage (default 80, the paper's mix).
	ReadPct int
	// KeySpace bounds the random key range (default 10000).
	KeySpace int
	// ValueSize is bytes per written value (default 100, db_bench default).
	ValueSize int
	// RandomDataSize is the RandomGenerator's compressible buffer size
	// (default 1 MiB, mirroring db_bench's generator).
	RandomDataSize int
	// Seed makes runs deterministic.
	Seed uint64
}

func (c *BenchConfig) withDefaults() (BenchConfig, error) {
	if c == nil || c.DB == nil {
		return BenchConfig{}, errors.New("kvstore: bench needs a DB")
	}
	out := *c
	if out.Hooks == nil {
		return BenchConfig{}, errors.New("kvstore: bench needs hooks")
	}
	if out.AddrOf == nil {
		return BenchConfig{}, errors.New("kvstore: bench needs AddrOf")
	}
	if out.Ops <= 0 {
		out.Ops = 10000
	}
	if out.ReadPct < 0 || out.ReadPct > 100 {
		return BenchConfig{}, fmt.Errorf("kvstore: read pct %d out of range", out.ReadPct)
	}
	if out.ReadPct == 0 {
		out.ReadPct = 80
	}
	if out.KeySpace <= 0 {
		out.KeySpace = 10000
	}
	if out.ValueSize <= 0 {
		out.ValueSize = 100
	}
	if out.RandomDataSize <= 0 {
		out.RandomDataSize = 1 << 20
	}
	if out.Seed == 0 {
		out.Seed = 0x9e3779b9
	}
	return out, nil
}

// BenchResult summarizes one db_bench run.
type BenchResult struct {
	Ops      int
	Reads    int
	Writes   int
	NotFound int
	// Checksum validates determinism across instrumentation modes.
	Checksum uint64
}

// randomGenerator mirrors db_bench's RandomGenerator: its constructor
// builds a large compressible random buffer (byte-at-a-time, which is why
// it shows up hot in Fig 5); Generate then just slices it.
type randomGenerator struct {
	data []byte
	pos  int
}

func newRandomGenerator(h probe.Hooks, ctorAddr, comprAddr uint64, size int, seed uint64) *randomGenerator {
	h.Enter(ctorAddr)
	g := &randomGenerator{data: make([]byte, size)}
	h.Enter(comprAddr)
	state := seed
	// Compressible: long runs seeded from a random byte, like
	// test::CompressibleString.
	i := 0
	for i < size {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		b := byte(z)
		run := int(z>>56)%17 + 3
		for r := 0; r < run && i < size; r++ {
			g.data[i] = b ^ byte(r*31)
			i++
		}
	}
	h.Exit(comprAddr)
	h.Exit(ctorAddr)
	return g
}

func (g *randomGenerator) generate(n int) []byte {
	if g.pos+n > len(g.data) {
		g.pos = 0
	}
	out := g.data[g.pos : g.pos+n]
	g.pos += n
	return out
}

// RunDBBench executes the ReadRandomWriteRandom workload (80% reads in the
// paper) on the calling thread.
func RunDBBench(th *tee.Thread, cfg *BenchConfig) (BenchResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return BenchResult{}, err
	}
	addrs := make(map[string]uint64, len(BenchSymbols()))
	for _, s := range BenchSymbols() {
		a := c.AddrOf(s)
		if a == 0 {
			return BenchResult{}, fmt.Errorf("kvstore: bench symbol %q not registered", s)
		}
		addrs[s] = a
	}
	h := c.Hooks

	h.Enter(addrs[symThreadBody])
	h.Enter(addrs[symBenchmark])

	gen := newRandomGenerator(h, addrs[symRandGenCtor], addrs[symCompressStr], c.RandomDataSize, c.Seed)

	var res BenchResult
	state := c.Seed
	key := make([]byte, 16)
	for op := 0; op < c.Ops; op++ {
		// Stats::Start -> Stats::Now at op begin (clock read = OCALL in
		// the TEE; the paper's first hotspot).
		h.Enter(addrs[symStatsStart])
		h.Enter(addrs[symStatsNow])
		t0 := th.ClockNow()
		h.Exit(addrs[symStatsNow])
		h.Exit(addrs[symStatsStart])

		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		k := z % uint64(c.KeySpace)
		binary.BigEndian.PutUint64(key, k)
		binary.BigEndian.PutUint64(key[8:], k*2654435761)

		if int(z>>32%100) < c.ReadPct {
			h.Enter(addrs[symDBGet])
			v, err := c.DB.Get(th, key)
			h.Exit(addrs[symDBGet])
			if err != nil {
				if !errors.Is(err, ErrNotFound) {
					h.Exit(addrs[symBenchmark])
					h.Exit(addrs[symThreadBody])
					return BenchResult{}, err
				}
				res.NotFound++
			} else {
				res.Checksum += uint64(len(v)) + uint64(v[0])
			}
			res.Reads++
		} else {
			value := gen.generate(c.ValueSize)
			h.Enter(addrs[symDBPut])
			err := c.DB.Put(th, key, value)
			h.Exit(addrs[symDBPut])
			if err != nil {
				h.Exit(addrs[symBenchmark])
				h.Exit(addrs[symThreadBody])
				return BenchResult{}, err
			}
			res.Writes++
		}

		// Stats::Now again at op end.
		h.Enter(addrs[symStatsNow])
		t1 := th.ClockNow()
		h.Exit(addrs[symStatsNow])
		res.Checksum += (t1 - t0) >> 63 // keep usage without timing noise
		res.Ops++
		th.Safepoint()
	}

	h.Exit(addrs[symBenchmark])
	h.Exit(addrs[symThreadBody])
	return res, nil
}
