package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"teeperf/internal/tee"
)

// SSTable layout:
//
//	data blocks   (records: klen u32, vlen u32, del u8, seq u64, key, value)
//	index block   (entries: klen u32, firstKey, blockOff u64, blockLen u32)
//	bloom block
//	footer (last 32 bytes):
//	  indexOff u64, indexLen u32, bloomOff u64, bloomLen u32,
//	  crc u32 (over footer prefix), magic u32
const (
	sstFooterSize = 32
	sstMagic      = 0x53535431 // "SST1"
	recHeaderSize = 4 + 4 + 1 + 8
)

// ErrCorruptTable is returned when decoding a malformed table.
var ErrCorruptTable = errors.New("kvstore: corrupt sstable")

// tableEntry is one decoded record.
type tableEntry struct {
	key   []byte
	value []byte
	seq   uint64
	del   bool
}

type indexEntry struct {
	firstKey []byte
	off      uint64
	length   uint32
}

// ssTable is an open, immutable sorted table. The index and bloom filter
// stay cached in enclave memory; data blocks are read per lookup through
// OCALLs (the table-cache behaviour of the original).
type ssTable struct {
	file    *tee.HostFile
	index   []indexEntry
	bloom   *bloomFilter
	first   []byte
	last    []byte
	entries int
}

// buildSSTable writes the sorted records into a new host file and returns
// the opened table. Records must be in strictly increasing key order.
func buildSSTable(host *tee.Host, th *tee.Thread, name string, recs []tableEntry, blockSize, bloomBits int) (*ssTable, error) {
	if len(recs) == 0 {
		return nil, errors.New("kvstore: cannot build empty sstable")
	}
	if blockSize < 256 {
		blockSize = 256
	}
	bloom := newBloomFilter(len(recs), bloomBits)

	var (
		data  bytes.Buffer
		index []indexEntry
	)
	blockStart := 0
	var blockFirst []byte
	for i, r := range recs {
		if i > 0 && bytes.Compare(recs[i-1].key, r.key) >= 0 {
			return nil, fmt.Errorf("kvstore: sstable records out of order at %d", i)
		}
		if blockFirst == nil {
			blockFirst = r.key
			blockStart = data.Len()
		}
		bloom.add(r.key)
		rec := make([]byte, recHeaderSize)
		putU32(rec[0:], uint32(len(r.key)))
		putU32(rec[4:], uint32(len(r.value)))
		if r.del {
			rec[8] = 1
		}
		putU64(rec[9:], r.seq)
		data.Write(rec)
		data.Write(r.key)
		data.Write(r.value)

		if data.Len()-blockStart >= blockSize || i == len(recs)-1 {
			index = append(index, indexEntry{
				firstKey: append([]byte(nil), blockFirst...),
				off:      uint64(blockStart),
				length:   uint32(data.Len() - blockStart),
			})
			blockFirst = nil
		}
	}

	// Index block.
	indexOff := uint64(data.Len())
	for _, ie := range index {
		hdr := make([]byte, 4)
		putU32(hdr, uint32(len(ie.firstKey)))
		data.Write(hdr)
		data.Write(ie.firstKey)
		tail := make([]byte, 12)
		putU64(tail[0:], ie.off)
		putU32(tail[8:], ie.length)
		data.Write(tail)
	}
	indexLen := uint64(data.Len()) - indexOff

	// Bloom block.
	bloomOff := uint64(data.Len())
	bloomBytes := bloom.encode()
	data.Write(bloomBytes)

	// Footer.
	footer := make([]byte, sstFooterSize)
	putU64(footer[0:], indexOff)
	putU32(footer[8:], uint32(indexLen))
	putU64(footer[12:], bloomOff)
	putU32(footer[20:], uint32(len(bloomBytes)))
	putU32(footer[24:], crc32.ChecksumIEEE(footer[:24]))
	putU32(footer[28:], sstMagic)
	data.Write(footer)

	f, err := host.CreateFile(name, 0)
	if err != nil {
		return nil, fmt.Errorf("kvstore: create sstable: %w", err)
	}
	if _, err := th.Pwrite(f, data.Bytes(), 0); err != nil {
		return nil, fmt.Errorf("kvstore: write sstable: %w", err)
	}
	return &ssTable{
		file:    f,
		index:   index,
		bloom:   bloom,
		first:   append([]byte(nil), recs[0].key...),
		last:    append([]byte(nil), recs[len(recs)-1].key...),
		entries: len(recs),
	}, nil
}

// openSSTable loads the footer, index and bloom filter of an existing
// table file.
func openSSTable(host *tee.Host, th *tee.Thread, name string) (*ssTable, error) {
	f, err := host.OpenFile(name)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open sstable: %w", err)
	}
	size := int64(f.Size())
	if size < sstFooterSize {
		return nil, fmt.Errorf("%w: too small", ErrCorruptTable)
	}
	footer := make([]byte, sstFooterSize)
	if _, err := th.Pread(f, footer, size-sstFooterSize); err != nil {
		return nil, fmt.Errorf("kvstore: read footer: %w", err)
	}
	if getU32(footer[28:]) != sstMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptTable)
	}
	if crc32.ChecksumIEEE(footer[:24]) != getU32(footer[24:]) {
		return nil, fmt.Errorf("%w: bad footer checksum", ErrCorruptTable)
	}
	indexOff := getU64(footer[0:])
	indexLen := getU32(footer[8:])
	bloomOff := getU64(footer[12:])
	bloomLen := getU32(footer[20:])
	if int64(indexOff)+int64(indexLen) > size || int64(bloomOff)+int64(bloomLen) > size {
		return nil, fmt.Errorf("%w: sections out of range", ErrCorruptTable)
	}

	indexBytes := make([]byte, indexLen)
	if _, err := th.Pread(f, indexBytes, int64(indexOff)); err != nil {
		return nil, fmt.Errorf("kvstore: read index: %w", err)
	}
	var index []indexEntry
	for off := 0; off < len(indexBytes); {
		if off+4 > len(indexBytes) {
			return nil, fmt.Errorf("%w: truncated index", ErrCorruptTable)
		}
		klen := int(getU32(indexBytes[off:]))
		off += 4
		if off+klen+12 > len(indexBytes) {
			return nil, fmt.Errorf("%w: truncated index entry", ErrCorruptTable)
		}
		key := append([]byte(nil), indexBytes[off:off+klen]...)
		off += klen
		index = append(index, indexEntry{
			firstKey: key,
			off:      getU64(indexBytes[off:]),
			length:   getU32(indexBytes[off+8:]),
		})
		off += 12
	}
	if len(index) == 0 {
		return nil, fmt.Errorf("%w: empty index", ErrCorruptTable)
	}

	bloomBytes := make([]byte, bloomLen)
	if _, err := th.Pread(f, bloomBytes, int64(bloomOff)); err != nil {
		return nil, fmt.Errorf("kvstore: read bloom: %w", err)
	}
	bloom := bloomFromBytes(bloomBytes)
	if bloom == nil {
		return nil, fmt.Errorf("%w: bad bloom filter", ErrCorruptTable)
	}

	t := &ssTable{file: f, index: index, bloom: bloom}
	// Recover first/last keys and entry count from the blocks.
	firstBlock, err := t.readBlock(th, 0)
	if err != nil {
		return nil, err
	}
	t.first = firstBlock[0].key
	lastBlock, err := t.readBlock(th, len(index)-1)
	if err != nil {
		return nil, err
	}
	t.last = lastBlock[len(lastBlock)-1].key
	for i := range index {
		blk, err := t.readBlock(th, i)
		if err != nil {
			return nil, err
		}
		t.entries += len(blk)
	}
	return t, nil
}

// readBlock decodes data block i through one OCALL read.
func (t *ssTable) readBlock(th *tee.Thread, i int) ([]tableEntry, error) {
	if i < 0 || i >= len(t.index) {
		return nil, fmt.Errorf("kvstore: block %d out of range", i)
	}
	ie := t.index[i]
	buf := make([]byte, ie.length)
	if _, err := th.Pread(t.file, buf, int64(ie.off)); err != nil {
		return nil, fmt.Errorf("kvstore: read block: %w", err)
	}
	var out []tableEntry
	for off := 0; off < len(buf); {
		if off+recHeaderSize > len(buf) {
			return nil, fmt.Errorf("%w: truncated record", ErrCorruptTable)
		}
		klen := int(getU32(buf[off:]))
		vlen := int(getU32(buf[off+4:]))
		del := buf[off+8] == 1
		seq := getU64(buf[off+9:])
		off += recHeaderSize
		if off+klen+vlen > len(buf) {
			return nil, fmt.Errorf("%w: truncated record body", ErrCorruptTable)
		}
		out = append(out, tableEntry{
			key:   append([]byte(nil), buf[off:off+klen]...),
			value: append([]byte(nil), buf[off+klen:off+klen+vlen]...),
			seq:   seq,
			del:   del,
		})
		off += klen + vlen
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: empty block", ErrCorruptTable)
	}
	return out, nil
}

// get looks up key: bloom check, index binary search, one block read.
func (t *ssTable) get(th *tee.Thread, key []byte) (value []byte, found, deleted bool, err error) {
	if bytes.Compare(key, t.first) < 0 || bytes.Compare(key, t.last) > 0 {
		return nil, false, false, nil
	}
	if !t.bloom.mayContain(key) {
		return nil, false, false, nil
	}
	// Find the last block whose firstKey <= key.
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].firstKey, key) > 0
	}) - 1
	if i < 0 {
		return nil, false, false, nil
	}
	blk, err := t.readBlock(th, i)
	if err != nil {
		return nil, false, false, err
	}
	j := sort.Search(len(blk), func(j int) bool {
		return bytes.Compare(blk[j].key, key) >= 0
	})
	if j >= len(blk) || !bytes.Equal(blk[j].key, key) {
		return nil, false, false, nil
	}
	if blk[j].del {
		return nil, true, true, nil
	}
	return blk[j].value, true, false, nil
}

// all returns every record in key order (used by compaction and iterators).
func (t *ssTable) all(th *tee.Thread) ([]tableEntry, error) {
	var out []tableEntry
	for i := range t.index {
		blk, err := t.readBlock(th, i)
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
	return out, nil
}

// Name returns the backing file name.
func (t *ssTable) Name() string { return t.file.Name() }
