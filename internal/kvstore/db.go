package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"teeperf/internal/tee"
)

// Options tunes the store. The zero value selects defaults.
type Options struct {
	// MemtableFlushSize triggers a flush to L0 once the memtable exceeds
	// this many bytes (default 1 MiB).
	MemtableFlushSize int
	// BlockSize is the SSTable data-block target size (default 4 KiB).
	BlockSize int
	// BloomBitsPerKey sizes the per-table bloom filters (default 10).
	BloomBitsPerKey int
	// MaxL0Tables triggers compaction of L0 into L1 (default 4).
	MaxL0Tables int
}

func (o *Options) withDefaults() Options {
	out := Options{
		MemtableFlushSize: 1 << 20,
		BlockSize:         4096,
		BloomBitsPerKey:   10,
		MaxL0Tables:       4,
	}
	if o == nil {
		return out
	}
	if o.MemtableFlushSize > 0 {
		out.MemtableFlushSize = o.MemtableFlushSize
	}
	if o.BlockSize > 0 {
		out.BlockSize = o.BlockSize
	}
	if o.BloomBitsPerKey > 0 {
		out.BloomBitsPerKey = o.BloomBitsPerKey
	}
	if o.MaxL0Tables > 0 {
		out.MaxL0Tables = o.MaxL0Tables
	}
	return out
}

// ErrNotFound is returned by Get for missing or deleted keys.
var ErrNotFound = errors.New("kvstore: key not found")

// DB is the LSM store. All methods are safe for concurrent use; I/O flows
// through the calling thread's OCALL path so enclave costs land on the
// requesting thread (as they do in the real system).
type DB struct {
	name string
	host *tee.Host
	opts Options

	mu   sync.RWMutex
	mem  *memTable
	l0   []*ssTable // newest first
	l1   []*ssTable // sorted by first key, non-overlapping
	wal  *wal
	seq  uint64
	nsst int

	statsMu sync.Mutex
	stats   DBStats
}

// DBStats counts store activity.
type DBStats struct {
	Puts        uint64
	Gets        uint64
	Deletes     uint64
	Flushes     uint64
	Compactions uint64
	BloomSkips  uint64
}

// Open creates or reopens a store named name on host. Reopening replays
// the manifest (table list) and the write-ahead log.
func Open(host *tee.Host, th *tee.Thread, name string, opts *Options) (*DB, error) {
	if host == nil || th == nil {
		return nil, errors.New("kvstore: nil host or thread")
	}
	if name == "" {
		return nil, errors.New("kvstore: empty db name")
	}
	db := &DB{
		name: name,
		host: host,
		opts: opts.withDefaults(),
		mem:  newMemTable(),
	}
	w, err := openWAL(host, name+"/wal")
	if err != nil {
		return nil, err
	}
	db.wal = w

	if err := db.loadManifest(th); err != nil {
		return nil, err
	}
	recs, err := w.replay(th)
	if err != nil {
		return nil, fmt.Errorf("kvstore: recover: %w", err)
	}
	for _, r := range recs {
		db.mem.put(r.key, r.value, r.seq, r.op == walOpDelete)
		if r.seq > db.seq {
			db.seq = r.seq
		}
	}
	return db, nil
}

// Put stores key -> value.
func (db *DB) Put(th *tee.Thread, key, value []byte) error {
	return db.write(th, key, value, false)
}

// Delete removes key (writes a tombstone).
func (db *DB) Delete(th *tee.Thread, key []byte) error {
	return db.write(th, key, nil, true)
}

func (db *DB) write(th *tee.Thread, key, value []byte, del bool) error {
	if len(key) == 0 {
		return errors.New("kvstore: empty key")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.seq++
	op := byte(walOpPut)
	if del {
		op = walOpDelete
	}
	if err := db.wal.append(th, db.seq, op, key, value); err != nil {
		return err
	}
	db.mem.put(key, value, db.seq, del)
	db.statsMu.Lock()
	if del {
		db.stats.Deletes++
	} else {
		db.stats.Puts++
	}
	db.statsMu.Unlock()
	if db.mem.approximateSize() >= db.opts.MemtableFlushSize {
		if err := db.flushLocked(th); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the value stored under key, or ErrNotFound.
func (db *DB) Get(th *tee.Thread, key []byte) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.statsMu.Lock()
	db.stats.Gets++
	db.statsMu.Unlock()

	if v, found, deleted := db.mem.get(key); found {
		if deleted {
			return nil, ErrNotFound
		}
		return append([]byte(nil), v...), nil
	}
	for _, t := range db.l0 {
		v, found, deleted, err := t.get(th, key)
		if err != nil {
			return nil, err
		}
		if found {
			if deleted {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	// L1 is non-overlapping: binary search for the table covering key.
	i := sort.Search(len(db.l1), func(i int) bool {
		return bytes.Compare(db.l1[i].last, key) >= 0
	})
	if i < len(db.l1) {
		v, found, deleted, err := db.l1[i].get(th, key)
		if err != nil {
			return nil, err
		}
		if found {
			if deleted {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	return nil, ErrNotFound
}

// Flush forces the memtable to an L0 table.
func (db *DB) Flush(th *tee.Thread) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flushLocked(th)
}

func (db *DB) flushLocked(th *tee.Thread) error {
	if db.mem.len() == 0 {
		return nil
	}
	entries := db.mem.entries()
	recs := make([]tableEntry, len(entries))
	for i, e := range entries {
		recs[i] = tableEntry{key: e.key, value: e.value, seq: e.seq, del: e.del}
	}
	db.nsst++
	name := fmt.Sprintf("%s/sst-%06d.tbl", db.name, db.nsst)
	t, err := buildSSTable(db.host, th, name, recs, db.opts.BlockSize, db.opts.BloomBitsPerKey)
	if err != nil {
		return err
	}
	db.l0 = append([]*ssTable{t}, db.l0...)
	db.mem = newMemTable()
	if err := db.wal.reset(db.host); err != nil {
		return err
	}
	db.statsMu.Lock()
	db.stats.Flushes++
	db.statsMu.Unlock()
	if err := db.writeManifestLocked(th); err != nil {
		return err
	}
	if len(db.l0) > db.opts.MaxL0Tables {
		return db.compactLocked(th)
	}
	return nil
}

// Compact merges all L0 tables with L1 into a fresh non-overlapping L1.
func (db *DB) Compact(th *tee.Thread) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.compactLocked(th)
}

func (db *DB) compactLocked(th *tee.Thread) error {
	if len(db.l0) == 0 {
		return nil
	}
	// Merge priority: L0 newest first, then L1.
	sources := make([][]tableEntry, 0, len(db.l0)+len(db.l1))
	for _, t := range db.l0 {
		recs, err := t.all(th)
		if err != nil {
			return err
		}
		sources = append(sources, recs)
	}
	for _, t := range db.l1 {
		recs, err := t.all(th)
		if err != nil {
			return err
		}
		sources = append(sources, recs)
	}
	merged := mergeEntries(sources, true /* dropTombstones */)
	db.l0 = nil
	db.l1 = nil
	if len(merged) > 0 {
		// Split into ~2 MiB tables.
		const targetBytes = 2 << 20
		var (
			cur        []tableEntry
			bytesInCur int
		)
		emit := func() error {
			if len(cur) == 0 {
				return nil
			}
			db.nsst++
			name := fmt.Sprintf("%s/sst-%06d.tbl", db.name, db.nsst)
			t, err := buildSSTable(db.host, th, name, cur, db.opts.BlockSize, db.opts.BloomBitsPerKey)
			if err != nil {
				return err
			}
			db.l1 = append(db.l1, t)
			cur = nil
			bytesInCur = 0
			return nil
		}
		for _, r := range merged {
			cur = append(cur, r)
			bytesInCur += len(r.key) + len(r.value) + recHeaderSize
			if bytesInCur >= targetBytes {
				if err := emit(); err != nil {
					return err
				}
			}
		}
		if err := emit(); err != nil {
			return err
		}
	}
	db.statsMu.Lock()
	db.stats.Compactions++
	db.statsMu.Unlock()
	return db.writeManifestLocked(th)
}

// mergeEntries merges sorted runs; earlier sources win on key collisions.
// Tombstones are dropped when dropTombstones is set (full compaction).
func mergeEntries(sources [][]tableEntry, dropTombstones bool) []tableEntry {
	var all []tableEntry
	for _, src := range sources {
		all = append(all, src...)
	}
	// Records were appended in source-priority order (newest source
	// first), so a stable sort by key keeps the winning record first in
	// each equal-key run.
	sort.SliceStable(all, func(i, j int) bool {
		return bytes.Compare(all[i].key, all[j].key) < 0
	})
	var out []tableEntry
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && bytes.Equal(all[j].key, all[i].key) {
			j++
		}
		winner := all[i] // first occurrence = highest priority
		if !(winner.del && dropTombstones) {
			out = append(out, winner)
		}
		i = j
	}
	return out
}

// Stats returns a snapshot of the activity counters.
func (db *DB) Stats() DBStats {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	return db.stats
}

// Levels reports (#L0 tables, #L1 tables).
func (db *DB) Levels() (int, int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.l0), len(db.l1)
}

// --- manifest ---

// The manifest lists live tables per level so the store can reopen:
//
//	KVMANIFEST1
//	<level> <file name>
func (db *DB) writeManifestLocked(th *tee.Thread) error {
	var sb strings.Builder
	sb.WriteString("KVMANIFEST1\n")
	fmt.Fprintf(&sb, "nsst %d\n", db.nsst)
	for _, t := range db.l0 {
		fmt.Fprintf(&sb, "0 %s\n", t.Name())
	}
	for _, t := range db.l1 {
		fmt.Fprintf(&sb, "1 %s\n", t.Name())
	}
	f, err := db.host.CreateFile(db.name+"/MANIFEST", 0)
	if err != nil {
		return fmt.Errorf("kvstore: manifest: %w", err)
	}
	if _, err := th.Pwrite(f, []byte(sb.String()), 0); err != nil {
		return fmt.Errorf("kvstore: manifest write: %w", err)
	}
	return nil
}

func (db *DB) loadManifest(th *tee.Thread) error {
	f, err := db.host.OpenFile(db.name + "/MANIFEST")
	if err != nil {
		return nil // fresh store
	}
	buf := make([]byte, f.Size())
	if len(buf) == 0 {
		return nil
	}
	if _, err := th.Pread(f, buf, 0); err != nil {
		return fmt.Errorf("kvstore: manifest read: %w", err)
	}
	lines := strings.Split(string(buf), "\n")
	if len(lines) == 0 || lines[0] != "KVMANIFEST1" {
		return fmt.Errorf("kvstore: bad manifest header")
	}
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var (
			level int
			name  string
		)
		if _, err := fmt.Sscanf(line, "nsst %d", &db.nsst); err == nil {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %s", &level, &name); err != nil {
			return fmt.Errorf("kvstore: bad manifest line %q", line)
		}
		t, err := openSSTable(db.host, th, name)
		if err != nil {
			return fmt.Errorf("kvstore: reopen table %s: %w", name, err)
		}
		switch level {
		case 0:
			db.l0 = append(db.l0, t)
		case 1:
			db.l1 = append(db.l1, t)
		default:
			return fmt.Errorf("kvstore: bad manifest level %d", level)
		}
	}
	sort.Slice(db.l1, func(i, j int) bool {
		return bytes.Compare(db.l1[i].first, db.l1[j].first) < 0
	})
	return nil
}

// Scan returns all live key/value pairs in key order (merged view across
// memtable and levels, tombstones resolved).
func (db *DB) Scan(th *tee.Thread) ([][2][]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sources := make([][]tableEntry, 0, 1+len(db.l0)+len(db.l1))
	var memRecs []tableEntry
	for _, e := range db.mem.entries() {
		memRecs = append(memRecs, tableEntry{key: e.key, value: e.value, seq: e.seq, del: e.del})
	}
	sources = append(sources, memRecs)
	for _, t := range db.l0 {
		recs, err := t.all(th)
		if err != nil {
			return nil, err
		}
		sources = append(sources, recs)
	}
	for _, t := range db.l1 {
		recs, err := t.all(th)
		if err != nil {
			return nil, err
		}
		sources = append(sources, recs)
	}
	merged := mergeEntries(sources, true)
	out := make([][2][]byte, 0, len(merged))
	for _, r := range merged {
		out = append(out, [2][]byte{r.key, r.value})
	}
	return out, nil
}
