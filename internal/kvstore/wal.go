package kvstore

import (
	"errors"
	"fmt"
	"hash/crc32"

	"teeperf/internal/tee"
)

// Write-ahead-log record layout:
//
//	crc   u32  (over everything after the crc field)
//	seq   u64
//	op    u8   (1 = put, 2 = delete)
//	klen  u32
//	vlen  u32
//	key   klen bytes
//	value vlen bytes
const (
	walOpPut    = 1
	walOpDelete = 2
	walHeaderSz = 4 + 8 + 1 + 4 + 4
)

// ErrCorruptWAL is returned when replay hits a bad record.
var ErrCorruptWAL = errors.New("kvstore: corrupt WAL record")

// wal is the write-ahead log, stored on a host file and written through
// enclave OCALLs (direct I/O is impossible inside the TEE).
type wal struct {
	file *tee.HostFile
	off  int64
}

func openWAL(host *tee.Host, name string) (*wal, error) {
	f, err := host.OpenFile(name)
	if err != nil {
		f, err = host.CreateFile(name, 0)
		if err != nil {
			return nil, fmt.Errorf("kvstore: create wal: %w", err)
		}
	}
	return &wal{file: f, off: int64(f.Size())}, nil
}

// append writes one record through the thread's OCALL path.
func (w *wal) append(th *tee.Thread, seq uint64, op byte, key, value []byte) error {
	rec := make([]byte, walHeaderSz+len(key)+len(value))
	putU64(rec[4:], seq)
	rec[12] = op
	putU32(rec[13:], uint32(len(key)))
	putU32(rec[17:], uint32(len(value)))
	copy(rec[walHeaderSz:], key)
	copy(rec[walHeaderSz+len(key):], value)
	putU32(rec[0:], crc32.ChecksumIEEE(rec[4:]))
	if _, err := th.Pwrite(w.file, rec, w.off); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	w.off += int64(len(rec))
	return nil
}

// walRecord is one replayed record.
type walRecord struct {
	seq   uint64
	op    byte
	key   []byte
	value []byte
}

// replay decodes every record currently in the log.
func (w *wal) replay(th *tee.Thread) ([]walRecord, error) {
	size := int64(w.file.Size())
	if size == 0 {
		return nil, nil
	}
	buf := make([]byte, size)
	if _, err := th.Pread(w.file, buf, 0); err != nil {
		return nil, fmt.Errorf("kvstore: wal read: %w", err)
	}
	var out []walRecord
	off := int64(0)
	for off < size {
		if size-off < walHeaderSz {
			return nil, fmt.Errorf("%w: truncated header at %d", ErrCorruptWAL, off)
		}
		h := buf[off:]
		crc := getU32(h)
		seq := getU64(h[4:])
		op := h[12]
		klen := int64(getU32(h[13:]))
		vlen := int64(getU32(h[17:]))
		total := walHeaderSz + klen + vlen
		if off+total > size {
			return nil, fmt.Errorf("%w: truncated body at %d", ErrCorruptWAL, off)
		}
		if crc32.ChecksumIEEE(buf[off+4:off+total]) != crc {
			return nil, fmt.Errorf("%w: bad checksum at %d", ErrCorruptWAL, off)
		}
		if op != walOpPut && op != walOpDelete {
			return nil, fmt.Errorf("%w: bad op %d at %d", ErrCorruptWAL, op, off)
		}
		key := append([]byte(nil), buf[off+walHeaderSz:off+walHeaderSz+klen]...)
		value := append([]byte(nil), buf[off+walHeaderSz+klen:off+total]...)
		out = append(out, walRecord{seq: seq, op: op, key: key, value: value})
		off += total
	}
	return out, nil
}

// reset truncates the log after a successful memtable flush.
func (w *wal) reset(host *tee.Host) error {
	f, err := host.CreateFile(w.file.Name(), 0)
	if err != nil {
		return fmt.Errorf("kvstore: wal reset: %w", err)
	}
	w.file = f
	w.off = 0
	return nil
}
