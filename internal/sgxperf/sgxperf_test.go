package sgxperf

import (
	"strings"
	"testing"

	"teeperf/internal/analyzer"
	"teeperf/internal/counter"
	"teeperf/internal/probe"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
	"teeperf/internal/tee"
)

func tracedEnclave(t *testing.T) (*tee.Enclave, *Tracer) {
	t.Helper()
	tr := New()
	encl, err := tee.NewEnclave(tee.SGXv1(), tee.NewHost(1),
		tee.WithoutSpin(), tee.WithTransitionListener(tr.Listener()))
	if err != nil {
		t.Fatal(err)
	}
	return encl, tr
}

func TestTracerCollectsTransitions(t *testing.T) {
	encl, tr := tracedEnclave(t)
	th := encl.Thread() // ecall
	th.Getpid()         // ocall getpid
	th.Getpid()         // ocall getpid
	th.Rdtsc()          // ocall rdtsc
	th.AddInterruptDebt(1000)

	a := tr.Analyze()
	if a.Threads != 1 {
		t.Errorf("threads = %d, want 1", a.Threads)
	}
	kindCount := make(map[tee.Transition]uint64)
	for _, k := range a.Kinds {
		kindCount[k.Kind] = k.Count
	}
	if kindCount[tee.TransitionECall] != 1 {
		t.Errorf("ecalls = %d, want 1", kindCount[tee.TransitionECall])
	}
	if kindCount[tee.TransitionOCall] != 3 {
		t.Errorf("ocalls = %d, want 3", kindCount[tee.TransitionOCall])
	}
	if kindCount[tee.TransitionAEX] != 1 {
		t.Errorf("aexs = %d, want 1", kindCount[tee.TransitionAEX])
	}
	if len(a.OCalls) != 2 {
		t.Fatalf("ocall names = %d, want 2", len(a.OCalls))
	}
	if a.OCalls[0].Name != "getpid" || a.OCalls[0].Count != 2 {
		t.Errorf("top ocall = %+v, want getpid x2", a.OCalls[0])
	}
	if a.SwitchTime <= 0 {
		t.Error("switch time not accumulated")
	}

	tr.Reset()
	if tr.Len() != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestRecommendations(t *testing.T) {
	encl, tr := tracedEnclave(t)
	th := encl.Thread()
	for i := 0; i < 1500; i++ {
		th.Getpid()
	}
	recs := tr.Analyze().Recommendations()
	if len(recs) == 0 {
		t.Fatal("no recommendations for 1500 getpid OCALLs")
	}
	if !strings.Contains(recs[0], "getpid") || !strings.Contains(recs[0], "cache") {
		t.Errorf("recommendation = %q, want getpid caching advice", recs[0])
	}
}

func TestWriteReport(t *testing.T) {
	encl, tr := tracedEnclave(t)
	th := encl.Thread()
	th.Getpid()
	th.Rdtsc()
	var sb strings.Builder
	if err := tr.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"enclave transitions", "ecall", "ocall", "getpid", "rdtsc"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestTransitionProfilerCannotSeeMethods demonstrates the paper's point
// about sgx-perf (§V): two applications with *different* in-enclave
// hotspots but identical OCALL patterns are indistinguishable to a
// transition-level profiler, while TEE-Perf's method-level profile tells
// them apart.
func TestTransitionProfilerCannotSeeMethods(t *testing.T) {
	type appResult struct {
		transition Analysis
		hottest    string
	}

	// run simulates an app doing one OCALL and then burning its time in
	// the named hot function (virtual-time probes record the truth).
	run := func(hotName string) appResult {
		encl, tr := tracedEnclave(t)
		th := encl.Thread()

		tab := symtab.New()
		log, err := shmlog.New(64)
		if err != nil {
			t.Fatal(err)
		}
		vclock := counter.NewVirtual(0)
		rt, err := probe.New(log, vclock)
		if err != nil {
			t.Fatal(err)
		}
		hot := tab.MustRegister(hotName, 16, "app.go", 1)
		other := tab.MustRegister("setup", 16, "app.go", 9)
		pth := rt.Thread()

		th.Getpid() // identical transition pattern in both apps

		pth.Enter(other)
		vclock.Advance(10)
		pth.Exit(other)
		pth.Enter(hot)
		vclock.Advance(90) // the hot spot
		pth.Exit(hot)

		p, err := analyzer.Analyze(log, tab)
		if err != nil {
			t.Fatal(err)
		}
		return appResult{transition: tr.Analyze(), hottest: p.Top(1)[0].Name}
	}

	appA := run("parse_request")
	appB := run("compress_block")

	// sgx-perf's view: identical.
	if len(appA.transition.OCalls) != len(appB.transition.OCalls) ||
		appA.transition.OCalls[0] != appB.transition.OCalls[0] {
		t.Errorf("transition views should be identical: %+v vs %+v",
			appA.transition.OCalls, appB.transition.OCalls)
	}
	// TEE-Perf's view: the real hotspots, which differ.
	if appA.hottest != "parse_request" || appB.hottest != "compress_block" {
		t.Errorf("method-level views wrong: %q / %q", appA.hottest, appB.hottest)
	}
}
