// Package sgxperf reimplements the transition-level profiler the paper
// compares against in §V (sgx-perf, Weichbrodt et al., Middleware'18): it
// observes enclave enter/exit events — ECALLs, OCALLs, AEXs — and analyzes
// the cost of context switches. It deliberately has no view *inside* the
// enclave: it cannot produce method-level profiles, which is exactly the
// limitation TEE-Perf addresses (demonstrated by
// TestTransitionProfilerCannotSeeMethods).
package sgxperf

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"teeperf/internal/tee"
)

// Tracer collects enclave transition events. Attach it to an enclave with
// tee.WithTransitionListener(tracer.Listener()).
type Tracer struct {
	mu     sync.Mutex
	events []tee.TransitionEvent
}

// New returns an empty tracer.
func New() *Tracer {
	return &Tracer{}
}

// Listener returns the callback to install on the enclave.
func (t *Tracer) Listener() func(tee.TransitionEvent) {
	return func(ev tee.TransitionEvent) {
		t.mu.Lock()
		t.events = append(t.events, ev)
		t.mu.Unlock()
	}
}

// Events returns a copy of the collected events in arrival order.
func (t *Tracer) Events() []tee.TransitionEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]tee.TransitionEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of collected events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Reset clears the tracer.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
}

// KindStat aggregates one transition kind.
type KindStat struct {
	Kind  tee.Transition
	Count uint64
	Total time.Duration
}

// OCallStat aggregates one OCALL name — sgx-perf's main output: which host
// calls cost the run, how often, and what to do about it.
type OCallStat struct {
	// Name is the OCALL name.
	Name string
	// Count and Total are invocation count and summed switch cost.
	Count uint64
	Total time.Duration
	// Mean is Total/Count.
	Mean time.Duration
}

// Analysis is the tracer's report.
type Analysis struct {
	// Kinds aggregates by transition type, ordered ecall/ocall/aex.
	Kinds []KindStat
	// OCalls aggregates by name, most expensive first.
	OCalls []OCallStat
	// SwitchTime is the total time lost to world switches.
	SwitchTime time.Duration
	// Threads is the number of distinct enclave threads observed.
	Threads int
}

// Analyze aggregates the collected events.
func (t *Tracer) Analyze() Analysis {
	events := t.Events()
	kinds := map[tee.Transition]*KindStat{}
	ocalls := map[string]*OCallStat{}
	threads := map[uint64]struct{}{}
	var switchTime time.Duration

	for _, ev := range events {
		ks, ok := kinds[ev.Kind]
		if !ok {
			ks = &KindStat{Kind: ev.Kind}
			kinds[ev.Kind] = ks
		}
		ks.Count++
		ks.Total += ev.Cost
		switchTime += ev.Cost
		threads[ev.Thread] = struct{}{}

		if ev.Kind == tee.TransitionOCall {
			os, ok := ocalls[ev.Name]
			if !ok {
				os = &OCallStat{Name: ev.Name}
				ocalls[ev.Name] = os
			}
			os.Count++
			os.Total += ev.Cost
		}
	}

	var a Analysis
	for _, k := range []tee.Transition{tee.TransitionECall, tee.TransitionOCall, tee.TransitionAEX} {
		if ks, ok := kinds[k]; ok {
			a.Kinds = append(a.Kinds, *ks)
		}
	}
	for _, os := range ocalls {
		if os.Count > 0 {
			os.Mean = os.Total / time.Duration(os.Count)
		}
		a.OCalls = append(a.OCalls, *os)
	}
	sort.Slice(a.OCalls, func(i, j int) bool {
		if a.OCalls[i].Total != a.OCalls[j].Total {
			return a.OCalls[i].Total > a.OCalls[j].Total
		}
		return a.OCalls[i].Name < a.OCalls[j].Name
	})
	a.SwitchTime = switchTime
	a.Threads = len(threads)
	return a
}

// Recommendations produces sgx-perf-style advice for the most expensive
// OCALLs: calls that repeat very often are caching/batching candidates.
func (a Analysis) Recommendations() []string {
	var out []string
	for _, os := range a.OCalls {
		switch {
		case os.Count >= 1000:
			out = append(out, fmt.Sprintf(
				"%s: %d calls, %v total — cache the result or batch calls inside the enclave",
				os.Name, os.Count, os.Total.Round(time.Microsecond)))
		case os.Total >= time.Millisecond:
			out = append(out, fmt.Sprintf(
				"%s: %v total — consider an asynchronous (switchless) call",
				os.Name, os.Total.Round(time.Microsecond)))
		}
	}
	return out
}

// WriteReport renders the analysis.
func (t *Tracer) WriteReport(w io.Writer) error {
	a := t.Analyze()
	if _, err := fmt.Fprintf(w, "enclave transitions (%d threads, %v total switch time)\n\n",
		a.Threads, a.SwitchTime.Round(time.Microsecond)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-8s %10s %14s\n", "KIND", "COUNT", "TOTAL"); err != nil {
		return err
	}
	for _, ks := range a.Kinds {
		if _, err := fmt.Fprintf(w, "%-8s %10d %14s\n",
			ks.Kind, ks.Count, ks.Total.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	if len(a.OCalls) > 0 {
		if _, err := fmt.Fprintf(w, "\n%-16s %10s %14s %12s\n", "OCALL", "COUNT", "TOTAL", "MEAN"); err != nil {
			return err
		}
		for _, os := range a.OCalls {
			if _, err := fmt.Fprintf(w, "%-16s %10d %14s %12s\n",
				os.Name, os.Count, os.Total.Round(time.Microsecond), os.Mean); err != nil {
				return err
			}
		}
	}
	if recs := a.Recommendations(); len(recs) > 0 {
		if _, err := fmt.Fprintln(w, "\nrecommendations:"); err != nil {
			return err
		}
		for _, r := range recs {
			if _, err := fmt.Fprintf(w, "  * %s\n", r); err != nil {
				return err
			}
		}
	}
	return nil
}
