package probe

// Tests for the adaptive probe plane: call-pair sampling, live deny masks
// (thread and address), the masked-event accounting, and the self-tuning
// reservation batch controller.

import (
	"testing"
	"time"

	"teeperf/internal/counter"
	"teeperf/internal/shmlog"
)

// assertBalanced scans the log's committed entries maintaining a per-thread
// stack: every return must close the frame on top. Sampling decides per
// call pair, so any recorded subset of a properly nested stream must itself
// be properly nested.
func assertBalanced(t *testing.T, log *shmlog.Log) {
	t.Helper()
	stacks := make(map[uint64][]uint64)
	for i, e := range log.Entries() {
		st := stacks[e.ThreadID]
		switch e.Kind {
		case shmlog.KindCall:
			stacks[e.ThreadID] = append(st, e.Addr)
		case shmlog.KindReturn:
			if len(st) == 0 {
				t.Fatalf("entry %d: return %#x with empty stack", i, e.Addr)
			}
			if top := st[len(st)-1]; top != e.Addr {
				t.Fatalf("entry %d: return %#x, open frame %#x", i, e.Addr, top)
			}
			stacks[e.ThreadID] = st[:len(st)-1]
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("thread %d: %d frames left open", tid, len(st))
		}
	}
}

func TestSamplingRecordsEveryNthPair(t *testing.T) {
	log, err := shmlog.New(256, shmlog.WithSamplePeriod(4))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(log, counter.NewVirtual(1))
	if err != nil {
		t.Fatal(err)
	}
	th := rt.Thread()
	const pairs = 32
	for i := 0; i < pairs; i++ {
		th.Enter(0x100)
		th.Exit(0x100)
	}
	rt.Flush()

	if got := log.Len(); got != 2*pairs/4 {
		t.Fatalf("recorded %d entries, want %d (1-in-4 of %d pairs)", got, 2*pairs/4, pairs)
	}
	assertBalanced(t, log)
	wantMasked := uint64(2*pairs - 2*pairs/4)
	if got := rt.Masked(); got != wantMasked {
		t.Errorf("runtime masked = %d, want %d", got, wantMasked)
	}
	if got := log.Masked(); got != wantMasked {
		t.Errorf("shared masked word = %d, want %d", got, wantMasked)
	}
}

// TestSamplingNestedStacksStayBalanced drives deeply nested calls through
// several periods and a mid-stack period change: the per-frame decision bit
// must keep every recorded stack properly nested regardless.
func TestSamplingNestedStacksStayBalanced(t *testing.T) {
	for _, period := range []uint64{2, 3, 7} {
		log, err := shmlog.New(1<<12, shmlog.WithSamplePeriod(period))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(log, counter.NewVirtual(1))
		if err != nil {
			t.Fatal(err)
		}
		th := rt.Thread()
		for i := 0; i < 40; i++ {
			depth := 1 + i%9
			for d := 0; d < depth; d++ {
				th.Enter(uint64(0x100 + d*16))
			}
			if i == 20 {
				// A controller moves the period while frames are open; the
				// already-taken decisions must still be honored on the way
				// back down.
				log.SetSamplePeriod(period * 2)
			}
			for d := depth - 1; d >= 0; d-- {
				th.Exit(uint64(0x100 + d*16))
			}
		}
		rt.Flush()
		if log.Len() == 0 {
			t.Fatalf("period %d: nothing recorded", period)
		}
		assertBalanced(t, log)
	}
}

// TestLiveThreadMaskStopsAndResumes pushes an all-ones thread deny mask
// while a thread is recording (the generation bump makes it visible without
// any restart), then clears it.
func TestLiveThreadMaskStopsAndResumes(t *testing.T) {
	rt := newRuntime(t, 256)
	th := rt.Thread()
	th.Enter(0x1)
	th.Exit(0x1)
	if got := rt.Log().Len(); got != 2 {
		t.Fatalf("before mask: %d entries, want 2", got)
	}

	rt.Log().SetThreadMask(^uint64(0))
	th.Enter(0x1)
	th.Exit(0x1)
	if got := rt.Log().Len(); got != 2 {
		t.Fatalf("all-ones mask still recorded: %d entries, want 2", got)
	}

	rt.Log().SetThreadMask(0)
	th.Enter(0x1)
	th.Exit(0x1)
	if got := rt.Log().Len(); got != 4 {
		t.Fatalf("after clearing mask: %d entries, want 4", got)
	}
	assertBalanced(t, rt.Log())
}

// TestThreadMaskSelectsByBit: the mask denies by (id-1)%64, so with bit 0
// set only the first thread is silenced.
func TestThreadMaskSelectsByBit(t *testing.T) {
	rt := newRuntime(t, 256)
	t1 := rt.Thread() // id 1 -> bit 0
	t2 := rt.Thread() // id 2 -> bit 1
	rt.Log().SetThreadMask(1 << 0)
	t1.Enter(0x1)
	t1.Exit(0x1)
	t2.Enter(0x2)
	t2.Exit(0x2)
	entries := rt.Log().Entries()
	if len(entries) != 2 {
		t.Fatalf("%d entries, want 2 (only thread 2)", len(entries))
	}
	for _, e := range entries {
		if e.ThreadID != t2.ID() {
			t.Fatalf("masked thread %d still recorded: %+v", t1.ID(), e)
		}
	}
}

func TestAddrMaskDeniesRange(t *testing.T) {
	rt := newRuntime(t, 256)
	th := rt.Thread()
	rt.Log().SetAddrMask(0x200, 0x300)
	th.Enter(0x100) // below the range: recorded
	th.Enter(0x240) // inside: suppressed
	th.Exit(0x240)
	th.Exit(0x100)
	th.Enter(0x300) // hi is exclusive: recorded
	th.Exit(0x300)
	entries := rt.Log().Entries()
	if len(entries) != 4 {
		t.Fatalf("%d entries, want 4", len(entries))
	}
	for _, e := range entries {
		if e.Addr >= 0x200 && e.Addr < 0x300 {
			t.Fatalf("denied address recorded: %+v", e)
		}
	}
	assertBalanced(t, rt.Log())
}

// TestPeriodOneIdenticalEntries: an explicit period of 1 must leave the
// entry stream byte-identical to a default recording — the sampling plane
// has no effect until a control actually deviates from the defaults.
func TestPeriodOneIdenticalEntries(t *testing.T) {
	drive := func(log *shmlog.Log) {
		rt, err := New(log, counter.NewVirtual(1))
		if err != nil {
			t.Fatal(err)
		}
		th := rt.Thread()
		for i := 0; i < 20; i++ {
			th.Enter(0x100)
			th.Enter(0x200)
			th.Exit(0x200)
			th.Exit(0x100)
		}
		rt.Flush()
	}
	plain, err := shmlog.New(256)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := shmlog.New(256, shmlog.WithSamplePeriod(1))
	if err != nil {
		t.Fatal(err)
	}
	drive(plain)
	drive(sampled)
	a, b := plain.Entries(), sampled.Entries()
	if len(a) != len(b) {
		t.Fatalf("entry counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAdaptiveBatchValidation(t *testing.T) {
	log, err := shmlog.New(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(log, counter.NewVirtual(1), WithAdaptiveBatch(0, 8)); err == nil {
		t.Error("min 0 should fail")
	}
	if _, err := New(log, counter.NewVirtual(1), WithAdaptiveBatch(8, 4)); err == nil {
		t.Error("min > max should fail")
	}
}

// TestAdaptiveControllerPolicy exercises the controller decisions directly:
// sustained reservation latency above the threshold doubles the batch,
// fresh drops halve it, and both moves stay inside [min, max] and are
// mirrored into the shared header word.
func TestAdaptiveControllerPolicy(t *testing.T) {
	log, err := shmlog.New(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(log, counter.NewVirtual(1), WithAdaptiveBatch(1, 16))
	if err != nil {
		t.Fatal(err)
	}
	ad := rt.adaptive
	start := rt.Batch()

	// One evaluation window of slow reservations: grow.
	for i := 0; i < adaptiveEvalEvery; i++ {
		ad.note(rt, log, 0, 2*adaptiveLatencyNS*time.Nanosecond)
	}
	if got := rt.Batch(); got != start*2 {
		t.Fatalf("after slow window: batch %d, want %d", got, start*2)
	}
	if got := log.BatchSize(); got != uint64(start*2) {
		t.Fatalf("header batch word = %d, want %d", got, start*2)
	}

	// Drops arrived since the last evaluation: shrink, even if latency is low.
	rt.drops.Add(3)
	for i := 0; i < adaptiveEvalEvery; i++ {
		ad.note(rt, log, 0, 0)
	}
	if got := rt.Batch(); got != start {
		t.Fatalf("after drops: batch %d, want %d", got, start)
	}
	grows, shrinks := rt.BatchAdjustments()
	if grows != 1 || shrinks != 1 {
		t.Fatalf("adjustments = %d grows, %d shrinks; want 1 and 1", grows, shrinks)
	}

	// Quiet windows hold steady.
	for i := 0; i < adaptiveEvalEvery; i++ {
		ad.note(rt, log, 0, 0)
	}
	if got := rt.Batch(); got != start {
		t.Fatalf("quiet window moved the batch: %d, want %d", got, start)
	}
}

// TestAdaptiveBatchEndToEnd drives real events through an adaptive runtime
// on a small log: the shard fills past the grow threshold, so the
// controller must have grown the batch at least once, and every event still
// lands or is accounted as a drop.
func TestAdaptiveBatchEndToEnd(t *testing.T) {
	log, err := shmlog.New(1 << 11)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(log, counter.NewVirtual(1), WithAdaptiveBatch(1, 64))
	if err != nil {
		t.Fatal(err)
	}
	th := rt.Thread()
	const pairs = 900 // 1800 events into 2048 capacity: fill > 0.5
	for i := 0; i < pairs; i++ {
		th.Enter(0x40)
		th.Exit(0x40)
	}
	rt.Flush()
	grows, _ := rt.BatchAdjustments()
	if grows == 0 {
		t.Fatalf("shard filled past %.0f%% without a grow (batch %d)", adaptiveFillHigh*100, rt.Batch())
	}
	// Len() includes reserved-then-released leftovers from the final batch,
	// so count committed entries.
	committed := uint64(len(log.Entries()))
	if got := committed + rt.Dropped(); got != 2*pairs {
		t.Fatalf("committed %d + dropped %d != %d events", committed, rt.Dropped(), 2*pairs)
	}
	assertBalanced(t, log)
}
