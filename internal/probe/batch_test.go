package probe

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"teeperf/internal/counter"
	"teeperf/internal/shmlog"
)

func TestWithBatchValidation(t *testing.T) {
	log, err := shmlog.New(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(log, counter.NewVirtual(1), WithBatch(-1)); err == nil {
		t.Error("negative batch should fail")
	}
	rt, err := New(log, counter.NewVirtual(1), WithBatch(0))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Batch() != 1 {
		t.Errorf("Batch() = %d after WithBatch(0), want default 1", rt.Batch())
	}
	rt, err = New(log, counter.NewVirtual(1), WithBatch(16))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Batch() != 16 {
		t.Errorf("Batch() = %d, want 16", rt.Batch())
	}
}

// TestBatchedFlushTombstonesTrailingSlots: a batched thread reserves a
// whole block up front; Flush must release the unused remainder so readers
// dismiss it rather than wait on it forever.
func TestBatchedFlushTombstonesTrailingSlots(t *testing.T) {
	rt := newRuntime(t, 64, WithBatch(8))
	th := rt.Thread()
	th.Enter(0x10)
	th.Enter(0x20)
	th.Exit(0x20)

	log := rt.Log()
	if log.Len() != 8 {
		t.Fatalf("Len = %d, want the whole reserved block (8)", log.Len())
	}
	if got := log.Entries(); len(got) != 8 {
		// Before the flush the trailing slots are in-flight holes.
		t.Fatalf("pre-flush raw entries = %d, want 8 (3 committed + 5 holes)", len(got))
	}
	cursor := log.Cursor()
	if drained := cursor.Next(nil); len(drained) != 3 || cursor.Pending() != 5 {
		t.Fatalf("pre-flush drain = %d entries, %d pending; want 3 and 5", len(drained), cursor.Pending())
	}

	rt.Flush()
	if drained := cursor.Next(nil); len(drained) != 0 || cursor.Pending() != 0 {
		t.Fatalf("post-flush drain = %d entries, %d pending; want 0 and 0", len(drained), cursor.Pending())
	}
	if got := log.Entries(); len(got) != 3 {
		t.Fatalf("post-flush Entries = %d, want 3 (tombstones dismissed)", len(got))
	}
	// Flush is idempotent and the thread can keep recording afterwards
	// (reserving a fresh block, flushed again before counting).
	rt.Flush()
	th.Enter(0x30)
	rt.Flush()
	if got := log.Entries(); len(got) != 4 {
		t.Fatalf("Entries after post-flush event = %d, want 4", len(got))
	}
}

// TestBatchedRotationReleasesOldBlock: after a log swap the thread's next
// event must land in the new segment and lazily tombstone the block it
// still held in the old one.
func TestBatchedRotationReleasesOldBlock(t *testing.T) {
	rt := newRuntime(t, 64, WithBatch(4))
	th := rt.Thread()
	th.Enter(0x10)
	th.Enter(0x20)

	next, err := shmlog.New(64)
	if err != nil {
		t.Fatal(err)
	}
	old, err := rt.SwapLog(next)
	if err != nil {
		t.Fatal(err)
	}

	// The old segment still shows two in-flight holes…
	if c := old.Cursor(); len(c.Next(nil)) != 2 || c.Pending() != 2 {
		t.Fatalf("old segment before lazy flush: drained %d, pending %d; want 2 and 2", len(c.Next(nil)), c.Pending())
	}

	// …until the thread's next event observes the swap and releases them.
	th.Exit(0x20)
	if got := old.Entries(); len(got) != 2 {
		t.Fatalf("old segment after lazy flush: %d entries, want 2 (holes tombstoned)", len(got))
	}
	rt.Flush() // settle the new segment's block before counting
	got := next.Entries()
	if len(got) != 1 || got[0].Kind != shmlog.KindReturn || got[0].Addr != 0x20 {
		t.Fatalf("new segment = %+v, want the single return event", got)
	}
}

// TestBatchedDropAccounting: once the segment is full a batched thread
// drops like the unbatched path — counted on both the log and the runtime —
// without hammering the tail with further reservation attempts.
func TestBatchedDropAccounting(t *testing.T) {
	rt := newRuntime(t, 4, WithBatch(8))
	th := rt.Thread()
	for i := 0; i < 4; i++ {
		th.Enter(uint64(0x10 + i))
	}
	if rt.Dropped() != 0 {
		t.Fatalf("drops before overflow = %d", rt.Dropped())
	}
	tailBefore := rt.Log().Tail()
	th.Enter(0x99)
	th.Enter(0x9A)
	if rt.Dropped() != 2 {
		t.Fatalf("runtime drops = %d, want 2", rt.Dropped())
	}
	if rt.Log().Dropped() != 2 {
		t.Fatalf("log drops = %d, want 2", rt.Log().Dropped())
	}
	// The first failed reservation marks the block full; the second drop
	// must not touch the tail again — and the failed reservation itself is
	// parked back at the capacity, so overload never grows the shared tail
	// word past the log's end.
	if tail, cap := rt.Log().Tail(), uint64(rt.Log().Capacity()); tail != cap {
		t.Fatalf("tail = %d, want parked at capacity %d (was %d before overflow)", tail, cap, tailBefore)
	}
	if got := rt.Log().Entries(); len(got) != 4 {
		t.Fatalf("Entries = %d, want the 4 recorded before overflow", len(got))
	}
}

// TestBatchedMatchesUnbatched: with a deterministic counter, a batched run
// commits exactly the entry stream an unbatched run does (tombstones aside).
func TestBatchedMatchesUnbatched(t *testing.T) {
	record := func(opts ...Option) []shmlog.Entry {
		log, err := shmlog.New(256)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(log, counter.NewVirtual(1), opts...)
		if err != nil {
			t.Fatal(err)
		}
		th := rt.Thread()
		for i := 0; i < 20; i++ {
			th.Enter(uint64(0x100 + i))
			th.Exit(uint64(0x100 + i))
		}
		rt.Flush()
		return log.Entries()
	}
	plain := record()
	batched := record(WithBatch(7))
	if !reflect.DeepEqual(plain, batched) {
		t.Fatalf("batched stream diverges from unbatched:\n%+v\nvs\n%+v", batched, plain)
	}
}

// TestFlushConcurrentWithProbe: Runtime.Flush and FlushLog may overlap a
// straggling probe (the recorder's Stop and Rotate paths); the per-thread
// busy handshake must keep block state untorn. Run under -race this is the
// regression test for the Stop/Flush data race: every event is either
// committed intact or dropped, never half-written, and per-thread order
// survives the interleaved flushes.
func TestFlushConcurrentWithProbe(t *testing.T) {
	const events = 5000
	rt := newRuntime(t, events+512, WithBatch(8))
	th := rt.Thread()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < events; i++ {
			th.Enter(uint64(0x100 + i%16))
		}
		close(done)
	}()
	for flushing := true; flushing; {
		rt.Flush()
		rt.FlushLog(rt.Log())
		// Yield between flush rounds: on a single-CPU box a saturating
		// flusher can hold the busy flag whenever the probing goroutine is
		// scheduled, starving every event into the drop path and leaving
		// nothing for the integrity assertions below.
		runtime.Gosched()
		select {
		case <-done:
			flushing = false
		default:
		}
	}
	wg.Wait()
	rt.Flush()

	// An event that loses the handshake CAS to an overlapping flush is
	// skipped, so not every event lands; the invariant is that whatever
	// did land is intact (no torn thread ID) and per-thread ordered (the
	// virtual counter is strictly increasing across recorded events).
	seen, last := 0, uint64(0)
	for _, e := range rt.Log().Entries() {
		if e.ThreadID != th.ID() {
			t.Fatalf("entry with torn thread ID %d", e.ThreadID)
		}
		if e.Counter <= last {
			t.Fatalf("per-thread order broken: counter %d after %d", e.Counter, last)
		}
		last = e.Counter
		seen++
	}
	if seen == 0 {
		t.Fatal("no events survived the concurrent flushes")
	}
}

// TestBatchedHonorsDynamicToggling: deactivating mid-block must stop
// recording immediately even though reserved slots remain.
func TestBatchedHonorsDynamicToggling(t *testing.T) {
	rt := newRuntime(t, 64, WithBatch(8))
	th := rt.Thread()
	th.Enter(0x10)
	rt.Log().SetActive(false)
	th.Enter(0x20) // inactive: not recorded, block untouched
	rt.Log().SetActive(true)
	th.Enter(0x30)
	rt.Flush()

	got := rt.Log().Entries()
	if len(got) != 2 || got[0].Addr != 0x10 || got[1].Addr != 0x30 {
		t.Fatalf("entries = %+v, want 0x10 and 0x30 only", got)
	}
}
