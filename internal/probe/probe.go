// Package probe is the run-time half of TEE-Perf's compiler stage: the code
// the compiler pass injects at every function entry and exit. A probe reads
// the counter, and appends a call/return entry to the shared-memory log
// under the reserving thread's ID. Probes guard against instrumenting
// themselves (the __attribute__((no_instrument_function)) analogue) and
// honor the dynamic activation flags and the selective-profiling filter.
package probe

import (
	"errors"
	"fmt"
	"sync/atomic"

	"teeperf/internal/counter"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// Hooks is the instrumentation contract workloads are compiled against.
// The TEE-Perf probe, the perf-baseline publisher and the no-op native
// hooks all implement it, so one workload binary serves all three
// measurement modes.
type Hooks interface {
	// Enter fires at function entry with the function's address.
	Enter(addr uint64)
	// Exit fires at function exit with the function's address.
	Exit(addr uint64)
}

// Nop is the zero-cost Hooks used for uninstrumented (native baseline)
// runs.
type Nop struct{}

var _ Hooks = Nop{}

// Enter does nothing.
func (Nop) Enter(uint64) {}

// Exit does nothing.
func (Nop) Exit(uint64) {}

// Runtime owns the probe state shared by all threads of one profiled
// process: the log, the counter source and the selective filter. The log
// is held behind an atomic pointer so the recorder can rotate a full log
// out from under running probes without stopping the application.
type Runtime struct {
	log    atomic.Pointer[shmlog.Log]
	src    counter.Source
	filter *Filter

	nextTID atomic.Uint64
	drops   atomic.Uint64
}

// Option configures New.
type Option interface {
	apply(*runtimeOptions)
}

type runtimeOptions struct {
	filter *Filter
}

type filterOption struct{ f *Filter }

func (o filterOption) apply(opts *runtimeOptions) { opts.filter = o.f }

// WithFilter restricts recording to the functions selected by f
// (selective code profiling). A nil filter records everything.
func WithFilter(f *Filter) Option { return filterOption{f: f} }

// New creates a probe runtime writing to log with timestamps from src.
func New(log *shmlog.Log, src counter.Source, opts ...Option) (*Runtime, error) {
	if log == nil {
		return nil, errors.New("probe: nil log")
	}
	if src == nil {
		return nil, errors.New("probe: nil counter source")
	}
	var o runtimeOptions
	for _, opt := range opts {
		opt.apply(&o)
	}
	rt := &Runtime{src: src, filter: o.filter}
	rt.log.Store(log)
	return rt, nil
}

// Log returns the current shared-memory log.
func (rt *Runtime) Log() *shmlog.Log { return rt.log.Load() }

// SwapLog atomically installs next as the active log and returns the
// previous one (log rotation). Probes racing with the swap land in one of
// the two logs; per-thread ordering within each log is preserved.
func (rt *Runtime) SwapLog(next *shmlog.Log) (*shmlog.Log, error) {
	if next == nil {
		return nil, errors.New("probe: nil log")
	}
	return rt.log.Swap(next), nil
}

// Dropped returns how many probe events could not be recorded (log full).
func (rt *Runtime) Dropped() uint64 { return rt.drops.Load() }

// Thread registers a new application thread and returns its probe handle.
// The second registered thread switches the log into multithread mode.
func (rt *Runtime) Thread() *Thread {
	id := rt.nextTID.Add(1)
	if id == 2 {
		rt.Log().SetFlag(shmlog.FlagMultithread)
	}
	return &Thread{rt: rt, id: id}
}

// Thread is the per-application-thread probe handle. It is not safe for
// concurrent use by multiple goroutines (it models a thread-local).
type Thread struct {
	rt      *Runtime
	id      uint64
	inProbe bool
}

var _ Hooks = (*Thread)(nil)

// ID returns the thread's log-visible identifier.
func (t *Thread) ID() uint64 { return t.id }

// Enter records a function-entry event.
func (t *Thread) Enter(addr uint64) { t.record(shmlog.KindCall, addr) }

// Exit records a function-exit event.
func (t *Thread) Exit(addr uint64) { t.record(shmlog.KindReturn, addr) }

// Span records the entry event and returns a function that records the
// matching exit, for use as `defer th.Span(addr)()` — the Go shape of the
// injected enter/exit pair.
func (t *Thread) Span(addr uint64) func() {
	t.Enter(addr)
	return func() { t.Exit(addr) }
}

func (t *Thread) record(kind shmlog.Kind, addr uint64) {
	// Reentrancy guard: injected code must never measure itself, or the
	// probe would recurse (the paper's no_instrument_function rule).
	if t.inProbe {
		return
	}
	t.inProbe = true
	if t.rt.filter != nil && !t.rt.filter.Allow(addr) {
		t.inProbe = false
		return
	}
	err := t.rt.Log().Append(shmlog.Entry{
		Kind:     kind,
		Counter:  t.rt.src.Now(),
		Addr:     addr,
		ThreadID: t.id,
	})
	if errors.Is(err, shmlog.ErrFull) {
		t.rt.drops.Add(1)
	}
	t.inProbe = false
}

// Filter implements selective code profiling: only functions whose
// addresses were selected are recorded.
type Filter struct {
	allow map[uint64]struct{}
}

// NewFilter selects every symbol in tab for which pred returns true. The
// profiler anchor is never instrumented and is excluded automatically.
func NewFilter(tab *symtab.Table, pred func(symtab.Symbol) bool) (*Filter, error) {
	if tab == nil {
		return nil, errors.New("probe: nil symbol table")
	}
	if pred == nil {
		return nil, errors.New("probe: nil predicate")
	}
	f := &Filter{allow: make(map[uint64]struct{})}
	for _, s := range tab.Symbols() {
		if s.Name == symtab.ProfilerAnchorName {
			continue
		}
		if pred(s) {
			f.allow[s.Addr] = struct{}{}
		}
	}
	return f, nil
}

// NewFilterAddrs selects an explicit address set.
func NewFilterAddrs(addrs []uint64) *Filter {
	f := &Filter{allow: make(map[uint64]struct{}, len(addrs))}
	for _, a := range addrs {
		f.allow[a] = struct{}{}
	}
	return f
}

// Allow reports whether addr is selected for recording.
func (f *Filter) Allow(addr uint64) bool {
	_, ok := f.allow[addr]
	return ok
}

// Size returns how many functions are selected.
func (f *Filter) Size() int { return len(f.allow) }

// String describes the filter for logs.
func (f *Filter) String() string {
	return fmt.Sprintf("filter(%d funcs)", len(f.allow))
}
