// Package probe is the run-time half of TEE-Perf's compiler stage: the code
// the compiler pass injects at every function entry and exit. A probe reads
// the counter, and appends a call/return entry to the shared-memory log
// under the reserving thread's ID. Probes guard against instrumenting
// themselves (the __attribute__((no_instrument_function)) analogue) and
// honor the dynamic activation flags and the selective-profiling filter.
package probe

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"teeperf/internal/counter"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// Hooks is the instrumentation contract workloads are compiled against.
// The TEE-Perf probe, the perf-baseline publisher and the no-op native
// hooks all implement it, so one workload binary serves all three
// measurement modes.
type Hooks interface {
	// Enter fires at function entry with the function's address.
	Enter(addr uint64)
	// Exit fires at function exit with the function's address.
	Exit(addr uint64)
}

// Nop is the zero-cost Hooks used for uninstrumented (native baseline)
// runs.
type Nop struct{}

var _ Hooks = Nop{}

// Enter does nothing.
func (Nop) Enter(uint64) {}

// Exit does nothing.
func (Nop) Exit(uint64) {}

// Runtime owns the probe state shared by all threads of one profiled
// process: the log, the counter source, the selective filter and the
// slot-reservation batch size. The log is held behind an atomic pointer so
// the recorder can rotate a full log out from under running probes without
// stopping the application.
type Runtime struct {
	log    atomic.Pointer[shmlog.Log]
	src    counter.Source
	filter *Filter
	batch  int

	nextTID atomic.Uint64
	drops   atomic.Uint64

	threadsMu sync.Mutex
	threads   []*Thread
}

// Option configures New.
type Option interface {
	apply(*runtimeOptions)
}

type runtimeOptions struct {
	filter *Filter
	batch  int
}

type filterOption struct{ f *Filter }

func (o filterOption) apply(opts *runtimeOptions) { opts.filter = o.f }

// WithFilter restricts recording to the functions selected by f
// (selective code profiling). A nil filter records everything.
func WithFilter(f *Filter) Option { return filterOption{f: f} }

type batchOption int

func (o batchOption) apply(opts *runtimeOptions) { opts.batch = int(o) }

// WithBatch makes each thread reserve blocks of k log slots with a single
// tail fetch-and-add and fill them locally, cutting the contended global
// atomic from one per event to one per k events. The default (k = 1)
// reserves per event, exactly like shmlog.Append. Unused trailing slots of
// a block are released (tombstoned) when the thread flushes, observes a
// rotation, or the runtime stops.
func WithBatch(k int) Option { return batchOption(k) }

// New creates a probe runtime writing to log with timestamps from src.
func New(log *shmlog.Log, src counter.Source, opts ...Option) (*Runtime, error) {
	if log == nil {
		return nil, errors.New("probe: nil log")
	}
	if src == nil {
		return nil, errors.New("probe: nil counter source")
	}
	var o runtimeOptions
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.batch < 0 {
		return nil, fmt.Errorf("probe: batch size must be >= 1, got %d", o.batch)
	}
	if o.batch == 0 {
		o.batch = 1
	}
	rt := &Runtime{src: src, filter: o.filter, batch: o.batch}
	rt.log.Store(log)
	return rt, nil
}

// Batch returns the configured slot-reservation batch size.
func (rt *Runtime) Batch() int { return rt.batch }

// Log returns the current shared-memory log.
func (rt *Runtime) Log() *shmlog.Log { return rt.log.Load() }

// SwapLog atomically installs next as the active log and returns the
// previous one (log rotation). Probes racing with the swap land in one of
// the two logs; per-thread ordering within each log is preserved.
func (rt *Runtime) SwapLog(next *shmlog.Log) (*shmlog.Log, error) {
	if next == nil {
		return nil, errors.New("probe: nil log")
	}
	return rt.log.Swap(next), nil
}

// Dropped returns how many probe events could not be recorded (log full).
func (rt *Runtime) Dropped() uint64 { return rt.drops.Load() }

// Thread registers a new application thread and returns its probe handle.
// The second registered thread switches the log into multithread mode.
func (rt *Runtime) Thread() *Thread {
	id := rt.nextTID.Add(1)
	if id == 2 {
		rt.Log().SetFlag(shmlog.FlagMultithread)
	}
	t := &Thread{rt: rt, id: id}
	rt.threadsMu.Lock()
	rt.threads = append(rt.threads, t)
	rt.threadsMu.Unlock()
	return t
}

// Flush releases the reserved-but-unfilled log slots of every registered
// thread (see Thread.Flush). The per-thread busy handshake makes it safe to
// call while application threads are still probing — a straggler racing
// with its own flush either records first or has its event dropped — but it
// is meant for quiescence points: the recorder calls it at Stop so trailing
// reserved slots of batched blocks are released rather than left as
// permanent holes.
func (rt *Runtime) Flush() {
	for _, t := range rt.snapshotThreads() {
		t.Flush()
	}
}

// FlushLog releases every registered thread's block if — and only if — that
// block still sits in old. The recorder calls it right after a rotation
// swaps old out, so the rotated segment is persisted with tombstones
// instead of the in-flight holes idle threads would otherwise leave until
// their next event; threads that already moved to the new segment are left
// untouched.
func (rt *Runtime) FlushLog(old *shmlog.Log) {
	if old == nil {
		return
	}
	for _, t := range rt.snapshotThreads() {
		t.flushLog(old)
	}
}

func (rt *Runtime) snapshotThreads() []*Thread {
	rt.threadsMu.Lock()
	threads := make([]*Thread, len(rt.threads))
	copy(threads, rt.threads)
	rt.threadsMu.Unlock()
	return threads
}

// block is a thread's current reserved slot range in one log segment.
type block struct {
	log   *shmlog.Log
	shard int    // the log segment this thread's ID hashes onto
	next  uint64 // next slot to fill
	end   uint64 // one past the last usable reserved slot
	full  bool   // the segment was full at the last reservation attempt
}

// Thread is the per-application-thread probe handle. Enter/Exit/Span/record
// must only be called by the owning thread (it models a thread-local), but
// Flush may be called from any goroutine: the busy flag below serializes
// cross-goroutine block maintenance against an in-flight probe.
type Thread struct {
	rt  *Runtime
	id  uint64
	blk block

	// busy is the reentrancy guard (the paper's no_instrument_function
	// rule: injected code must never measure itself) and, since block
	// state must survive a concurrent Flush from the recorder's Stop or
	// rotation path, also the handshake that keeps flushes from tearing
	// blk under a straggling probe. Acquired with a CAS on entry to record
	// and to the flush paths; a probe that loses the race to a concurrent
	// flush drops its event, which is acceptable at the
	// stop/rotation boundaries where that race can occur.
	busy atomic.Bool
}

var _ Hooks = (*Thread)(nil)

// ID returns the thread's log-visible identifier.
func (t *Thread) ID() uint64 { return t.id }

// Enter records a function-entry event.
func (t *Thread) Enter(addr uint64) { t.record(shmlog.KindCall, addr) }

// Exit records a function-exit event.
func (t *Thread) Exit(addr uint64) { t.record(shmlog.KindReturn, addr) }

// Span records the entry event and returns a function that records the
// matching exit, for use as `defer th.Span(addr)()` — the Go shape of the
// injected enter/exit pair.
func (t *Thread) Span(addr uint64) func() {
	t.Enter(addr)
	return func() { t.Exit(addr) }
}

func (t *Thread) record(kind shmlog.Kind, addr uint64) {
	// One CAS guards both reentrancy (a nested probe sees busy and bails)
	// and concurrent flushes (see Thread.busy). The flag lives on the
	// thread-local handle, so the CAS never contends in steady state.
	if !t.busy.CompareAndSwap(false, true) {
		return
	}
	if t.rt.filter != nil && !t.rt.filter.Allow(addr) {
		t.busy.Store(false)
		return
	}

	// The activation flag and event mask are honored per event, exactly
	// like shmlog.Append, so dynamic toggling works mid-block.
	log := t.rt.log.Load()
	flags := log.Flags()
	switch {
	case flags&shmlog.FlagActive == 0:
		t.busy.Store(false)
		return
	case kind == shmlog.KindCall && flags&shmlog.EventCall == 0,
		kind == shmlog.KindReturn && flags&shmlog.EventReturn == 0:
		t.busy.Store(false)
		return
	}

	// Block maintenance. A rotation (the runtime's log pointer moved)
	// releases the remainder of the block held in the old segment — the
	// persisted segment then carries tombstones instead of permanent
	// holes — before reserving from the new one.
	if t.blk.log != log {
		t.releaseBlock()
		t.blk = block{log: log, shard: log.ShardOf(t.id)}
	}
	if t.blk.next == t.blk.end && !t.blk.full {
		start, n := log.ReserveShard(t.blk.shard, t.rt.batch)
		if n == 0 {
			t.blk.full = true
		} else {
			t.blk.next, t.blk.end = start, start+uint64(n)
		}
	}
	if t.blk.next == t.blk.end {
		// Segment full: same accounting as the ErrFull path of Append.
		log.NoteDroppedShard(t.blk.shard, 1)
		t.rt.drops.Add(1)
		t.busy.Store(false)
		return
	}

	slot := t.blk.next
	t.blk.next++
	log.Commit(slot, shmlog.Entry{
		Kind:     kind,
		Counter:  t.rt.src.Now(),
		Addr:     addr,
		ThreadID: t.id,
	})
	t.busy.Store(false)
}

// acquire spins until it owns the busy flag. The guarded section never
// blocks (a handful of loads and stores), so the wait is bounded by one
// in-flight probe.
func (t *Thread) acquire() {
	for !t.busy.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
}

// releaseBlock tombstones the unfilled remainder of the current block.
func (t *Thread) releaseBlock() {
	for s := t.blk.next; s < t.blk.end; s++ {
		t.blk.log.Release(s)
	}
	t.blk.next = t.blk.end
}

// Flush releases (tombstones) the reserved-but-unfilled slots of the
// thread's current block, so readers see them as dismissed instead of
// still-in-flight holes. Call it when the thread stops producing events —
// at workload completion, before a log Reset, or implicitly via
// Runtime.Flush at recorder stop. It is safe to call from any goroutine:
// the busy handshake serializes it against an in-flight probe of the
// owning thread (which afterwards simply reserves a fresh block).
func (t *Thread) Flush() {
	t.acquire()
	t.releaseBlock()
	t.blk = block{}
	t.busy.Store(false)
}

// flushLog releases the thread's block only if it belongs to old, leaving
// a block already reserved in a newer segment alone (see Runtime.FlushLog).
func (t *Thread) flushLog(old *shmlog.Log) {
	t.acquire()
	if t.blk.log == old {
		t.releaseBlock()
		t.blk = block{}
	}
	t.busy.Store(false)
}

// Filter implements selective code profiling: only functions whose
// addresses were selected are recorded.
type Filter struct {
	allow map[uint64]struct{}
}

// NewFilter selects every symbol in tab for which pred returns true. The
// profiler anchor is never instrumented and is excluded automatically.
func NewFilter(tab *symtab.Table, pred func(symtab.Symbol) bool) (*Filter, error) {
	if tab == nil {
		return nil, errors.New("probe: nil symbol table")
	}
	if pred == nil {
		return nil, errors.New("probe: nil predicate")
	}
	f := &Filter{allow: make(map[uint64]struct{})}
	for _, s := range tab.Symbols() {
		if s.Name == symtab.ProfilerAnchorName {
			continue
		}
		if pred(s) {
			f.allow[s.Addr] = struct{}{}
		}
	}
	return f, nil
}

// NewFilterAddrs selects an explicit address set.
func NewFilterAddrs(addrs []uint64) *Filter {
	f := &Filter{allow: make(map[uint64]struct{}, len(addrs))}
	for _, a := range addrs {
		f.allow[a] = struct{}{}
	}
	return f
}

// Allow reports whether addr is selected for recording.
func (f *Filter) Allow(addr uint64) bool {
	_, ok := f.allow[addr]
	return ok
}

// Size returns how many functions are selected.
func (f *Filter) Size() int { return len(f.allow) }

// String describes the filter for logs.
func (f *Filter) String() string {
	return fmt.Sprintf("filter(%d funcs)", len(f.allow))
}
