// Package probe is the run-time half of TEE-Perf's compiler stage: the code
// the compiler pass injects at every function entry and exit. A probe reads
// the counter, and appends a call/return entry to the shared-memory log
// under the reserving thread's ID. Probes guard against instrumenting
// themselves (the __attribute__((no_instrument_function)) analogue) and
// honor the dynamic activation flags and the selective-profiling filter.
package probe

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"teeperf/internal/counter"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

// Hooks is the instrumentation contract workloads are compiled against.
// The TEE-Perf probe, the perf-baseline publisher and the no-op native
// hooks all implement it, so one workload binary serves all three
// measurement modes.
type Hooks interface {
	// Enter fires at function entry with the function's address.
	Enter(addr uint64)
	// Exit fires at function exit with the function's address.
	Exit(addr uint64)
}

// Nop is the zero-cost Hooks used for uninstrumented (native baseline)
// runs.
type Nop struct{}

var _ Hooks = Nop{}

// Enter does nothing.
func (Nop) Enter(uint64) {}

// Exit does nothing.
func (Nop) Exit(uint64) {}

// Runtime owns the probe state shared by all threads of one profiled
// process: the log, the counter source, the selective filter and the
// slot-reservation batch size. The log is held behind an atomic pointer so
// the recorder can rotate a full log out from under running probes without
// stopping the application.
type Runtime struct {
	log    atomic.Pointer[shmlog.Log]
	src    counter.Source
	filter *Filter
	batch  int

	// adaptive is non-nil when WithAdaptiveBatch is configured; threads then
	// reserve adaptive.cur slots per block instead of the fixed batch size.
	adaptive *adaptiveBatch

	nextTID atomic.Uint64
	drops   atomic.Uint64
	// masked counts events suppressed by the sampling period or a deny
	// mask, accumulated across log rotations (threads flush their local
	// tallies here and into the current log's shared header word).
	masked atomic.Uint64

	threadsMu sync.Mutex
	threads   []*Thread
}

// Option configures New.
type Option interface {
	apply(*runtimeOptions)
}

type runtimeOptions struct {
	filter   *Filter
	batch    int
	adaptive *adaptiveBatch
}

type filterOption struct{ f *Filter }

func (o filterOption) apply(opts *runtimeOptions) { opts.filter = o.f }

// WithFilter restricts recording to the functions selected by f
// (selective code profiling). A nil filter records everything.
func WithFilter(f *Filter) Option { return filterOption{f: f} }

type batchOption int

func (o batchOption) apply(opts *runtimeOptions) { opts.batch = int(o) }

// WithBatch makes each thread reserve blocks of k log slots with a single
// tail fetch-and-add and fill them locally, cutting the contended global
// atomic from one per event to one per k events. The default (k = 1)
// reserves per event, exactly like shmlog.Append. Unused trailing slots of
// a block are released (tombstoned) when the thread flushes, observes a
// rotation, or the runtime stops.
func WithBatch(k int) Option { return batchOption(k) }

// adaptiveBatch is the self-tuning batch controller: the live batch size
// plus the pressure signals it steers by. Decisions are made on the
// reservation path (once per block, so the cost is amortized over the batch)
// every evalEvery reservations: new drops since the last evaluation halve
// the batch (a big block parked on a full segment wastes slots other
// threads could have used), while high reservation latency or a segment
// filling past the high-water mark double it (amortize the contended
// fetch-and-add over more events). The current size is mirrored into the
// log header (shmlog.SetBatchSize) so external observers can export it.
type adaptiveBatch struct {
	min, max int64
	cur      atomic.Int64

	resv      atomic.Uint64 // reservations since start (eval trigger)
	latSum    atomic.Int64  // summed reservation latency this window (ns)
	lastDrops atomic.Uint64 // drop count at the last evaluation
	grows     atomic.Uint64
	shrinks   atomic.Uint64
}

const (
	// adaptiveEvalEvery is the evaluation cadence in reservations.
	adaptiveEvalEvery = 32
	// adaptiveLatencyNS is the per-reservation latency (window average)
	// above which the controller grows the batch.
	adaptiveLatencyNS = 1000
	// adaptiveFillHigh is the segment fill fraction above which the
	// controller grows the batch.
	adaptiveFillHigh = 0.5
)

// note records one reservation's latency and runs the controller every
// adaptiveEvalEvery reservations. log/shard identify the segment just
// reserved from (its fill is the pressure signal).
func (ad *adaptiveBatch) note(rt *Runtime, log *shmlog.Log, shard int, lat time.Duration) {
	ad.latSum.Add(int64(lat))
	if ad.resv.Add(1)%adaptiveEvalEvery != 0 {
		return
	}
	avgLat := ad.latSum.Swap(0) / adaptiveEvalEvery
	drops := rt.drops.Load()
	cur := ad.cur.Load()
	switch {
	case drops > ad.lastDrops.Swap(drops):
		// Drop rate climbed: shrink so a writer parked on a full segment
		// holds fewer wasted slots and overflow is spread more fairly.
		if next := cur / 2; next >= ad.min {
			ad.cur.Store(next)
			log.SetBatchSize(uint64(next))
			ad.shrinks.Add(1)
		} else if cur != ad.min {
			ad.cur.Store(ad.min)
			log.SetBatchSize(uint64(ad.min))
			ad.shrinks.Add(1)
		}
	case avgLat > adaptiveLatencyNS || log.ShardFill(shard) > adaptiveFillHigh:
		// Reservation latency or fill pressure rose: grow so each contended
		// fetch-and-add buys more locally-owned slots.
		if next := cur * 2; next <= ad.max {
			ad.cur.Store(next)
			log.SetBatchSize(uint64(next))
			ad.grows.Add(1)
		}
	}
}

type adaptiveOption struct{ min, max int }

func (o adaptiveOption) apply(opts *runtimeOptions) {
	opts.adaptive = &adaptiveBatch{min: int64(o.min), max: int64(o.max)}
}

// WithAdaptiveBatch makes the per-thread reservation batch size self-tuning
// within [min, max]: the controller grows it when reservation latency or
// segment fill rises and shrinks it when the drop rate climbs, re-evaluating
// every few reservations so the cost stays off the per-event path. The
// starting size is WithBatch's k clamped into [min, max] (min when WithBatch
// is not given). The live size is exported via Runtime.Batch, mirrored into
// the log header for external observers, and surfaced as the
// teeperf_probe_batch_size gauge.
func WithAdaptiveBatch(min, max int) Option { return adaptiveOption{min: min, max: max} }

// New creates a probe runtime writing to log with timestamps from src.
func New(log *shmlog.Log, src counter.Source, opts ...Option) (*Runtime, error) {
	if log == nil {
		return nil, errors.New("probe: nil log")
	}
	if src == nil {
		return nil, errors.New("probe: nil counter source")
	}
	var o runtimeOptions
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.batch < 0 {
		return nil, fmt.Errorf("probe: batch size must be >= 1, got %d", o.batch)
	}
	if o.batch == 0 {
		o.batch = 1
	}
	if ad := o.adaptive; ad != nil {
		if ad.min < 1 || ad.max < ad.min {
			return nil, fmt.Errorf("probe: adaptive batch bounds must satisfy 1 <= min <= max, got [%d, %d]", ad.min, ad.max)
		}
		start := int64(o.batch)
		if start < ad.min {
			start = ad.min
		}
		if start > ad.max {
			start = ad.max
		}
		ad.cur.Store(start)
		log.SetBatchSize(uint64(start))
	}
	rt := &Runtime{src: src, filter: o.filter, batch: o.batch, adaptive: o.adaptive}
	rt.log.Store(log)
	return rt, nil
}

// Batch returns the slot-reservation batch size: the live controller value
// under WithAdaptiveBatch, the configured constant otherwise.
func (rt *Runtime) Batch() int {
	if rt.adaptive != nil {
		return int(rt.adaptive.cur.Load())
	}
	return rt.batch
}

// BatchAdjustments returns how many times the adaptive controller grew and
// shrank the batch size (both zero with a fixed batch).
func (rt *Runtime) BatchAdjustments() (grows, shrinks uint64) {
	if rt.adaptive == nil {
		return 0, 0
	}
	return rt.adaptive.grows.Load(), rt.adaptive.shrinks.Load()
}

// Masked returns how many events were suppressed by the sampling period or
// a deny mask, accumulated across log rotations. Threads flush their local
// tallies in bulk, so the value can trail by a few events until Flush.
func (rt *Runtime) Masked() uint64 { return rt.masked.Load() }

// Log returns the current shared-memory log.
func (rt *Runtime) Log() *shmlog.Log { return rt.log.Load() }

// SwapLog atomically installs next as the active log and returns the
// previous one (log rotation). Probes racing with the swap land in one of
// the two logs; per-thread ordering within each log is preserved.
func (rt *Runtime) SwapLog(next *shmlog.Log) (*shmlog.Log, error) {
	if next == nil {
		return nil, errors.New("probe: nil log")
	}
	return rt.log.Swap(next), nil
}

// Dropped returns how many probe events could not be recorded (log full).
func (rt *Runtime) Dropped() uint64 { return rt.drops.Load() }

// Thread registers a new application thread and returns its probe handle.
// The second registered thread switches the log into multithread mode.
func (rt *Runtime) Thread() *Thread {
	id := rt.nextTID.Add(1)
	if id == 2 {
		rt.Log().SetFlag(shmlog.FlagMultithread)
	}
	t := &Thread{rt: rt, id: id}
	rt.threadsMu.Lock()
	rt.threads = append(rt.threads, t)
	rt.threadsMu.Unlock()
	return t
}

// Flush releases the reserved-but-unfilled log slots of every registered
// thread (see Thread.Flush). The per-thread busy handshake makes it safe to
// call while application threads are still probing — a straggler racing
// with its own flush either records first or has its event dropped — but it
// is meant for quiescence points: the recorder calls it at Stop so trailing
// reserved slots of batched blocks are released rather than left as
// permanent holes.
func (rt *Runtime) Flush() {
	for _, t := range rt.snapshotThreads() {
		t.Flush()
	}
}

// FlushLog releases every registered thread's block if — and only if — that
// block still sits in old. The recorder calls it right after a rotation
// swaps old out, so the rotated segment is persisted with tombstones
// instead of the in-flight holes idle threads would otherwise leave until
// their next event; threads that already moved to the new segment are left
// untouched.
func (rt *Runtime) FlushLog(old *shmlog.Log) {
	if old == nil {
		return
	}
	for _, t := range rt.snapshotThreads() {
		t.flushLog(old)
	}
}

func (rt *Runtime) snapshotThreads() []*Thread {
	rt.threadsMu.Lock()
	threads := make([]*Thread, len(rt.threads))
	copy(threads, rt.threads)
	rt.threadsMu.Unlock()
	return threads
}

// block is a thread's current reserved slot range in one log segment.
type block struct {
	log   *shmlog.Log
	shard int    // the log segment this thread's ID hashes onto
	next  uint64 // next slot to fill
	end   uint64 // one past the last usable reserved slot
	full  bool   // the segment was full at the last reservation attempt
}

// Thread is the per-application-thread probe handle. Enter/Exit/Span/record
// must only be called by the owning thread (it models a thread-local), but
// Flush may be called from any goroutine: the busy flag below serializes
// cross-goroutine block maintenance against an in-flight probe.
type Thread struct {
	rt  *Runtime
	id  uint64
	blk block

	// Adaptive-probe state, owned exclusively by the probing thread — a
	// concurrent Flush touches only blk (under busy) and the atomic masked
	// tally, never these fields, which is what lets the suppressed fast
	// path in record skip the busy CAS entirely. ctl caches the log's
	// control snapshot and ctlSrc the log it was read from; the record path
	// rereads it when the header's generation word moves or the log was
	// rotated. ctlActive short-circuits the sampling/mask logic when the
	// controls are all-default, keeping the record-everything path identical
	// to pre-sampling builds.
	ctl       shmlog.Controls
	ctlSrc    *shmlog.Log
	ctlActive bool
	// tick counts call events; at sampling period N, calls with
	// tick%N == 0 are sampled.
	tick uint64
	// depth and bits form the sampled-decision stack: bit depth of bits
	// remembers whether the open frame at that depth was recorded, so the
	// matching return makes the same decision and stacks stay balanced even
	// when the period or masks change mid-frame. Maintained unconditionally
	// (one index write per event) so toggling controls on mid-run finds
	// consistent state.
	depth int
	bits  []uint64
	// maskedLocal tallies suppressed events, flushed to the shared header
	// word in bulk (maskedFlushEvery) so suppression never pays a per-event
	// shared atomic add — that contention would defeat the point of
	// sampling. It is itself atomic (uncontended in steady state) because
	// the suppressed fast path increments it outside the busy guard while
	// Flush may be draining it.
	maskedLocal atomic.Uint64

	// busy is the reentrancy guard (the paper's no_instrument_function
	// rule: injected code must never measure itself) and, since block
	// state must survive a concurrent Flush from the recorder's Stop or
	// rotation path, also the handshake that keeps flushes from tearing
	// blk under a straggling probe. Acquired with a CAS on entry to record
	// and to the flush paths; a probe that loses the race to a concurrent
	// flush drops its event, which is acceptable at the
	// stop/rotation boundaries where that race can occur.
	busy atomic.Bool
}

// maskedFlushEvery is how many locally-tallied suppressed events accumulate
// before a thread flushes them to the shared masked counter.
const maskedFlushEvery = 256

var _ Hooks = (*Thread)(nil)

// ID returns the thread's log-visible identifier.
func (t *Thread) ID() uint64 { return t.id }

// Enter records a function-entry event.
func (t *Thread) Enter(addr uint64) { t.record(shmlog.KindCall, addr) }

// Exit records a function-exit event.
func (t *Thread) Exit(addr uint64) { t.record(shmlog.KindReturn, addr) }

// Span records the entry event and returns a function that records the
// matching exit, for use as `defer th.Span(addr)()` — the Go shape of the
// injected enter/exit pair.
func (t *Thread) Span(addr uint64) func() {
	t.Enter(addr)
	return func() { t.Exit(addr) }
}

func (t *Thread) record(kind shmlog.Kind, addr uint64) {
	// The filter is immutable after New, so it needs no guard and runs
	// before everything else: filtered functions cost one map probe.
	if t.rt.filter != nil && !t.rt.filter.Allow(addr) {
		return
	}

	// The activation flag and event mask are honored per event, exactly
	// like shmlog.Append, so dynamic toggling works mid-block.
	log := t.rt.log.Load()
	flags := log.Flags()
	switch {
	case flags&shmlog.FlagActive == 0:
		return
	case kind == shmlog.KindCall && flags&shmlog.EventCall == 0,
		kind == shmlog.KindReturn && flags&shmlog.EventReturn == 0:
		return
	}

	// Suppressed fast path: when the cached control snapshot is current —
	// same log, same generation — and it says this event is sampled out or
	// masked, the probe returns before taking the busy CAS, reserving a
	// slot, or reading the counter. Everything it touches (tick, the
	// decision stack, the cached snapshot) is owned by the probing thread;
	// a concurrent Flush touches only blk (under busy) and the atomic
	// masked tally. This is what makes high sampling periods cheap: a
	// suppressed pair costs a few thread-local loads instead of two CASes.
	// Recording decisions fall through and are re-derived under the guard,
	// which is also where stale snapshots reload.
	if t.ctlActive && log == t.ctlSrc && log.CtlGen() == t.ctl.Gen {
		switch {
		case kind == shmlog.KindCall:
			if !t.decideCall(addr) {
				t.pushDecision(false)
				t.noteMasked(log)
				return
			}
		case t.depth > 0:
			if t.bits[(t.depth-1)>>6]&(1<<((t.depth-1)&63)) == 0 {
				t.depth--
				t.noteMasked(log)
				return
			}
		default:
			if t.ctl.Denies(t.id, addr) {
				t.noteMasked(log)
				return
			}
		}
	}

	// One CAS guards both reentrancy (a nested probe sees busy and bails)
	// and concurrent flushes (see Thread.busy). The flag lives on the
	// thread-local handle, so the CAS never contends in steady state.
	if !t.busy.CompareAndSwap(false, true) {
		return
	}

	// Block maintenance. A rotation (the runtime's log pointer moved)
	// releases the remainder of the block held in the old segment — the
	// persisted segment then carries tombstones instead of permanent
	// holes — before reserving from the new one. A rotation also reloads
	// the control snapshot (the next segment carries the controls over);
	// otherwise the generation word — on the same cache line as the flags
	// word loaded above — is compared per event and the snapshot rereads
	// only when a controller bumped it.
	if t.blk.log != log {
		t.releaseBlock()
		t.blk = block{log: log, shard: log.ShardOf(t.id)}
		t.reloadCtl(log)
	} else if log.CtlGen() != t.ctl.Gen {
		t.reloadCtl(log)
	}

	// Sampling and mask decision. The decision is taken at call entry and
	// pushed on the per-frame bit stack; the matching return pops it and
	// follows it, so recorded stacks stay balanced whatever the controls
	// did in between. With all-default controls every decision is "record",
	// and the log is byte-identical to a pre-sampling recording.
	suppress := false
	if kind == shmlog.KindCall {
		rec := !t.ctlActive || t.decideCall(addr)
		t.pushDecision(rec)
		suppress = !rec
	} else if t.depth > 0 {
		t.depth--
		suppress = t.bits[t.depth>>6]&(1<<(t.depth&63)) == 0
	} else if t.ctlActive {
		// An unmatched return (no open frame: recording toggled mid-call)
		// has no call-side decision to follow; suppress it only when the
		// masks deny it outright.
		suppress = t.ctl.Denies(t.id, addr)
	}
	if suppress {
		t.noteMasked(log)
		t.busy.Store(false)
		return
	}

	if t.blk.next == t.blk.end && !t.blk.full {
		batch := t.rt.batch
		if ad := t.rt.adaptive; ad != nil {
			batch = int(ad.cur.Load())
			begin := time.Now()
			start, n := log.ReserveShard(t.blk.shard, batch)
			ad.note(t.rt, log, t.blk.shard, time.Since(begin))
			if n == 0 {
				t.blk.full = true
			} else {
				t.blk.next, t.blk.end = start, start+uint64(n)
			}
		} else {
			start, n := log.ReserveShard(t.blk.shard, batch)
			if n == 0 {
				t.blk.full = true
			} else {
				t.blk.next, t.blk.end = start, start+uint64(n)
			}
		}
	}
	if t.blk.next == t.blk.end {
		// Segment full: same accounting as the ErrFull path of Append.
		log.NoteDroppedShard(t.blk.shard, 1)
		t.rt.drops.Add(1)
		t.busy.Store(false)
		return
	}

	slot := t.blk.next
	t.blk.next++
	log.Commit(slot, shmlog.Entry{
		Kind:     kind,
		Counter:  t.rt.src.Now(),
		Addr:     addr,
		ThreadID: t.id,
	})
	t.busy.Store(false)
}

// acquire spins until it owns the busy flag. The guarded section never
// blocks (a handful of loads and stores), so the wait is bounded by one
// in-flight probe.
func (t *Thread) acquire() {
	for !t.busy.CompareAndSwap(false, true) {
		runtime.Gosched()
	}
}

// reloadCtl rereads the control snapshot from log (generation handshake in
// shmlog.Controls) and precomputes whether any control deviates from
// record-everything. Called with busy held.
func (t *Thread) reloadCtl(log *shmlog.Log) {
	t.ctl = log.Controls()
	t.ctlSrc = log
	t.ctlActive = t.ctl.Period > 1 || t.ctl.ThreadMask != 0 || t.ctl.AddrHi > t.ctl.AddrLo
}

// decideCall reports whether the call event arriving at the current tick
// should be recorded under the cached controls. Pure read of owner-thread
// state; mutates nothing, so both the fast path and the guarded path can
// evaluate it and arrive at the same answer.
func (t *Thread) decideCall(addr uint64) bool {
	if p := t.ctl.Period; p > 1 && t.tick%p != 0 {
		return false
	}
	return !t.ctl.Denies(t.id, addr)
}

// pushDecision advances the call tick and pushes the record/suppress
// decision for the opening frame onto the per-frame bit stack, where the
// matching return will find it. Owner-thread state only.
func (t *Thread) pushDecision(rec bool) {
	t.tick++
	w, b := t.depth>>6, uint64(1)<<(t.depth&63)
	if w == len(t.bits) {
		t.bits = append(t.bits, 0)
	}
	if rec {
		t.bits[w] |= b
	} else {
		t.bits[w] &^= b
	}
	t.depth++
}

// noteMasked tallies one suppressed event and flushes the tally to the
// shared header word in bulk. Runs outside the busy guard on the fast path;
// the swap keeps a concurrent flushMasked from losing or double-counting.
func (t *Thread) noteMasked(log *shmlog.Log) {
	if t.maskedLocal.Add(1) < maskedFlushEvery {
		return
	}
	if n := t.maskedLocal.Swap(0); n != 0 {
		log.NoteMasked(n)
		t.rt.masked.Add(n)
	}
}

// flushMasked pushes the thread's local suppressed-event tally to the
// shared counter. Called with busy held.
func (t *Thread) flushMasked() {
	if n := t.maskedLocal.Swap(0); n != 0 {
		t.rt.log.Load().NoteMasked(n)
		t.rt.masked.Add(n)
	}
}

// releaseBlock tombstones the unfilled remainder of the current block.
func (t *Thread) releaseBlock() {
	for s := t.blk.next; s < t.blk.end; s++ {
		t.blk.log.Release(s)
	}
	t.blk.next = t.blk.end
}

// Flush releases (tombstones) the reserved-but-unfilled slots of the
// thread's current block, so readers see them as dismissed instead of
// still-in-flight holes. Call it when the thread stops producing events —
// at workload completion, before a log Reset, or implicitly via
// Runtime.Flush at recorder stop. It is safe to call from any goroutine:
// the busy handshake serializes it against an in-flight probe of the
// owning thread (which afterwards simply reserves a fresh block).
func (t *Thread) Flush() {
	t.acquire()
	t.releaseBlock()
	t.blk = block{}
	t.flushMasked()
	t.busy.Store(false)
}

// flushLog releases the thread's block only if it belongs to old, leaving
// a block already reserved in a newer segment alone (see Runtime.FlushLog).
func (t *Thread) flushLog(old *shmlog.Log) {
	t.acquire()
	if t.blk.log == old {
		t.releaseBlock()
		t.blk = block{}
	}
	t.busy.Store(false)
}

// Filter implements selective code profiling: only functions whose
// addresses were selected are recorded.
type Filter struct {
	allow map[uint64]struct{}
}

// NewFilter selects every symbol in tab for which pred returns true. The
// profiler anchor is never instrumented and is excluded automatically.
func NewFilter(tab *symtab.Table, pred func(symtab.Symbol) bool) (*Filter, error) {
	if tab == nil {
		return nil, errors.New("probe: nil symbol table")
	}
	if pred == nil {
		return nil, errors.New("probe: nil predicate")
	}
	f := &Filter{allow: make(map[uint64]struct{})}
	for _, s := range tab.Symbols() {
		if s.Name == symtab.ProfilerAnchorName {
			continue
		}
		if pred(s) {
			f.allow[s.Addr] = struct{}{}
		}
	}
	return f, nil
}

// NewFilterAddrs selects an explicit address set.
func NewFilterAddrs(addrs []uint64) *Filter {
	f := &Filter{allow: make(map[uint64]struct{}, len(addrs))}
	for _, a := range addrs {
		f.allow[a] = struct{}{}
	}
	return f
}

// Allow reports whether addr is selected for recording.
func (f *Filter) Allow(addr uint64) bool {
	_, ok := f.allow[addr]
	return ok
}

// Size returns how many functions are selected.
func (f *Filter) Size() int { return len(f.allow) }

// String describes the filter for logs.
func (f *Filter) String() string {
	return fmt.Sprintf("filter(%d funcs)", len(f.allow))
}
