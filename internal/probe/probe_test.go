package probe

import (
	"strings"
	"sync"
	"testing"

	"teeperf/internal/counter"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

func newRuntime(t *testing.T, capacity int, opts ...Option) *Runtime {
	t.Helper()
	log, err := shmlog.New(capacity)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(log, counter.NewVirtual(1), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestNewValidation(t *testing.T) {
	log, err := shmlog.New(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, counter.NewVirtual(1)); err == nil {
		t.Error("nil log should fail")
	}
	if _, err := New(log, nil); err == nil {
		t.Error("nil source should fail")
	}
}

func TestEnterExitRecordsEntries(t *testing.T) {
	rt := newRuntime(t, 16)
	th := rt.Thread()
	th.Enter(0x100)
	th.Exit(0x100)

	entries := rt.Log().Entries()
	if len(entries) != 2 {
		t.Fatalf("recorded %d entries, want 2", len(entries))
	}
	if entries[0].Kind != shmlog.KindCall || entries[0].Addr != 0x100 || entries[0].ThreadID != th.ID() {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[1].Kind != shmlog.KindReturn {
		t.Errorf("entry 1 kind = %v, want return", entries[1].Kind)
	}
	if entries[1].Counter <= entries[0].Counter {
		t.Errorf("counters not increasing: %d then %d", entries[0].Counter, entries[1].Counter)
	}
}

func TestSpan(t *testing.T) {
	rt := newRuntime(t, 16)
	th := rt.Thread()
	func() {
		defer th.Span(0x200)()
		th.Enter(0x300)
		th.Exit(0x300)
	}()
	entries := rt.Log().Entries()
	want := []struct {
		kind shmlog.Kind
		addr uint64
	}{
		{shmlog.KindCall, 0x200},
		{shmlog.KindCall, 0x300},
		{shmlog.KindReturn, 0x300},
		{shmlog.KindReturn, 0x200},
	}
	if len(entries) != len(want) {
		t.Fatalf("recorded %d entries, want %d", len(entries), len(want))
	}
	for i, w := range want {
		if entries[i].Kind != w.kind || entries[i].Addr != w.addr {
			t.Errorf("entry %d = %v@%#x, want %v@%#x",
				i, entries[i].Kind, entries[i].Addr, w.kind, w.addr)
		}
	}
}

func TestThreadIDsAndMultithreadFlag(t *testing.T) {
	rt := newRuntime(t, 16)
	t1 := rt.Thread()
	if rt.Log().Flags()&shmlog.FlagMultithread != 0 {
		t.Error("multithread flag set with a single thread")
	}
	t2 := rt.Thread()
	if t1.ID() == t2.ID() {
		t.Error("thread IDs collide")
	}
	if rt.Log().Flags()&shmlog.FlagMultithread == 0 {
		t.Error("multithread flag not set after second thread")
	}
}

func TestReentrancyGuard(t *testing.T) {
	rt := newRuntime(t, 16)
	th := rt.Thread()
	// Simulate the probe being re-entered from within itself, as would
	// happen if the injected code were itself instrumented.
	th.busy.Store(true)
	th.Enter(0x1)
	th.Exit(0x1)
	if got := rt.Log().Len(); got != 0 {
		t.Errorf("re-entrant probe recorded %d entries, want 0", got)
	}
	th.busy.Store(false)
	th.Enter(0x1)
	if got := rt.Log().Len(); got != 1 {
		t.Errorf("after guard release recorded %d entries, want 1", got)
	}
}

func TestInactiveLogDropsSilently(t *testing.T) {
	rt := newRuntime(t, 16)
	th := rt.Thread()
	rt.Log().SetActive(false)
	th.Enter(0x1)
	th.Exit(0x1)
	if got := rt.Log().Len(); got != 0 {
		t.Errorf("inactive log has %d entries, want 0", got)
	}
	if got := rt.Dropped(); got != 0 {
		t.Errorf("inactive drops counted as overflow: %d", got)
	}
	rt.Log().SetActive(true)
	th.Enter(0x1)
	if got := rt.Log().Len(); got != 1 {
		t.Errorf("after reactivation: %d entries, want 1", got)
	}
}

func TestOverflowCountsDrops(t *testing.T) {
	rt := newRuntime(t, 2)
	th := rt.Thread()
	for i := 0; i < 5; i++ {
		th.Enter(uint64(i))
	}
	if got := rt.Dropped(); got != 3 {
		t.Errorf("Dropped() = %d, want 3", got)
	}
}

func TestFilterByName(t *testing.T) {
	tab := symtab.New()
	hot := tab.MustRegister("hot_path", 16, "a.go", 1)
	cold := tab.MustRegister("cold_path", 16, "a.go", 9)

	f, err := NewFilter(tab, func(s symtab.Symbol) bool {
		return strings.HasPrefix(s.Name, "hot")
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1 {
		t.Fatalf("filter selected %d funcs, want 1", f.Size())
	}
	if !f.Allow(hot) || f.Allow(cold) {
		t.Errorf("Allow(hot)=%v Allow(cold)=%v", f.Allow(hot), f.Allow(cold))
	}
	if f.Allow(tab.AnchorAddr()) {
		t.Error("anchor must never be instrumented")
	}

	rt := newRuntime(t, 16, WithFilter(f))
	th := rt.Thread()
	th.Enter(hot)
	th.Enter(cold)
	th.Exit(cold)
	th.Exit(hot)
	entries := rt.Log().Entries()
	if len(entries) != 2 {
		t.Fatalf("recorded %d entries, want 2 (hot only)", len(entries))
	}
	for _, e := range entries {
		if e.Addr != hot {
			t.Errorf("recorded addr %#x, want only hot %#x", e.Addr, hot)
		}
	}
}

func TestFilterValidation(t *testing.T) {
	tab := symtab.New()
	if _, err := NewFilter(nil, func(symtab.Symbol) bool { return true }); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := NewFilter(tab, nil); err == nil {
		t.Error("nil predicate should fail")
	}
}

func TestFilterAddrs(t *testing.T) {
	f := NewFilterAddrs([]uint64{1, 2, 3})
	if f.Size() != 3 {
		t.Errorf("Size = %d, want 3", f.Size())
	}
	if !f.Allow(2) || f.Allow(4) {
		t.Error("address set membership wrong")
	}
	if got := f.String(); got != "filter(3 funcs)" {
		t.Errorf("String() = %q", got)
	}
}

func TestNopHooks(t *testing.T) {
	var h Hooks = Nop{}
	h.Enter(1)
	h.Exit(1)
}

func TestConcurrentThreads(t *testing.T) {
	const threads, events = 8, 500
	rt := newRuntime(t, threads*events*2)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		th := rt.Thread()
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			for j := 0; j < events; j++ {
				th.Enter(uint64(j))
				th.Exit(uint64(j))
			}
		}(th)
	}
	wg.Wait()
	if got := rt.Log().Len(); got != threads*events*2 {
		t.Errorf("log has %d entries, want %d", got, threads*events*2)
	}
	if got := rt.Dropped(); got != 0 {
		t.Errorf("Dropped() = %d, want 0", got)
	}
}
