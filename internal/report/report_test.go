package report

import (
	"strings"
	"testing"

	"teeperf/internal/analyzer"
	"teeperf/internal/shmlog"
	"teeperf/internal/symtab"
)

func sampleProfile(t *testing.T) *analyzer.Profile {
	t.Helper()
	tab := symtab.New()
	mainFn := tab.MustRegister("main", 16, "m.go", 1)
	hot := tab.MustRegister("hot<script>", 16, "m.go", 5) // exercises escaping
	log, err := shmlog.New(16, shmlog.WithPID(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []shmlog.Entry{
		{Kind: shmlog.KindCall, Counter: 0, Addr: mainFn, ThreadID: 1},
		{Kind: shmlog.KindCall, Counter: 10, Addr: hot, ThreadID: 1},
		{Kind: shmlog.KindReturn, Counter: 90, Addr: hot, ThreadID: 1},
		{Kind: shmlog.KindReturn, Counter: 100, Addr: mainFn, ThreadID: 1},
	} {
		if err := log.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRender(t *testing.T) {
	p := sampleProfile(t)
	var sb strings.Builder
	if err := Render(&sb, p, Options{Title: "unit <test>"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"unit &lt;test&gt;", // title escaped
		"pid <b>42</b>",
		"<svg",
		"Hot methods",
		"80.00%",             // hot's self share
		"hot&lt;script&gt;",  // function name escaped in the table
		"main;hot&lt;script", // call path present (escaped)
		"Threads",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "<script>") {
		t.Error("unescaped script tag leaked into the report")
	}
	if strings.Contains(out, "<?xml") {
		t.Error("XML prologue not stripped from embedded SVG")
	}
}

func TestRenderValidation(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, nil, Options{}); err == nil {
		t.Error("nil profile should fail")
	}
}

func TestRenderDefaults(t *testing.T) {
	p := sampleProfile(t)
	var sb strings.Builder
	if err := Render(&sb, p, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TEE-Perf report") {
		t.Error("default title missing")
	}
}
