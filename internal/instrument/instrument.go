// Package instrument is TEE-Perf's stage-1 compiler pass for Go sources:
// the analogue of gcc's -finstrument-functions plus --include=profiler.h.
// It rewrites every function of a package to execute an entry/exit probe
// (`defer __teeperf_rt.Span(addr)()` as the first statement) and emits the
// per-file registration table that maps probe addresses back to function
// names and source locations. The application source is otherwise
// unmodified; rebuild with the rewritten files and link against teeperf/rt.
package instrument

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

const (
	// RuntimeImport is the package instrumented code links against.
	RuntimeImport = "teeperf/rt"
	// runtimeAlias is the collision-proof import alias used in generated
	// code.
	runtimeAlias = "__teeperf_rt"
	// noInstrumentMarker in a function's doc comment excludes it — the
	// __attribute__((no_instrument_function)) analogue.
	noInstrumentMarker = "teeperf:noinstrument"
)

// FuncInfo describes one instrumented function.
type FuncInfo struct {
	// Name is the qualified function name (pkg.Func or pkg.(Recv).Method).
	Name string
	// File and Line locate the declaration.
	File string
	Line int
}

// Options tunes the pass.
type Options struct {
	// Only, when non-nil, selects which functions to instrument
	// (selective code profiling at compile time).
	Only func(name string) bool
	// SkipTests skips *_test.go files in directory mode.
	SkipTests bool
}

// Result is the outcome for one file.
type Result struct {
	// Source is the rewritten file content.
	Source []byte
	// Funcs lists the instrumented functions.
	Funcs []FuncInfo
	// Skipped counts functions excluded by markers or Only.
	Skipped int
}

// File instruments one Go source file. filename is used for positions and
// the registration table.
func File(src []byte, filename string, opts Options) (Result, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return Result{}, fmt.Errorf("instrument: parse %s: %w", filename, err)
	}
	pkgName := f.Name.Name

	var (
		funcs   []FuncInfo
		decls   []*ast.FuncDecl
		skipped int
	)
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		name := qualifiedName(pkgName, fn)
		if strings.HasPrefix(fn.Name.Name, "__teeperf") || fn.Name.Name == "init" {
			skipped++
			continue
		}
		if hasMarker(fn) {
			skipped++
			continue
		}
		if opts.Only != nil && !opts.Only(name) {
			skipped++
			continue
		}
		line := fset.Position(fn.Pos()).Line
		funcs = append(funcs, FuncInfo{Name: name, File: filename, Line: line})
		decls = append(decls, fn)
	}

	if len(funcs) > 0 {
		// Inject `defer __teeperf_rt.Span(__teeperf_addr_i)()`.
		for i, fn := range decls {
			fn.Body.List = append([]ast.Stmt{deferStmt(i)}, fn.Body.List...)
		}
		f.Decls = append(f.Decls, registrationDecl(funcs))
		addImport(f)
	}

	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, f); err != nil {
		return Result{}, fmt.Errorf("instrument: print %s: %w", filename, err)
	}
	return Result{Source: buf.Bytes(), Funcs: funcs, Skipped: skipped}, nil
}

// DirReport summarizes a directory run.
type DirReport struct {
	Files        int
	Instrumented int
	Skipped      int
	Funcs        []FuncInfo
}

// Dir instruments every .go file in inDir, writing results to outDir.
func Dir(inDir, outDir string, opts Options) (DirReport, error) {
	entries, err := os.ReadDir(inDir)
	if err != nil {
		return DirReport{}, fmt.Errorf("instrument: read dir: %w", err)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return DirReport{}, fmt.Errorf("instrument: create out dir: %w", err)
	}
	var report DirReport
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if opts.SkipTests && strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(inDir, e.Name()))
		if err != nil {
			return report, fmt.Errorf("instrument: read %s: %w", e.Name(), err)
		}
		res, err := File(src, e.Name(), opts)
		if err != nil {
			return report, err
		}
		if err := os.WriteFile(filepath.Join(outDir, e.Name()), res.Source, 0o644); err != nil {
			return report, fmt.Errorf("instrument: write %s: %w", e.Name(), err)
		}
		report.Files++
		report.Instrumented += len(res.Funcs)
		report.Skipped += res.Skipped
		report.Funcs = append(report.Funcs, res.Funcs...)
	}
	return report, nil
}

func qualifiedName(pkg string, fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return pkg + "." + fn.Name.Name
	}
	recv := typeName(fn.Recv.List[0].Type)
	return pkg + ".(" + recv + ")." + fn.Name.Name
}

func typeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeName(t.X)
	case *ast.IndexExpr: // generic receiver T[P]
		return typeName(t.X)
	case *ast.IndexListExpr:
		return typeName(t.X)
	default:
		return "?"
	}
}

func hasMarker(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.Contains(c.Text, noInstrumentMarker) {
			return true
		}
	}
	return false
}

func addrVar(i int) string { return fmt.Sprintf("__teeperf_addr_%d", i) }

// deferStmt builds `defer __teeperf_rt.Span(__teeperf_addr_i)()`.
func deferStmt(i int) ast.Stmt {
	return &ast.DeferStmt{
		Call: &ast.CallExpr{
			Fun: &ast.CallExpr{
				Fun: &ast.SelectorExpr{
					X:   ast.NewIdent(runtimeAlias),
					Sel: ast.NewIdent("Span"),
				},
				Args: []ast.Expr{ast.NewIdent(addrVar(i))},
			},
		},
	}
}

// registrationDecl builds the per-file table:
//
//	var (
//	    __teeperf_addr_0 = __teeperf_rt.Register("pkg.F", "file.go", 10)
//	    ...
//	)
func registrationDecl(funcs []FuncInfo) ast.Decl {
	specs := make([]ast.Spec, len(funcs))
	for i, fi := range funcs {
		specs[i] = &ast.ValueSpec{
			Names: []*ast.Ident{ast.NewIdent(addrVar(i))},
			Values: []ast.Expr{&ast.CallExpr{
				Fun: &ast.SelectorExpr{
					X:   ast.NewIdent(runtimeAlias),
					Sel: ast.NewIdent("Register"),
				},
				Args: []ast.Expr{
					&ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(fi.Name)},
					&ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(fi.File)},
					&ast.BasicLit{Kind: token.INT, Value: strconv.Itoa(fi.Line)},
				},
			}},
		}
	}
	return &ast.GenDecl{Tok: token.VAR, Lparen: 1, Rparen: 2, Specs: specs}
}

// addImport appends `import __teeperf_rt "teeperf/rt"`.
func addImport(f *ast.File) {
	imp := &ast.GenDecl{
		Tok: token.IMPORT,
		Specs: []ast.Spec{&ast.ImportSpec{
			Name: ast.NewIdent(runtimeAlias),
			Path: &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(RuntimeImport)},
		}},
	}
	f.Decls = append([]ast.Decl{imp}, f.Decls...)
}
