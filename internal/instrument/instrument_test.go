package instrument

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"teeperf/internal/analyzer"
	"teeperf/internal/recorder"
)

const sampleSrc = `package main

import "fmt"

func helper(n int) int {
	if n <= 0 {
		return 1
	}
	return n * helper(n-1)
}

// teeperf:noinstrument
func secret() int { return 42 }

func __teeperf_internal() {}

type Calc struct{ bias int }

func (c *Calc) Add(a, b int) int { return a + b + c.bias }

func main() {
	fmt.Println(helper(5), secret())
}
`

func TestFileInjectsProbes(t *testing.T) {
	res, err := File([]byte(sampleSrc), "main.go", Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := string(res.Source)

	// Instrumented functions: helper, (*Calc).Add, main — not secret
	// (marker), not __teeperf_internal (prefix).
	wantFuncs := []string{"main.helper", "main.(*Calc).Add", "main.main"}
	if len(res.Funcs) != len(wantFuncs) {
		t.Fatalf("instrumented %d funcs (%v), want %d", len(res.Funcs), res.Funcs, len(wantFuncs))
	}
	for i, want := range wantFuncs {
		if res.Funcs[i].Name != want {
			t.Errorf("func %d = %q, want %q", i, res.Funcs[i].Name, want)
		}
	}
	if res.Skipped != 2 {
		t.Errorf("skipped = %d, want 2", res.Skipped)
	}

	for _, want := range []string{
		`__teeperf_rt "teeperf/rt"`,
		"defer __teeperf_rt.Span(__teeperf_addr_0)()",
		`__teeperf_rt.Register("main.helper", "main.go", 5)`,
		`__teeperf_rt.Register("main.(*Calc).Add", "main.go", 19)`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
	if strings.Contains(out, `Register("main.secret"`) {
		t.Error("marked function was instrumented")
	}

	// The rewritten source must still parse.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "main.go", res.Source, 0); err != nil {
		t.Fatalf("rewritten source does not parse: %v", err)
	}
}

func TestFileSelective(t *testing.T) {
	res, err := File([]byte(sampleSrc), "main.go", Options{
		Only: func(name string) bool { return name == "main.helper" },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Funcs) != 1 || res.Funcs[0].Name != "main.helper" {
		t.Fatalf("selective instrumented %v, want only main.helper", res.Funcs)
	}
}

func TestFileNoFunctionsUnchangedShape(t *testing.T) {
	src := "package empty\n\nconst X = 1\n"
	res, err := File([]byte(src), "e.go", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Funcs) != 0 {
		t.Errorf("instrumented %v in a file with no functions", res.Funcs)
	}
	if strings.Contains(string(res.Source), "teeperf") {
		t.Error("runtime import added to a file with nothing instrumented")
	}
}

func TestFileParseError(t *testing.T) {
	if _, err := File([]byte("not go"), "x.go", Options{}); err == nil {
		t.Error("bad source should fail")
	}
}

func TestDir(t *testing.T) {
	in := t.TempDir()
	out := t.TempDir()
	files := map[string]string{
		"a.go":      "package p\n\nfunc A() {}\n",
		"b.go":      "package p\n\nfunc B() int { return 2 }\n",
		"b_test.go": "package p\n\nfunc testHelper() {}\n",
		"notes.txt": "ignore me",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(in, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	report, err := Dir(in, out, Options{SkipTests: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Files != 2 {
		t.Errorf("files = %d, want 2", report.Files)
	}
	if report.Instrumented != 2 {
		t.Errorf("instrumented = %d, want 2", report.Instrumented)
	}
	if _, err := os.Stat(filepath.Join(out, "a.go")); err != nil {
		t.Errorf("output a.go missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(out, "b_test.go")); err == nil {
		t.Error("test file should have been skipped")
	}
	if _, err := Dir(filepath.Join(in, "missing"), out, Options{}); err == nil {
		t.Error("missing input dir should fail")
	}
}

// TestEndToEndCompileAndProfile is the full stage-1 pipeline: instrument an
// unmodified program, build it with the real Go toolchain against this
// module's rt package, run it, and analyze the bundle it wrote.
func TestEndToEndCompileAndProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles with the go toolchain")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}

	const app = `package main

import (
	"os"

	"teeperf/rt"
)

func fib(n int) int {
	if n < 2 {
		return n
	}
	return fib(n-1) + fib(n-2)
}

func work() int {
	total := 0
	for i := 0; i < 10; i++ {
		total += fib(12)
	}
	return total
}

// teeperf:noinstrument
func main() {
	if err := rt.Configure(rt.Config{Counter: rt.CounterTSC}); err != nil {
		panic(err)
	}
	_ = work()
	if err := rt.Finish(os.Args[1]); err != nil {
		panic(err)
	}
}
`
	res, err := File([]byte(app), "main.go", Options{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	gomod := "module probeapp\n\ngo 1.22\n\nrequire teeperf v0.0.0\n\nreplace teeperf => " + repoRoot + "\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), res.Source, 0o644); err != nil {
		t.Fatal(err)
	}
	outBundle := filepath.Join(dir, "run.teeperf")

	cmd := exec.Command(goBin, "run", ".", outBundle)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go run failed: %v\n%s", err, out)
	}

	tab, log, err := recorder.ReadBundleFile(outBundle)
	if err != nil {
		t.Fatal(err)
	}
	p, err := analyzer.Analyze(log, tab)
	if err != nil {
		t.Fatal(err)
	}
	fib, ok := p.Func("main.fib")
	if !ok {
		t.Fatal("main.fib missing from end-to-end profile")
	}
	// 10 iterations of fib(12): fib called 10 * (2*fib(13)... ) — at
	// least hundreds of calls.
	if fib.Calls < 1000 {
		t.Errorf("fib calls = %d, want >= 1000", fib.Calls)
	}
	workStat, ok := p.Func("main.work")
	if !ok {
		t.Fatal("main.work missing")
	}
	if got := fib.Callers["main.work"]; got != 10 {
		t.Errorf("fib callers[work] = %d, want 10", got)
	}
	if workStat.Incl < fib.Self {
		t.Errorf("work incl %d below fib self %d", workStat.Incl, fib.Self)
	}
}
