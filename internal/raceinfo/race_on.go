//go:build race

// Package raceinfo reports whether the race detector is active, so
// timing-shape tests (which assert wall-clock proportions the detector's
// instrumentation distorts) can skip themselves under -race while still
// running their logic paths elsewhere.
package raceinfo

// Enabled is true when the binary was built with -race.
const Enabled = true
