package fex

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	noop := func() error { return nil }
	if _, err := Run("x", 0, 0, noop); err == nil {
		t.Error("zero runs should fail")
	}
	if _, err := Run("x", -1, 1, noop); err == nil {
		t.Error("negative warmups should fail")
	}
	if _, err := Run("x", 0, 1, nil); err == nil {
		t.Error("nil func should fail")
	}
}

func TestRunCountsAndErrors(t *testing.T) {
	calls := 0
	res, err := Run("bench", 2, 5, func() error { calls++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Errorf("f called %d times, want 7 (2 warmup + 5 runs)", calls)
	}
	if len(res.Runs) != 5 {
		t.Errorf("recorded %d runs, want 5", len(res.Runs))
	}
	if res.Name != "bench" {
		t.Errorf("name = %q", res.Name)
	}

	boom := errors.New("boom")
	calls = 0
	if _, err := Run("bad", 1, 3, func() error {
		calls++
		if calls == 1 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Errorf("warmup error not propagated: %v", err)
	}
	calls = 0
	if _, err := Run("bad2", 0, 3, func() error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Errorf("run error not propagated: %v", err)
	}
}

func mkResult(ds ...time.Duration) Result { return Result{Name: "r", Runs: ds} }

func TestStatistics(t *testing.T) {
	r := mkResult(10, 20, 40)
	if got := r.Mean(); got != 23 {
		t.Errorf("Mean = %v, want 23", got)
	}
	// geomean(10,20,40) = 20
	if got := r.GeoMean(); got != 20 {
		t.Errorf("GeoMean = %v, want 20", got)
	}
	if got := r.Min(); got != 10 {
		t.Errorf("Min = %v, want 10", got)
	}
	if got := r.Median(); got != 20 {
		t.Errorf("Median = %v, want 20", got)
	}
	even := mkResult(10, 20, 30, 40)
	if got := even.Median(); got != 25 {
		t.Errorf("even Median = %v, want 25", got)
	}
	if got := mkResult().GeoMean(); got != 0 {
		t.Errorf("empty GeoMean = %v, want 0", got)
	}
	if got := mkResult().Mean(); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
	if got := mkResult().Min(); got != 0 {
		t.Errorf("empty Min = %v", got)
	}
	if got := mkResult().Median(); got != 0 {
		t.Errorf("empty Median = %v", got)
	}
	if got := mkResult(5).Stddev(); got != 0 {
		t.Errorf("single-run Stddev = %v, want 0", got)
	}
	sd := mkResult(10, 20, 30).Stddev()
	if sd != 10 {
		t.Errorf("Stddev = %v, want 10", sd)
	}
}

func TestRatio(t *testing.T) {
	a := mkResult(200, 200)
	b := mkResult(100, 100)
	if got := Ratio(a, b); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("Ratio = %f, want 2.0", got)
	}
	if got := Ratio(a, mkResult()); !math.IsInf(got, 1) {
		t.Errorf("Ratio with zero denominator = %f, want +Inf", got)
	}
}

func TestGeoMeanFloats(t *testing.T) {
	if got := GeoMeanFloats(nil); got != 0 {
		t.Errorf("empty = %f, want 0", got)
	}
	if got := GeoMeanFloats([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %f, want 4", got)
	}
	// Non-positive values are clamped, not fatal.
	if got := GeoMeanFloats([]float64{0, 4}); got <= 0 {
		t.Errorf("geomean with zero = %f, want > 0", got)
	}
}

func TestWriteTable(t *testing.T) {
	rows := []Row{
		{Name: "string_match", Values: map[string]float64{"ratio": 5.7}},
		{Name: "linear_regression", Values: map[string]float64{"ratio": 0.92}},
	}
	var sb strings.Builder
	if err := WriteTable(&sb, rows, []string{"ratio"}, "%.2f"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"BENCHMARK", "RATIO", "string_match", "5.70", "0.92"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("table has %d lines, want 3", len(lines))
	}
}

func TestRunMeasuresTime(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	res, err := Run("sleep", 0, 2, func() error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Min() < time.Millisecond {
		t.Errorf("Min = %v, want >= 1ms", res.Min())
	}
}
