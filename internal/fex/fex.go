// Package fex is the evaluation-methodology substrate, standing in for the
// Fex framework the paper uses to run its experiments: warmup handling,
// repeated runs, geometric means over benchmarks, relative ratios and
// report tables. (The paper reports the geometric mean over 10 runs.)
package fex

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// DefaultRuns matches the paper's methodology (10 measured runs).
const DefaultRuns = 10

// Result holds the measured durations of one experiment configuration.
type Result struct {
	// Name identifies the configuration.
	Name string
	// Runs are the measured durations, in run order.
	Runs []time.Duration
}

// Run executes f warmup+runs times and records the duration of the
// measured runs. It stops at the first error.
func Run(name string, warmups, runs int, f func() error) (Result, error) {
	if runs <= 0 {
		return Result{}, fmt.Errorf("fex: runs must be positive, got %d", runs)
	}
	if warmups < 0 {
		return Result{}, fmt.Errorf("fex: warmups must be non-negative, got %d", warmups)
	}
	if f == nil {
		return Result{}, errors.New("fex: nil experiment function")
	}
	for i := 0; i < warmups; i++ {
		if err := f(); err != nil {
			return Result{}, fmt.Errorf("fex: %s warmup %d: %w", name, i, err)
		}
	}
	res := Result{Name: name, Runs: make([]time.Duration, 0, runs)}
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return Result{}, fmt.Errorf("fex: %s run %d: %w", name, i, err)
		}
		res.Runs = append(res.Runs, time.Since(t0))
	}
	return res, nil
}

// GeoMean returns the geometric mean duration.
func (r Result) GeoMean() time.Duration {
	if len(r.Runs) == 0 {
		return 0
	}
	var logSum float64
	for _, d := range r.Runs {
		v := float64(d)
		if v < 1 {
			v = 1
		}
		logSum += math.Log(v)
	}
	return time.Duration(math.Round(math.Exp(logSum / float64(len(r.Runs)))))
}

// Mean returns the arithmetic mean duration.
func (r Result) Mean() time.Duration {
	if len(r.Runs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range r.Runs {
		sum += d
	}
	return sum / time.Duration(len(r.Runs))
}

// Min returns the fastest run.
func (r Result) Min() time.Duration {
	if len(r.Runs) == 0 {
		return 0
	}
	m := r.Runs[0]
	for _, d := range r.Runs[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Median returns the median duration.
func (r Result) Median() time.Duration {
	if len(r.Runs) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.Runs))
	copy(sorted, r.Runs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Stddev returns the sample standard deviation.
func (r Result) Stddev() time.Duration {
	if len(r.Runs) < 2 {
		return 0
	}
	mean := float64(r.Mean())
	var ss float64
	for _, d := range r.Runs {
		diff := float64(d) - mean
		ss += diff * diff
	}
	return time.Duration(math.Sqrt(ss / float64(len(r.Runs)-1)))
}

// Ratio returns GeoMean(num)/GeoMean(den) — the relative-overhead metric of
// Fig 4 (e.g. TEE-Perf time over perf time).
func Ratio(num, den Result) float64 {
	d := den.GeoMean()
	if d == 0 {
		return math.Inf(1)
	}
	return float64(num.GeoMean()) / float64(d)
}

// GeoMeanFloats returns the geometric mean of positive values (zeros and
// negatives are clamped to a tiny positive epsilon).
func GeoMeanFloats(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Row is one line of a comparison table.
type Row struct {
	// Name is the benchmark name.
	Name string
	// Values are the cells, keyed by column name.
	Values map[string]float64
}

// WriteTable renders rows with the given value columns, formatting every
// value with format (e.g. "%8.3f").
func WriteTable(w io.Writer, rows []Row, cols []string, format string) error {
	nameWidth := len("BENCHMARK")
	for _, r := range rows {
		if len(r.Name) > nameWidth {
			nameWidth = len(r.Name)
		}
	}
	header := fmt.Sprintf("%-*s", nameWidth, "BENCHMARK")
	for _, c := range cols {
		header += fmt.Sprintf("  %12s", strings.ToUpper(c))
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, r := range rows {
		line := fmt.Sprintf("%-*s", nameWidth, r.Name)
		for _, c := range cols {
			line += "  " + fmt.Sprintf("%12s", fmt.Sprintf(format, r.Values[c]))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
